// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (Section 6) through the internal/experiments runners.
// Run them all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment once per b.N iteration and also
// prints the paper-style series (use -v or cmd/lsmbench for readable
// output). Reported metrics include the experiment's total simulated time
// where that is the figure's y-axis.
package repro

import (
	"os"
	"testing"

	"repro/internal/experiments"
)

// benchFigure runs one experiment per iteration at quick scale (benchmarks
// gate CI; cmd/lsmbench runs the full scale).
func benchFigure(b *testing.B, id string) {
	b.Helper()
	scale := experiments.Quick()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, scale)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		if i == 0 && testing.Verbose() {
			res.Print(os.Stdout)
		}
	}
}

// BenchmarkFig12aPointLookupLowSel — Figure 12a: point-lookup optimization
// stack at low selectivities.
func BenchmarkFig12aPointLookupLowSel(b *testing.B) { benchFigure(b, "fig12a") }

// BenchmarkFig12bPointLookupHighSel — Figure 12b: high selectivities with
// full-scan baselines.
func BenchmarkFig12bPointLookupHighSel(b *testing.B) { benchFigure(b, "fig12b") }

// BenchmarkFig12cBatchSize — Figure 12c: batch memory sweep.
func BenchmarkFig12cBatchSize(b *testing.B) { benchFigure(b, "fig12c") }

// BenchmarkFig12dSortOverhead — Figure 12d: batching vs sorting plans.
func BenchmarkFig12dSortOverhead(b *testing.B) { benchFigure(b, "fig12d") }

// BenchmarkFig13InsertIngestion — Figure 13: insert ingestion with/without
// the primary key index, duplicates, HDD/SSD.
func BenchmarkFig13InsertIngestion(b *testing.B) { benchFigure(b, "fig13") }

// BenchmarkFig14UpsertIngestion — Figure 14: upsert ingestion by strategy
// and update distribution.
func BenchmarkFig14UpsertIngestion(b *testing.B) { benchFigure(b, "fig14") }

// BenchmarkFig15aMergeImpact — Figure 15a: max-mergeable-size sweep.
func BenchmarkFig15aMergeImpact(b *testing.B) { benchFigure(b, "fig15a") }

// BenchmarkFig15bSecondaryScaling — Figure 15b: 1-5 secondary indexes,
// including the deleted-key B+-tree baseline.
func BenchmarkFig15bSecondaryScaling(b *testing.B) { benchFigure(b, "fig15b") }

// BenchmarkFig16NonIndexOnly — Figure 16: non-index-only queries.
func BenchmarkFig16NonIndexOnly(b *testing.B) { benchFigure(b, "fig16") }

// BenchmarkFig17IndexOnly — Figure 17: index-only queries.
func BenchmarkFig17IndexOnly(b *testing.B) { benchFigure(b, "fig17") }

// BenchmarkFig18SmallCache — Figure 18: Timestamp validation with a small
// buffer cache.
func BenchmarkFig18SmallCache(b *testing.B) { benchFigure(b, "fig18") }

// BenchmarkFig19RangeFilter — Figure 19: range-filter scans by strategy.
func BenchmarkFig19RangeFilter(b *testing.B) { benchFigure(b, "fig19") }

// BenchmarkFig20RepairBasic — Figure 20: repair time trend, update ratios.
func BenchmarkFig20RepairBasic(b *testing.B) { benchFigure(b, "fig20") }

// BenchmarkFig21RepairLargeRecords — Figure 21: repair with large records.
func BenchmarkFig21RepairLargeRecords(b *testing.B) { benchFigure(b, "fig21") }

// BenchmarkFig22RepairSecondaries — Figure 22: repair with 5 secondary
// indexes.
func BenchmarkFig22RepairSecondaries(b *testing.B) { benchFigure(b, "fig22") }

// BenchmarkFig23ConcurrencyControl — Figure 23a/b/c: Mutable-bitmap CC
// overhead (real wall time).
func BenchmarkFig23ConcurrencyControl(b *testing.B) {
	for _, id := range []string{"fig23a", "fig23b", "fig23c"} {
		id := id
		b.Run(id, func(b *testing.B) { benchFigure(b, id) })
	}
}
