package lsmstore_test

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/lsmstore"
)

// The read-cache battery: read-your-writes under concurrent writers,
// negative-entry invalidation, cache on/off equivalence across all four
// anti-matter strategies, and the CI speedup gate. The cache layer itself
// (LRU, segments, version tokens) is unit-tested in internal/readcache;
// these tests pin the store-level contract — a cached read is never
// distinguishable from an uncached one.

func cacheOptions(strategy lsmstore.Strategy, shards int) lsmstore.Options {
	opts := tinyOptions(strategy)
	opts.Shards = shards
	opts.ReadCache = lsmstore.ReadCacheOptions{Bytes: 1 << 20}
	return opts
}

// TestReadCacheReadYourWrites: with the cache on, a writer that owns its
// keys must read back exactly what it last wrote, no matter how hot the
// cache is or how many other writers and readers are churning it. Run
// under -race this also proves the fill/invalidate protocol is data-race
// free end to end.
func TestReadCacheReadYourWrites(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db, err := lsmstore.Open(cacheOptions(lsmstore.Validation, shards))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			const (
				writers = 4
				keysPer = 8
				rounds  = 200
			)
			var stop atomic.Bool
			var readerWG sync.WaitGroup
			// Readers hammer every key so the cache keeps refilling entries
			// the writers keep invalidating.
			for r := 0; r < 2; r++ {
				readerWG.Add(1)
				go func(r int) {
					defer readerWG.Done()
					for i := 0; !stop.Load(); i++ {
						id := uint64(i % (writers * keysPer))
						if _, _, err := db.Get(tweetPK(id)); err != nil {
							t.Errorf("reader: %v", err)
							return
						}
					}
				}(r)
			}
			var writerWG sync.WaitGroup
			for w := 0; w < writers; w++ {
				writerWG.Add(1)
				go func(w int) {
					defer writerWG.Done()
					for v := 0; v < rounds; v++ {
						id := uint64(w*keysPer + v%keysPer)
						want := tweetRec(id, uint32(w), int64(v))
						if err := db.Upsert(tweetPK(id), want); err != nil {
							t.Errorf("writer %d: %v", w, err)
							return
						}
						got, found, err := db.Get(tweetPK(id))
						if err != nil || !found || !bytes.Equal(got, want) {
							t.Errorf("writer %d lost its own write of id %d round %d: found=%v err=%v",
								w, id, v, found, err)
							return
						}
					}
				}(w)
			}
			writerWG.Wait()
			stop.Store(true)
			readerWG.Wait()
		})
	}
}

// TestReadCacheNegativeEntryInvalidatedOnInsert: a miss for an absent key
// parks a negative entry; inserting that key must invalidate it before
// the insert is acknowledged, so the next read finds the record.
func TestReadCacheNegativeEntryInvalidatedOnInsert(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db, err := lsmstore.Open(cacheOptions(lsmstore.Validation, shards))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			const id = 7
			if _, found, err := db.Get(tweetPK(id)); err != nil || found {
				t.Fatalf("absent key: found=%v err=%v", found, err)
			}
			if _, found, err := db.Get(tweetPK(id)); err != nil || found {
				t.Fatalf("absent key, cached: found=%v err=%v", found, err)
			}
			c := db.Stats().Counters
			if c.ReadCacheNegHits == 0 {
				t.Fatalf("second read of an absent key did not hit the negative cache: %+v", c)
			}
			rec := tweetRec(id, 1, 1)
			if applied, err := db.Insert(tweetPK(id), rec); err != nil || !applied {
				t.Fatalf("insert: applied=%v err=%v", applied, err)
			}
			got, found, err := db.Get(tweetPK(id))
			if err != nil || !found || !bytes.Equal(got, rec) {
				t.Fatalf("read after insert served the stale negative entry: found=%v err=%v", found, err)
			}
		})
	}
}

// TestReadCacheEquivalence runs the same deterministic mixed workload on a
// cache-on and a cache-off store for every strategy and requires identical
// store images — reading each twice, so the second cache-on pass is served
// mostly from cache and still indistinguishable.
func TestReadCacheEquivalence(t *testing.T) {
	for _, strategy := range []lsmstore.Strategy{
		lsmstore.Eager, lsmstore.Validation, lsmstore.MutableBitmap, lsmstore.DeletedKey,
	} {
		t.Run(strategy.String(), func(t *testing.T) {
			open := func(cache bool) *lsmstore.DB {
				opts := tinyOptions(strategy)
				if cache {
					// Large enough to hold the image's keyspace, so the second
					// image pass is served from cache (asserted below).
					// Eviction under churn is exercised by the readcache unit
					// tests and the DST battery's deliberately tiny cache.
					opts.ReadCache = lsmstore.ReadCacheOptions{Bytes: 1 << 20}
				}
				db, err := lsmstore.Open(opts)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { db.Close() })
				return db
			}
			on, off := open(true), open(false)
			idsOn := mixedWorkload(t, on, 2500, 99)
			idsOff := mixedWorkload(t, off, 2500, 99)
			validation := validationFor(strategy)
			imgOff := storeImage(t, off, idsOff, validation)
			for pass := 0; pass < 2; pass++ {
				if img := storeImage(t, on, idsOn, validation); img != imgOff {
					t.Fatalf("pass %d: cache-on image diverges from cache-off", pass)
				}
			}
			if c := on.Stats().Counters; c.ReadCacheHits == 0 {
				t.Fatalf("equivalence run never hit the cache: %+v", c)
			}
		})
	}
}

// TestReadCacheSpeedupSmoke is the CI bench-smoke gate for the read path:
// on the disk backend with the working set pushed into disk components, a
// hot-key read mix with the cache on must beat the cache-off baseline by
// at least 1.5x — the ISSUE's target for this optimization. Skipped
// unless LSMSTORE_BENCH_SMOKE=1. (The lsmload read-heavy A/B measures the
// same effect over TCP, where loopback RTT dilutes it; this gate measures
// the store itself, which is what the cache optimizes.)
func TestReadCacheSpeedupSmoke(t *testing.T) {
	if os.Getenv("LSMSTORE_BENCH_SMOKE") == "" {
		t.Skip("set LSMSTORE_BENCH_SMOKE=1 to run the read-cache speed gate")
	}
	const (
		records = 4096
		hotKeys = 512
		readers = 4
		perR    = 30_000
	)
	measure := func(cacheBytes int64) (opsPerSec float64) {
		opts := diskOptions(lsmstore.Validation, t.TempDir())
		opts.GroupCommit = lsmstore.GroupCommitOn
		opts.MemoryBudget = 16 << 10 // push the working set into disk components
		opts.ReadCache = lsmstore.ReadCacheOptions{Bytes: cacheBytes}
		db, err := lsmstore.Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		for i := uint64(0); i < records; i++ {
			if err := db.Upsert(tweetPK(i), tweetRec(i, uint32(i%40), int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		// Warm both caches (read cache and page cache) once.
		for i := uint64(0); i < hotKeys; i++ {
			if _, found, err := db.Get(tweetPK(i)); err != nil || !found {
				t.Fatalf("warmup: found=%v err=%v", found, err)
			}
		}
		// A background writer churns the hot keys (~10% of the read volume)
		// so the gate also prices invalidation, not just pure hits.
		var stop atomic.Bool
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for i := uint64(0); !stop.Load(); i++ {
				id := i % hotKeys
				if err := db.Upsert(tweetPK(id), tweetRec(id, uint32(id%40), int64(id))); err != nil {
					t.Errorf("background writer: %v", err)
					return
				}
			}
		}()
		start := time.Now()
		var rwg sync.WaitGroup
		for r := 0; r < readers; r++ {
			rwg.Add(1)
			go func(r int) {
				defer rwg.Done()
				for i := 0; i < perR; i++ {
					id := uint64((r*perR + i) % hotKeys)
					if _, found, err := db.Get(tweetPK(id)); err != nil || !found {
						t.Errorf("reader: found=%v err=%v", found, err)
						return
					}
				}
			}(r)
		}
		rwg.Wait()
		elapsed := time.Since(start)
		stop.Store(true)
		wwg.Wait()
		return float64(readers*perR) / elapsed.Seconds()
	}
	off := measure(0)
	on := measure(32 << 20)
	t.Logf("disk backend, %d hot keys, %d readers + writer churn: cache off %.0f gets/s, on %.0f gets/s (%.2fx)",
		hotKeys, readers, off, on, on/off)
	if on < 1.5*off {
		t.Fatalf("read cache speedup below the 1.5x gate: on %.0f vs off %.0f gets/s (%.2fx)", on, off, on/off)
	}
	fmt.Fprintf(os.Stderr, "read-cache smoke: %.2fx speedup (%.0f -> %.0f gets/s)\n", on/off, off, on)
}
