// Package lsmstore is the public API of this repository: a general-purpose
// LSM-based storage engine with secondary indexes and range filters,
// implementing the ingestion and query-processing techniques of Luo &
// Carey, "Efficient Data Ingestion and Query Processing for LSM-Based
// Storage Systems" (PVLDB 12(5), 2019).
//
// A DB is one or more dataset partitions, each backed by a simulated disk
// with an explicit I/O cost model (see DESIGN.md), holding a primary LSM
// index, an optional primary key index, and any number of secondary
// indexes that share a memory budget. The maintenance strategy for
// auxiliary structures — Eager, Validation, Mutable-bitmap, or Deleted-key
// B+-tree — is chosen at Open time, and queries pick a validation method
// per request.
//
// Quickstart:
//
//	db, _ := lsmstore.Open(lsmstore.Options{
//		Strategy: lsmstore.Validation,
//		Secondaries: []lsmstore.SecondaryIndex{
//			{Name: "user", Extract: extractUserID},
//		},
//	})
//	db.Upsert(pk, record)
//	res, _ := db.SecondaryQuery("user", loKey, hiKey, lsmstore.QueryOptions{
//		Validation: lsmstore.TimestampValidation,
//	})
//
// # Sharding
//
// Options.Shards > 1 opens a hash-partitioned store: N independent
// partitions, each with its own disk, buffer cache, write-ahead log and
// virtual clock, fronted by a router (internal/shard). Primary-key
// operations route to the owning partition by PK hash; ApplyBatch groups
// a batch of mutations per shard and applies the groups concurrently;
// SecondaryQuery and FilterScan fan out to every shard with bounded
// worker parallelism and merge the answers in primary-key order; Flush,
// Crash, Recover, RepairSecondaryIndexes and Stats apply to (or aggregate
// over) all shards. Shards is 1 by default, which behaves exactly like
// the unsharded store.
package lsmstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/maint"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/readcache"
	"repro/internal/repair"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/storage/filedev"
)

// Strategy selects the auxiliary-structure maintenance strategy.
type Strategy = core.Strategy

// Maintenance strategies (paper Sections 3-5).
const (
	Eager         = core.Eager
	Validation    = core.Validation
	MutableBitmap = core.MutableBitmap
	DeletedKey    = core.DeletedKey
)

// CCMethod selects Mutable-bitmap merge concurrency control.
type CCMethod = core.CCMethod

// Concurrency-control methods (Section 5.3).
const (
	SideFile = core.SideFile
	Lock     = core.Lock
	NoCC     = core.NoCC
)

// ValidationMethod selects query validation (Figure 5).
type ValidationMethod = query.ValidationMethod

// Validation methods.
const (
	NoValidation        = query.NoValidation
	DirectValidation    = query.Direct
	TimestampValidation = query.Timestamp
)

// Device selects the simulated storage device profile.
type Device int

// Devices (Section 6.1's two testbeds).
const (
	HDD Device = iota
	SSD
)

// Backend selects the storage backend beneath a DB.
type Backend int

// Backends.
const (
	// SimBackend (the default) runs on the simulated in-memory device with
	// the paper's explicit I/O cost model. Nothing survives process exit;
	// crash/recovery is simulated (Crash/Recover).
	SimBackend Backend = iota
	// FileBackend runs on real files under Options.Dir: batched appends,
	// fsync on WAL commit and component install, and a manifest that lets
	// Open reopen the directory — after a clean Close or a crash — and
	// continue serving every committed write. The virtual clock is not
	// advanced for I/O on this backend; wall time is the honest measure.
	FileBackend
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case SimBackend:
		return "sim"
	case FileBackend:
		return "disk"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// GroupCommitMode selects commit-fsync coalescing on the file backend.
type GroupCommitMode int

// Group-commit modes.
const (
	// GroupCommitAuto (the default) turns group commit on for the file
	// backend. The simulated backend has no commit fsync to coalesce, so
	// the mode is meaningless there.
	GroupCommitAuto GroupCommitMode = iota
	// GroupCommitOn forces group commit on the file backend.
	GroupCommitOn
	// GroupCommitOff keeps one fsync per committed write.
	GroupCommitOff
)

// String implements fmt.Stringer.
func (m GroupCommitMode) String() string {
	switch m {
	case GroupCommitAuto:
		return "auto"
	case GroupCommitOn:
		return "on"
	case GroupCommitOff:
		return "off"
	}
	return fmt.Sprintf("group-commit(%d)", int(m))
}

// SecondaryIndex declares one secondary index.
type SecondaryIndex struct {
	// Name identifies the index in SecondaryQuery calls.
	Name string
	// Extract returns the secondary key of a record, or false when the
	// record carries none.
	Extract func(record []byte) ([]byte, bool)
}

// Options configures a DB. The zero value gives an Eager-strategy store on
// a simulated HDD with a 64 MB buffer cache and a 4 MB memory budget.
type Options struct {
	// Strategy is the maintenance strategy for secondary indexes and
	// filters.
	Strategy Strategy
	// CC is the Mutable-bitmap concurrency-control method.
	CC CCMethod
	// Secondaries declares secondary indexes.
	Secondaries []SecondaryIndex
	// FilterExtract, when set, maintains a component-level range filter
	// over the extracted value (e.g. a creation timestamp).
	FilterExtract func(record []byte) (int64, bool)
	// Device selects the simulated device profile (HDD or SSD).
	Device Device
	// Backend selects the storage backend: the simulated device (default)
	// or real files under Dir.
	Backend Backend
	// Dir is the data directory of the file backend (required for
	// FileBackend, ignored otherwise). Each shard keeps its own
	// subdirectory; reopening an existing directory restores all committed
	// data and requires the same Shards, PageSize and Strategy it was
	// written with.
	Dir string
	// PageSize overrides the device page size (testing).
	PageSize int
	// CacheBytes sizes the buffer cache (2 GB HDD / 4 GB SSD in the
	// paper; defaults to 64 MB here to match scaled-down datasets).
	CacheBytes int64
	// MemoryBudget is the shared memory-component budget (default 4 MB).
	MemoryBudget int
	// DisablePKIndex drops the primary key index (Figure 13's ablation);
	// uniqueness checks then use the primary index.
	DisablePKIndex bool
	// MaxMergeableBytes caps mergeable component size for the tiering
	// merge policy (1 GB in the paper; 0 = uncapped). Set
	// DisableMerges to turn merging off entirely.
	MaxMergeableBytes int64
	DisableMerges     bool
	// CorrelatedMerges synchronizes merges across all indexes.
	CorrelatedMerges bool
	// MergeRepair repairs secondary indexes during merges (Validation).
	MergeRepair bool
	// RepairBloomOpt enables the Bloom-filter repair optimization.
	RepairBloomOpt bool
	// BlockedBloom uses cache-friendly blocked Bloom filters.
	BlockedBloom bool
	// DisableWAL turns off write-ahead logging.
	DisableWAL bool
	// GroupCommit selects commit-fsync coalescing on the file backend
	// (default GroupCommitAuto = on): concurrent committers append their
	// WAL records and park on a shared commit window; a leader issues one
	// fsync covering every parked commit, and ApplyBatch pays one fsync
	// per batch instead of one per mutation. Acknowledgment semantics are
	// unchanged — a write is never acknowledged before the fsync covering
	// its commit record returns. Ignored on the simulated backend.
	GroupCommit GroupCommitMode
	// MaxSyncDelay bounds how long a group-commit leader holds the commit
	// window open for committers that have announced intent but not yet
	// appended (they are mid-append and join within microseconds). A lone
	// committer never waits: with no announced peers the fsync is issued
	// immediately. 0 means the 2ms default; negative disables the window
	// entirely (the leader syncs as soon as any in-flight fsync finishes).
	MaxSyncDelay time.Duration
	// Seed fixes all pseudo-random choices.
	Seed int64
	// Shards selects the number of hash partitions (default 1, the
	// unsharded store). With Shards > 1 the buffer cache (hardware RAM)
	// is split evenly across partitions, while MemoryBudget applies per
	// partition, following the paper's per-partition budget (128 MB per
	// dataset partition in Section 6.1).
	Shards int
	// ShardWorkers bounds the goroutines used by cross-shard fan-out
	// (batch applies, queries, flushes). 0 means one worker per shard.
	ShardWorkers int
	// MaintenanceWorkers enables background maintenance: flushes swap the
	// memory components and return immediately (the frozen memtables stay
	// readable until their disk components install), while component
	// builds and policy-picked merges run on a pool of this many workers
	// shared by every shard. Each shard schedules its own flush builds and
	// merges, so partitions compact independently and concurrently. 0 (the
	// default) keeps the synchronous behavior: the write crossing the
	// memory budget flushes and merges inline.
	MaintenanceWorkers int
	// MaxFrozenMemtables bounds the frozen flush batches per shard
	// awaiting background builds before writers soft-stall (backpressure;
	// stall counts and durations appear in Stats.Counters). 0 means the
	// default of 4. Only meaningful with MaintenanceWorkers > 0.
	MaxFrozenMemtables int
	// MaxUnmergedComponents soft-stalls writers while a shard's primary
	// index holds at least this many disk components and a merge is still
	// pending. 0 disables the threshold. Only meaningful with
	// MaintenanceWorkers > 0.
	MaxUnmergedComponents int
	// MaintJournalEvents bounds the flush/merge events retained by the
	// maintenance journal (see DB.MaintJournal): every flush and merge on
	// every shard records a start/end event with its duration, bytes
	// written and component counts, plus lifetime totals. 0 means the
	// default of 256 retained events; negative disables the journal
	// entirely. Recording is observational only — it never changes engine
	// behavior or results.
	MaintJournalEvents int
	// ReadCache enables the sharded hot-entry cache on the point-read path
	// (Get/GetRef): positive entries map a primary key to its encoded
	// record, negative entries remember keys known to be absent. Every
	// write path invalidates its mutated keys after the engine applies them
	// and before the write is acknowledged, and Crash/Recover flush the
	// cache, so a read can never observe a value staler than the writes it
	// was ordered after (see internal/readcache for the full contract).
	// The zero value leaves the cache off and the read path exactly as it
	// is without one. Counters surface in Stats.Counters.ReadCache*.
	ReadCache ReadCacheOptions

	// The remaining fields are simulation hooks for deterministic
	// simulation testing (internal/dst). Production callers leave them nil.

	// WrapDevice, when set, wraps each partition's storage device before
	// the store and WAL are built. It receives the shard index and the
	// opened device; the returned device is used in its place. The wrapper
	// must preserve the durability interfaces the inner device implements
	// (storage.ManifestDevice, storage.WALDevice, storage.WALSyncDevice),
	// or the partition silently loses persistence.
	WrapDevice func(shard int, dev storage.Device) storage.Device
	// Sleeper, when set, replaces the real-time source behind the
	// group-commit hold-open window and backpressure stall accounting with
	// a virtual one. Nil keeps wall time.
	Sleeper metrics.Sleeper
	// Yield, when set, is invoked at the instrumented scheduling points in
	// the WAL group-commit path and the maintenance pool, letting the
	// simulation harness perturb goroutine interleavings. Nil leaves
	// scheduling to the runtime.
	Yield func(point string)
}

// ReadCacheOptions sizes the read cache of Options.ReadCache.
type ReadCacheOptions struct {
	// Bytes bounds the memory charged to cached entries (keys, values, and
	// a fixed per-entry overhead). 0 disables the cache.
	Bytes int64
	// Segments is the number of independently locked cache segments,
	// rounded up to a power of two (default 16). Ignored when Bytes is 0.
	Segments int
}

// ErrClosed reports an operation on a DB after Close.
var ErrClosed = errors.New("lsmstore: store is closed")

// DB is one dataset partition or, with Options.Shards > 1, a hash-
// partitioned group of them behind a router.
type DB struct {
	ds      *core.Dataset
	store   *storage.Store
	env     *metrics.Env
	shards  *shard.Router    // non-nil only when Options.Shards > 1
	pool    *maint.Pool      // non-nil only when Options.MaintenanceWorkers > 0
	cache   *readcache.Cache // non-nil only when Options.ReadCache.Bytes > 0
	journal *obs.Journal     // nil when Options.MaintJournalEvents < 0

	// mu guards the lifecycle: public operations hold it shared, Close
	// holds it exclusively, so Close waits for in-flight operations to
	// drain and later operations observe closed and fail with ErrClosed.
	mu         sync.RWMutex
	closed     bool
	finalStats Stats // snapshot taken by Close, served by Stats afterwards
}

// acquire takes the shared lifecycle lock, failing after Close. Every
// public operation pairs it with release.
func (db *DB) acquire() error {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return ErrClosed
	}
	return nil
}

func (db *DB) release() { db.mu.RUnlock() }

// Open creates an empty DB or, with Options.Backend = FileBackend and an
// existing Options.Dir, reopens a previously written store: component
// files are restored from the per-shard manifests, the on-disk write-ahead
// logs are replayed, and every committed write — whether the previous
// process Closed cleanly or crashed — is served again.
func Open(opts Options) (*DB, error) {
	if opts.Backend == FileBackend {
		if opts.Dir == "" {
			return nil, errors.New("lsmstore: FileBackend requires Options.Dir")
		}
		if opts.DisableWAL {
			// Close does not flush live memtables — their committed writes
			// are recovered from the on-disk WAL. Without one, acknowledged
			// writes would silently vanish across a reopen.
			return nil, errors.New("lsmstore: FileBackend requires the write-ahead log (unset DisableWAL)")
		}
		if err := checkLayout(opts); err != nil {
			return nil, err
		}
	}
	var pool *maint.Pool
	if opts.MaintenanceWorkers > 0 {
		pool = maint.NewPool(opts.MaintenanceWorkers)
		pool.SetYield(opts.Yield)
	}
	closePoolOnErr := func(err error) error {
		if pool != nil {
			pool.Close()
		}
		return err
	}
	journal := newMaintJournal(opts)
	if opts.Shards > 1 {
		db, err := openSharded(opts, pool, journal)
		if err != nil {
			return nil, closePoolOnErr(err)
		}
		return db, nil
	}
	p, err := openPartition(opts, pool, journal, 0)
	if err != nil {
		return nil, closePoolOnErr(err)
	}
	return &DB{ds: p.DS, store: p.Store, env: p.Env, pool: pool, cache: newReadCache(opts), journal: journal}, nil
}

// newMaintJournal builds the store-wide maintenance journal, or nil when
// Options.MaintJournalEvents is negative.
func newMaintJournal(opts Options) *obs.Journal {
	if opts.MaintJournalEvents < 0 {
		return nil
	}
	return obs.NewJournal(opts.MaintJournalEvents)
}

// newReadCache builds the read cache, or nil when Options.ReadCache is off.
func newReadCache(opts Options) *readcache.Cache {
	if opts.ReadCache.Bytes <= 0 {
		return nil
	}
	return readcache.New(readcache.Options{
		Bytes:    opts.ReadCache.Bytes,
		Segments: opts.ReadCache.Segments,
	})
}

// openSharded opens Options.Shards independent partitions — the buffer
// cache splits evenly across them, the memory budget applies per partition
// (the paper's per-partition budget) — and fronts them with a hash router.
// All partitions share one maintenance pool, so background work is bounded
// machine-wide while each shard compacts independently.
func openSharded(opts Options, pool *maint.Pool, journal *obs.Journal) (*DB, error) {
	n := opts.Shards
	per := opts
	per.Shards = 1
	per.CacheBytes = resolveCacheBytes(opts) / int64(n)
	if minCache := int64(8 * resolvePageSize(opts)); per.CacheBytes < minCache {
		per.CacheBytes = minCache
	}
	parts := make([]*shard.Partition, n)
	for i := range parts {
		po := per
		// Distinct seeds keep per-shard memtable shapes independent while
		// staying deterministic for a given (Seed, Shards) pair.
		po.Seed = opts.Seed + int64(i)*101
		p, err := openPartition(po, pool, journal, i)
		if err != nil {
			for _, prev := range parts[:i] {
				prev.Store.Device().Close()
			}
			return nil, err
		}
		parts[i] = p
	}
	r, err := shard.NewRouter(parts, opts.ShardWorkers)
	if err != nil {
		return nil, err
	}
	db := &DB{ds: parts[0].DS, store: parts[0].Store, env: parts[0].Env, shards: r, pool: pool, cache: newReadCache(opts), journal: journal}
	if db.cache != nil {
		// Batch fan-out workers invalidate their group's keys before the
		// batch is acknowledged (internal/readcache invariant 1).
		r.SetInvalidator(db.cache.Invalidate)
	}
	return db, nil
}

// resolveCacheBytes applies the buffer-cache default (64 MB, matching the
// scaled-down datasets; 2 GB HDD / 4 GB SSD in the paper).
func resolveCacheBytes(opts Options) int64 {
	if opts.CacheBytes != 0 {
		return opts.CacheBytes
	}
	return 64 << 20
}

// defaultMaxSyncDelay is how long a group-commit leader will hold the
// commit window open for announced stragglers when Options.MaxSyncDelay
// is zero. It bounds worst-case added commit latency; with no announced
// peers it is never paid at all.
const defaultMaxSyncDelay = 2 * time.Millisecond

// resolveMaxSyncDelay applies the MaxSyncDelay default (0 → 2ms,
// negative → no window).
func resolveMaxSyncDelay(opts Options) time.Duration {
	switch {
	case opts.MaxSyncDelay < 0:
		return 0
	case opts.MaxSyncDelay == 0:
		return defaultMaxSyncDelay
	}
	return opts.MaxSyncDelay
}

// resolvePageSize returns the effective device page size for the options.
func resolvePageSize(opts Options) int {
	if opts.PageSize > 0 {
		return opts.PageSize
	}
	if opts.Device == SSD {
		return storage.SSD().PageSize
	}
	return storage.HDD().PageSize
}

// openPartition opens one partition: the unsharded store, or shard idx.
func openPartition(opts Options, pool *maint.Pool, journal *obs.Journal, idx int) (*shard.Partition, error) {
	env := metrics.NewEnv()
	if opts.Sleeper != nil {
		env.Clock.SetSleeper(opts.Sleeper)
	}
	profile := storage.HDD()
	if opts.Device == SSD {
		profile = storage.SSD()
	}
	if opts.PageSize > 0 {
		profile = storage.ScaledHDD(opts.PageSize)
		if opts.Device == SSD {
			p := storage.SSD()
			p.PageSize = opts.PageSize
			profile = p
		}
	}
	var dev storage.Device
	var groupCommit *filedev.GroupSyncer
	if opts.Backend == FileBackend {
		fd, err := filedev.Open(shardDir(opts.Dir, idx), profile)
		if err != nil {
			return nil, err
		}
		fd.AttachCounters(env.Counters)
		dev = fd
		if opts.WrapDevice != nil {
			dev = opts.WrapDevice(idx, dev)
		}
		if opts.GroupCommit != GroupCommitOff {
			// The syncer runs over the (possibly wrapped) device, so an
			// injected SyncWAL fault reaches the covering group fsync.
			if sd, ok := dev.(storage.WALSyncDevice); ok {
				groupCommit = filedev.NewGroupSyncerOver(sd, resolveMaxSyncDelay(opts), env.Counters)
				groupCommit.SetSleeper(opts.Sleeper)
			}
		}
	} else {
		dev = storage.NewDisk(profile, env)
		if opts.WrapDevice != nil {
			dev = opts.WrapDevice(idx, dev)
		}
	}
	store := storage.NewStore(dev, resolveCacheBytes(opts), env)

	cfg := core.Config{
		Store:            store,
		Strategy:         opts.Strategy,
		CC:               opts.CC,
		FilterExtract:    opts.FilterExtract,
		MemoryBudget:     opts.MemoryBudget,
		UsePKIndex:       !opts.DisablePKIndex,
		CorrelatedMerges: opts.CorrelatedMerges,
		MergeRepair:      opts.MergeRepair,
		RepairBloomOpt:   opts.RepairBloomOpt,
		BloomFPR:         0.01,
		BlockedBloom:     opts.BlockedBloom,
		// The runtime read path on real files gets the split-block filter:
		// single-cache-line probes and a marshaled form the manifest
		// persists, so reopen skips the rebuild-by-scan. The simulated
		// backend keeps the paper's Standard/Blocked cost-model variants.
		BloomV2:               opts.Backend == FileBackend && !opts.BlockedBloom,
		DisableWAL:            opts.DisableWAL,
		Seed:                  opts.Seed,
		Maintenance:           pool,
		MaxFrozenMemtables:    opts.MaxFrozenMemtables,
		MaxUnmergedComponents: opts.MaxUnmergedComponents,
		Yield:                 opts.Yield,
		Journal:               obs.ShardJournal{J: journal, Shard: idx},
	}
	if !opts.DisableMerges {
		cfg.Policy = lsm.NewTiering(opts.MaxMergeableBytes)
	}
	if groupCommit != nil {
		// Assigned only when non-nil: a typed nil pointer inside the
		// interface would read as "group committer attached" to the log.
		cfg.GroupCommit = groupCommit
	}
	for _, s := range opts.Secondaries {
		cfg.Secondaries = append(cfg.Secondaries, core.SecondarySpec(s))
	}
	ds, err := core.Open(cfg)
	if err != nil {
		dev.Close()
		return nil, err
	}
	return &shard.Partition{DS: ds, Store: store, Env: env}, nil
}

// dsFor returns the dataset owning pk: the single dataset, or the shard
// selected by PK hash.
func (db *DB) dsFor(pk []byte) *core.Dataset {
	if db.shards != nil {
		return db.shards.DatasetFor(pk)
	}
	return db.ds
}

// Insert adds a record; it reports false when the key already exists.
func (db *DB) Insert(pk, record []byte) (bool, error) {
	if err := db.acquire(); err != nil {
		return false, err
	}
	defer db.release()
	ok, err := db.dsFor(pk).Insert(pk, record)
	db.invalidate(pk)
	return ok, err
}

// Upsert inserts or replaces the record under pk.
func (db *DB) Upsert(pk, record []byte) error {
	if err := db.acquire(); err != nil {
		return err
	}
	defer db.release()
	err := db.dsFor(pk).Upsert(pk, record)
	db.invalidate(pk)
	return err
}

// Delete removes the record under pk; it reports false when absent.
func (db *DB) Delete(pk []byte) (bool, error) {
	if err := db.acquire(); err != nil {
		return false, err
	}
	defer db.release()
	ok, err := db.dsFor(pk).Delete(pk)
	db.invalidate(pk)
	return ok, err
}

// invalidate drops pk's read-cache entry after a mutation has been applied
// and before the write returns to the caller. It runs even when the
// mutation was ignored or errored — dropping an entry is always safe, and
// after an uncertain outcome (a failed covering fsync) it is required.
func (db *DB) invalidate(pk []byte) {
	if db.cache != nil {
		db.cache.Invalidate(pk)
	}
}

// Get returns the current record under pk. The returned slice is the
// caller's to keep: it is copied out of the engine. GetRef is the
// zero-copy variant.
func (db *DB) Get(pk []byte) ([]byte, bool, error) {
	if err := db.acquire(); err != nil {
		return nil, false, err
	}
	defer db.release()
	v, found, err := db.getRef(pk)
	if err != nil || !found {
		return nil, false, err
	}
	return append([]byte(nil), v...), true, nil
}

// GetRef returns the current record under pk without copying: the slice
// aliases engine-owned memory — an immutable component page, a memtable
// value, or a read-cache entry — and must be treated as read-only. It stays
// valid as long as the caller holds it (pages are write-once and memtable
// values are replaced, never edited in place; the GC keeps the backing
// buffer alive). The network server encodes GET responses straight from it
// into pooled output frames.
func (db *DB) GetRef(pk []byte) ([]byte, bool, error) {
	if err := db.acquire(); err != nil {
		return nil, false, err
	}
	defer db.release()
	return db.getRef(pk)
}

// getRef is the shared point-read path: read cache first, engine on a
// miss, filling the cache under the version-token protocol that discards
// fills raced by an invalidation (internal/readcache invariant 2).
func (db *DB) getRef(pk []byte) ([]byte, bool, error) {
	if db.cache != nil {
		v, out, tok := db.cache.Get(pk)
		switch out {
		case readcache.Hit:
			return v, true, nil
		case readcache.NegativeHit:
			return nil, false, nil
		default:
			e, found, err := db.dsFor(pk).Primary().Get(pk)
			if err != nil {
				return nil, false, err
			}
			if !found {
				db.cache.PutNegative(pk, tok)
				return nil, false, nil
			}
			db.cache.Put(pk, e.Value, tok)
			return e.Value, true, nil
		}
	}
	e, found, err := db.dsFor(pk).Primary().Get(pk)
	if err != nil || !found {
		return nil, false, err
	}
	return e.Value, true, nil
}

// Mutation is one write in an ApplyBatch.
type Mutation = shard.Mutation

// Op is a Mutation's operation.
type Op = shard.Op

// Batched operations.
const (
	OpUpsert = shard.OpUpsert
	OpInsert = shard.OpInsert
	OpDelete = shard.OpDelete
)

// ApplyBatch applies a batch of mutations. On a sharded store the batch is
// grouped by owning shard and the groups apply concurrently (bounded by
// Options.ShardWorkers); mutations to the same primary key always land in
// the same shard and keep their order within the batch. On an unsharded
// store the batch applies sequentially in order. Duplicate inserts and
// deletes of missing keys are counted as ignored, as in Insert and Delete.
func (db *DB) ApplyBatch(muts []Mutation) error {
	if err := db.acquire(); err != nil {
		return err
	}
	defer db.release()
	if db.shards != nil {
		return db.shards.ApplyBatch(muts)
	}
	err := shard.ApplyMutations(db.ds, muts)
	db.invalidateBatch(muts)
	return err
}

// invalidateBatch drops every mutated key's read-cache entry; the sharded
// equivalent lives in the router's fan-out workers (Router.SetInvalidator).
func (db *DB) invalidateBatch(muts []Mutation) {
	if db.cache == nil {
		return
	}
	for i := range muts {
		db.cache.Invalidate(muts[i].PK)
	}
}

// ApplyBatchResults is ApplyBatch plus a per-mutation report: applied[i]
// tells whether mutation i took effect — upserts always do, duplicate
// inserts and deletes of missing keys do not (they are the batch's ignored
// writes). Entries after a shard's first error are left false. The network
// server's write coalescer uses this to answer each coalesced Insert and
// Delete individually.
func (db *DB) ApplyBatchResults(muts []Mutation) ([]bool, error) {
	if err := db.acquire(); err != nil {
		return nil, err
	}
	defer db.release()
	if db.shards != nil {
		return db.shards.ApplyBatchResults(muts)
	}
	applied := make([]bool, len(muts))
	err := shard.ApplyMutationsResults(db.ds, muts, applied)
	db.invalidateBatch(muts)
	return applied, err
}

// NumShards returns the number of hash partitions (1 when unsharded).
func (db *DB) NumShards() int {
	if db.shards != nil {
		return db.shards.NumShards()
	}
	return 1
}

// QueryOptions configures a secondary-index query.
type QueryOptions struct {
	// Validation selects the validation method; required (non-
	// NoValidation) for lazy strategies.
	Validation ValidationMethod
	// IndexOnly returns primary keys without fetching records.
	IndexOnly bool
	// Lookup tunes the point-lookup optimizations; the zero value is
	// upgraded to the paper's fully optimized configuration.
	Lookup *query.LookupConfig
	// CrackOnValidate lets Timestamp validation mark the obsolete entries
	// it discovers so later queries skip them and the next merge drops
	// them (query-driven maintenance, the paper's Section 7 extension).
	CrackOnValidate bool
	// Limit caps the number of returned records (or keys, for index-only
	// queries); 0 means unlimited. With a limit the answer is sorted in
	// primary-key order before the cap applies — on every shard count —
	// so the selected subset is deterministic for a given store state and
	// does not change when a store is re-opened with a different Shards
	// value.
	Limit int
}

// QueryResult is a secondary query's answer.
type QueryResult struct {
	// Records holds (pk, record) pairs for non-index-only queries.
	Records []Record
	// Keys holds matching primary keys for index-only queries.
	Keys [][]byte
}

// Record is one fetched record.
type Record struct {
	PK    []byte
	Value []byte
}

// ErrUnknownIndex reports a query against an undeclared secondary index.
var ErrUnknownIndex = errors.New("lsmstore: unknown secondary index")

// SecondaryQuery runs a range query lo <= secondary key <= hi on the named
// index.
func (db *DB) SecondaryQuery(index string, lo, hi []byte, opts QueryOptions) (*QueryResult, error) {
	if err := db.acquire(); err != nil {
		return nil, err
	}
	defer db.release()
	lookup := query.DefaultLookupConfig()
	if opts.Lookup != nil {
		lookup = *opts.Lookup
	}
	qopts := query.SecondaryQueryOptions{
		Validation:      opts.Validation,
		IndexOnly:       opts.IndexOnly,
		Lookup:          lookup,
		CrackOnValidate: opts.CrackOnValidate,
	}
	var res *query.SecondaryResult
	if db.shards != nil {
		var err error
		res, err = db.shards.SecondaryQuery(index, lo, hi, qopts, opts.Limit)
		if errors.Is(err, shard.ErrUnknownIndex) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownIndex, index)
		}
		if err != nil {
			return nil, err
		}
	} else {
		si := db.ds.Secondary(index)
		if si == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownIndex, index)
		}
		var err error
		res, err = query.SecondaryRange(db.ds, si, lo, hi, qopts)
		if err != nil {
			return nil, err
		}
		if opts.Limit > 0 {
			// Match the sharded path's semantics: the capped subset is the
			// first Limit results in primary-key order, regardless of the
			// scan order the validation method produced.
			sort.Slice(res.Records, func(i, j int) bool {
				return kv.Compare(res.Records[i].Key, res.Records[j].Key) < 0
			})
			sort.Slice(res.Keys, func(i, j int) bool {
				return kv.Compare(res.Keys[i], res.Keys[j]) < 0
			})
			if len(res.Records) > opts.Limit {
				res.Records = res.Records[:opts.Limit]
			}
			if len(res.Keys) > opts.Limit {
				res.Keys = res.Keys[:opts.Limit]
			}
		}
	}
	out := &QueryResult{Keys: res.Keys}
	for _, e := range res.Records {
		out.Records = append(out.Records, Record{PK: e.Key, Value: e.Value})
	}
	return out, nil
}

// FilterScan scans the primary index for records whose filter key lies in
// [lo, hi], using component range filters for pruning. On a sharded store
// every shard scans concurrently and the union is emitted in primary-key
// order from the caller's goroutine.
func (db *DB) FilterScan(lo, hi int64, fn func(pk, record []byte)) error {
	if err := db.acquire(); err != nil {
		return err
	}
	defer db.release()
	if db.shards != nil {
		return db.shards.FilterScan(lo, hi, func(e kv.Entry) { fn(e.Key, e.Value) })
	}
	return query.FilterScan(db.ds, lo, hi, func(e kv.Entry) { fn(e.Key, e.Value) })
}

// Flush forces all memory components to disk and runs due merges, on every
// shard. With background maintenance enabled it also drains every pending
// build and merge, so the store is fully quiesced when it returns.
func (db *DB) Flush() error {
	if err := db.acquire(); err != nil {
		return err
	}
	defer db.release()
	if db.shards != nil {
		return db.shards.FlushAll()
	}
	return db.ds.FlushAll()
}

// Close drains all pending background maintenance (flush builds and
// merges on every shard), stops the maintenance workers, and — on the file
// backend — persists the final manifests and releases the devices. It does
// not flush live memory components: their committed writes sit in the
// on-disk write-ahead log and are replayed at the next Open (call Flush
// first for a replay-free shutdown image).
//
// Close is idempotent and safe for concurrent use: it waits for in-flight
// operations to finish, runs shutdown exactly once, and concurrent or
// repeated closers return nil once that shutdown completes. Afterwards
// every public operation fails with ErrClosed (Stats keeps returning the
// final pre-Close snapshot, and Crash is a no-op).
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	// Capture the last observable state before tearing the devices down;
	// Stats serves it after Close.
	db.finalStats = db.stats()
	db.closed = true
	var errs []error
	drain := func(ds *core.Dataset) error { return ds.DrainMaintenance() }
	if db.shards != nil {
		if err := db.shards.ForEach(drain); err != nil {
			errs = append(errs, err)
		}
	} else if err := drain(db.ds); err != nil {
		errs = append(errs, err)
	}
	if db.pool != nil {
		db.pool.Close()
	}
	shutdown := func(p *shard.Partition) {
		// WAL compaction drops records that durable components cover — per
		// the IN-MEMORY component lists. Those lists only become durable
		// when Persist lands the manifest, so after a failed Persist the
		// compaction would discard the one copy of acknowledged writes the
		// stale on-disk manifest still needs replayed. Keep the full log in
		// that case; reopen replays it against whatever manifest survived.
		if err := p.DS.Persist(); err != nil {
			errs = append(errs, err)
		} else if err := p.DS.CompactWAL(); err != nil {
			errs = append(errs, err)
		}
		if err := p.Store.Device().Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if db.shards != nil {
		for _, p := range db.shards.Partitions() {
			shutdown(p)
		}
	} else {
		shutdown(&shard.Partition{DS: db.ds, Store: db.store, Env: db.env})
	}
	return errors.Join(errs...)
}

// Crash simulates a failure: all memory components are lost; disk
// components survive (no-steal/no-force, Section 2.2 of the paper). On a
// sharded store every shard fails. Crash on a closed store is a no-op.
func (db *DB) Crash() {
	if err := db.acquire(); err != nil {
		return
	}
	defer db.release()
	if db.shards != nil {
		db.shards.Crash()
	} else {
		db.ds.Crash()
	}
	// After the engine dropped its memory components: cached entries may
	// reflect writes the crash destroyed (internal/readcache invariant 3).
	if db.cache != nil {
		db.cache.InvalidateAll()
	}
}

// Recover replays committed write-ahead-log records lost in a Crash, on
// every shard.
func (db *DB) Recover() error {
	if err := db.acquire(); err != nil {
		return err
	}
	defer db.release()
	var err error
	if db.shards != nil {
		err = db.shards.Recover()
	} else {
		err = db.ds.Recover()
	}
	// Replay resurrects writes that were invisible between Crash and
	// Recover, so negative entries cached in that window are now stale.
	if db.cache != nil {
		db.cache.InvalidateAll()
	}
	return err
}

// RepairSecondaryIndexes runs a standalone repair over every component of
// every secondary index (Validation strategy housekeeping), on every shard.
func (db *DB) RepairSecondaryIndexes() error {
	if err := db.acquire(); err != nil {
		return err
	}
	defer db.release()
	if db.shards != nil {
		return db.shards.ForEach(repairSecondaries)
	}
	return repairSecondaries(db.ds)
}

func repairSecondaries(ds *core.Dataset) error {
	pk := ds.PKIndex()
	if pk == nil {
		return core.ErrNoPKIndex
	}
	for _, si := range ds.Secondaries() {
		if err := repair.RepairAll(si.Tree, pk, repair.Options{UseBloom: ds.Config().RepairBloomOpt}); err != nil {
			return err
		}
	}
	// Repair rewrites obsolete bitmaps and watermarks; capture them in the
	// manifest (no-op on the simulated backend).
	return ds.Persist()
}

// Stats summarizes engine state and accumulated costs. On a sharded store
// the top-level fields aggregate over shards (sums, except SimulatedTime,
// which is the maximum because shards progress concurrently on independent
// devices) and PerShard holds each shard's own snapshot.
type Stats struct {
	// SimulatedTime is the virtual clock reading (cost-model time): the
	// elapsed time of the partition, i.e. the maximum of the ingest lane
	// and the background maintenance lane, which overlap when background
	// maintenance is enabled.
	SimulatedTime string
	// IngestTime is the ingest lane's virtual time: the time the write
	// path experienced. It equals SimulatedTime on a synchronous store;
	// with background maintenance it only absorbs maintenance time at
	// backpressure stalls and drains.
	IngestTime string
	// MaintenanceTime is the background maintenance lane's virtual time
	// ("0s" without background maintenance).
	MaintenanceTime string
	// Ingested and Ignored count accepted and ignored writes.
	Ingested, Ignored int64
	// PrimaryComponents is the primary index's disk-component count.
	PrimaryComponents int
	// DiskBytesWritten is total bytes flushed/merged (write amplification).
	DiskBytesWritten int64
	// PendingFlushBatches and FrozenMemtables are the asynchronous-
	// maintenance backlog gauges: frozen flush batches awaiting a
	// background builder, and frozen batches total (pending plus building)
	// not yet installed. Zero on a synchronous store.
	PendingFlushBatches int
	FrozenMemtables     int
	// Counters snapshots the low-level event counters.
	Counters metrics.Snapshot
	// Maintenance aggregates the maintenance journal: flush/merge counts,
	// durations, bytes and in-flight gauges. Zeros when the journal is
	// disabled (Options.MaintJournalEvents < 0). Top-level only; per-shard
	// snapshots leave it zero because the journal is store-wide.
	Maintenance obs.JournalSummary `json:",omitzero"`
	// Shards is the hash-partition count (1 when unsharded).
	Shards int
	// PerShard holds per-shard statistics in shard order; nil when
	// unsharded.
	PerShard []Stats
}

// Stats reports current statistics. After Close it returns the final
// snapshot Close captured.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return db.finalStats
	}
	return db.stats()
}

// stats computes the snapshot; the caller holds the lifecycle lock.
func (db *DB) stats() Stats {
	if db.shards != nil {
		per := db.shards.StatsPerShard()
		agg := shard.Aggregate(per)
		out := statsFrom(agg)
		if db.cache != nil {
			// The read cache fronts the whole store, so its counters fold
			// into the aggregate only, not into any shard's snapshot.
			out.Counters = out.Counters.Add(db.cache.Counters())
		}
		out.Shards = db.shards.NumShards()
		out.Maintenance = db.journal.Summary()
		out.PerShard = make([]Stats, len(per))
		for i, s := range per {
			out.PerShard[i] = statsFrom(s)
			out.PerShard[i].Shards = 1
		}
		return out
	}
	ingest := db.env.Clock.Now()
	mnt := db.ds.MaintSimTime()
	sim := ingest
	if mnt > sim {
		sim = mnt
	}
	counters := db.env.Counters.Snapshot()
	if db.cache != nil {
		counters = counters.Add(db.cache.Counters())
	}
	pending, frozen := db.ds.MaintGauges()
	return Stats{
		SimulatedTime:       sim.String(),
		IngestTime:          ingest.String(),
		MaintenanceTime:     mnt.String(),
		Ingested:            db.ds.IngestedCount(),
		Ignored:             db.ds.IgnoredCount(),
		PrimaryComponents:   db.ds.Primary().NumDiskComponents(),
		DiskBytesWritten:    db.store.Device().BytesWritten(),
		PendingFlushBatches: pending,
		FrozenMemtables:     frozen,
		Counters:            counters,
		Maintenance:         db.journal.Summary(),
		Shards:              1,
	}
}

// statsFrom converts a shard-level snapshot to the public shape.
func statsFrom(s shard.Stats) Stats {
	return Stats{
		SimulatedTime:       time.Duration(s.SimulatedTime).String(),
		IngestTime:          time.Duration(s.IngestTime).String(),
		MaintenanceTime:     time.Duration(s.MaintTime).String(),
		Ingested:            s.Ingested,
		Ignored:             s.Ignored,
		PrimaryComponents:   s.PrimaryComponents,
		DiskBytesWritten:    s.DiskBytesWritten,
		PendingFlushBatches: s.PendingFlushBatches,
		FrozenMemtables:     s.FrozenMemtables,
		Counters:            s.Counters,
	}
}

// MaintJournal returns the store-wide maintenance journal: a bounded ring
// of flush/merge events (duration, bytes, component counts, per-shard)
// plus lifetime totals. It is nil when Options.MaintJournalEvents is
// negative; obs.Journal methods are nil-safe, so callers may use the
// result without checking.
func (db *DB) MaintJournal() *obs.Journal { return db.journal }

// MaintPoolStats reports the background maintenance pool's queue depth,
// executing jobs, and worker bound. All zeros on a synchronous store
// (Options.MaintenanceWorkers == 0).
func (db *DB) MaintPoolStats() (queued, active, workers int) {
	if db.pool == nil {
		return 0, 0, 0
	}
	return db.pool.Stats()
}

// SetMergeGate installs a dispatch gate called before each merge job runs
// (nil clears it). The server's admission governor uses it to throttle
// merge I/O against foreground latency; flush jobs are never gated.
// No-op on a synchronous store (no maintenance pool). Gating changes
// merge timing only, never results — see TestMergeGateObservationalOnly.
func (db *DB) SetMergeGate(gate func()) {
	if db.pool == nil {
		return
	}
	db.pool.SetGate(gate)
}

// WorkloadProfile describes an expected workload for Advise.
type WorkloadProfile = advisor.Profile

// AdvisorReport holds per-strategy probe measurements.
type AdvisorReport = advisor.Report

// Advise recommends a maintenance strategy for the given workload profile
// by probing every candidate on a miniature simulated replay (the paper's
// Section 7 auto-tuning direction).
func Advise(p WorkloadProfile) (Strategy, AdvisorReport, error) {
	return advisor.Recommend(p)
}

// Dataset exposes the underlying dataset for advanced use (experiments).
// On a sharded store it returns shard 0; use Shard to reach the others.
func (db *DB) Dataset() *core.Dataset { return db.ds }

// Shard exposes shard i's dataset for advanced use. On an unsharded store
// only shard 0 exists.
func (db *DB) Shard(i int) *core.Dataset {
	if db.shards != nil {
		return db.shards.Partition(i).DS
	}
	if i != 0 {
		panic(fmt.Sprintf("lsmstore: shard %d of an unsharded store", i))
	}
	return db.ds
}

// Env exposes the metrics environment (virtual clock and counters). On a
// sharded store it returns shard 0's environment; each shard has its own.
func (db *DB) Env() *metrics.Env { return db.env }
