// Package lsmstore is the public API of this repository: a general-purpose
// LSM-based storage engine with secondary indexes and range filters,
// implementing the ingestion and query-processing techniques of Luo &
// Carey, "Efficient Data Ingestion and Query Processing for LSM-Based
// Storage Systems" (PVLDB 12(5), 2019).
//
// A DB is one dataset partition backed by a simulated disk with an explicit
// I/O cost model (see DESIGN.md), holding a primary LSM index, an optional
// primary key index, and any number of secondary indexes that share a
// memory budget. The maintenance strategy for auxiliary structures — Eager,
// Validation, Mutable-bitmap, or Deleted-key B+-tree — is chosen at Open
// time, and queries pick a validation method per request.
//
// Quickstart:
//
//	db, _ := lsmstore.Open(lsmstore.Options{
//		Strategy: lsmstore.Validation,
//		Secondaries: []lsmstore.SecondaryIndex{
//			{Name: "user", Extract: extractUserID},
//		},
//	})
//	db.Upsert(pk, record)
//	res, _ := db.SecondaryQuery("user", loKey, hiKey, lsmstore.QueryOptions{
//		Validation: lsmstore.TimestampValidation,
//	})
package lsmstore

import (
	"errors"
	"fmt"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/repair"
	"repro/internal/storage"
)

// Strategy selects the auxiliary-structure maintenance strategy.
type Strategy = core.Strategy

// Maintenance strategies (paper Sections 3-5).
const (
	Eager         = core.Eager
	Validation    = core.Validation
	MutableBitmap = core.MutableBitmap
	DeletedKey    = core.DeletedKey
)

// CCMethod selects Mutable-bitmap merge concurrency control.
type CCMethod = core.CCMethod

// Concurrency-control methods (Section 5.3).
const (
	SideFile = core.SideFile
	Lock     = core.Lock
	NoCC     = core.NoCC
)

// ValidationMethod selects query validation (Figure 5).
type ValidationMethod = query.ValidationMethod

// Validation methods.
const (
	NoValidation        = query.NoValidation
	DirectValidation    = query.Direct
	TimestampValidation = query.Timestamp
)

// Device selects the simulated storage device profile.
type Device int

// Devices (Section 6.1's two testbeds).
const (
	HDD Device = iota
	SSD
)

// SecondaryIndex declares one secondary index.
type SecondaryIndex struct {
	// Name identifies the index in SecondaryQuery calls.
	Name string
	// Extract returns the secondary key of a record, or false when the
	// record carries none.
	Extract func(record []byte) ([]byte, bool)
}

// Options configures a DB. The zero value gives an Eager-strategy store on
// a simulated HDD with a 64 MB buffer cache and a 4 MB memory budget.
type Options struct {
	// Strategy is the maintenance strategy for secondary indexes and
	// filters.
	Strategy Strategy
	// CC is the Mutable-bitmap concurrency-control method.
	CC CCMethod
	// Secondaries declares secondary indexes.
	Secondaries []SecondaryIndex
	// FilterExtract, when set, maintains a component-level range filter
	// over the extracted value (e.g. a creation timestamp).
	FilterExtract func(record []byte) (int64, bool)
	// Device selects the simulated device profile (HDD or SSD).
	Device Device
	// PageSize overrides the device page size (testing).
	PageSize int
	// CacheBytes sizes the buffer cache (2 GB HDD / 4 GB SSD in the
	// paper; defaults to 64 MB here to match scaled-down datasets).
	CacheBytes int64
	// MemoryBudget is the shared memory-component budget (default 4 MB).
	MemoryBudget int
	// DisablePKIndex drops the primary key index (Figure 13's ablation);
	// uniqueness checks then use the primary index.
	DisablePKIndex bool
	// MaxMergeableBytes caps mergeable component size for the tiering
	// merge policy (1 GB in the paper; 0 = uncapped). Set
	// DisableMerges to turn merging off entirely.
	MaxMergeableBytes int64
	DisableMerges     bool
	// CorrelatedMerges synchronizes merges across all indexes.
	CorrelatedMerges bool
	// MergeRepair repairs secondary indexes during merges (Validation).
	MergeRepair bool
	// RepairBloomOpt enables the Bloom-filter repair optimization.
	RepairBloomOpt bool
	// BlockedBloom uses cache-friendly blocked Bloom filters.
	BlockedBloom bool
	// DisableWAL turns off write-ahead logging.
	DisableWAL bool
	// Seed fixes all pseudo-random choices.
	Seed int64
}

// DB is one dataset partition.
type DB struct {
	ds    *core.Dataset
	store *storage.Store
	env   *metrics.Env
}

// Open creates an empty DB.
func Open(opts Options) (*DB, error) {
	env := metrics.NewEnv()
	profile := storage.HDD()
	if opts.Device == SSD {
		profile = storage.SSD()
	}
	if opts.PageSize > 0 {
		profile = storage.ScaledHDD(opts.PageSize)
		if opts.Device == SSD {
			p := storage.SSD()
			p.PageSize = opts.PageSize
			profile = p
		}
	}
	cacheBytes := opts.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 64 << 20
	}
	store := storage.NewStore(storage.NewDisk(profile, env), cacheBytes, env)

	cfg := core.Config{
		Store:            store,
		Strategy:         opts.Strategy,
		CC:               opts.CC,
		FilterExtract:    opts.FilterExtract,
		MemoryBudget:     opts.MemoryBudget,
		UsePKIndex:       !opts.DisablePKIndex,
		CorrelatedMerges: opts.CorrelatedMerges,
		MergeRepair:      opts.MergeRepair,
		RepairBloomOpt:   opts.RepairBloomOpt,
		BloomFPR:         0.01,
		BlockedBloom:     opts.BlockedBloom,
		DisableWAL:       opts.DisableWAL,
		Seed:             opts.Seed,
	}
	if !opts.DisableMerges {
		cfg.Policy = lsm.NewTiering(opts.MaxMergeableBytes)
	}
	for _, s := range opts.Secondaries {
		cfg.Secondaries = append(cfg.Secondaries, core.SecondarySpec(s))
	}
	ds, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{ds: ds, store: store, env: env}, nil
}

// Insert adds a record; it reports false when the key already exists.
func (db *DB) Insert(pk, record []byte) (bool, error) { return db.ds.Insert(pk, record) }

// Upsert inserts or replaces the record under pk.
func (db *DB) Upsert(pk, record []byte) error { return db.ds.Upsert(pk, record) }

// Delete removes the record under pk; it reports false when absent.
func (db *DB) Delete(pk []byte) (bool, error) { return db.ds.Delete(pk) }

// Get returns the current record under pk.
func (db *DB) Get(pk []byte) ([]byte, bool, error) {
	e, found, err := db.ds.Primary().Get(pk)
	if err != nil || !found {
		return nil, false, err
	}
	return append([]byte(nil), e.Value...), true, nil
}

// QueryOptions configures a secondary-index query.
type QueryOptions struct {
	// Validation selects the validation method; required (non-
	// NoValidation) for lazy strategies.
	Validation ValidationMethod
	// IndexOnly returns primary keys without fetching records.
	IndexOnly bool
	// Lookup tunes the point-lookup optimizations; the zero value is
	// upgraded to the paper's fully optimized configuration.
	Lookup *query.LookupConfig
	// CrackOnValidate lets Timestamp validation mark the obsolete entries
	// it discovers so later queries skip them and the next merge drops
	// them (query-driven maintenance, the paper's Section 7 extension).
	CrackOnValidate bool
}

// QueryResult is a secondary query's answer.
type QueryResult struct {
	// Records holds (pk, record) pairs for non-index-only queries.
	Records []Record
	// Keys holds matching primary keys for index-only queries.
	Keys [][]byte
}

// Record is one fetched record.
type Record struct {
	PK    []byte
	Value []byte
}

// ErrUnknownIndex reports a query against an undeclared secondary index.
var ErrUnknownIndex = errors.New("lsmstore: unknown secondary index")

// SecondaryQuery runs a range query lo <= secondary key <= hi on the named
// index.
func (db *DB) SecondaryQuery(index string, lo, hi []byte, opts QueryOptions) (*QueryResult, error) {
	si := db.ds.Secondary(index)
	if si == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIndex, index)
	}
	lookup := query.DefaultLookupConfig()
	if opts.Lookup != nil {
		lookup = *opts.Lookup
	}
	res, err := query.SecondaryRange(db.ds, si, lo, hi, query.SecondaryQueryOptions{
		Validation:      opts.Validation,
		IndexOnly:       opts.IndexOnly,
		Lookup:          lookup,
		CrackOnValidate: opts.CrackOnValidate,
	})
	if err != nil {
		return nil, err
	}
	out := &QueryResult{Keys: res.Keys}
	for _, e := range res.Records {
		out.Records = append(out.Records, Record{PK: e.Key, Value: e.Value})
	}
	return out, nil
}

// FilterScan scans the primary index for records whose filter key lies in
// [lo, hi], using component range filters for pruning.
func (db *DB) FilterScan(lo, hi int64, fn func(pk, record []byte)) error {
	return query.FilterScan(db.ds, lo, hi, func(e kv.Entry) { fn(e.Key, e.Value) })
}

// Flush forces all memory components to disk and runs due merges.
func (db *DB) Flush() error { return db.ds.FlushAll() }

// Crash simulates a failure: all memory components are lost; disk
// components survive (no-steal/no-force, Section 2.2 of the paper).
func (db *DB) Crash() { db.ds.Crash() }

// Recover replays committed write-ahead-log records lost in a Crash.
func (db *DB) Recover() error { return db.ds.Recover() }

// RepairSecondaryIndexes runs a standalone repair over every component of
// every secondary index (Validation strategy housekeeping).
func (db *DB) RepairSecondaryIndexes() error {
	pk := db.ds.PKIndex()
	if pk == nil {
		return core.ErrNoPKIndex
	}
	for _, si := range db.ds.Secondaries() {
		if err := repair.RepairAll(si.Tree, pk, repair.Options{UseBloom: db.ds.Config().RepairBloomOpt}); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes engine state and accumulated costs.
type Stats struct {
	// SimulatedTime is the virtual clock reading (cost-model time).
	SimulatedTime string
	// Ingested and Ignored count accepted and ignored writes.
	Ingested, Ignored int64
	// PrimaryComponents is the primary index's disk-component count.
	PrimaryComponents int
	// DiskBytesWritten is total bytes flushed/merged (write amplification).
	DiskBytesWritten int64
	// Counters snapshots the low-level event counters.
	Counters metrics.Snapshot
}

// Stats reports current statistics.
func (db *DB) Stats() Stats {
	return Stats{
		SimulatedTime:     db.env.Clock.Now().String(),
		Ingested:          db.ds.IngestedCount(),
		Ignored:           db.ds.IgnoredCount(),
		PrimaryComponents: db.ds.Primary().NumDiskComponents(),
		DiskBytesWritten:  db.store.Disk().BytesWritten(),
		Counters:          db.env.Counters.Snapshot(),
	}
}

// WorkloadProfile describes an expected workload for Advise.
type WorkloadProfile = advisor.Profile

// AdvisorReport holds per-strategy probe measurements.
type AdvisorReport = advisor.Report

// Advise recommends a maintenance strategy for the given workload profile
// by probing every candidate on a miniature simulated replay (the paper's
// Section 7 auto-tuning direction).
func Advise(p WorkloadProfile) (Strategy, AdvisorReport, error) {
	return advisor.Recommend(p)
}

// Dataset exposes the underlying dataset for advanced use (experiments).
func (db *DB) Dataset() *core.Dataset { return db.ds }

// Env exposes the metrics environment (virtual clock and counters).
func (db *DB) Env() *metrics.Env { return db.env }
