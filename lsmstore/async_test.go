package lsmstore_test

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/workload"
	"repro/lsmstore"
)

// asyncOptions returns a store configuration with background maintenance:
// a small memory budget keeps flush batches flowing through the pool.
func asyncOptions(strategy lsmstore.Strategy, shards, workers int) lsmstore.Options {
	opts := shardedOptions(strategy, shards)
	opts.MaintenanceWorkers = workers
	return opts
}

// applyWorkload drives a deterministic mixed stream from the seeded
// generator into db and returns the live model (id -> record).
func applyWorkload(t *testing.T, db *lsmstore.DB, n int) map[uint64][]byte {
	t.Helper()
	cfg := workload.DefaultConfig(17)
	cfg.UserIDRange = 40
	cfg.UpdateRatio = 0.4
	cfg.ZipfUpdates = true
	gen := workload.NewGenerator(cfg)
	model := make(map[uint64][]byte)
	for i := 0; i < n; i++ {
		op := gen.Next()
		rec := op.Tweet.Encode()
		if i%11 == 10 {
			if _, err := db.Delete(op.Tweet.PK()); err != nil {
				t.Fatal(err)
			}
			delete(model, op.Tweet.ID)
			continue
		}
		if err := db.Upsert(op.Tweet.PK(), rec); err != nil {
			t.Fatal(err)
		}
		model[op.Tweet.ID] = rec
	}
	return model
}

// storeFingerprint summarizes everything a client can observe: every live
// record via Get, the full secondary answer, and the filter-scan rows.
// The validation method must match the strategy (NoValidation for Eager:
// its unchanged-key upsert optimization keeps old entry timestamps, so
// Timestamp validation's repairedTS pruning — a function of merge grouping
// — would make the answer structure-dependent).
func storeFingerprint(t *testing.T, db *lsmstore.DB, validation lsmstore.ValidationMethod, model map[uint64][]byte) string {
	t.Helper()
	var sb []string
	ids := make([]uint64, 0, len(model))
	for id := range model {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec, found, err := db.Get(tweetPK(id))
		if err != nil {
			t.Fatal(err)
		}
		sb = append(sb, fmt.Sprintf("get:%d:%v:%x", id, found, rec))
	}
	q, err := db.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(39),
		lsmstore.QueryOptions{Validation: validation})
	if err != nil {
		t.Fatal(err)
	}
	sb = append(sb, "secondary:"+recordSet(q.Records))
	var scans []string
	if err := db.FilterScan(0, 1<<62, func(pk, rec []byte) {
		scans = append(scans, fmt.Sprintf("%x=%x", pk, rec))
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(scans)
	sb = append(sb, "scan:"+fmt.Sprint(scans))
	return fmt.Sprint(sb)
}

// TestAsyncEquivalence applies the identical seeded workload with
// MaintenanceWorkers 0 (today's synchronous path) and 4 (the background
// scheduler) and demands identical query results and ingestion counts from
// every read path once both stores are drained. No wall-clock or
// scheduling-dependent quantity is asserted.
func TestAsyncEquivalence(t *testing.T) {
	for _, strategy := range []lsmstore.Strategy{lsmstore.Eager, lsmstore.Validation, lsmstore.MutableBitmap} {
		strategy := strategy
		for _, shards := range []int{1, 4} {
			shards := shards
			t.Run(fmt.Sprintf("%v/shards=%d", strategy, shards), func(t *testing.T) {
				validation := lsmstore.TimestampValidation
				if strategy == lsmstore.Eager {
					validation = lsmstore.NoValidation
				}
				syncDB, err := lsmstore.Open(asyncOptions(strategy, shards, 0))
				if err != nil {
					t.Fatal(err)
				}
				asyncDB, err := lsmstore.Open(asyncOptions(strategy, shards, 4))
				if err != nil {
					t.Fatal(err)
				}
				defer asyncDB.Close()

				model := applyWorkload(t, syncDB, 2500)
				model2 := applyWorkload(t, asyncDB, 2500)
				if len(model) != len(model2) {
					t.Fatalf("models diverge: %d vs %d live rows", len(model), len(model2))
				}
				if err := syncDB.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := asyncDB.Flush(); err != nil {
					t.Fatal(err)
				}

				sa, sb := syncDB.Stats(), asyncDB.Stats()
				if sa.Ingested != sb.Ingested || sa.Ignored != sb.Ignored {
					t.Fatalf("counts diverge: sync %d/%d async %d/%d",
						sa.Ingested, sa.Ignored, sb.Ingested, sb.Ignored)
				}
				fa := storeFingerprint(t, syncDB, validation, model)
				fb := storeFingerprint(t, asyncDB, validation, model)
				if fa != fb {
					t.Fatalf("stores diverge under identical workloads:\nsync:  %.400s\nasync: %.400s", fa, fb)
				}
			})
		}
	}
}

// TestAsyncShardedConcurrentBattery races batch writers against
// SecondaryQuery, FilterScan, Get and Stats readers on a 4-shard store with
// background maintenance — flush builds and merges run on the shared pool
// while every read path executes. Its real assertions run under -race.
func TestAsyncShardedConcurrentBattery(t *testing.T) {
	for _, strategy := range []lsmstore.Strategy{lsmstore.Validation, lsmstore.Eager, lsmstore.MutableBitmap} {
		strategy := strategy
		t.Run(fmt.Sprint(strategy), func(t *testing.T) {
			validation := lsmstore.TimestampValidation
			if strategy == lsmstore.Eager {
				validation = lsmstore.NoValidation
			}
			db, err := lsmstore.Open(asyncOptions(strategy, 4, 3))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			const (
				writers = 3
				batches = 5
				perB    = 150
			)
			var wg sync.WaitGroup
			errc := make(chan error, writers+2)
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for bnum := 0; bnum < batches; bnum++ {
						var muts []lsmstore.Mutation
						for i := 0; i < perB; i++ {
							id := uint64(w*1_000_000 + bnum*perB + i + 1)
							muts = append(muts, lsmstore.Mutation{
								Op: lsmstore.OpInsert, PK: tweetPK(id),
								Record: tweetRec(id, uint32(id%50), int64(id)),
							})
						}
						// Delete a few of the batch's own keys afterwards.
						for i := 0; i < perB; i += 40 {
							id := uint64(w*1_000_000 + bnum*perB + i + 1)
							muts = append(muts, lsmstore.Mutation{Op: lsmstore.OpDelete, PK: tweetPK(id)})
						}
						if err := db.ApplyBatch(muts); err != nil {
							errc <- err
							return
						}
					}
				}()
			}
			stop := make(chan struct{})
			var rwg sync.WaitGroup
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					_ = db.Stats()
					if _, _, err := db.Get(tweetPK(uint64(i%500 + 1))); err != nil {
						errc <- err
						return
					}
					if _, err := db.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(9),
						lsmstore.QueryOptions{Validation: validation}); err != nil {
						errc <- err
						return
					}
					if err := db.FilterScan(0, 1<<62, func(pk, rec []byte) {}); err != nil {
						errc <- err
						return
					}
				}
			}()
			wg.Wait()
			close(stop)
			rwg.Wait()
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			// Every surviving insert is visible; every deleted key is gone.
			for w := 0; w < writers; w++ {
				for bnum := 0; bnum < batches; bnum++ {
					for i := 0; i < perB; i += 7 {
						id := uint64(w*1_000_000 + bnum*perB + i + 1)
						rec, found, err := db.Get(tweetPK(id))
						if err != nil {
							t.Fatal(err)
						}
						wantGone := i%40 == 0
						if found == wantGone {
							t.Fatalf("writer %d key %d: found=%v wantGone=%v", w, id, found, wantGone)
						}
						if found && !bytes.Equal(rec, tweetRec(id, uint32(id%50), int64(id))) {
							t.Fatalf("key %d corrupted", id)
						}
					}
				}
			}
			// Per batch: perB inserts plus 4 deletes of existing keys
			// (i = 0, 40, 80, 120), all of which count as ingested.
			if got, want := db.Stats().Ingested, int64(writers*batches*(perB+4)); got != want {
				t.Fatalf("ingested %d want %d", got, want)
			}
		})
	}
}
