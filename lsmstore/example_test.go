package lsmstore_test

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/lsmstore"
)

// userRecord encodes a minimal record: 8-byte timestamp + location string.
func userRecord(location string, year int64) []byte {
	rec := make([]byte, 8, 8+len(location))
	binary.BigEndian.PutUint64(rec, uint64(year))
	return append(rec, location...)
}

func userLocation(rec []byte) ([]byte, bool) {
	if len(rec) < 8 {
		return nil, false
	}
	return rec[8:], true
}

func userYear(rec []byte) (int64, bool) {
	if len(rec) < 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(rec)), true
}

func userPK(id uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, id)
	return b
}

// Example reproduces the paper's Figure 2-3 running example end to end.
func Example() {
	db, err := lsmstore.Open(lsmstore.Options{
		Strategy:      lsmstore.Eager,
		Secondaries:   []lsmstore.SecondaryIndex{{Name: "location", Extract: userLocation}},
		FilterExtract: userYear,
	})
	if err != nil {
		log.Fatal(err)
	}
	db.Upsert(userPK(101), userRecord("CA", 2015))
	db.Upsert(userPK(102), userRecord("CA", 2016))
	db.Upsert(userPK(103), userRecord("MA", 2017))
	db.Upsert(userPK(101), userRecord("NY", 2018)) // Figure 3's upsert

	res, _ := db.SecondaryQuery("location", []byte("CA"), []byte("CA"), lsmstore.QueryOptions{})
	for _, r := range res.Records {
		fmt.Printf("user %d is in CA\n", binary.BigEndian.Uint64(r.PK))
	}
	// Output: user 102 is in CA
}

// ExampleDB_FilterScan shows component-level pruning with a range filter.
func ExampleDB_FilterScan() {
	db, _ := lsmstore.Open(lsmstore.Options{
		Strategy:      lsmstore.MutableBitmap,
		FilterExtract: userYear,
	})
	for y := int64(2010); y <= 2020; y++ {
		db.Upsert(userPK(uint64(y)), userRecord("CA", y))
	}
	count := 0
	db.FilterScan(2015, 2017, func(pk, rec []byte) { count++ })
	fmt.Println(count, "records in [2015, 2017]")
	// Output: 3 records in [2015, 2017]
}

// ExampleDB_Recover demonstrates crash recovery from the write-ahead log.
func ExampleDB_Recover() {
	db, _ := lsmstore.Open(lsmstore.Options{Strategy: lsmstore.Validation})
	db.Upsert(userPK(1), userRecord("CA", 2015))
	db.Flush() // durable in a disk component
	db.Upsert(userPK(2), userRecord("NY", 2016))

	db.Crash() // memory components lost
	_, found, _ := db.Get(userPK(2))
	fmt.Println("after crash, record 2 found:", found)

	db.Recover() // replays the committed upsert of record 2
	_, found, _ = db.Get(userPK(2))
	fmt.Println("after recovery, record 2 found:", found)
	// Output:
	// after crash, record 2 found: false
	// after recovery, record 2 found: true
}

// ExampleQueryOptions_crackOnValidate shows query-driven maintenance.
func ExampleQueryOptions() {
	db, _ := lsmstore.Open(lsmstore.Options{
		Strategy:    lsmstore.Validation,
		Secondaries: []lsmstore.SecondaryIndex{{Name: "location", Extract: userLocation}},
	})
	db.Upsert(userPK(1), userRecord("CA", 2015))
	db.Flush()
	db.Upsert(userPK(1), userRecord("NY", 2016)) // obsolete (CA,1) remains on disk
	db.Flush()

	res, _ := db.SecondaryQuery("location", []byte("CA"), []byte("CA"), lsmstore.QueryOptions{
		Validation:      lsmstore.TimestampValidation,
		CrackOnValidate: true, // the query marks (CA,1) invalid for good
	})
	fmt.Println(len(res.Records), "records in CA")
	// Output: 0 records in CA
}
