package lsmstore_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wal"
	"repro/lsmstore"
)

// The file-backend durability battery: everything a previous process
// committed — whether it Closed cleanly or crashed — must be served again
// after lsmstore.Open on the same directory, and the recovered store must
// answer every read path exactly like a never-restarted one.

// The shared fixtures — diskOptions, storeImage, mixedWorkload,
// snapshotStoreDir, the acknowledged-write ledger — live in
// lsmstore/internal/storetest (see helpers_test.go for the local names).

// TestFileBackendReopenAfterClose writes, flushes, closes, reopens, and
// demands an identical image from every read path — for every strategy,
// since each persists different auxiliary state (bitmaps, deleted-key
// trees, repair watermarks).
func TestFileBackendReopenAfterClose(t *testing.T) {
	for _, strategy := range []lsmstore.Strategy{lsmstore.Eager, lsmstore.Validation, lsmstore.MutableBitmap, lsmstore.DeletedKey} {
		t.Run(strategy.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, err := lsmstore.Open(diskOptions(strategy, dir))
			if err != nil {
				t.Fatal(err)
			}
			ids := mixedWorkload(t, db, 900, 17)
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			want := storeImage(t, db, ids, validationFor(strategy))
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := lsmstore.Open(diskOptions(strategy, dir))
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer re.Close()
			if got := storeImage(t, re, ids, validationFor(strategy)); got != want {
				t.Fatalf("reopened image diverges:\n got %s\nwant %s", got, want)
			}
			// The reopened store must keep working: write more, flush, read.
			mixedWorkload(t, re, 200, 99)
			if err := re.Flush(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFileBackendCrashRecovery abandons the store without Close — memory
// components, batch buffers and all — so reopening exercises WAL replay on
// top of the last durable manifest, exactly what a process kill leaves.
func TestFileBackendCrashRecovery(t *testing.T) {
	for _, strategy := range []lsmstore.Strategy{lsmstore.Eager, lsmstore.Validation, lsmstore.MutableBitmap, lsmstore.DeletedKey} {
		t.Run(strategy.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, err := lsmstore.Open(diskOptions(strategy, dir))
			if err != nil {
				t.Fatal(err)
			}
			ids := mixedWorkload(t, db, 500, 23)
			// A flush makes a durable manifest mid-history, so replay must
			// start from real components, not an empty store.
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			more := mixedWorkload(t, db, 300, 41) // tail lives only in the WAL
			want := storeImage(t, db, ids, validationFor(strategy))
			wantMore := storeImage(t, db, more, validationFor(strategy))
			// No Close: the process "dies" here. Committed writes are on
			// disk (WAL fsynced at commit); everything else is lost. The
			// abandoned store still holds the directory flock (in a real
			// kill the kernel would release it), so recovery opens a crash
			// image of the directory, exactly like a restarted machine.
			snap := t.TempDir()
			if err := snapshotStoreDir(dir, snap); err != nil {
				t.Fatal(err)
			}

			re, err := lsmstore.Open(diskOptions(strategy, snap))
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer re.Close()
			if got := storeImage(t, re, ids, validationFor(strategy)); got != want {
				t.Fatalf("recovered image diverges:\n got %s\nwant %s", got, want)
			}
			if got := storeImage(t, re, more, validationFor(strategy)); got != wantMore {
				t.Fatalf("WAL-replayed tail diverges:\n got %s\nwant %s", got, wantMore)
			}
		})
	}
}

// TestFileBackendShardedReopen checks per-shard directories round-trip and
// that a wrong shard count is refused instead of silently mis-routing.
func TestFileBackendShardedReopen(t *testing.T) {
	dir := t.TempDir()
	opts := diskOptions(lsmstore.Validation, dir)
	opts.Shards = 4
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := mixedWorkload(t, db, 800, 31)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	want := storeImage(t, db, ids, lsmstore.TimestampValidation)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	wrong := opts
	wrong.Shards = 2
	if _, err := lsmstore.Open(wrong); err == nil {
		t.Fatal("reopen with a different shard count was accepted")
	}

	re, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := storeImage(t, re, ids, lsmstore.TimestampValidation); got != want {
		t.Fatalf("sharded reopen diverges:\n got %s\nwant %s", got, want)
	}
}

// TestFileBackendAbandonsPartialInstalls plants orphan component files —
// the state a crash leaves when it lands between the data sync and the
// manifest rename of a flush or merge install — and demands that reopen
// drops them and serves exactly the manifest's state.
func TestFileBackendAbandonsPartialInstalls(t *testing.T) {
	dir := t.TempDir()
	db, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
	if err != nil {
		t.Fatal(err)
	}
	ids := mixedWorkload(t, db, 500, 7)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	want := storeImage(t, db, ids, lsmstore.TimestampValidation)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	shardDir := filepath.Join(dir, "shard-0000")
	// A half-written merge output: a copy of a live component under a
	// never-installed file ID, plus a zero-page torn one.
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var donor string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "c") && strings.HasSuffix(e.Name(), ".lsm") {
			donor = filepath.Join(shardDir, e.Name())
			break
		}
	}
	if donor == "" {
		t.Fatal("no component file found to clone")
	}
	orphan := filepath.Join(shardDir, "c99999990.lsm")
	if err := copyFile(donor, orphan); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(shardDir, "c99999991.lsm")
	if err := os.WriteFile(torn, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
	if err != nil {
		t.Fatalf("reopen with orphans: %v", err)
	}
	defer re.Close()
	if got := storeImage(t, re, ids, lsmstore.TimestampValidation); got != want {
		t.Fatalf("image diverges after orphan GC:\n got %s\nwant %s", got, want)
	}
	for _, p := range []string{orphan, torn} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived reopen (err=%v)", p, err)
		}
	}
}

// TestFileBackendMatchesSim drives the identical workload into a simulated
// store and a file-backed store and demands identical visible contents —
// the backends must differ only in durability, never in semantics.
func TestFileBackendMatchesSim(t *testing.T) {
	for _, strategy := range []lsmstore.Strategy{lsmstore.Eager, lsmstore.Validation, lsmstore.MutableBitmap} {
		t.Run(strategy.String(), func(t *testing.T) {
			simOpts := tinyOptions(strategy)
			simOpts.Backend = lsmstore.SimBackend
			simOpts.Dir = ""
			sim, err := lsmstore.Open(simOpts)
			if err != nil {
				t.Fatal(err)
			}
			disk, err := lsmstore.Open(diskOptions(strategy, t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			defer disk.Close()
			simIDs := mixedWorkload(t, sim, 700, 13)
			diskIDs := mixedWorkload(t, disk, 700, 13)
			if err := sim.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := disk.Flush(); err != nil {
				t.Fatal(err)
			}
			v := validationFor(strategy)
			if got, want := storeImage(t, disk, diskIDs, v), storeImage(t, sim, simIDs, v); got != want {
				t.Fatalf("backends diverge:\n disk %s\n sim  %s", got, want)
			}
		})
	}
}

// TestFileBackendKillMidMaintenance mirrors the simulated kill-mid-flush /
// mid-merge battery on real files: with background maintenance running, a
// crash image of the directory is captured while builds and merges are in
// flight (manifest and WAL first, then component files — the order crash
// consistency guarantees make safe: a referenced file never changes after
// the manifest references it). Reopening the image must succeed, abandon
// any partial installs, and serve every write acknowledged before the
// snapshot began.
func TestFileBackendKillMidMaintenance(t *testing.T) {
	dir := t.TempDir()
	opts := diskOptions(lsmstore.Validation, dir)
	opts.MaintenanceWorkers = 2
	opts.MemoryBudget = 16 << 10 // many background flushes and merges
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: acknowledged before the snapshot — must survive.
	ids := mixedWorkload(t, db, 600, 53)

	snap := t.TempDir()
	if err := snapshotStoreDir(dir, snap); err != nil {
		t.Fatal(err)
	}
	// Phase 2: concurrent with and after the snapshot — may or may not be
	// in the image; the reopen must stay consistent regardless.
	mixedWorkload(t, db, 400, 67)
	// The original process "dies": no Close, background jobs abandoned.

	re, err := lsmstore.Open(diskOptions(lsmstore.Validation, snap))
	if err != nil {
		t.Fatalf("reopen of crash image: %v", err)
	}
	defer re.Close()
	// Every phase-1 write was committed (WAL fsynced) before the snapshot
	// copied the WAL, so the recovered store must serve all of them. The
	// expected values come from a clean replay of the same deterministic
	// stream into a fresh simulated store.
	refOpts := tinyOptions(lsmstore.Validation)
	refOpts.Backend = lsmstore.SimBackend
	refOpts.Dir = ""
	ref, err := lsmstore.Open(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	mixedWorkload(t, ref, 600, 53)
	want := storeImage(t, ref, ids, lsmstore.TimestampValidation)
	if got := storeImage(t, re, ids, lsmstore.TimestampValidation); got != want {
		t.Fatalf("crash image lost acknowledged writes:\n got %s\nwant %s", got, want)
	}
}

// TestFileBackendTornWALTailThenMoreSessions is the regression test for a
// subtle loss mode: session 1 crashes mid-append leaving a torn record at
// the WAL tail; session 2 must not append behind that garbage, or every
// write it commits would be unreadable to session 3.
func TestFileBackendTornWALTailThenMoreSessions(t *testing.T) {
	dir := t.TempDir()
	db, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
	if err != nil {
		t.Fatal(err)
	}
	ids := mixedWorkload(t, db, 200, 11)
	// Session 1 "crashes": no Close, and the kernel flushed half a record.
	// The crashed owner's flock would be released by the kernel; simulate
	// the post-crash disk with an image copy.
	snap := t.TempDir()
	if err := snapshotStoreDir(dir, snap); err != nil {
		t.Fatal(err)
	}
	dir = snap
	wal := filepath.Join(dir, "shard-0000", "wal.log")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 1, 200, 77, 3}); err != nil { // torn: claims a 456-byte body
		t.Fatal(err)
	}
	f.Close()

	s2, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
	if err != nil {
		t.Fatalf("session 2 open: %v", err)
	}
	ids2 := mixedWorkload(t, s2, 200, 29)
	want := storeImage(t, s2, ids, lsmstore.TimestampValidation)
	want2 := storeImage(t, s2, ids2, lsmstore.TimestampValidation)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
	if err != nil {
		t.Fatalf("session 3 open: %v", err)
	}
	defer s3.Close()
	if got := storeImage(t, s3, ids, lsmstore.TimestampValidation); got != want {
		t.Fatalf("session 1 data lost behind torn tail:\n got %s\nwant %s", got, want)
	}
	if got := storeImage(t, s3, ids2, lsmstore.TimestampValidation); got != want2 {
		t.Fatalf("session 2 data lost behind torn tail:\n got %s\nwant %s", got, want2)
	}
}

// TestFileBackendWALCompaction: once a flush makes writes durable in
// components, a clean Close (and any reopen) must shrink the on-disk WAL
// to the un-flushed tail instead of retaining the store's whole history.
func TestFileBackendWALCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
	if err != nil {
		t.Fatal(err)
	}
	mixedWorkload(t, db, 600, 19)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "shard-0000", "wal.log")
	st, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("WAL holds %d bytes after flush+close, want 0 (everything is in components)", st.Size())
	}
}

// TestFileBackendUncommittedWALRecordNeverResurrects plants a data record
// with no commit at the WAL tail (a crash between the data append and the
// commit fsync — the write was never acknowledged). No later session may
// ever surface it, even after new sessions write fresh transactions whose
// IDs could otherwise collide with the dead record's.
func TestFileBackendUncommittedWALRecordNeverResurrects(t *testing.T) {
	dir := t.TempDir()
	db, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
	if err != nil {
		t.Fatal(err)
	}
	mixedWorkload(t, db, 100, 43)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The dead record: huge TS (newer than everything durable), low TxnID
	// (guaranteed to be recycled by the next session's first transactions).
	ghostPK := tweetPK(0xdeadbeef)
	ghost := wal.AppendRecord(nil, wal.Record{
		LSN: 1 << 40, TxnID: 1, Type: wal.RecUpsert, Index: "dataset",
		Key: ghostPK, Value: tweetRec(0xdeadbeef, 1, 1), TS: 1 << 40,
	})
	walPath := filepath.Join(dir, "shard-0000", "wal.log")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ghost); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for session := 2; session <= 3; session++ {
		s, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
		if err != nil {
			t.Fatalf("session %d open: %v", session, err)
		}
		if _, found, err := s.Get(ghostPK); err != nil || found {
			t.Fatalf("session %d: uncommitted ghost record surfaced (found=%v, err=%v)", session, found, err)
		}
		// New writes recycle low transaction IDs in a fresh process — they
		// must never marry the ghost's data record to their commits.
		mixedWorkload(t, s, 50, int64(100+session))
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileBackendRefusesDoubleOpen: a second live store on the same
// directory would rename-replace the first one's WAL and clobber its
// manifest saves; the per-directory lock must refuse it, and a clean Close
// must release it.
func TestFileBackendRefusesDoubleOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir)); err == nil {
		t.Fatal("second Open of a live directory was accepted")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	re.Close()
}

// TestFileBackendRequiresDir pins the error for a missing data directory.
func TestFileBackendRequiresDir(t *testing.T) {
	if _, err := lsmstore.Open(lsmstore.Options{Backend: lsmstore.FileBackend}); err == nil {
		t.Fatal("FileBackend without Dir was accepted")
	}
}

// TestFileBackendStrategyMismatchRefused: a directory written under one
// strategy must not silently open under another (their auxiliary state is
// incompatible).
func TestFileBackendStrategyMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	db, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
	if err != nil {
		t.Fatal(err)
	}
	mixedWorkload(t, db, 200, 3)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := lsmstore.Open(diskOptions(lsmstore.Eager, dir)); err == nil {
		t.Fatal("strategy mismatch on reopen was accepted")
	}
}
