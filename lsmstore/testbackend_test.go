package lsmstore_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/lsmstore"
)

// The whole lsmstore suite runs against the simulated backend by default.
// With LSMSTORE_TEST_BACKEND=disk every store opened through the option
// helpers (tinyOptions and everything built on it) runs on the file
// backend in its own directory instead — CI uses this to drive the race
// battery through real files, fsync, and the manifest/WAL reopen machinery.
var (
	diskBackend bool
	diskRoot    string
	diskDirSeq  atomic.Int64
)

func TestMain(m *testing.M) {
	if os.Getenv("LSMSTORE_TEST_BACKEND") == "disk" {
		root, err := os.MkdirTemp("", "lsmstore-disk-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "lsmstore_test:", err)
			os.Exit(1)
		}
		diskBackend, diskRoot = true, root
	}
	code := m.Run()
	if diskRoot != "" {
		os.RemoveAll(diskRoot)
	}
	os.Exit(code)
}

// applyTestBackend rewrites an options value onto the file backend (with a
// fresh directory) when the suite runs with LSMSTORE_TEST_BACKEND=disk.
func applyTestBackend(opts lsmstore.Options) lsmstore.Options {
	if diskBackend && opts.Backend == lsmstore.SimBackend {
		opts.Backend = lsmstore.FileBackend
		opts.Dir = filepath.Join(diskRoot, fmt.Sprintf("db-%06d", diskDirSeq.Add(1)))
	}
	return opts
}
