package lsmstore_test

import (
	"testing"

	"repro/lsmstore"
)

// TestMaintJournalObservationalOnly proves the maintenance journal never
// feeds back into engine behavior: the identical seeded workload with the
// journal disabled (MaintJournalEvents = -1) and enabled (default ring)
// must produce identical query results and ingestion counts.
func TestMaintJournalObservationalOnly(t *testing.T) {
	mk := func(events int) *lsmstore.DB {
		opts := asyncOptions(lsmstore.Validation, 2, 2)
		opts.MaintJournalEvents = events
		db, err := lsmstore.Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}
	off := mk(-1)
	on := mk(0) // 0 → default ring size

	modelOff := applyWorkload(t, off, 2000)
	modelOn := applyWorkload(t, on, 2000)
	if len(modelOff) != len(modelOn) {
		t.Fatalf("models diverge: %d vs %d live rows", len(modelOff), len(modelOn))
	}
	if err := off.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := on.Flush(); err != nil {
		t.Fatal(err)
	}

	sa, sb := off.Stats(), on.Stats()
	if sa.Ingested != sb.Ingested || sa.Ignored != sb.Ignored {
		t.Fatalf("counts diverge: off %d/%d on %d/%d", sa.Ingested, sa.Ignored, sb.Ingested, sb.Ignored)
	}
	fa := storeFingerprint(t, off, lsmstore.TimestampValidation, modelOff)
	fb := storeFingerprint(t, on, lsmstore.TimestampValidation, modelOn)
	if fa != fb {
		t.Fatalf("stores diverge with journal on vs off:\noff: %.400s\non:  %.400s", fa, fb)
	}

	// The disabled store reports an empty journal; the enabled one saw the
	// flush traffic the workload generated.
	if off.MaintJournal() != nil {
		t.Fatal("MaintJournalEvents=-1 still allocated a journal")
	}
	if sa.Maintenance.Flushes != 0 {
		t.Fatalf("disabled journal reports %d flushes", sa.Maintenance.Flushes)
	}
	if sb.Maintenance.Flushes < 1 || sb.Maintenance.FlushBytes <= 0 {
		t.Fatalf("enabled journal summary = %+v", sb.Maintenance)
	}
	if sb.Maintenance.ActiveFlushes != 0 || sb.Maintenance.ActiveMerges != 0 {
		t.Fatalf("drained store reports active maintenance: %+v", sb.Maintenance)
	}
}

// TestMaintStatsGauges checks the maintenance gauges and journal plumbing
// that Stats and the sidecar expose.
func TestMaintStatsGauges(t *testing.T) {
	opts := asyncOptions(lsmstore.Validation, 1, 2)
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	applyWorkload(t, db, 1500)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	st := db.Stats()
	if st.PendingFlushBatches != 0 || st.FrozenMemtables != 0 {
		t.Fatalf("drained store gauges = pending %d frozen %d, want 0/0",
			st.PendingFlushBatches, st.FrozenMemtables)
	}
	if st.Maintenance.Flushes < 1 {
		t.Fatalf("no flushes journaled: %+v", st.Maintenance)
	}

	j := db.MaintJournal()
	if j == nil {
		t.Fatal("default options should enable the journal")
	}
	events := j.Events()
	if len(events) == 0 {
		t.Fatal("journal ring is empty after flush traffic")
	}
	for _, e := range events {
		if e.Kind != "flush" && e.Kind != "merge" {
			t.Fatalf("unexpected journal event kind %q", e.Kind)
		}
		if e.DurationMicros < 0 || e.AgoMillis < 0 {
			t.Fatalf("negative times in event %+v", e)
		}
	}

	queued, active, workers := db.MaintPoolStats()
	if workers != 2 {
		t.Fatalf("pool workers = %d, want 2", workers)
	}
	if queued != 0 || active != 0 {
		t.Fatalf("drained pool reports queued=%d active=%d", queued, active)
	}
}
