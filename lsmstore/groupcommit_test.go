package lsmstore_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/lsmstore"
	"repro/lsmstore/internal/storetest"
)

// The group-commit battery: coalescing commit fsyncs must change
// throughput, never semantics — the store's visible contents are identical
// with group commit on and off, an acknowledged write survives a kill even
// when its fsync covered a whole group, and a lone writer is never
// stranded waiting for followers that are not coming.

// TestGroupCommitOnOffEquivalence drives the identical deterministic
// workload with group commit on and off — for every strategy, live and
// after a reopen — and demands identical images from every read path.
func TestGroupCommitOnOffEquivalence(t *testing.T) {
	for _, strategy := range []lsmstore.Strategy{lsmstore.Eager, lsmstore.Validation, lsmstore.MutableBitmap, lsmstore.DeletedKey} {
		t.Run(strategy.String(), func(t *testing.T) {
			type run struct{ live, reopened string }
			images := map[lsmstore.GroupCommitMode]run{}
			for _, mode := range []lsmstore.GroupCommitMode{lsmstore.GroupCommitOn, lsmstore.GroupCommitOff} {
				dir := t.TempDir()
				opts := diskOptions(strategy, dir)
				opts.GroupCommit = mode
				db, err := lsmstore.Open(opts)
				if err != nil {
					t.Fatal(err)
				}
				ids := mixedWorkload(t, db, 700, 37)
				live := storeImage(t, db, ids, validationFor(strategy))
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}
				re, err := lsmstore.Open(opts)
				if err != nil {
					t.Fatalf("reopen (%v): %v", mode, err)
				}
				reopened := storeImage(t, re, ids, validationFor(strategy))
				if err := re.Close(); err != nil {
					t.Fatal(err)
				}
				images[mode] = run{live: live, reopened: reopened}
			}
			on, off := images[lsmstore.GroupCommitOn], images[lsmstore.GroupCommitOff]
			if on.live != off.live {
				t.Fatalf("live images diverge:\n on  %s\n off %s", on.live, off.live)
			}
			if on.reopened != off.reopened {
				t.Fatalf("reopened images diverge:\n on  %s\n off %s", on.reopened, off.reopened)
			}
		})
	}
}

// TestGroupCommitKillMidGroupCommit is the acceptance crash test:
// concurrent writers commit through shared group fsyncs while a crash
// image of the directory is captured mid-flight. Every write acknowledged
// BEFORE the snapshot began must be served — with its exact value — by a
// reopen of that image; writes in flight during the snapshot may land or
// not, but must never corrupt the store.
func TestGroupCommitKillMidGroupCommit(t *testing.T) {
	dir := t.TempDir()
	opts := diskOptions(lsmstore.Validation, dir)
	opts.GroupCommit = lsmstore.GroupCommitOn
	opts.MaintenanceWorkers = 2
	opts.MemoryBudget = 32 << 10 // flushes and WAL compaction race the writers
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	ledger := storetest.NewLedger()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := uint64(0); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				id := uint64(w)<<32 | seq // unique per write: Get checks the exact value
				rec := tweetRec(id, uint32(w%40), int64(seq%1000))
				if err := db.Upsert(tweetPK(id), rec); err != nil {
					t.Error(err)
					return
				}
				ledger.Ack(id, rec)
			}
		}(w)
	}

	// Let commit groups form, then freeze the acknowledged set and copy
	// the directory while writers keep committing — the image catches
	// groups mid-fsync, exactly what a kill leaves.
	time.Sleep(300 * time.Millisecond)
	survivors := ledger.Snapshot()
	re, _ := storetest.KillAndReopen(t, dir, diskOptions(lsmstore.Validation, ""))
	defer re.Close()
	close(stop)
	wg.Wait()

	st := db.Stats()
	if st.Counters.GroupCommitBatches == 0 {
		t.Fatal("group commit never engaged — the test exercised nothing")
	}
	if st.Counters.GroupCommitWaiters <= st.Counters.GroupCommitBatches {
		t.Logf("warning: mean group size %.2f — little concurrency reached the commit window",
			float64(st.Counters.GroupCommitWaiters)/float64(st.Counters.GroupCommitBatches))
	}
	// The original process "died" at the snapshot: no Close, no final
	// manifest. Every write acknowledged before it must be in the image.
	if len(survivors) == 0 {
		t.Fatal("no writes acknowledged before the snapshot — nothing proven")
	}
	storetest.VerifyAll(t, re, survivors)
}

// TestGroupCommitLoneWriterDurableImmediately: a single committer with no
// concurrent writers must not pay any part of MaxSyncDelay — the leader
// only holds the window for announced peers, and there are none.
func TestGroupCommitLoneWriterDurableImmediately(t *testing.T) {
	opts := diskOptions(lsmstore.Validation, t.TempDir())
	opts.GroupCommit = lsmstore.GroupCommitOn
	opts.MaxSyncDelay = 10 * time.Second // would be unmissable if ever paid
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := db.Upsert(tweetPK(uint64(i)), tweetRec(uint64(i), 1, 1)); err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("lone write %d took %s — the leader waited for followers that never come", i, elapsed)
		}
	}
	st := db.Stats()
	if st.Counters.WALFsyncs == 0 || st.Counters.GroupCommitBatches == 0 {
		t.Fatalf("lone writes were not group-committed durably: fsyncs=%d batches=%d",
			st.Counters.WALFsyncs, st.Counters.GroupCommitBatches)
	}
}

// TestGroupCommitBatchOneFsync: an ApplyBatch on the group-commit store
// pays one covering WAL fsync for the whole batch, not one per mutation.
func TestGroupCommitBatchOneFsync(t *testing.T) {
	opts := diskOptions(lsmstore.Validation, t.TempDir())
	opts.GroupCommit = lsmstore.GroupCommitOn
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 64
	muts := make([]lsmstore.Mutation, n)
	for i := range muts {
		id := uint64(i)
		muts[i] = lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: tweetPK(id), Record: tweetRec(id, 1, 1)}
	}
	before := db.Stats().Counters
	if err := db.ApplyBatch(muts); err != nil {
		t.Fatal(err)
	}
	d := db.Stats().Counters.Sub(before)
	if d.WALFsyncs != 1 {
		t.Fatalf("batch of %d mutations cost %d WAL fsyncs, want exactly 1", n, d.WALFsyncs)
	}
	if d.GroupCommitWaiters != n {
		t.Fatalf("group covered %d commits, want %d", d.GroupCommitWaiters, n)
	}
	for i := 0; i < n; i++ {
		if _, found, err := db.Get(tweetPK(uint64(i))); err != nil || !found {
			t.Fatalf("batched write %d missing after one-fsync commit (found=%v err=%v)", i, found, err)
		}
	}
}

// TestGroupCommitMutableBitmapBatchDoesNotDefer: the Mutable-bitmap
// strategy flips disk-component bitmaps around its WAL append, and the
// flip's undo/commit pair is only race-free under the writer's key lock —
// so its batches must NOT defer commit durability to a batch-end wait.
// Each mutation commits durably on its own (a sequential batch is a lone
// committer per write: one fsync each, never one for the whole batch).
func TestGroupCommitMutableBitmapBatchDoesNotDefer(t *testing.T) {
	opts := diskOptions(lsmstore.MutableBitmap, t.TempDir())
	opts.GroupCommit = lsmstore.GroupCommitOn
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 16
	muts := make([]lsmstore.Mutation, n)
	for i := range muts {
		id := uint64(i)
		muts[i] = lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: tweetPK(id), Record: tweetRec(id, 1, 1)}
	}
	before := db.Stats().Counters
	if err := db.ApplyBatch(muts); err != nil {
		t.Fatal(err)
	}
	d := db.Stats().Counters.Sub(before)
	if d.WALFsyncs < n {
		t.Fatalf("mutable-bitmap batch of %d mutations cost %d WAL fsyncs — commit durability was deferred past the key lock", n, d.WALFsyncs)
	}
	for i := 0; i < n; i++ {
		if _, found, err := db.Get(tweetPK(uint64(i))); err != nil || !found {
			t.Fatalf("batched write %d missing (found=%v err=%v)", i, found, err)
		}
	}
}

// TestGroupCommitModeString pins the flag-facing names.
func TestGroupCommitModeString(t *testing.T) {
	for mode, want := range map[lsmstore.GroupCommitMode]string{
		lsmstore.GroupCommitAuto: "auto",
		lsmstore.GroupCommitOn:   "on",
		lsmstore.GroupCommitOff:  "off",
	} {
		if got := fmt.Sprint(mode); got != want {
			t.Errorf("mode %d prints %q, want %q", int(mode), got, want)
		}
	}
}
