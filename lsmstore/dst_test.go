package lsmstore_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dst"
)

// The deterministic-simulation battery: every run here drives the real
// store (file backend, WAL, flush/merge maintenance) through the
// internal/dst harness — seeded workload, seeded fault injection, process
// kills, crash-image reopens — and checks it against the in-memory model.
// CI runs this battery race-enabled on every push; cmd/lsmdst is the same
// harness behind a CLI for reproducing and sweeping seeds.

// dstCorpus is the committed seed corpus. Each seed derives a different
// store configuration (strategy, group-commit mode, keyspace) and fault
// schedule; together they cover all four anti-matter strategies and every
// injected fault kind (asserted below, so corpus edits can't silently
// lose coverage).
var dstCorpus = []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19}

func dstRun(t *testing.T, cfg dst.Config) *dst.Report {
	t.Helper()
	cfg.Dir = filepath.Join(t.TempDir(), "run")
	rep, err := dst.Run(cfg)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	return rep
}

// TestDSTCorpus runs every committed seed with fault injection and
// requires a clean verdict, then asserts the corpus still covers all four
// strategies and the three damaging fault kinds.
func TestDSTCorpus(t *testing.T) {
	strategies := map[string]bool{}
	kinds := map[string]bool{}
	readCache := map[string]bool{}
	admission := map[string]bool{}
	for _, seed := range dstCorpus {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rep := dstRun(t, dst.Config{Seed: seed, Ops: 400, FaultRate: 1, Profile: dst.Seq})
			if rep.Failed {
				t.Fatalf("reproduce with: %s\nverdict: %s",
					dst.FormatRepro(dst.Config{Seed: seed, Ops: 400, FaultRate: 1, Profile: dst.Seq}), rep.Verdict)
			}
			for _, part := range strings.Fields(rep.Setup) {
				if s, ok := strings.CutPrefix(part, "strategy="); ok {
					strategies[s] = true
				}
				if s, ok := strings.CutPrefix(part, "readcache="); ok {
					readCache[s] = true
				}
				if s, ok := strings.CutPrefix(part, "admission="); ok {
					admission[s] = true
				}
			}
			for _, f := range rep.Faults {
				kinds[f.Fault.Kind] = true
			}
		})
	}
	for _, want := range []string{"eager", "validation", "mutable-bitmap", "deleted-key"} {
		if !strategies[want] {
			t.Errorf("corpus no longer covers strategy %q (got %v)", want, strategies)
		}
	}
	for _, want := range []string{dst.KindTornAppend, dst.KindSyncWAL, dst.KindManifest} {
		if !kinds[want] {
			t.Errorf("corpus no longer fires fault kind %q (got %v)", want, kinds)
		}
	}
	for _, want := range []string{"on", "off"} {
		if !readCache[want] {
			t.Errorf("corpus no longer covers readcache=%s (got %v)", want, readCache)
		}
		if !admission[want] {
			t.Errorf("corpus no longer covers admission=%s (got %v)", want, admission)
		}
	}
}

// TestDSTSeedBitReproducible runs one seed five consecutive times and
// demands bit-identical results: same op trace (full event list, not just
// the hash), same fault schedule, same verdict. This is the determinism
// contract of internal/dst/doc.go, asserted.
func TestDSTSeedBitReproducible(t *testing.T) {
	cfg := dst.Config{Seed: 3, Ops: 400, FaultRate: 1, Profile: dst.Seq, RecordTrace: true}
	var first *dst.Report
	for run := 0; run < 5; run++ {
		rep := dstRun(t, cfg)
		if first == nil {
			first = rep
			if rep.Kills == 0 || len(rep.Faults) == 0 {
				t.Fatalf("seed exercises no kills/faults (kills=%d faults=%d); pick a livelier one",
					rep.Kills, len(rep.Faults))
			}
			continue
		}
		if rep.Verdict != first.Verdict || rep.Failed != first.Failed {
			t.Fatalf("run %d verdict %q != run 0 verdict %q", run, rep.Verdict, first.Verdict)
		}
		if rep.TraceHash != first.TraceHash || rep.TraceLen != first.TraceLen {
			t.Fatalf("run %d trace %d/%016x != run 0 trace %d/%016x",
				run, rep.TraceLen, rep.TraceHash, first.TraceLen, first.TraceHash)
		}
		for i := range first.Trace {
			if rep.Trace[i] != first.Trace[i] {
				t.Fatalf("run %d trace diverges at event %d: %q != %q", run, i, rep.Trace[i], first.Trace[i])
			}
		}
		if got, want := fmt.Sprint(rep.Faults), fmt.Sprint(first.Faults); got != want {
			t.Fatalf("run %d fault schedule diverged:\n got %s\nwant %s", run, got, want)
		}
	}
}

// TestDSTCatchesKeepCommitBug re-arms the historical
// keep-commit-on-failed-fsync bug (the PR 5 failed-fsync rollback,
// deleted) and requires that the corpus catches it: at least one seed must
// fail with a replayed-failed-commit verdict, and the same seeds must pass
// with the bug disarmed (the corpus test above already runs them clean,
// but the pairing here keeps the proof self-contained).
func TestDSTCatchesKeepCommitBug(t *testing.T) {
	// A slice of the corpus, enough that at least one seed draws a
	// group-commit configuration with a failed covering fsync.
	seeds := dstCorpus[:8]
	caught := 0
	for _, seed := range seeds {
		buggy := dstRun(t, dst.Config{Seed: seed, Ops: 400, FaultRate: 1, Profile: dst.Seq, Bug: dst.BugKeepCommit})
		if !buggy.Failed {
			continue
		}
		caught++
		if !strings.Contains(buggy.Verdict, "failed commit replayed") {
			t.Errorf("seed %d caught the bug with an unexpected verdict: %s", seed, buggy.Verdict)
		}
		clean := dstRun(t, dst.Config{Seed: seed, Ops: 400, FaultRate: 1, Profile: dst.Seq})
		if clean.Failed {
			t.Errorf("seed %d fails even without the bug armed: %s", seed, clean.Verdict)
		}
	}
	if caught == 0 {
		t.Fatalf("no corpus seed catches the keep-commit bug; the detector is dead")
	}
}

// TestDSTConcProfileSound spot-checks the concurrency profile: background
// maintenance workers, seeded yield perturbation, optional sharding. The
// op trace is interleaving-dependent there, but verdicts must stay sound.
func TestDSTConcProfileSound(t *testing.T) {
	if testing.Short() {
		t.Skip("conc profile sweep skipped in -short")
	}
	for _, seed := range []int64{0, 4, 7, 11} {
		rep := dstRun(t, dst.Config{Seed: seed, Ops: 400, FaultRate: 1, Profile: dst.Conc})
		if rep.Failed {
			t.Fatalf("reproduce with: %s\nverdict: %s",
				dst.FormatRepro(dst.Config{Seed: seed, Ops: 400, FaultRate: 1, Profile: dst.Conc}), rep.Verdict)
		}
	}
}
