package lsmstore_test

import (
	"errors"
	"sync"
	"testing"

	"repro/lsmstore"
)

// The Close lifecycle contract: Close is idempotent under concurrency
// (shutdown runs exactly once), and afterwards every public operation
// fails with ErrClosed instead of touching a torn-down store. The network
// server's shutdown path leans on exactly this.

func TestCloseConcurrent(t *testing.T) {
	opts := tinyOptions(lsmstore.Validation)
	opts.Shards = 2
	opts.MaintenanceWorkers = 2
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := mixedWorkload(t, db, 300, 11)

	const closers, writers = 4, 4
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := db.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	// Operations racing the close must either succeed (they beat it) or
	// fail with ErrClosed — never panic, double-shutdown, or hit a closed
	// device.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				pk := tweetPK(uint64(1_000_000 + w*100 + i))
				err := db.Upsert(pk, make([]byte, 20))
				if err != nil && !errors.Is(err, lsmstore.ErrClosed) {
					t.Errorf("racing upsert: %v", err)
					return
				}
				if _, _, err := db.Get(tweetPK(ids[i%len(ids)])); err != nil && !errors.Is(err, lsmstore.ErrClosed) {
					t.Errorf("racing get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatalf("repeat Close: %v", err)
	}
}

func TestOperationsAfterCloseReturnErrClosed(t *testing.T) {
	db, err := lsmstore.Open(tinyOptions(lsmstore.Validation))
	if err != nil {
		t.Fatal(err)
	}
	mixedWorkload(t, db, 100, 7)
	wantStats := db.Stats()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	pk := tweetPK(1)
	if err := db.Upsert(pk, []byte("x")); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("Upsert after Close: %v", err)
	}
	if _, err := db.Insert(pk, []byte("x")); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("Insert after Close: %v", err)
	}
	if _, err := db.Delete(pk); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("Delete after Close: %v", err)
	}
	if _, _, err := db.Get(pk); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("Get after Close: %v", err)
	}
	if err := db.ApplyBatch([]lsmstore.Mutation{{Op: lsmstore.OpUpsert, PK: pk, Record: []byte("x")}}); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("ApplyBatch after Close: %v", err)
	}
	if _, err := db.ApplyBatchResults([]lsmstore.Mutation{{Op: lsmstore.OpUpsert, PK: pk, Record: []byte("x")}}); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("ApplyBatchResults after Close: %v", err)
	}
	if _, err := db.SecondaryQuery("user", nil, nil, lsmstore.QueryOptions{}); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("SecondaryQuery after Close: %v", err)
	}
	if err := db.FilterScan(0, 1, func(pk, rec []byte) {}); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("FilterScan after Close: %v", err)
	}
	if err := db.Flush(); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("Flush after Close: %v", err)
	}
	if err := db.Recover(); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("Recover after Close: %v", err)
	}
	if err := db.RepairSecondaryIndexes(); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("RepairSecondaryIndexes after Close: %v", err)
	}
	db.Crash() // must be a no-op, not a panic

	// Stats still answers, serving the final pre-Close snapshot.
	got := db.Stats()
	if got.Ingested != wantStats.Ingested || got.Shards != wantStats.Shards {
		t.Fatalf("Stats after Close = %+v, want the final snapshot %+v", got, wantStats)
	}
}
