package lsmstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/storage/filedev"
)

// layoutName is the store-level layout file at the top of a file-backed
// data directory. Per-shard state (manifest, WAL, component files) lives in
// the shard subdirectories; the layout file pins the properties that must
// agree across every shard before any of them opens — most importantly the
// shard count, because primary keys hash onto shards and a different count
// would silently route keys to the wrong partition's data.
const layoutName = "layout.json"

type layout struct {
	Shards   int
	PageSize int
	Device   string
}

// shardDir returns shard i's subdirectory of a file-backed store.
func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d", i))
}

// checkLayout validates an existing file-backed directory against the open
// options, or stamps a fresh directory with the layout of this store.
func checkLayout(opts Options) error {
	want := layout{
		Shards:   opts.Shards,
		PageSize: resolvePageSize(opts),
		Device:   deviceName(opts.Device),
	}
	if want.Shards < 1 {
		want.Shards = 1
	}
	path := filepath.Join(opts.Dir, layoutName)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var have layout
		if err := json.Unmarshal(data, &have); err != nil {
			return fmt.Errorf("lsmstore: corrupt %s: %w", layoutName, err)
		}
		if have != want {
			return fmt.Errorf("lsmstore: directory %s was written as %+v, reopened as %+v", opts.Dir, have, want)
		}
		return nil
	case errors.Is(err, os.ErrNotExist):
		// A directory holding shard subdirectories but no layout file is a
		// foreign or damaged layout; refuse rather than guess the count.
		if _, err := os.Stat(shardDir(opts.Dir, 0)); err == nil {
			return fmt.Errorf("lsmstore: directory %s holds shard data but no %s", opts.Dir, layoutName)
		}
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return err
		}
		data, err := json.Marshal(want)
		if err != nil {
			return err
		}
		// Same discipline as the shard manifests: temp + fsync + rename +
		// directory fsync. The layout file gates every future Open, so a
		// power loss must never leave durable shard data behind a missing
		// or torn layout.
		return filedev.AtomicWriteFile(opts.Dir, layoutName, data)
	default:
		return err
	}
}

func deviceName(d Device) string {
	if d == SSD {
		return "ssd"
	}
	return "hdd"
}
