package lsmstore_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dst"
	"repro/lsmstore"
)

// The fault-path battery: single scripted storage faults placed exactly on
// the operation under study, via the internal/dst device wrapper over the
// real file backend. Where the dst sweeps explore seeded schedules, these
// tests pin the two failure shapes PR 7 called out as uncovered — a failed
// manifest sync during component install, and a torn WAL tail on a
// group-commit window boundary — plus the Close-persist regression.

// faultStore opens a disk store in dir wrapped with a scripted injector.
// The open itself runs quiet (no injection: Open probes a different
// contract); the returned control is live for everything after.
func faultStore(t *testing.T, dir string, opts lsmstore.Options, script dst.Script) (*lsmstore.DB, *dst.Control) {
	t.Helper()
	control := dst.NewControl(dst.NewTrace(false), script, nil)
	control.SetQuiet(true)
	opts.WrapDevice = control.Wrap
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	control.SetQuiet(false)
	return db, control
}

// requireFired fails the test unless at least one scripted fault of the
// given kind actually fired — the guard against a script aimed at an
// operation ordinal that no longer exists.
func requireFired(t *testing.T, control *dst.Control, kind string) {
	t.Helper()
	for _, f := range control.Fired() {
		if f.Fault.Kind == kind && !f.Suppressed {
			return
		}
	}
	t.Fatalf("no %s fault fired; the script missed its target (fired: %v)", kind, control.Fired())
}

// TestFailedManifestInstall fails the manifest sync of every component
// install: the flush must surface the error, the half-install (component
// files exist, manifest does not reference them) must stay invisible, and
// a reopen of the post-failure directory must serve exactly the same image
// as a reopen from right before the flush.
func TestFailedManifestInstall(t *testing.T) {
	for _, strategy := range []lsmstore.Strategy{lsmstore.Eager, lsmstore.Validation, lsmstore.MutableBitmap, lsmstore.DeletedKey} {
		t.Run(strategy.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, control := faultStore(t, dir, diskOptions(strategy, dir), dst.Script{
				{Shard: 0, Op: dst.OpSaveManifest, Ord: -1, Fault: dst.Fault{Kind: dst.KindManifest}},
			})

			var ids []uint64
			for id := uint64(1); id <= 40; id++ {
				if err := db.Upsert(tweetPK(id), tweetRec(id, uint32(id%7), int64(id))); err != nil {
					t.Fatalf("upsert %d: %v", id, err)
				}
				ids = append(ids, id)
			}

			before := t.TempDir()
			if err := snapshotStoreDir(dir, before); err != nil {
				t.Fatal(err)
			}

			err := db.Flush()
			if err == nil {
				t.Fatal("flush succeeded although every manifest install fails")
			}
			if !strings.Contains(err.Error(), "manifest") {
				t.Fatalf("flush error does not trace to the manifest fault: %v", err)
			}
			requireFired(t, control, dst.KindManifest)

			after := t.TempDir()
			if err := snapshotStoreDir(dir, after); err != nil {
				t.Fatal(err)
			}
			control.Detach()
			_ = db.Close()

			validation := validationFor(strategy)
			wantDB, err := lsmstore.Open(diskOptions(strategy, before))
			if err != nil {
				t.Fatalf("reopen pre-flush image: %v", err)
			}
			want := storeImage(t, wantDB, ids, validation)
			if err := wantDB.Close(); err != nil {
				t.Fatal(err)
			}

			gotDB, err := lsmstore.Open(diskOptions(strategy, after))
			if err != nil {
				t.Fatalf("reopen post-failure image: %v", err)
			}
			got := storeImage(t, gotDB, ids, validation)
			if err := gotDB.Close(); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("failed install leaked into the reopened image:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestTornWALTailAtGroupCommitBoundary tears the WAL append that starts a
// new group-commit window — the tail of the on-disk log lands exactly on
// the durable boundary of the previous covering fsync. Every write the
// previous windows acknowledged must survive a reopen of the crash image;
// the torn write must not. Both tear points are pinned: the record append
// and the commit append (record intact, commit torn).
func TestTornWALTailAtGroupCommitBoundary(t *testing.T) {
	// Per acknowledged upsert under group commit: one record append, one
	// commit append (both unsynced), one covering group fsync.
	const acked = 5
	for name, tornOrd := range map[string]int64{"record-append": 2 * acked, "commit-append": 2*acked + 1} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			opts := diskOptions(lsmstore.Eager, dir)
			opts.GroupCommit = lsmstore.GroupCommitOn
			opts.MemoryBudget = 1 << 20 // no flush: the WAL tail is the store
			db, control := faultStore(t, dir, opts, dst.Script{
				{Shard: 0, Op: dst.OpAppendWAL, Ord: tornOrd, Fault: dst.Fault{Kind: dst.KindTornAppend, Frac: 0.5}},
			})

			for id := uint64(1); id <= acked; id++ {
				if err := db.Upsert(tweetPK(id), tweetRec(id, uint32(id), int64(id))); err != nil {
					t.Fatalf("acked upsert %d: %v", id, err)
				}
			}
			err := db.Upsert(tweetPK(acked+1), tweetRec(acked+1, 9, 99))
			if !errors.Is(err, dst.ErrKilled) {
				t.Fatalf("torn append did not kill the device: err=%v", err)
			}
			requireFired(t, control, dst.KindTornAppend)

			// Freeze the crash image while the device is dead, then abandon
			// the killed store.
			image := t.TempDir()
			if err := snapshotStoreDir(dir, image); err != nil {
				t.Fatal(err)
			}
			control.Detach()
			_ = db.Close()

			re, err := lsmstore.Open(diskOptions(lsmstore.Eager, image))
			if err != nil {
				t.Fatalf("reopen of torn-tail image: %v", err)
			}
			defer func() {
				if err := re.Close(); err != nil {
					t.Fatal(err)
				}
			}()
			for id := uint64(1); id <= acked; id++ {
				got, found, err := re.Get(tweetPK(id))
				if err != nil {
					t.Fatal(err)
				}
				if !found || string(got) != string(tweetRec(id, uint32(id), int64(id))) {
					t.Fatalf("acknowledged write %d lost or corrupted after torn tail (found=%v)", id, found)
				}
			}
			if _, found, err := re.Get(tweetPK(acked + 1)); err != nil {
				t.Fatal(err)
			} else if found {
				t.Fatal("torn, unacknowledged write replayed from the torn tail")
			}
		})
	}
}

// TestClosePersistFailureKeepsWAL is the regression test for the Close
// path: when Close's final persist fails (manifest install error), Close
// must NOT compact the WAL — the log is the only durable copy of the
// memtable it just failed to persist. A reopen of the same directory must
// replay every acknowledged write.
func TestClosePersistFailureKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	opts := diskOptions(lsmstore.Validation, dir)
	opts.MemoryBudget = 1 << 20 // keep everything in the memtable until Close
	db, control := faultStore(t, dir, opts, dst.Script{
		{Shard: 0, Op: dst.OpSaveManifest, Ord: -1, Fault: dst.Fault{Kind: dst.KindManifest}},
	})

	const n = 10
	for id := uint64(1); id <= n; id++ {
		if err := db.Upsert(tweetPK(id), tweetRec(id, 3, int64(id))); err != nil {
			t.Fatalf("upsert %d: %v", id, err)
		}
	}
	err := db.Close()
	if err == nil {
		t.Fatal("close succeeded although its persist cannot install a manifest")
	}
	requireFired(t, control, dst.KindManifest)
	control.Detach()

	re, err := lsmstore.Open(diskOptions(lsmstore.Validation, dir))
	if err != nil {
		t.Fatalf("reopen after failed close persist: %v", err)
	}
	for id := uint64(1); id <= n; id++ {
		got, found, err := re.Get(tweetPK(id))
		if err != nil {
			t.Fatal(err)
		}
		if !found || string(got) != string(tweetRec(id, 3, int64(id))) {
			t.Fatalf("acknowledged write %d lost after failed close persist (found=%v)", id, found)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}
