// Package storetest holds the shared test fixtures of the lsmstore crash
// and durability batteries: deterministic workloads, full-read-path store
// images, crash-image directory snapshots, and an acknowledged-write
// ledger. The persistence battery (persist_test.go), the group-commit
// battery (groupcommit_test.go) and the fault-path battery all run through
// these helpers, so "what counts as a crash image" and "what counts as the
// store's visible state" are defined in exactly one place.
package storetest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/workload"
	"repro/lsmstore"
)

// TweetPK returns the primary key of tweet id.
func TweetPK(id uint64) []byte { return binary.BigEndian.AppendUint64(nil, id) }

// TweetRec returns an encoded tweet record.
func TweetRec(id uint64, user uint32, creation int64) []byte {
	return workload.Tweet{ID: id, UserID: user, Creation: creation, Message: []byte("m")}.Encode()
}

// BaseOptions returns the batteries' small store configuration: a "user"
// secondary index, a creation-time filter, and budgets tiny enough that
// every test exercises flushes and merges. The backend is left at the
// zero value (SimBackend); disk tests go through DiskOptions.
func BaseOptions(strategy lsmstore.Strategy) lsmstore.Options {
	return lsmstore.Options{
		Strategy: strategy,
		Secondaries: []lsmstore.SecondaryIndex{
			{Name: "user", Extract: workload.UserIDOf},
		},
		FilterExtract: workload.CreationOf,
		MemoryBudget:  64 << 10,
		CacheBytes:    2 << 20,
		PageSize:      4 << 10,
		Seed:          5,
	}
}

// DiskOptions returns BaseOptions pinned to the file backend in dir.
func DiskOptions(strategy lsmstore.Strategy, dir string) lsmstore.Options {
	opts := BaseOptions(strategy)
	opts.Backend = lsmstore.FileBackend
	opts.Dir = dir
	return opts
}

// ValidationFor returns the query validation method a strategy needs for
// correct secondary reads. DeletedKey must validate directly: its
// secondary entries carry no usable timestamps, so Timestamp validation
// can let records whose secondary key changed leak into range answers.
func ValidationFor(s lsmstore.Strategy) lsmstore.ValidationMethod {
	switch s {
	case lsmstore.Eager:
		return lsmstore.NoValidation
	case lsmstore.DeletedKey:
		return lsmstore.DirectValidation
	default:
		return lsmstore.TimestampValidation
	}
}

// StoreImage reads every observable of the store through all read paths —
// point gets for ids, a secondary range query, and a filter scan — into
// one comparable string.
func StoreImage(t testing.TB, db *lsmstore.DB, ids []uint64, validation lsmstore.ValidationMethod) string {
	t.Helper()
	var sb []string
	for _, id := range ids {
		rec, found, err := db.Get(TweetPK(id))
		if err != nil {
			t.Fatal(err)
		}
		sb = append(sb, fmt.Sprintf("get:%d:%v:%x", id, found, rec))
	}
	q, err := db.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(39),
		lsmstore.QueryOptions{Validation: validation})
	if err != nil {
		t.Fatal(err)
	}
	var secs []string
	for _, r := range q.Records {
		secs = append(secs, fmt.Sprintf("%x=%x", r.PK, r.Value))
	}
	sort.Strings(secs)
	sb = append(sb, "secondary:"+fmt.Sprint(secs))
	var scans []string
	if err := db.FilterScan(0, 1<<62, func(pk, rec []byte) {
		scans = append(scans, fmt.Sprintf("%x=%x", pk, rec))
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(scans)
	sb = append(sb, "scan:"+fmt.Sprint(scans))
	return fmt.Sprint(sb)
}

// MixedWorkload drives a deterministic insert/update/delete stream and
// returns the touched ids, sorted.
func MixedWorkload(t testing.TB, db *lsmstore.DB, n int, seed int64) []uint64 {
	t.Helper()
	cfg := workload.DefaultConfig(seed)
	cfg.UserIDRange = 40
	cfg.UpdateRatio = 0.4
	cfg.ZipfUpdates = true
	gen := workload.NewGenerator(cfg)
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		op := gen.Next()
		seen[op.Tweet.ID] = true
		if i%17 == 13 {
			if _, err := db.Delete(op.Tweet.PK()); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := db.Upsert(op.Tweet.PK(), op.Tweet.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]uint64, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SnapshotStoreDir copies a store directory as a crash would freeze it:
// per shard, manifest and WAL first, then the immutable component files.
// (A referenced component file never changes once a manifest references
// it, so this order is exactly the crash-consistency contract.)
func SnapshotStoreDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if !e.IsDir() {
			if err := CopyFile(sp, dp); err != nil {
				return err
			}
			continue
		}
		if err := os.MkdirAll(dp, 0o755); err != nil {
			return err
		}
		shardFiles, err := os.ReadDir(sp)
		if err != nil {
			return err
		}
		first := []string{"MANIFEST", "wal.log"}
		for _, name := range first {
			if err := CopyFile(filepath.Join(sp, name), filepath.Join(dp, name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		for _, f := range shardFiles {
			if f.IsDir() || f.Name() == "MANIFEST" || f.Name() == "wal.log" {
				continue
			}
			if err := CopyFile(filepath.Join(sp, f.Name()), filepath.Join(dp, f.Name())); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// CopyFile copies src to dst, truncating any existing dst.
func CopyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// KillAndReopen simulates a process kill: it freezes a crash image of dir
// into a fresh temp directory (the live store, still holding its flock and
// its unflushed memory, is simply abandoned by the caller) and reopens the
// image with opts. It returns the reopened store and the image directory.
func KillAndReopen(t testing.TB, dir string, opts lsmstore.Options) (*lsmstore.DB, string) {
	t.Helper()
	snap := t.TempDir()
	if err := SnapshotStoreDir(dir, snap); err != nil {
		t.Fatal(err)
	}
	opts.Dir = snap
	re, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatalf("reopen of crash image: %v", err)
	}
	return re, snap
}

// Ledger records acknowledged writes under concurrency: writers Ack the
// exact bytes the store acknowledged, a test Snapshots the set right
// before freezing a crash image, and VerifyAll demands every snapshotted
// write back — with its exact value — from the reopened store.
type Ledger struct {
	mu    sync.Mutex
	acked map[uint64][]byte
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{acked: map[uint64][]byte{}} }

// Ack records that the write of rec under id was acknowledged.
func (l *Ledger) Ack(id uint64, rec []byte) {
	l.mu.Lock()
	l.acked[id] = rec
	l.mu.Unlock()
}

// Len returns the number of acknowledged writes so far.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.acked)
}

// Snapshot returns a copy of the acknowledged set, safe to read while
// writers keep acking.
func (l *Ledger) Snapshot() map[uint64][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[uint64][]byte, len(l.acked))
	for id, rec := range l.acked {
		out[id] = rec
	}
	return out
}

// VerifyAll checks that db serves every write in survivors exactly.
func VerifyAll(t testing.TB, db *lsmstore.DB, survivors map[uint64][]byte) {
	t.Helper()
	for id, want := range survivors {
		got, found, err := db.Get(TweetPK(id))
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("acknowledged write %x lost in the crash image", id)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acknowledged write %x corrupted: got %x want %x", id, got, want)
		}
	}
}
