package lsmstore_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/lsmstore"
)

// Allocation regression guards for the disk-backend write path: the WAL
// encode buffers, the filedev staging buffer and the commit path are
// pooled, so per-write allocations must stay flat. Run with:
//
//	go test -bench 'BenchmarkDisk' -benchtime=1000x ./lsmstore
//
// The group-commit on/off pairing also makes fsync amortization visible in
// ns/op on a single-writer stream (identical) vs the batched path (one
// fsync per batch).

func benchDiskDB(b *testing.B, mode lsmstore.GroupCommitMode) *lsmstore.DB {
	b.Helper()
	opts := diskOptions(lsmstore.Validation, b.TempDir())
	opts.GroupCommit = mode
	db, err := lsmstore.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// BenchmarkDiskSingleWrite measures one committed upsert on the file
// backend — fsync included — with allocation reporting.
func BenchmarkDiskSingleWrite(b *testing.B) {
	for _, mode := range []lsmstore.GroupCommitMode{lsmstore.GroupCommitOff, lsmstore.GroupCommitOn} {
		b.Run("group-commit="+mode.String(), func(b *testing.B) {
			db := benchDiskDB(b, mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := uint64(i)
				if err := db.Upsert(tweetPK(id), tweetRec(id, uint32(id%40), int64(id%1000))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiskApplyBatch measures a 64-write ApplyBatch on the file
// backend: with group commit one covering fsync per batch, without it one
// per mutation.
func BenchmarkDiskApplyBatch(b *testing.B) {
	const batch = 64
	for _, mode := range []lsmstore.GroupCommitMode{lsmstore.GroupCommitOff, lsmstore.GroupCommitOn} {
		b.Run("group-commit="+mode.String(), func(b *testing.B) {
			db := benchDiskDB(b, mode)
			muts := make([]lsmstore.Mutation, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range muts {
					id := uint64(i)*batch + uint64(j)
					muts[j] = lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: tweetPK(id), Record: tweetRec(id, uint32(id%40), int64(id%1000))}
				}
				if err := db.ApplyBatch(muts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestDiskWriteAllocGuard is the allocation regression gate for the
// pooled write path (WAL record encode buffers, filedev staging buffer,
// commit path): per-write allocations on the file backend must stay an
// order of magnitude below an unpooled implementation. The ceilings carry
// ~3x headroom over the measured values (~21 allocs per single write,
// ~41 per batched mutation including shard grouping), so they catch gross
// regressions — a lost pool, a per-write buffer — not single-alloc noise.
// Skipped unless LSMSTORE_BENCH_SMOKE=1.
func TestDiskWriteAllocGuard(t *testing.T) {
	if os.Getenv("LSMSTORE_BENCH_SMOKE") == "" {
		t.Skip("set LSMSTORE_BENCH_SMOKE=1 to run the allocation gate")
	}
	opts := diskOptions(lsmstore.Validation, t.TempDir())
	opts.GroupCommit = lsmstore.GroupCommitOn
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var seq uint64
	single := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq++
			if err := db.Upsert(tweetPK(seq), tweetRec(seq, uint32(seq%40), int64(seq%1000))); err != nil {
				b.Fatal(err)
			}
		}
	})
	if got := single.AllocsPerOp(); got > 64 {
		t.Errorf("single disk write allocates %d objects/op, ceiling 64 — a pooled buffer regressed", got)
	}
	const batch = 64
	muts := make([]lsmstore.Mutation, batch)
	batched := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range muts {
				seq++
				muts[j] = lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: tweetPK(seq), Record: tweetRec(seq, uint32(seq%40), int64(seq%1000))}
			}
			if err := db.ApplyBatch(muts); err != nil {
				b.Fatal(err)
			}
		}
	})
	if got := batched.AllocsPerOp() / batch; got > 128 {
		t.Errorf("batched disk write allocates %d objects/mutation, ceiling 128", got)
	}
	t.Logf("disk write allocations: single %d/op, batched %d/mutation",
		single.AllocsPerOp(), batched.AllocsPerOp()/batch)
}

// TestGroupCommitSpeedupSmoke is the CI bench-smoke gate: with concurrent
// committers on the disk backend, group commit ON must beat OFF in
// ops/s — if coalescing ever regresses below the per-commit-fsync
// baseline, the optimization is broken and the job fails. Skipped unless
// LSMSTORE_BENCH_SMOKE=1 (it burns a few seconds of real fsyncs).
func TestGroupCommitSpeedupSmoke(t *testing.T) {
	if os.Getenv("LSMSTORE_BENCH_SMOKE") == "" {
		t.Skip("set LSMSTORE_BENCH_SMOKE=1 to run the group-commit speed gate")
	}
	const (
		writers = 8
		perW    = 400
	)
	measure := func(mode lsmstore.GroupCommitMode) (opsPerSec float64) {
		opts := diskOptions(lsmstore.Validation, t.TempDir())
		opts.GroupCommit = mode
		db, err := lsmstore.Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perW; i++ {
					id := uint64(w)<<32 | uint64(i)
					if err := db.Upsert(tweetPK(id), tweetRec(id, uint32(w), int64(i))); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		return float64(writers*perW) / time.Since(start).Seconds()
	}
	off := measure(lsmstore.GroupCommitOff)
	on := measure(lsmstore.GroupCommitOn)
	t.Logf("disk backend, %d concurrent writers: group-commit off %.0f ops/s, on %.0f ops/s (%.2fx)",
		writers, off, on, on/off)
	if on <= off {
		t.Fatalf("group commit is not faster: on %.0f <= off %.0f ops/s", on, off)
	}
	fmt.Fprintf(os.Stderr, "group-commit smoke: %.2fx speedup (%.0f -> %.0f ops/s)\n", on/off, off, on)
}
