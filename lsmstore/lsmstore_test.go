package lsmstore_test

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/workload"
	"repro/lsmstore"
)

func TestOpenRejectsBadConfigs(t *testing.T) {
	_, err := lsmstore.Open(lsmstore.Options{
		Strategy:       lsmstore.MutableBitmap,
		DisablePKIndex: true,
	})
	if err == nil {
		t.Fatal("mutable-bitmap without pk index must fail")
	}
	_, err = lsmstore.Open(lsmstore.Options{RepairBloomOpt: true})
	if err == nil {
		t.Fatal("bf repair optimization without correlated merges must fail")
	}
}

func TestCRUDRoundTrip(t *testing.T) {
	db, err := lsmstore.Open(tinyOptions(lsmstore.Eager))
	if err != nil {
		t.Fatal(err)
	}
	pk := binary.BigEndian.AppendUint64(nil, 42)
	rec := workload.Tweet{ID: 42, UserID: 7, Creation: 1, Message: []byte("m")}.Encode()

	ok, err := db.Insert(pk, rec)
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if ok, _ := db.Insert(pk, rec); ok {
		t.Fatal("duplicate insert accepted")
	}
	got, found, err := db.Get(pk)
	if err != nil || !found || len(got) != len(rec) {
		t.Fatal("Get mismatch")
	}
	rec2 := workload.Tweet{ID: 42, UserID: 9, Creation: 2, Message: []byte("mm")}.Encode()
	if err := db.Upsert(pk, rec2); err != nil {
		t.Fatal(err)
	}
	got, _, _ = db.Get(pk)
	if u, _ := workload.UserIDOf(got); string(u) != string(workload.UserKey(9)) {
		t.Fatal("upsert not visible")
	}
	if ok, _ := db.Delete(pk); !ok {
		t.Fatal("delete failed")
	}
	if _, found, _ := db.Get(pk); found {
		t.Fatal("deleted key visible")
	}
}

func TestUnknownIndexError(t *testing.T) {
	db, _ := lsmstore.Open(tinyOptions(lsmstore.Eager))
	if _, err := db.SecondaryQuery("nope", nil, nil, lsmstore.QueryOptions{}); err == nil {
		t.Fatal("unknown index accepted")
	}
}

// TestPublicAPIEquivalence drives the full public surface across all
// strategies against a model.
func TestPublicAPIEquivalence(t *testing.T) {
	strategies := []struct {
		s lsmstore.Strategy
		v lsmstore.ValidationMethod
	}{
		{lsmstore.Eager, lsmstore.NoValidation},
		{lsmstore.Validation, lsmstore.TimestampValidation},
		{lsmstore.Validation, lsmstore.DirectValidation},
		{lsmstore.MutableBitmap, lsmstore.TimestampValidation},
	}
	for _, sc := range strategies {
		t.Run(fmt.Sprintf("%v-%v", sc.s, sc.v), func(t *testing.T) {
			db, err := lsmstore.Open(tinyOptions(sc.s))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(8))
			type row struct {
				user     uint32
				creation int64
			}
			model := map[uint64]row{}
			for i := 0; i < 4000; i++ {
				id := uint64(rng.Intn(500) + 1)
				pk := binary.BigEndian.AppendUint64(nil, id)
				if rng.Intn(10) == 0 {
					db.Delete(pk)
					delete(model, id)
					continue
				}
				u := uint32(rng.Intn(40))
				cr := int64(i + 1)
				rec := workload.Tweet{ID: id, UserID: u, Creation: cr, Message: []byte("x")}.Encode()
				if err := db.Upsert(pk, rec); err != nil {
					t.Fatal(err)
				}
				model[id] = row{u, cr}
			}

			// Secondary query over a user range.
			for trial := 0; trial < 10; trial++ {
				lo := uint32(rng.Intn(35))
				hi := lo + uint32(rng.Intn(5))
				var want []uint64
				for id, r := range model {
					if r.user >= lo && r.user <= hi {
						want = append(want, id)
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				res, err := db.SecondaryQuery("user", workload.UserKey(lo), workload.UserKey(hi),
					lsmstore.QueryOptions{Validation: sc.v})
				if err != nil {
					t.Fatal(err)
				}
				var got []uint64
				for _, r := range res.Records {
					got = append(got, binary.BigEndian.Uint64(r.PK))
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("trial %d: got %v want %v", trial, got, want)
				}
			}

			// Filter scan over a creation-time window.
			lo, hi := int64(1000), int64(3000)
			var want []uint64
			for id, r := range model {
				if r.creation >= lo && r.creation <= hi {
					want = append(want, id)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			var got []uint64
			if err := db.FilterScan(lo, hi, func(pk, _ []byte) {
				got = append(got, binary.BigEndian.Uint64(pk))
			}); err != nil {
				t.Fatal(err)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("filter scan: got %d want %d rows", len(got), len(want))
			}
		})
	}
}

func TestRepairSecondaryIndexes(t *testing.T) {
	db, err := lsmstore.Open(tinyOptions(lsmstore.Validation))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		id := uint64(rng.Intn(300) + 1)
		pk := binary.BigEndian.AppendUint64(nil, id)
		rec := workload.Tweet{ID: id, UserID: uint32(rng.Intn(20)), Creation: int64(i), Message: []byte("y")}.Encode()
		if err := db.Upsert(pk, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.RepairSecondaryIndexes(); err != nil {
		t.Fatal(err)
	}
	// Query answers stay correct after repair.
	res, err := db.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(19),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range res.Records {
		if seen[string(r.PK)] {
			t.Fatal("duplicate pk after repair")
		}
		seen[string(r.PK)] = true
	}
}

func TestIndexOnlyQuery(t *testing.T) {
	db, _ := lsmstore.Open(tinyOptions(lsmstore.Validation))
	for i := uint64(1); i <= 100; i++ {
		pk := binary.BigEndian.AppendUint64(nil, i)
		rec := workload.Tweet{ID: i, UserID: uint32(i % 10), Creation: int64(i), Message: []byte("z")}.Encode()
		db.Upsert(pk, rec)
	}
	res, err := db.SecondaryQuery("user", workload.UserKey(3), workload.UserKey(3),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation, IndexOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) != 10 || len(res.Records) != 0 {
		t.Fatalf("index-only: %d keys %d records", len(res.Keys), len(res.Records))
	}
}

func TestStatsProgress(t *testing.T) {
	db, _ := lsmstore.Open(tinyOptions(lsmstore.Eager))
	for i := uint64(1); i <= 2000; i++ {
		pk := binary.BigEndian.AppendUint64(nil, i)
		rec := workload.Tweet{ID: i, UserID: 1, Creation: int64(i), Message: make([]byte, 100)}.Encode()
		db.Upsert(pk, rec)
	}
	st := db.Stats()
	if st.Ingested != 2000 {
		t.Fatalf("Ingested = %d", st.Ingested)
	}
	if st.PrimaryComponents == 0 {
		t.Fatal("no flush happened; budget accounting broken?")
	}
	if st.DiskBytesWritten == 0 {
		t.Fatal("no disk writes recorded")
	}
	if st.SimulatedTime == "0s" {
		t.Fatal("virtual clock did not advance")
	}
}

func TestFlushIsExplicit(t *testing.T) {
	opts := tinyOptions(lsmstore.Eager)
	opts.MemoryBudget = 1 << 30 // never auto-flush
	db, _ := lsmstore.Open(opts)
	pk := binary.BigEndian.AppendUint64(nil, 1)
	db.Upsert(pk, workload.Tweet{ID: 1, UserID: 1, Creation: 1, Message: []byte("m")}.Encode())
	if db.Stats().PrimaryComponents != 0 {
		t.Fatal("unexpected auto-flush")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().PrimaryComponents != 1 {
		t.Fatal("explicit flush did nothing")
	}
	if _, found, _ := db.Get(pk); !found {
		t.Fatal("record lost by flush")
	}
}
