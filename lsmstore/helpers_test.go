package lsmstore_test

import (
	"testing"

	"repro/lsmstore"
	"repro/lsmstore/internal/storetest"
)

// The battery fixtures live in lsmstore/internal/storetest; these thin
// names keep the test files readable and apply the per-run backend
// override (LSMSTORE_TEST_BACKEND) where it belongs.

// tinyOptions is the small store every functional test uses, routed
// through the test-run backend override.
func tinyOptions(strategy lsmstore.Strategy) lsmstore.Options {
	return applyTestBackend(storetest.BaseOptions(strategy))
}

// diskOptions pins tinyOptions to the file backend in dir (no override:
// disk tests are disk tests on every run).
func diskOptions(strategy lsmstore.Strategy, dir string) lsmstore.Options {
	return storetest.DiskOptions(strategy, dir)
}

func tweetPK(id uint64) []byte { return storetest.TweetPK(id) }

func tweetRec(id uint64, user uint32, creation int64) []byte {
	return storetest.TweetRec(id, user, creation)
}

func validationFor(s lsmstore.Strategy) lsmstore.ValidationMethod {
	return storetest.ValidationFor(s)
}

func storeImage(t *testing.T, db *lsmstore.DB, ids []uint64, validation lsmstore.ValidationMethod) string {
	t.Helper()
	return storetest.StoreImage(t, db, ids, validation)
}

func mixedWorkload(t *testing.T, db *lsmstore.DB, n int, seed int64) []uint64 {
	t.Helper()
	return storetest.MixedWorkload(t, db, n, seed)
}

func snapshotStoreDir(src, dst string) error { return storetest.SnapshotStoreDir(src, dst) }

func copyFile(src, dst string) error { return storetest.CopyFile(src, dst) }
