package lsmstore_test

import (
	"testing"

	"repro/internal/admission"
	"repro/lsmstore"
)

// TestMergeGateObservationalOnly proves that throttling merge dispatch —
// what the maintenance governor does under overload — changes merge
// *timing* only, never results: the identical seeded workload against an
// ungated store and a store whose merges wait on a slow token bucket must
// produce identical query results and ingestion counts. This is the
// engine-image equivalence contract behind DB.SetMergeGate, in the style
// of TestMaintJournalObservationalOnly.
func TestMergeGateObservationalOnly(t *testing.T) {
	mk := func() *lsmstore.DB {
		db, err := lsmstore.Open(asyncOptions(lsmstore.Validation, 2, 2))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}
	plain := mk()
	gated := mk()

	// 20 merges/s is slow enough that the gate really reorders work
	// against the workload, fast enough to keep the test quick. Closing
	// the bucket before DB.Close opens the gate so teardown can't hang.
	bucket := admission.NewBucket(20, 1)
	t.Cleanup(bucket.Close)
	gated.SetMergeGate(bucket.Wait)

	modelPlain := applyWorkload(t, plain, 2000)
	modelGated := applyWorkload(t, gated, 2000)
	if len(modelPlain) != len(modelGated) {
		t.Fatalf("models diverge: %d vs %d live rows", len(modelPlain), len(modelGated))
	}
	if err := plain.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := gated.Flush(); err != nil {
		t.Fatal(err)
	}

	sa, sb := plain.Stats(), gated.Stats()
	if sa.Ingested != sb.Ingested || sa.Ignored != sb.Ignored {
		t.Fatalf("counts diverge: plain %d/%d gated %d/%d", sa.Ingested, sa.Ignored, sb.Ingested, sb.Ignored)
	}
	fa := storeFingerprint(t, plain, lsmstore.TimestampValidation, modelPlain)
	fb := storeFingerprint(t, gated, lsmstore.TimestampValidation, modelGated)
	if fa != fb {
		t.Fatalf("stores diverge with merge gate on vs off:\nplain: %.400s\ngated: %.400s", fa, fb)
	}

	// Clearing the gate restores ungated dispatch; a second burst must
	// still converge.
	gated.SetMergeGate(nil)
	more := applyWorkload(t, gated, 200)
	if len(more) == 0 {
		t.Fatal("post-clear workload applied nothing")
	}
}
