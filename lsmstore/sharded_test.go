package lsmstore_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/shard"
	"repro/internal/workload"
	"repro/lsmstore"
)

func shardedOptions(strategy lsmstore.Strategy, shards int) lsmstore.Options {
	opts := tinyOptions(strategy)
	opts.Shards = shards
	return opts
}

// TestShardedEquivalence drives identical workloads into an unsharded store
// and a 4-shard store and demands the same visible contents from every read
// path: point reads, secondary queries, and filter scans.
func TestShardedEquivalence(t *testing.T) {
	for _, strategy := range []lsmstore.Strategy{lsmstore.Eager, lsmstore.Validation} {
		t.Run(fmt.Sprint(strategy), func(t *testing.T) {
			validation := lsmstore.NoValidation
			if strategy == lsmstore.Validation {
				validation = lsmstore.TimestampValidation
			}
			single, err := lsmstore.Open(shardedOptions(strategy, 1))
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := lsmstore.Open(shardedOptions(strategy, 4))
			if err != nil {
				t.Fatal(err)
			}
			if single.NumShards() != 1 || sharded.NumShards() != 4 {
				t.Fatalf("shard counts: %d, %d", single.NumShards(), sharded.NumShards())
			}

			rng := rand.New(rand.NewSource(11))
			live := map[uint64]bool{}
			for i := 0; i < 3000; i++ {
				id := uint64(rng.Intn(400) + 1)
				pk := tweetPK(id)
				if rng.Intn(8) == 0 {
					single.Delete(pk)
					sharded.Delete(pk)
					live[id] = false
					continue
				}
				rec := tweetRec(id, uint32(rng.Intn(30)), int64(i+1))
				if err := single.Upsert(pk, rec); err != nil {
					t.Fatal(err)
				}
				if err := sharded.Upsert(pk, rec); err != nil {
					t.Fatal(err)
				}
				live[id] = true
			}

			for id, alive := range live {
				a, foundA, errA := single.Get(tweetPK(id))
				b, foundB, errB := sharded.Get(tweetPK(id))
				if errA != nil || errB != nil {
					t.Fatal(errA, errB)
				}
				if foundA != alive || foundB != alive {
					t.Fatalf("key %d: single found=%v sharded found=%v want %v", id, foundA, foundB, alive)
				}
				if !bytes.Equal(a, b) {
					t.Fatalf("key %d: records differ", id)
				}
			}

			qa, err := single.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(29),
				lsmstore.QueryOptions{Validation: validation})
			if err != nil {
				t.Fatal(err)
			}
			qb, err := sharded.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(29),
				lsmstore.QueryOptions{Validation: validation})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := recordSet(qb.Records), recordSet(qa.Records); got != want {
				t.Fatalf("secondary answers differ:\nsharded: %s\nsingle:  %s", got, want)
			}

			var sa, sb []string
			single.FilterScan(0, 1<<62, func(pk, rec []byte) { sa = append(sa, fmt.Sprintf("%x=%x", pk, rec)) })
			sharded.FilterScan(0, 1<<62, func(pk, rec []byte) { sb = append(sb, fmt.Sprintf("%x=%x", pk, rec)) })
			sort.Strings(sa)
			sort.Strings(sb)
			if fmt.Sprint(sa) != fmt.Sprint(sb) {
				t.Fatalf("filter scans differ: %d vs %d rows", len(sa), len(sb))
			}

			st := sharded.Stats()
			if st.Shards != 4 || len(st.PerShard) != 4 {
				t.Fatalf("sharded stats shape: shards=%d per=%d", st.Shards, len(st.PerShard))
			}
			var ingested int64
			for _, s := range st.PerShard {
				ingested += s.Ingested
			}
			if ingested != st.Ingested {
				t.Fatalf("aggregate ingested %d != per-shard sum %d", st.Ingested, ingested)
			}
			if st.Ingested != single.Stats().Ingested {
				t.Fatalf("ingested: sharded %d vs single %d", st.Ingested, single.Stats().Ingested)
			}
		})
	}
}

func recordSet(recs []lsmstore.Record) string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = fmt.Sprintf("%x=%x", r.PK, r.Value)
	}
	sort.Strings(out)
	return fmt.Sprint(out)
}

// TestShardedRoutingDeterministicAcrossReopen checks that the same PK lands
// on the same shard in two independently opened stores (placement is a pure
// function of key bytes and shard count).
func TestShardedRoutingDeterministicAcrossReopen(t *testing.T) {
	const shards = 4
	placements := func(db *lsmstore.DB) map[uint64]int {
		out := map[uint64]int{}
		for id := uint64(1); id <= 200; id++ {
			if err := db.Upsert(tweetPK(id), tweetRec(id, 1, int64(id))); err != nil {
				t.Fatal(err)
			}
			for s := 0; s < shards; s++ {
				if _, found, _ := db.Shard(s).Primary().Get(tweetPK(id)); found {
					out[id] = s
				}
			}
		}
		return out
	}
	a, err := lsmstore.Open(shardedOptions(lsmstore.Eager, shards))
	if err != nil {
		t.Fatal(err)
	}
	b, err := lsmstore.Open(shardedOptions(lsmstore.Eager, shards))
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := placements(a), placements(b)
	for id, s := range pa {
		if pb[id] != s {
			t.Fatalf("key %d moved: shard %d vs %d across reopen", id, s, pb[id])
		}
		if want := shard.ShardOf(tweetPK(id), shards); s != want {
			t.Fatalf("key %d on shard %d, hash names %d", id, s, want)
		}
	}
}

// TestShardedSecondaryQueryLimit checks the cross-shard merge: results come
// back in primary-key order and Limit returns exactly the first K of the
// full merged answer.
func TestShardedSecondaryQueryLimit(t *testing.T) {
	db, err := lsmstore.Open(shardedOptions(lsmstore.Validation, 4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	var muts []lsmstore.Mutation
	for id := uint64(1); id <= n; id++ {
		muts = append(muts, lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: tweetPK(id), Record: tweetRec(id, 7, int64(id))})
	}
	if err := db.ApplyBatch(muts); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	full, err := db.SecondaryQuery("user", workload.UserKey(7), workload.UserKey(7),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) != n {
		t.Fatalf("full query returned %d of %d", len(full.Records), n)
	}
	for i := 1; i < len(full.Records); i++ {
		if bytes.Compare(full.Records[i-1].PK, full.Records[i].PK) >= 0 {
			t.Fatal("merged records not in primary-key order")
		}
	}

	const limit = 25
	capped, err := db.SecondaryQuery("user", workload.UserKey(7), workload.UserKey(7),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Records) != limit {
		t.Fatalf("limit %d returned %d records", limit, len(capped.Records))
	}
	for i := range capped.Records {
		if !bytes.Equal(capped.Records[i].PK, full.Records[i].PK) {
			t.Fatalf("limited answer is not a prefix of the full answer at %d", i)
		}
	}

	// Index-only limit too.
	keys, err := db.SecondaryQuery("user", workload.UserKey(7), workload.UserKey(7),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation, IndexOnly: true, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys.Keys) != limit {
		t.Fatalf("index-only limit %d returned %d keys", limit, len(keys.Keys))
	}

	// Unknown index surfaces the sentinel through the sharded path too.
	if _, err := db.SecondaryQuery("nope", nil, nil, lsmstore.QueryOptions{}); err == nil {
		t.Fatal("unknown index accepted on sharded store")
	}
}

// TestLimitConsistentAcrossShardCounts checks that a capped query selects
// the same subset (the lowest primary keys) on every shard count.
func TestLimitConsistentAcrossShardCounts(t *testing.T) {
	answers := make([]string, 0, 3)
	for _, shards := range []int{1, 2, 4} {
		db, err := lsmstore.Open(shardedOptions(lsmstore.Eager, shards))
		if err != nil {
			t.Fatal(err)
		}
		for id := uint64(1); id <= 120; id++ {
			if err := db.Upsert(tweetPK(id), tweetRec(id, 5, int64(id))); err != nil {
				t.Fatal(err)
			}
		}
		res, err := db.SecondaryQuery("user", workload.UserKey(5), workload.UserKey(5),
			lsmstore.QueryOptions{IndexOnly: true, Limit: 7})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Keys) != 7 {
			t.Fatalf("shards=%d: got %d keys, want 7", shards, len(res.Keys))
		}
		answers = append(answers, fmt.Sprintf("%x", res.Keys))
	}
	for i := 1; i < len(answers); i++ {
		if answers[i] != answers[0] {
			t.Fatalf("limited answer differs across shard counts:\n%s\nvs\n%s", answers[0], answers[i])
		}
	}
}

// TestShardedCrashRecover crashes all shards and checks recovery restores
// every committed record on every shard.
func TestShardedCrashRecover(t *testing.T) {
	db, err := lsmstore.Open(shardedOptions(lsmstore.Validation, 4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for id := uint64(1); id <= n; id++ {
		if err := db.Upsert(tweetPK(id), tweetRec(id, uint32(id%5), int64(id))); err != nil {
			t.Fatal(err)
		}
	}
	db.Crash()
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= n; id++ {
		rec, found, err := db.Get(tweetPK(id))
		if err != nil || !found {
			t.Fatalf("key %d lost after crash+recover (err=%v)", id, err)
		}
		if !bytes.Equal(rec, tweetRec(id, uint32(id%5), int64(id))) {
			t.Fatalf("key %d corrupted after recovery", id)
		}
	}
	if got := db.Stats().Ingested; got != n {
		t.Fatalf("ingested after recovery: %d want %d", got, n)
	}
}

// TestShardedConcurrentApplyBatch exercises concurrent batch writers with
// concurrent readers (Stats, Get, SecondaryQuery, Flush) across shards; its
// real assertions run under -race in CI.
func TestShardedConcurrentApplyBatch(t *testing.T) {
	db, err := lsmstore.Open(shardedOptions(lsmstore.Validation, 4))
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		batches = 6
		perB    = 200
	)
	var wg sync.WaitGroup
	errc := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				var muts []lsmstore.Mutation
				for i := 0; i < perB; i++ {
					id := uint64(w*1_000_000 + b*perB + i + 1)
					muts = append(muts, lsmstore.Mutation{
						Op: lsmstore.OpInsert, PK: tweetPK(id), Record: tweetRec(id, uint32(id%50), int64(id)),
					})
				}
				if err := db.ApplyBatch(muts); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = db.Stats()
			if _, _, err := db.Get(tweetPK(uint64(i + 1))); err != nil {
				errc <- err
				return
			}
			if _, err := db.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(9),
				lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation}); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := db.Flush(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got, want := db.Stats().Ingested, int64(writers*batches*perB); got != want {
		t.Fatalf("ingested %d want %d", got, want)
	}
}

// TestApplyBatchUnsharded checks the sequential single-partition path.
func TestApplyBatchUnsharded(t *testing.T) {
	db, err := lsmstore.Open(tinyOptions(lsmstore.Eager))
	if err != nil {
		t.Fatal(err)
	}
	muts := []lsmstore.Mutation{
		{Op: lsmstore.OpInsert, PK: tweetPK(1), Record: tweetRec(1, 1, 1)},
		{Op: lsmstore.OpUpsert, PK: tweetPK(1), Record: tweetRec(1, 2, 2)},
		{Op: lsmstore.OpInsert, PK: tweetPK(2), Record: tweetRec(2, 1, 3)},
		{Op: lsmstore.OpDelete, PK: tweetPK(2)},
	}
	if err := db.ApplyBatch(muts); err != nil {
		t.Fatal(err)
	}
	rec, found, _ := db.Get(tweetPK(1))
	if !found || !bytes.Equal(rec, tweetRec(1, 2, 2)) {
		t.Fatal("batch upsert not applied in order")
	}
	if _, found, _ := db.Get(tweetPK(2)); found {
		t.Fatal("batch delete not applied")
	}
}
