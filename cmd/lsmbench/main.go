// Command lsmbench regenerates the paper's evaluation figures (Section 6)
// and benchmarks this repository's extensions.
//
// Usage:
//
//	lsmbench -figure fig14           # one figure
//	lsmbench -figure all             # every figure
//	lsmbench -figure fig12b -quick   # reduced scale
//	lsmbench -list                   # list figure IDs
//	lsmbench -shardsweep 1,2,4,8     # sharded ingest throughput sweep
//	lsmbench -shardsweep 1,4 -n 200000
//	lsmbench -shardsweep 4 -async 2  # background maintenance (2 workers)
//	lsmbench -shardsweep 1,4 -backend=disk        # real files, real fsync
//	lsmbench -shardsweep 4 -backend=disk -dir /data/bench
//
// Output rows mirror the series the paper plots; times are virtual
// (cost-model) seconds except Figure 23, which reports wall time. The
// shard sweep ingests the same batch at each shard count and reports the
// simulated ingest time (max over shards) and throughput; with -async N
// the flush builds and merges run on N background workers and the sweep
// reports the ingest-lane time (what the write path experienced), the
// maintenance-lane time, and the backpressure stalls.
//
// With -backend=disk the sweep runs on the file backend (real files,
// batched appends, fsync on commit and install) under -dir — a fresh
// temporary directory, removed on exit, when -dir is empty. Virtual times
// then reflect CPU charges only; the wall-clock column is the honest
// figure. The paper figures (-figure) always run the simulated cost model.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/cmd/internal/backendflag"
	"repro/internal/experiments"
	"repro/internal/workload"
	"repro/lsmstore"
)

func main() {
	figure := flag.String("figure", "all", "figure ID to run (see -list), or 'all'")
	quick := flag.Bool("quick", false, "run at reduced scale")
	list := flag.Bool("list", false, "list available figure IDs")
	sweep := flag.String("shardsweep", "", "comma-separated shard counts: run the sharded ingest sweep instead of figures")
	nrecs := flag.Int("n", 100_000, "records to ingest per -shardsweep run")
	async := flag.Int("async", 0, "background maintenance workers for -shardsweep (0 = synchronous)")
	backendFlag := flag.String("backend", "sim", "storage backend for -shardsweep: sim | disk")
	dir := flag.String("dir", "", "data directory for -backend=disk (default: a temp dir, removed on exit)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *sweep != "" {
		backend, resolvedDir, cleanup, err := backendflag.Resolve(*backendFlag, *dir)
		if err == nil {
			err = runShardSweep(*sweep, *nrecs, *async, backend, resolvedDir)
		}
		cleanup()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lsmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	scale := experiments.Default()
	if *quick {
		scale = experiments.Quick()
	}
	ids := experiments.IDs()
	if *figure != "all" {
		ids = []string{*figure}
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lsmbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		fmt.Printf("-- %s completed in %.1fs (real)\n\n", id, time.Since(start).Seconds())
	}
}

// runShardSweep ingests the same generated batch into fresh stores with
// each requested shard count and prints simulated time, throughput, and
// speedup relative to the first entry of the sweep. With async > 0,
// background maintenance runs on that many pool workers and the reported
// ingest time is the ingest lane's (the write path's) virtual time. On the
// disk backend each shard count runs in its own subdirectory of dir.
func runShardSweep(spec string, n, async int, backend lsmstore.Backend, dir string) error {
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c < 1 {
			return fmt.Errorf("bad shard count %q in -shardsweep", f)
		}
		counts = append(counts, c)
	}

	cfg := workload.DefaultConfig(3)
	cfg.UpdateRatio = 0.20
	cfg.ZipfUpdates = true
	gen := workload.NewGenerator(cfg)
	muts := make([]lsmstore.Mutation, n)
	for i := range muts {
		op := gen.Next()
		muts[i] = lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: op.Tweet.PK(), Record: op.Tweet.Encode()}
	}

	mode := "synchronous maintenance"
	if async > 0 {
		mode = fmt.Sprintf("background maintenance, %d workers", async)
	}
	where := "backend=sim"
	if backend == lsmstore.FileBackend {
		where = fmt.Sprintf("backend=disk dir=%s", dir)
	}
	fmt.Printf("# sharded ingest sweep: %d records (20%% Zipf updates), Validation strategy, %s, %s\n", n, mode, where)
	fmt.Printf("%-8s %14s %16s %10s %14s %8s\n", "shards", "ingest-time", "records/simsec", "speedup", "maint-time", "stalls")
	var base time.Duration
	for _, shards := range counts {
		runDir := ""
		if backend == lsmstore.FileBackend {
			// Each shard count is its own store; a shared directory would
			// (correctly) refuse to reopen under a different count. A
			// leftover run directory would be silently reopened and
			// ingested on top of, skewing the sweep — refuse it.
			runDir = filepath.Join(dir, fmt.Sprintf("run-%02d", shards))
			if _, err := os.Stat(runDir); err == nil {
				return fmt.Errorf("%s already holds a previous run; pass a fresh -dir or remove it", runDir)
			}
		}
		db, err := lsmstore.Open(lsmstore.Options{
			Strategy:           lsmstore.Validation,
			Secondaries:        []lsmstore.SecondaryIndex{{Name: "user", Extract: workload.UserIDOf}},
			FilterExtract:      workload.CreationOf,
			MemoryBudget:       1 << 20,
			CacheBytes:         16 << 20,
			PageSize:           8 << 10,
			Seed:               3,
			Shards:             shards,
			MaintenanceWorkers: async,
			Backend:            backend,
			Dir:                runDir,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		if err := db.ApplyBatch(muts); err != nil {
			return err
		}
		// The ingest-lane reading is taken at the end of the write phase;
		// the final Flush drains background maintenance so every run ends
		// fully compacted.
		ingest, err := time.ParseDuration(db.Stats().IngestTime)
		if err != nil {
			return err
		}
		if err := db.Flush(); err != nil {
			return err
		}
		st := db.Stats()
		if err := db.Close(); err != nil {
			return err
		}
		if base == 0 {
			base = ingest
		}
		fmt.Printf("%-8d %14s %16.0f %9.2fx %14s %8d   (%.1fs real)\n",
			shards, ingest, float64(n)/ingest.Seconds(), float64(base)/float64(ingest),
			st.MaintenanceTime, st.Counters.WriteStalls, time.Since(start).Seconds())
	}
	return nil
}
