// Command lsmbench regenerates the paper's evaluation figures (Section 6).
//
// Usage:
//
//	lsmbench -figure fig14           # one figure
//	lsmbench -figure all             # every figure
//	lsmbench -figure fig12b -quick   # reduced scale
//	lsmbench -list                   # list figure IDs
//
// Output rows mirror the series the paper plots; times are virtual
// (cost-model) seconds except Figure 23, which reports wall time.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	figure := flag.String("figure", "all", "figure ID to run (see -list), or 'all'")
	quick := flag.Bool("quick", false, "run at reduced scale")
	list := flag.Bool("list", false, "list available figure IDs")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	scale := experiments.Default()
	if *quick {
		scale = experiments.Quick()
	}
	ids := experiments.IDs()
	if *figure != "all" {
		ids = []string{*figure}
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lsmbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		fmt.Printf("-- %s completed in %.1fs (real)\n\n", id, time.Since(start).Seconds())
	}
}
