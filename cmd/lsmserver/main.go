// Command lsmserver serves an lsmstore over TCP with the repository's wire
// protocol, turning the embedded engine into a networked system. It opens
// (or reopens) a store on the chosen backend, declares the tweet-workload
// schema — a "user" secondary index and a creation-time range filter, the
// same schema lsmingest and lsmquery use — and serves GET, UPSERT, INSERT,
// DELETE, APPLY_BATCH, SECONDARY_QUERY, FILTER_SCAN, STATS, FLUSH and PING
// with pipelined, out-of-order responses. Concurrent single writes are
// coalesced into per-shard batches.
//
// The HTTP sidecar serves /healthz, /stats (JSON incl. latency digests),
// /metrics (Prometheus text format), /debug/slow (slow-request ring),
// /debug/maintenance (flush/merge journal) and, with -pprof, net/http/pprof.
//
// Overload protection is opt-in: -admission-budget bounds weighted
// in-flight work (excess queues briefly, then sheds with OVERLOADED),
// -tenant-rate rate-limits tagged clients (RETRY_LATER), and
// -latency-target starts the maintenance governor, which throttles merge
// dispatch whenever the foreground p99 exceeds the target.
//
// Usage:
//
//	lsmserver -addr 127.0.0.1:4150 -http 127.0.0.1:9650 -shards 4 -maint-workers 2
//	lsmserver -backend=disk -dir /data/store    # durable, reopenable
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, then the
// store closes (on the disk backend: final manifests persist and the WAL
// compacts).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/cmd/internal/backendflag"
	"repro/internal/server"
	"repro/internal/workload"
	"repro/lsmstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lsmserver:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:4150", "TCP listen address for the wire protocol")
	httpAddr := flag.String("http", "127.0.0.1:9650", "HTTP sidecar address for /healthz and /stats (empty disables)")
	backend := flag.String("backend", "sim", "storage backend: sim | disk")
	dir := flag.String("dir", "", "data directory for -backend=disk (default: a temp dir, removed on exit)")
	strategy := flag.String("strategy", "validation", "eager | validation | mutable-bitmap | deleted-key")
	shards := flag.Int("shards", 1, "hash partitions")
	maintWorkers := flag.Int("maint-workers", 2, "background maintenance workers (0 = synchronous)")
	memBudget := flag.Int("memory-budget", 4<<20, "per-partition memory component budget in bytes")
	cacheBytes := flag.Int64("cache", 64<<20, "buffer cache bytes (split across shards)")
	readCache := flag.Int64("read-cache", 0, "hot-entry read cache bytes in front of the engine (0 = off)")
	maxInFlight := flag.Int("max-inflight", 128, "max in-flight requests per connection before backpressure")
	maxBatch := flag.Int("max-batch", 256, "max writes the coalescer folds into one engine batch")
	coalescers := flag.Int("coalescers", 4, "concurrent coalescer drainers (overlap commit fsyncs with engine work)")
	noCoalesce := flag.Bool("no-coalesce", false, "apply single writes individually instead of coalescing")
	groupCommit := flag.String("group-commit", "auto", "commit fsync coalescing on the disk backend: auto | on | off")
	maxSyncDelay := flag.Duration("max-sync-delay", 0, "group-commit window for announced stragglers (0 = 2ms default; negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before connections are cut")
	seed := flag.Int64("seed", 42, "engine seed")
	pprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the HTTP sidecar")
	slowThreshold := flag.Duration("slow-threshold", 0, "slow-request log threshold (0 = 100ms default; negative disables)")
	noObs := flag.Bool("no-obs", false, "disable latency histograms, stage tracing and the slow-request log")
	admBudget := flag.Int64("admission-budget", 0, "weighted in-flight admission budget (0 = admission control off)")
	admQueue := flag.Int("admission-queue", 0, "admission wait-queue depth (0 = 2x budget; negative disables queueing)")
	queueDeadline := flag.Duration("queue-deadline", 0, "max admission-queue wait before a request is shed (0 = 2ms default)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admitted requests/sec for tagged clients (0 = unlimited)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant burst above -tenant-rate (0 = rate)")
	latencyTarget := flag.Duration("latency-target", 0, "foreground p99 target coupling maintenance to load (0 = governor off)")
	flag.Parse()

	opts := lsmstore.Options{
		Secondaries:        []lsmstore.SecondaryIndex{{Name: "user", Extract: workload.UserIDOf}},
		FilterExtract:      workload.CreationOf,
		MemoryBudget:       *memBudget,
		CacheBytes:         *cacheBytes,
		ReadCache:          lsmstore.ReadCacheOptions{Bytes: *readCache},
		Shards:             *shards,
		MaintenanceWorkers: *maintWorkers,
		Seed:               *seed,
	}
	switch strings.ToLower(*strategy) {
	case "eager":
		opts.Strategy = lsmstore.Eager
	case "validation":
		opts.Strategy = lsmstore.Validation
	case "mutable-bitmap":
		opts.Strategy = lsmstore.MutableBitmap
	case "deleted-key":
		opts.Strategy = lsmstore.DeletedKey
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	switch strings.ToLower(*groupCommit) {
	case "auto":
		opts.GroupCommit = lsmstore.GroupCommitAuto
	case "on":
		opts.GroupCommit = lsmstore.GroupCommitOn
	case "off":
		opts.GroupCommit = lsmstore.GroupCommitOff
	default:
		return fmt.Errorf("unknown -group-commit %q (want auto, on or off)", *groupCommit)
	}
	opts.MaxSyncDelay = *maxSyncDelay
	be, resolvedDir, cleanup, err := backendflag.Resolve(*backend, *dir)
	if err != nil {
		return err
	}
	defer cleanup()
	opts.Backend = be
	opts.Dir = resolvedDir

	db, err := lsmstore.Open(opts)
	if err != nil {
		return err
	}
	defer db.Close()

	srv, err := server.New(server.Config{
		DB:                db,
		Addr:              *addr,
		HTTPAddr:          *httpAddr,
		MaxInFlight:       *maxInFlight,
		MaxBatch:          *maxBatch,
		Coalescers:        *coalescers,
		DisableCoalescing: *noCoalesce,

		EnablePprof:          *pprof,
		SlowRequestThreshold: *slowThreshold,
		DisableObservability: *noObs,

		AdmissionBudget:        *admBudget,
		AdmissionQueue:         *admQueue,
		AdmissionQueueDeadline: *queueDeadline,
		TenantRate:             *tenantRate,
		TenantBurst:            *tenantBurst,
		LatencyTarget:          *latencyTarget,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("lsmserver: serving %s backend (strategy %s, %d shard(s)) on %s\n",
		opts.Backend, strings.ToLower(*strategy), *shards, srv.Addr())
	if *admBudget > 0 {
		fmt.Printf("lsmserver: admission control on (budget %d, queue %d)\n", *admBudget, *admQueue)
	}
	if *latencyTarget > 0 {
		fmt.Printf("lsmserver: maintenance governor targeting foreground p99 %s\n", *latencyTarget)
	}
	if a := srv.HTTPAddr(); a != nil {
		fmt.Printf("lsmserver: /healthz /stats /metrics /debug/slow /debug/maintenance on http://%s\n", a)
		if *pprof {
			fmt.Printf("lsmserver: pprof on http://%s/debug/pprof/\n", a)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("lsmserver: %s — draining (budget %s)\n", got, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "lsmserver: drain incomplete: %v\n", err)
	}
	// The deferred Close is only the error-path cleanup; a failed final
	// sync must fail the run, so close explicitly (Close is idempotent).
	if err := db.Close(); err != nil {
		return err
	}
	fmt.Println("lsmserver: closed cleanly")
	return nil
}
