// Command lsmadvise recommends a maintenance strategy for a described
// workload by probing every candidate strategy on a miniature simulated
// replay (the paper's Section 7 auto-tuning direction).
//
// Usage:
//
//	lsmadvise -update-ratio 0.5 -queries 2 -scans 5 -secondaries 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/lsmstore"
)

func main() {
	p := lsmstore.WorkloadProfile{}
	flag.Float64Var(&p.UpdateRatio, "update-ratio", 0.1, "fraction of writes updating existing keys")
	flag.Float64Var(&p.QueriesPerKiloWrites, "queries", 5, "secondary queries per 1000 writes")
	flag.Float64Var(&p.IndexOnlyFraction, "index-only", 0.2, "fraction of queries that are index-only")
	flag.Float64Var(&p.FilterScansPerKiloWrites, "scans", 1, "filter scans per 1000 writes (half over old data)")
	flag.Float64Var(&p.QuerySelectivity, "selectivity", 0.001, "secondary query selectivity (fraction)")
	flag.IntVar(&p.NumSecondaries, "secondaries", 1, "number of secondary indexes")
	flag.IntVar(&p.RecordBytes, "record-bytes", 500, "typical record size")
	flag.Parse()

	best, report, err := lsmstore.Advise(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmadvise:", err)
		os.Exit(1)
	}
	fmt.Printf("recommended strategy: %v\n\nprobe measurements (virtual time):\n%s", best, report)
}
