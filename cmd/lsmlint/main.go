// Command lsmlint is the repo's invariant-enforcing static analyzer
// suite. It bundles four checkers for the engine's concurrency and
// durability contracts:
//
//	lockio      no blocking I/O while an engine mutex is held
//	erraudit    no silently discarded errors in durability packages
//	poolleak    sync.Pool buffers must not escape their request
//	clocksource simulation code must use the virtual metrics.Clock
//
// It speaks the `go vet -vettool` protocol, so the usual invocation is
//
//	go build -o /tmp/lsmlint ./cmd/lsmlint
//	go vet -vettool=/tmp/lsmlint ./...
//
// and it also runs standalone on package patterns:
//
//	lsmlint ./internal/...
//
// See internal/analysis/doc.go for the invariants and the //lsm:
// annotation protocol for justified exceptions.
package main

import (
	"repro/internal/analysis/clocksource"
	"repro/internal/analysis/erraudit"
	"repro/internal/analysis/lockio"
	"repro/internal/analysis/poolleak"
	"repro/internal/analysis/unit"
)

func main() {
	unit.Main(
		lockio.Analyzer,
		erraudit.Analyzer,
		poolleak.Analyzer,
		clocksource.Analyzer,
	)
}
