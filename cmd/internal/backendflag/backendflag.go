// Package backendflag resolves the -backend/-dir flag pair shared by the
// repository's benchmark commands onto lsmstore options, so the two tools
// cannot drift in flag semantics or temp-directory lifecycle.
package backendflag

import (
	"fmt"
	"os"
	"strings"

	"repro/lsmstore"
)

// Resolve parses a -backend value ("sim" or "disk", case-insensitive).
// For the disk backend with an empty dir it creates a temporary data
// directory; cleanup removes it (and is a no-op otherwise) — call it on
// every exit path. resolvedDir is the directory to pass as Options.Dir.
func Resolve(name, dir string) (backend lsmstore.Backend, resolvedDir string, cleanup func(), err error) {
	nop := func() {}
	switch strings.ToLower(name) {
	case "sim":
		return lsmstore.SimBackend, "", nop, nil
	case "disk":
		if dir != "" {
			return lsmstore.FileBackend, dir, nop, nil
		}
		tmp, err := os.MkdirTemp("", "lsmstore-*")
		if err != nil {
			return 0, "", nop, err
		}
		return lsmstore.FileBackend, tmp, func() { os.RemoveAll(tmp) }, nil
	default:
		return 0, "", nop, fmt.Errorf("unknown -backend %q (want sim or disk)", name)
	}
}
