// Command lsmquery loads a tweet dataset and answers ad-hoc secondary-index
// and range-filter queries against it, printing per-query virtual times and
// I/O counters — a small interactive analogue of the paper's Section 6.4.
//
// Usage:
//
//	lsmquery -records 30000 -strategy validation -user-lo 100 -user-hi 200
//	lsmquery -records 30000 -filter-lo 25000 -filter-hi 30000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/workload"
	"repro/lsmstore"
)

func main() {
	records := flag.Int("records", 30_000, "records to ingest before querying")
	strategy := flag.String("strategy", "eager", "eager | validation | mutable-bitmap")
	updateRatio := flag.Float64("update-ratio", 0.1, "update ratio during load")
	validation := flag.String("validation", "auto", "auto | none | direct | ts")
	indexOnly := flag.Bool("index-only", false, "index-only query (no record fetch)")
	userLo := flag.Uint("user-lo", 0, "secondary query: lowest user id")
	userHi := flag.Uint("user-hi", 0, "secondary query: highest user id (0 disables)")
	filterLo := flag.Int64("filter-lo", -1, "filter scan: lowest creation time (-1 disables)")
	filterHi := flag.Int64("filter-hi", -1, "filter scan: highest creation time")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	opts := lsmstore.Options{
		Secondaries:   []lsmstore.SecondaryIndex{{Name: "user", Extract: workload.UserIDOf}},
		FilterExtract: workload.CreationOf,
		MemoryBudget:  512 << 10,
		CacheBytes:    4 << 20,
		PageSize:      32 << 10,
		Seed:          *seed,
	}
	method := lsmstore.NoValidation
	switch strings.ToLower(*strategy) {
	case "eager":
		opts.Strategy = lsmstore.Eager
	case "validation":
		opts.Strategy = lsmstore.Validation
		method = lsmstore.TimestampValidation
	case "mutable-bitmap":
		opts.Strategy = lsmstore.MutableBitmap
		method = lsmstore.TimestampValidation
	default:
		fmt.Fprintf(os.Stderr, "lsmquery: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	switch strings.ToLower(*validation) {
	case "auto":
	case "none":
		method = lsmstore.NoValidation
	case "direct":
		method = lsmstore.DirectValidation
	case "ts":
		method = lsmstore.TimestampValidation
	default:
		fmt.Fprintf(os.Stderr, "lsmquery: unknown validation %q\n", *validation)
		os.Exit(2)
	}

	db, err := lsmstore.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmquery:", err)
		os.Exit(1)
	}
	wcfg := workload.DefaultConfig(*seed)
	wcfg.UpdateRatio = *updateRatio
	gen := workload.NewGenerator(wcfg)
	for i := 0; i < *records; i++ {
		op := gen.Next()
		if err := db.Upsert(op.Tweet.PK(), op.Tweet.Encode()); err != nil {
			fmt.Fprintln(os.Stderr, "lsmquery:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("loaded %d operations, simulated load time %s\n", *records, db.Stats().SimulatedTime)

	if *userHi > 0 {
		before := db.Env().Clock.Now()
		res, err := db.SecondaryQuery("user",
			workload.UserKey(uint32(*userLo)), workload.UserKey(uint32(*userHi)),
			lsmstore.QueryOptions{Validation: method, IndexOnly: *indexOnly})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lsmquery:", err)
			os.Exit(1)
		}
		n := len(res.Records) + len(res.Keys)
		fmt.Printf("secondary query user=[%d,%d] validation=%v index-only=%v: %d results in %s (virtual)\n",
			*userLo, *userHi, method, *indexOnly, n, db.Env().Clock.Now()-before)
	}
	if *filterLo >= 0 {
		before := db.Env().Clock.Now()
		count := 0
		if err := db.FilterScan(*filterLo, *filterHi, func(pk, rec []byte) { count++ }); err != nil {
			fmt.Fprintln(os.Stderr, "lsmquery:", err)
			os.Exit(1)
		}
		fmt.Printf("filter scan [%d,%d]: %d records in %s (virtual)\n",
			*filterLo, *filterHi, count, db.Env().Clock.Now()-before)
	}
}
