// Command lsmquery loads a tweet dataset and answers ad-hoc secondary-index
// and range-filter queries against it, printing per-query virtual times and
// I/O counters — a small interactive analogue of the paper's Section 6.4.
//
// Usage:
//
//	lsmquery -records 30000 -strategy validation -user-lo 100 -user-hi 200
//	lsmquery -records 30000 -filter-lo 25000 -filter-hi 30000
//	lsmquery -addr 127.0.0.1:4150 -records 30000 -user-lo 100 -user-hi 200
//
// With -addr the records load into — and the queries run against — a live
// lsmserver via lsmclient, and per-query wall times replace the virtual
// times (the server owns the store configuration, so -strategy only
// selects the default validation method).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/workload"
	"repro/lsmclient"
	"repro/lsmstore"
)

func main() {
	records := flag.Int("records", 30_000, "records to ingest before querying")
	strategy := flag.String("strategy", "eager", "eager | validation | mutable-bitmap")
	updateRatio := flag.Float64("update-ratio", 0.1, "update ratio during load")
	validation := flag.String("validation", "auto", "auto | none | direct | ts")
	indexOnly := flag.Bool("index-only", false, "index-only query (no record fetch)")
	userLo := flag.Uint("user-lo", 0, "secondary query: lowest user id")
	userHi := flag.Uint("user-hi", 0, "secondary query: highest user id (0 disables)")
	filterLo := flag.Int64("filter-lo", -1, "filter scan: lowest creation time (-1 disables)")
	filterHi := flag.Int64("filter-hi", -1, "filter scan: highest creation time")
	seed := flag.Int64("seed", 42, "workload seed")
	addr := flag.String("addr", "", "query a live lsmserver at this address instead of an embedded store")
	flag.Parse()

	opts := lsmstore.Options{
		Secondaries:   []lsmstore.SecondaryIndex{{Name: "user", Extract: workload.UserIDOf}},
		FilterExtract: workload.CreationOf,
		MemoryBudget:  512 << 10,
		CacheBytes:    4 << 20,
		PageSize:      32 << 10,
		Seed:          *seed,
	}
	method := lsmstore.NoValidation
	switch strings.ToLower(*strategy) {
	case "eager":
		opts.Strategy = lsmstore.Eager
	case "validation":
		opts.Strategy = lsmstore.Validation
		method = lsmstore.TimestampValidation
	case "mutable-bitmap":
		opts.Strategy = lsmstore.MutableBitmap
		method = lsmstore.TimestampValidation
	default:
		fmt.Fprintf(os.Stderr, "lsmquery: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	switch strings.ToLower(*validation) {
	case "auto":
	case "none":
		method = lsmstore.NoValidation
	case "direct":
		method = lsmstore.DirectValidation
	case "ts":
		method = lsmstore.TimestampValidation
	default:
		fmt.Fprintf(os.Stderr, "lsmquery: unknown validation %q\n", *validation)
		os.Exit(2)
	}

	if *addr != "" {
		if strings.ToLower(*validation) == "auto" {
			// The server owns the maintenance strategy (its default is
			// Validation); timestamp validation is correct against every
			// strategy, so it is the safe remote default.
			method = lsmstore.TimestampValidation
		}
		if err := runRemote(*addr, *records, *updateRatio, *seed, method, *indexOnly,
			uint32(*userLo), uint32(*userHi), *filterLo, *filterHi); err != nil {
			fmt.Fprintln(os.Stderr, "lsmquery:", err)
			os.Exit(1)
		}
		return
	}

	db, err := lsmstore.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmquery:", err)
		os.Exit(1)
	}
	wcfg := workload.DefaultConfig(*seed)
	wcfg.UpdateRatio = *updateRatio
	gen := workload.NewGenerator(wcfg)
	for i := 0; i < *records; i++ {
		op := gen.Next()
		if err := db.Upsert(op.Tweet.PK(), op.Tweet.Encode()); err != nil {
			fmt.Fprintln(os.Stderr, "lsmquery:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("loaded %d operations, simulated load time %s\n", *records, db.Stats().SimulatedTime)

	if *userHi > 0 {
		before := db.Env().Clock.Now()
		res, err := db.SecondaryQuery("user",
			workload.UserKey(uint32(*userLo)), workload.UserKey(uint32(*userHi)),
			lsmstore.QueryOptions{Validation: method, IndexOnly: *indexOnly})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lsmquery:", err)
			os.Exit(1)
		}
		n := len(res.Records) + len(res.Keys)
		fmt.Printf("secondary query user=[%d,%d] validation=%v index-only=%v: %d results in %s (virtual)\n",
			*userLo, *userHi, method, *indexOnly, n, db.Env().Clock.Now()-before)
	}
	if *filterLo >= 0 {
		before := db.Env().Clock.Now()
		count := 0
		if err := db.FilterScan(*filterLo, *filterHi, func(pk, rec []byte) { count++ }); err != nil {
			fmt.Fprintln(os.Stderr, "lsmquery:", err)
			os.Exit(1)
		}
		fmt.Printf("filter scan [%d,%d]: %d records in %s (virtual)\n",
			*filterLo, *filterHi, count, db.Env().Clock.Now()-before)
	}
}

// runRemote loads the workload into a live lsmserver and runs the asked
// queries over the wire, reporting wall-clock round-trip times.
func runRemote(addr string, records int, updateRatio float64, seed int64,
	method lsmstore.ValidationMethod, indexOnly bool,
	userLo, userHi uint32, filterLo, filterHi int64) error {
	client, err := lsmclient.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()
	wcfg := workload.DefaultConfig(seed)
	wcfg.UpdateRatio = updateRatio
	gen := workload.NewGenerator(wcfg)
	start := time.Now()
	b := client.NewBatch()
	for i := 0; i < records; i++ {
		op := gen.Next()
		b.Upsert(op.Tweet.PK(), op.Tweet.Encode())
		if b.Len() >= 64 {
			if _, err := b.Apply(); err != nil {
				return err
			}
		}
	}
	if b.Len() > 0 {
		if _, err := b.Apply(); err != nil {
			return err
		}
	}
	fmt.Printf("loaded %d operations into %s in %s (wall)\n", records, addr, time.Since(start).Round(time.Millisecond))

	if userHi > 0 {
		before := time.Now()
		res, err := client.SecondaryQuery("user", workload.UserKey(userLo), workload.UserKey(userHi),
			lsmstore.QueryOptions{Validation: method, IndexOnly: indexOnly})
		if err != nil {
			return err
		}
		n := len(res.Records) + len(res.Keys)
		fmt.Printf("secondary query user=[%d,%d] validation=%v index-only=%v: %d results in %s (wall)\n",
			userLo, userHi, method, indexOnly, n, time.Since(before).Round(time.Microsecond))
	}
	if filterLo >= 0 {
		before := time.Now()
		recs, err := client.FilterScan(filterLo, filterHi, 0)
		if err != nil {
			return err
		}
		fmt.Printf("filter scan [%d,%d]: %d records in %s (wall)\n",
			filterLo, filterHi, len(recs), time.Since(before).Round(time.Microsecond))
	}
	return nil
}
