// Command lsmdst runs the deterministic simulation harness (internal/dst)
// against the LSM store: one seed, or a sweep of many, each driving a
// seeded workload with fault injection, process kills, and crash-image
// reopens, checked against an in-memory model.
//
// Run one seed (bit-reproducible under -profile seq):
//
//	lsmdst -seed 42 -ops 600 -fault-rate 1
//
// Sweep a seed range, or sweep randomly for a time budget:
//
//	lsmdst -seeds 0:500 -fault-rate 1
//	lsmdst -sweep 60s -fault-rate 1
//
// On failure the output leads with the exact repro invocation, then the
// minimized fault schedule and the tail of the op trace.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/dst"
)

func main() {
	var (
		seed      = flag.Int64("seed", -1, "run exactly this seed")
		seeds     = flag.String("seeds", "", "sweep an inclusive seed range lo:hi")
		sweep     = flag.Duration("sweep", 0, "sweep random seeds for this wall-clock budget")
		ops       = flag.Int("ops", 400, "workload-operation budget per run")
		faultRate = flag.Float64("fault-rate", 1, "fault-injection rate multiplier (0 disables)")
		killAfter = flag.Int64("kill-after", 0, "kill the device at this traced op of the first session (0 = seeded)")
		profile   = flag.String("profile", "seq", "determinism profile: seq (bit-reproducible) or conc")
		bug       = flag.String("bug", "", "re-arm a historical bug: keep-commit")
		traceOut  = flag.Bool("trace", false, "print the full op trace of a single-seed run")
		minimize  = flag.Bool("minimize", true, "minimize the fault schedule of a failing run")
		dir       = flag.String("dir", "", "scratch directory (default: a temp dir, removed on success)")
	)
	flag.Parse()

	prof, err := dst.ParseProfile(*profile)
	if err != nil {
		fatal(err)
	}
	if *bug != "" && *bug != dst.BugKeepCommit {
		fatal(fmt.Errorf("unknown -bug %q (known: %s)", *bug, dst.BugKeepCommit))
	}

	scratch := *dir
	cleanup := false
	if scratch == "" {
		scratch, err = os.MkdirTemp("", "lsmdst-*")
		if err != nil {
			fatal(err)
		}
		cleanup = true
	}

	cfg := dst.Config{
		Ops:       *ops,
		FaultRate: *faultRate,
		KillAfter: *killAfter,
		Profile:   prof,
		Bug:       *bug,
	}

	runOne := func(s int64, keepTrace bool) bool {
		c := cfg
		c.Seed = s
		c.RecordTrace = true
		c.Dir = fmt.Sprintf("%s/seed%d", scratch, s)
		if err := os.MkdirAll(c.Dir, 0o755); err != nil {
			fatal(err)
		}
		rep, rerr := dst.RunSeed(c, os.Stdout, *minimize, scratch)
		if rerr != nil {
			fatal(rerr)
		}
		if keepTrace && *traceOut {
			for _, ev := range rep.Trace {
				fmt.Println(ev)
			}
		}
		if !rep.Failed {
			_ = os.RemoveAll(c.Dir)
		}
		return !rep.Failed
	}

	okAll := true
	switch {
	case *seed >= 0:
		okAll = runOne(*seed, true)
	case *seeds != "":
		var lo, hi int64
		if _, err := fmt.Sscanf(strings.TrimSpace(*seeds), "%d:%d", &lo, &hi); err != nil || hi < lo {
			fatal(fmt.Errorf("bad -seeds %q, want lo:hi", *seeds))
		}
		for s := lo; s <= hi; s++ {
			if !runOne(s, false) {
				okAll = false
				break
			}
		}
	case *sweep > 0:
		// The only wall-clock use in the DST stack: bounding how long the
		// random sweep explores. Each individual run stays deterministic
		// in its seed.
		deadline := time.Now().Add(*sweep)
		src := rand.New(rand.NewSource(time.Now().UnixNano()))
		n := 0
		for time.Now().Before(deadline) {
			n++
			if !runOne(src.Int63n(1<<40), false) {
				okAll = false
				break
			}
		}
		fmt.Printf("sweep: %d seeds explored\n", n)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if cleanup && okAll {
		_ = os.RemoveAll(scratch)
	}
	if !okAll {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsmdst:", err)
	os.Exit(1)
}
