// Command lsmingest drives the synthetic tweet workload (Section 6.1) into
// a store with a chosen maintenance strategy and reports ingestion
// statistics: simulated throughput, component counts, I/O counters, and
// write amplification.
//
// Usage:
//
//	lsmingest -strategy validation -ops 50000 -update-ratio 0.5 -zipf
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/workload"
	"repro/lsmstore"
)

func main() {
	strategy := flag.String("strategy", "eager", "eager | validation | mutable-bitmap | deleted-key")
	ops := flag.Int("ops", 50_000, "number of upsert operations")
	updateRatio := flag.Float64("update-ratio", 0.1, "fraction of upserts hitting past keys")
	zipf := flag.Bool("zipf", false, "Zipf(0.99) update distribution instead of uniform")
	secondaries := flag.Int("secondaries", 1, "number of secondary indexes")
	device := flag.String("device", "hdd", "hdd | ssd")
	mergeRepair := flag.Bool("merge-repair", false, "repair secondary indexes during merges (validation)")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	opts := lsmstore.Options{
		FilterExtract: workload.CreationOf,
		MemoryBudget:  512 << 10,
		CacheBytes:    4 << 20,
		PageSize:      32 << 10,
		MergeRepair:   *mergeRepair,
		Seed:          *seed,
	}
	switch strings.ToLower(*strategy) {
	case "eager":
		opts.Strategy = lsmstore.Eager
	case "validation":
		opts.Strategy = lsmstore.Validation
	case "mutable-bitmap":
		opts.Strategy = lsmstore.MutableBitmap
	case "deleted-key":
		opts.Strategy = lsmstore.DeletedKey
	default:
		fmt.Fprintf(os.Stderr, "lsmingest: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	if strings.ToLower(*device) == "ssd" {
		opts.Device = lsmstore.SSD
	}
	for i := 0; i < *secondaries; i++ {
		opts.Secondaries = append(opts.Secondaries, lsmstore.SecondaryIndex{
			Name:    fmt.Sprintf("user%d", i),
			Extract: workload.UserIDOf,
		})
	}
	db, err := lsmstore.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmingest:", err)
		os.Exit(1)
	}

	wcfg := workload.DefaultConfig(*seed)
	wcfg.UpdateRatio = *updateRatio
	wcfg.ZipfUpdates = *zipf
	gen := workload.NewGenerator(wcfg)
	for i := 0; i < *ops; i++ {
		op := gen.Next()
		if err := db.Upsert(op.Tweet.PK(), op.Tweet.Encode()); err != nil {
			fmt.Fprintln(os.Stderr, "lsmingest:", err)
			os.Exit(1)
		}
	}
	st := db.Stats()
	fmt.Printf("strategy            %s\n", *strategy)
	fmt.Printf("operations          %d (ignored %d)\n", st.Ingested, st.Ignored)
	fmt.Printf("simulated time      %s\n", st.SimulatedTime)
	fmt.Printf("primary components  %d\n", st.PrimaryComponents)
	fmt.Printf("disk bytes written  %d\n", st.DiskBytesWritten)
	fmt.Printf("page reads          random=%d sequential=%d\n", st.Counters.RandomReads, st.Counters.SequentialReads)
	fmt.Printf("cache               hits=%d misses=%d\n", st.Counters.CacheHits, st.Counters.CacheMisses)
	fmt.Printf("bloom tests         %d (negative %d)\n", st.Counters.BloomTests, st.Counters.BloomNegatives)
}
