// Command lsmingest drives the synthetic tweet workload (Section 6.1) into
// a store with a chosen maintenance strategy and reports ingestion
// statistics: simulated throughput, component counts, I/O counters, and
// write amplification.
//
// Usage:
//
//	lsmingest -strategy validation -ops 50000 -update-ratio 0.5 -zipf
//	lsmingest -strategy validation -backend=disk -dir /data/ingest
//	lsmingest -addr 127.0.0.1:4150 -ops 50000 -net-batch 64
//
// With -backend=disk the store runs on real files under -dir (a temp
// directory, removed on exit, when -dir is empty): batched appends, fsync
// on WAL commit and component install, and a manifest that lets the same
// directory be reopened later. On that backend the simulated-time row
// reflects CPU charges only; wall time is the honest hardware figure.
//
// With -addr the workload is driven over the network into a live
// lsmserver via lsmclient instead of an embedded store: upserts travel in
// -net-batch-sized ApplyBatch round trips, and the statistics come from
// the server. The local store flags (-strategy, -backend, -dir, ...) are
// ignored; the server picked those at startup.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/cmd/internal/backendflag"
	"repro/internal/workload"
	"repro/lsmclient"
	"repro/lsmstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lsmingest:", err)
		os.Exit(1)
	}
}

func run() error {
	strategy := flag.String("strategy", "eager", "eager | validation | mutable-bitmap | deleted-key")
	ops := flag.Int("ops", 50_000, "number of upsert operations")
	updateRatio := flag.Float64("update-ratio", 0.1, "fraction of upserts hitting past keys")
	zipf := flag.Bool("zipf", false, "Zipf(0.99) update distribution instead of uniform")
	secondaries := flag.Int("secondaries", 1, "number of secondary indexes")
	device := flag.String("device", "hdd", "hdd | ssd")
	mergeRepair := flag.Bool("merge-repair", false, "repair secondary indexes during merges (validation)")
	seed := flag.Int64("seed", 42, "workload seed")
	backend := flag.String("backend", "sim", "storage backend: sim | disk")
	dir := flag.String("dir", "", "data directory for -backend=disk (default: a temp dir, removed on exit)")
	addr := flag.String("addr", "", "drive a live lsmserver at this address instead of an embedded store")
	netBatch := flag.Int("net-batch", 64, "upserts per ApplyBatch round trip with -addr")
	netConns := flag.Int("net-conns", 2, "client pool connections with -addr")
	flag.Parse()

	if *addr != "" {
		return runRemote(*addr, *netBatch, *netConns, *ops, *updateRatio, *zipf, *seed)
	}

	opts := lsmstore.Options{
		FilterExtract: workload.CreationOf,
		MemoryBudget:  512 << 10,
		CacheBytes:    4 << 20,
		PageSize:      32 << 10,
		MergeRepair:   *mergeRepair,
		Seed:          *seed,
	}
	switch strings.ToLower(*strategy) {
	case "eager":
		opts.Strategy = lsmstore.Eager
	case "validation":
		opts.Strategy = lsmstore.Validation
	case "mutable-bitmap":
		opts.Strategy = lsmstore.MutableBitmap
	case "deleted-key":
		opts.Strategy = lsmstore.DeletedKey
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	if strings.ToLower(*device) == "ssd" {
		opts.Device = lsmstore.SSD
	}
	be, resolvedDir, cleanup, err := backendflag.Resolve(*backend, *dir)
	if err != nil {
		return err
	}
	defer cleanup()
	tempDir := be == lsmstore.FileBackend && *dir == ""
	opts.Backend = be
	opts.Dir = resolvedDir
	for i := 0; i < *secondaries; i++ {
		opts.Secondaries = append(opts.Secondaries, lsmstore.SecondaryIndex{
			Name:    fmt.Sprintf("user%d", i),
			Extract: workload.UserIDOf,
		})
	}
	db, err := lsmstore.Open(opts)
	if err != nil {
		return err
	}
	defer db.Close()

	wcfg := workload.DefaultConfig(*seed)
	wcfg.UpdateRatio = *updateRatio
	wcfg.ZipfUpdates = *zipf
	gen := workload.NewGenerator(wcfg)
	start := time.Now()
	for i := 0; i < *ops; i++ {
		op := gen.Next()
		if err := db.Upsert(op.Tweet.PK(), op.Tweet.Encode()); err != nil {
			return err
		}
	}
	wall := time.Since(start)
	st := db.Stats()
	fmt.Printf("strategy            %s\n", *strategy)
	fmt.Printf("backend             %s\n", opts.Backend)
	if opts.Backend == lsmstore.FileBackend {
		note := ""
		if tempDir {
			note = " (temporary, removed on exit)"
		}
		fmt.Printf("data directory      %s%s\n", opts.Dir, note)
	}
	fmt.Printf("operations          %d (ignored %d)\n", st.Ingested, st.Ignored)
	fmt.Printf("simulated time      %s\n", st.SimulatedTime)
	fmt.Printf("wall time           %s (%.0f ops/s real)\n", wall.Round(time.Millisecond), float64(*ops)/wall.Seconds())
	fmt.Printf("primary components  %d\n", st.PrimaryComponents)
	fmt.Printf("disk bytes written  %d\n", st.DiskBytesWritten)
	fmt.Printf("page reads          random=%d sequential=%d\n", st.Counters.RandomReads, st.Counters.SequentialReads)
	fmt.Printf("cache               hits=%d misses=%d\n", st.Counters.CacheHits, st.Counters.CacheMisses)
	fmt.Printf("bloom tests         %d (negative %d)\n", st.Counters.BloomTests, st.Counters.BloomNegatives)
	// The deferred Close is only the error-path cleanup; on the disk
	// backend a failed final sync must fail the run, so close explicitly
	// (Close is idempotent).
	return db.Close()
}

// runRemote drives the same workload into a live lsmserver over the wire,
// batching upserts into ApplyBatch round trips.
func runRemote(addr string, batch, conns, ops int, updateRatio float64, zipf bool, seed int64) error {
	if batch < 1 || conns < 1 {
		return fmt.Errorf("-net-batch and -net-conns must be >= 1")
	}
	client, err := lsmclient.DialOptions(lsmclient.Options{Addr: addr, Conns: conns})
	if err != nil {
		return err
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		return fmt.Errorf("ping %s: %w", addr, err)
	}
	wcfg := workload.DefaultConfig(seed)
	wcfg.UpdateRatio = updateRatio
	wcfg.ZipfUpdates = zipf
	gen := workload.NewGenerator(wcfg)
	start := time.Now()
	b := client.NewBatch()
	for i := 0; i < ops; i++ {
		op := gen.Next()
		b.Upsert(op.Tweet.PK(), op.Tweet.Encode())
		if b.Len() >= batch {
			if _, err := b.Apply(); err != nil {
				return err
			}
		}
	}
	if b.Len() > 0 {
		if _, err := b.Apply(); err != nil {
			return err
		}
	}
	wall := time.Since(start)
	st, err := client.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("server              %s\n", addr)
	fmt.Printf("operations          %d sent (server total: %d ingested, %d ignored)\n", ops, st.Ingested, st.Ignored)
	fmt.Printf("wall time           %s (%.0f ops/s over the wire, batch %d)\n",
		wall.Round(time.Millisecond), float64(ops)/wall.Seconds(), batch)
	fmt.Printf("primary components  %d\n", st.PrimaryComponents)
	fmt.Printf("disk bytes written  %d\n", st.DiskBytesWritten)
	fmt.Printf("server shards       %d\n", st.Shards)
	return nil
}
