// Command lsmload is a closed-loop load generator for a live lsmserver:
// every worker issues one request, waits for its response, and issues the
// next, so measured latency is honest round-trip latency and throughput
// reflects the server's real service rate at the offered concurrency.
// Workers share a pool of pipelined connections (workers > conns exercises
// pipelining; concurrent single upserts exercise the server's write
// coalescer). At the end it reports throughput and latency percentiles
// per operation class, plus the server's own statistics.
//
// Usage:
//
//	lsmload -addr 127.0.0.1:4150 -ops 100000 -conns 4 -workers 16
//	lsmload -addr 127.0.0.1:4150 -ops 50000 -batch 32 -query-ratio 0.05
//
// With -group-commit=on|off the tool is self-contained: it opens a
// disk-backend store itself (in -dir, or a temp directory), serves it
// in-process on a loopback port with the chosen commit discipline, and
// drives the load against it — so the group-commit win reproduces in one
// command:
//
//	lsmload -group-commit=off -ops 20000 -conns 8 -workers 32
//	lsmload -group-commit=on  -ops 20000 -conns 8 -workers 32
//
// Alongside latency percentiles the report includes the server's WAL
// fsync rate and the mean commit-group size over the run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"
	"repro/lsmclient"
	"repro/lsmstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lsmload:", err)
		os.Exit(1)
	}
}

type opClass int

const (
	classWrite opClass = iota
	classGet
	classQuery
	classScan
	numClasses
)

var classNames = [numClasses]string{"write", "get", "query", "scan"}

// sample is one worker's measurements for one op class.
type sample struct {
	lats []time.Duration
	errs int
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:4150", "lsmserver address")
	mix := flag.String("mix", "", "op-mix preset: read-heavy (90% point gets over a Zipf-hot keyspace), write-heavy (single upserts), or batched (batch-32 upserts); explicitly set mix flags override the preset")
	ops := flag.Int("ops", 100_000, "total operations to issue")
	conns := flag.Int("conns", 4, "TCP connections in the client pool")
	workers := flag.Int("workers", 16, "closed-loop workers sharing the pool")
	batch := flag.Int("batch", 1, "upserts per write op (1 = single upserts, exercising the server-side coalescer)")
	preload := flag.Int("preload", 0, "records to upsert (and flush) before the timed run; the workers' key distributions carry over, so measured gets hit the preloaded keyspace")
	getRatio := flag.Float64("get-ratio", 0.2, "fraction of ops that are point gets")
	queryRatio := flag.Float64("query-ratio", 0.02, "fraction of ops that are secondary-index queries")
	scanRatio := flag.Float64("scan-ratio", 0.01, "fraction of ops that are filter scans")
	updateRatio := flag.Float64("update-ratio", 0.1, "fraction of upserts hitting past keys")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 42, "workload seed")
	groupCommit := flag.String("group-commit", "", "self-serve mode: open a disk-backend store in-process with group commit on|off and load it over loopback")
	dir := flag.String("dir", "", "data directory for -group-commit self-serve mode (default: a temp dir, removed on exit)")
	shards := flag.Int("shards", 1, "hash partitions for the self-served store")
	readCache := flag.Int64("read-cache", 0, "self-serve mode: hot-entry read cache size in bytes (0 = off)")
	memBudget := flag.Int("mem-budget", 0, "self-serve mode: memory-component budget in bytes (0 = engine default); small budgets push data into disk components so point reads pay real engine cost")
	benchJSON := flag.String("bench-json", "", "append a machine-readable snapshot of this run to <path> (file created if missing)")
	benchLabel := flag.String("bench-label", "", "label for the -bench-json snapshot (default: derived from backend and op mix)")
	obsOn := flag.Bool("obs", true, "self-serve mode: server-side observability (latency histograms, stage tracing); -obs=false measures the untraced server")
	httpURL := flag.String("http", "", "base URL of the server's HTTP sidecar (e.g. http://127.0.0.1:9650) for server-side percentiles; self-serve mode wires this up itself")
	overload := flag.Bool("overload", false, "overload experiment: calibrate closed-loop capacity, then offer 4x that rate open-loop with no client retries and report goodput, shed counts and shed fail-fast latency")
	overloadDur := flag.Duration("overload-duration", 5*time.Second, "length of the overload phase")
	calibrateDur := flag.Duration("calibrate-duration", 3*time.Second, "length of the closed-loop capacity calibration phase")
	overloadFactor := flag.Float64("overload-factor", 4, "offered load as a multiple of calibrated capacity")
	admBudget := flag.Int64("admission-budget", 0, "self-serve mode: weighted in-flight admission budget (0 = admission off; the -overload A/B toggles this)")
	admQueue := flag.Int("admission-queue", 0, "self-serve mode: admission wait-queue depth (0 = 2x budget; negative disables)")
	queueDeadline := flag.Duration("queue-deadline", 0, "self-serve mode: max admission-queue wait before shedding (0 = 2ms default)")
	latencyTarget := flag.Duration("latency-target", 0, "self-serve mode: foreground p99 target for the maintenance governor (0 = off)")
	flag.Parse()
	if *workers < 1 || *conns < 1 || *batch < 1 {
		return fmt.Errorf("-workers, -conns and -batch must be >= 1")
	}
	zipfGets := false
	if *mix != "" {
		// A preset only fills in mix fields the caller did not set
		// explicitly, so e.g. "-mix read-heavy -get-ratio 0.95" works.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		setF := func(name string, dst *float64, v float64) {
			if !set[name] {
				*dst = v
			}
		}
		setI := func(name string, dst *int, v int) {
			if !set[name] {
				*dst = v
			}
		}
		switch *mix {
		case "read-heavy":
			// 90/10 reads over a Zipf-hot keyspace: the mix the read
			// cache and zero-copy GET path are built for.
			setF("get-ratio", getRatio, 0.90)
			setF("query-ratio", queryRatio, 0)
			setF("scan-ratio", scanRatio, 0)
			setF("update-ratio", updateRatio, 0.8)
			setI("batch", batch, 1)
			zipfGets = true
		case "write-heavy":
			setF("get-ratio", getRatio, 0.05)
			setF("query-ratio", queryRatio, 0.02)
			setF("scan-ratio", scanRatio, 0.01)
			setF("update-ratio", updateRatio, 0.1)
			setI("batch", batch, 1)
		case "batched":
			setF("get-ratio", getRatio, 0.05)
			setF("query-ratio", queryRatio, 0.02)
			setF("scan-ratio", scanRatio, 0.01)
			setF("update-ratio", updateRatio, 0.1)
			setI("batch", batch, 32)
		default:
			return fmt.Errorf("unknown -mix %q (want read-heavy, write-heavy or batched)", *mix)
		}
	}
	if (*readCache != 0 || *memBudget != 0) && *groupCommit == "" && !*overload {
		return fmt.Errorf("-read-cache and -mem-budget configure the self-served store; they require -group-commit")
	}
	if *overload && *groupCommit == "" {
		// The overload experiment needs control over the server's admission
		// configuration, so it always self-serves.
		*groupCommit = "on"
	}
	if (*admBudget != 0 || *latencyTarget != 0) && *groupCommit == "" {
		return fmt.Errorf("-admission-budget and -latency-target configure the self-served store; they require -group-commit or -overload")
	}

	target := *addr
	sidecar := strings.TrimRight(*httpURL, "/")
	if *groupCommit != "" {
		addrSet := false
		flag.Visit(func(f *flag.Flag) { addrSet = addrSet || f.Name == "addr" })
		if addrSet {
			return fmt.Errorf("-group-commit self-serves its own store; it cannot be combined with -addr")
		}
		if sidecar != "" {
			return fmt.Errorf("-group-commit self-serves its own sidecar; it cannot be combined with -http")
		}
		selfAddr, selfHTTP, stop, err := selfServe(*groupCommit, *dir, *shards, *seed, *readCache, *memBudget, *obsOn, func(cfg *server.Config) {
			cfg.AdmissionBudget = *admBudget
			cfg.AdmissionQueue = *admQueue
			cfg.AdmissionQueueDeadline = *queueDeadline
			cfg.LatencyTarget = *latencyTarget
		})
		if err != nil {
			return err
		}
		defer stop()
		target, sidecar = selfAddr, selfHTTP
	}

	setupOpts := lsmclient.Options{
		Addr:           target,
		Conns:          *conns,
		RequestTimeout: *timeout,
	}
	if *overload {
		// The setup/calibration client must outlast transient sheds when the
		// admission budget is smaller than the preload's batch concurrency;
		// only the overload phase itself counts sheds (with retries off).
		setupOpts.RetryLimit = 64
	}
	client, err := lsmclient.DialOptions(setupOpts)
	if err != nil {
		return err
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		return fmt.Errorf("ping %s: %w", target, err)
	}

	// One generator per worker, shared between the preload and the timed
	// run: the preload advances each worker's key distribution, so the
	// measured gets land on keys the preload actually wrote.
	gens := make([]*workload.Generator, *workers)
	for w := range gens {
		wcfg := workload.DefaultConfig(*seed + int64(w)*7919)
		wcfg.UpdateRatio = *updateRatio
		wcfg.ZipfUpdates = zipfGets
		gens[w] = workload.NewGenerator(wcfg)
	}
	if *preload > 0 {
		if err := preloadStore(client, gens, *preload); err != nil {
			return err
		}
	}
	if *overload {
		return runOverload(overloadParams{
			client:      client,
			target:      target,
			sidecar:     sidecar,
			gens:        gens,
			conns:       *conns,
			workers:     *workers,
			factor:      *overloadFactor,
			calibrate:   *calibrateDur,
			duration:    *overloadDur,
			timeout:     *timeout,
			seed:        *seed,
			batch:       *batch,
			getRatio:    *getRatio,
			queryRatio:  *queryRatio,
			scanRatio:   *scanRatio,
			updateRatio: *updateRatio,
			zipf:        zipfGets,
			admBudget:   *admBudget,
			benchJSON:   *benchJSON,
			benchLabel:  *benchLabel,
		})
	}
	before, err := client.Stats()
	if err != nil {
		return fmt.Errorf("server stats: %w", err)
	}
	var sideBefore server.StatsPayload
	if sidecar != "" {
		if sideBefore, err = fetchStats(sidecar); err != nil {
			return fmt.Errorf("sidecar stats: %w", err)
		}
	}

	var (
		remaining atomic.Int64
		wg        sync.WaitGroup
		samples   = make([][numClasses]sample, *workers)
	)
	remaining.Store(int64(*ops))
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := gens[w]
			rng := rand.New(rand.NewSource(*seed + int64(w)*104729))
			for remaining.Add(-1) >= 0 {
				class := pickClass(rng, *getRatio, *queryRatio, *scanRatio)
				t0 := time.Now()
				err := issue(client, gen, rng, class, *batch)
				lat := time.Since(t0)
				s := &samples[w][class]
				s.lats = append(s.lats, lat)
				if err != nil {
					s.errs++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("target              %s\n", target)
	fmt.Printf("operations          %d (batch %d, %d conns, %d workers)\n", *ops, *batch, *conns, *workers)
	fmt.Printf("wall time           %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("throughput          %.0f ops/s", float64(*ops)/elapsed.Seconds())
	if *batch > 1 {
		fmt.Printf(" (writes count batches; records/s is higher)")
	}
	fmt.Println()
	classes := make(map[string]benchClass)
	for class := opClass(0); class < numClasses; class++ {
		var all []time.Duration
		errs := 0
		for w := range samples {
			all = append(all, samples[w][class].lats...)
			errs += samples[w][class].errs
		}
		if len(all) == 0 {
			continue
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		fmt.Printf("%-7s latency     n=%-8d p50=%-10s p90=%-10s p99=%-10s max=%s",
			classNames[class], len(all),
			pct(all, 50), pct(all, 90), pct(all, 99), all[len(all)-1].Round(time.Microsecond))
		if errs > 0 {
			fmt.Printf("  errors=%d", errs)
		}
		fmt.Println()
		classes[classNames[class]] = benchClass{
			N:         len(all),
			Errors:    errs,
			P50Micros: pct(all, 50).Microseconds(),
			P90Micros: pct(all, 90).Microseconds(),
			P99Micros: pct(all, 99).Microseconds(),
			MaxMicros: all[len(all)-1].Microseconds(),
		}
	}
	st, err := client.Stats()
	if err != nil {
		return fmt.Errorf("server stats: %w", err)
	}
	fmt.Printf("server              ingested=%d ignored=%d components=%d shards=%d disk-bytes=%d\n",
		st.Ingested, st.Ignored, st.PrimaryComponents, st.Shards, st.DiskBytesWritten)
	d := st.Counters.Sub(before.Counters)
	fmt.Printf("wal fsyncs          %d (%.0f/s)", d.WALFsyncs, float64(d.WALFsyncs)/elapsed.Seconds())
	if d.GroupCommitBatches > 0 {
		fmt.Printf("  group-commit batches=%d mean-group-size=%.1f",
			d.GroupCommitBatches, float64(d.GroupCommitWaiters)/float64(d.GroupCommitBatches))
	}
	fmt.Println()
	if lookups := d.ReadCacheHits + d.ReadCacheNegHits + d.ReadCacheMisses; lookups > 0 {
		fmt.Printf("read cache          hits=%d neg-hits=%d misses=%d hit-rate=%.1f%% invalidations=%d\n",
			d.ReadCacheHits, d.ReadCacheNegHits, d.ReadCacheMisses,
			100*float64(d.ReadCacheHits+d.ReadCacheNegHits)/float64(lookups),
			d.ReadCacheInvalidations)
	}
	var serverClasses map[string]obs.Summary
	if sidecar != "" {
		sideAfter, err := fetchStats(sidecar)
		if err != nil {
			return fmt.Errorf("sidecar stats: %w", err)
		}
		// Cross-check: the sidecar's /stats and the wire-protocol STATS
		// frame must describe the same engine.
		if sideAfter.Engine.Ingested != st.Ingested {
			fmt.Printf("sidecar             MISMATCH: /stats ingested=%d, wire stats ingested=%d\n",
				sideAfter.Engine.Ingested, st.Ingested)
		} else {
			fmt.Printf("sidecar             /stats agrees with wire stats (ingested=%d)\n", st.Ingested)
		}
		serverClasses = serverIntervalSummaries(sideBefore, sideAfter)
		printServerClasses(serverClasses)
	}

	if *benchJSON != "" {
		backend := "remote" // pointed at an external server; its backend is unknown here
		gc := ""
		if *groupCommit != "" {
			backend = "disk"
			gc = strings.ToLower(*groupCommit)
		}
		label := *benchLabel
		if label == "" {
			label = fmt.Sprintf("%s get=%.2f query=%.2f scan=%.2f batch=%d", backend, *getRatio, *queryRatio, *scanRatio, *batch)
			if *mix != "" {
				label += " mix=" + *mix
			}
			if gc != "" {
				label += " gc=" + gc
			}
			if *groupCommit != "" {
				if *readCache > 0 {
					label += " rc=on"
				} else {
					label += " rc=off"
				}
				if !*obsOn {
					label += " obs=off"
				}
			}
		}
		run := benchRun{
			Label:       label,
			Timestamp:   time.Now().UTC().Format(time.RFC3339),
			Backend:     backend,
			GroupCommit: gc,
			Mix:         *mix,
			Preload:     *preload,
			Ops:         *ops,
			Batch:       *batch,
			Conns:       *conns,
			Workers:     *workers,
			Shards:      int(st.Shards),
			OpMix: benchMix{
				GetRatio:    *getRatio,
				QueryRatio:  *queryRatio,
				ScanRatio:   *scanRatio,
				UpdateRatio: *updateRatio,
			},
			WallSeconds:        elapsed.Seconds(),
			OpsPerSec:          float64(*ops) / elapsed.Seconds(),
			Classes:            classes,
			WALFsyncs:          d.WALFsyncs,
			FsyncsPerSec:       float64(d.WALFsyncs) / elapsed.Seconds(),
			GroupCommitBatches: d.GroupCommitBatches,
			Ingested:           st.Ingested,
			DiskBytesWritten:   st.DiskBytesWritten,
			ReadCacheBytes:     *readCache,
			ReadCacheHits:      d.ReadCacheHits,
			ReadCacheNegHits:   d.ReadCacheNegHits,
			ReadCacheMisses:    d.ReadCacheMisses,
			Observability:      *obsOn || *groupCommit == "",
			ServerClasses:      serverClasses,
		}
		if d.GroupCommitBatches > 0 {
			run.MeanGroupSize = float64(d.GroupCommitWaiters) / float64(d.GroupCommitBatches)
		}
		if err := appendBenchJSON(*benchJSON, run); err != nil {
			return err
		}
		fmt.Printf("bench-json          appended %q to %s\n", run.Label, *benchJSON)
	}
	return nil
}

// overloadParams carries the knobs of one -overload experiment.
type overloadParams struct {
	client      *lsmclient.Client
	target      string
	sidecar     string
	gens        []*workload.Generator
	conns       int
	workers     int
	factor      float64
	calibrate   time.Duration
	duration    time.Duration
	timeout     time.Duration
	seed        int64
	batch       int
	getRatio    float64
	queryRatio  float64
	scanRatio   float64
	updateRatio float64
	zipf        bool
	admBudget   int64
	benchJSON   string
	benchLabel  string
}

// runOverload is the two-phase overload experiment. Phase 1 measures the
// closed-loop capacity ceiling with the configured workers. Phase 2 offers
// factor-times that rate from paced workers whose clients never retry, so
// every server-side shed surfaces as a counted error, and reports goodput
// against the ceiling, the shed tally, and latency on both sides of the
// admission decision.
func runOverload(p overloadParams) error {
	// Phase 1: closed-loop calibration.
	var calOK, calErr atomic.Int64
	calStop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := p.gens[w]
			rng := rand.New(rand.NewSource(p.seed + int64(w)*104729))
			for {
				select {
				case <-calStop:
					return
				default:
				}
				class := pickClass(rng, p.getRatio, p.queryRatio, p.scanRatio)
				if err := issue(p.client, gen, rng, class, p.batch); err != nil {
					calErr.Add(1)
				} else {
					calOK.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(p.calibrate)
	close(calStop)
	wg.Wait()
	capacity := float64(calOK.Load()) / p.calibrate.Seconds()
	fmt.Printf("capacity            %.0f ops/s closed-loop ceiling (%d workers, %s, %d errors)\n",
		capacity, p.workers, p.calibrate, calErr.Load())
	if capacity <= 0 {
		return fmt.Errorf("overload: calibration measured zero capacity")
	}

	// Phase 2: paced open-loop overload with retries disabled.
	oc, err := lsmclient.DialOptions(lsmclient.Options{
		Addr:           p.target,
		Conns:          p.conns,
		RequestTimeout: p.timeout,
		RetryLimit:     -1, // every shed is an observation, not a retry
	})
	if err != nil {
		return err
	}
	defer oc.Close()

	var sideBefore server.StatsPayload
	if p.sidecar != "" {
		if sideBefore, err = fetchStats(p.sidecar); err != nil {
			return fmt.Errorf("sidecar stats: %w", err)
		}
	}

	// The open loop fires each op in its own goroutine, drawing per-op
	// state (generator, rng, tallies) from a bounded slot pool. A server
	// that sheds excess quickly keeps slots cycling and the offered rate
	// holds; a server that queues everything pins the slots in flight, the
	// pool drains, and the deficit is counted — client saturation is
	// itself a measurement of the unprotected server.
	offered := p.factor * capacity
	type slotState struct {
		gen              *workload.Generator
		rng              *rand.Rand
		ok, shed, other  int64
		okLats, shedLats []time.Duration
	}
	maxOut := 32 * p.workers
	if maxOut < 256 {
		maxOut = 256
	}
	slots := make(chan *slotState, maxOut)
	for i := 0; i < maxOut; i++ {
		wcfg := workload.DefaultConfig(p.seed + int64(p.workers+i)*7919)
		wcfg.UpdateRatio = p.updateRatio
		wcfg.ZipfUpdates = p.zipf
		slots <- &slotState{
			gen: workload.NewGenerator(wcfg),
			rng: rand.New(rand.NewSource(p.seed + int64(p.workers+i)*104729)),
		}
	}
	var unsent int64
	issued := 0
	start := time.Now()
	deadline := start.Add(p.duration)
	for now := start; now.Before(deadline); now = time.Now() {
		want := int(offered * now.Sub(start).Seconds())
	fill:
		for issued < want {
			select {
			case s := <-slots:
				issued++
				go func(s *slotState) {
					class := pickClass(s.rng, p.getRatio, p.queryRatio, p.scanRatio)
					t0 := time.Now()
					err := issue(oc, s.gen, s.rng, class, p.batch)
					lat := time.Since(t0)
					switch {
					case err == nil:
						s.ok++
						s.okLats = append(s.okLats, lat)
					case errors.Is(err, lsmclient.ErrOverloaded), errors.Is(err, lsmclient.ErrRetryLater):
						s.shed++
						s.shedLats = append(s.shedLats, lat)
					default:
						s.other++
					}
					slots <- s
				}(s)
			default:
				// Every slot is in flight: the pool, sized well past the
				// admission budget, is pinned behind the server. Count the
				// deficit instead of blocking the pacer.
				unsent += int64(want - issued)
				issued = want
				break fill
			}
		}
		time.Sleep(time.Millisecond)
	}
	// Reclaiming every slot waits out the in-flight tail.
	var ok, shed, other int64
	var okLats, shedLats []time.Duration
	for i := 0; i < maxOut; i++ {
		s := <-slots
		ok += s.ok
		shed += s.shed
		other += s.other
		okLats = append(okLats, s.okLats...)
		shedLats = append(shedLats, s.shedLats...)
	}
	elapsed := time.Since(start)
	sort.Slice(okLats, func(i, j int) bool { return okLats[i] < okLats[j] })
	sort.Slice(shedLats, func(i, j int) bool { return shedLats[i] < shedLats[j] })
	goodput := float64(ok) / elapsed.Seconds()

	fmt.Printf("offered             %.0f ops/s (%.1fx capacity, %d-slot pool)\n", offered, p.factor, maxOut)
	fmt.Printf("goodput             %.0f ops/s (%.0f%% of ceiling)  shed=%d other-errors=%d\n",
		goodput, 100*goodput/capacity, shed, other)
	if unsent > 0 {
		fmt.Printf("client saturated    %d ops unsent: every pool slot was pinned behind the server\n", unsent)
	}
	if len(okLats) > 0 {
		fmt.Printf("admitted latency    n=%-8d p50=%-10s p99=%-10s max=%s\n",
			len(okLats), pct(okLats, 50), pct(okLats, 99), okLats[len(okLats)-1].Round(time.Microsecond))
	}
	if len(shedLats) > 0 {
		fmt.Printf("shed round trip     n=%-8d p50=%-10s p99=%-10s max=%s\n",
			len(shedLats), pct(shedLats, 50), pct(shedLats, 99), shedLats[len(shedLats)-1].Round(time.Microsecond))
	}

	var serverShedP99 time.Duration
	var shedByCause map[string]int64
	if p.sidecar != "" {
		sideAfter, err := fetchStats(p.sidecar)
		if err != nil {
			return fmt.Errorf("sidecar stats: %w", err)
		}
		if sideAfter.ShedLatencyHist != nil {
			delta := *sideAfter.ShedLatencyHist
			if sideBefore.ShedLatencyHist != nil {
				delta = delta.Sub(*sideBefore.ShedLatencyHist)
			}
			if delta.Count > 0 {
				serverShedP99 = time.Duration(delta.Quantile(0.99))
				fmt.Printf("server shed p99     %s fail-fast (n=%d)\n",
					serverShedP99.Round(time.Microsecond), delta.Count)
			}
		}
		if a := sideAfter.Admission; a != nil {
			shedByCause = map[string]int64{
				"queue_full":   a.ShedQueueFull,
				"deadline":     a.ShedDeadline,
				"fair_share":   a.ShedFairShare,
				"rate_limited": a.ShedRateLimited,
			}
			if b := sideBefore.Admission; b != nil {
				shedByCause["queue_full"] -= b.ShedQueueFull
				shedByCause["deadline"] -= b.ShedDeadline
				shedByCause["fair_share"] -= b.ShedFairShare
				shedByCause["rate_limited"] -= b.ShedRateLimited
			}
			fmt.Printf("server sheds        queue-full=%d deadline=%d fair-share=%d rate-limited=%d\n",
				shedByCause["queue_full"], shedByCause["deadline"], shedByCause["fair_share"], shedByCause["rate_limited"])
		}
	}

	if p.benchJSON != "" {
		label := p.benchLabel
		admState := "off"
		if p.admBudget > 0 {
			admState = fmt.Sprintf("on budget=%d", p.admBudget)
		}
		if label == "" {
			label = fmt.Sprintf("overload %.0fx admission=%s", p.factor, admState)
		}
		run := benchRun{
			Label:     label,
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			Backend:   "disk",
			Ops:       int(ok + shed + other),
			Batch:     p.batch,
			Conns:     p.conns,
			Workers:   maxOut,
			OpMix: benchMix{
				GetRatio:    p.getRatio,
				QueryRatio:  p.queryRatio,
				ScanRatio:   p.scanRatio,
				UpdateRatio: p.updateRatio,
			},
			WallSeconds: elapsed.Seconds(),
			OpsPerSec:   goodput,
			Overload: &benchOverload{
				AdmissionBudget:     p.admBudget,
				CapacityOpsPerSec:   capacity,
				OfferedOpsPerSec:    offered,
				GoodputOpsPerSec:    goodput,
				GoodputRatio:        goodput / capacity,
				Admitted:            ok,
				Shed:                shed,
				OtherErrors:         other,
				Unsent:              unsent,
				AdmittedP50Micros:   pct(okLats, 50).Microseconds(),
				AdmittedP99Micros:   pct(okLats, 99).Microseconds(),
				ShedP99Micros:       pct(shedLats, 99).Microseconds(),
				ServerShedP99Micros: serverShedP99.Microseconds(),
				ShedByCause:         shedByCause,
			},
		}
		if err := appendBenchJSON(p.benchJSON, run); err != nil {
			return err
		}
		fmt.Printf("bench-json          appended %q to %s\n", run.Label, p.benchJSON)
	}
	return nil
}

// benchOverload is the -overload experiment's machine-readable summary:
// the A/B comparison (admission on vs off) in BENCH_10.json diffs these
// fields.
type benchOverload struct {
	AdmissionBudget   int64   `json:"admission_budget"`
	CapacityOpsPerSec float64 `json:"capacity_ops_per_sec"`
	OfferedOpsPerSec  float64 `json:"offered_ops_per_sec"`
	GoodputOpsPerSec  float64 `json:"goodput_ops_per_sec"`
	GoodputRatio      float64 `json:"goodput_ratio"`
	Admitted          int64   `json:"admitted"`
	Shed              int64   `json:"shed"`
	OtherErrors       int64   `json:"other_errors"`
	// Unsent counts pacer deficit while every pool slot was pinned in
	// flight — client-side saturation, the signature of an unprotected
	// server under overload.
	Unsent              int64            `json:"unsent,omitempty"`
	AdmittedP50Micros   int64            `json:"admitted_p50_us"`
	AdmittedP99Micros   int64            `json:"admitted_p99_us"`
	ShedP99Micros       int64            `json:"shed_p99_us,omitempty"`
	ServerShedP99Micros int64            `json:"server_shed_p99_us,omitempty"`
	ShedByCause         map[string]int64 `json:"shed_by_cause,omitempty"`
}

// benchRun is one lsmload invocation in machine-readable form, the unit
// appended to a -bench-json file. Field names are the stable interface:
// the ROADMAP perf trajectory compares them across commits, so additions
// are fine but renames are not.
type benchRun struct {
	Label              string                `json:"label"`
	Timestamp          string                `json:"timestamp"`
	Backend            string                `json:"backend"`
	GroupCommit        string                `json:"group_commit,omitempty"`
	Mix                string                `json:"mix,omitempty"`
	Preload            int                   `json:"preload,omitempty"`
	Ops                int                   `json:"ops"`
	Batch              int                   `json:"batch"`
	Conns              int                   `json:"conns"`
	Workers            int                   `json:"workers"`
	Shards             int                   `json:"shards"`
	OpMix              benchMix              `json:"op_mix"`
	WallSeconds        float64               `json:"wall_seconds"`
	OpsPerSec          float64               `json:"ops_per_sec"`
	Classes            map[string]benchClass `json:"classes"`
	WALFsyncs          int64                 `json:"wal_fsyncs"`
	FsyncsPerSec       float64               `json:"fsyncs_per_sec"`
	GroupCommitBatches int64                 `json:"group_commit_batches,omitempty"`
	MeanGroupSize      float64               `json:"mean_group_size,omitempty"`
	Ingested           int64                 `json:"ingested"`
	DiskBytesWritten   int64                 `json:"disk_bytes_written"`
	ReadCacheBytes     int64                 `json:"read_cache_bytes,omitempty"`
	ReadCacheHits      int64                 `json:"read_cache_hits,omitempty"`
	ReadCacheNegHits   int64                 `json:"read_cache_neg_hits,omitempty"`
	ReadCacheMisses    int64                 `json:"read_cache_misses,omitempty"`
	// Observability records whether the server traced requests during the
	// run; ServerClasses holds the server-side interval percentiles per op
	// class, diffed from the sidecar's /stats histograms.
	Observability bool                   `json:"observability"`
	ServerClasses map[string]obs.Summary `json:"server_classes,omitempty"`
	// Overload is present only for -overload runs.
	Overload *benchOverload `json:"overload,omitempty"`
}

type benchMix struct {
	GetRatio    float64 `json:"get_ratio"`
	QueryRatio  float64 `json:"query_ratio"`
	ScanRatio   float64 `json:"scan_ratio"`
	UpdateRatio float64 `json:"update_ratio"`
}

type benchClass struct {
	N         int   `json:"n"`
	Errors    int   `json:"errors"`
	P50Micros int64 `json:"p50_us"`
	P90Micros int64 `json:"p90_us"`
	P99Micros int64 `json:"p99_us"`
	MaxMicros int64 `json:"max_us"`
}

type benchFile struct {
	Benchmark string     `json:"benchmark"`
	Runs      []benchRun `json:"runs"`
}

// appendBenchJSON adds run to the bench file at path, creating it when
// missing, so one file accumulates a backend × op-mix matrix across
// several lsmload invocations.
func appendBenchJSON(path string, run benchRun) error {
	bf := benchFile{Benchmark: "lsmload"}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &bf); err != nil {
			return fmt.Errorf("-bench-json: %s exists but is not a bench file: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	bf.Runs = append(bf.Runs, run)
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// selfServe opens a disk-backend store with the requested commit
// discipline, serves it in-process on a loopback port (with the same
// tweet-workload schema lsmserver declares), and returns the wire address,
// the HTTP sidecar base URL, and a stop function that drains the server
// and closes the store.
func selfServe(mode, dir string, shards int, seed, readCacheBytes int64, memBudget int, obsOn bool, cfgMod func(*server.Config)) (addr, httpBase string, stop func(), err error) {
	opts := lsmstore.Options{
		Strategy:           lsmstore.Validation,
		Secondaries:        []lsmstore.SecondaryIndex{{Name: "user", Extract: workload.UserIDOf}},
		FilterExtract:      workload.CreationOf,
		Backend:            lsmstore.FileBackend,
		Shards:             shards,
		MaintenanceWorkers: 2,
		Seed:               seed,
		MemoryBudget:       memBudget,
		ReadCache:          lsmstore.ReadCacheOptions{Bytes: readCacheBytes},
	}
	switch strings.ToLower(mode) {
	case "on":
		opts.GroupCommit = lsmstore.GroupCommitOn
	case "off":
		opts.GroupCommit = lsmstore.GroupCommitOff
	default:
		return "", "", nil, fmt.Errorf("unknown -group-commit %q (want on or off)", mode)
	}
	cleanup := func() {}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "lsmload-*")
		if err != nil {
			return "", "", nil, err
		}
		dir, cleanup = tmp, func() { os.RemoveAll(tmp) }
	}
	opts.Dir = dir
	db, err := lsmstore.Open(opts)
	if err != nil {
		cleanup()
		return "", "", nil, err
	}
	cfg := server.Config{
		DB:                   db,
		Addr:                 "127.0.0.1:0",
		HTTPAddr:             "127.0.0.1:0",
		DisableObservability: !obsOn,
	}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	srv, err := server.New(cfg)
	if err == nil {
		err = srv.Start()
	}
	if err != nil {
		db.Close()
		cleanup()
		return "", "", nil, err
	}
	rc := "off"
	if readCacheBytes > 0 {
		rc = fmt.Sprintf("%d bytes", readCacheBytes)
	}
	obsState := "on"
	if !obsOn {
		obsState = "off"
	}
	fmt.Printf("self-serve          disk backend in %s, group commit %s, read cache %s, observability %s\n",
		dir, strings.ToLower(mode), rc, obsState)
	return srv.Addr().String(), "http://" + srv.HTTPAddr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		db.Close()
		cleanup()
	}, nil
}

// fetchStats pulls one /stats payload from the server's HTTP sidecar.
func fetchStats(base string) (server.StatsPayload, error) {
	var p server.StatsPayload
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return p, fmt.Errorf("GET %s/stats: %s", base, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&p)
	return p, err
}

// serverIntervalSummaries diffs two /stats histogram snapshots and returns
// percentile digests for every op class the timed run touched. A server
// running with observability disabled yields no histograms and an empty map.
func serverIntervalSummaries(before, after server.StatsPayload) map[string]obs.Summary {
	out := make(map[string]obs.Summary)
	for name, h := range after.LatencyHist {
		delta := h.Sub(before.LatencyHist[name])
		if delta.Count == 0 {
			continue
		}
		out[name] = delta.Summary()
	}
	return out
}

// printServerClasses reports the server-side percentiles beside the
// client-side ones, so the network's share of round-trip latency is visible
// in one terminal.
func printServerClasses(classes map[string]obs.Summary) {
	if len(classes) == 0 {
		fmt.Println("server latency      (observability disabled on the server)")
		return
	}
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	us := func(v int64) time.Duration { return time.Duration(v) * time.Microsecond }
	for _, name := range names {
		s := classes[name]
		fmt.Printf("server %-12s n=%-8d p50=%-10s p90=%-10s p99=%-10s max=%s\n",
			name, s.Count, us(s.P50Micros), us(s.P90Micros), us(s.P99Micros), us(s.MaxMicros))
	}
}

// preloadStore upserts n records through the workers' own generators
// (batched for throughput, one goroutine per generator) and flushes the
// store, so the timed run starts against a settled on-disk image instead
// of racing its own memtable flushes and merges.
func preloadStore(client *lsmclient.Client, gens []*workload.Generator, n int) error {
	t0 := time.Now()
	per := (n + len(gens) - 1) / len(gens)
	errs := make(chan error, len(gens))
	var wg sync.WaitGroup
	for _, gen := range gens {
		wg.Add(1)
		go func(gen *workload.Generator) {
			defer wg.Done()
			for done := 0; done < per; {
				b := client.NewBatch()
				for i := 0; i < 64 && done < per; i++ {
					op := gen.Next()
					b.Upsert(op.Tweet.PK(), op.Tweet.Encode())
					done++
				}
				if _, err := b.Apply(); err != nil {
					errs <- err
					return
				}
			}
		}(gen)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return fmt.Errorf("preload: %w", err)
	}
	if err := client.Flush(); err != nil {
		return fmt.Errorf("preload flush: %w", err)
	}
	// Flush returns once the memory component is durable, but the merges it
	// schedules run on background maintenance workers; wait for the
	// component count to hold still so they don't bleed into the timed run.
	last, stable := -1, 0
	for deadline := time.Now().Add(30 * time.Second); stable < 8 && time.Now().Before(deadline); {
		st, err := client.Stats()
		if err != nil {
			return fmt.Errorf("preload settle: %w", err)
		}
		if st.PrimaryComponents == last {
			stable++
		} else {
			last, stable = st.PrimaryComponents, 0
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("preload             %d records in %s, flushed and settled (%d disk components)\n",
		n, time.Since(t0).Round(time.Millisecond), last)
	return nil
}

// pickClass rolls the op mix; the remainder after gets, queries and scans
// is writes.
func pickClass(rng *rand.Rand, get, query, scan float64) opClass {
	r := rng.Float64()
	switch {
	case r < get:
		return classGet
	case r < get+query:
		return classQuery
	case r < get+query+scan:
		return classScan
	}
	return classWrite
}

// issue performs one closed-loop operation of the class.
func issue(client *lsmclient.Client, gen *workload.Generator, rng *rand.Rand, class opClass, batch int) error {
	switch class {
	case classGet:
		op := gen.Next() // an existing-ish key from the same distribution
		_, _, err := client.Get(op.Tweet.PK())
		return err
	case classQuery:
		lo := uint32(rng.Intn(1000))
		_, err := client.SecondaryQuery("user", workload.UserKey(lo), workload.UserKey(lo+20),
			lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation, Limit: 100})
		return err
	case classScan:
		lo := int64(rng.Intn(1 << 20))
		_, err := client.FilterScan(lo, lo+(1<<14), 100)
		return err
	}
	if batch == 1 {
		op := gen.Next()
		return client.Upsert(op.Tweet.PK(), op.Tweet.Encode())
	}
	b := client.NewBatch()
	for i := 0; i < batch; i++ {
		op := gen.Next()
		b.Upsert(op.Tweet.PK(), op.Tweet.Encode())
	}
	_, err := b.Apply()
	return err
}

// pct returns the p-th percentile (nearest-rank) of sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p+99)/100 - 1 // ceil(n*p/100), 1-indexed rank
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Round(time.Microsecond)
}
