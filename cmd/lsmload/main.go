// Command lsmload is a closed-loop load generator for a live lsmserver:
// every worker issues one request, waits for its response, and issues the
// next, so measured latency is honest round-trip latency and throughput
// reflects the server's real service rate at the offered concurrency.
// Workers share a pool of pipelined connections (workers > conns exercises
// pipelining; concurrent single upserts exercise the server's write
// coalescer). At the end it reports throughput and latency percentiles
// per operation class, plus the server's own statistics.
//
// Usage:
//
//	lsmload -addr 127.0.0.1:4150 -ops 100000 -conns 4 -workers 16
//	lsmload -addr 127.0.0.1:4150 -ops 50000 -batch 32 -query-ratio 0.05
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
	"repro/lsmclient"
	"repro/lsmstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lsmload:", err)
		os.Exit(1)
	}
}

type opClass int

const (
	classWrite opClass = iota
	classGet
	classQuery
	classScan
	numClasses
)

var classNames = [numClasses]string{"write", "get", "query", "scan"}

// sample is one worker's measurements for one op class.
type sample struct {
	lats []time.Duration
	errs int
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:4150", "lsmserver address")
	ops := flag.Int("ops", 100_000, "total operations to issue")
	conns := flag.Int("conns", 4, "TCP connections in the client pool")
	workers := flag.Int("workers", 16, "closed-loop workers sharing the pool")
	batch := flag.Int("batch", 1, "upserts per write op (1 = single upserts, exercising the server-side coalescer)")
	getRatio := flag.Float64("get-ratio", 0.2, "fraction of ops that are point gets")
	queryRatio := flag.Float64("query-ratio", 0.02, "fraction of ops that are secondary-index queries")
	scanRatio := flag.Float64("scan-ratio", 0.01, "fraction of ops that are filter scans")
	updateRatio := flag.Float64("update-ratio", 0.1, "fraction of upserts hitting past keys")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()
	if *workers < 1 || *conns < 1 || *batch < 1 {
		return fmt.Errorf("-workers, -conns and -batch must be >= 1")
	}

	client, err := lsmclient.DialOptions(lsmclient.Options{
		Addr:           *addr,
		Conns:          *conns,
		RequestTimeout: *timeout,
	})
	if err != nil {
		return err
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		return fmt.Errorf("ping %s: %w", *addr, err)
	}

	var (
		remaining atomic.Int64
		wg        sync.WaitGroup
		samples   = make([][numClasses]sample, *workers)
	)
	remaining.Store(int64(*ops))
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wcfg := workload.DefaultConfig(*seed + int64(w)*7919)
			wcfg.UpdateRatio = *updateRatio
			gen := workload.NewGenerator(wcfg)
			rng := rand.New(rand.NewSource(*seed + int64(w)*104729))
			for remaining.Add(-1) >= 0 {
				class := pickClass(rng, *getRatio, *queryRatio, *scanRatio)
				t0 := time.Now()
				err := issue(client, gen, rng, class, *batch)
				lat := time.Since(t0)
				s := &samples[w][class]
				s.lats = append(s.lats, lat)
				if err != nil {
					s.errs++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("target              %s\n", *addr)
	fmt.Printf("operations          %d (batch %d, %d conns, %d workers)\n", *ops, *batch, *conns, *workers)
	fmt.Printf("wall time           %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("throughput          %.0f ops/s", float64(*ops)/elapsed.Seconds())
	if *batch > 1 {
		fmt.Printf(" (writes count batches; records/s is higher)")
	}
	fmt.Println()
	for class := opClass(0); class < numClasses; class++ {
		var all []time.Duration
		errs := 0
		for w := range samples {
			all = append(all, samples[w][class].lats...)
			errs += samples[w][class].errs
		}
		if len(all) == 0 {
			continue
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		fmt.Printf("%-7s latency     n=%-8d p50=%-10s p90=%-10s p99=%-10s max=%s",
			classNames[class], len(all),
			pct(all, 50), pct(all, 90), pct(all, 99), all[len(all)-1].Round(time.Microsecond))
		if errs > 0 {
			fmt.Printf("  errors=%d", errs)
		}
		fmt.Println()
	}
	st, err := client.Stats()
	if err != nil {
		return fmt.Errorf("server stats: %w", err)
	}
	fmt.Printf("server              ingested=%d ignored=%d components=%d shards=%d disk-bytes=%d\n",
		st.Ingested, st.Ignored, st.PrimaryComponents, st.Shards, st.DiskBytesWritten)
	return nil
}

// pickClass rolls the op mix; the remainder after gets, queries and scans
// is writes.
func pickClass(rng *rand.Rand, get, query, scan float64) opClass {
	r := rng.Float64()
	switch {
	case r < get:
		return classGet
	case r < get+query:
		return classQuery
	case r < get+query+scan:
		return classScan
	}
	return classWrite
}

// issue performs one closed-loop operation of the class.
func issue(client *lsmclient.Client, gen *workload.Generator, rng *rand.Rand, class opClass, batch int) error {
	switch class {
	case classGet:
		op := gen.Next() // an existing-ish key from the same distribution
		_, _, err := client.Get(op.Tweet.PK())
		return err
	case classQuery:
		lo := uint32(rng.Intn(1000))
		_, err := client.SecondaryQuery("user", workload.UserKey(lo), workload.UserKey(lo+20),
			lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation, Limit: 100})
		return err
	case classScan:
		lo := int64(rng.Intn(1 << 20))
		_, err := client.FilterScan(lo, lo+(1<<14), 100)
		return err
	}
	if batch == 1 {
		op := gen.Next()
		return client.Upsert(op.Tweet.PK(), op.Tweet.Encode())
	}
	b := client.NewBatch()
	for i := 0; i < batch; i++ {
		op := gen.Next()
		b.Upsert(op.Tweet.PK(), op.Tweet.Encode())
	}
	_, err := b.Apply()
	return err
}

// pct returns the p-th percentile (nearest-rank) of sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p+99)/100 - 1 // ceil(n*p/100), 1-indexed rank
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Round(time.Microsecond)
}
