package lsmclient

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// silentServer accepts connections and reads frames but never responds —
// the worst-behaved peer a client timeout must survive.
type silentServer struct {
	ln    net.Listener
	wg    sync.WaitGroup
	conns chan net.Conn
}

func newSilentServer(t *testing.T) *silentServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &silentServer{ln: ln, conns: make(chan net.Conn, 16)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.conns <- nc
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				var buf []byte
				for {
					frame, err := wire.ReadFrame(nc, buf, 0)
					if err != nil {
						return
					}
					buf = frame[:cap(frame)]
				}
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		close(s.conns)
		for nc := range s.conns {
			nc.Close()
		}
		s.wg.Wait()
	})
	return s
}

func TestRequestTimeout(t *testing.T) {
	srv := newSilentServer(t)
	c, err := DialOptions(Options{
		Addr:           srv.ln.Addr().String(),
		RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Ping(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("ping against a silent server: err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %s", elapsed)
	}
	// The connection is still usable for new requests (the stale response
	// slot was abandoned); a second timed-out ping must not mis-deliver.
	if err := c.Ping(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("second ping: err = %v, want ErrTimeout", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := DialOptions(Options{Addr: "127.0.0.1:1", DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial of a dead port succeeded")
	}
	if _, err := DialOptions(Options{}); err == nil {
		t.Fatal("empty addr accepted")
	}
}

func TestBrokenConnectionFailsPendingAndRedials(t *testing.T) {
	srv := newSilentServer(t)
	c, err := DialOptions(Options{
		Addr:           srv.ln.Addr().String(),
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	nc := <-srv.conns // the pool's one connection, server side

	done := make(chan error, 1)
	go func() {
		done <- c.Ping()
	}()
	time.Sleep(20 * time.Millisecond) // let the request get written
	nc.Close()                        // server drops the connection
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ping on a dropped connection succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending request not failed by the broken connection")
	}

	// The next use redials transparently (and then times out silently,
	// proving it reached the fresh connection rather than the dead one).
	redialed := make(chan error, 1)
	go func() {
		redialed <- c.Ping()
	}()
	select {
	case <-srv.conns: // a fresh server-side connection appears
	case <-time.After(5 * time.Second):
		t.Fatal("client did not redial after the connection broke")
	}
	<-redialed // silent server: the ping times out eventually; don't leak it
}

func TestUseAfterClose(t *testing.T) {
	srv := newSilentServer(t)
	c, err := DialOptions(Options{Addr: srv.ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := c.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("ping after Close: err = %v, want ErrClientClosed", err)
	}
}
