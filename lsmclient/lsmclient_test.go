package lsmclient

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/lsmstore"
)

// silentServer accepts connections and reads frames but never responds —
// the worst-behaved peer a client timeout must survive.
type silentServer struct {
	ln    net.Listener
	wg    sync.WaitGroup
	conns chan net.Conn
}

func newSilentServer(t *testing.T) *silentServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &silentServer{ln: ln, conns: make(chan net.Conn, 16)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.conns <- nc
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				var buf []byte
				for {
					frame, err := wire.ReadFrame(nc, buf, 0)
					if err != nil {
						return
					}
					buf = frame[:cap(frame)]
				}
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		close(s.conns)
		for nc := range s.conns {
			nc.Close()
		}
		s.wg.Wait()
	})
	return s
}

func TestRequestTimeout(t *testing.T) {
	srv := newSilentServer(t)
	c, err := DialOptions(Options{
		Addr:           srv.ln.Addr().String(),
		RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Ping(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("ping against a silent server: err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %s", elapsed)
	}
	// The connection is still usable for new requests (the stale response
	// slot was abandoned); a second timed-out ping must not mis-deliver.
	if err := c.Ping(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("second ping: err = %v, want ErrTimeout", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := DialOptions(Options{Addr: "127.0.0.1:1", DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial of a dead port succeeded")
	}
	if _, err := DialOptions(Options{}); err == nil {
		t.Fatal("empty addr accepted")
	}
}

func TestBrokenConnectionFailsPendingAndRedials(t *testing.T) {
	srv := newSilentServer(t)
	c, err := DialOptions(Options{
		Addr:           srv.ln.Addr().String(),
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	nc := <-srv.conns // the pool's one connection, server side

	done := make(chan error, 1)
	go func() {
		done <- c.Ping()
	}()
	time.Sleep(20 * time.Millisecond) // let the request get written
	nc.Close()                        // server drops the connection
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ping on a dropped connection succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending request not failed by the broken connection")
	}

	// The next use redials transparently (and then times out silently,
	// proving it reached the fresh connection rather than the dead one).
	redialed := make(chan error, 1)
	go func() {
		redialed <- c.Ping()
	}()
	select {
	case <-srv.conns: // a fresh server-side connection appears
	case <-time.After(5 * time.Second):
		t.Fatal("client did not redial after the connection broke")
	}
	<-redialed // silent server: the ping times out eventually; don't leak it
}

// scriptedServer speaks the wire protocol with a caller-supplied handler,
// for driving the client's retry machinery from the server side.
type scriptedServer struct {
	ln net.Listener
	wg sync.WaitGroup
}

func newScriptedServer(t *testing.T, handle func(req wire.Request) wire.Response) *scriptedServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedServer{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer nc.Close()
				var buf []byte
				for {
					frame, err := wire.ReadFrame(nc, buf, 0)
					if err != nil {
						return
					}
					buf = frame[:cap(frame)]
					req, err := wire.DecodeRequest(frame)
					if err != nil {
						return
					}
					resp := handle(req)
					resp.ID = req.ID
					if err := wire.WriteFrame(nc, wire.AppendResponse(nil, resp)); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

func TestBackoffDelayJitterBounds(t *testing.T) {
	base, cap := time.Millisecond, 250*time.Millisecond
	var windows []int64
	capture := func(n int64) int64 {
		if n <= 0 {
			t.Fatalf("jitter draw over non-positive window %d", n)
		}
		windows = append(windows, n)
		return n - 1 // the largest draw: delay must stay under the window
	}
	wantWindows := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 16 * time.Millisecond,
	}
	for attempt, want := range wantWindows {
		d := backoffDelay(attempt, base, cap, capture)
		if got := time.Duration(windows[attempt]); got != want {
			t.Fatalf("attempt %d: window %v, want %v", attempt, got, want)
		}
		if d >= want {
			t.Fatalf("attempt %d: delay %v not strictly under window %v", attempt, d, want)
		}
	}
	// Deep attempts clamp at the cap — no overflow, no growth past it.
	windows = nil
	if d := backoffDelay(40, base, cap, capture); time.Duration(windows[0]) != cap || d >= cap {
		t.Fatalf("attempt 40: window %v delay %v, want window == cap %v", time.Duration(windows[0]), d, cap)
	}
	// Full jitter really spans the window: the production source stays in
	// [0, window) by construction of rand.Int63n; zero draws are legal.
	if d := backoffDelay(3, base, cap, func(int64) int64 { return 0 }); d != 0 {
		t.Fatalf("zero draw gave %v, want 0", d)
	}
}

func TestRetryBudgetExhaustsToErrOverloaded(t *testing.T) {
	var attempts atomic.Int64
	srv := newScriptedServer(t, func(req wire.Request) wire.Response {
		attempts.Add(1)
		return wire.ErrorResponse(req.ID, wire.CodeOverloaded, "budget full")
	})
	c, err := DialOptions(Options{
		Addr:        srv.ln.Addr().String(),
		RetryLimit:  3,
		BackoffBase: 50 * time.Microsecond,
		BackoffCap:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Upsert([]byte("pk"), []byte("v")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := attempts.Load(); got != 4 { // 1 initial + 3 retries
		t.Fatalf("server saw %d attempts, want 4", got)
	}
}

func TestNoRetryOnBadRequestOrClosed(t *testing.T) {
	for _, tc := range []struct {
		code wire.ErrCode
		is   error
	}{
		{wire.CodeBadRequest, nil},
		{wire.CodeClosed, lsmstore.ErrClosed},
	} {
		var attempts atomic.Int64
		srv := newScriptedServer(t, func(req wire.Request) wire.Response {
			attempts.Add(1)
			return wire.ErrorResponse(req.ID, tc.code, "nope")
		})
		c, err := DialOptions(Options{
			Addr:        srv.ln.Addr().String(),
			RetryLimit:  5,
			BackoffBase: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		err = c.Upsert([]byte("pk"), []byte("v"))
		c.Close()
		if err == nil {
			t.Fatalf("%s: upsert succeeded", tc.code)
		}
		if tc.is != nil && !errors.Is(err, tc.is) {
			t.Fatalf("%s: err = %v, want %v", tc.code, err, tc.is)
		}
		var se *ServerError
		if tc.is == nil && !errors.As(err, &se) {
			t.Fatalf("%s: err = %v, want *ServerError", tc.code, err)
		}
		if got := attempts.Load(); got != 1 {
			t.Fatalf("%s: server saw %d attempts, want exactly 1 (no retries)", tc.code, got)
		}
	}
}

func TestRetryRecoversAfterShed(t *testing.T) {
	var attempts atomic.Int64
	srv := newScriptedServer(t, func(req wire.Request) wire.Response {
		if attempts.Add(1) <= 2 {
			return wire.ErrorResponse(req.ID, wire.CodeOverloaded, "shed")
		}
		return wire.Response{ID: req.ID, Kind: wire.KindOK}
	})
	c, err := DialOptions(Options{
		Addr:        srv.ln.Addr().String(),
		RetryLimit:  5,
		BackoffBase: 50 * time.Microsecond,
		BackoffCap:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Upsert([]byte("pk"), []byte("v")); err != nil {
		t.Fatalf("upsert after sheds: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 sheds + success)", got)
	}
}

func TestRetryLaterIsRetriedAndMapped(t *testing.T) {
	var attempts atomic.Int64
	srv := newScriptedServer(t, func(req wire.Request) wire.Response {
		attempts.Add(1)
		return wire.ErrorResponse(req.ID, wire.CodeRetryLater, "tenant over rate")
	})
	c, err := DialOptions(Options{
		Addr:        srv.ln.Addr().String(),
		RetryLimit:  1,
		BackoffBase: 50 * time.Microsecond,
		Tenant:      "t1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); !errors.Is(err, ErrRetryLater) {
		t.Fatalf("err = %v, want ErrRetryLater", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

func TestTenantTagTravels(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	srv := newScriptedServer(t, func(req wire.Request) wire.Response {
		mu.Lock()
		seen = append(seen, req.Tenant)
		mu.Unlock()
		return wire.Response{ID: req.ID, Kind: wire.KindOK}
	})
	c, err := DialOptions(Options{Addr: srv.ln.Addr().String(), Tenant: "tenant-9"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != "tenant-9" {
		t.Fatalf("server saw tenants %q, want [tenant-9]", seen)
	}
}

func TestMaxInFlightBoundsPoolConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	srv := newScriptedServer(t, func(req wire.Request) wire.Response {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return wire.Response{ID: req.ID, Kind: wire.KindOK}
	})
	c, err := DialOptions(Options{Addr: srv.ln.Addr().String(), Conns: 2, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Ping(); err != nil {
				t.Errorf("ping: %v", err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("observed %d concurrent requests, limiter bound is 2", p)
	}
}

func TestUseAfterClose(t *testing.T) {
	srv := newSilentServer(t)
	c, err := DialOptions(Options{Addr: srv.ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := c.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("ping after Close: err = %v, want ErrClientClosed", err)
	}
}
