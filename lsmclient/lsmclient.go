// Package lsmclient is the Go client for lsmserver: a connection pool
// speaking the length-prefixed wire protocol, with pipelining, batch
// helpers, and timeouts.
//
// Requests carry IDs, so many goroutines can share one Client — and one
// TCP connection — and their requests pipeline: each in-flight request
// waits only for its own response, which the server returns in completion
// order. The pool (Options.Conns) spreads callers across connections
// round-robin; a connection that breaks fails its in-flight requests and
// is redialed transparently on next use.
//
//	c, err := lsmclient.Dial("127.0.0.1:4150")
//	if err != nil { ... }
//	defer c.Close()
//	if err := c.Upsert(pk, record); err != nil { ... }
//	res, err := c.SecondaryQuery("user", lo, hi, lsmstore.QueryOptions{
//		Validation: lsmstore.TimestampValidation,
//	})
//
// Server-side failures come back as typed errors: lsmstore.ErrClosed,
// lsmstore.ErrUnknownIndex, ErrOverloaded and ErrRetryLater are
// recognized with errors.Is; everything else is a *ServerError.
//
// Overload responses (CodeOverloaded, CodeRetryLater) are retried
// automatically with capped exponential backoff and full jitter, up to
// Options.RetryLimit; Options.MaxInFlight bounds the pool's concurrency
// so a backing-off client stops hammering an overloaded server.
package lsmclient

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
	"repro/lsmstore"
)

// Options configures a Client.
type Options struct {
	// Addr is the server's TCP address (required).
	Addr string
	// Conns is the connection pool size (default 1). Requests spread
	// round-robin; goroutines sharing a connection pipeline on it.
	Conns int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds each request round trip (default 30s; < 0
	// disables). A timed-out request fails with ErrTimeout; its response,
	// if it ever arrives, is discarded.
	RequestTimeout time.Duration
	// MaxFrame caps accepted response frames (0 = the protocol default).
	MaxFrame int
	// Tenant is the QoS tenant tag stamped on every request for the
	// server's per-tenant rate limits and fair-share shedding. Empty
	// leaves requests untagged (exempt from per-tenant limits).
	Tenant string
	// MaxInFlight bounds the requests this client (whole pool) runs at
	// once. A slot is held across a request's retries and backoff sleeps,
	// so a backing-off client stops hammering the server instead of
	// piling on fresh load. 0 = unlimited.
	MaxInFlight int
	// RetryLimit caps the retries after a CodeOverloaded/CodeRetryLater
	// response before the error surfaces to the caller (0 = the default
	// of 4; negative disables retries). Only overload errors are retried;
	// bad requests, broken connections and timeouts fail immediately.
	RetryLimit int
	// BackoffBase is the first retry's backoff window (0 = 1ms). Each
	// retry doubles the window, capped at BackoffCap; the actual sleep is
	// uniform in [0, window) — capped exponential backoff, full jitter.
	BackoffBase time.Duration
	// BackoffCap caps the backoff window (0 = 250ms).
	BackoffCap time.Duration
}

const (
	defaultDialTimeout    = 5 * time.Second
	defaultRequestTimeout = 30 * time.Second
	defaultRetryLimit     = 4
	defaultBackoffBase    = time.Millisecond
	defaultBackoffCap     = 250 * time.Millisecond
)

// ErrTimeout reports a request that exceeded Options.RequestTimeout.
var ErrTimeout = errors.New("lsmclient: request timed out")

// ErrClientClosed reports use of a Client after Close.
var ErrClientClosed = errors.New("lsmclient: client is closed")

// ErrOverloaded reports a request the server shed (CodeOverloaded) that
// was still failing after the retry budget. Back off before trying again.
var ErrOverloaded = errors.New("lsmclient: server overloaded")

// ErrRetryLater reports a request rejected by the tenant rate limit
// (CodeRetryLater): the server is fine, this tenant is over its rate.
var ErrRetryLater = errors.New("lsmclient: tenant rate limited")

// ServerError is a typed failure the server reported for one request.
type ServerError struct {
	Code string // the wire error code name, e.g. "bad-request"
	Msg  string
}

// Error implements the error interface.
func (e *ServerError) Error() string {
	return fmt.Sprintf("lsmclient: server error %s: %s", e.Code, e.Msg)
}

// Client is a pooled, pipelining connection to one lsmserver. All methods
// are safe for concurrent use.
type Client struct {
	opts    Options
	slotMu  sync.Mutex // guards conns slot pointers (redial swaps)
	conns   []*conn
	rr      atomic.Uint64
	nextID  atomic.Uint64
	closed  atomic.Bool
	limiter chan struct{} // pool-wide in-flight slots (nil = unlimited)
}

// Dial connects to an lsmserver with default options.
func Dial(addr string) (*Client, error) {
	return DialOptions(Options{Addr: addr})
}

// DialOptions connects with explicit options. Every pool connection is
// established eagerly so a bad address fails here, not on first use.
func DialOptions(opts Options) (*Client, error) {
	if opts.Addr == "" {
		return nil, errors.New("lsmclient: Options.Addr is required")
	}
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = defaultDialTimeout
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = defaultRequestTimeout
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = wire.MaxFrame
	}
	if opts.RetryLimit == 0 {
		opts.RetryLimit = defaultRetryLimit
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = defaultBackoffBase
	}
	if opts.BackoffCap <= 0 {
		opts.BackoffCap = defaultBackoffCap
	}
	if opts.BackoffCap < opts.BackoffBase {
		opts.BackoffCap = opts.BackoffBase
	}
	c := &Client{opts: opts, conns: make([]*conn, opts.Conns)}
	if opts.MaxInFlight > 0 {
		c.limiter = make(chan struct{}, opts.MaxInFlight)
	}
	for i := range c.conns {
		cn, err := c.dialConn()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns[i] = cn
	}
	return c, nil
}

// Close closes every pool connection. In-flight requests fail.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.slotMu.Lock()
	conns := append([]*conn(nil), c.conns...)
	c.slotMu.Unlock()
	for _, cn := range conns {
		if cn != nil {
			cn.close(ErrClientClosed)
		}
	}
	return nil
}

// --- operations ---------------------------------------------------------

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, err := c.do(wire.Request{Op: wire.OpPing}, wire.KindOK)
	return err
}

// Get returns the record under pk and whether it exists.
func (c *Client) Get(pk []byte) ([]byte, bool, error) {
	resp, err := c.do(wire.Request{Op: wire.OpGet, Key: pk}, wire.KindValue)
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

// Upsert inserts or replaces the record under pk.
func (c *Client) Upsert(pk, record []byte) error {
	_, err := c.do(wire.Request{Op: wire.OpUpsert, Key: pk, Value: record}, wire.KindOK)
	return err
}

// Insert adds a record; it reports false when the key already exists.
func (c *Client) Insert(pk, record []byte) (bool, error) {
	resp, err := c.do(wire.Request{Op: wire.OpInsert, Key: pk, Value: record}, wire.KindApplied)
	if err != nil {
		return false, err
	}
	return resp.Applied, nil
}

// Delete removes the record under pk; it reports false when absent.
func (c *Client) Delete(pk []byte) (bool, error) {
	resp, err := c.do(wire.Request{Op: wire.OpDelete, Key: pk}, wire.KindApplied)
	if err != nil {
		return false, err
	}
	return resp.Applied, nil
}

// ApplyBatch applies a batch of mutations in one round trip and reports,
// per mutation, whether it took effect (matching DB.ApplyBatchResults).
func (c *Client) ApplyBatch(muts []lsmstore.Mutation) ([]bool, error) {
	req := wire.Request{Op: wire.OpApplyBatch, Muts: make([]wire.Mutation, len(muts))}
	for i, m := range muts {
		var op wire.MutOp
		switch m.Op {
		case lsmstore.OpUpsert:
			op = wire.MutUpsert
		case lsmstore.OpInsert:
			op = wire.MutInsert
		case lsmstore.OpDelete:
			op = wire.MutDelete
		default:
			return nil, fmt.Errorf("lsmclient: unknown mutation op %d", m.Op)
		}
		req.Muts[i] = wire.Mutation{Op: op, PK: m.PK, Record: m.Record}
	}
	resp, err := c.do(req, wire.KindBatch)
	if err != nil {
		return nil, err
	}
	applied := resp.AppliedBatch
	if applied == nil {
		applied = make([]bool, len(muts)) // empty batches decode as nil
	}
	return applied, nil
}

// SecondaryQuery runs a range query lo <= secondary key <= hi on the
// named index. Only Validation, IndexOnly and Limit travel over the wire;
// the in-process-only knobs (Lookup, CrackOnValidate) are ignored.
func (c *Client) SecondaryQuery(index string, lo, hi []byte, opts lsmstore.QueryOptions) (*lsmstore.QueryResult, error) {
	resp, err := c.do(wire.Request{
		Op:         wire.OpSecondaryQuery,
		Index:      index,
		Lo:         lo,
		Hi:         hi,
		Validation: uint8(opts.Validation),
		IndexOnly:  opts.IndexOnly,
		Limit:      int64(opts.Limit),
	}, wire.KindQuery)
	if err != nil {
		return nil, err
	}
	out := &lsmstore.QueryResult{Keys: resp.Keys}
	for _, r := range resp.Records {
		out.Records = append(out.Records, lsmstore.Record{PK: r.PK, Value: r.Value})
	}
	return out, nil
}

// FilterScan returns records whose filter key lies in [lo, hi], in
// primary-key order, capped at limit (0 = all).
func (c *Client) FilterScan(lo, hi int64, limit int) ([]lsmstore.Record, error) {
	resp, err := c.do(wire.Request{
		Op: wire.OpFilterScan, FilterLo: lo, FilterHi: hi, Limit: int64(limit),
	}, wire.KindScan)
	if err != nil {
		return nil, err
	}
	records := make([]lsmstore.Record, len(resp.Records))
	for i, r := range resp.Records {
		records[i] = lsmstore.Record{PK: r.PK, Value: r.Value}
	}
	return records, nil
}

// Stats fetches the server's engine statistics snapshot.
func (c *Client) Stats() (lsmstore.Stats, error) {
	resp, err := c.do(wire.Request{Op: wire.OpStats}, wire.KindStats)
	if err != nil {
		return lsmstore.Stats{}, err
	}
	var st lsmstore.Stats
	if err := json.Unmarshal(resp.Stats, &st); err != nil {
		return lsmstore.Stats{}, fmt.Errorf("lsmclient: bad stats payload: %w", err)
	}
	return st, nil
}

// Flush forces the server's store to flush all memory components.
func (c *Client) Flush() error {
	_, err := c.do(wire.Request{Op: wire.OpFlush}, wire.KindOK)
	return err
}

// --- batch helper -------------------------------------------------------

// Batch accumulates mutations for a single ApplyBatch round trip.
type Batch struct {
	c    *Client
	muts []lsmstore.Mutation
}

// NewBatch starts an empty batch.
func (c *Client) NewBatch() *Batch { return &Batch{c: c} }

// Upsert queues an upsert.
func (b *Batch) Upsert(pk, record []byte) *Batch {
	b.muts = append(b.muts, lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: pk, Record: record})
	return b
}

// Insert queues an insert.
func (b *Batch) Insert(pk, record []byte) *Batch {
	b.muts = append(b.muts, lsmstore.Mutation{Op: lsmstore.OpInsert, PK: pk, Record: record})
	return b
}

// Delete queues a delete.
func (b *Batch) Delete(pk []byte) *Batch {
	b.muts = append(b.muts, lsmstore.Mutation{Op: lsmstore.OpDelete, PK: pk})
	return b
}

// Len reports the queued mutation count.
func (b *Batch) Len() int { return len(b.muts) }

// Apply sends the batch and resets it for reuse.
func (b *Batch) Apply() ([]bool, error) {
	applied, err := b.c.ApplyBatch(b.muts)
	b.muts = b.muts[:0]
	return applied, err
}

// --- transport ----------------------------------------------------------

// do sends one request, holding a pool in-flight slot for its whole
// lifetime (including backoff sleeps) and retrying overload errors with
// capped exponential backoff and full jitter.
func (c *Client) do(req wire.Request, want wire.Kind) (wire.Response, error) {
	if c.closed.Load() {
		return wire.Response{}, ErrClientClosed
	}
	if req.Tenant == "" {
		req.Tenant = c.opts.Tenant
	}
	if c.limiter != nil {
		c.limiter <- struct{}{}
		defer func() { <-c.limiter }()
	}
	for attempt := 0; ; attempt++ {
		resp, err := c.doOnce(req, want)
		if err == nil || attempt >= c.opts.RetryLimit || !retryableError(err) {
			return resp, err
		}
		time.Sleep(backoffDelay(attempt, c.opts.BackoffBase, c.opts.BackoffCap, randDelay))
		if c.closed.Load() {
			return wire.Response{}, ErrClientClosed
		}
	}
}

// retryableError reports whether the failure is an overload signal worth
// retrying. Bad requests, closed stores, timeouts and broken connections
// are not — retrying those wastes the server's time or the caller's.
func retryableError(err error) bool {
	return errors.Is(err, ErrOverloaded) || errors.Is(err, ErrRetryLater)
}

// backoffDelay computes the attempt's sleep: a window of base<<attempt
// capped at cap, full jitter via rnd (uniform draw in [0, window)). A
// random sleep in the full window desynchronizes retrying clients — the
// retry herd arrives spread out instead of in waves.
func backoffDelay(attempt int, base, cap time.Duration, rnd func(int64) int64) time.Duration {
	window := base
	for i := 0; i < attempt && window < cap; i++ {
		window *= 2
	}
	if window > cap {
		window = cap
	}
	if window <= 0 {
		return 0
	}
	return time.Duration(rnd(int64(window)))
}

// randDelay is backoffDelay's production jitter source.
func randDelay(n int64) int64 {
	return rand.Int63n(n)
}

// doOnce sends one request attempt on a pool connection and waits for its
// response, enforcing the request timeout and mapping error frames to
// typed errors. Each attempt gets a fresh request ID so an abandoned
// attempt's late response can never be routed to its retry.
func (c *Client) doOnce(req wire.Request, want wire.Kind) (wire.Response, error) {
	req.ID = c.nextID.Add(1)
	slot := int(c.rr.Add(1)-1) % len(c.conns)
	cn, err := c.conn(slot)
	if err != nil {
		return wire.Response{}, err
	}
	ch, err := cn.send(req)
	if err != nil {
		return wire.Response{}, err
	}
	var timeout <-chan time.Time
	if c.opts.RequestTimeout > 0 {
		t := time.NewTimer(c.opts.RequestTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case res, ok := <-ch:
		if !ok {
			return wire.Response{}, cn.lastError()
		}
		if res.Kind == wire.KindError {
			return wire.Response{}, mapServerError(res)
		}
		if res.Kind != want {
			return wire.Response{}, fmt.Errorf("lsmclient: server answered %s to a %s request", res.Kind, req.Op)
		}
		return res, nil
	case <-timeout:
		cn.abandon(req.ID)
		return wire.Response{}, fmt.Errorf("%w: %s after %s", ErrTimeout, req.Op, c.opts.RequestTimeout)
	}
}

// mapServerError converts an error frame into lsmstore sentinels where
// possible so errors.Is works across the network boundary.
func mapServerError(res wire.Response) error {
	switch res.Code {
	case wire.CodeClosed:
		return fmt.Errorf("%w (remote: %s)", lsmstore.ErrClosed, res.Msg)
	case wire.CodeUnknownIndex:
		return fmt.Errorf("%w (remote: %s)", lsmstore.ErrUnknownIndex, res.Msg)
	case wire.CodeOverloaded:
		return fmt.Errorf("%w (remote: %s)", ErrOverloaded, res.Msg)
	case wire.CodeRetryLater:
		return fmt.Errorf("%w (remote: %s)", ErrRetryLater, res.Msg)
	}
	return &ServerError{Code: res.Code.String(), Msg: res.Msg}
}

// conn returns pool slot i, redialing it if it broke.
func (c *Client) conn(i int) (*conn, error) {
	c.slotMu.Lock()
	cn := c.conns[i]
	c.slotMu.Unlock()
	if cn != nil && !cn.broken() {
		return cn, nil
	}
	fresh, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	// Another goroutine may have redialed the slot concurrently; keep the
	// winner and close the extra connection.
	c.slotMu.Lock()
	if cur := c.conns[i]; cur != cn && cur != nil && !cur.broken() {
		c.slotMu.Unlock()
		fresh.close(nil)
		return cur, nil
	}
	c.conns[i] = fresh
	c.slotMu.Unlock()
	if c.closed.Load() { // lost a race with Close
		fresh.close(ErrClientClosed)
		return nil, ErrClientClosed
	}
	return fresh, nil
}

func (c *Client) dialConn() (*conn, error) {
	nc, err := net.DialTimeout("tcp", c.opts.Addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	cn := &conn{
		nc:       nc,
		bw:       bufio.NewWriterSize(nc, 64<<10),
		pending:  make(map[uint64]chan wire.Response),
		maxFrame: c.opts.MaxFrame,
	}
	go cn.readLoop()
	return cn, nil
}

// conn is one pooled connection: a locked write path and a reader
// goroutine routing responses to their waiters by request ID.
type conn struct {
	nc       net.Conn
	maxFrame int

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex
	pending map[uint64]chan wire.Response
	err     error // sticky: set once the connection breaks
}

// send registers the request's response channel and writes the frame.
func (c *conn) send(req wire.Request) (chan wire.Response, error) {
	ch := make(chan wire.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[req.ID] = ch
	c.mu.Unlock()

	frame := wire.AppendRequest(nil, req)
	c.wmu.Lock()
	err := wire.WriteFrame(c.bw, frame)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.close(fmt.Errorf("lsmclient: write: %w", err))
		return nil, err
	}
	return ch, nil
}

// abandon drops a timed-out request's waiter; a late response is ignored.
func (c *conn) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *conn) readLoop() {
	var buf []byte
	for {
		frame, err := wire.ReadFrame(c.nc, buf, c.maxFrame)
		if err != nil {
			c.close(fmt.Errorf("lsmclient: connection lost: %w", err))
			return
		}
		buf = frame[:cap(frame)]
		resp, err := wire.DecodeResponse(frame)
		if err != nil {
			c.close(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// close marks the connection broken (keeping the first cause), fails all
// pending requests, and closes the socket.
func (c *conn) close(cause error) {
	c.mu.Lock()
	if c.err == nil {
		if cause == nil {
			cause = errors.New("lsmclient: connection closed")
		}
		c.err = cause
	}
	pending := c.pending
	c.pending = make(map[uint64]chan wire.Response)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	c.nc.Close()
}

func (c *conn) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

func (c *conn) lastError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		return errors.New("lsmclient: request dropped")
	}
	return c.err
}
