// Socialfeed: the paper's motivating workload — a high-speed tweet stream
// ingested under the Validation strategy (no point lookups on the write
// path) while ad-hoc queries find a user's tweets through a secondary
// index, using Timestamp validation to filter obsolete entries, and a
// background repair keeps the index clean.
//
// Run with: go run ./examples/socialfeed
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/workload"
	"repro/lsmstore"
)

func main() {
	db, err := lsmstore.Open(lsmstore.Options{
		Strategy: lsmstore.Validation,
		Secondaries: []lsmstore.SecondaryIndex{
			{Name: "user", Extract: workload.UserIDOf},
		},
		FilterExtract: workload.CreationOf,
		MemoryBudget:  512 << 10,
		CacheBytes:    8 << 20,
		PageSize:      32 << 10,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest 30k tweets at full speed; 30% are edits of earlier tweets
	// (Zipf-skewed toward recent ones), which the Validation strategy
	// absorbs without any read.
	cfg := workload.DefaultConfig(7)
	cfg.UserIDRange = 1000
	cfg.UpdateRatio = 0.30
	cfg.ZipfUpdates = true
	gen := workload.NewGenerator(cfg)
	const n = 30_000
	for i := 0; i < n; i++ {
		op := gen.Next()
		if err := db.Upsert(op.Tweet.PK(), op.Tweet.Encode()); err != nil {
			log.Fatal(err)
		}
	}
	st := db.Stats()
	fmt.Printf("ingested %d tweets in %s simulated (%d components)\n",
		st.Ingested, st.SimulatedTime, st.PrimaryComponents)

	// Find every tweet by users 100-105. The secondary index may hold
	// obsolete entries (we never cleaned it on writes); Timestamp
	// validation probes the primary key index to drop them.
	res, err := db.SecondaryQuery("user",
		workload.UserKey(100), workload.UserKey(105),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users 100-105 have %d live tweets\n", len(res.Records))
	for _, r := range res.Records[:min(3, len(res.Records))] {
		fmt.Printf("  tweet %x (%d bytes)\n", binary.BigEndian.Uint64(r.PK), len(r.Value))
	}

	// Index-only analytics: just count tweet IDs per user range, no
	// record fetches at all.
	ids, err := db.SecondaryQuery("user",
		workload.UserKey(0), workload.UserKey(499),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation, IndexOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users 0-499 own %d tweets (index-only)\n", len(ids.Keys))

	// Background repair: validate secondary entries against the primary
	// key index and bitmap out the obsolete ones (Section 4.4).
	before := db.Env().Clock.Now()
	if err := db.RepairSecondaryIndexes(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("background index repair took %s simulated\n", db.Env().Clock.Now()-before)

	// Same query again: identical answer, now cheaper to validate.
	res2, err := db.SecondaryQuery("user",
		workload.UserKey(100), workload.UserKey(105),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation})
	if err != nil {
		log.Fatal(err)
	}
	if len(res2.Records) != len(res.Records) {
		log.Fatalf("repair changed the answer: %d vs %d", len(res2.Records), len(res.Records))
	}
	fmt.Println("post-repair query returns the same answer")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
