// Socialfeed: the paper's motivating workload — a high-speed tweet stream
// ingested under the Validation strategy (no point lookups on the write
// path) while ad-hoc queries find a user's tweets through a secondary
// index, using Timestamp validation to filter obsolete entries, and a
// background repair keeps the index clean.
//
// This example runs the store in sharded mode with background maintenance:
// four hash partitions ingest batches concurrently through ApplyBatch,
// flushes swap the memtable and return immediately while component builds
// and merges run on two shared maintenance workers, queries fan out to
// every shard and merge, and the stats report per-shard and aggregate
// progress, including the ingest/maintenance lane split and any
// backpressure stalls.
//
// Run with: go run ./examples/socialfeed
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/workload"
	"repro/lsmstore"
)

func main() {
	db, err := lsmstore.Open(lsmstore.Options{
		Strategy: lsmstore.Validation,
		Secondaries: []lsmstore.SecondaryIndex{
			{Name: "user", Extract: workload.UserIDOf},
		},
		FilterExtract: workload.CreationOf,
		MemoryBudget:  512 << 10,
		CacheBytes:    8 << 20,
		PageSize:      32 << 10,
		Seed:          7,
		Shards:        4,
		// Two background workers build disk components and run merges off
		// the write path; each shard compacts independently.
		MaintenanceWorkers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest 30k tweets in batches of 1000; 30% are edits of earlier
	// tweets (Zipf-skewed toward recent ones), which the Validation
	// strategy absorbs without any read. Each batch is grouped by owning
	// shard and the four groups apply concurrently.
	cfg := workload.DefaultConfig(7)
	cfg.UserIDRange = 1000
	cfg.UpdateRatio = 0.30
	cfg.ZipfUpdates = true
	gen := workload.NewGenerator(cfg)
	const (
		n         = 30_000
		batchSize = 1000
	)
	batch := make([]lsmstore.Mutation, 0, batchSize)
	for i := 0; i < n; i++ {
		op := gen.Next()
		batch = append(batch, lsmstore.Mutation{
			Op: lsmstore.OpUpsert, PK: op.Tweet.PK(), Record: op.Tweet.Encode(),
		})
		if len(batch) == batchSize {
			if err := db.ApplyBatch(batch); err != nil {
				log.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := db.ApplyBatch(batch); err != nil {
			log.Fatal(err)
		}
	}
	st := db.Stats()
	fmt.Printf("ingested %d tweets across %d shards: write path saw %s simulated, maintenance lane %s, %d stalls (%d components)\n",
		st.Ingested, st.Shards, st.IngestTime, st.MaintenanceTime,
		st.Counters.WriteStalls, st.PrimaryComponents)
	for i, s := range st.PerShard {
		fmt.Printf("  shard %d: %d tweets, ingest %s, maintenance %s\n",
			i, s.Ingested, s.IngestTime, s.MaintenanceTime)
	}
	// Quiesce the background workers: queries are safe against in-flight
	// maintenance, this just runs the rest of the example against a fully
	// built and merged store. (The stats above are a live snapshot — the
	// component count there varies with worker progress.)
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	// Find every tweet by users 100-105. The secondary index may hold
	// obsolete entries (we never cleaned it on writes); Timestamp
	// validation probes each shard's primary key index to drop them, and
	// the per-shard answers merge in primary-key order.
	res, err := db.SecondaryQuery("user",
		workload.UserKey(100), workload.UserKey(105),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users 100-105 have %d live tweets\n", len(res.Records))
	for _, r := range res.Records[:min(3, len(res.Records))] {
		fmt.Printf("  tweet %x (%d bytes)\n", binary.BigEndian.Uint64(r.PK), len(r.Value))
	}

	// Index-only analytics: just count tweet IDs per user range, no
	// record fetches at all. Limit caps the merged answer.
	ids, err := db.SecondaryQuery("user",
		workload.UserKey(0), workload.UserKey(499),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation, IndexOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users 0-499 own %d tweets (index-only)\n", len(ids.Keys))
	first, err := db.SecondaryQuery("user",
		workload.UserKey(0), workload.UserKey(499),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation, IndexOnly: true, Limit: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first %d of them (by primary key): ok\n", len(first.Keys))

	// Background repair: validate secondary entries against the primary
	// key index and bitmap out the obsolete ones (Section 4.4), shard by
	// shard.
	if err := db.RepairSecondaryIndexes(); err != nil {
		log.Fatal(err)
	}

	// Same query again: identical answer, now cheaper to validate.
	res2, err := db.SecondaryQuery("user",
		workload.UserKey(100), workload.UserKey(105),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation})
	if err != nil {
		log.Fatal(err)
	}
	if len(res2.Records) != len(res.Records) {
		log.Fatalf("repair changed the answer: %d vs %d", len(res2.Records), len(res.Records))
	}
	fmt.Println("post-repair query returns the same answer")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
