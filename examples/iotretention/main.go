// Iotretention: an IoT time-series workload under the Mutable-bitmap
// strategy — devices continuously report readings keyed by device+sequence,
// a range filter on event time accelerates time-window scans, and a
// retention job deletes old readings. The Mutable-bitmap strategy keeps the
// filters tight (deletes flip bitmap bits instead of widening filters), so
// time-window queries stay fast on both recent and old data (Figure 19).
//
// Run with: go run ./examples/iotretention
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/lsmstore"
)

// Reading record: eventTime(8) | deviceID(4) | value(8).
func record(eventTime int64, device uint32, value float64) []byte {
	rec := make([]byte, 20)
	binary.BigEndian.PutUint64(rec, uint64(eventTime))
	binary.BigEndian.PutUint32(rec[8:], device)
	binary.BigEndian.PutUint64(rec[12:], uint64(int64(value*1000)))
	return rec
}

func eventTime(rec []byte) (int64, bool) {
	if len(rec) < 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(rec)), true
}

func device(rec []byte) ([]byte, bool) {
	if len(rec) < 12 {
		return nil, false
	}
	return rec[8:12], true
}

func pk(device uint32, seq uint64) []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint32(b, device)
	binary.BigEndian.PutUint64(b[4:], seq)
	return b
}

func main() {
	db, err := lsmstore.Open(lsmstore.Options{
		Strategy:      lsmstore.MutableBitmap,
		CC:            lsmstore.SideFile,
		Secondaries:   []lsmstore.SecondaryIndex{{Name: "device", Extract: device}},
		FilterExtract: eventTime,
		MemoryBudget:  256 << 10,
		CacheBytes:    8 << 20,
		PageSize:      16 << 10,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 40 devices, 600 readings each, one reading per tick.
	const devices, readings = 40, 600
	tick := int64(0)
	for seq := uint64(0); seq < readings; seq++ {
		for d := uint32(0); d < devices; d++ {
			tick++
			if err := db.Upsert(pk(d, seq), record(tick, d, float64(d)*0.5)); err != nil {
				log.Fatal(err)
			}
		}
	}
	total := int64(devices * readings)
	fmt.Printf("ingested %d readings, simulated %s\n", total, db.Stats().SimulatedTime)

	// Time-window query on recent data: range filters prune every
	// component except the ones covering the last 5% of time.
	recentLo := tick - tick/20
	count := 0
	if err := db.FilterScan(recentLo, tick, func(_, _ []byte) { count++ }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recent window [%d,%d]: %d readings\n", recentLo, tick, count)

	// Retention: delete the oldest 25% of readings (per-key deletes; the
	// Mutable-bitmap strategy flips bits on immutable components through
	// the primary key index, no record reads).
	cutoffSeq := uint64(readings / 4)
	deleted := 0
	for seq := uint64(0); seq < cutoffSeq; seq++ {
		for d := uint32(0); d < devices; d++ {
			ok, err := db.Delete(pk(d, seq))
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				deleted++
			}
		}
	}
	fmt.Printf("retention deleted %d readings\n", deleted)

	// Old-window scan: despite the deletes, filters still prune — the
	// Validation strategy would have to read every newer component here.
	oldHi := tick / 4
	count = 0
	if err := db.FilterScan(0, oldHi, func(_, _ []byte) { count++ }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("old window [0,%d]: %d readings survive retention\n", oldHi, count)

	// Per-device drill-down through the secondary index.
	res, err := db.SecondaryQuery("device", devKey(7), devKey(7),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device 7 has %d live readings\n", len(res.Records))
}

func devKey(d uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, d)
	return b
}
