// Quickstart: open a store, ingest a few user-location records, and query
// them through a secondary index and a range filter.
//
// This walks the paper's running example (Figure 2): a UserLocation dataset
// with UserID as the primary key, a secondary index on Location, and a
// range filter on Time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/lsmstore"
)

// A record is Time(8 bytes, big endian) followed by the Location string.
func record(location string, year int64) []byte {
	rec := make([]byte, 8, 8+len(location))
	binary.BigEndian.PutUint64(rec, uint64(year))
	return append(rec, location...)
}

func location(rec []byte) ([]byte, bool) {
	if len(rec) < 8 {
		return nil, false
	}
	return rec[8:], true
}

func year(rec []byte) (int64, bool) {
	if len(rec) < 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(rec)), true
}

func pk(userID uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, userID)
	return b
}

func main() {
	db, err := lsmstore.Open(lsmstore.Options{
		Strategy:      lsmstore.Eager,
		Secondaries:   []lsmstore.SecondaryIndex{{Name: "location", Extract: location}},
		FilterExtract: year,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Figure 2's initial data.
	must(db.Upsert(pk(101), record("CA", 2015)))
	must(db.Upsert(pk(102), record("CA", 2016)))
	must(db.Upsert(pk(103), record("MA", 2017)))

	// Figure 3's upsert: user 101 moves to NY in 2018.
	must(db.Upsert(pk(101), record("NY", 2018)))

	// Q1: who is in CA? Only user 102 — the Eager strategy cleaned the
	// old (CA, 101) entry with an anti-matter entry.
	res, err := db.SecondaryQuery("location", []byte("CA"), []byte("CA"), lsmstore.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q1: users in CA:")
	for _, r := range res.Records {
		loc, _ := location(r.Value)
		y, _ := year(r.Value)
		fmt.Printf("  user %d: %s since %d\n", binary.BigEndian.Uint64(r.PK), loc, y)
	}

	// Q2: whose last known location predates 2017? The range filter
	// prunes components that cannot contain such records.
	fmt.Println("Q2: records with Time < 2017:")
	err = db.FilterScan(0, 2016, func(key, rec []byte) {
		loc, _ := location(rec)
		y, _ := year(rec)
		fmt.Printf("  user %d: %s, %d\n", binary.BigEndian.Uint64(key), loc, y)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Point read.
	rec, found, err := db.Get(pk(101))
	if err != nil || !found {
		log.Fatal("user 101 missing", err)
	}
	loc, _ := location(rec)
	fmt.Printf("user 101 is now in %s\n", loc)

	st := db.Stats()
	fmt.Printf("stats: %d writes, simulated time %s\n", st.Ingested, st.SimulatedTime)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
