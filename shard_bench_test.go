package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/workload"
	"repro/lsmstore"
)

// shardedIngestOptions is the configuration the sharded ingest benchmarks
// run against: Validation strategy (the paper's best ingestion strategy),
// one secondary index, and a fixed total cache and memory budget that the
// store splits across shards, so every shard count gets the same resources.
func shardedIngestOptions(shards int) lsmstore.Options {
	return lsmstore.Options{
		Strategy:      lsmstore.Validation,
		Secondaries:   []lsmstore.SecondaryIndex{{Name: "user", Extract: workload.UserIDOf}},
		FilterExtract: workload.CreationOf,
		MemoryBudget:  1 << 20,
		CacheBytes:    16 << 20,
		PageSize:      8 << 10,
		Seed:          3,
		Shards:        shards,
	}
}

// ingestBatch generates n tweet upserts (20% updates, Zipf-skewed).
func ingestBatch(n int) []lsmstore.Mutation {
	cfg := workload.DefaultConfig(3)
	cfg.UpdateRatio = 0.20
	cfg.ZipfUpdates = true
	gen := workload.NewGenerator(cfg)
	muts := make([]lsmstore.Mutation, n)
	for i := range muts {
		op := gen.Next()
		muts[i] = lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: op.Tweet.PK(), Record: op.Tweet.Encode()}
	}
	return muts
}

// simulatedTime parses the cost-model clock out of a stats snapshot.
func simulatedTime(tb testing.TB, st lsmstore.Stats) time.Duration {
	d, err := time.ParseDuration(st.SimulatedTime)
	if err != nil {
		tb.Fatalf("bad simulated time %q: %v", st.SimulatedTime, err)
	}
	return d
}

// ingestOnce ingests the batch into a fresh store with the given shard
// count and returns the simulated time of the run (max over shards — they
// progress concurrently on independent devices).
func ingestOnce(tb testing.TB, shards int, batch []lsmstore.Mutation) time.Duration {
	db, err := lsmstore.Open(shardedIngestOptions(shards))
	if err != nil {
		tb.Fatal(err)
	}
	if err := db.ApplyBatch(batch); err != nil {
		tb.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		tb.Fatal(err)
	}
	return simulatedTime(tb, db.Stats())
}

// ingestOnceAsync ingests the batch with background maintenance enabled and
// returns the ingest-lane simulated time at the end of the write phase (the
// time the write path experienced: memtable and log work plus any
// backpressure coupling) together with the total write-stall count.
func ingestOnceAsync(tb testing.TB, shards, workers int, batch []lsmstore.Mutation) (ingest time.Duration, stalls int64) {
	opts := shardedIngestOptions(shards)
	opts.MaintenanceWorkers = workers
	db, err := lsmstore.Open(opts)
	if err != nil {
		tb.Fatal(err)
	}
	if err := db.ApplyBatch(batch); err != nil {
		tb.Fatal(err)
	}
	st := db.Stats()
	ingest, err = time.ParseDuration(st.IngestTime)
	if err != nil {
		tb.Fatalf("bad ingest time %q: %v", st.IngestTime, err)
	}
	if err := db.Flush(); err != nil {
		tb.Fatal(err)
	}
	if err := db.Close(); err != nil {
		tb.Fatal(err)
	}
	return ingest, st.Counters.WriteStalls
}

// BenchmarkShardedIngest sweeps the shard count over the same ApplyBatch
// ingest workload. The headline metric is records per simulated second
// (the paper's methodology: the virtual clock models the storage devices,
// and shards own independent devices); wall time is reported by the
// harness as usual. The maint=N variants enable background maintenance
// with N pool workers and report the ingest-lane time: the virtual time
// the write path experienced while flush builds and merges overlapped on
// the maintenance lane (stall coupling included).
func BenchmarkShardedIngest(b *testing.B) {
	batch := ingestBatch(40_000)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var sim time.Duration
			for i := 0; i < b.N; i++ {
				sim = ingestOnce(b, shards, batch)
			}
			b.ReportMetric(float64(len(batch))/sim.Seconds(), "records/simsec")
			b.ReportMetric(sim.Seconds(), "simsec/run")
		})
	}
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("shards=4/maint=%d", workers), func(b *testing.B) {
			var ingest time.Duration
			var stalls int64
			for i := 0; i < b.N; i++ {
				ingest, stalls = ingestOnceAsync(b, 4, workers, batch)
			}
			b.ReportMetric(float64(len(batch))/ingest.Seconds(), "records/simsec")
			b.ReportMetric(ingest.Seconds(), "simsec/run")
			b.ReportMetric(float64(stalls), "stalls/run")
		})
	}
}

// TestAsyncIngestThroughput pins the background-maintenance acceptance bar:
// with 4 shards and a pool of at least 2 maintenance workers, the write
// path's simulated ingest time must beat the synchronous path by >= 1.5x
// (in practice the gap is close to an order of magnitude — the synchronous
// path charges every flush and merge to the writer).
func TestAsyncIngestThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is not short")
	}
	batch := ingestBatch(30_000)
	syncTime := ingestOnce(t, 4, batch)
	asyncTime, stalls := ingestOnceAsync(t, 4, 2, batch)
	t.Logf("ingest simulated time: sync %v, async %v (%.2fx, %d stalls)",
		syncTime, asyncTime, float64(syncTime)/float64(asyncTime), stalls)
	if float64(syncTime) < 1.5*float64(asyncTime) {
		t.Fatalf("async ingest is only %.2fx of sync, want >= 1.5x (sync=%v async=%v)",
			float64(syncTime)/float64(asyncTime), syncTime, asyncTime)
	}
}

// TestShardedIngestScaling pins the acceptance bar: 4 shards must ingest
// the same batch at least 2x faster (simulated time) than 1 shard.
func TestShardedIngestScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement is not short")
	}
	batch := ingestBatch(30_000)
	t1 := ingestOnce(t, 1, batch)
	t4 := ingestOnce(t, 4, batch)
	t.Logf("ingest simulated time: 1 shard %v, 4 shards %v (%.2fx)", t1, t4, float64(t1)/float64(t4))
	if 2*t4 > t1 {
		t.Fatalf("4-shard ingest is %.2fx of 1-shard, want >= 2x (t1=%v t4=%v)",
			float64(t1)/float64(t4), t1, t4)
	}
}
