// Package memtable implements the in-memory component of an LSM-tree: a
// sorted map from key to the newest entry for that key. Inserts, updates
// and deletes (anti-matter entries, Section 2.1) all go through Put; the
// table keeps exactly one entry per key, the most recent one.
//
// The implementation is a skiplist guarded by a read-write mutex, giving
// concurrent readers and a single writer path, which matches the engine's
// record-level locking discipline.
package memtable

import (
	"math/rand"
	"sync"

	"repro/internal/kv"
)

const maxHeight = 16

type node struct {
	entry kv.Entry
	next  []*node
}

// Table is one memory component. Safe for concurrent use.
type Table struct {
	mu     sync.RWMutex
	head   *node
	height int
	rng    *rand.Rand
	count  int
	bytes  int

	// Component ID bookkeeping (minTS-maxTS of contained entries).
	minTS int64
	maxTS int64

	// Range-filter bookkeeping: minimum/maximum filter-key values observed,
	// maintained by the dataset layer via WidenFilter.
	filterMin int64
	filterMax int64
	hasFilter bool
}

// New creates an empty memory component. The seed keeps skiplist shapes
// deterministic across runs.
func New(seed int64) *Table {
	return &Table{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
		minTS:  -1,
		maxTS:  -1,
	}
}

func (t *Table) randomHeight() int {
	h := 1
	for h < maxHeight && t.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// Put inserts or replaces the entry for e.Key.
func (t *Table) Put(e kv.Entry) {
	e = e.Clone()
	t.mu.Lock()
	defer t.mu.Unlock()

	update := make([]*node, maxHeight)
	x := t.head
	for level := t.height - 1; level >= 0; level-- {
		for x.next[level] != nil && kv.Compare(x.next[level].entry.Key, e.Key) < 0 {
			x = x.next[level]
		}
		update[level] = x
	}
	if nxt := x.next[0]; nxt != nil && kv.Compare(nxt.entry.Key, e.Key) == 0 {
		t.bytes += e.Size() - nxt.entry.Size()
		nxt.entry = e
	} else {
		h := t.randomHeight()
		if h > t.height {
			for level := t.height; level < h; level++ {
				update[level] = t.head
			}
			t.height = h
		}
		n := &node{entry: e, next: make([]*node, h)}
		for level := 0; level < h; level++ {
			n.next[level] = update[level].next[level]
			update[level].next[level] = n
		}
		t.count++
		t.bytes += e.Size()
	}
	if t.minTS < 0 || e.TS < t.minTS {
		t.minTS = e.TS
	}
	if e.TS > t.maxTS {
		t.maxTS = e.TS
	}
}

// Get returns the entry for key (which may be anti-matter) if present.
func (t *Table) Get(key []byte) (kv.Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	x := t.head
	for level := t.height - 1; level >= 0; level-- {
		for x.next[level] != nil && kv.Compare(x.next[level].entry.Key, key) < 0 {
			x = x.next[level]
		}
	}
	if nxt := x.next[0]; nxt != nil && kv.Compare(nxt.entry.Key, key) == 0 {
		return nxt.entry, true
	}
	return kv.Entry{}, false
}

// Len returns the number of distinct keys.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Bytes returns the approximate memory footprint of the entries, used for
// the dataset-wide memory-component budget (Section 3).
func (t *Table) Bytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytes
}

// ID returns the component ID (minTS, maxTS) of the contained entries.
// Both are -1 while the table is empty.
func (t *Table) ID() (minTS, maxTS int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.minTS, t.maxTS
}

// WidenFilter extends the component's range filter to cover v. The Eager
// strategy widens with both old and new record values; the Validation and
// Mutable-bitmap strategies widen with the new value only (Sections 3-5).
func (t *Table) WidenFilter(v int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.hasFilter {
		t.filterMin, t.filterMax, t.hasFilter = v, v, true
		return
	}
	if v < t.filterMin {
		t.filterMin = v
	}
	if v > t.filterMax {
		t.filterMax = v
	}
}

// Filter returns the component's range filter bounds; ok is false when no
// filter value was ever recorded.
func (t *Table) Filter() (min, max int64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.filterMin, t.filterMax, t.hasFilter
}

// Iterator walks entries in ascending key order. It holds no lock; it
// snapshots next-pointers as it goes, which is safe because nodes are never
// removed while a table is live and flush freezes the table anyway.
type Iterator struct {
	t *Table
	x *node
	// bounds: lo inclusive, hi exclusive (nil = unbounded)
	hi []byte
}

// NewIterator returns an iterator over [lo, hi); nil bounds are unbounded.
func (t *Table) NewIterator(lo, hi []byte) *Iterator {
	t.mu.RLock()
	defer t.mu.RUnlock()
	x := t.head
	if lo != nil {
		for level := t.height - 1; level >= 0; level-- {
			for x.next[level] != nil && kv.Compare(x.next[level].entry.Key, lo) < 0 {
				x = x.next[level]
			}
		}
	}
	return &Iterator{t: t, x: x, hi: hi}
}

// Next returns the next entry; ok is false at the end.
func (it *Iterator) Next() (kv.Entry, bool) {
	it.t.mu.RLock()
	defer it.t.mu.RUnlock()
	nxt := it.x.next[0]
	if nxt == nil {
		return kv.Entry{}, false
	}
	if it.hi != nil && kv.Compare(nxt.entry.Key, it.hi) >= 0 {
		return kv.Entry{}, false
	}
	it.x = nxt
	return nxt.entry, true
}
