package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/kv"
)

func TestPutGetReplace(t *testing.T) {
	m := New(1)
	m.Put(kv.Entry{Key: []byte("a"), Value: []byte("1"), TS: 1})
	m.Put(kv.Entry{Key: []byte("b"), Value: []byte("2"), TS: 2})
	m.Put(kv.Entry{Key: []byte("a"), Value: []byte("3"), TS: 3})

	e, ok := m.Get([]byte("a"))
	if !ok || string(e.Value) != "3" || e.TS != 3 {
		t.Fatalf("Get(a) = %v, %v", e, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (replace must not duplicate)", m.Len())
	}
	if _, ok := m.Get([]byte("c")); ok {
		t.Fatal("Get(c) should miss")
	}
}

func TestAntiMatterStored(t *testing.T) {
	m := New(1)
	m.Put(kv.Entry{Key: []byte("k"), Value: []byte("v"), TS: 1})
	m.Put(kv.Entry{Key: []byte("k"), TS: 2, Anti: true})
	e, ok := m.Get([]byte("k"))
	if !ok || !e.Anti || e.TS != 2 {
		t.Fatalf("anti-matter not stored: %v %v", e, ok)
	}
}

func TestIteratorSortedAndBounded(t *testing.T) {
	m := New(2)
	rng := rand.New(rand.NewSource(3))
	model := map[string]string{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("%06d", rng.Intn(10000))
		v := fmt.Sprintf("v%d", i)
		model[k] = v
		m.Put(kv.Entry{Key: []byte(k), Value: []byte(v), TS: int64(i)})
	}
	var keys []string
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	it := m.NewIterator(nil, nil)
	for i := 0; ; i++ {
		e, ok := it.Next()
		if !ok {
			if i != len(keys) {
				t.Fatalf("iterator stopped at %d, want %d", i, len(keys))
			}
			break
		}
		if string(e.Key) != keys[i] || string(e.Value) != model[keys[i]] {
			t.Fatalf("entry %d: got %q", i, e.Key)
		}
	}

	lo, hi := []byte("002000"), []byte("003000")
	it2 := m.NewIterator(lo, hi)
	for {
		e, ok := it2.Next()
		if !ok {
			break
		}
		if bytes.Compare(e.Key, lo) < 0 || bytes.Compare(e.Key, hi) >= 0 {
			t.Fatalf("bounded iterator leaked %q", e.Key)
		}
	}
}

func TestIDTracksTimestamps(t *testing.T) {
	m := New(1)
	if minTS, maxTS := m.ID(); minTS != -1 || maxTS != -1 {
		t.Fatal("empty table should have ID (-1,-1)")
	}
	m.Put(kv.Entry{Key: []byte("a"), TS: 10})
	m.Put(kv.Entry{Key: []byte("b"), TS: 5})
	m.Put(kv.Entry{Key: []byte("c"), TS: 20})
	if minTS, maxTS := m.ID(); minTS != 5 || maxTS != 20 {
		t.Fatalf("ID = (%d,%d), want (5,20)", minTS, maxTS)
	}
}

func TestFilterWidening(t *testing.T) {
	m := New(1)
	if _, _, ok := m.Filter(); ok {
		t.Fatal("fresh table should have no filter")
	}
	m.WidenFilter(2015)
	m.WidenFilter(2018)
	m.WidenFilter(2016)
	min, max, ok := m.Filter()
	if !ok || min != 2015 || max != 2018 {
		t.Fatalf("Filter = (%d,%d,%v)", min, max, ok)
	}
}

func TestBytesAccounting(t *testing.T) {
	m := New(1)
	m.Put(kv.Entry{Key: []byte("k1"), Value: make([]byte, 100)})
	b1 := m.Bytes()
	if b1 <= 0 {
		t.Fatal("Bytes should grow")
	}
	m.Put(kv.Entry{Key: []byte("k1"), Value: make([]byte, 10)})
	if m.Bytes() >= b1 {
		t.Fatalf("replacing with smaller value should shrink: %d -> %d", b1, m.Bytes())
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	m := New(9)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("%05d", rng.Intn(2000))
				m.Get([]byte(k))
				it := m.NewIterator([]byte(k), nil)
				for i := 0; i < 5; i++ {
					if _, ok := it.Next(); !ok {
						break
					}
				}
			}
		}(int64(r))
	}
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("%05d", i%2000)
		m.Put(kv.Entry{Key: []byte(k), Value: []byte(fmt.Sprint(i)), TS: int64(i)})
	}
	close(stop)
	wg.Wait()
	if m.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", m.Len())
	}
}

func TestAgainstModelRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := New(5)
	model := map[string]kv.Entry{}
	for i := 0; i < 20000; i++ {
		k := []byte(fmt.Sprintf("%04d", rng.Intn(3000)))
		e := kv.Entry{Key: k, TS: int64(i), Anti: rng.Intn(4) == 0}
		if !e.Anti {
			e.Value = []byte(fmt.Sprint(rng.Intn(1000)))
		}
		m.Put(e)
		model[string(k)] = e
	}
	for k, want := range model {
		got, ok := m.Get([]byte(k))
		if !ok || got.TS != want.TS || got.Anti != want.Anti || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("key %s: got %v want %v", k, got, want)
		}
	}
	if m.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(model))
	}
}
