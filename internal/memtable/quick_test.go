package memtable

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/kv"
)

// opSpec is a quick-generatable operation description.
type opSpec struct {
	Key   uint16
	Value uint8
	Anti  bool
}

// TestQuickMatchesSortedMap: after any operation sequence, iteration yields
// exactly the model's entries in ascending key order, and Get agrees on
// every key.
func TestQuickMatchesSortedMap(t *testing.T) {
	f := func(ops []opSpec) bool {
		m := New(3)
		model := map[uint16]opSpec{}
		for i, op := range ops {
			e := kv.Entry{
				Key:  []byte{byte(op.Key >> 8), byte(op.Key)},
				TS:   int64(i),
				Anti: op.Anti,
			}
			if !op.Anti {
				e.Value = []byte{op.Value}
			}
			m.Put(e)
			model[op.Key] = op
		}
		if m.Len() != len(model) {
			return false
		}
		// Iteration order and contents.
		keys := make([]uint16, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		it := m.NewIterator(nil, nil)
		for _, k := range keys {
			e, ok := it.Next()
			if !ok {
				return false
			}
			want := model[k]
			if kv.DecodeUint64(append(make([]byte, 6), e.Key...)) != uint64(k) {
				return false
			}
			if e.Anti != want.Anti {
				return false
			}
			if !want.Anti && !bytes.Equal(e.Value, []byte{want.Value}) {
				return false
			}
		}
		if _, ok := it.Next(); ok {
			return false
		}
		// Point gets.
		for k, want := range model {
			e, ok := m.Get([]byte{byte(k >> 8), byte(k)})
			if !ok || e.Anti != want.Anti {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickBoundedIteration: bounded iterators never leak keys outside
// [lo, hi).
func TestQuickBoundedIteration(t *testing.T) {
	f := func(keys []uint16, lo, hi uint16) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		m := New(5)
		inRange := 0
		seen := map[uint16]bool{}
		for i, k := range keys {
			m.Put(kv.Entry{Key: []byte{byte(k >> 8), byte(k)}, TS: int64(i)})
			if !seen[k] {
				seen[k] = true
				if k >= lo && k < hi {
					inRange++
				}
			}
		}
		it := m.NewIterator([]byte{byte(lo >> 8), byte(lo)}, []byte{byte(hi >> 8), byte(hi)})
		n := 0
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			k := uint16(e.Key[0])<<8 | uint16(e.Key[1])
			if k < lo || k >= hi {
				return false
			}
			n++
		}
		return n == inRange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
