package shard

import (
	"errors"
	"sort"

	"repro/internal/kv"
	"repro/internal/query"
)

// ErrUnknownIndex reports a fan-out query against an undeclared secondary
// index.
var ErrUnknownIndex = errors.New("shard: unknown secondary index")

// SecondaryQuery fans a secondary-index range query out to every shard
// with bounded worker parallelism and merges the answers. Because shards
// are independent hash partitions, a primary key appears in exactly one
// shard's answer; the merged records (or keys, for index-only queries) are
// returned in primary-key order — a deterministic total order regardless
// of shard interleaving — and truncated to limit when limit > 0. Each
// shard query is itself capped at limit candidates' worth of work only at
// the merge (the underlying single-partition query has no early-exit), so
// limit bounds the answer size, not the scan cost.
func (r *Router) SecondaryQuery(index string, lo, hi []byte, opts query.SecondaryQueryOptions, limit int) (*query.SecondaryResult, error) {
	perShard := make([]*query.SecondaryResult, len(r.parts))
	err := r.fanOut(func(i int, p *Partition) error {
		si := p.DS.Secondary(index)
		if si == nil {
			return ErrUnknownIndex
		}
		res, err := query.SecondaryRange(p.DS, si, lo, hi, opts)
		if err != nil {
			return err
		}
		perShard[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := &query.SecondaryResult{}
	for _, res := range perShard {
		merged.Records = append(merged.Records, res.Records...)
		merged.Keys = append(merged.Keys, res.Keys...)
	}
	sort.Slice(merged.Records, func(i, j int) bool {
		return kv.Compare(merged.Records[i].Key, merged.Records[j].Key) < 0
	})
	sort.Slice(merged.Keys, func(i, j int) bool {
		return kv.Compare(merged.Keys[i], merged.Keys[j]) < 0
	})
	if limit > 0 {
		if len(merged.Records) > limit {
			merged.Records = merged.Records[:limit]
		}
		if len(merged.Keys) > limit {
			merged.Keys = merged.Keys[:limit]
		}
	}
	return merged, nil
}

// FilterScan runs the primary-index range-filter scan on every shard
// concurrently, then emits the union in primary-key order. emit is always
// called from the caller's goroutine.
func (r *Router) FilterScan(lo, hi int64, emit func(kv.Entry)) error {
	perShard := make([][]kv.Entry, len(r.parts))
	err := r.fanOut(func(i int, p *Partition) error {
		return query.FilterScan(p.DS, lo, hi, func(e kv.Entry) {
			perShard[i] = append(perShard[i], e.Clone())
		})
	})
	if err != nil {
		return err
	}
	var all []kv.Entry
	for _, entries := range perShard {
		all = append(all, entries...)
	}
	sort.Slice(all, func(i, j int) bool { return kv.Compare(all[i].Key, all[j].Key) < 0 })
	for _, e := range all {
		emit(e)
	}
	return nil
}
