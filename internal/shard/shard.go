// Package shard implements a hash-partitioned router over N independent
// dataset partitions. The paper evaluates one partition at a time
// (Section 6.1) and notes that scaling across partitions is near-linear
// because both ingestion and queries are partition-local; this package
// supplies that scaling layer: primary-key operations route to one
// partition by PK hash, batches apply to all partitions concurrently, and
// secondary-index queries fan out to every partition with bounded worker
// parallelism and merge their answers.
//
// Each partition is a self-contained core.Dataset with its own simulated
// disk, buffer cache, write-ahead log, and virtual clock, modelling one
// storage node (or one spindle of a multi-disk node). Because partitions
// run concurrently, the router's aggregate simulated time is the maximum
// over partitions, while counters and byte totals are sums.
package shard

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// Partition is one shard: a dataset plus the storage handle and metrics
// environment it was opened against.
type Partition struct {
	DS    *core.Dataset
	Store *storage.Store
	Env   *metrics.Env
}

// Router fronts N partitions behind a single-dataset-shaped API.
type Router struct {
	parts   []*Partition
	workers int
	// invalidate, when set, is called with every mutated primary key after
	// its shard applied the mutation and before the batch returns (i.e.
	// before any caller can observe the ack). See SetInvalidator.
	invalidate func(pk []byte)
}

// NewRouter builds a router over the given partitions. workers bounds the
// goroutines used by fan-out operations (queries, batch applies, flushes);
// values < 1 mean one worker per partition.
func NewRouter(parts []*Partition, workers int) (*Router, error) {
	if len(parts) == 0 {
		return nil, errors.New("shard: at least one partition is required")
	}
	if workers < 1 || workers > len(parts) {
		workers = len(parts)
	}
	return &Router{parts: parts, workers: workers}, nil
}

// SetInvalidator registers the read-cache invalidation hook: fn runs for
// every mutated primary key once its shard has applied the mutation,
// strictly before ApplyBatch/ApplyBatchResults return. It runs even when
// the shard reports an error (a failed covering fsync leaves the outcome
// uncertain, and an empty cache entry is always safe where a stale one is
// not). Must be set before the router serves traffic; it is not
// synchronized against in-flight batches.
func (r *Router) SetInvalidator(fn func(pk []byte)) { r.invalidate = fn }

// NumShards returns the partition count.
func (r *Router) NumShards() int { return len(r.parts) }

// Partition returns shard i.
func (r *Router) Partition(i int) *Partition { return r.parts[i] }

// Partitions returns all shards in order.
func (r *Router) Partitions() []*Partition { return r.parts }

// ShardOf returns the shard index owning pk. The hash (FNV-1a) depends
// only on the key bytes and the shard count, so placement is deterministic
// across process restarts and router reopens.
func (r *Router) ShardOf(pk []byte) int { return ShardOf(pk, len(r.parts)) }

// DatasetFor returns the dataset owning pk.
func (r *Router) DatasetFor(pk []byte) *core.Dataset { return r.parts[ShardOf(pk, len(r.parts))].DS }

// ShardOf hashes pk (FNV-1a, 64-bit) onto [0, n).
func ShardOf(pk []byte, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range pk {
		h ^= uint64(b)
		h *= prime64
	}
	if n <= 1 {
		return 0
	}
	return int(h % uint64(n))
}

// Op is a batched mutation's operation.
type Op uint8

// Batched operations.
const (
	// OpUpsert inserts or replaces the record under PK.
	OpUpsert Op = iota
	// OpInsert adds the record only when PK is absent (duplicates are
	// counted as ignored, matching Dataset.Insert).
	OpInsert
	// OpDelete removes the record under PK (missing keys are ignored).
	OpDelete
)

// Mutation is one write in an ApplyBatch.
type Mutation struct {
	Op     Op
	PK     []byte
	Record []byte // unused by OpDelete
}

// ApplyBatch groups the mutations by owning shard and applies each group
// concurrently, one worker per shard with pending work (bounded by the
// router's worker limit). Within a shard, mutations apply in input order,
// so writes to the same key keep their program order; across shards there
// is no ordering, matching the independence of hash partitions. The first
// error in a shard stops that shard's remaining mutations; all shard
// errors are joined.
func (r *Router) ApplyBatch(muts []Mutation) error {
	_, err := r.applyBatch(muts, nil)
	return err
}

// ApplyBatchResults is ApplyBatch plus a per-mutation report: applied[i]
// tells whether mutation i took effect (upserts always do; duplicate
// inserts and deletes of missing keys report false, matching the ignored
// counting of Insert and Delete). Entries past a shard's first error are
// left false.
func (r *Router) ApplyBatchResults(muts []Mutation) ([]bool, error) {
	return r.applyBatch(muts, make([]bool, len(muts)))
}

func (r *Router) applyBatch(muts []Mutation, applied []bool) ([]bool, error) {
	if len(muts) == 0 {
		return applied, nil
	}
	groups := make([][]Mutation, len(r.parts))
	var indexes [][]int // original positions per shard, for result scatter
	if applied != nil {
		indexes = make([][]int, len(r.parts))
	}
	if len(r.parts) == 1 {
		groups[0] = muts
	} else {
		// Hash each key once, then size the groups so appends don't
		// reallocate.
		owners := make([]int, len(muts))
		counts := make([]int, len(r.parts))
		for i := range muts {
			s := ShardOf(muts[i].PK, len(r.parts))
			owners[i] = s
			counts[s]++
		}
		for s, n := range counts {
			if n > 0 {
				groups[s] = make([]Mutation, 0, n)
				if applied != nil {
					indexes[s] = make([]int, 0, n)
				}
			}
		}
		for i := range muts {
			groups[owners[i]] = append(groups[owners[i]], muts[i])
			if applied != nil {
				indexes[owners[i]] = append(indexes[owners[i]], i)
			}
		}
	}
	err := r.fanOut(func(s int, p *Partition) error {
		err := r.applyGroup(s, p, groups[s], indexes, applied)
		// Invalidate every key the group touched, success or error —
		// after an errored batch the on-disk outcome per key is
		// uncertain, and dropping a cache entry is always safe.
		if r.invalidate != nil {
			for i := range groups[s] {
				r.invalidate(groups[s][i].PK)
			}
		}
		return err
	})
	return applied, err
}

// applyGroup applies one shard's slice of a batch and scatters the
// per-mutation results back to their original batch positions.
func (r *Router) applyGroup(s int, p *Partition, group []Mutation, indexes [][]int, applied []bool) error {
	if applied == nil {
		return ApplyMutationsResults(p.DS, group, nil)
	}
	if len(r.parts) == 1 {
		return ApplyMutationsResults(p.DS, group, applied)
	}
	got := make([]bool, len(group))
	err := ApplyMutationsResults(p.DS, group, got)
	// Shards write disjoint index sets, so the scatter is race-free.
	for j, ok := range got {
		applied[indexes[s][j]] = ok
	}
	return err
}

// ApplyMutations applies the mutations to one dataset sequentially, in
// order, stopping at the first error. It is the per-shard (and unsharded)
// half of ApplyBatch.
func ApplyMutations(ds *core.Dataset, muts []Mutation) error {
	return ApplyMutationsResults(ds, muts, nil)
}

// ApplyMutationsResults applies the mutations sequentially and, when
// applied is non-nil (it must then be at least len(muts) long), records
// whether each mutation took effect: upserts always do, duplicate inserts
// and deletes of missing keys do not. It stops at the first error, leaving
// later entries false.
//
// On a group-commit store the batch defers every mutation's commit fsync
// into one covering group fsync at the end — one fsync per batch, not per
// mutation. If that covering fsync fails, no write in the batch is
// GUARANTEED durable: every applied entry is reset to false and the fsync
// error is returned, so no caller acknowledges a write the disk may not
// have accepted. The report is conservative, not exact — a mid-batch
// flush can have installed some of the batch's writes in durable
// components before the WAL fsync failed, so an applied=false entry in an
// errored batch means "retry safely", never "certainly absent" (the same
// contract the server's write coalescer documents for partial batch
// errors).
func ApplyMutationsResults(ds *core.Dataset, muts []Mutation, applied []bool) error {
	b := ds.BeginCommitBatch()
	var firstErr error
	for i, m := range muts {
		var (
			ok  = true
			err error
		)
		switch m.Op {
		case OpUpsert:
			err = ds.UpsertBatched(m.PK, m.Record, b)
		case OpInsert:
			ok, err = ds.InsertBatched(m.PK, m.Record, b)
		case OpDelete:
			ok, err = ds.DeleteBatched(m.PK, b)
		default:
			err = fmt.Errorf("shard: unknown mutation op %d", m.Op)
		}
		if err != nil {
			firstErr = err
			break
		}
		if applied != nil {
			applied[i] = ok
		}
	}
	// The covering fsync must run even after a mid-batch error: the
	// mutations before the failure were reported applied and still need
	// their durability.
	if err := ds.WaitCommitBatch(b); err != nil {
		if applied != nil {
			for i := range applied {
				applied[i] = false
			}
		}
		if firstErr == nil {
			return err
		}
		return errors.Join(firstErr, err)
	}
	return firstErr
}

// fanOut runs fn once per partition on up to r.workers goroutines and
// joins the per-shard errors.
func (r *Router) fanOut(fn func(i int, p *Partition) error) error {
	if len(r.parts) == 1 || r.workers == 1 {
		var errs []error
		for i, p := range r.parts {
			if err := fn(i, p); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	sem := make(chan struct{}, r.workers)
	errs := make([]error, len(r.parts))
	var wg sync.WaitGroup
	for i := range r.parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i, r.parts[i])
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ForEach runs fn on every partition's dataset with bounded parallelism,
// joining errors. It backs the lifecycle operations (flush, recovery,
// repair) that apply uniformly to all shards.
func (r *Router) ForEach(fn func(ds *core.Dataset) error) error {
	return r.fanOut(func(_ int, p *Partition) error { return fn(p.DS) })
}

// FlushAll flushes every shard.
func (r *Router) FlushAll() error {
	return r.ForEach(func(ds *core.Dataset) error { return ds.FlushAll() })
}

// Crash fails every shard: all memory components are lost, disk components
// survive (the cluster-wide power failure case).
func (r *Router) Crash() {
	_ = r.ForEach(func(ds *core.Dataset) error { ds.Crash(); return nil })
}

// Recover replays every shard's write-ahead log.
func (r *Router) Recover() error {
	return r.ForEach(func(ds *core.Dataset) error { return ds.Recover() })
}

// Stats is one shard's statistics snapshot, or an aggregate over shards.
type Stats struct {
	// SimulatedTime is the shard's elapsed virtual time: the maximum of
	// the ingest lane and the background maintenance lane (which overlap);
	// in an aggregate it is the maximum over shards (they run
	// concurrently).
	SimulatedTime int64 // nanoseconds
	// IngestTime is the ingest lane's virtual time: the time the write
	// path experienced. It equals SimulatedTime on a synchronous shard;
	// with background maintenance it only absorbs maintenance time at
	// backpressure stalls and drains. Max in an aggregate.
	IngestTime int64 // nanoseconds
	// MaintTime is the background maintenance lane's virtual time (zero
	// without background maintenance); max in an aggregate.
	MaintTime int64 // nanoseconds
	// Ingested and Ignored count accepted and ignored writes.
	Ingested, Ignored int64
	// PrimaryComponents is the primary index's disk-component count
	// (summed in an aggregate).
	PrimaryComponents int
	// DiskBytesWritten is total bytes flushed/merged.
	DiskBytesWritten int64
	// PendingFlushBatches and FrozenMemtables are maintenance gauges:
	// frozen batches queued for flush and frozen memtables not yet
	// installed (both zero on a synchronous shard; summed in an
	// aggregate).
	PendingFlushBatches int
	FrozenMemtables     int
	// Counters snapshots the low-level event counters.
	Counters metrics.Snapshot
}

// StatsPerShard snapshots every shard's statistics, in shard order.
func (r *Router) StatsPerShard() []Stats {
	out := make([]Stats, len(r.parts))
	for i, p := range r.parts {
		ingest := int64(p.Env.Clock.Now())
		mnt := int64(p.DS.MaintSimTime())
		sim := ingest
		if mnt > sim {
			sim = mnt
		}
		pending, frozen := p.DS.MaintGauges()
		out[i] = Stats{
			SimulatedTime:       sim,
			IngestTime:          ingest,
			MaintTime:           mnt,
			Ingested:            p.DS.IngestedCount(),
			Ignored:             p.DS.IgnoredCount(),
			PrimaryComponents:   p.DS.Primary().NumDiskComponents(),
			DiskBytesWritten:    p.Store.Device().BytesWritten(),
			PendingFlushBatches: pending,
			FrozenMemtables:     frozen,
			Counters:            p.Env.Counters.Snapshot(),
		}
	}
	return out
}

// Aggregate folds per-shard stats into cluster totals: sums everywhere
// except SimulatedTime, which is the maximum because shards progress
// concurrently on independent devices.
func Aggregate(per []Stats) Stats {
	var agg Stats
	for _, s := range per {
		if s.SimulatedTime > agg.SimulatedTime {
			agg.SimulatedTime = s.SimulatedTime
		}
		if s.IngestTime > agg.IngestTime {
			agg.IngestTime = s.IngestTime
		}
		if s.MaintTime > agg.MaintTime {
			agg.MaintTime = s.MaintTime
		}
		agg.Ingested += s.Ingested
		agg.Ignored += s.Ignored
		agg.PrimaryComponents += s.PrimaryComponents
		agg.DiskBytesWritten += s.DiskBytesWritten
		agg.PendingFlushBatches += s.PendingFlushBatches
		agg.FrozenMemtables += s.FrozenMemtables
		agg.Counters = agg.Counters.Add(s.Counters)
	}
	return agg
}
