package shard

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/workload"
)

func newTestRouter(t *testing.T, n, workers int) *Router {
	t.Helper()
	parts := make([]*Partition, n)
	for i := range parts {
		env := metrics.NewEnv()
		store := storage.NewStore(storage.NewDisk(storage.ScaledHDD(4<<10), env), 2<<20, env)
		ds, err := core.Open(core.Config{
			Store:        store,
			Strategy:     core.Validation,
			Secondaries:  []core.SecondarySpec{{Name: "user", Extract: workload.UserIDOf}},
			MemoryBudget: 32 << 10,
			UsePKIndex:   true,
			Policy:       lsm.NewTiering(0),
			BloomFPR:     0.01,
			Seed:         int64(i)*101 + 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = &Partition{DS: ds, Store: store, Env: env}
	}
	r, err := NewRouter(parts, workers)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func pk(id uint64) []byte { return binary.BigEndian.AppendUint64(nil, id) }

func TestShardOfDeterministicAndSpread(t *testing.T) {
	const n = 8
	hits := make([]int, n)
	for id := uint64(0); id < 4096; id++ {
		s := ShardOf(pk(id), n)
		if s < 0 || s >= n {
			t.Fatalf("shard %d out of range", s)
		}
		if again := ShardOf(pk(id), n); again != s {
			t.Fatalf("ShardOf not deterministic: %d vs %d", s, again)
		}
		hits[s]++
	}
	for s, h := range hits {
		// A uniform hash puts ~512 of 4096 keys on each of 8 shards; accept
		// a generous band to stay robust to the fixed hash function.
		if h < 256 || h > 1024 {
			t.Fatalf("shard %d got %d of 4096 keys; hash badly skewed", s, h)
		}
	}
	if ShardOf(pk(99), 1) != 0 {
		t.Fatal("single shard must own everything")
	}
}

func TestApplyBatchRoutingAndOrder(t *testing.T) {
	const shards = 3
	r := newTestRouter(t, shards, 0)
	var muts []Mutation
	const n = 500
	for id := uint64(1); id <= n; id++ {
		rec := workload.Tweet{ID: id, UserID: uint32(id % 10), Creation: int64(id), Message: []byte("v1")}.Encode()
		muts = append(muts, Mutation{Op: OpInsert, PK: pk(id), Record: rec})
	}
	// Same-key program order: a later upsert then delete of key 1 must win.
	rec2 := workload.Tweet{ID: 1, UserID: 3, Creation: 600, Message: []byte("v2")}.Encode()
	muts = append(muts, Mutation{Op: OpUpsert, PK: pk(1), Record: rec2})
	muts = append(muts, Mutation{Op: OpDelete, PK: pk(2)})
	if err := r.ApplyBatch(muts); err != nil {
		t.Fatal(err)
	}

	// Every key lives on exactly the shard the hash names.
	for id := uint64(1); id <= n; id++ {
		want := ShardOf(pk(id), shards)
		for s := 0; s < shards; s++ {
			_, found, err := r.Partition(s).DS.Primary().Get(pk(id))
			if err != nil {
				t.Fatal(err)
			}
			if id == 2 {
				if found {
					t.Fatalf("deleted key 2 visible on shard %d", s)
				}
				continue
			}
			if found != (s == want) {
				t.Fatalf("key %d on shard %d: found=%v want shard %d", id, s, found, want)
			}
		}
	}
	e, found, err := r.DatasetFor(pk(1)).Primary().Get(pk(1))
	if err != nil || !found {
		t.Fatal("key 1 missing after upsert", err)
	}
	if u, _ := workload.UserIDOf(e.Value); string(u) != string(workload.UserKey(3)) {
		t.Fatal("same-key mutations applied out of order")
	}
}

func TestAggregateStats(t *testing.T) {
	per := []Stats{
		{SimulatedTime: 100, Ingested: 5, Ignored: 1, PrimaryComponents: 2, DiskBytesWritten: 10,
			Counters: metrics.Snapshot{RandomReads: 3}},
		{SimulatedTime: 250, Ingested: 7, Ignored: 0, PrimaryComponents: 1, DiskBytesWritten: 30,
			Counters: metrics.Snapshot{RandomReads: 4}},
	}
	agg := Aggregate(per)
	if agg.SimulatedTime != 250 {
		t.Fatalf("SimulatedTime must be the max, got %d", agg.SimulatedTime)
	}
	if agg.Ingested != 12 || agg.Ignored != 1 || agg.PrimaryComponents != 3 || agg.DiskBytesWritten != 40 {
		t.Fatalf("bad sums: %+v", agg)
	}
	if agg.Counters.RandomReads != 7 {
		t.Fatalf("counters not summed: %+v", agg.Counters)
	}
}

func TestRouterRejectsEmpty(t *testing.T) {
	if _, err := NewRouter(nil, 0); err == nil {
		t.Fatal("empty router accepted")
	}
}

func TestFanOutWorkerBounds(t *testing.T) {
	// workers > shards and workers < 1 both clamp; the batch still applies.
	for _, workers := range []int{-1, 1, 2, 99} {
		r := newTestRouter(t, 4, workers)
		var muts []Mutation
		for id := uint64(1); id <= 64; id++ {
			rec := workload.Tweet{ID: id, UserID: 1, Creation: int64(id), Message: []byte("m")}.Encode()
			muts = append(muts, Mutation{Op: OpUpsert, PK: pk(id), Record: rec})
		}
		if err := r.ApplyBatch(muts); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var total int64
		for _, s := range r.StatsPerShard() {
			total += s.Ingested
		}
		if total != 64 {
			t.Fatalf("workers=%d: ingested %d of 64", workers, total)
		}
	}
}

func TestApplyBatchUnknownOp(t *testing.T) {
	r := newTestRouter(t, 2, 0)
	err := r.ApplyBatch([]Mutation{{Op: Op(42), PK: pk(1)}})
	if err == nil {
		t.Fatal("unknown op accepted")
	}
	if fmt.Sprint(err) == "" {
		t.Fatal("empty error")
	}
}
