// Package lockio implements the lsmlint analyzer that forbids blocking
// operations while a configured hot mutex is held.
//
// PR 5 (group-commit WAL) made a latency invariant load-bearing: the
// filedev device mutex must never be held across a WAL fsync, or the next
// commit group's appends serialize behind the in-flight fsync and group
// commit degenerates to per-record commit. The same discipline applies to
// wal.Log's mutex around sink appends. lockio encodes the rule: inside a
// function that holds one of the configured mutexes, no blocking operation
// may be reached — directly or through a same-package call chain.
//
// Blocking operations are: (*os.File).Sync, any net package I/O, channel
// sends/receives (including range-over-channel and select without a
// default), time.Sleep, (*sync.WaitGroup).Wait, and the configured extras
// (wal.Sink.Append, wal.GroupCommitter.Wait by default).
//
// The analysis is intentionally intra-package: call summaries propagate
// through static calls within the package under analysis, branch state is
// tracked linearly (a lock released on every path before the blocking
// call is not flagged), and goroutine/function-literal bodies are skipped
// — a closure does not run under the caller's critical section. Justified
// exceptions carry //lsm:lockio-ok <reason> on the flagged line, the line
// above, or the enclosing function's doc comment.
package lockio

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

const directive = "lockio-ok"

// Analyzer is the lockio pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc:  "report blocking operations (fsync, net I/O, channel ops, time.Sleep) reached while a configured hot mutex is held",
	Run:  run,
}

var (
	mutexList    string
	blockingList string
)

func init() {
	Analyzer.Flags.StringVar(&mutexList, "mutexes",
		"repro/internal/storage/filedev.Device.mu,repro/internal/wal.Log.mu,repro/internal/readcache.segment.mu,repro/internal/obs.SlowLog.mu,repro/internal/obs.Journal.mu,repro/internal/admission.Controller.mu,repro/internal/admission.Bucket.mu,repro/internal/admission.Governor.mu",
		"comma-separated pkgpath.Type.field mutexes the invariant protects")
	Analyzer.Flags.StringVar(&blockingList, "blocking",
		"repro/internal/wal.Sink.Append,repro/internal/wal.GroupCommitter.Wait",
		"comma-separated pkgpath.Type.Method (or pkgpath.Func) treated as blocking, besides the built-ins")
}

// builtinBlocking maps normalized callee IDs to a human description.
var builtinBlocking = map[string]string{
	"os.File.Sync":        "fsync via (*os.File).Sync",
	"time.Sleep":          "time.Sleep",
	"sync.WaitGroup.Wait": "(*sync.WaitGroup).Wait",
}

func run(pass *analysis.Pass) (any, error) {
	pass.CheckDirectives(directive)
	mutexes := splitList(mutexList)
	extra := make(map[string]bool)
	for _, b := range splitList(blockingList) {
		extra[b] = true
	}

	s := &state{
		pass:    pass,
		mutexes: mutexes,
		extra:   extra,
		direct:  make(map[*types.Func]*site),
		calls:   make(map[*types.Func][]*types.Func),
		decls:   make(map[*types.Func]*ast.FuncDecl),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				s.decls[fn] = fd
			}
		}
	}
	s.summarize()
	for _, fd := range s.decls {
		w := &walker{state: s, held: make(map[string]token.Pos)}
		w.stmts(fd.Body.List)
	}
	return nil, nil
}

type site struct {
	pos  token.Pos
	desc string
	via  *types.Func // same-package callee the blocking op is reached through
}

type state struct {
	pass    *analysis.Pass
	mutexes []string
	extra   map[string]bool
	decls   map[*types.Func]*ast.FuncDecl
	direct  map[*types.Func]*site // first direct blocking site per function
	calls   map[*types.Func][]*types.Func
	summary map[*types.Func]*site // transitive: how this function blocks
}

// summarize computes, for every function in the package, whether calling
// it can block, and through which chain — a fixed point over the static
// same-package call graph.
func (s *state) summarize() {
	for fn, fd := range s.decls {
		fn := fn
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // runs later, not under this frame
			case *ast.GoStmt:
				// go f(args): f runs on its own goroutine and does not
				// block this frame, but args are evaluated here.
				for _, a := range n.Call.Args {
					ast.Inspect(a, visit)
				}
				return false
			case *ast.CallExpr:
				if desc := s.blockingCall(n); desc != "" {
					if s.direct[fn] == nil {
						s.direct[fn] = &site{pos: n.Pos(), desc: desc}
					}
				} else if callee := s.callee(n); callee != nil {
					if _, local := s.decls[callee]; local {
						s.calls[fn] = append(s.calls[fn], callee)
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && s.direct[fn] == nil {
					s.direct[fn] = &site{pos: n.Pos(), desc: "channel receive"}
				}
			case *ast.SendStmt:
				if s.direct[fn] == nil {
					s.direct[fn] = &site{pos: n.Pos(), desc: "channel send"}
				}
			case *ast.SelectStmt:
				if s.direct[fn] == nil && !selectHasDefault(n) {
					s.direct[fn] = &site{pos: n.Pos(), desc: "blocking select"}
				}
			case *ast.RangeStmt:
				if s.direct[fn] == nil && s.isChan(n.X) {
					s.direct[fn] = &site{pos: n.Pos(), desc: "range over channel"}
				}
			}
			return true
		}
		ast.Inspect(fd.Body, visit)
	}
	s.summary = make(map[*types.Func]*site)
	for fn, st := range s.direct {
		s.summary[fn] = st
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range s.calls {
			if s.summary[fn] != nil {
				continue
			}
			for _, c := range callees {
				if via := s.summary[c]; via != nil {
					s.summary[fn] = &site{pos: via.pos, desc: via.desc, via: c}
					changed = true
					break
				}
			}
		}
	}
}

// chain renders the same-package call chain from fn down to the primitive
// blocking operation, for the diagnostic message.
func (s *state) chain(fn *types.Func) string {
	var parts []string
	for fn != nil {
		parts = append(parts, fn.Name())
		st := s.summary[fn]
		if st == nil {
			break
		}
		fn = st.via
	}
	return strings.Join(parts, " -> ")
}

// blockingCall classifies a call as a primitive blocking operation.
func (s *state) blockingCall(call *ast.CallExpr) string {
	fn := s.callee(call)
	if fn == nil {
		return ""
	}
	id := funcID(fn)
	if d, ok := builtinBlocking[id]; ok && d != "" {
		return d
	}
	if s.extra[id] {
		return id
	}
	if p := fn.Pkg(); p != nil && p.Path() == "net" {
		return "net I/O (" + id + ")"
	}
	return ""
}

func (s *state) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := s.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := s.pass.TypesInfo.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := s.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified call
		}
	}
	return nil
}

func (s *state) isChan(e ast.Expr) bool {
	t := s.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// mutexOf resolves an expression like d.mu to a configured mutex spec.
func (s *state) mutexOf(e ast.Expr) (string, bool) {
	se, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	sel, ok := s.pass.TypesInfo.Selections[se]
	if !ok {
		return "", false
	}
	field, ok := sel.Obj().(*types.Var)
	if !ok || !field.IsField() {
		return "", false
	}
	recv := sel.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	spec := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
	for _, m := range s.mutexes {
		if m == spec {
			return spec, true
		}
	}
	return "", false
}

// walker tracks which configured mutexes are held along the statement
// sequence of one function body.
type walker struct {
	*state
	held map[string]token.Pos // mutex spec -> Lock() position
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// branch walks nested statements with a copy of the held set: state
// changes inside a conditionally-executed branch (an early unlock+return,
// a lock on one arm) must not leak into the fallthrough path.
func (w *walker) branch(list []ast.Stmt) {
	saved := w.held
	w.held = make(map[string]token.Pos, len(saved))
	for k, v := range saved {
		w.held[k] = v
	}
	w.stmts(list)
	w.held = saved
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && w.lockOp(call) {
			return
		}
		w.expr(s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock to function end: the unlock runs
		// on return, not here, so the held state must not change.
		if w.isLockOp(s.Call) {
			return
		}
		w.expr(s.Call)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.branch(s.Body.List)
		if s.Else != nil {
			w.branch([]ast.Stmt{s.Else})
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.branch(append(append([]ast.Stmt{}, s.Body.List...), s.Post))
	case *ast.RangeStmt:
		if w.isChan(s.X) {
			w.report(s.Pos(), "range over channel")
		}
		w.expr(s.X)
		w.branch(s.Body.List)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			w.branch(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		for _, c := range s.Body.List {
			w.branch(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			w.report(s.Pos(), "blocking select")
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.branch(append([]ast.Stmt{cc.Comm}, cc.Body...))
		}
	case *ast.SendStmt:
		w.report(s.Pos(), "channel send")
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.GoStmt:
		// The spawned body runs outside this critical section; argument
		// expressions are evaluated here, so still check them.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

// expr reports blocking operations inside an expression evaluated at the
// current lock state. Function literals are skipped: their bodies execute
// when called, not where written.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if w.lockOp(n) {
				return false
			}
			w.checkCall(n)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.report(n.Pos(), "channel receive")
			}
		}
		return true
	})
}

// checkCall reports a call that blocks — primitively, or transitively
// through a same-package callee — while a configured mutex is held.
func (w *walker) checkCall(call *ast.CallExpr) {
	if len(w.held) == 0 {
		return
	}
	if desc := w.blockingCall(call); desc != "" {
		w.report(call.Pos(), desc)
		return
	}
	callee := w.callee(call)
	if callee == nil {
		return
	}
	if via := w.summary[callee]; via != nil {
		w.report(call.Pos(), fmt.Sprintf("%s (via %s)", via.desc, w.chain(callee)))
	}
}

// lockOp updates the held set for Lock/Unlock calls on configured
// mutexes, reporting whether the call was one.
func (w *walker) lockOp(call *ast.CallExpr) bool {
	spec, name, ok := w.asLockOp(call)
	if !ok {
		return false
	}
	switch name {
	case "Lock", "RLock":
		w.held[spec] = call.Pos()
	case "Unlock", "RUnlock":
		delete(w.held, spec)
	}
	return true
}

// isLockOp reports whether the call is a Lock/Unlock on a configured
// mutex, without touching the held state.
func (w *walker) isLockOp(call *ast.CallExpr) bool {
	_, _, ok := w.asLockOp(call)
	return ok
}

func (w *walker) asLockOp(call *ast.CallExpr) (spec, name string, ok bool) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	spec, ok = w.mutexOf(se.X)
	if !ok {
		return "", "", false
	}
	switch se.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return spec, se.Sel.Name, true
	}
	return "", "", false
}

func (w *walker) report(pos token.Pos, desc string) {
	if len(w.held) == 0 {
		return
	}
	if w.pass.Suppressed(directive, pos) {
		return
	}
	for spec, lockPos := range w.held {
		w.pass.Reportf(pos, "%s while %s is held (locked at %s); release the mutex first or annotate //lsm:lockio-ok <why>",
			desc, spec, w.pass.Fset.Position(lockPos))
		return // one report per site, naming one held mutex
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

func funcID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
