// Package a is the lockio analyzer's test fixture. The test points the
// mutexes flag at Guarded.mu and the blocking flag at Sink.Append.
package a

import (
	"os"
	"sync"
	"time"
)

type Guarded struct {
	mu sync.Mutex
	f  *os.File
	ch chan int
}

type Sink interface {
	Append(p []byte) error
}

func (g *Guarded) SyncUnderLock() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.f.Sync() // want `fsync via \(\*os\.File\)\.Sync while .*\.Guarded\.mu is held`
}

func (g *Guarded) SleepUnderLock() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while .*\.Guarded\.mu is held`
	g.mu.Unlock()
}

func (g *Guarded) SendUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- 1 // want `channel send while .*\.Guarded\.mu is held`
}

func (g *Guarded) RecvUnderLock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want `channel receive while .*\.Guarded\.mu is held`
}

func (g *Guarded) ExtraBlocking(s Sink, p []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return s.Append(p) // want `Sink\.Append while .*\.Guarded\.mu is held`
}

func (g *Guarded) syncAll() error { return g.f.Sync() }

func (g *Guarded) TransitiveUnderLock() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.syncAll() // want `fsync via \(\*os\.File\)\.Sync \(via syncAll\) while`
}

// ReleasedBeforeSync drops the mutex before the fsync — the pattern the
// invariant demands — and must produce no diagnostic.
func (g *Guarded) ReleasedBeforeSync() error {
	g.mu.Lock()
	dirty := g.f != nil
	g.mu.Unlock()
	if dirty {
		return g.f.Sync()
	}
	return nil
}

// BranchUnlock releases only on the early-return arm; the fallthrough
// path still holds the mutex at the fsync.
func (g *Guarded) BranchUnlock(early bool) error {
	g.mu.Lock()
	if early {
		g.mu.Unlock()
		return nil
	}
	err := g.f.Sync() // want `fsync via \(\*os\.File\)\.Sync while`
	g.mu.Unlock()
	return err
}

// SpawnUnderLock starts a goroutine while holding the mutex; the spawned
// body runs outside this critical section, so no diagnostic.
func (g *Guarded) SpawnUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() { g.ch <- 1 }()
}

func (g *Guarded) JustifiedSync() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	//lsm:lockio-ok test fixture: single-writer close path, latency irrelevant
	return g.f.Sync()
}

// EmptyReason carries a directive with no justification: it fails to
// suppress the finding and is itself flagged.
func (g *Guarded) EmptyReason() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.f.Sync() /*lsm:lockio-ok*/ // want `directive needs a justification` `fsync via \(\*os\.File\)\.Sync while`
}
