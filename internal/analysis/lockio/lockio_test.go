package lockio_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockio"
)

const fixture = "repro/internal/analysis/lockio/testdata/src/a"

func TestLockio(t *testing.T) {
	defer setFlag(t, "mutexes", fixture+".Guarded.mu")()
	defer setFlag(t, "blocking", fixture+".Sink.Append")()
	analysistest.Run(t, "testdata", lockio.Analyzer, "./src/a")
}

func setFlag(t *testing.T, name, value string) (restore func()) {
	t.Helper()
	f := lockio.Analyzer.Flags.Lookup(name)
	if f == nil {
		t.Fatalf("no flag %q", name)
	}
	old := f.Value.String()
	if err := f.Value.Set(value); err != nil {
		t.Fatal(err)
	}
	return func() { f.Value.Set(old) }
}
