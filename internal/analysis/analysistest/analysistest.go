// Package analysistest runs an analyzer over checked-in testdata packages
// and compares its diagnostics against `// want` expectations, following
// the convention of golang.org/x/tools/go/analysis/analysistest:
//
//	f.Sync() // want `fsync .* is held`
//
// Each want comment carries one or more regexps (quoted with " or `);
// every diagnostic on that line must match one pending expectation on the
// same line, every expectation must be consumed, and a line with no want
// comment must produce no diagnostics. Testdata lives under the
// analyzer's testdata/src/<pkg> directories; the go tool never matches
// testdata in wildcards, so the packages are loaded by explicit relative
// path (which works) and never leak into ./... builds.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run loads the packages named by patterns (relative to dir) and applies
// the analyzer, reporting any mismatch with // want comments as test
// errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	res, err := load.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	for _, p := range res.Pkgs {
		runPkg(t, res.Fset, a, p)
	}
}

// RunExpectNone loads the packages and asserts the analyzer reports
// nothing at all, ignoring any // want comments — the form for scope-gate
// tests that reuse a violation-rich fixture with the analyzer pointed
// elsewhere.
func RunExpectNone(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	res, err := load.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	for _, p := range res.Pkgs {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      res.Fset,
			Files:     p.Files,
			Pkg:       p.Pkg,
			TypesInfo: p.Info,
			Report: func(d analysis.Diagnostic) {
				t.Errorf("%s: unexpected diagnostic: %s", res.Fset.Position(d.Pos), d.Message)
			},
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer failed: %v", p.ImportPath, err)
		}
	}
}

type key struct {
	file string
	line int
}

func runPkg(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, p *load.Package) {
	t.Helper()
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range p.Files {
		collectWants(t, fset, f, wants)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     p.Files,
		Pkg:       p.Pkg,
		TypesInfo: p.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer failed: %v", p.ImportPath, err)
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		k := key{posn.Filename, posn.Line}
		if i := matchWant(wants[k], d.Message); i >= 0 {
			wants[k] = append(wants[k][:i], wants[k][i+1:]...)
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matched expectation %q", k.file, k.line, re)
		}
	}
}

// collectWants indexes the `// want "re"...` comments of one file by line.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[key][]*regexp.Regexp) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			posn := fset.Position(c.Pos())
			k := key{posn.Filename, posn.Line}
			for _, lit := range splitQuoted(t, posn, text) {
				re, err := regexp.Compile(lit)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", posn, lit, err)
				}
				wants[k] = append(wants[k], re)
			}
		}
	}
}

// splitQuoted parses the sequence of quoted regexps after `// want`.
func splitQuoted(t *testing.T, posn token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s: malformed want comment at %q (expected quoted regexp)", posn, s)
		}
		end := strings.IndexByte(s[1:], s[0])
		if end < 0 {
			t.Fatalf("%s: unterminated quote in want comment %q", posn, s)
		}
		lit, err := strconv.Unquote(s[:end+2])
		if err != nil {
			t.Fatalf("%s: bad quoted regexp %q: %v", posn, s[:end+2], err)
		}
		out = append(out, lit)
		s = s[end+2:]
	}
}

// matchWant returns the index of the first pending expectation the message
// satisfies, or -1.
func matchWant(res []*regexp.Regexp, msg string) int {
	for i, re := range res {
		if re.MatchString(msg) {
			return i
		}
	}
	return -1
}
