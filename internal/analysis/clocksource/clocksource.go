// Package clocksource implements the lsmlint analyzer that keeps
// simulation code on the virtual clock.
//
// The cost model's reproducibility — and the planned deterministic
// simulation harness (ROADMAP item 5a) — depend on sim-backend code never
// consulting wall time: every duration must come from the metrics.Clock
// that I/O and CPU events advance, or a seeded run stops being a pure
// function of its seed. clocksource forbids the time package's clock
// reads and timers (time.Now, time.Since, time.Sleep, time.After,
// timers/tickers) in the configured packages. The real-device backend
// (filedev) is deliberately out of scope: on real hardware, wall time is
// the honest measure.
//
// Justified exceptions carry //lsm:clocksource-ok <reason>.
package clocksource

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

const directive = "clocksource-ok"

// Analyzer is the clocksource pass.
var Analyzer = &analysis.Analyzer{
	Name: "clocksource",
	Doc:  "report wall-clock reads (time.Now, time.Sleep, timers) in simulation code that must use the virtual metrics.Clock",
	Run:  run,
}

var packageList string

func init() {
	Analyzer.Flags.StringVar(&packageList, "packages",
		"repro/internal/storage,repro/internal/experiments,repro/internal/dst",
		"comma-separated packages that must use the virtual clock (exact; suffix /... covers subpackages)")
}

// banned lists the wall-clock entry points of package time. Duration
// arithmetic and constants stay allowed — only reading the real clock or
// arming real timers breaks determinism.
var banned = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathMatches(pass.Pkg.Path(), packageList, false) {
		return nil, nil
	}
	pass.CheckDirectives(directive)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok || !banned[se.Sel.Name] {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[se.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if pass.Suppressed(directive, se.Pos()) {
				return true
			}
			pass.Reportf(se.Pos(), "time.%s reads the wall clock in simulation code; use the virtual metrics.Clock (or annotate //lsm:clocksource-ok <why>)",
				se.Sel.Name)
			return true
		})
	}
	return nil, nil
}
