package clocksource_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/clocksource"
)

func TestClocksource(t *testing.T) {
	f := clocksource.Analyzer.Flags.Lookup("packages")
	old := f.Value.String()
	if err := f.Value.Set("repro/internal/analysis/clocksource/testdata/src/a"); err != nil {
		t.Fatal(err)
	}
	defer f.Value.Set(old)
	analysistest.Run(t, "testdata", clocksource.Analyzer, "./src/a")
}

// TestScopeGate verifies wall-clock reads outside the configured packages
// are not flagged: the fixture is full of them, but with the scope pointed
// elsewhere the analyzer must stay silent. The harness would report the
// fixture's unmet want comments, so assert through the analyzer directly.
func TestScopeGate(t *testing.T) {
	f := clocksource.Analyzer.Flags.Lookup("packages")
	old := f.Value.String()
	if err := f.Value.Set("repro/internal/storage"); err != nil {
		t.Fatal(err)
	}
	defer f.Value.Set(old)
	analysistest.RunExpectNone(t, "testdata", clocksource.Analyzer, "./src/a")
}
