// Package a is the clocksource analyzer's test fixture. The test points
// the packages flag at this package.
package a

import "time"

// Duration arithmetic and constants never touch the wall clock: allowed.
const tick = 10 * time.Millisecond

func scale(d time.Duration) time.Duration { return d * 2 }

func bad() time.Time {
	time.Sleep(tick)  // want `time\.Sleep reads the wall clock in simulation code`
	return time.Now() // want `time\.Now reads the wall clock in simulation code`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock in simulation code`
}

func badTimer() *time.Timer {
	return time.NewTimer(tick) // want `time\.NewTimer reads the wall clock in simulation code`
}

// justified measures real scheduler behavior on purpose.
func justified() time.Time {
	//lsm:clocksource-ok test fixture: real wall-time measurement by design
	return time.Now()
}

// emptyReason shows an annotation without a justification: it does not
// suppress, and the directive itself is flagged.
func emptyReason() time.Time {
	return time.Now() /*lsm:clocksource-ok*/ // want `directive needs a justification` `time\.Now reads the wall clock`
}
