// Package analysis hosts lsmlint, the repo's invariant-enforcing static
// analyzer suite. The subpackages lockio, erraudit, poolleak and
// clocksource each encode one contract the engine's correctness or
// performance depends on; cmd/lsmlint bundles them behind the
// `go vet -vettool` protocol so CI and local runs share go's build cache.
//
// # The invariants
//
// lockio — no blocking operation while an engine mutex is held.
// Established by PR 5 (group-commit WAL): the whole point of the group
// commit is that the device mutex is released before the commit fsync, so
// concurrent appends for the next group proceed while the current group's
// fsync is in flight. Holding filedev.Device.mu or wal.Log.mu across an
// fsync, a sink append, a channel operation, net I/O or a sleep
// re-serializes the write path and silently degrades group commit back to
// per-record commit — a performance regression no unit test catches.
// lockio tracks Lock/Unlock of the configured mutexes through each
// function linearly (branch-sensitive, defer-aware) and through
// same-package call chains, and reports any reachable blocking operation.
// PR 8 added readcache.segment.mu to the default mutex list: every point
// read crosses a cache segment lock, so an I/O or channel wait under it
// would serialize the read path the cache exists to speed up.
//
// erraudit — no silently discarded error in durability-critical packages.
// Established by PR 3 (on-disk persistence): every durability bug found
// while building the disk backend had the same shape, an error from an
// fsync/write/close dropped on the floor while the in-memory image went
// on claiming durability the device never delivered. erraudit flags every
// call whose error result is unused (bare, deferred or goroutine calls)
// and every error assigned to the blank identifier, in the audited
// packages — stricter than errcheck, with no default exclusion list, and
// test files are audited too. internal/readcache is audited as of PR 8:
// the cache sits in front of the engine on every read, and a swallowed
// error there would turn an engine failure into a silent stale serve.
//
// poolleak — pooled buffers must not escape their request.
// Established by PR 5 (encode-buffer pooling on the WAL and wire paths):
// a sync.Pool buffer that escapes — stored in a field or global, returned,
// sent on a channel, captured by a goroutine — either never returns to
// the pool (a leak) or is Put while an alias is live, so a later Get
// scribbles over in-flight data. poolleak taints Get results through
// simple aliases and reports escapes, plus Get sites whose buffer
// provably stays local and is still never Put.
//
// clocksource — simulation code reads only the virtual clock.
// Established by PR 3 (pluggable backends split sim from disk): the cost
// model's reproducibility requires that a seeded sim run be a pure
// function of its seed, which wall-clock reads break. clocksource forbids
// time.Now/Since/Until/Sleep and real timers in the sim and experiments
// packages; the metrics.Clock that I/O and CPU events advance is the only
// admissible time source there. The filedev backend is out of scope — on
// real hardware wall time is the honest measure.
//
// # Exceptions
//
// A justified exception is annotated in the source with
//
//	//lsm:<analyzer>-ok <why this exemption is sound>
//
// (erraudit uses //lsm:allow-discard). The directive counts when it sits
// on the flagged line, on the line directly above, or in the enclosing
// function's doc comment; the /*lsm:...*/ form works where the line needs
// a second comment. The reason is mandatory: a directive without one does
// not suppress anything and is itself reported, so an exemption cannot
// land without its written justification.
//
// # Running
//
//	go build -o /tmp/lsmlint ./cmd/lsmlint
//	go vet -vettool=/tmp/lsmlint ./...   # vet protocol, cached, tests included
//	/tmp/lsmlint ./...                   # standalone, convenient locally
//
// Analyzer scopes are flags (-lockio.mutexes, -erraudit.packages, ...);
// the defaults encode the engine's current contracts.
//
// # Implementation note
//
// The framework is a stdlib-only reimplementation of the core of
// golang.org/x/tools/go/analysis: this repo builds with no module
// dependencies, so Analyzer/Pass/Diagnostic are defined here, the unit
// subpackage speaks go vet's unitchecker JSON protocol, and the load
// subpackage type-checks packages via `go list -export`. Analyzers
// written against this package port to x/tools by swapping one import.
package analysis
