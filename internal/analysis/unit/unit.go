// Package unit is the driver half of lsmlint: it speaks the command-line
// protocol `go vet -vettool` expects from an analysis tool, and doubles as
// a standalone multichecker over `go list` patterns.
//
// The vet protocol (reimplemented here from the x/tools unitchecker,
// against the standard library only) is:
//
//	-V=full    print the executable's identity for build caching, exit 0
//	-flags     print the tool's flags as JSON, exit 0
//	foo.cfg    analyze the single compilation unit the JSON config
//	           describes: parse its GoFiles, type-check them against the
//	           export data files the go command already compiled
//	           (Config.PackageFile), run every analyzer, print findings
//
// Each -vettool invocation analyzes exactly one package; the go command
// fans the tool out over the build graph and caches results. Dependency
// packages arrive with VetxOnly set — they are analyzed only for facts,
// and since lsmlint's analyzers are fact-free those runs are no-ops.
//
// In standalone mode (any non-.cfg arguments) the tool loads the named
// packages itself through internal/analysis/load and prints findings for
// all of them, which is the convenient form for local runs:
//
//	lsmlint ./...
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Config mirrors the JSON compilation-unit description `go vet` writes for
// a vettool (x/tools unitchecker.Config). Field names are the contract.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the driver and exits the process. analyzers must be valid per
// analysis.Validate.
func Main(analyzers ...*analysis.Analyzer) {
	progname := os.Args[0]
	log.SetFlags(0)
	log.SetPrefix("lsmlint: ")
	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := flag.Bool("json", false, "emit JSON output")
	flag.Int("c", -1, "display offending line with this many lines of context (ignored)")
	flag.Var(versionFlag{}, "V", "print version and exit")
	enabled := make(map[*analysis.Analyzer]*triState)
	for _, a := range analyzers {
		ts := new(triState)
		flag.Var(ts, a.Name, "enable "+a.Name+" analysis")
		enabled[a] = ts
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <unit.cfg | packages...>\n", progname)
		flag.PrintDefaults()
		os.Exit(2)
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}

	// -NAME=true selects a subset; -NAME=false removes from the full set.
	var keep []*analysis.Analyzer
	anyTrue := false
	for _, ts := range enabled {
		anyTrue = anyTrue || *ts == setTrue
	}
	for _, a := range analyzers {
		if anyTrue && *enabled[a] != setTrue {
			continue
		}
		if *enabled[a] == setFalse {
			continue
		}
		keep = append(keep, a)
	}
	analyzers = keep

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], analyzers, *jsonOut)
		return
	}
	runStandalone(args, analyzers, *jsonOut)
}

// runUnit analyzes the single compilation unit described by cfgFile and
// exits: 0 when clean, 1 when diagnostics were reported (plain mode).
func runUnit(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// The go command consumes the "vetx" facts file of every run and feeds
	// it to dependents. lsmlint's analyzers exchange no facts, so the file
	// is always empty — but it must exist for the protocol's caching.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependencies are analyzed only for facts; we have none to offer.
		writeVetx()
		os.Exit(0)
	}

	fset := token.NewFileSet()
	pkg, info, files, err := typecheckUnit(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			os.Exit(0)
		}
		log.Fatal(err)
	}

	diags := runAnalyzers(analyzers, fset, files, pkg, info)
	writeVetx()
	report(map[string][]analysis.Diagnostic{cfg.ID: diags}, fset, jsonOut)
}

// typecheckUnit parses cfg.GoFiles and type-checks them against the export
// data the build already produced for every import.
func typecheckUnit(fset *token.FileSet, cfg *Config) (*types.Package, *types.Info, []*ast.File, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, info, files, nil
}

// runStandalone loads packages from source and analyzes them all.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut bool) {
	res, err := load.Load(".", patterns...)
	if err != nil {
		log.Fatal(err)
	}
	byPkg := make(map[string][]analysis.Diagnostic)
	for _, p := range res.Pkgs {
		diags := runAnalyzers(analyzers, res.Fset, p.Files, p.Pkg, p.Info)
		if len(diags) > 0 {
			byPkg[p.ImportPath] = diags
		}
	}
	report(byPkg, res.Fset, jsonOut)
}

func runAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			log.Fatalf("%s: %v", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// report prints diagnostics and exits with the protocol's status code:
// plain mode exits 1 when anything was reported, JSON mode always exits 0
// (the caller inspects the structure, as `go vet -json` does).
func report(byPkg map[string][]analysis.Diagnostic, fset *token.FileSet, jsonOut bool) {
	if jsonOut {
		tree := make(map[string]map[string][]jsonDiagnostic)
		for id, diags := range byPkg {
			byAnalyzer := make(map[string][]jsonDiagnostic)
			for _, d := range diags {
				byAnalyzer[d.Category] = append(byAnalyzer[d.Category], jsonDiagnostic{
					Posn:    fset.Position(d.Pos).String(),
					Message: d.Message,
				})
			}
			tree[id] = byAnalyzer
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(tree); err != nil {
			log.Fatal(err)
		}
		os.Exit(0)
	}
	exit := 0
	var ids []string
	for id := range byPkg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, d := range byPkg[id] {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 1
		}
	}
	os.Exit(exit)
}

type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// printFlags describes the tool's flags as JSON, the form `go vet` queries
// to validate pass-through flags.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full protocol: the go command hashes the
// tool binary's self-reported identity into its build cache keys, so the
// output must change whenever the binary does — hence the content hash.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// triState distinguishes an unset enable-flag from an explicit true/false,
// so `-lockio` selects a subset while plain runs keep every analyzer.
type triState int

const (
	unset triState = iota
	setTrue
	setFalse
)

func (ts *triState) IsBoolFlag() bool { return true }
func (ts *triState) Get() any         { return *ts == setTrue }
func (ts *triState) String() string {
	if ts != nil && *ts == setFalse {
		return "false"
	}
	return "true"
}
func (ts *triState) Set(s string) error {
	switch strings.ToLower(s) {
	case "", "true", "t", "1":
		*ts = setTrue
	case "false", "f", "0":
		*ts = setFalse
	default:
		return fmt.Errorf("invalid boolean %q", s)
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
