// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, just large enough to host lsmlint's
// invariant checkers (see doc.go for the invariants themselves).
//
// The repo builds against the bare standard library, so instead of
// importing x/tools the package defines the same Analyzer/Pass/Diagnostic
// shapes, and the drivers in internal/analysis/unit (the `go vet -vettool`
// protocol) and internal/analysis/load (a `go list -export` source loader)
// supply what go/packages and unitchecker would. Analyzers written against
// this package port to the real x/tools API by changing one import.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis pass: a named checker over a single
// type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and driver flags. It must
	// be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation; the first line is used as a
	// one-line summary.
	Doc string

	// Flags holds analyzer-specific configuration. Drivers expose each flag
	// as -<name>.<flag>, exactly like the x/tools multichecker.
	Flags flag.FlagSet

	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers set it.
	Report func(Diagnostic)

	// directives indexes //lsm: comments by file and line; built lazily.
	directives map[*ast.File]map[int][]Directive
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// PathMatches reports whether pkgpath is covered by a comma-separated
// package list. An entry ending in "/..." covers that package and its
// subpackages; a plain entry covers exactly that package — or, when
// subtree is set, its subpackages too.
func PathMatches(pkgpath, list string, subtree bool) bool {
	for _, e := range strings.Split(list, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if root, ok := strings.CutSuffix(e, "/..."); ok {
			if pkgpath == root || strings.HasPrefix(pkgpath, root+"/") {
				return true
			}
			continue
		}
		if pkgpath == e || (subtree && strings.HasPrefix(pkgpath, e+"/")) {
			return true
		}
	}
	return false
}

// Validate checks an analyzer list for driver use: names must be non-empty,
// valid and unique, and every analyzer must have a Run function.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a == nil || a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: invalid analyzer %v (missing name or Run)", a)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
