package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces an lsmlint control comment: //lsm:<name> <why>.
// The space-free prefix follows the //go: convention, so gofmt leaves the
// comments alone and they read as machine directives, not prose.
const DirectivePrefix = "lsm:"

// A Directive is one parsed //lsm: comment.
type Directive struct {
	Name   string // e.g. "lockio-ok"
	Reason string // justification text after the name; required
	Pos    token.Pos
	Line   int
}

// parseDirective extracts a directive from one comment, if present. Both
// comment forms work: //lsm:name why, and /*lsm:name why*/ for when the
// line needs another comment after the directive (the analyzer testdata
// pairs a directive with a // want expectation this way).
func parseDirective(c *ast.Comment) (Directive, bool) {
	text := c.Text
	if t, ok := strings.CutPrefix(text, "/*"+DirectivePrefix); ok {
		text = "//" + DirectivePrefix + strings.TrimSuffix(t, "*/")
	}
	if !strings.HasPrefix(text, "//"+DirectivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, "//"+DirectivePrefix)
	name, reason, _ := strings.Cut(rest, " ")
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
}

// fileDirectives indexes every //lsm: comment of a file by line.
func (p *Pass) fileDirectives(f *ast.File) map[int][]Directive {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]Directive)
	}
	if m, ok := p.directives[f]; ok {
		return m
	}
	m := make(map[int][]Directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c)
			if !ok {
				continue
			}
			d.Line = p.Fset.Position(c.Pos()).Line
			m[d.Line] = append(m[d.Line], d)
		}
	}
	p.directives[f] = m
	return m
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Suppressed reports whether a diagnostic at pos is waived by an
// //lsm:<name> directive with a non-empty justification. A directive
// counts when it sits on the flagged line, on the line directly above it,
// or in the doc comment of the function declaration enclosing pos — one
// annotated declaration covers a whole intentionally-exempt function.
// Directives with an empty reason never suppress; CheckDirectives flags
// them so an exemption cannot land without its written justification.
func (p *Pass) Suppressed(name string, pos token.Pos) bool {
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	dirs := p.fileDirectives(f)
	line := p.Fset.Position(pos).Line
	for _, d := range append(dirs[line], dirs[line-1]...) {
		if d.Name == name && d.Reason != "" {
			return true
		}
	}
	// Enclosing function's doc comment.
	path, _ := PathEnclosingPos(f, pos)
	for _, n := range path {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if d, ok := parseDirective(c); ok && d.Name == name && d.Reason != "" {
				return true
			}
		}
	}
	return false
}

// CheckDirectives reports every //lsm:<name> directive that carries no
// justification: the escape hatches are only valid with a written reason.
func (p *Pass) CheckDirectives(name string) {
	for _, f := range p.Files {
		for _, perLine := range p.fileDirectives(f) {
			for _, d := range perLine {
				if d.Name == name && d.Reason == "" {
					p.Reportf(d.Pos, "//lsm:%s directive needs a justification: //lsm:%s <why this exemption is sound>", name, name)
				}
			}
		}
	}
}

// PathEnclosingPos returns the AST path from the file down to the
// innermost node whose extent contains pos (outermost first), like
// astutil.PathEnclosingInterval but for a single position.
func PathEnclosingPos(f *ast.File, pos token.Pos) ([]ast.Node, bool) {
	var path []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path, len(path) > 0
}
