// Package clean is erraudit's out-of-scope fixture: it discards errors
// freely, and the scope-gate test checks that no diagnostics appear when
// the package is not on the audited list.
package clean

import "errors"

func mayFail() error { return errors.New("boom") }

func unaudited() {
	mayFail()
	_ = mayFail()
}
