// Package a is the erraudit analyzer's test fixture. The test points the
// packages flag at this package.
package a

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func mayFail() error          { return errors.New("boom") }
func twoVals() (int, error)   { return 0, nil }
func value() int              { return 1 }
func cleanup()                {}

func bad() {
	mayFail()         // want `call discards its error result in mayFail`
	defer mayFail()   // want `deferred call discards its error result in mayFail`
	go mayFail()      // want `goroutine call discards its error result in mayFail`
	_ = mayFail()     // want `error value assigned to _`
	n, _ := twoVals() // want `error result of twoVals assigned to _`
	_ = n
}

// good handles or legitimately ignores everything: no diagnostics.
func good() error {
	if err := mayFail(); err != nil {
		return err
	}
	value()        // no error result
	defer cleanup() // no error result
	n, err := twoVals()
	if err != nil {
		return err
	}
	_ = n // not an error value
	return nil
}

// memSinks writes to in-memory sinks whose error results are documented
// to always be nil: exempt, no annotation needed. A same-signature write
// to anything else still trips.
func memSinks(w interface{ WriteString(string) (int, error) }) {
	var buf bytes.Buffer
	var sb strings.Builder
	buf.WriteString("x")
	buf.WriteByte('y')
	sb.WriteString("z")
	fmt.Fprintf(&buf, "%d", 1)
	fmt.Fprintln(&sb, "a")
	w.WriteString("x")          // want `call discards its error result in WriteString`
	fmt.Fprintf(mayFailW(), "") // want `call discards its error result in Fprintf`
}

type failW struct{}

func (failW) Write([]byte) (int, error) { return 0, errors.New("no") }
func mayFailW() failW                   { return failW{} }

func justified() {
	//lsm:allow-discard test fixture: error cannot occur after the guard above
	_ = mayFail()
}

// emptyReason shows an annotation without a justification: it does not
// suppress, and the directive itself is flagged.
func emptyReason() {
	_ = mayFail() /*lsm:allow-discard*/ // want `directive needs a justification` `error value assigned to _`
}
