// Package a is the erraudit analyzer's test fixture. The test points the
// packages flag at this package.
package a

import "errors"

func mayFail() error          { return errors.New("boom") }
func twoVals() (int, error)   { return 0, nil }
func value() int              { return 1 }
func cleanup()                {}

func bad() {
	mayFail()         // want `call discards its error result in mayFail`
	defer mayFail()   // want `deferred call discards its error result in mayFail`
	go mayFail()      // want `goroutine call discards its error result in mayFail`
	_ = mayFail()     // want `error value assigned to _`
	n, _ := twoVals() // want `error result of twoVals assigned to _`
	_ = n
}

// good handles or legitimately ignores everything: no diagnostics.
func good() error {
	if err := mayFail(); err != nil {
		return err
	}
	value()        // no error result
	defer cleanup() // no error result
	n, err := twoVals()
	if err != nil {
		return err
	}
	_ = n // not an error value
	return nil
}

func justified() {
	//lsm:allow-discard test fixture: error cannot occur after the guard above
	_ = mayFail()
}

// emptyReason shows an annotation without a justification: it does not
// suppress, and the directive itself is flagged.
func emptyReason() {
	_ = mayFail() /*lsm:allow-discard*/ // want `directive needs a justification` `error value assigned to _`
}
