package erraudit_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/erraudit"
)

func TestErraudit(t *testing.T) {
	f := erraudit.Analyzer.Flags.Lookup("packages")
	old := f.Value.String()
	if err := f.Value.Set("repro/internal/analysis/erraudit/testdata/src/a"); err != nil {
		t.Fatal(err)
	}
	defer f.Value.Set(old)
	analysistest.Run(t, "testdata", erraudit.Analyzer, "./src/a")
}

// TestScopeGate verifies the analyzer stays silent outside the audited
// package list.
func TestScopeGate(t *testing.T) {
	f := erraudit.Analyzer.Flags.Lookup("packages")
	old := f.Value.String()
	if err := f.Value.Set("repro/internal/some/other/pkg"); err != nil {
		t.Fatal(err)
	}
	defer f.Value.Set(old)
	// The fixture is full of violations; with the package out of scope the
	// harness must see zero diagnostics — but the fixture's want comments
	// would then fail. Load a dedicated clean run instead.
	analysistest.Run(t, "testdata", erraudit.Analyzer, "./src/clean")
}
