// Package erraudit implements the lsmlint analyzer that forbids silently
// discarded errors in the engine's durability-critical packages.
//
// PR 3's durability bugs came from exactly one shape: an error from a sink
// (fsync, manifest write, WAL append) dropped on the floor, leaving the
// in-memory image claiming durability the device never delivered. erraudit
// rejects every discarded error in the audited packages — stricter than
// errcheck, with no default exclusion list:
//
//   - a call whose result set includes an error, used as a statement
//     (including deferred calls: `defer f.Close()` discards too);
//   - an error assigned to the blank identifier, in any position
//     (`_ = f()`, `x, _ := g()` where the second result is the error).
//
// Intentional discards carry //lsm:allow-discard <reason> on the line, the
// line above, or the enclosing function's doc comment. The audited package
// list is configurable; entries cover the package and its subpackages.
package erraudit

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

const directive = "allow-discard"

// Analyzer is the erraudit pass.
var Analyzer = &analysis.Analyzer{
	Name: "erraudit",
	Doc:  "report discarded errors (bare calls, assignments to _) in the audited durability-critical packages",
	Run:  run,
}

var packageList string

func init() {
	Analyzer.Flags.StringVar(&packageList, "packages",
		"repro/internal/wal,repro/internal/storage,repro/internal/core,repro/internal/server,repro/internal/readcache,repro/internal/obs,repro/internal/admission",
		"comma-separated package paths to audit (each covers its subpackages)")
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathMatches(pass.Pkg.Path(), packageList, true) {
		return nil, nil
	}
	pass.CheckDirectives(directive)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkBareCall(pass, call, "")
				}
			case *ast.DeferStmt:
				checkBareCall(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkBareCall(pass, n.Call, "goroutine ")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkBareCall reports a statement-position call that returns an error
// nobody looks at.
func checkBareCall(pass *analysis.Pass, call *ast.CallExpr, kind string) {
	if !returnsError(pass, call) {
		return
	}
	if infallibleCall(pass, call) {
		return
	}
	if pass.Suppressed(directive, call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(), "%scall discards its error result%s; handle it or annotate //lsm:allow-discard <why>",
		kind, callName(call))
}

// checkBlankAssign reports error values assigned to the blank identifier.
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	// Multi-value form: x, _ := f() — result types come from the call.
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypesInfo.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				if !pass.Suppressed(directive, as.Pos()) {
					pass.Reportf(as.Pos(), "error result of %s assigned to _; handle it or annotate //lsm:allow-discard <why>",
						strings.TrimPrefix(callName(call), " in "))
				}
			}
		}
		return
	}
	// Parallel form: _ = expr (possibly several).
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		t := pass.TypesInfo.TypeOf(as.Rhs[i])
		if t == nil || !isErrorType(t) {
			continue
		}
		if !pass.Suppressed(directive, as.Pos()) {
			pass.Reportf(as.Pos(), "error value assigned to _; handle it or annotate //lsm:allow-discard <why>")
		}
	}
}

// infallibleCall reports whether the call's error result is structurally
// incapable of being non-nil: methods on the in-memory sinks bytes.Buffer
// and strings.Builder (their Write*/WriteString docs promise a nil error),
// and fmt.Fprint* whose destination is statically one of those sinks.
// Flagging these would bury the real durability findings in annotations.
func infallibleCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return isMemSink(sig.Recv().Type())
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		return isMemSink(pass.TypesInfo.TypeOf(call.Args[0]))
	}
	return false
}

// isMemSink reports whether t is (a pointer to) bytes.Buffer or
// strings.Builder.
func isMemSink(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callName renders a short " in f" suffix for diagnostics.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return " in " + fun.Name
	case *ast.SelectorExpr:
		return " in " + fun.Sel.Name
	}
	return ""
}
