// Package load turns `go list` package patterns into parsed, type-checked
// packages for the lsmlint analyzers, using only the standard library and
// the go toolchain itself.
//
// It shells out once to `go list -export -deps -json`, which compiles (or
// reuses from the build cache) gc export data for every dependency, then
// parses the target packages from source and type-checks them against that
// export data via go/importer's lookup mode. This is the same shape as the
// x/tools go/packages LoadAllSyntax path, minus the dependency.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// Package is one parsed and type-checked target package.
type Package struct {
	ImportPath string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Result holds the loaded target packages and their shared FileSet.
type Result struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Load resolves patterns (as `go list` understands them, relative to dir)
// and returns every matched package parsed and type-checked. Dependencies
// are consumed as export data, never re-parsed.
func Load(dir string, patterns ...string) (*Result, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Standard",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Name != "" && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	// One shared importer: common dependencies resolve to one *types.Package
	// across all targets, exactly like a build.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	res := &Result{Fset: fset}
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		res.Pkgs = append(res.Pkgs, pkg)
	}
	return res, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, lp listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{ImportPath: lp.ImportPath, Files: files, Pkg: pkg, Info: info}, nil
}
