// Package poolleak implements the lsmlint analyzer that enforces the
// pooled-buffer discipline PR 5 introduced on the hot write path.
//
// A buffer taken from a sync.Pool serves exactly one request and goes
// back: if it escapes — stored into a struct field or package variable,
// returned to a caller, sent on a channel, or captured by a goroutine —
// it either leaks (never Put) or, worse, is Put while an alias is still
// live and the next Get scribbles over in-flight data. poolleak taints
// every sync.Pool Get result (through simple aliases: y := x, *x, x[:n])
// and reports:
//
//   - escapes of a tainted value out of the function, and
//   - Get results that are never Put, never escape, and are never handed
//     to another function — a straight leak of the pooled buffer.
//
// Writing through the pooled pointer (*bp = ...) is not an escape; that
// is the buffer doing its job. Deliberate ownership handoffs (the server
// response path hands frames to the connection's writer goroutine, which
// Puts them after the flush) carry //lsm:poolleak-ok <reason>.
package poolleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

const directive = "poolleak-ok"

// Analyzer is the poolleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolleak",
	Doc:  "report sync.Pool buffers that escape their request (field/global stores, returns, channel sends, goroutine captures) or are never returned to the pool",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.CheckDirectives(directive)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	taint   map[types.Object]token.Pos // tainted var -> Get position
	put     map[types.Object]bool      // tainted var passed to Pool.Put
	escaped map[types.Object]bool      // tainted var reported (or suppressed) as escaping
	calls   map[types.Object]bool      // tainted var passed as a plain call argument
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{
		pass:    pass,
		taint:   make(map[types.Object]token.Pos),
		put:     make(map[types.Object]bool),
		escaped: make(map[types.Object]bool),
		calls:   make(map[types.Object]bool),
	}
	// Seed: every `x := pool.Get()` (possibly type-asserted).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if !c.isPoolGet(as.Rhs[0]) {
			return true
		}
		for _, lhs := range as.Lhs {
			if obj := c.objOf(lhs); obj != nil {
				c.taint[obj] = as.Pos()
			}
		}
		return true
	})
	if len(c.taint) == 0 {
		return
	}
	// Propagate through simple aliases (y := x, y := (*x)[:0], ...) until
	// no new variables taint.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Rhs {
				root := c.aliasRoot(as.Rhs[i])
				if root == nil || !c.tainted(root) {
					continue
				}
				if obj := c.objOf(as.Lhs[i]); obj != nil {
					if _, ok := c.taint[obj]; !ok {
						c.taint[obj] = c.taint[c.objOf(root)]
						changed = true
					}
				}
			}
			return true
		})
	}
	c.scan(fd.Body)
	// A Get whose buffer provably stays inside the function and is never
	// Put leaks pool capacity: the pool exists to be refilled. Aliases of
	// one Get share its position, so the disposition of any alias (a Put,
	// an escape, a handoff) settles the whole family.
	handled := make(map[token.Pos]bool)
	name := make(map[token.Pos]string)
	for obj, pos := range c.taint {
		if c.put[obj] || c.escaped[obj] || c.calls[obj] {
			handled[pos] = true
		}
		if name[pos] == "" || obj.Pos() == pos {
			name[pos] = obj.Name()
		}
	}
	reported := make(map[token.Pos]bool)
	for _, pos := range c.taint {
		if handled[pos] || reported[pos] || c.pass.Suppressed(directive, pos) {
			continue
		}
		reported[pos] = true
		c.pass.Reportf(pos, "sync.Pool buffer %s is never returned with Put and never leaves the function; Put it back (or annotate //lsm:poolleak-ok <why>)", name[pos])
	}
}

// scan walks the body reporting escapes of tainted values.
func (c *checker) scan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if root := c.aliasRoot(r); root != nil && c.tainted(root) {
					c.escape(root, n.Pos(), "returned to the caller")
				}
			}
		case *ast.SendStmt:
			if root := c.aliasRoot(n.Value); root != nil && c.tainted(root) {
				c.escape(root, n.Pos(), "sent on a channel")
			}
		case *ast.GoStmt:
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && c.tainted(id) {
					c.escape(id, n.Pos(), "captured by a goroutine")
					return false
				}
				return true
			})
			return false
		case *ast.AssignStmt:
			c.scanAssign(n)
		case *ast.CallExpr:
			c.scanCall(n)
		}
		return true
	})
}

// scanAssign reports stores of tainted values into locations that outlive
// the request: struct fields, indexed containers, package-level variables.
func (c *checker) scanAssign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		root := c.aliasRoot(as.Rhs[i])
		if root == nil || !c.tainted(root) {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			// x.field = tainted: escapes unless x itself is the pooled
			// value (writing into the pooled object is its purpose).
			if base := c.aliasRoot(l.X); base == nil || !c.tainted(base) {
				c.escape(root, as.Pos(), "stored into a struct field")
			}
		case *ast.IndexExpr:
			if base := c.aliasRoot(l.X); base == nil || !c.tainted(base) {
				c.escape(root, as.Pos(), "stored into a container")
			}
		case *ast.Ident:
			if obj := c.objOf(l); obj != nil && obj.Parent() == c.pass.Pkg.Scope() {
				c.escape(root, as.Pos(), "stored into a package-level variable")
			}
		}
	}
}

// scanCall records Pool.Put calls and plain argument handoffs.
func (c *checker) scanCall(call *ast.CallExpr) {
	isPut := false
	if se, ok := call.Fun.(*ast.SelectorExpr); ok && se.Sel.Name == "Put" && c.isPoolExpr(se.X) {
		isPut = true
	}
	for _, a := range call.Args {
		root := c.aliasRoot(a)
		if root == nil || !c.tainted(root) {
			continue
		}
		obj := c.objOf(root)
		if isPut {
			c.put[obj] = true
		} else {
			c.calls[obj] = true
		}
	}
}

func (c *checker) escape(root *ast.Ident, pos token.Pos, how string) {
	obj := c.objOf(root)
	c.escaped[obj] = true
	if c.pass.Suppressed(directive, pos) {
		return
	}
	c.pass.Reportf(pos, "sync.Pool buffer %s escapes its request: %s; the pooled-frame discipline requires Get/Put within one request (or annotate //lsm:poolleak-ok <why>)",
		root.Name, how)
}

// aliasRoot unwraps an expression to the identifier it aliases, through
// parens, dereference, address-of, slicing and type assertion — the
// no-copy transformations a pooled buffer flows through.
func (c *checker) aliasRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (c *checker) tainted(id *ast.Ident) bool {
	obj := c.objOf(id)
	if obj == nil {
		return false
	}
	_, ok := c.taint[obj]
	return ok
}

func (c *checker) objOf(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// isPoolGet matches pool.Get() calls, optionally wrapped in a type
// assertion: x := pool.Get().(*[]byte).
func (c *checker) isPoolGet(e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || se.Sel.Name != "Get" {
		return false
	}
	return c.isPoolExpr(se.X)
}

// isPoolExpr reports whether e has type sync.Pool or *sync.Pool.
func (c *checker) isPoolExpr(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}
