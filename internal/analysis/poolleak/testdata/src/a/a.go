// Package a is the poolleak analyzer's test fixture.
package a

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

type holder struct{ buf *[]byte }

var global *[]byte

func fill(p *[]byte) {}

// roundTrip is the blessed pattern — Get, use, Put — and must produce no
// diagnostic.
func roundTrip() {
	bp := pool.Get().(*[]byte)
	*bp = append((*bp)[:0], 1, 2, 3)
	pool.Put(bp)
}

func escapesReturn() *[]byte {
	bp := pool.Get().(*[]byte)
	return bp // want `escapes its request: returned to the caller`
}

func escapesChannel(ch chan *[]byte) {
	bp := pool.Get().(*[]byte)
	ch <- bp // want `escapes its request: sent on a channel`
}

func escapesField(h *holder) {
	bp := pool.Get().(*[]byte)
	h.buf = bp // want `escapes its request: stored into a struct field`
}

func escapesGlobal() {
	bp := pool.Get().(*[]byte)
	global = bp // want `escapes its request: stored into a package-level variable`
}

func escapesGoroutine() {
	bp := pool.Get().(*[]byte)
	go func() { pool.Put(bp) }() // want `escapes its request: captured by a goroutine`
}

func aliasEscape() []byte {
	bp := pool.Get().(*[]byte)
	buf := (*bp)[:0]
	return buf // want `escapes its request: returned to the caller`
}

func leaks() {
	bp := pool.Get().(*[]byte) // want `never returned with Put`
	*bp = (*bp)[:0]
}

// handedOff passes the buffer to a callee, which may Put it: out of this
// analysis's intraprocedural scope, so no diagnostic.
func handedOff() {
	bp := pool.Get().(*[]byte)
	fill(bp)
}

// justified hands the buffer to a consumer goroutine by design — the
// server's writer-goroutine pattern.
func justified(ch chan *[]byte) {
	bp := pool.Get().(*[]byte)
	ch <- bp //lsm:poolleak-ok test fixture: consumer Puts after the flush
}

// emptyReason shows an annotation without a justification: it does not
// suppress, and the directive itself is flagged.
func emptyReason(ch chan *[]byte) {
	bp := pool.Get().(*[]byte)
	ch <- bp /*lsm:poolleak-ok*/ // want `directive needs a justification` `escapes its request: sent on a channel`
}
