// Package workload implements the paper's synthetic tweet generator
// (Section 6.1): YCSB lacks secondary keys and secondary-index queries, so
// the evaluation uses tweets with a random 64-bit ID primary key, a user id
// uniform in [0, 100K), a monotonically increasing creation time, and a
// random message of 450-550 bytes (~500-byte records). Update streams
// follow either a uniform distribution over past keys or a Zipf
// distribution with theta 0.99, as in YCSB.
package workload

import (
	"math"
	"math/rand"

	"repro/internal/kv"
)

// Tweet is one generated record.
type Tweet struct {
	ID       uint64
	UserID   uint32
	Creation int64
	Message  []byte
}

// Record layout: creation(8) | userID(4) | messageLen(2) | message.
const tweetHeader = 14

// Encode serializes the tweet's non-key attributes as the stored record.
func (t Tweet) Encode() []byte {
	rec := make([]byte, 0, tweetHeader+len(t.Message))
	rec = kv.AppendUint64(rec, uint64(t.Creation))
	rec = append(rec, byte(t.UserID>>24), byte(t.UserID>>16), byte(t.UserID>>8), byte(t.UserID))
	rec = append(rec, byte(len(t.Message)>>8), byte(len(t.Message)))
	rec = append(rec, t.Message...)
	return rec
}

// PK returns the tweet's primary key encoding.
func (t Tweet) PK() []byte { return kv.EncodeUint64(t.ID) }

// UserIDOf extracts the user-id secondary key from an encoded record.
func UserIDOf(rec []byte) ([]byte, bool) {
	if len(rec) < tweetHeader {
		return nil, false
	}
	return rec[8:12], true
}

// CreationOf extracts the creation-time filter key from an encoded record.
func CreationOf(rec []byte) (int64, bool) {
	if len(rec) < 8 {
		return 0, false
	}
	return int64(kv.DecodeUint64(rec[:8])), true
}

// UserKey encodes a user id as a secondary search key.
func UserKey(u uint32) []byte {
	return []byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)}
}

// Config tunes the generator.
type Config struct {
	// Seed makes streams reproducible.
	Seed int64
	// UserIDRange bounds user ids (100K in the paper).
	UserIDRange uint32
	// MessageMin/MessageMax bound message lengths (450-550 in the paper).
	MessageMin, MessageMax int
	// SequentialIDs issues primary keys 1,2,3,... instead of random 64-bit
	// integers (the Figure 12b "scan (seq keys)" dataset).
	SequentialIDs bool
	// UpdateRatio is the fraction of upserts hitting past keys.
	UpdateRatio float64
	// ZipfUpdates draws updated keys from a Zipf(0.99) distribution over
	// past keys (recent keys updated more often); otherwise uniform.
	ZipfUpdates bool
	// DuplicateRatio is the fraction of *inserts* re-using past keys
	// (the Figure 13 insert workload's duplicate knob).
	DuplicateRatio float64
}

// DefaultConfig mirrors Section 6.1.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		UserIDRange: 100_000,
		MessageMin:  450,
		MessageMax:  550,
	}
}

// Generator produces tweet streams.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *zipfPast
	// past holds previously issued primary keys, for updates/duplicates.
	past     []uint64
	nextSeq  uint64
	creation int64
	msgBuf   []byte
}

// NewGenerator creates a generator.
func NewGenerator(cfg Config) *Generator {
	if cfg.UserIDRange == 0 {
		cfg.UserIDRange = 100_000
	}
	if cfg.MessageMax < cfg.MessageMin {
		cfg.MessageMax = cfg.MessageMin
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.zipf = newZipfPast(0.99)
	return g
}

// Op is one generated operation. Tweet.Message aliases an internal buffer
// that is reused by the next call to Next; encode or copy it first.
type Op struct {
	Tweet Tweet
	// IsUpdate marks an upsert of a past key (or a duplicate insert).
	IsUpdate bool
}

// Next produces the next operation of the stream.
func (g *Generator) Next() Op {
	g.creation++
	var id uint64
	isUpdate := false
	switch {
	case len(g.past) > 0 && g.cfg.UpdateRatio > 0 && g.rng.Float64() < g.cfg.UpdateRatio:
		id = g.pickPast()
		isUpdate = true
	case len(g.past) > 0 && g.cfg.DuplicateRatio > 0 && g.rng.Float64() < g.cfg.DuplicateRatio:
		// Duplicate insert: a past key, uniformly (Section 6.3.1).
		id = g.past[g.rng.Intn(len(g.past))]
		isUpdate = true
	default:
		id = g.newKey()
		g.past = append(g.past, id)
	}
	msgLen := g.cfg.MessageMin
	if g.cfg.MessageMax > g.cfg.MessageMin {
		msgLen += g.rng.Intn(g.cfg.MessageMax - g.cfg.MessageMin + 1)
	}
	if cap(g.msgBuf) < msgLen {
		g.msgBuf = make([]byte, msgLen)
	}
	msg := g.msgBuf[:msgLen]
	for i := range msg {
		msg[i] = byte('a' + g.rng.Intn(26))
	}
	return Op{
		Tweet: Tweet{
			ID:       id,
			UserID:   uint32(g.rng.Intn(int(g.cfg.UserIDRange))),
			Creation: g.creation,
			Message:  msg,
		},
		IsUpdate: isUpdate,
	}
}

func (g *Generator) newKey() uint64 {
	if g.cfg.SequentialIDs {
		g.nextSeq++
		return g.nextSeq
	}
	for {
		id := g.rng.Uint64()
		if id != 0 {
			return id
		}
	}
}

// pickPast selects a past key uniformly or Zipf-skewed toward recent keys.
func (g *Generator) pickPast() uint64 {
	n := len(g.past)
	if !g.cfg.ZipfUpdates {
		return g.past[g.rng.Intn(n)]
	}
	// Zipf rank 1 = most recent key.
	rank := g.zipf.sample(g.rng, n)
	return g.past[n-rank]
}

// NumPast returns how many distinct keys have been issued.
func (g *Generator) NumPast() int { return len(g.past) }

// PastKey returns the i-th issued key.
func (g *Generator) PastKey(i int) uint64 { return g.past[i] }

// zipfPast samples ranks 1..n from a Zipf distribution with the given
// theta, using the rejection-free approximation of Gray et al. (the same
// construction YCSB uses). The distribution is re-derived cheaply for any
// n, which matters because the key space keeps growing during ingestion.
type zipfPast struct {
	theta float64
	alpha float64
	// cached values for the current n
	n     int
	zetaN float64
	eta   float64
	zeta2 float64
}

func newZipfPast(theta float64) *zipfPast {
	z := &zipfPast{theta: theta, alpha: 1 / (1 - theta)}
	z.zeta2 = zetaStatic(2, theta)
	return z
}

func zetaStatic(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// refresh recomputes cached constants when n grows materially. An exact
// zeta(n) is O(n); the YCSB incremental update only adds the new terms.
func (z *zipfPast) refresh(n int) {
	if z.n == 0 {
		z.zetaN = zetaStatic(n, z.theta)
	} else {
		for i := z.n + 1; i <= n; i++ {
			z.zetaN += 1 / math.Pow(float64(i), z.theta)
		}
	}
	z.n = n
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetaN)
}

func (z *zipfPast) sample(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 1
	}
	if n > z.n {
		z.refresh(n)
	}
	u := rng.Float64()
	uz := u * z.zetaN
	if uz < 1 {
		return 1
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 2
	}
	rank := 1 + int(float64(n)*math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank > n {
		rank = n
	}
	return rank
}
