package workload

import (
	"math"
	"testing"
)

func TestTweetEncodeExtract(t *testing.T) {
	tw := Tweet{ID: 42, UserID: 77, Creation: 12345, Message: []byte("hello world")}
	rec := tw.Encode()
	u, ok := UserIDOf(rec)
	if !ok || len(u) != 4 {
		t.Fatal("UserIDOf failed")
	}
	if string(u) != string(UserKey(77)) {
		t.Fatalf("user key mismatch: %x", u)
	}
	c, ok := CreationOf(rec)
	if !ok || c != 12345 {
		t.Fatalf("CreationOf = %d, %v", c, ok)
	}
	if len(tw.PK()) != 8 {
		t.Fatal("PK length")
	}
	if _, ok := UserIDOf([]byte("short")); ok {
		t.Fatal("short record accepted")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(DefaultConfig(5))
	g2 := NewGenerator(DefaultConfig(5))
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Tweet.ID != b.Tweet.ID || a.Tweet.UserID != b.Tweet.UserID {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestGeneratorBasicProperties(t *testing.T) {
	cfg := DefaultConfig(1)
	g := NewGenerator(cfg)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		op := g.Next()
		tw := op.Tweet
		if tw.ID == 0 {
			t.Fatal("zero primary key")
		}
		if tw.UserID >= cfg.UserIDRange {
			t.Fatalf("user id %d out of range", tw.UserID)
		}
		if len(tw.Message) < cfg.MessageMin || len(tw.Message) > cfg.MessageMax {
			t.Fatalf("message length %d", len(tw.Message))
		}
		if tw.Creation != int64(i+1) {
			t.Fatalf("creation %d at op %d: must be monotone", tw.Creation, i)
		}
		if op.IsUpdate {
			t.Fatalf("op %d: update without UpdateRatio", i)
		}
		if seen[tw.ID] {
			t.Fatalf("duplicate key without DuplicateRatio")
		}
		seen[tw.ID] = true
	}
	if g.NumPast() != 5000 {
		t.Fatalf("NumPast = %d", g.NumPast())
	}
}

func TestUpdateRatioApproximate(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.UpdateRatio = 0.5
	g := NewGenerator(cfg)
	updates := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().IsUpdate {
			updates++
		}
	}
	ratio := float64(updates) / n
	if math.Abs(ratio-0.5) > 0.03 {
		t.Fatalf("update ratio = %.3f, want ~0.5", ratio)
	}
}

func TestDuplicateRatioApproximate(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.DuplicateRatio = 0.5
	g := NewGenerator(cfg)
	dups := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().IsUpdate {
			dups++
		}
	}
	ratio := float64(dups) / n
	if math.Abs(ratio-0.5) > 0.03 {
		t.Fatalf("duplicate ratio = %.3f, want ~0.5", ratio)
	}
}

func TestSequentialIDs(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.SequentialIDs = true
	g := NewGenerator(cfg)
	for i := 1; i <= 100; i++ {
		if op := g.Next(); op.Tweet.ID != uint64(i) {
			t.Fatalf("sequential id %d at %d", op.Tweet.ID, i)
		}
	}
}

func TestZipfSkewsTowardLowRanks(t *testing.T) {
	// Rank 1 is the most recently ingested key; Zipf(0.99) must
	// concentrate mass on low ranks (YCSB's "latest" flavor).
	z := newZipfPast(0.99)
	g := NewGenerator(DefaultConfig(6))
	const n = 10000
	const samples = 20000
	lowDecile := 0
	var sum float64
	for i := 0; i < samples; i++ {
		r := z.sample(g.rng, n)
		if r <= n/10 {
			lowDecile++
		}
		sum += float64(r)
	}
	fracLow := float64(lowDecile) / samples
	if fracLow < 0.5 {
		t.Fatalf("P(rank <= n/10) = %.3f, want > 0.5 for theta 0.99", fracLow)
	}
	if mean := sum / samples; mean > float64(n)/4 {
		t.Fatalf("mean rank %.0f too high for Zipf(0.99)", mean)
	}
}

func TestZipfRanksBounded(t *testing.T) {
	z := newZipfPast(0.99)
	for _, n := range []int{1, 2, 10, 1000, 100000} {
		g := NewGenerator(DefaultConfig(9))
		for i := 0; i < 100; i++ {
			r := z.sample(g.rng, n)
			if r < 1 || r > n {
				t.Fatalf("rank %d for n=%d", r, n)
			}
		}
	}
}

func TestUniformUpdatesNotSkewed(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.UpdateRatio = 0.5
	g := NewGenerator(cfg)
	for i := 0; i < 2000; i++ {
		g.Next()
	}
	recentSet := map[uint64]bool{}
	half := g.NumPast() / 2
	for i := half; i < g.NumPast(); i++ {
		recentSet[g.PastKey(i)] = true
	}
	recent, total := 0, 0
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if !op.IsUpdate {
			continue
		}
		total++
		if recentSet[op.Tweet.ID] {
			recent++
		}
	}
	frac := float64(recent) / float64(total)
	if frac > 0.65 {
		t.Fatalf("uniform updates skewed: %.3f recent", frac)
	}
}
