package core

import (
	"errors"

	"repro/internal/kv"
	"repro/internal/wal"
)

// Crash simulates a failure under the no-steal/no-force policy
// (Section 2.2): every memory component is lost — the live memtables and
// any memtables frozen by in-flight asynchronous flushes alike; disk
// components — and, in this simulation, their checkpointed bitmaps —
// survive. Maintenance jobs caught mid-build or mid-merge abandon their
// installs (the trees' install generations change), exactly as a real
// failure discards a half-written component. Use Recover to replay the
// write-ahead log afterwards.
func (d *Dataset) Crash() {
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	// crashMu makes the generation bump atomic with respect to multi-tree
	// installs: a flush batch or paired primary/pk merge lands either
	// entirely before this crash (durable) or not at all.
	d.crashMu.Lock()
	defer d.crashMu.Unlock()
	d.crashAsync()
	d.dsLock.Drain(func() {
		d.primary.ResetMem()
		if d.pkIndex != nil {
			d.pkIndex.ResetMem()
		}
		for _, si := range d.secondaries {
			si.Tree.ResetMem()
			si.mu.Lock()
			if si.memDeleted != nil {
				si.memDeleted = make(map[string]int64)
			}
			si.pendingDeleted = nil
			si.mu.Unlock()
		}
	})
}

// ErrNoWAL reports recovery without a write-ahead log.
var ErrNoWAL = errors.New("core: recovery requires the write-ahead log")

// Recover replays committed transactions whose effects were lost in a
// crash. As in AsterixDB (Section 2.2), the system first computes the
// maximum component timestamp across all indexes; committed operations
// beyond it are re-executed from their logical log records. No undo is
// needed: the no-steal policy guarantees disk components hold only
// committed data. Bitmap mutations are replayed only for records whose
// update bit is set (Section 5.2).
func (d *Dataset) Recover() error {
	if d.log == nil {
		return ErrNoWAL
	}
	maxComponentTS := d.maxComponentTS()
	err := d.log.Replay(0, func(r wal.Record) error {
		if r.TS <= maxComponentTS {
			return nil // already durable in a disk component
		}
		// Keep the ingestion clock ahead of every replayed timestamp.
		for cur := d.clock.Load(); cur < r.TS; cur = d.clock.Load() {
			d.clock.CompareAndSwap(cur, r.TS)
		}
		switch r.Type {
		case wal.RecInsert:
			d.putAllIndexes(r.Key, r.Value, r.TS)
			d.widenFilterFor(r.Value)
		case wal.RecUpsert:
			return d.replayUpsert(r)
		case wal.RecDelete:
			return d.replayDelete(r)
		}
		return nil
	})
	if err != nil {
		return err
	}
	d.ingested.Store(d.ingested.Load()) // counters unchanged; kept for clarity
	return nil
}

// maxComponentTS returns the newest timestamp durable in any disk
// component across all indexes (-1 on an empty store): log records at or
// below it are covered and need no replay.
func (d *Dataset) maxComponentTS() int64 {
	maxTS := int64(-1)
	for _, tr := range d.allTrees() {
		for _, c := range tr.Components() {
			if c.ID.MaxTS > maxTS {
				maxTS = c.ID.MaxTS
			}
		}
	}
	return maxTS
}

// replayBitmapMark re-executes a logged bitmap mutation, applying the
// deferred forward immediately: replay is single-threaded and already
// durable, so there is nothing to roll back.
func (d *Dataset) replayBitmapMark(key []byte) error {
	_, _, _, commit, err := d.markDeletedViaBitmap(key)
	if err != nil {
		return err
	}
	if commit != nil {
		commit()
	}
	return nil
}

func (d *Dataset) replayUpsert(r wal.Record) error {
	switch d.cfg.Strategy {
	case Eager:
		old, found, err := d.primary.Get(r.Key)
		if err != nil {
			return err
		}
		for _, si := range d.secondaries {
			newSK, hasNew := si.Spec.Extract(r.Value)
			if found {
				oldSK, hasOld := si.Spec.Extract(old.Value)
				if hasOld && hasNew && kv.Compare(oldSK, newSK) == 0 {
					continue
				}
				if hasOld {
					si.Tree.Put(kv.Entry{Key: kv.ComposeKey(oldSK, r.Key), TS: r.TS, Anti: true})
				}
			}
			if hasNew {
				si.Tree.Put(kv.Entry{Key: kv.ComposeKey(newSK, r.Key), TS: r.TS})
			}
		}
		d.primary.Put(kv.Entry{Key: r.Key, Value: r.Value, TS: r.TS})
		if d.pkIndex != nil {
			d.pkIndex.Put(kv.Entry{Key: r.Key, TS: r.TS})
		}
		if found {
			d.widenFilterFor(old.Value)
		}
		d.widenFilterFor(r.Value)
	case MutableBitmap:
		if r.UpdateBit {
			// Replay the bitmap mutation; Set is idempotent, so records
			// whose bitmap page was checkpointed are harmless to replay.
			if err := d.replayBitmapMark(r.Key); err != nil {
				return err
			}
		}
		d.cleanSecondariesFromMem(r.Key, r.TS)
		d.putAllIndexes(r.Key, r.Value, r.TS)
		d.widenFilterFor(r.Value)
	default: // Validation, DeletedKey
		d.cleanSecondariesFromMem(r.Key, r.TS)
		d.putAllIndexes(r.Key, r.Value, r.TS)
		for _, si := range d.secondaries {
			if si.memDeleted != nil {
				si.addMemDeleted(r.Key, r.TS)
			}
		}
		d.widenFilterFor(r.Value)
	}
	return nil
}

func (d *Dataset) replayDelete(r wal.Record) error {
	switch d.cfg.Strategy {
	case Eager:
		old, found, err := d.primary.Get(r.Key)
		if err != nil {
			return err
		}
		if found {
			for _, si := range d.secondaries {
				if sk, ok := si.Spec.Extract(old.Value); ok {
					si.Tree.Put(kv.Entry{Key: kv.ComposeKey(sk, r.Key), TS: r.TS, Anti: true})
				}
			}
			d.widenFilterFor(old.Value)
		}
	case MutableBitmap:
		if r.UpdateBit {
			if err := d.replayBitmapMark(r.Key); err != nil {
				return err
			}
		}
		d.cleanSecondariesFromMem(r.Key, r.TS)
	default:
		d.cleanSecondariesFromMem(r.Key, r.TS)
		for _, si := range d.secondaries {
			if si.memDeleted != nil {
				si.addMemDeleted(r.Key, r.TS)
			}
		}
	}
	d.putAnti(r.Key, r.TS)
	return nil
}
