package core

import (
	"fmt"
	"testing"

	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/storage"
)

func benchDataset(b *testing.B, strategy Strategy) *Dataset {
	b.Helper()
	env := metrics.NopEnv()
	disk := storage.NewDisk(storage.ScaledHDD(32<<10), env)
	store := storage.NewStore(disk, 16<<20, env)
	cfg := Config{
		Store:        store,
		Strategy:     strategy,
		Secondaries:  []SecondarySpec{{Name: "location", Extract: recLocation}},
		MemoryBudget: 1 << 20,
		UsePKIndex:   true,
		BloomFPR:     0.01,
		Policy:       lsm.NewTiering(8 << 20),
		DisableWAL:   true,
		Seed:         2,
	}
	d, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkUpsertByStrategy measures per-operation real cost of the write
// paths (the virtual clock measures simulated cost; this measures the
// implementation itself).
func BenchmarkUpsertByStrategy(b *testing.B) {
	for _, strategy := range []Strategy{Eager, Validation, MutableBitmap, DeletedKey} {
		strategy := strategy
		b.Run(strategy.String(), func(b *testing.B) {
			d := benchDataset(b, strategy)
			rec := testRecord("CA", 2015)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Upsert(pkOf(uint64(i%50000)), rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPointGet measures reconciled reads across several components.
func BenchmarkPointGet(b *testing.B) {
	d := benchDataset(b, Eager)
	for i := 0; i < 50000; i++ {
		if err := d.Upsert(pkOf(uint64(i)), testRecord(fmt.Sprintf("L%02d", i%20), 2015)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, found, err := d.Primary().Get(pkOf(uint64(i*31) % 50000))
		if err != nil || !found {
			b.Fatal(err, found)
		}
	}
}

// BenchmarkFlush measures memory-component bulk loads.
func BenchmarkFlush(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := benchDataset(b, Validation)
		for j := 0; j < 5000; j++ {
			if err := d.Upsert(pkOf(uint64(j)), testRecord("CA", 2015)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := d.FlushAll(); err != nil {
			b.Fatal(err)
		}
	}
}
