package core

import (
	"bytes"
	"runtime"

	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/memtable"
	"repro/internal/txn"
	"repro/internal/wal"
)

// withWriteLocks runs one record-level write transaction: the writer is
// registered with the dataset lock (so Side-file drains can wait for it)
// and holds an exclusive lock on the primary key (Section 5.2). The flush
// check runs after both locks are released — flushing drains writers, so it
// must never run while this writer is still registered.
func (d *Dataset) withWriteLocks(pk []byte, fn func() error) error {
	d.dsLock.Enter()
	defer d.dsLock.Exit()
	d.locks.Lock(pk, txn.Exclusive)
	defer d.locks.Unlock(pk, txn.Exclusive)
	return fn()
}

// Insert adds a new record under pk. It returns false when the key already
// exists (the record is ignored, Section 3.1). All strategies handle
// inserts identically up to timestamping: key uniqueness is checked with a
// point lookup against the primary key index when available, else the
// primary index.
func (d *Dataset) Insert(pk, record []byte) (bool, error) {
	ts := d.NextTS()
	inserted := false
	err := d.withWriteLocks(pk, func() error {
		exists, err := d.keyExists(pk)
		if err != nil {
			return err
		}
		if exists {
			d.ignored.Add(1)
			return nil
		}
		d.logOp(wal.RecInsert, pk, record, ts, false)
		d.putAllIndexes(pk, record, ts)
		d.widenFilterFor(record)
		d.ingested.Add(1)
		inserted = true
		return nil
	})
	if err != nil {
		return false, err
	}
	if !inserted {
		return false, nil
	}
	return true, d.maybeFlush()
}

// Delete removes the record under pk, if any. It returns false when the key
// does not exist.
func (d *Dataset) Delete(pk []byte) (bool, error) {
	ts := d.NextTS()
	deleted := false
	err := d.withWriteLocks(pk, func() error {
		ok, err := d.deleteLocked(pk, ts)
		deleted = ok
		return err
	})
	if err != nil {
		return false, err
	}
	if !deleted {
		return false, nil
	}
	return true, d.maybeFlush()
}

func (d *Dataset) deleteLocked(pk []byte, ts int64) (bool, error) {
	switch d.cfg.Strategy {
	case Eager:
		// Point lookup fetches the old record so anti-matter can be
		// produced for every index and filters widened (Section 3.1).
		old, found, err := d.primary.Get(pk)
		if err != nil {
			return false, err
		}
		if !found {
			d.ignored.Add(1)
			return false, nil
		}
		d.logOp(wal.RecDelete, pk, nil, ts, false)
		d.putAnti(pk, ts)
		for _, si := range d.secondaries {
			if sk, ok := si.Spec.Extract(old.Value); ok {
				si.Tree.Put(kv.Entry{Key: kv.ComposeKey(sk, pk), TS: ts, Anti: true})
			}
		}
		d.widenFilterFor(old.Value)

	case Validation:
		// Anti-matter goes to the primary and primary key indexes only
		// (Section 4.2); obsolete secondary entries are repaired later.
		d.logOp(wal.RecDelete, pk, nil, ts, false)
		d.cleanSecondariesFromMem(pk, ts)
		d.putAnti(pk, ts)

	case MutableBitmap:
		updateBit, existed, err := d.markDeletedViaBitmap(pk)
		if err != nil {
			return false, err
		}
		if !existed {
			d.ignored.Add(1)
			return false, nil
		}
		// An anti-matter key is still added (Section 5.2): the bitmap is
		// an auxiliary structure and must not change LSM semantics, and
		// it keeps Validation-maintained secondaries repairable.
		d.logOp(wal.RecDelete, pk, nil, ts, updateBit)
		d.cleanSecondariesFromMem(pk, ts)
		d.putAnti(pk, ts)

	case DeletedKey:
		d.logOp(wal.RecDelete, pk, nil, ts, false)
		d.putAnti(pk, ts)
		for _, si := range d.secondaries {
			si.addMemDeleted(pk, ts)
		}
	}
	d.ingested.Add(1)
	return true, nil
}

// Upsert inserts record under pk, replacing any existing record. This is
// the operation where the strategies differ most (Sections 3.1, 4.2, 5.2).
func (d *Dataset) Upsert(pk, record []byte) error {
	ts := d.NextTS()
	if err := d.withWriteLocks(pk, func() error {
		return d.upsertLocked(pk, record, ts)
	}); err != nil {
		return err
	}
	return d.maybeFlush()
}

func (d *Dataset) upsertLocked(pk, record []byte, ts int64) error {
	switch d.cfg.Strategy {
	case Eager:
		// Point lookup to fetch the old record; anti-matter entries clean
		// each secondary index whose key changed; filters are maintained
		// with both the old and the new record (Figure 3).
		old, found, err := d.primary.Get(pk)
		if err != nil {
			return err
		}
		d.logOp(wal.RecUpsert, pk, record, ts, false)
		for _, si := range d.secondaries {
			newSK, hasNew := si.Spec.Extract(record)
			if found {
				oldSK, hasOld := si.Spec.Extract(old.Value)
				if hasOld && hasNew && bytes.Equal(oldSK, newSK) {
					// Unchanged secondary key: skip maintenance entirely.
					continue
				}
				if hasOld {
					si.Tree.Put(kv.Entry{Key: kv.ComposeKey(oldSK, pk), TS: ts, Anti: true})
				}
			}
			if hasNew {
				si.Tree.Put(kv.Entry{Key: kv.ComposeKey(newSK, pk), TS: ts})
			}
		}
		d.primary.Put(kv.Entry{Key: pk, Value: record, TS: ts})
		if d.pkIndex != nil {
			d.pkIndex.Put(kv.Entry{Key: pk, TS: ts})
		}
		if found {
			d.widenFilterFor(old.Value)
		}
		d.widenFilterFor(record)

	case Validation:
		// Blind insert into every index (Figure 4); filters maintained
		// with the new record only.
		d.logOp(wal.RecUpsert, pk, record, ts, false)
		d.cleanSecondariesFromMem(pk, ts)
		d.putAllIndexes(pk, record, ts)
		d.widenFilterFor(record)

	case MutableBitmap:
		// The primary key index locates the old record; if it lives in a
		// disk component its bitmap bit is set (Figure 9). Filters are
		// maintained with the new record only.
		updateBit, _, err := d.markDeletedViaBitmap(pk)
		if err != nil {
			return err
		}
		d.logOp(wal.RecUpsert, pk, record, ts, updateBit)
		d.cleanSecondariesFromMem(pk, ts)
		d.putAllIndexes(pk, record, ts)
		d.widenFilterFor(record)

	case DeletedKey:
		d.logOp(wal.RecUpsert, pk, record, ts, false)
		d.putAllIndexes(pk, record, ts)
		for _, si := range d.secondaries {
			si.addMemDeleted(pk, ts)
		}
		d.widenFilterFor(record)
	}
	d.ingested.Add(1)
	return nil
}

// keyExists checks primary-key uniqueness via the primary key index when
// available (the Section 3.1 optimization), else the primary index.
func (d *Dataset) keyExists(pk []byte) (bool, error) {
	if d.pkIndex != nil {
		_, found, err := d.pkIndex.Get(pk)
		return found, err
	}
	_, found, err := d.primary.Get(pk)
	return found, err
}

// putAllIndexes inserts the new record into the primary index, the primary
// key index, and every secondary index.
func (d *Dataset) putAllIndexes(pk, record []byte, ts int64) {
	d.primary.Put(kv.Entry{Key: pk, Value: record, TS: ts})
	if d.pkIndex != nil {
		d.pkIndex.Put(kv.Entry{Key: pk, TS: ts})
	}
	for _, si := range d.secondaries {
		if sk, ok := si.Spec.Extract(record); ok {
			si.Tree.Put(kv.Entry{Key: kv.ComposeKey(sk, pk), TS: ts})
		}
	}
}

// putAnti inserts anti-matter for pk into the primary and primary key
// indexes.
func (d *Dataset) putAnti(pk []byte, ts int64) {
	d.primary.Put(kv.Entry{Key: pk, TS: ts, Anti: true})
	if d.pkIndex != nil {
		d.pkIndex.Put(kv.Entry{Key: pk, TS: ts, Anti: true})
	}
}

// widenFilterFor widens the memory components' range filter with the
// record's filter key.
func (d *Dataset) widenFilterFor(record []byte) {
	if d.cfg.FilterExtract == nil || record == nil {
		return
	}
	if v, ok := d.cfg.FilterExtract(record); ok {
		d.primary.WidenMemFilter(v)
	}
}

// cleanSecondariesFromMem implements the Section 4.2 optimization: when the
// old record still resides in the primary memory component, it is free to
// produce local anti-matter entries that clean the secondary indexes.
func (d *Dataset) cleanSecondariesFromMem(pk []byte, ts int64) {
	if len(d.secondaries) == 0 {
		return
	}
	old, ok := d.primary.Mem().Get(pk)
	if !ok || old.Anti {
		return
	}
	for _, si := range d.secondaries {
		if sk, has := si.Spec.Extract(old.Value); has {
			si.Tree.Put(kv.Entry{Key: kv.ComposeKey(sk, pk), TS: ts, Anti: true})
		}
	}
}

// markDeletedViaBitmap performs the Mutable-bitmap delete/upsert search
// (Figures 10b, 11b): find the newest version of pk via the memory
// component, the memtables frozen by in-flight asynchronous flushes, and
// then the primary key index; when it lives in a disk component, set the
// component's bitmap bit and forward the delete to any component under
// construction. A version still in a frozen memtable forwards the delete to
// its flush batch, which applies it to the built component's bitmap before
// install. It reports whether a disk bitmap bit was flipped or forwarded
// (the log record's update bit) and whether the key currently exists.
func (d *Dataset) markDeletedViaBitmap(pk []byte) (updateBit, existed bool, err error) {
	if d.pkIndex == nil {
		return false, false, ErrNoPKIndex
	}
	var lastGone *memtable.Table
	for {
		// Memory component first: a blind Put will supersede it; no bitmap
		// work.
		if e, ok := d.pkIndex.Mem().Get(pk); ok {
			return false, !e.Anti, nil
		}
		if e, tbl, ok := d.pkIndex.FrozenGet(pk); ok {
			if e.Anti {
				return false, false, nil
			}
			if d.maint == nil {
				// Synchronous flushes drain writers for the whole build, so
				// a writer can never observe a frozen memtable; defensive
				// fallback mirroring the memory-component case.
				return false, true, nil
			}
			if b := d.batchForPKTable(tbl); b != nil {
				forwarded, sealedComp := b.addFrozenDelete(pk)
				if forwarded {
					return true, true, nil
				}
				if sealedComp != nil {
					// The batch sealed (its component is built, the
					// forwarded set already applied): treat the sealed
					// component exactly like a disk-component hit — set
					// its bitmap bit and forward the delete to any merge
					// already building over it.
					_, ordinal, found, err := sealedComp.BTree.Get(pk)
					if err != nil {
						return false, false, err
					}
					if found {
						if sealedComp.Valid != nil {
							sealedComp.Valid.Set(ordinal)
						}
						d.forwardDelete(sealedComp, pk)
						return true, true, nil
					}
					// Defensive: the frozen table held pk, so its built
					// component must too; fall through and re-search.
				}
			}
			if lastGone == tbl {
				// Seen twice with no owning batch: the table is frozen but
				// its batch is gone, so a crash is tearing the queue down
				// (and its writer drain is waiting on us — retrying would
				// deadlock) or the maintenance pool closed mid-freeze. The
				// version dies with the frozen memtable; the blind
				// anti-matter put supersedes it exactly like a
				// memory-component hit, and WAL replay reconstructs the
				// delete after the crash. An installed batch never shows
				// this signature: its memtable leaves the frozen queue
				// before its batch registration is dropped.
				return false, true, nil
			}
			lastGone = tbl
			// The owning batch may have just installed; re-run the search
			// against the updated state.
			runtime.Gosched()
			continue
		}
		e, comp, ordinal, found, err := d.pkIndex.GetWithLocation(pk, d.pkIndex.Components())
		if err != nil || !found || e.Anti {
			return false, false, err
		}
		if comp == nil {
			return false, true, nil
		}
		if comp.Valid != nil {
			comp.Valid.Set(ordinal)
		}
		d.forwardDelete(comp, pk)
		return true, true, nil
	}
}

// forwardDelete propagates a delete into the component currently being
// built from comp, per the configured concurrency-control method.
func (d *Dataset) forwardDelete(comp *lsm.Component, pk []byte) {
	bt := comp.Building
	if bt == nil {
		return
	}
	if bt.SideFile != nil {
		// Side-file method (Fig 11b): append; if the side-file has been
		// closed, apply the delete to the new component directly.
		if bt.SideFile.Append(pk) {
			return
		}
	}
	// Lock method (Fig 10b lines 6-7), or side-file-closed fallback.
	bt.ForwardDelete(pk)
}

// logOp appends one logical log record and its commit record.
func (d *Dataset) logOp(t wal.RecordType, pk, record []byte, ts int64, updateBit bool) {
	if d.log == nil {
		return
	}
	id := d.ids.Next()
	d.log.Append(wal.Record{
		TxnID:     id,
		Type:      t,
		Index:     "dataset",
		Key:       append([]byte(nil), pk...),
		Value:     append([]byte(nil), record...),
		TS:        ts,
		UpdateBit: updateBit,
	})
	d.log.Commit(id)
}
