package core

import (
	"bytes"
	"runtime"

	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/memtable"
	"repro/internal/txn"
	"repro/internal/wal"
)

// withWriteLocks runs one record-level write transaction: the writer is
// registered with the dataset lock (so Side-file drains can wait for it)
// and holds an exclusive lock on the primary key (Section 5.2). The flush
// check runs after both locks are released — flushing drains writers, so it
// must never run while this writer is still registered.
//
// The ingestion timestamp is drawn INSIDE the registered window and handed
// to fn. This ordering is load-bearing for recovery: flushes freeze
// memtables under a writer drain, so every timestamp issued before a
// freeze has its entry in the frozen memtable, and a flushed component's
// MaxTS can never cover a timestamp whose write is still in flight. WAL
// replay (and on-disk WAL compaction) drop records with TS <= the maximum
// durable component timestamp — drawing the timestamp before registering
// would let a stalled writer log an acknowledged write that replay then
// skips forever.
func (d *Dataset) withWriteLocks(pk []byte, fn func(ts int64) error) error {
	d.dsLock.Enter()
	defer d.dsLock.Exit()
	d.locks.Lock(pk, txn.Exclusive)
	defer d.locks.Unlock(pk, txn.Exclusive)
	// A sticky WAL-durability failure makes the dataset read-only: fail
	// here, before any strategy mutates shared state (the Mutable-bitmap
	// paths flip disk bitmaps before logging).
	if d.log != nil {
		if err := d.log.SinkErr(); err != nil {
			return err
		}
	}
	return fn(d.NextTS())
}

// Insert adds a new record under pk. It returns false when the key already
// exists (the record is ignored, Section 3.1). All strategies handle
// inserts identically up to timestamping: key uniqueness is checked with a
// point lookup against the primary key index when available, else the
// primary index.
func (d *Dataset) Insert(pk, record []byte) (bool, error) {
	return d.InsertBatched(pk, record, nil)
}

// InsertBatched is Insert with deferred commit durability: with a non-nil
// batch the commit record is appended unsynced and registered in b, and
// the write may only be acknowledged after WaitCommitBatch(b) succeeds.
// A nil batch keeps Insert's own durability (the commit is durable on
// return).
func (d *Dataset) InsertBatched(pk, record []byte, b *wal.Batch) (bool, error) {
	inserted := false
	err := d.withWriteLocks(pk, func(ts int64) error {
		exists, err := d.keyExists(pk)
		if err != nil {
			return err
		}
		if exists {
			d.ignored.Add(1)
			return nil
		}
		if err := d.logOp(wal.RecInsert, pk, record, ts, false, b); err != nil {
			return err
		}
		d.putAllIndexes(pk, record, ts)
		d.widenFilterFor(record)
		d.ingested.Add(1)
		inserted = true
		return nil
	})
	if err != nil {
		return false, err
	}
	if !inserted {
		return false, nil
	}
	return true, d.maybeFlush()
}

// Delete removes the record under pk, if any. It returns false when the key
// does not exist.
func (d *Dataset) Delete(pk []byte) (bool, error) {
	return d.DeleteBatched(pk, nil)
}

// DeleteBatched is Delete with deferred commit durability (see
// InsertBatched).
func (d *Dataset) DeleteBatched(pk []byte, b *wal.Batch) (bool, error) {
	deleted := false
	err := d.withWriteLocks(pk, func(ts int64) error {
		ok, err := d.deleteLocked(pk, ts, b)
		deleted = ok
		return err
	})
	if err != nil {
		return false, err
	}
	if !deleted {
		return false, nil
	}
	return true, d.maybeFlush()
}

func (d *Dataset) deleteLocked(pk []byte, ts int64, b *wal.Batch) (bool, error) {
	switch d.cfg.Strategy {
	case Eager:
		// Point lookup fetches the old record so anti-matter can be
		// produced for every index and filters widened (Section 3.1).
		old, found, err := d.primary.Get(pk)
		if err != nil {
			return false, err
		}
		if !found {
			d.ignored.Add(1)
			return false, nil
		}
		if err := d.logOp(wal.RecDelete, pk, nil, ts, false, b); err != nil {
			return false, err
		}
		d.putAnti(pk, ts)
		for _, si := range d.secondaries {
			if sk, ok := si.Spec.Extract(old.Value); ok {
				si.Tree.Put(kv.Entry{Key: kv.ComposeKey(sk, pk), TS: ts, Anti: true})
			}
		}
		d.widenFilterFor(old.Value)

	case Validation:
		// Anti-matter goes to the primary and primary key indexes only
		// (Section 4.2); obsolete secondary entries are repaired later.
		if err := d.logOp(wal.RecDelete, pk, nil, ts, false, b); err != nil {
			return false, err
		}
		d.cleanSecondariesFromMem(pk, ts)
		d.putAnti(pk, ts)

	case MutableBitmap:
		updateBit, existed, undo, commit, err := d.markDeletedViaBitmap(pk)
		if err != nil {
			return false, err
		}
		if !existed {
			d.ignored.Add(1)
			return false, nil
		}
		// An anti-matter key is still added (Section 5.2): the bitmap is
		// an auxiliary structure and must not change LSM semantics, and
		// it keeps Validation-maintained secondaries repairable.
		if err := d.logOp(wal.RecDelete, pk, nil, ts, updateBit, b); err != nil {
			// The append failed, so the delete never durably happened:
			// revert the bitmap flip before reporting failure.
			if undo != nil {
				undo()
			}
			return false, err
		}
		if commit != nil {
			commit() // durably logged: now forward to any in-flight build
		}
		d.cleanSecondariesFromMem(pk, ts)
		d.putAnti(pk, ts)

	case DeletedKey:
		if err := d.logOp(wal.RecDelete, pk, nil, ts, false, b); err != nil {
			return false, err
		}
		d.putAnti(pk, ts)
		for _, si := range d.secondaries {
			si.addMemDeleted(pk, ts)
		}
	}
	d.ingested.Add(1)
	return true, nil
}

// Upsert inserts record under pk, replacing any existing record. This is
// the operation where the strategies differ most (Sections 3.1, 4.2, 5.2).
func (d *Dataset) Upsert(pk, record []byte) error {
	return d.UpsertBatched(pk, record, nil)
}

// UpsertBatched is Upsert with deferred commit durability (see
// InsertBatched).
func (d *Dataset) UpsertBatched(pk, record []byte, b *wal.Batch) error {
	if err := d.withWriteLocks(pk, func(ts int64) error {
		return d.upsertLocked(pk, record, ts, b)
	}); err != nil {
		return err
	}
	return d.maybeFlush()
}

func (d *Dataset) upsertLocked(pk, record []byte, ts int64, b *wal.Batch) error {
	switch d.cfg.Strategy {
	case Eager:
		// Point lookup to fetch the old record; anti-matter entries clean
		// each secondary index whose key changed; filters are maintained
		// with both the old and the new record (Figure 3).
		old, found, err := d.primary.Get(pk)
		if err != nil {
			return err
		}
		if err := d.logOp(wal.RecUpsert, pk, record, ts, false, b); err != nil {
			return err
		}
		for _, si := range d.secondaries {
			newSK, hasNew := si.Spec.Extract(record)
			if found {
				oldSK, hasOld := si.Spec.Extract(old.Value)
				if hasOld && hasNew && bytes.Equal(oldSK, newSK) {
					// Unchanged secondary key: skip maintenance entirely.
					continue
				}
				if hasOld {
					si.Tree.Put(kv.Entry{Key: kv.ComposeKey(oldSK, pk), TS: ts, Anti: true})
				}
			}
			if hasNew {
				si.Tree.Put(kv.Entry{Key: kv.ComposeKey(newSK, pk), TS: ts})
			}
		}
		d.primary.Put(kv.Entry{Key: pk, Value: record, TS: ts})
		if d.pkIndex != nil {
			d.pkIndex.Put(kv.Entry{Key: pk, TS: ts})
		}
		if found {
			d.widenFilterFor(old.Value)
		}
		d.widenFilterFor(record)

	case Validation:
		// Blind insert into every index (Figure 4); filters maintained
		// with the new record only.
		if err := d.logOp(wal.RecUpsert, pk, record, ts, false, b); err != nil {
			return err
		}
		d.cleanSecondariesFromMem(pk, ts)
		d.putAllIndexes(pk, record, ts)
		d.widenFilterFor(record)

	case MutableBitmap:
		// The primary key index locates the old record; if it lives in a
		// disk component its bitmap bit is set (Figure 9). Filters are
		// maintained with the new record only.
		updateBit, _, undo, commit, err := d.markDeletedViaBitmap(pk)
		if err != nil {
			return err
		}
		if err := d.logOp(wal.RecUpsert, pk, record, ts, updateBit, b); err != nil {
			// The append failed, so the upsert never durably happened:
			// revert the bitmap flip before reporting failure.
			if undo != nil {
				undo()
			}
			return err
		}
		if commit != nil {
			commit() // durably logged: now forward to any in-flight build
		}
		d.cleanSecondariesFromMem(pk, ts)
		d.putAllIndexes(pk, record, ts)
		d.widenFilterFor(record)

	case DeletedKey:
		if err := d.logOp(wal.RecUpsert, pk, record, ts, false, b); err != nil {
			return err
		}
		d.putAllIndexes(pk, record, ts)
		for _, si := range d.secondaries {
			si.addMemDeleted(pk, ts)
		}
		d.widenFilterFor(record)
	}
	d.ingested.Add(1)
	return nil
}

// keyExists checks primary-key uniqueness via the primary key index when
// available (the Section 3.1 optimization), else the primary index.
func (d *Dataset) keyExists(pk []byte) (bool, error) {
	if d.pkIndex != nil {
		_, found, err := d.pkIndex.Get(pk)
		return found, err
	}
	_, found, err := d.primary.Get(pk)
	return found, err
}

// putAllIndexes inserts the new record into the primary index, the primary
// key index, and every secondary index.
func (d *Dataset) putAllIndexes(pk, record []byte, ts int64) {
	d.primary.Put(kv.Entry{Key: pk, Value: record, TS: ts})
	if d.pkIndex != nil {
		d.pkIndex.Put(kv.Entry{Key: pk, TS: ts})
	}
	for _, si := range d.secondaries {
		if sk, ok := si.Spec.Extract(record); ok {
			si.Tree.Put(kv.Entry{Key: kv.ComposeKey(sk, pk), TS: ts})
		}
	}
}

// putAnti inserts anti-matter for pk into the primary and primary key
// indexes.
func (d *Dataset) putAnti(pk []byte, ts int64) {
	d.primary.Put(kv.Entry{Key: pk, TS: ts, Anti: true})
	if d.pkIndex != nil {
		d.pkIndex.Put(kv.Entry{Key: pk, TS: ts, Anti: true})
	}
}

// widenFilterFor widens the memory components' range filter with the
// record's filter key.
func (d *Dataset) widenFilterFor(record []byte) {
	if d.cfg.FilterExtract == nil || record == nil {
		return
	}
	if v, ok := d.cfg.FilterExtract(record); ok {
		d.primary.WidenMemFilter(v)
	}
}

// cleanSecondariesFromMem implements the Section 4.2 optimization: when the
// old record still resides in the primary memory component, it is free to
// produce local anti-matter entries that clean the secondary indexes.
func (d *Dataset) cleanSecondariesFromMem(pk []byte, ts int64) {
	if len(d.secondaries) == 0 {
		return
	}
	old, ok := d.primary.Mem().Get(pk)
	if !ok || old.Anti {
		return
	}
	for _, si := range d.secondaries {
		if sk, has := si.Spec.Extract(old.Value); has {
			si.Tree.Put(kv.Entry{Key: kv.ComposeKey(sk, pk), TS: ts, Anti: true})
		}
	}
}

// markDeletedViaBitmap performs the Mutable-bitmap delete/upsert search
// (Figures 10b, 11b): find the newest version of pk via the memory
// component, the memtables frozen by in-flight asynchronous flushes, and
// then the primary key index; when it lives in a disk component, set the
// component's bitmap bit and forward the delete to any component under
// construction. A version still in a frozen memtable forwards the delete to
// its flush batch, which applies it to the built component's bitmap before
// install. It reports whether a disk bitmap bit was flipped or forwarded
// (the log record's update bit) and whether the key currently exists.
//
// The returned undo (non-nil only when state was mutated) reverts the
// bitmap flip or un-forwards the delete; the caller invokes it when the
// operation's WAL append fails, so a write reported as failed never leaves
// a half-applied delete. The returned commit (non-nil only when the flip
// must also reach a component under construction) forwards the delete to
// any in-flight merge build and is invoked only AFTER the WAL append
// succeeded — a forward cannot be retracted from a side-file, so it must
// never happen for an operation that ends up failing. Deferring it is
// race-free because the caller holds the exclusive key lock and is
// registered with the dataset lock: the Lock-method builder S-locks our
// key and blocks, and the Side-file close drains writers, so neither can
// slip between the flip and the forward.
func (d *Dataset) markDeletedViaBitmap(pk []byte) (updateBit, existed bool, undo, commit func(), err error) {
	if d.pkIndex == nil {
		return false, false, nil, nil, ErrNoPKIndex
	}
	var lastGone *memtable.Table
	for {
		// Memory component first: a blind Put will supersede it; no bitmap
		// work.
		if e, ok := d.pkIndex.Mem().Get(pk); ok {
			return false, !e.Anti, nil, nil, nil
		}
		if e, tbl, ok := d.pkIndex.FrozenGet(pk); ok {
			if e.Anti {
				return false, false, nil, nil, nil
			}
			if d.maint == nil {
				// Synchronous flushes drain writers for the whole build, so
				// a writer can never observe a frozen memtable; defensive
				// fallback mirroring the memory-component case.
				return false, true, nil, nil, nil
			}
			if b := d.batchForPKTable(tbl); b != nil {
				forwarded, sealedComp := b.addFrozenDelete(pk)
				if forwarded {
					return true, true, func() { d.unforwardFrozenDelete(b, pk) }, nil, nil
				}
				if sealedComp != nil {
					// The batch sealed (its component is built, the
					// forwarded set already applied): treat the sealed
					// component exactly like a disk-component hit — set
					// its bitmap bit and forward the delete to any merge
					// already building over it.
					_, ordinal, found, err := sealedComp.BTree.Get(pk)
					if err != nil {
						return false, false, nil, nil, err
					}
					if found {
						undo, commit := d.flipDeferred(sealedComp, ordinal, pk)
						return true, true, undo, commit, nil
					}
					// Defensive: the frozen table held pk, so its built
					// component must too; fall through and re-search.
				}
			}
			if lastGone == tbl {
				// Seen twice with no owning batch: the table is frozen but
				// its batch is gone, so a crash is tearing the queue down
				// (and its writer drain is waiting on us — retrying would
				// deadlock) or the maintenance pool closed mid-freeze. The
				// version dies with the frozen memtable; the blind
				// anti-matter put supersedes it exactly like a
				// memory-component hit, and WAL replay reconstructs the
				// delete after the crash. An installed batch never shows
				// this signature: its memtable leaves the frozen queue
				// before its batch registration is dropped.
				return false, true, nil, nil, nil
			}
			lastGone = tbl
			// The owning batch may have just installed; re-run the search
			// against the updated state.
			runtime.Gosched()
			continue
		}
		e, comp, ordinal, found, err := d.pkIndex.GetWithLocation(pk, d.pkIndex.Components())
		if err != nil || !found || e.Anti {
			return false, false, nil, nil, err
		}
		if comp == nil {
			return false, true, nil, nil, nil
		}
		undo, commit := d.flipDeferred(comp, ordinal, pk)
		return true, true, undo, commit, nil
	}
}

// flipDeferred sets a component's validity bit for the entry at ordinal,
// returning an undo that clears the bit again (only when this call flipped
// it) and a commit that forwards the delete to any component being built
// over it. Exactly one of the two must run: undo when the operation's WAL
// append fails, commit after it succeeds.
func (d *Dataset) flipDeferred(comp *lsm.Component, ordinal int64, pk []byte) (undo, commit func()) {
	if comp.Valid != nil && comp.Valid.Set(ordinal) {
		undo = func() { comp.Valid.Unset(ordinal) }
	}
	commit = func() { d.forwardDelete(comp, pk) }
	return undo, commit
}

// unforwardFrozenDelete retracts a delete forwarded into a flush batch
// whose WAL append failed. If the batch sealed in the meantime the
// forwarded set was already applied to the built component's bitmap, so
// the bit is cleared there instead.
func (d *Dataset) unforwardFrozenDelete(b *flushBatch, pk []byte) {
	if comp := b.removeFrozenDelete(pk); comp != nil && comp.Valid != nil {
		if _, ordinal, found, err := comp.BTree.Get(pk); err == nil && found {
			comp.Valid.Unset(ordinal)
		}
	}
}

// forwardDelete propagates a delete into the component currently being
// built from comp, per the configured concurrency-control method.
func (d *Dataset) forwardDelete(comp *lsm.Component, pk []byte) {
	bt := comp.Building
	if bt == nil {
		return
	}
	if bt.SideFile != nil {
		// Side-file method (Fig 11b): append; if the side-file has been
		// closed, apply the delete to the new component directly.
		if bt.SideFile.Append(pk) {
			return
		}
	}
	// Lock method (Fig 10b lines 6-7), or side-file-closed fallback.
	bt.ForwardDelete(pk)
}

// logOp appends one logical log record and its commit record. On a durable
// device the commit becomes durable through the log's sink — a per-record
// fsync, or (in group-commit mode) one fsync shared with every concurrent
// committer. A failure of THIS operation's appends or covering fsync means
// the write is not durably committed and is surfaced as the operation's
// error (a concurrent writer's failure wedges the dataset via the
// sticky-error precheck instead, without mislabeling writes that did
// commit).
//
// With a non-nil batch the commit record is appended unsynced and its
// durability deferred to the caller's WaitCommitBatch — one covering fsync
// per engine batch instead of one per mutation. Until that wait succeeds
// the write is visible in the memory components but NOT acknowledged;
// callers must not report success before the wait returns.
func (d *Dataset) logOp(t wal.RecordType, pk, record []byte, ts int64, updateBit bool, b *wal.Batch) error {
	if d.log == nil {
		return nil
	}
	id := d.ids.Next()
	if _, err := d.log.AppendChecked(wal.Record{
		TxnID:     id,
		Type:      t,
		Index:     "dataset",
		Key:       append([]byte(nil), pk...),
		Value:     append([]byte(nil), record...),
		TS:        ts,
		UpdateBit: updateBit,
	}); err != nil {
		return err
	}
	if b != nil {
		_, err := d.log.CommitBatched(id, b)
		return err
	}
	_, err := d.log.CommitDurable(id)
	return err
}

// BeginCommitBatch returns a deferred-durability handle when the log runs
// in group-commit mode, nil otherwise (writes then carry their own commit
// durability, byte-for-byte the non-grouped behavior). Pair every non-nil
// handle with exactly one WaitCommitBatch before acknowledging any of the
// batch's writes.
//
// The Mutable-bitmap strategy never defers: its writes flip disk-component
// bitmaps and forward deletes into in-flight builds around the WAL append,
// and that undo/commit pair is only race-free while the writer still holds
// its exclusive key lock — which a batch-end durability wait no longer
// does. Its mutations commit one by one through CommitDurable instead
// (still coalesced with concurrent committers by the group window), so a
// failed covering fsync can always revert the flip under the lock.
func (d *Dataset) BeginCommitBatch() *wal.Batch {
	if d.cfg.Strategy == MutableBitmap {
		return nil
	}
	return d.log.NewBatch()
}

// WaitCommitBatch blocks until every commit deferred into b is covered by
// a WAL fsync. On failure none of the batch's writes may be acknowledged:
// their commit records are dropped from the log's memory image, the log
// is wedged (the dataset turns read-only), and an in-session
// Crash/Recover will not replay them. The writes still sit in the memory
// components — and any of them a mid-batch flush already installed in a
// durable component stays durable — so "failed" means "not guaranteed,
// retry safely", not "certainly absent".
func (d *Dataset) WaitCommitBatch(b *wal.Batch) error {
	if b == nil {
		return nil
	}
	return d.log.WaitBatch(b)
}
