package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitmap"
	"repro/internal/bloom"
	"repro/internal/btree"
	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/txn"
)

// maybeFlush flushes all memory components when the shared budget is
// exceeded (the dataset's indexes always flush together, Section 3). With
// background maintenance configured, the flush only freezes the memtables
// and the build runs off the write path.
func (d *Dataset) maybeFlush() error {
	if d.maint != nil {
		return d.maybeFlushAsync()
	}
	if d.memBytes() < d.cfg.MemoryBudget {
		return nil
	}
	return d.FlushAll()
}

// FlushAll flushes every index's memory component into new disk components
// stamped with a fresh epoch, then lets the merge policy run. In
// synchronous mode writers are drained for the (memory-bound) duration of
// the flush; long-running merges use the Section 5.3 concurrency-control
// protocols instead. In asynchronous mode FlushAll freezes the memtables,
// then drains every pending background build and merge, so the store is
// fully quiesced when it returns.
func (d *Dataset) FlushAll() error {
	if d.maint != nil {
		return d.flushAllAsync()
	}
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	var err error
	d.dsLock.Drain(func() { err = d.flushLocked() })
	if err != nil {
		return err
	}
	if err := d.mergeDue(); err != nil {
		return err
	}
	// Durability point: on a durable device the freshly installed
	// components are synced and the manifest now references them.
	return d.Persist()
}

// flushTree flushes one index, normalizing the empty case: an empty memory
// component yields (nil, nil), never ErrEmptyFlush, so every index of the
// dataset is handled uniformly (primary, primary key, and secondaries
// alike).
func flushTree(tr *lsm.Tree, epoch uint64) (*lsm.Component, error) {
	comp, err := tr.Flush(epoch)
	if err == lsm.ErrEmptyFlush {
		return nil, nil
	}
	return comp, err
}

func (d *Dataset) flushLocked() (err error) {
	// Consume an epoch only when at least one index has data; a fully
	// empty flush is a no-op.
	any := d.primary.Mem().Len() > 0
	if d.pkIndex != nil && d.pkIndex.Mem().Len() > 0 {
		any = true
	}
	for _, si := range d.secondaries {
		if si.Tree.Mem().Len() > 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	epoch := d.epoch.Add(1)
	op := d.cfg.Journal.Begin(obs.JFlush, "batch")
	var bytes int64
	var comps int
	defer func() { op.End(bytes, 0, comps, err) }()
	countComp := func(c *lsm.Component) {
		if c != nil {
			bytes += c.SizeBytes()
			comps++
		}
	}
	primComp, err := flushTree(d.primary, epoch)
	if err != nil {
		return err
	}
	countComp(primComp)
	var pkComp *lsm.Component
	if d.pkIndex != nil {
		if pkComp, err = flushTree(d.pkIndex, epoch); err != nil {
			return err
		}
		countComp(pkComp)
	}
	if d.cfg.Strategy == MutableBitmap {
		if err := pairPrimaryPK(primComp, pkComp); err != nil {
			return err
		}
	}
	for _, si := range d.secondaries {
		comp, err := flushTree(si.Tree, epoch)
		if err != nil {
			return err
		}
		countComp(comp)
		if d.cfg.Strategy == DeletedKey && comp != nil {
			if err := d.attachDeletedEntries(comp, si.takeMemDeleted()); err != nil {
				return err
			}
		}
	}
	return nil
}

// pairPrimaryPK enforces the Mutable-bitmap pairing invariant on freshly
// flushed primary and primary-key-index components: the two indexes flush
// together — one being empty while the other is not breaks the pairing —
// hold the same keys in the same order, and share one validity bitmap
// (Figure 9). Both the synchronous flush and the background batch build go
// through this single check.
func pairPrimaryPK(primComp, pkComp *lsm.Component) error {
	if (primComp == nil) != (pkComp == nil) {
		return fmt.Errorf("core: primary/pk flush mismatch under mutable bitmaps")
	}
	if primComp != nil {
		if primComp.NumEntries() != pkComp.NumEntries() {
			return fmt.Errorf("core: primary/pk flush mismatch: %d vs %d entries",
				primComp.NumEntries(), pkComp.NumEntries())
		}
		pkComp.Valid = primComp.Valid
	}
	return nil
}

// attachDeletedEntries bulk-loads pk-sorted deleted-key entries into a
// deleted-key B+-tree attached to a freshly flushed component (Section
// 4.1's deleted-key B+-tree strategy; one copy per secondary). The build
// charges the maintenance lane when one is configured; the reader is bound
// to the foreground store for queries.
func (d *Dataset) attachDeletedEntries(comp *lsm.Component, entries []kv.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	b := btree.NewBuilder(d.maintIOStore())
	f := bloom.NewStandardFPR(len(entries), 0.01)
	var payload []byte
	for _, e := range entries {
		payload = kv.AppendPayload(payload[:0], e)
		if err := b.Add(e.Key, payload); err != nil {
			b.Abort()
			return err
		}
		f.Add(e.Key)
	}
	r, err := b.Finish()
	if err != nil {
		return err
	}
	if d.maintIOStore() != d.cfg.Store {
		r.Rebind(d.cfg.Store)
	}
	comp.DeletedKeys = r
	comp.DeletedKeysBloom = f
	return nil
}

// MergeDue runs the merge policy to completion (all due merges). In
// asynchronous mode the merges run on the background pool; MergeDue
// schedules them and drains, so two merge passes never overlap.
func (d *Dataset) MergeDue() error {
	if d.maint != nil {
		d.scheduleMerge()
		return d.DrainMaintenance()
	}
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	if err := d.mergeDue(); err != nil {
		return err
	}
	return d.Persist()
}

func (d *Dataset) mergeDue() error {
	if d.cfg.Policy == nil {
		return nil
	}
	if d.cfg.CorrelatedMerges {
		return d.mergeCorrelated()
	}
	// Each LSM-tree merges independently (Section 6.1).
	for {
		cand, ok := d.pickFor(d.primary)
		if !ok {
			break
		}
		if err := d.mergeTreeRange(d.primary, cand.Lo, cand.Hi, cand.Lo == 0); err != nil {
			return err
		}
	}
	if d.pkIndex != nil {
		for {
			cand, ok := d.pickFor(d.pkIndex)
			if !ok {
				break
			}
			// Anti-matter is never dropped from the primary key index:
			// Timestamp validation and index repair rely on it as
			// evidence that a key was deleted.
			if err := d.mergeTreeRange(d.pkIndex, cand.Lo, cand.Hi, false); err != nil {
				return err
			}
		}
	}
	for _, si := range d.secondaries {
		for {
			cand, ok := d.pickFor(si.Tree)
			if !ok {
				break
			}
			if err := d.mergeSecondaryRange(si, cand.Lo, cand.Hi); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *Dataset) pickFor(tr *lsm.Tree) (lsm.MergeCandidate, bool) {
	comps := tr.Components()
	sizes := make([]int64, len(comps))
	for i, c := range comps {
		sizes[i] = c.SizeBytes()
	}
	return d.cfg.Policy.Pick(sizes)
}

// mergeCorrelated synchronizes merges across all of the dataset's indexes
// (the correlated merge policy of Section 4.4): the decision is made on the
// leader index and translated to every other index via flush-epoch ranges,
// so components of different indexes are always merged together.
func (d *Dataset) mergeCorrelated() error {
	leader := d.pkIndex
	if leader == nil {
		leader = d.primary
	}
	for {
		cand, ok := d.pickFor(leader)
		if !ok {
			return nil
		}
		leaderComps := leader.Components()
		eMin := leaderComps[cand.Lo].EpochMin
		eMax := leaderComps[cand.Hi-1].EpochMax
		if err := d.mergeEpochRange(eMin, eMax); err != nil {
			return err
		}
	}
}

// mergeEpochRange merges, in every index, the components whose epochs fall
// inside [eMin, eMax].
func (d *Dataset) mergeEpochRange(eMin, eMax uint64) error {
	if d.cfg.Strategy == MutableBitmap {
		if err := d.mergePrimaryAndPK(eMin, eMax); err != nil {
			return err
		}
	} else {
		if lo, hi, ok := epochRange(d.primary, eMin, eMax); ok {
			if err := d.mergeTreeRange(d.primary, lo, hi, lo == 0); err != nil {
				return err
			}
		}
		if d.pkIndex != nil {
			if lo, hi, ok := epochRange(d.pkIndex, eMin, eMax); ok {
				if err := d.mergeTreeRange(d.pkIndex, lo, hi, false); err != nil {
					return err
				}
			}
		}
	}
	for _, si := range d.secondaries {
		lo, hi, ok := epochRange(si.Tree, eMin, eMax)
		if !ok {
			continue
		}
		if err := d.mergeSecondaryRange(si, lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// epochRange finds the component index range of tr covered by [eMin, eMax].
func epochRange(tr *lsm.Tree, eMin, eMax uint64) (lo, hi int, ok bool) {
	comps := tr.Components()
	lo, hi = -1, -1
	for i, c := range comps {
		if c.EpochMax < eMin || c.EpochMin > eMax {
			continue
		}
		if lo < 0 {
			lo = i
		}
		hi = i + 1
	}
	if lo < 0 || hi-lo < 2 {
		return 0, 0, false
	}
	return lo, hi, true
}

// mergeTreeRange merges [lo, hi) of one tree with no strategy extras.
func (d *Dataset) mergeTreeRange(tr *lsm.Tree, lo, hi int, dropAnti bool) error {
	op := d.cfg.Journal.Begin(obs.JMerge, tr.Name())
	res, err := tr.Merge(lsm.MergeSpec{
		Lo: lo, Hi: hi,
		DropAnti:      dropAnti,
		SkipInvisible: true,
		Store:         d.mergeIOStore(),
	})
	if err != nil {
		op.End(0, hi-lo, 0, err)
		return err
	}
	err = tr.Install(res)
	op.End(res.Component.SizeBytes(), hi-lo, 1, err)
	return err
}

// mergeSecondaryRange merges a secondary index range, applying the
// strategy-specific cleanup: merge repair under Validation (when enabled),
// deleted-key filtering under DeletedKey.
func (d *Dataset) mergeSecondaryRange(si *SecondaryIndex, lo, hi int) error {
	switch {
	case (d.cfg.Strategy == Validation || d.cfg.Strategy == MutableBitmap) && d.cfg.MergeRepair && d.pkIndex != nil:
		// Byte sizes of repaired components are not surfaced by the repair
		// package; the journal records the merge with bytes unknown (0).
		op := d.cfg.Journal.Begin(obs.JMerge, si.Spec.Name)
		err := repair.MergeRepair(si.Tree, d.pkIndex, lo, hi,
			repair.Options{UseBloom: d.cfg.RepairBloomOpt, Store: d.mergeIOStore()})
		op.End(0, hi-lo, 1, err)
		return err
	case d.cfg.Strategy == DeletedKey:
		op := d.cfg.Journal.Begin(obs.JMerge, si.Spec.Name)
		err := d.mergeDeletedKeyRange(si, lo, hi)
		op.End(0, hi-lo, 1, err)
		return err
	default:
		return d.mergeTreeRange(si.Tree, lo, hi, lo == 0)
	}
}

// mergeDeletedKeyRange merges secondary components under the deleted-key
// B+-tree strategy: an entry is dropped when a strictly newer component in
// the merge carries its primary key in its deleted-key B+-tree, and the new
// component receives the union of the inputs' deleted-key trees. Each
// deleted-key probe costs a point lookup, which is why this strategy's
// merges are expensive (Section 4.1).
func (d *Dataset) mergeDeletedKeyRange(si *SecondaryIndex, lo, hi int) error {
	comps := si.Tree.Components()
	if lo < 0 || hi > len(comps) || lo >= hi {
		return lsm.ErrBadMergeRange
	}
	inputs := comps[lo:hi]
	rankOf := make(map[*lsm.Component]int, len(inputs))
	for i, c := range inputs {
		rankOf[c] = i
	}
	env := d.maintEnv()
	// Deleted-key probes during the merge charge the maintenance lane.
	dkReaders := make([]*btree.Reader, len(inputs))
	for i, c := range inputs {
		if c.DeletedKeys == nil {
			continue
		}
		dkReaders[i] = c.DeletedKeys
		if d.bgStore != nil {
			dkReaders[i] = c.DeletedKeys.CloneFor(d.bgStore)
		}
	}
	deletedIn := func(pk []byte, newerThan int) bool {
		for i := newerThan + 1; i < len(inputs); i++ {
			c := inputs[i]
			if dkReaders[i] == nil {
				continue
			}
			if c.DeletedKeysBloom != nil {
				env.Counters.BloomTests.Add(1)
				env.Clock.Advance(env.CPU.Hash)
				ok, lines := c.DeletedKeysBloom.MayContain(pk)
				env.Clock.Advance(time.Duration(lines) * env.CPU.CacheLineMiss)
				if !ok {
					env.Counters.BloomNegatives.Add(1)
					continue
				}
			}
			//lsm:allow-discard a failed deleted-key probe reads as "not deleted", the conservative answer: the entry is kept, never wrongly dropped
			if _, _, found, _ := dkReaders[i].Get(pk); found {
				return true
			}
		}
		return false
	}
	res, err := si.Tree.Merge(lsm.MergeSpec{
		Lo: lo, Hi: hi,
		DropAnti:      lo == 0,
		SkipInvisible: true,
		Store:         d.mergeIOStore(),
		EntryFilter: func(item lsm.MergedItem) bool {
			if item.Entry.Anti {
				return true
			}
			_, pk, err := kv.SplitKey(item.Entry.Key)
			if err != nil {
				return true
			}
			rank, ok := rankOf[item.Comp]
			if !ok {
				return true
			}
			return !deletedIn(pk, rank)
		},
	})
	if err != nil {
		return err
	}
	// Union the deleted-key trees into the merged component.
	if err := d.unionDeletedKeys(res.Component, inputs); err != nil {
		return err
	}
	return si.Tree.Install(res)
}

// unionDeletedKeys bulk-loads the union of the inputs' deleted-key trees,
// charging the maintenance lane when one is configured.
func (d *Dataset) unionDeletedKeys(dst *lsm.Component, inputs []*lsm.Component) error {
	merged := make(map[string]int64)
	for _, c := range inputs {
		if c.DeletedKeys == nil {
			continue
		}
		dk := c.DeletedKeys
		if d.bgStore != nil {
			dk = dk.CloneFor(d.bgStore)
		}
		scan, err := dk.NewScan(nil, nil)
		if err != nil {
			return err
		}
		for {
			e, _, ok, err := scan.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if old, seen := merged[string(e.Key)]; !seen || e.TS > old {
				merged[string(e.Key)] = e.TS
			}
		}
	}
	if len(merged) == 0 {
		return nil
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := btree.NewBuilder(d.maintIOStore())
	f := bloom.NewStandardFPR(len(keys), 0.01)
	var payload []byte
	for _, k := range keys {
		payload = kv.AppendPayload(payload[:0], kv.Entry{Key: []byte(k), TS: merged[k]})
		if err := b.Add([]byte(k), payload); err != nil {
			b.Abort()
			return err
		}
		f.Add([]byte(k))
	}
	r, err := b.Finish()
	if err != nil {
		return err
	}
	if d.maintIOStore() != d.cfg.Store {
		r.Rebind(d.cfg.Store)
	}
	dst.DeletedKeys = r
	dst.DeletedKeysBloom = f
	return nil
}

// mergePrimaryAndPK performs the Mutable-bitmap strategy's synchronized
// merge (Section 5): one pass over the primary components builds both the
// new primary component and its key-only primary-key-index sibling, which
// share one validity bitmap. Concurrent writers are handled by the
// configured concurrency-control method (Figures 10 and 11).
func (d *Dataset) mergePrimaryAndPK(eMin, eMax uint64) error {
	pLo, pHi, ok := epochRange(d.primary, eMin, eMax)
	if !ok {
		return nil
	}
	kLo, kHi, ok := epochRange(d.pkIndex, eMin, eMax)
	if !ok {
		return nil
	}
	_, err := d.MergePrimaryRange(pLo, pHi, kLo, kHi)
	return err
}

// MergePrimaryRange is exported for the Figure 23 concurrency experiments:
// it merges primary components [pLo, pHi) and the matching primary-key-
// index components [kLo, kHi) under the configured CC method, with writers
// allowed to run concurrently.
func (d *Dataset) MergePrimaryRange(pLo, pHi, kLo, kHi int) (*lsm.Component, error) {
	op := d.cfg.Journal.Begin(obs.JMerge, "primary+pk")
	comp, err := d.mergePrimaryPKRange(pLo, pHi, kLo, kHi)
	var bytes int64
	if comp != nil {
		bytes = comp.SizeBytes()
	}
	// The synchronized merge consumes the primary and pk-index runs and
	// produces one paired component of each.
	op.End(bytes, (pHi-pLo)+(kHi-kLo), 2, err)
	return comp, err
}

func (d *Dataset) mergePrimaryPKRange(pLo, pHi, kLo, kHi int) (*lsm.Component, error) {
	primComps := d.primary.Components()[pLo:pHi]
	pkComps := d.pkIndex.Components()[kLo:kHi]
	pkGen := d.pkIndex.InstallGen()

	var spec lsm.MergeSpec
	spec.Lo, spec.Hi = pLo, pHi
	spec.Store = d.mergeIOStore()
	// Anti-matter is retained even at the bottom: the primary-key-index
	// sibling is built from the same entry stream and Timestamp validation
	// needs deletion evidence there. Bitmap-deleted records themselves are
	// physically dropped (SkipInvisible).
	spec.DropAnti = false
	spec.SkipInvisible = true

	// Writers locate old versions through the PK INDEX (Figs 10b, 11b), so
	// the "old component points to new component" hook must be visible on
	// the pk-index components as well as the primary ones; both share the
	// same keys, ordinals, and bitmaps, so one build target serves both.
	setPKBuilding := func(bt *lsm.BuildTarget) {
		for _, c := range pkComps {
			c.Building = bt
		}
	}

	var target *lsm.BuildTarget
	switch d.cfg.CC {
	case Lock:
		// Fig 10: the builder S-locks every scanned key and re-checks its
		// bitmap under the lock; writers forward deletes past ScannedKey.
		target = lsm.NewBuildTarget(false)
		spec.Target = target
		setPKBuilding(target)
		spec.LockKey = func(key []byte) func() {
			d.locks.Lock(key, txn.Shared)
			return func() { d.locks.Unlock(key, txn.Shared) }
		}
	case SideFile:
		// Fig 11: drain writers, snapshot bitmaps, then build against the
		// snapshots; concurrent deletes buffer in the side-file.
		target = lsm.NewBuildTarget(true)
		spec.Target = target
		snaps := make(map[*lsm.Component]*bitmap.Immutable, len(primComps))
		d.dsLock.Drain(func() {
			// Drain in-flight writers, snapshot the shared bitmaps, and
			// expose the build target in one atomic step (Fig 11a,
			// initialization phase).
			for _, c := range primComps {
				snaps[c] = c.Valid.Snapshot()
			}
			setPKBuilding(target)
		})
		spec.Snapshots = snaps
	case NoCC:
		// Baseline: no protection (only valid without concurrent writers).
	}

	// Build the pk-index sibling in the same pass (maintenance I/O lane).
	pkBuilder := btree.NewBuilder(d.maintIOStore())
	var pkBloom bloom.Filter
	var addPK func([]byte)
	if d.cfg.BloomFPR > 0 {
		var upper int64
		for _, c := range primComps {
			upper += c.NumEntries()
		}
		switch {
		case d.cfg.BloomV2:
			f := bloom.NewV2FPR(int(upper), d.cfg.BloomFPR)
			pkBloom, addPK = f, f.Add
		case d.cfg.BlockedBloom:
			f := bloom.NewBlockedFPR(int(upper), d.cfg.BloomFPR)
			pkBloom, addPK = f, f.Add
		default:
			f := bloom.NewStandardFPR(int(upper), d.cfg.BloomFPR)
			pkBloom, addPK = f, f.Add
		}
	}
	var pkErr error
	var pkPayload []byte
	spec.OnEntry = func(e kv.Entry, ordinal int64) {
		pkPayload = kv.AppendPayload(pkPayload[:0], kv.Entry{Key: e.Key, TS: e.TS, Anti: e.Anti})
		if err := pkBuilder.Add(e.Key, pkPayload); err != nil && pkErr == nil {
			pkErr = err
		}
		if addPK != nil {
			addPK(e.Key)
		}
	}

	res, err := d.primary.Merge(spec)
	if err != nil {
		pkBuilder.Abort()
		return nil, err
	}
	if pkErr != nil {
		return nil, pkErr
	}
	pkReader, err := pkBuilder.Finish()
	if err != nil {
		return nil, err
	}
	if d.maintIOStore() != d.cfg.Store {
		pkReader.Rebind(d.cfg.Store)
	}
	newPrim := res.Component

	// Side-file catch-up phase (Fig 11a lines 11-16): close the side-file
	// under the dataset lock, sort it, and apply the deletes to the new
	// component's bitmap.
	if d.cfg.CC == SideFile {
		var deleted [][]byte
		d.dsLock.Drain(func() { deleted = target.SideFile.Close() })
		d.maintEnv().ChargeSort(len(deleted))
		for _, pk := range deleted {
			if ord, ok := target.OrdinalOf(pk); ok {
				newPrim.Valid.Set(ord)
			}
		}
	}

	pkComp := &lsm.Component{
		ID:       newPrim.ID,
		EpochMin: newPrim.EpochMin,
		EpochMax: newPrim.EpochMax,
		BTree:    pkReader,
		Bloom:    pkBloom,
		Valid:    newPrim.Valid, // shared bitmap
	}
	// The two installs are one atomic step with respect to Crash: the
	// primary component and its pk-index sibling share one bitmap, so a
	// failure must never observe one installed without the other. The pk
	// run is replaced by identity, tolerating components appended by
	// concurrent asynchronous flushes.
	d.crashMu.Lock()
	defer d.crashMu.Unlock()
	if err := d.primary.Install(res); err != nil {
		return nil, err
	}
	if err := d.pkIndex.ReplaceRun(pkComps, pkComp, pkGen); err != nil {
		return nil, err
	}
	return newPrim, nil
}
