package core

import (
	"testing"
)

// TestDeletedKeyMergeDropsObsoleteEntries exercises the deleted-key
// strategy's merge cleanup directly: entries whose primary key appears in a
// strictly newer component's deleted-key B+-tree are dropped, and the new
// component receives the union of the inputs' deleted-key trees.
func TestDeletedKeyMergeDropsObsoleteEntries(t *testing.T) {
	d := newTestDataset(t, func(c *Config) {
		c.Strategy = DeletedKey
		c.Policy = nil // merge manually
	})
	// Component 1: 100 inserts with location L0.
	for i := 0; i < 100; i++ {
		if ok, err := d.Insert(pkOf(uint64(i)), testRecord("L0", 2015)); err != nil || !ok {
			t.Fatal(err, ok)
		}
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Component 2: keys 0..49 move to L1 (their old entries become
	// obsolete and keys 0..49 land in comp 2's deleted-key tree).
	for i := 0; i < 50; i++ {
		mustUpsert(t, d, uint64(i), "L1", 2016)
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	si := d.Secondary("location")
	comps := si.Tree.Components()
	if len(comps) != 2 || comps[1].DeletedKeys == nil {
		t.Fatalf("setup: comps=%d", len(comps))
	}
	total := comps[0].NumEntries() + comps[1].NumEntries()
	if total != 150 {
		t.Fatalf("setup: %d entries", total)
	}

	if err := d.mergeDeletedKeyRange(si, 0, 2); err != nil {
		t.Fatal(err)
	}
	merged := si.Tree.Components()
	if len(merged) != 1 {
		t.Fatalf("components after merge = %d", len(merged))
	}
	// 100 live entries survive: 50 x (L0) for keys 50..99, 50 x (L1).
	if got := merged[0].NumEntries(); got != 100 {
		t.Fatalf("merged entries = %d, want 100", got)
	}
	// The union deleted-key tree persists for validation against older
	// (unmerged) components.
	if merged[0].DeletedKeys == nil || merged[0].DeletedKeys.NumEntries() != 50 {
		t.Fatalf("merged deleted keys = %v", merged[0].DeletedKeys)
	}
	// Answers unchanged.
	got := scanSecondaryRaw(t, si)
	if len(got) != 100 {
		t.Fatalf("visible entries = %d", len(got))
	}
}

// TestGetWithLocation verifies component/ordinal reporting, which both the
// Mutable-bitmap delete path and pID pruning rely on.
func TestGetWithLocation(t *testing.T) {
	d := newTestDataset(t, nil)
	mustUpsert(t, d, 1, "CA", 2015)
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mustUpsert(t, d, 2, "NY", 2016)

	// Key 1 lives in the only disk component.
	comps := d.Primary().Components()
	e, comp, ord, found, err := d.Primary().GetWithLocation(pkOf(1), comps)
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if comp != comps[0] || ord != 0 {
		t.Fatalf("location = %v/%d", comp, ord)
	}
	if loc, _ := recLocation(e.Value); string(loc) != "CA" {
		t.Fatalf("value %s", loc)
	}
	// Key 2 is memory-only: restricted search misses it.
	_, _, _, found, err = d.Primary().GetWithLocation(pkOf(2), comps)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("memory-only key found in component-restricted search")
	}
	// Unrestricted get finds it with a nil component.
	e2, comp2, _, found2, err := d.Primary().GetWithLocation(pkOf(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !found2 || comp2 != nil {
		t.Fatalf("mem search: found=%v comp=%v", found2, comp2)
	}
	if loc, _ := recLocation(e2.Value); string(loc) != "NY" {
		t.Fatal("wrong mem record")
	}
}

// TestMergeEpochRangeSkipsSingletons: a correlated merge over an epoch
// range covering fewer than two components of some index leaves that index
// untouched instead of erroring.
func TestMergeEpochRangeSkipsSingletons(t *testing.T) {
	d := newTestDataset(t, func(c *Config) {
		c.Policy = nil
		c.CorrelatedMerges = true
	})
	// Epoch 1: all indexes flush. Epoch 2: only key churn on the primary
	// (same location, so Eager skips the secondary index).
	mustUpsert(t, d, 1, "CA", 2015)
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mustUpsert(t, d, 1, "CA", 2016)
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	np := d.Primary().NumDiskComponents()
	ns := d.Secondary("location").Tree.NumDiskComponents()
	if np != 2 || ns != 1 {
		t.Fatalf("setup: primary=%d secondary=%d", np, ns)
	}
	if err := d.mergeEpochRange(1, 2); err != nil {
		t.Fatal(err)
	}
	if d.Primary().NumDiskComponents() != 1 {
		t.Fatal("primary not merged")
	}
	if d.Secondary("location").Tree.NumDiskComponents() != 1 {
		t.Fatal("secondary singleton was disturbed")
	}
	// Data still readable, newest version wins.
	e, found := mustGet(t, d, 1)
	if !found {
		t.Fatal("key 1 lost")
	}
	if y, _ := recYear(e.Value); y != 2016 {
		t.Fatalf("year = %d", y)
	}
}
