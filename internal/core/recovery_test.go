package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/lsm"
	"repro/internal/maint"
)

// driveMixed applies a random op stream and returns the expected live rows.
func driveMixed(t *testing.T, d *Dataset, seed int64, nOps int, flushEvery int) map[uint64]string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := make(map[uint64]string)
	for i := 0; i < nOps; i++ {
		pk := uint64(rng.Intn(300))
		loc := fmt.Sprintf("L%02d", rng.Intn(20))
		switch rng.Intn(6) {
		case 0:
			if _, err := d.Delete(pkOf(pk)); err != nil {
				t.Fatal(err)
			}
			delete(model, pk)
		default:
			mustUpsert(t, d, pk, loc, int64(2000+i))
			model[pk] = loc
		}
		if flushEvery > 0 && i > 0 && i%flushEvery == 0 {
			if err := d.FlushAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return model
}

func verifyModel(t *testing.T, d *Dataset, model map[uint64]string) {
	t.Helper()
	for pk := uint64(0); pk < 300; pk++ {
		e, found, err := d.Primary().Get(pkOf(pk))
		if err != nil {
			t.Fatal(err)
		}
		want, ok := model[pk]
		if found != ok {
			t.Fatalf("key %d: found=%v want %v", pk, found, ok)
		}
		if found {
			loc, _ := recLocation(e.Value)
			if string(loc) != want {
				t.Fatalf("key %d: location %s want %s", pk, loc, want)
			}
		}
	}
}

func TestCrashRecoveryAllStrategies(t *testing.T) {
	for _, strat := range []Strategy{Eager, Validation, MutableBitmap, DeletedKey} {
		t.Run(strat.String(), func(t *testing.T) {
			d := newTestDataset(t, func(c *Config) {
				c.Strategy = strat
			})
			model := driveMixed(t, d, 61, 2000, 400)
			d.Crash()
			// Memory state is gone: recent writes are invisible now.
			if err := d.Recover(); err != nil {
				t.Fatal(err)
			}
			verifyModel(t, d, model)
		})
	}
}

func TestCrashLosesUnrecoveredState(t *testing.T) {
	d := newTestDataset(t, nil)
	mustUpsert(t, d, 1, "CA", 2015)
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mustUpsert(t, d, 2, "NY", 2016) // memory only
	d.Crash()
	if _, found := mustGet(t, d, 2); found {
		t.Fatal("memory-only record survived the crash without recovery")
	}
	if _, found := mustGet(t, d, 1); !found {
		t.Fatal("flushed record lost")
	}
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, found := mustGet(t, d, 2); !found {
		t.Fatal("record not recovered from the log")
	}
}

func TestRecoverRequiresWAL(t *testing.T) {
	d := newTestDataset(t, func(c *Config) { c.DisableWAL = true })
	mustUpsert(t, d, 1, "CA", 2015)
	d.Crash()
	if err := d.Recover(); err != ErrNoWAL {
		t.Fatalf("Recover without WAL = %v", err)
	}
}

func TestRecoveryIdempotentForBitmaps(t *testing.T) {
	// A replayed update-bit record must not corrupt bitmaps that already
	// reflect the delete (the bitmap page was checkpointed before the
	// crash): Set is idempotent.
	d := newTestDataset(t, func(c *Config) { c.Strategy = MutableBitmap })
	mustUpsert(t, d, 10, "CA", 2015)
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mustUpsert(t, d, 10, "NY", 2016) // sets the bit in the flushed component
	comp := d.Primary().Components()[0]
	if comp.Valid.Count() != 1 {
		t.Fatal("setup: bit not set")
	}
	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if comp.Valid.Count() != 1 {
		t.Fatalf("bitmap corrupted by replay: %d bits", comp.Valid.Count())
	}
	e, found := mustGet(t, d, 10)
	if !found {
		t.Fatal("record lost")
	}
	if loc, _ := recLocation(e.Value); string(loc) != "NY" {
		t.Fatalf("recovered wrong version: %s", loc)
	}
}

func TestRecoveryPreservesTimestampOrder(t *testing.T) {
	d := newTestDataset(t, func(c *Config) { c.Strategy = Validation })
	mustUpsert(t, d, 5, "CA", 2015)
	mustUpsert(t, d, 5, "NY", 2016)
	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	// New writes after recovery must get fresh, larger timestamps.
	tsBefore := d.CurrentTS()
	mustUpsert(t, d, 5, "UT", 2017)
	if d.CurrentTS() <= tsBefore {
		t.Fatal("clock did not advance past replayed timestamps")
	}
	e, _ := mustGet(t, d, 5)
	if loc, _ := recLocation(e.Value); string(loc) != "UT" {
		t.Fatalf("latest write lost: %s", loc)
	}
}

// driveNoFlush applies a deterministic op stream without ever draining, so
// asynchronous flush batches and merges pile up behind the writers.
func driveNoFlush(t *testing.T, d *Dataset, seed int64, nOps int) map[uint64]string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := make(map[uint64]string)
	for i := 0; i < nOps; i++ {
		pk := uint64(rng.Intn(300))
		loc := fmt.Sprintf("L%02d", rng.Intn(20))
		if rng.Intn(6) == 0 {
			if _, err := d.Delete(pkOf(pk)); err != nil {
				t.Fatal(err)
			}
			delete(model, pk)
		} else {
			mustUpsert(t, d, pk, loc, int64(2000+i))
			model[pk] = loc
		}
	}
	return model
}

// TestCrashDuringAsyncMaintenance kills the store while background flush
// builds and merges are in flight — queued batches die with their frozen
// memtables, in-flight installs abandon — and asserts Recover restores the
// exact committed state from the write-ahead log. A tiny memory budget and
// an uncapped tiering policy keep the single-worker pool saturated, so the
// crash lands mid-build/mid-merge with batches still pending.
func TestCrashDuringAsyncMaintenance(t *testing.T) {
	for _, strat := range []Strategy{Eager, Validation, MutableBitmap, DeletedKey} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				pool := maint.NewPool(1)
				d := newTestDataset(t, func(c *Config) {
					c.Strategy = strat
					c.Maintenance = pool
					c.MemoryBudget = 16 << 10
					c.Policy = lsm.NewTiering(0)
					// Let maintenance lag far behind the writers so the
					// crash catches pending and in-flight work.
					c.MaxFrozenMemtables = 1 << 20
				})
				model := driveNoFlush(t, d, int64(100+trial), 1500)
				d.Crash()
				if err := d.Recover(); err != nil {
					t.Fatal(err)
				}
				verifyModel(t, d, model)
				// Post-recovery maintenance still works: flush, merge,
				// verify again.
				if err := d.FlushAll(); err != nil {
					t.Fatal(err)
				}
				verifyModel(t, d, model)
				pool.Close()
			}
		})
	}
}

// TestCrashRecoveryAsyncAllStrategies is the asynchronous twin of
// TestCrashRecoveryAllStrategies: the same mixed workload with periodic
// drains, crashed and recovered, must restore the model under background
// maintenance too.
func TestCrashRecoveryAsyncAllStrategies(t *testing.T) {
	for _, strat := range []Strategy{Eager, Validation, MutableBitmap, DeletedKey} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			pool := maint.NewPool(2)
			defer pool.Close()
			d := newTestDataset(t, func(c *Config) {
				c.Strategy = strat
				c.Maintenance = pool
				c.Policy = lsm.NewTiering(0)
				c.MemoryBudget = 64 << 10
			})
			model := driveMixed(t, d, 61, 2000, 400)
			d.Crash()
			if err := d.Recover(); err != nil {
				t.Fatal(err)
			}
			verifyModel(t, d, model)
		})
	}
}
