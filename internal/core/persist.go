package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/bloom"
	"repro/internal/lsm"
	"repro/internal/storage"
	"repro/internal/wal"
)

// This file implements durable persistence on top of a
// storage.ManifestDevice: after every component install (flush or merge)
// the dataset snapshots its component metadata into a small manifest and
// hands it to the device, whose SaveManifest syncs the data files first and
// then replaces the manifest atomically. Reopening a directory restores the
// component lists from the manifest, garbage-collects files a crash left
// half-installed, and replays the on-disk write-ahead log to rebuild the
// memory components — the real-files analogue of the simulated
// Crash/Recover battery. On the simulated device every hook here is a
// no-op, keeping the default backend byte-for-byte unchanged.

// manifestVersion guards the on-disk manifest schema.
const manifestVersion = 1

// Reserved tree names of the primary and primary-key indexes in the
// manifest (secondary trees use their declared names).
const (
	manifestPrimary = "primary"
	manifestPKIndex = "pk-index"
)

type manifest struct {
	Version  int
	Strategy string
	PageSize int
	Epoch    uint64
	Clock    int64
	Trees    []treeManifest
}

type treeManifest struct {
	Name       string
	Components []componentManifest
}

type componentManifest struct {
	File            uint64
	MinTS           int64
	MaxTS           int64
	EpochMin        uint64
	EpochMax        uint64
	FilterMin       int64  `json:",omitempty"`
	FilterMax       int64  `json:",omitempty"`
	HasFilter       bool   `json:",omitempty"`
	RepairedTS      int64  `json:",omitempty"`
	Obsolete        []byte `json:",omitempty"`
	Valid           []byte `json:",omitempty"`
	SharedValid     bool   `json:",omitempty"`
	DeletedKeysFile uint64 `json:",omitempty"`
	// Bloom is the component's marshalled bloom.V2 filter. Only the v2
	// runtime filter persists; the paper's cost-model variants stay
	// in-memory and are rebuilt by scan at reopen. Older manifests simply
	// lack the field, which is the same fallback.
	Bloom []byte `json:",omitempty"`
}

// Persist snapshots every tree's component list into the device manifest.
// On a non-durable device it is a no-op. The snapshot is taken under
// crashMu, so it can never observe half of a multi-tree install (a flush
// batch or a paired primary/pk merge); saves are serialized so a later
// snapshot is never overwritten by an earlier one.
func (d *Dataset) Persist() error {
	md, ok := d.cfg.Store.Device().(storage.ManifestDevice)
	if !ok {
		return nil
	}
	d.persistMu.Lock()
	defer d.persistMu.Unlock()
	d.crashMu.Lock()
	m := d.buildManifest()
	d.crashMu.Unlock()
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return md.SaveManifest(data)
}

func (d *Dataset) buildManifest() manifest {
	m := manifest{
		Version:  manifestVersion,
		Strategy: d.cfg.Strategy.String(),
		PageSize: d.cfg.Store.PageSize(),
		Epoch:    d.epoch.Load(),
		Clock:    d.clock.Load(),
	}
	m.Trees = append(m.Trees, d.treeManifest(manifestPrimary, d.primary, false))
	if d.pkIndex != nil {
		// Under mutable bitmaps the pk sibling shares the primary
		// component's bitmap; mark it shared instead of double-storing.
		m.Trees = append(m.Trees, d.treeManifest(manifestPKIndex, d.pkIndex, d.cfg.Strategy == MutableBitmap))
	}
	for _, si := range d.secondaries {
		m.Trees = append(m.Trees, d.treeManifest(si.Spec.Name, si.Tree, false))
	}
	return m
}

func (d *Dataset) treeManifest(name string, tr *lsm.Tree, sharedValid bool) treeManifest {
	tm := treeManifest{Name: name}
	for _, c := range tr.Components() {
		obsolete, repairedTS := tr.RepairState(c)
		cm := componentManifest{
			File:       uint64(c.BTree.FileID()),
			MinTS:      c.ID.MinTS,
			MaxTS:      c.ID.MaxTS,
			EpochMin:   c.EpochMin,
			EpochMax:   c.EpochMax,
			FilterMin:  c.FilterMin,
			FilterMax:  c.FilterMax,
			HasFilter:  c.HasFilter,
			RepairedTS: repairedTS,
			Obsolete:   obsolete.Marshal(),
		}
		if sharedValid {
			cm.SharedValid = c.Valid != nil
		} else {
			cm.Valid = c.Valid.Marshal()
		}
		if c.DeletedKeys != nil {
			cm.DeletedKeysFile = uint64(c.DeletedKeys.FileID())
		}
		// Filters are immutable once a component is installed, so the
		// marshal below races with nothing.
		if v2, ok := c.Bloom.(*bloom.V2); ok {
			cm.Bloom = v2.Marshal()
		}
		tm.Components = append(tm.Components, cm)
	}
	return tm
}

// walSink streams log records onto the device's WAL area.
type walSink struct{ dev storage.WALDevice }

func (s walSink) Append(b []byte, sync bool) error { return s.dev.AppendWAL(b, sync) }

// setupDurability wires a freshly opened dataset to a durable device:
// restore the manifest's component lists, garbage-collect files a crash
// left unreferenced (half-built components whose install never reached the
// manifest), attach the persisted write-ahead log, and replay committed
// records past the maximum durable component timestamp — rebuilding the
// memory components the previous process lost. On a non-durable device it
// is a no-op.
func (d *Dataset) setupDurability() error {
	dev := d.cfg.Store.Device()
	md, ok := dev.(storage.ManifestDevice)
	if !ok {
		return nil
	}
	data, err := md.LoadManifest()
	if err != nil {
		return err
	}
	referenced := make(map[storage.FileID]bool)
	if data != nil {
		if err := d.restoreManifest(data, referenced); err != nil {
			return err
		}
	}
	// Drop every file the manifest does not reference: components a crash
	// caught mid-install (data synced, manifest never written) and
	// components retired by merges (their files are kept live in-process
	// for stale readers, but no reader survives a restart).
	for _, id := range dev.List() {
		if !referenced[id] {
			d.cfg.Store.Delete(id)
		}
	}
	if d.cfg.DisableWAL {
		return nil
	}
	wd, ok := dev.(storage.WALDevice)
	if !ok {
		return nil
	}
	image, err := wd.LoadWAL()
	if err != nil {
		return err
	}
	log, consumed := wal.OpenPersisted(d.env, image, walSink{wd})
	log.SetYield(d.cfg.Yield)
	if d.cfg.GroupCommit != nil {
		log.AttachGroupCommitter(d.cfg.GroupCommit)
	}
	d.log = log
	// Seed the transaction-ID allocator past every recovered ID: replay
	// matches commits to data records by ID, so a recycled ID could marry
	// a dead data record from an earlier session to a new session's
	// commit.
	d.ids.AdvanceTo(d.log.MaxTxnID())
	if len(image) > 0 {
		if err := d.Recover(); err != nil {
			return fmt.Errorf("core: replay of the on-disk WAL failed: %w", err)
		}
	}
	// Compact the on-disk log: drop records the restored components cover
	// and, crucially, any torn tail a crash left (consumed < len(image)) —
	// appends must never land behind garbage, or every commit of this
	// session would be unreadable at the next reopen.
	compacted := d.log.CompactImage(d.maxComponentTS())
	if len(compacted) != len(image) || consumed != len(image) {
		if err := wd.ResetWAL(compacted); err != nil {
			return err
		}
	}
	return nil
}

// CompactWAL rewrites the device's WAL area keeping only records that
// durable components do not cover. It must only run while the log is
// quiescent — no writers, maintenance drained — i.e. at clean shutdown
// (reopen compacts automatically). A no-op off the file backend.
func (d *Dataset) CompactWAL() error {
	wd, ok := d.cfg.Store.Device().(storage.WALDevice)
	if !ok || d.log == nil {
		return nil
	}
	// After a sink failure the in-memory record list is a superset of what
	// was durably appended (the failed operation returned an error to the
	// caller and never reached the memtable). Rewriting the device from
	// memory would make that failed write durable; leave the on-disk log
	// alone — it is consistent on its own: an uncommitted or torn record
	// is skipped or truncated at the next reopen.
	if err := d.log.SinkErr(); err != nil {
		return err
	}
	return wd.ResetWAL(d.log.CompactImage(d.maxComponentTS()))
}

// restoreManifest rebuilds every tree's component list from the manifest,
// validating that the dataset was reopened with a compatible configuration,
// and records every referenced file ID.
func (d *Dataset) restoreManifest(data []byte, referenced map[storage.FileID]bool) error {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("core: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("core: manifest version %d is not supported", m.Version)
	}
	if m.Strategy != d.cfg.Strategy.String() {
		return fmt.Errorf("core: reopen with strategy %s, but the directory was written with %s", d.cfg.Strategy, m.Strategy)
	}
	if m.PageSize != d.cfg.Store.PageSize() {
		return fmt.Errorf("core: reopen with page size %d, but the directory was written with %d", d.cfg.Store.PageSize(), m.PageSize)
	}
	byName := make(map[string]treeManifest, len(m.Trees))
	for _, tm := range m.Trees {
		byName[tm.Name] = tm
	}
	expected := map[string]*lsm.Tree{manifestPrimary: d.primary}
	if d.pkIndex != nil {
		expected[manifestPKIndex] = d.pkIndex
	}
	for _, si := range d.secondaries {
		expected[si.Spec.Name] = si.Tree
	}
	for name := range byName {
		if expected[name] == nil {
			return fmt.Errorf("core: the directory holds index %q, which the reopen configuration does not declare", name)
		}
	}
	for name := range expected {
		if _, ok := byName[name]; !ok {
			return fmt.Errorf("core: reopen declares index %q, which the directory does not hold", name)
		}
	}

	primComps, err := d.restoreTree(d.primary, byName[manifestPrimary], referenced)
	if err != nil {
		return err
	}
	if d.pkIndex != nil {
		pkComps, err := d.restoreTree(d.pkIndex, byName[manifestPKIndex], referenced)
		if err != nil {
			return err
		}
		// Re-link the pairing invariant: a pk component marked SharedValid
		// shares its primary sibling's validity bitmap (Figure 9).
		primByID := make(map[lsm.ID]*lsm.Component, len(primComps))
		for _, c := range primComps {
			primByID[c.ID] = c
		}
		for i, cm := range byName[manifestPKIndex].Components {
			if !cm.SharedValid {
				continue
			}
			sib := primByID[pkComps[i].ID]
			if sib == nil || sib.Valid == nil {
				return fmt.Errorf("core: manifest pairs pk component (%d,%d) with a missing primary bitmap", pkComps[i].ID.MinTS, pkComps[i].ID.MaxTS)
			}
			pkComps[i].Valid = sib.Valid
		}
	}
	for _, si := range d.secondaries {
		if _, err := d.restoreTree(si.Tree, byName[si.Spec.Name], referenced); err != nil {
			return err
		}
	}
	d.epoch.Store(m.Epoch)
	// The clock must stay ahead of every timestamp ever issued: the
	// manifest records it as of the last install, and WAL replay bumps it
	// past any newer committed record.
	clock := m.Clock
	for _, tm := range m.Trees {
		for _, cm := range tm.Components {
			if cm.MaxTS > clock {
				clock = cm.MaxTS
			}
		}
	}
	d.clock.Store(clock)
	return nil
}

func (d *Dataset) restoreTree(tr *lsm.Tree, tm treeManifest, referenced map[storage.FileID]bool) ([]*lsm.Component, error) {
	images := make([]lsm.RestoredComponent, len(tm.Components))
	for i, cm := range tm.Components {
		obsolete, err := bitmap.UnmarshalImmutable(cm.Obsolete)
		if err != nil {
			return nil, fmt.Errorf("core: manifest of %s: %w", tm.Name, err)
		}
		valid, err := bitmap.UnmarshalMutable(cm.Valid)
		if err != nil {
			return nil, fmt.Errorf("core: manifest of %s: %w", tm.Name, err)
		}
		images[i] = lsm.RestoredComponent{
			ID:              lsm.ID{MinTS: cm.MinTS, MaxTS: cm.MaxTS},
			EpochMin:        cm.EpochMin,
			EpochMax:        cm.EpochMax,
			File:            storage.FileID(cm.File),
			FilterMin:       cm.FilterMin,
			FilterMax:       cm.FilterMax,
			HasFilter:       cm.HasFilter,
			RepairedTS:      cm.RepairedTS,
			Obsolete:        obsolete,
			Valid:           valid,
			DeletedKeysFile: storage.FileID(cm.DeletedKeysFile),
			Bloom:           cm.Bloom,
		}
		referenced[storage.FileID(cm.File)] = true
		if cm.DeletedKeysFile != 0 {
			referenced[storage.FileID(cm.DeletedKeysFile)] = true
		}
	}
	return tr.Restore(images)
}
