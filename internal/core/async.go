package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/lsm"
	"repro/internal/maint"
	"repro/internal/memtable"
	"repro/internal/obs"
)

// This file implements the asynchronous half of dataset maintenance: with
// Config.Maintenance set, the write that crosses the memory budget only
// freezes the memory components (a writer drain plus pointer swaps) and
// returns; the disk-component builds and every policy-picked merge run on
// the shared background pool. The frozen memtables stay readable through
// the trees' flushing queues (lsm.Tree.ReadView), writers soft-stall when
// maintenance falls too far behind (backpressure), and worker errors
// surface on the next write. Crash abandons in-flight installs through the
// trees' install generations, so a failure can never resurrect pre-crash
// memory state.

// flushBatch is one frozen set of memory components: every index of the
// dataset freezes together under one epoch, exactly like a synchronous
// flush (Section 3's shared memory budget), only the build is deferred.
type flushBatch struct {
	epoch uint64

	primary, pk *memtable.Table // nil when that index's memtable was empty
	primGen     uint64          // install generation captured at freeze
	pkGen       uint64
	secondaries []*memtable.Table // per secondary index; nil entries allowed
	secGens     []uint64
	secDeleted  []*frozenDeleted // DeletedKey accumulators frozen with the batch

	// Mutable-bitmap bookkeeping: deletes of keys whose newest version
	// lives in this batch's frozen memtables are forwarded here; the build
	// applies them to the new component's validity bitmap before install
	// (the same idea as the Section 5.3 build-target forwarding, one stage
	// earlier in the pipeline).
	delMu         sync.Mutex
	frozenDeletes map[string]struct{}
	sealed        bool
	sealedPrim    *lsm.Component // set at seal time; nil when abandoned by a crash
}

// addFrozenDelete forwards a delete of pk into the batch. Before sealing it
// lands in the forwarded set, which the build applies to the component's
// bitmap (forwarded=true). After sealing the caller must apply the delete
// to the returned sealed component itself — through the normal
// disk-component path, so a merge concurrently building over it still sees
// the delete forwarded. Both results zero means the batch was abandoned by
// a crash and the caller re-runs its search against the post-crash state.
func (b *flushBatch) addFrozenDelete(pk []byte) (forwarded bool, sealedComp *lsm.Component) {
	b.delMu.Lock()
	defer b.delMu.Unlock()
	if !b.sealed {
		if b.frozenDeletes == nil {
			b.frozenDeletes = make(map[string]struct{})
		}
		b.frozenDeletes[string(pk)] = struct{}{}
		return true, nil
	}
	return false, b.sealedPrim // nil when abandoned: the memtables died with the crash
}

// seal closes the forwarded-delete window: later forwards apply directly to
// comp's bitmap. It returns the deletes forwarded so far.
func (b *flushBatch) seal(comp *lsm.Component) map[string]struct{} {
	b.delMu.Lock()
	defer b.delMu.Unlock()
	b.sealed = true
	b.sealedPrim = comp
	dels := b.frozenDeletes
	b.frozenDeletes = nil
	return dels
}

// removeFrozenDelete retracts a forwarded delete whose WAL append failed.
// Before sealing it simply leaves the forwarded set; after sealing the set
// was already applied to the built component, which is returned so the
// caller can clear the bit there (nil when the batch was abandoned by a
// crash — nothing was applied).
func (b *flushBatch) removeFrozenDelete(pk []byte) *lsm.Component {
	b.delMu.Lock()
	defer b.delMu.Unlock()
	if !b.sealed {
		delete(b.frozenDeletes, string(pk))
		return nil
	}
	return b.sealedPrim
}

// maintState is the per-dataset scheduling state over the shared pool.
type maintState struct {
	pool *maint.Pool

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []*flushBatch
	byPKTable map[*memtable.Table]*flushBatch
	frozen    int // pending + building batches not yet installed
	building  bool
	mergeWant bool // a merge job is queued
	merging   bool
	err       error // sticky first failure of any background job

	freezeMu sync.Mutex // serializes freeze decisions
}

func newMaintState(pool *maint.Pool) *maintState {
	m := &maintState{pool: pool, byPKTable: make(map[*memtable.Table]*flushBatch)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// ErrMaintenanceClosed reports a write against a store whose maintenance
// pool was closed (the store was Closed).
var ErrMaintenanceClosed = errors.New("core: maintenance pool is closed")

// setErrLocked records the first background failure; m.mu must be held.
func (m *maintState) setErrLocked(err error) {
	if m.err == nil && err != nil {
		m.err = err
	}
	m.cond.Broadcast()
}

// MaintErr returns the sticky background-maintenance error, if any. The
// next write after an asynchronous flush or merge fails returns this error;
// it stays set (the store is considered wedged) until a Crash+Recover
// cycle.
func (d *Dataset) MaintErr() error {
	m := d.maint
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// maybeFlushAsync is the asynchronous counterpart of maybeFlush: apply
// backpressure, then freeze-and-schedule instead of flushing inline. The
// sticky-error check is folded into the backpressure pass so the common
// write takes the maintenance mutex once.
func (d *Dataset) maybeFlushAsync() error {
	if err := d.stallForBackpressure(); err != nil {
		return err
	}
	if d.memBytes() < d.cfg.MemoryBudget {
		return nil
	}
	d.freezeAndSchedule(true)
	return d.MaintErr()
}

// stallForBackpressure blocks the writer while maintenance is too far
// behind: too many frozen batches awaiting builds, or (when configured) too
// many unmerged disk components while a merge is still pending. Stall
// counts and wall-clock durations land in the metrics counters. It returns
// the sticky maintenance error, which also breaks any stall.
func (d *Dataset) stallForBackpressure() error {
	m := d.maint
	maxFrozen := d.cfg.MaxFrozenMemtables
	if maxFrozen <= 0 {
		maxFrozen = 4
	}
	maxComps := d.cfg.MaxUnmergedComponents
	sl := d.env.Clock.Sleeper()
	var start time.Duration
	stalled := false
	frozenStall := false // cause at the moment the stall began
	m.mu.Lock()
	for m.err == nil {
		overFrozen := m.frozen >= maxFrozen
		over := overFrozen
		if !over && maxComps > 0 && (m.mergeWant || m.merging) &&
			d.primary.NumDiskComponents() >= maxComps {
			over = true
		}
		if !over {
			break
		}
		if !stalled {
			stalled = true
			frozenStall = overFrozen
			start = sl.Monotonic()
		}
		m.cond.Wait()
	}
	err := m.err
	m.mu.Unlock()
	if stalled {
		d.env.Counters.WriteStalls.Add(1)
		if frozenStall {
			d.env.Counters.WriteStallsFrozen.Add(1)
		} else {
			d.env.Counters.WriteStallsComponents.Add(1)
		}
		d.env.Counters.WriteStallNanos.Add((sl.Monotonic() - start).Nanoseconds())
		// Lane synchronization: a stalled writer waited for background
		// maintenance, so the ingest lane's virtual clock catches up to
		// the maintenance lane.
		d.env.Clock.AdvanceTo(d.bgEnv.Clock.Now())
	}
	return err
}

// freezeAndSchedule freezes the memory components into a batch and submits
// its build to the pool. With checkBudget set it re-verifies the memory
// budget under the freeze lock, so racing writers freeze at most once per
// crossing. The batch is enqueued while freezeMu is still held: freeze
// (epoch) order and queue order must agree, or the FIFO builder could
// install a newer epoch's components below an older one and break the
// component list's recency order.
func (d *Dataset) freezeAndSchedule(checkBudget bool) {
	m := d.maint
	m.freezeMu.Lock()
	if checkBudget && d.memBytes() < d.cfg.MemoryBudget {
		m.freezeMu.Unlock()
		return
	}
	b := d.freezeBatch()
	m.freezeMu.Unlock()
	if b == nil {
		return
	}
	if !m.pool.Submit(d.processOneBatch) {
		m.mu.Lock()
		for i, p := range m.pending {
			if p == b {
				m.pending = append(m.pending[:i:i], m.pending[i+1:]...)
				m.frozen--
				break
			}
		}
		delete(m.byPKTable, b.pk)
		m.setErrLocked(ErrMaintenanceClosed)
		m.mu.Unlock()
	}
}

// freezeBatch freezes every index's memory component under a writer drain,
// stamps the batch with a fresh epoch, and enqueues it — still inside the
// drain, so no resumed writer can ever observe a frozen memtable whose
// batch is not yet registered (the Mutable-bitmap delete forward relies on
// finding the owning batch through byPKTable). It returns nil when every
// memtable is empty (no epoch is consumed, nothing is enqueued).
func (d *Dataset) freezeBatch() *flushBatch {
	b := &flushBatch{}
	any := false
	d.dsLock.Drain(func() {
		var ok bool
		if b.primary, b.primGen, ok = d.primary.Freeze(); ok {
			any = true
		} else {
			b.primary = nil
		}
		if d.pkIndex != nil {
			if b.pk, b.pkGen, ok = d.pkIndex.Freeze(); ok {
				any = true
			} else {
				b.pk = nil
			}
		}
		b.secondaries = make([]*memtable.Table, len(d.secondaries))
		b.secGens = make([]uint64, len(d.secondaries))
		b.secDeleted = make([]*frozenDeleted, len(d.secondaries))
		for i, si := range d.secondaries {
			if tbl, gen, ok := si.Tree.Freeze(); ok {
				b.secondaries[i], b.secGens[i] = tbl, gen
				any = true
				if d.cfg.Strategy == DeletedKey {
					// The accumulator freezes with its memtable, exactly
					// as the synchronous flush takes it when the component
					// is built; an empty-memtable secondary keeps
					// accumulating for its next flush.
					b.secDeleted[i] = si.freezeMemDeleted()
				}
			}
		}
		if any {
			b.epoch = d.epoch.Add(1)
			m := d.maint
			m.mu.Lock()
			m.pending = append(m.pending, b)
			m.frozen++
			if b.pk != nil {
				m.byPKTable[b.pk] = b
			}
			m.mu.Unlock()
		}
	})
	if !any {
		return nil
	}
	return b
}

// processOneBatch is the pool job that builds and installs pending flush
// batches, strictly in freeze (epoch) order: the `building` flag admits one
// builder per dataset and the pending queue pops FIFO. A job that finds a
// builder already active returns immediately — the active builder drains
// the queue before exiting — so a busy dataset never pins extra pool
// workers that other shards could use.
func (d *Dataset) processOneBatch() {
	m := d.maint
	m.mu.Lock()
	if m.building {
		m.mu.Unlock()
		return
	}
	for len(m.pending) > 0 {
		b := m.pending[0]
		m.pending = m.pending[1:]
		m.building = true
		m.mu.Unlock()

		op := d.cfg.Journal.Begin(obs.JFlush, "batch")
		bytes, comps, err := d.buildAndInstallBatch(b)
		if err == nil {
			// Durability point: sync the built component files and publish
			// them in the manifest before the batch counts as complete.
			err = d.Persist()
		}
		op.End(bytes, 0, comps, err)

		// Queue the follow-up merge BEFORE announcing completion: a
		// drainer woken by the broadcast below must observe the pending
		// merge, or it could return with merges still due.
		if err == nil {
			d.scheduleMerge()
		}

		m.mu.Lock()
		m.building = false
		m.frozen--
		delete(m.byPKTable, b.pk)
		if err != nil && !errors.Is(err, lsm.ErrStaleInstall) {
			m.setErrLocked(err)
		}
		m.cond.Broadcast()
	}
	m.mu.Unlock()
}

// batchForPKTable maps a frozen pk-index memtable to its flush batch (for
// forwarding Mutable-bitmap deletes).
func (d *Dataset) batchForPKTable(tbl *memtable.Table) *flushBatch {
	m := d.maint
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byPKTable[tbl]
}

// buildAndInstallBatch bulk-loads every frozen memtable of the batch into
// disk components, then installs them all atomically with respect to Crash.
// It reports the components built and their byte size for the maintenance
// journal (best-effort: a failed batch reports what it built before the
// failure).
func (d *Dataset) buildAndInstallBatch(b *flushBatch) (bytes int64, comps int, err error) {
	var primComp, pkComp *lsm.Component
	if b.primary != nil {
		if primComp, err = d.primary.BuildFrozenOn(d.bgStore, b.primary, b.epoch); err != nil {
			return bytes, comps, err
		}
		bytes += primComp.SizeBytes()
		comps++
	}
	if b.pk != nil {
		if pkComp, err = d.pkIndex.BuildFrozenOn(d.bgStore, b.pk, b.epoch); err != nil {
			return bytes, comps, err
		}
		bytes += pkComp.SizeBytes()
		comps++
	}
	if d.cfg.Strategy == MutableBitmap {
		if err = pairPrimaryPK(primComp, pkComp); err != nil {
			return bytes, comps, err
		}
	}
	secComps := make([]*lsm.Component, len(d.secondaries))
	for i, si := range d.secondaries {
		if b.secondaries[i] == nil {
			continue
		}
		var comp *lsm.Component
		if comp, err = si.Tree.BuildFrozenOn(d.bgStore, b.secondaries[i], b.epoch); err != nil {
			return bytes, comps, err
		}
		bytes += comp.SizeBytes()
		comps++
		if d.cfg.Strategy == DeletedKey && b.secDeleted[i] != nil {
			if err = d.attachDeletedEntries(comp, sortedDeleted(b.secDeleted[i].m)); err != nil {
				return bytes, comps, err
			}
		}
		secComps[i] = comp
	}

	// Install atomically with respect to Crash: either the whole batch
	// lands before the failure (and is durable) or none of it does. The
	// trees' per-install generation checks agree because Crash bumps them
	// all while holding crashMu.
	d.crashMu.Lock()
	defer d.crashMu.Unlock()
	if b.primary != nil && d.primary.InstallGen() != b.primGen {
		// A crash abandoned the batch; the frozen memtables are already
		// gone. Seal with no component so racing delete-forwarders fall
		// back to re-running their search.
		b.seal(nil)
		return bytes, comps, lsm.ErrStaleInstall
	}
	if primComp != nil && primComp.Valid != nil {
		// Seal the forwarded-delete window and apply the deletes gathered
		// while the memtable was frozen (Mutable-bitmap strategy). The
		// component is not installed yet, so no merge can be building over
		// it; a lookup failure must fail the batch — silently dropping a
		// forwarded delete would resurrect the record.
		for pk := range b.seal(primComp) {
			_, ord, found, err := primComp.BTree.Get([]byte(pk))
			if err != nil {
				return bytes, comps, err
			}
			if found {
				primComp.Valid.Set(ord)
			}
		}
	}
	if b.primary != nil {
		if err = d.primary.InstallFlushed(b.primary, primComp, b.primGen); err != nil {
			return bytes, comps, err
		}
	}
	if b.pk != nil {
		if err = d.pkIndex.InstallFlushed(b.pk, pkComp, b.pkGen); err != nil {
			return bytes, comps, err
		}
	}
	for i, si := range d.secondaries {
		if b.secondaries[i] != nil {
			if err = si.Tree.InstallFlushed(b.secondaries[i], secComps[i], b.secGens[i]); err != nil {
				return bytes, comps, err
			}
		}
		si.releasePendingDeleted(b.secDeleted[i])
	}
	return bytes, comps, nil
}

// scheduleMerge queues one merge job unless one is already queued. The job
// runs every due merge; flush batches finishing during the run queue a
// fresh job, so newly due merges are never missed.
func (d *Dataset) scheduleMerge() {
	if d.cfg.Policy == nil {
		return
	}
	m := d.maint
	m.mu.Lock()
	if m.mergeWant || m.err != nil {
		m.mu.Unlock()
		return
	}
	m.mergeWant = true
	m.mu.Unlock()
	if !m.pool.SubmitKind(maint.JobMerge, d.runMergeJob) {
		m.mu.Lock()
		m.mergeWant = false
		m.setErrLocked(ErrMaintenanceClosed)
		m.mu.Unlock()
	}
}

// runMergeJob is the pool job that runs every due merge for the dataset.
// The `merging` flag admits one merger per dataset: a job arriving while
// one is active returns at once, leaving mergeWant set for the active
// merger's loop to consume, so no pool worker ever blocks behind another
// shard's merge pass.
func (d *Dataset) runMergeJob() {
	m := d.maint
	m.mu.Lock()
	if m.merging {
		m.mu.Unlock()
		return
	}
	for m.mergeWant {
		m.mergeWant = false
		m.merging = true
		m.mu.Unlock()

		err := d.mergeDue()
		if errors.Is(err, lsm.ErrStaleInstall) {
			err = nil // a crash abandoned the merge; its inputs are intact
		}
		if err == nil {
			err = d.Persist()
		}

		m.mu.Lock()
		m.merging = false
		if err != nil {
			m.setErrLocked(err)
		}
		m.cond.Broadcast()
	}
	m.mu.Unlock()
}

// flushAllAsync makes FlushAll deterministic in asynchronous mode: freeze
// whatever the memtables hold, make sure due merges are considered, and
// drain until every background job for this dataset has finished.
func (d *Dataset) flushAllAsync() error {
	if err := d.MaintErr(); err != nil {
		return err
	}
	d.freezeAndSchedule(false)
	d.scheduleMerge()
	return d.DrainMaintenance()
}

// DrainMaintenance blocks until no flush batches are pending or building
// and no merge job is queued or running, then returns the sticky
// maintenance error, if any. On a synchronous dataset it returns nil
// immediately.
func (d *Dataset) DrainMaintenance() error {
	m := d.maint
	if m == nil {
		return nil
	}
	m.mu.Lock()
	for m.err == nil && (len(m.pending) > 0 || m.building || m.mergeWant || m.merging) {
		m.cond.Wait()
	}
	err := m.err
	m.mu.Unlock()
	// Lane synchronization: draining waits for the maintenance lane, so
	// the ingest lane's virtual clock catches up to it.
	d.env.Clock.AdvanceTo(d.bgEnv.Clock.Now())
	return err
}

// crashAsync abandons queued flush batches (their frozen memtables die with
// the crash) and wakes stalled writers. In-flight builds and merges abandon
// themselves at install time through the trees' generation checks. The
// caller holds crashMu.
func (d *Dataset) crashAsync() {
	m := d.maint
	if m == nil {
		return
	}
	m.mu.Lock()
	m.frozen -= len(m.pending)
	m.pending = nil
	m.byPKTable = make(map[*memtable.Table]*flushBatch)
	m.err = nil // the crash wipes the wedged state; Recover rebuilds from the log
	m.cond.Broadcast()
	m.mu.Unlock()
}
