package core

import (
	"testing"

	"repro/internal/lsm"
)

// TestFlushAllEmptyUniform pins the uniform empty-flush contract: a flush
// with nothing to write is a no-op for every index alike — no error, no
// components, and no flush epoch consumed — and lsm.ErrEmptyFlush never
// escapes FlushAll, whether the empty index is the primary, the primary key
// index, or a secondary.
func TestFlushAllEmptyUniform(t *testing.T) {
	for _, strat := range []Strategy{Eager, Validation, MutableBitmap, DeletedKey} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			d := newTestDataset(t, func(c *Config) { c.Strategy = strat })

			// Entirely empty store: no error, no epoch, no components.
			if err := d.FlushAll(); err != nil {
				t.Fatalf("empty FlushAll: %v", err)
			}
			if got := d.epoch.Load(); got != 0 {
				t.Fatalf("empty flush consumed epoch %d", got)
			}
			for _, tr := range d.allTrees() {
				if n := tr.NumDiskComponents(); n != 0 {
					t.Fatalf("%s: %d components after empty flush", tr.Name(), n)
				}
			}

			// One record, then two flushes: the second is empty everywhere
			// and must change nothing.
			mustUpsert(t, d, 1, "CA", 2015)
			if err := d.FlushAll(); err != nil {
				t.Fatal(err)
			}
			epoch := d.epoch.Load()
			comps := d.primary.NumDiskComponents()
			if err := d.FlushAll(); err != nil {
				t.Fatalf("second (empty) FlushAll: %v", err)
			}
			if d.epoch.Load() != epoch {
				t.Fatalf("empty flush consumed epoch: %d -> %d", epoch, d.epoch.Load())
			}
			if d.primary.NumDiskComponents() != comps {
				t.Fatal("empty flush changed the component list")
			}
			if _, found, err := d.Primary().Get(pkOf(1)); err != nil || !found {
				t.Fatalf("record lost across empty flush: found=%v err=%v", found, err)
			}
		})
	}
}

// TestFlushSecondaryOnlySkipsEmpty covers the asymmetric case the old code
// folded into one ErrEmptyFlush check per index: a record without a
// secondary key leaves the secondary's memtable empty while the primary and
// pk indexes flush — the secondary must simply skip, uniformly.
func TestFlushSecondaryOnlySkipsEmpty(t *testing.T) {
	d := newTestDataset(t, func(c *Config) {
		c.Strategy = Validation
		// recLocation returns false for records shorter than 8 bytes, so
		// this secondary never receives a key.
		c.Secondaries = []SecondarySpec{{Name: "location", Extract: recLocation}}
		c.FilterExtract = nil
	})
	if err := d.Upsert(pkOf(9), []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if err := d.FlushAll(); err != nil {
		t.Fatalf("FlushAll with an empty secondary: %v", err)
	}
	if n := d.primary.NumDiskComponents(); n != 1 {
		t.Fatalf("primary components = %d, want 1", n)
	}
	if n := d.Secondary("location").Tree.NumDiskComponents(); n != 0 {
		t.Fatalf("empty secondary got %d components", n)
	}
	// The flushed record is still readable and ErrEmptyFlush never leaked.
	if _, found, err := d.Primary().Get(pkOf(9)); err != nil || !found {
		t.Fatalf("record lost: found=%v err=%v", found, err)
	}
	if err := d.FlushAll(); err == lsm.ErrEmptyFlush {
		t.Fatal("ErrEmptyFlush escaped FlushAll")
	}
}
