package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/lsm"
	"repro/internal/maint"
)

// setupCCDataset builds a Mutable-bitmap dataset with two flushed
// components holding keys [0, n).
func setupCCDataset(t *testing.T, cc CCMethod, n int) *Dataset {
	t.Helper()
	d := newTestDataset(t, func(c *Config) {
		c.Strategy = MutableBitmap
		c.CC = cc
		c.Policy = nil
		c.MemoryBudget = 1 << 30
	})
	for i := 0; i < n/2; i++ {
		mustUpsert(t, d, uint64(i), "AA", int64(i))
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i := n / 2; i < n; i++ {
		mustUpsert(t, d, uint64(i), "BB", int64(i))
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestConcurrentDeletesDuringMergeNotLost is the Section 5.3 correctness
// property: a delete racing the component builder must be reflected in the
// new component, whether the builder has already passed the key (forwarded
// delete / side-file) or not (bitmap snapshot / re-check under lock).
func TestConcurrentDeletesDuringMergeNotLost(t *testing.T) {
	const n = 4000
	for _, cc := range []CCMethod{SideFile, Lock} {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				d := setupCCDataset(t, cc, n)
				var wg sync.WaitGroup
				deleted := make(map[uint64]bool)
				var mu sync.Mutex

				// Writers delete every 7th key while the merge runs.
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := trial; i < n; i += 7 {
						ok, err := d.Delete(pkOf(uint64(i)))
						if err != nil {
							t.Error(err)
							return
						}
						if ok {
							mu.Lock()
							deleted[uint64(i)] = true
							mu.Unlock()
						}
					}
				}()
				if _, err := d.MergePrimaryRange(0, 2, 0, 2); err != nil {
					t.Fatal(err)
				}
				wg.Wait()

				// Every delete must be observed; every surviving key must
				// still be readable with its record intact.
				for i := 0; i < n; i++ {
					_, found, err := d.Primary().Get(pkOf(uint64(i)))
					if err != nil {
						t.Fatal(err)
					}
					mu.Lock()
					wantGone := deleted[uint64(i)]
					mu.Unlock()
					if found == wantGone {
						t.Fatalf("cc=%v trial=%d key %d: found=%v deleted=%v",
							cc, trial, i, found, wantGone)
					}
				}
				// The same holds when scanning components directly (the
				// Mutable-bitmap read path that skips reconciliation).
				visible := map[uint64]bool{}
				for _, comp := range d.Primary().Components() {
					scan, err := comp.BTree.NewScan(nil, nil)
					if err != nil {
						t.Fatal(err)
					}
					for {
						e, ord, ok, err := scan.Next()
						if err != nil {
							t.Fatal(err)
						}
						if !ok {
							break
						}
						if e.Anti || comp.Valid.IsSet(ord) {
							continue
						}
						k := decodeKey(e.Key)
						if visible[k] {
							t.Fatalf("key %d visible twice across components", k)
						}
						visible[k] = true
					}
				}
				mem := d.Primary().Mem().NewIterator(nil, nil)
				for {
					e, ok := mem.Next()
					if !ok {
						break
					}
					if !e.Anti {
						visible[decodeKey(e.Key)] = true
					}
				}
				for i := uint64(0); i < n; i++ {
					mu.Lock()
					wantGone := deleted[i]
					mu.Unlock()
					if visible[i] == wantGone {
						t.Fatalf("cc=%v trial=%d scan: key %d visible=%v deleted=%v",
							cc, trial, i, visible[i], wantGone)
					}
				}
			}
		})
	}
}

func decodeKey(k []byte) uint64 {
	var v uint64
	for _, b := range k {
		v = v<<8 | uint64(b)
	}
	return v
}

// TestConcurrentUpsertsDuringMerge verifies newer versions written during a
// merge win over merged old versions.
func TestConcurrentUpsertsDuringMerge(t *testing.T) {
	const n = 2000
	for _, cc := range []CCMethod{SideFile, Lock} {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			d := setupCCDataset(t, cc, n)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i += 5 {
					mustUpsert(t, d, uint64(i), "ZZ", int64(10000+i))
				}
			}()
			if _, err := d.MergePrimaryRange(0, 2, 0, 2); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			for i := 0; i < n; i++ {
				e, found, err := d.Primary().Get(pkOf(uint64(i)))
				if err != nil || !found {
					t.Fatalf("key %d lost: %v", i, err)
				}
				loc, _ := recLocation(e.Value)
				want := "AA"
				if i >= n/2 {
					want = "BB"
				}
				if i%5 == 0 {
					want = "ZZ"
				}
				if string(loc) != want {
					t.Fatalf("cc=%v key %d: location %s want %s", cc, i, loc, want)
				}
			}
		})
	}
}

// TestMergedComponentSharesBitmapWithPK re-checks the shared-bitmap
// invariant after a CC merge.
func TestMergedComponentSharesBitmapWithPK(t *testing.T) {
	d := setupCCDataset(t, SideFile, 1000)
	if _, err := d.MergePrimaryRange(0, 2, 0, 2); err != nil {
		t.Fatal(err)
	}
	p := d.Primary().Components()
	k := d.PKIndex().Components()
	if len(p) != 1 || len(k) != 1 {
		t.Fatalf("components after merge: %d/%d", len(p), len(k))
	}
	if p[0].Valid == nil || p[0].Valid != k[0].Valid {
		t.Fatal("merged primary and pk components must share one bitmap")
	}
	if p[0].NumEntries() != k[0].NumEntries() {
		t.Fatalf("entry counts diverge: %d vs %d", p[0].NumEntries(), k[0].NumEntries())
	}
	// A post-merge delete lands on the shared bitmap.
	if ok, err := d.Delete(pkOf(7)); err != nil || !ok {
		t.Fatal(err, ok)
	}
	if p[0].Valid.Count() != 1 {
		t.Fatalf("bitmap count = %d after post-merge delete", p[0].Valid.Count())
	}
}

// newAsyncDataset opens a dataset with background maintenance on a fresh
// pool: a small budget forces frequent freezes and the tiering policy keeps
// merges flowing, so builds and merges overlap the concurrent writers.
func newAsyncDataset(t *testing.T, pool *maint.Pool, mutate func(*Config)) *Dataset {
	t.Helper()
	return newTestDataset(t, func(c *Config) {
		c.Maintenance = pool
		c.MemoryBudget = 32 << 10
		c.Policy = lsm.NewTiering(0)
		if mutate != nil {
			mutate(c)
		}
	})
}

// TestAsyncConcurrentWritersAndReaders is the background-scheduler race
// battery: concurrent Insert/Delete/Upsert streams (disjoint key ranges per
// writer) race point reads and reconciled secondary scans while flush
// builds and policy merges run on the pool. After a drain, every writer's
// final state must be visible. The real assertions run under -race in CI.
func TestAsyncConcurrentWritersAndReaders(t *testing.T) {
	type variant struct {
		name   string
		mutate func(*Config)
	}
	variants := []variant{
		{"eager", func(c *Config) { c.Strategy = Eager }},
		{"validation", func(c *Config) { c.Strategy = Validation }},
		{"mutable-bitmap/side-file", func(c *Config) { c.Strategy = MutableBitmap; c.CC = SideFile }},
		{"mutable-bitmap/lock", func(c *Config) { c.Strategy = MutableBitmap; c.CC = Lock }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			pool := maint.NewPool(2)
			defer pool.Close()
			d := newAsyncDataset(t, pool, v.mutate)

			const (
				writers = 3
				perW    = 700
			)
			var wg sync.WaitGroup
			errc := make(chan error, writers+1)
			finals := make([]map[uint64]string, writers)
			for w := 0; w < writers; w++ {
				w := w
				finals[w] = make(map[uint64]string)
				wg.Add(1)
				go func() {
					defer wg.Done()
					base := uint64(w) * 1_000_000
					for i := 0; i < perW; i++ {
						pk := base + uint64(i%200)
						loc := fmt.Sprintf("L%02d", (w*7+i)%30)
						switch i % 5 {
						case 3:
							if _, err := d.Delete(pkOf(pk)); err != nil {
								errc <- err
								return
							}
							delete(finals[w], pk)
						case 4:
							if _, err := d.Insert(pkOf(pk), testRecord(loc, int64(2000+i))); err != nil {
								errc <- err
								return
							}
							if _, ok := finals[w][pk]; !ok {
								finals[w][pk] = loc
							}
						default:
							if err := d.Upsert(pkOf(pk), testRecord(loc, int64(2000+i))); err != nil {
								errc <- err
								return
							}
							finals[w][pk] = loc
						}
					}
				}()
			}
			// A reader hammers point lookups and reconciled secondary scans
			// while the writers and the background maintenance jobs run.
			stop := make(chan struct{})
			var rwg sync.WaitGroup
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for pk := uint64(0); pk < 50; pk++ {
						if _, _, err := d.Primary().Get(pkOf(pk)); err != nil {
							errc <- err
							return
						}
					}
					si := d.Secondary("location")
					mem, flushing, comps := si.Tree.ReadView()
					it, err := si.Tree.NewMergedIterator(lsm.IterOptions{
						Components: comps, Flushing: flushing, Mem: mem,
						HideAnti: true, SkipInvisible: true,
					})
					if err != nil {
						errc <- err
						return
					}
					for {
						_, ok, err := it.Next()
						if err != nil {
							errc <- err
							return
						}
						if !ok {
							break
						}
					}
				}
			}()
			wg.Wait()
			close(stop)
			rwg.Wait()
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}
			if err := d.FlushAll(); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < writers; w++ {
				base := uint64(w) * 1_000_000
				for off := uint64(0); off < 200; off++ {
					pk := base + off
					e, found, err := d.Primary().Get(pkOf(pk))
					if err != nil {
						t.Fatal(err)
					}
					want, ok := finals[w][pk]
					if found != ok {
						t.Fatalf("%s: writer %d key %d: found=%v want %v", v.name, w, pk, found, ok)
					}
					if found {
						if loc, _ := recLocation(e.Value); string(loc) != want {
							t.Fatalf("%s: writer %d key %d: location %s want %s", v.name, w, pk, loc, want)
						}
					}
				}
			}
		})
	}
}
