// Package core implements the paper's storage architecture (Section 3,
// Figure 1): a dataset with a primary LSM index, a primary key LSM index,
// and a set of secondary LSM indexes that share one memory budget and are
// flushed together. On top of it, the package implements every maintenance
// strategy the paper describes or evaluates:
//
//   - Eager (Section 3.1): each write is prefaced by a point lookup; filters
//     and secondary indexes are maintained with anti-matter immediately.
//   - Validation (Section 4): blind writes with timestamps; secondary
//     indexes cleaned lazily by index repair (see internal/repair).
//   - Mutable-bitmap (Section 5): deletes flip validity bits on immutable
//     disk components via the primary key index, with the Lock or Side-file
//     concurrency-control method for concurrent flush/merge.
//   - Deleted-key B+-tree (Section 4.1): AsterixDB's baseline that attaches
//     a deleted-key B+-tree to every secondary index component.
//
// The Eager/Validation/Mutable-bitmap upsert examples of Figures 3, 4 and 9
// are reproduced verbatim by this package's tests.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/maint"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Strategy selects the maintenance strategy for auxiliary structures.
type Strategy int

// Maintenance strategies.
const (
	// Eager maintains secondary indexes and filters with a point lookup
	// before every write (AsterixDB/MyRocks/Phoenix default).
	Eager Strategy = iota
	// Validation inserts blindly and cleans secondary indexes lazily.
	Validation
	// MutableBitmap marks deletes directly on disk components' bitmaps via
	// the primary key index; secondary indexes use Validation.
	MutableBitmap
	// DeletedKey is AsterixDB's deleted-key B+-tree strategy.
	DeletedKey
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Eager:
		return "eager"
	case Validation:
		return "validation"
	case MutableBitmap:
		return "mutable-bitmap"
	case DeletedKey:
		return "deleted-key"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// CCMethod selects the concurrency-control method used by the
// Mutable-bitmap strategy for concurrent flush/merge (Section 5.3).
type CCMethod int

// Concurrency-control methods.
const (
	// SideFile buffers concurrent deletes in a side-file and applies them
	// after the new component is built (Fig 11).
	SideFile CCMethod = iota
	// Lock S-locks each scanned key during the build (Fig 10).
	Lock
	// NoCC disables concurrency control (baseline in Fig 23; only safe
	// when no writers run concurrently with merges).
	NoCC
)

// String implements fmt.Stringer.
func (m CCMethod) String() string {
	switch m {
	case SideFile:
		return "side-file"
	case Lock:
		return "lock"
	case NoCC:
		return "baseline"
	}
	return fmt.Sprintf("cc(%d)", int(m))
}

// SecondarySpec declares one secondary index.
type SecondarySpec struct {
	// Name labels the index.
	Name string
	// Extract returns the secondary key of a record, or false when the
	// record has none (it is then skipped by this index).
	Extract func(record []byte) ([]byte, bool)
}

// Config configures a dataset.
type Config struct {
	// Store is the shared disk + buffer cache.
	Store *storage.Store
	// Strategy selects the maintenance strategy.
	Strategy Strategy
	// CC selects the Mutable-bitmap concurrency-control method.
	CC CCMethod
	// Secondaries declares the dataset's secondary indexes.
	Secondaries []SecondarySpec
	// FilterExtract returns the range-filter key of a record (the tweet
	// generator uses creation time). Nil disables the primary range filter.
	FilterExtract func(record []byte) (int64, bool)
	// MemoryBudget is the shared memory-component budget in bytes
	// (128 MB per dataset in the paper); all indexes flush together when
	// their combined footprint exceeds it.
	MemoryBudget int
	// UsePKIndex builds the primary key index. Insert uniqueness checks
	// and Validation/Mutable-bitmap maintenance use it; without it (a
	// Figure 13 ablation) checks fall back to the primary index.
	UsePKIndex bool
	// Policy schedules merges (the paper: tiering, ratio 1.2, 1 GB cap).
	// Nil disables merging.
	Policy lsm.Policy
	// CorrelatedMerges synchronizes merges of all the dataset's indexes
	// (Section 4.4); required by RepairBloomOpt and by MutableBitmap.
	CorrelatedMerges bool
	// MergeRepair repairs secondary indexes during their merges
	// (Validation strategy, Section 4.4).
	MergeRepair bool
	// RepairBloomOpt enables the Bloom-filter repair optimization
	// (Section 4.4); requires CorrelatedMerges.
	RepairBloomOpt bool
	// BloomFPR is the Bloom filter false-positive rate (1% in the paper).
	BloomFPR float64
	// BlockedBloom selects blocked Bloom filters (Section 3.2).
	BlockedBloom bool
	// BloomV2 selects the runtime split-block filter (bloom.V2) for the
	// primary and pk-index trees and persists it in the manifest so reopen
	// skips the rebuild-by-scan. Takes precedence over BlockedBloom; the
	// simulated cost-model experiments keep using the paper's variants.
	BloomV2 bool
	// DisableWAL turns off write-ahead logging (benchmarks that measure
	// pure ingestion I/O).
	DisableWAL bool
	// GroupCommit, when non-nil on a durable device, coalesces commit
	// fsyncs across concurrent writers: commit records append unsynced and
	// committers park on a shared commit group whose leader issues one
	// covering fsync (see wal.GroupCommitter / filedev.GroupSyncer). Nil
	// keeps the per-commit fsync. Ignored on non-durable devices.
	GroupCommit wal.GroupCommitter
	// Seed makes memtable shapes deterministic.
	Seed int64
	// Maintenance, when non-nil, moves flushes and policy-picked merges off
	// the write path: writes freeze the memory components and return
	// immediately while disk-component builds and merges run on the pool's
	// workers. Nil (the default) keeps today's synchronous behavior: the
	// write that crosses the memory budget performs the flush and all due
	// merges inline.
	Maintenance *maint.Pool
	// MaxFrozenMemtables bounds the frozen flush batches awaiting
	// background builds before writers soft-stall (backpressure;
	// asynchronous mode only). 0 means the default of 4.
	MaxFrozenMemtables int
	// MaxUnmergedComponents soft-stalls writers while the primary index
	// holds at least this many disk components and a merge is pending or
	// running (asynchronous mode only). 0 disables this threshold.
	MaxUnmergedComponents int
	// Yield, when non-nil, is the deterministic-simulation scheduling hook:
	// it is invoked at the instrumented points in the WAL group-commit path
	// (see wal.Log.SetYield) with a label naming the point. Nil (the
	// default) leaves scheduling to the runtime.
	Yield func(point string)
	// Journal, when bound, records flush and merge start/end events
	// (duration, bytes written, input/output component counts) into the
	// store-wide maintenance journal served at /debug/maintenance. The zero
	// value disables recording; events never feed back into engine behavior.
	Journal obs.ShardJournal
}

// SecondaryIndex is one secondary index of a dataset.
type SecondaryIndex struct {
	Spec SecondarySpec
	Tree *lsm.Tree

	// mu guards memDeleted and pendingDeleted, the deleted-key
	// accumulators of the DeletedKey strategy.
	mu         sync.Mutex
	memDeleted map[string]int64 // pk -> delete timestamp (current memtable)
	// pendingDeleted holds accumulators frozen by in-flight asynchronous
	// flushes (oldest to newest): their deletes stay visible to query
	// validation until the deleted-key B+-tree of the flushed component is
	// installed.
	pendingDeleted []*frozenDeleted
}

// frozenDeleted is one deleted-key accumulator frozen by an asynchronous
// flush, addressable by pointer so its batch can release it after install.
type frozenDeleted struct {
	m map[string]int64
}

// Dataset is one partition of a dataset: the unit all of the paper's
// experiments run against (Section 6.1 uses a single partition; scaling
// across partitions is near-linear because both ingestion and queries are
// partition-local).
type Dataset struct {
	cfg Config
	env *metrics.Env

	primary     *lsm.Tree
	pkIndex     *lsm.Tree
	secondaries []*SecondaryIndex

	clock  atomic.Int64 // ingestion timestamp generator (node-local clock)
	epoch  atomic.Uint64
	locks  *txn.LockManager
	dsLock *txn.DatasetLock
	ids    txn.IDs
	log    *wal.Log

	// flushMu serializes synchronous flushes and merges with each other.
	flushMu sync.Mutex
	// persistMu serializes manifest saves, so a later component-list
	// snapshot is never overwritten by an earlier one (durable devices
	// only).
	persistMu sync.Mutex
	// crashMu makes multi-tree installs (flush batches, the paired
	// primary/pk merge) atomic with respect to Crash, so a simulated
	// failure can never observe a half-installed batch.
	crashMu sync.Mutex
	// maint holds the background maintenance state (nil in synchronous
	// mode).
	maint *maintState
	// bgEnv/bgStore are the background maintenance I/O lane: a clock of
	// its own over the same disk, cache, cost model and counters. Flush
	// builds and merges charge this lane, modelling maintenance that
	// overlaps the ingest path; the lanes couple at backpressure stalls
	// and drains. Nil in synchronous mode.
	bgEnv   *metrics.Env
	bgStore *storage.Store

	// stats
	ingested atomic.Int64
	ignored  atomic.Int64
}

// ErrNoPKIndex reports an operation that requires the primary key index.
var ErrNoPKIndex = errors.New("core: operation requires the primary key index")

// Open creates an empty dataset.
func Open(cfg Config) (*Dataset, error) {
	if cfg.Store == nil {
		return nil, errors.New("core: Config.Store is required")
	}
	if cfg.MemoryBudget <= 0 {
		cfg.MemoryBudget = 4 << 20
	}
	if cfg.Strategy == MutableBitmap && !cfg.UsePKIndex {
		return nil, errors.New("core: the Mutable-bitmap strategy requires the primary key index")
	}
	if cfg.Strategy == MutableBitmap {
		// The merges of the primary index and the primary key index must
		// be synchronized so their components can share bitmaps
		// (Section 5.1).
		cfg.CorrelatedMerges = true
	}
	if cfg.RepairBloomOpt && !cfg.CorrelatedMerges {
		return nil, errors.New("core: the Bloom-filter repair optimization requires correlated merges")
	}
	// Secondary names key the durable manifest (and Secondary lookups), so
	// the reserved primary/pk tree names and duplicates must be rejected —
	// a collision would restore one index's component files into another.
	seenNames := make(map[string]bool, len(cfg.Secondaries))
	for _, s := range cfg.Secondaries {
		if s.Name == "" || s.Name == manifestPrimary || s.Name == manifestPKIndex {
			return nil, fmt.Errorf("core: secondary index name %q is empty or reserved", s.Name)
		}
		if seenNames[s.Name] {
			return nil, fmt.Errorf("core: duplicate secondary index name %q", s.Name)
		}
		seenNames[s.Name] = true
	}
	env := cfg.Store.Env()
	d := &Dataset{
		cfg:    cfg,
		env:    env,
		locks:  txn.NewLockManager(),
		dsLock: &txn.DatasetLock{},
	}
	if !cfg.DisableWAL {
		d.log = wal.New(env)
		d.log.SetYield(cfg.Yield)
	}
	mutable := cfg.Strategy == MutableBitmap
	d.primary = lsm.New(lsm.Options{
		Name:         "primary",
		Store:        cfg.Store,
		BloomFPR:     cfg.BloomFPR,
		BlockedBloom: cfg.BlockedBloom,
		BloomV2:      cfg.BloomV2,
		FilterExtract: func(e kv.Entry) (int64, bool) {
			if cfg.FilterExtract == nil || e.Anti {
				return 0, false
			}
			return cfg.FilterExtract(e.Value)
		},
		MutableBitmaps: mutable,
		Seed:           cfg.Seed + 1,
	})
	if cfg.UsePKIndex {
		d.pkIndex = lsm.New(lsm.Options{
			Name:           "pk-index",
			Store:          cfg.Store,
			BloomFPR:       cfg.BloomFPR,
			BlockedBloom:   cfg.BlockedBloom,
			BloomV2:        cfg.BloomV2,
			MutableBitmaps: mutable,
			Seed:           cfg.Seed + 2,
		})
	}
	for i, spec := range cfg.Secondaries {
		si := &SecondaryIndex{
			Spec: spec,
			Tree: lsm.New(lsm.Options{
				Name:  spec.Name,
				Store: cfg.Store,
				// Secondary index searches are range scans; Bloom filters
				// are not consulted, so none are built.
				Seed: cfg.Seed + 10 + int64(i),
			}),
		}
		if cfg.Strategy == DeletedKey {
			si.memDeleted = make(map[string]int64)
		}
		d.secondaries = append(d.secondaries, si)
	}
	// On a durable device, restore a previous session's components, drop
	// files a crash left unreferenced, and replay the on-disk WAL (the
	// dataset serves no traffic yet, so replay needs no coordination). On
	// the simulated device this is a no-op.
	if err := d.setupDurability(); err != nil {
		return nil, err
	}
	if cfg.Maintenance != nil {
		d.maint = newMaintState(cfg.Maintenance)
		d.bgEnv = env.BackgroundLane()
		d.bgStore = cfg.Store.WithEnv(d.bgEnv)
	}
	return d, nil
}

// NextTS draws the next ingestion timestamp from the node-local clock.
func (d *Dataset) NextTS() int64 { return d.clock.Add(1) }

// CurrentTS returns the most recently issued timestamp.
func (d *Dataset) CurrentTS() int64 { return d.clock.Load() }

// Primary returns the primary index.
func (d *Dataset) Primary() *lsm.Tree { return d.primary }

// PKIndex returns the primary key index (nil when disabled).
func (d *Dataset) PKIndex() *lsm.Tree { return d.pkIndex }

// Secondaries returns the dataset's secondary indexes.
func (d *Dataset) Secondaries() []*SecondaryIndex { return d.secondaries }

// Secondary returns the secondary index with the given name.
func (d *Dataset) Secondary(name string) *SecondaryIndex {
	for _, si := range d.secondaries {
		if si.Spec.Name == name {
			return si
		}
	}
	return nil
}

// Env returns the dataset's metrics environment.
func (d *Dataset) Env() *metrics.Env { return d.env }

// MaintGauges reports the asynchronous-maintenance backlog: flush batches
// frozen but not yet picked up by a builder, and frozen batches total
// (pending plus building) awaiting install. Both are zero on a synchronous
// dataset, where the flushing write performs the build inline.
func (d *Dataset) MaintGauges() (pendingFlushBatches, frozenMemtables int) {
	m := d.maint
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending), m.frozen
}

// MaintSimTime returns the background maintenance lane's virtual time
// (zero on a synchronous dataset). The dataset's elapsed simulated time
// under overlapped maintenance is max(Env().Clock.Now(), MaintSimTime()).
func (d *Dataset) MaintSimTime() time.Duration {
	if d.bgEnv == nil {
		return 0
	}
	return d.bgEnv.Clock.Now()
}

// maintIOStore returns the store view maintenance I/O should charge: the
// background lane when configured, else the foreground store.
func (d *Dataset) maintIOStore() *storage.Store {
	if d.bgStore != nil {
		return d.bgStore
	}
	return d.cfg.Store
}

// mergeIOStore returns the store view merges should pass to lsm.MergeSpec:
// nil in synchronous mode (the tree's own store), the background lane
// otherwise.
func (d *Dataset) mergeIOStore() *storage.Store { return d.bgStore }

// maintEnv returns the metrics environment maintenance CPU work should
// charge: the background lane when configured, else the foreground env.
func (d *Dataset) maintEnv() *metrics.Env {
	if d.bgEnv != nil {
		return d.bgEnv
	}
	return d.env
}

// Config returns the dataset's configuration.
func (d *Dataset) Config() Config { return d.cfg }

// Log returns the write-ahead log (nil when disabled).
func (d *Dataset) Log() *wal.Log { return d.log }

// Locks returns the record-level lock manager.
func (d *Dataset) Locks() *txn.LockManager { return d.locks }

// IngestedCount returns the number of records accepted so far.
func (d *Dataset) IngestedCount() int64 { return d.ingested.Load() }

// IgnoredCount returns the number of writes ignored (duplicate inserts,
// deletes of missing keys).
func (d *Dataset) IgnoredCount() int64 { return d.ignored.Load() }

// memBytes sums the memory components of every index, the figure compared
// against the shared budget.
func (d *Dataset) memBytes() int {
	total := d.primary.MemBytes()
	if d.pkIndex != nil {
		total += d.pkIndex.MemBytes()
	}
	for _, si := range d.secondaries {
		total += si.Tree.MemBytes()
		si.mu.Lock()
		total += len(si.memDeleted) * 16
		si.mu.Unlock()
	}
	return total
}

// allTrees lists every LSM index of the dataset.
func (d *Dataset) allTrees() []*lsm.Tree {
	trees := []*lsm.Tree{d.primary}
	if d.pkIndex != nil {
		trees = append(trees, d.pkIndex)
	}
	for _, si := range d.secondaries {
		trees = append(trees, si.Tree)
	}
	return trees
}

// takeMemDeleted swaps out a secondary's deleted-key accumulator, returning
// its contents sorted by primary key (for bulk-loading a deleted-key tree).
func (si *SecondaryIndex) takeMemDeleted() []kv.Entry {
	si.mu.Lock()
	m := si.memDeleted
	if len(m) == 0 {
		si.mu.Unlock()
		return nil
	}
	si.memDeleted = make(map[string]int64)
	si.mu.Unlock()
	return sortedDeleted(m)
}

// freezeMemDeleted swaps out the accumulator and parks it on pendingDeleted,
// keeping its deletes visible to query validation until the owning flush
// batch installs its deleted-key B+-tree (asynchronous flushes). It returns
// nil when the accumulator is empty.
func (si *SecondaryIndex) freezeMemDeleted() *frozenDeleted {
	si.mu.Lock()
	defer si.mu.Unlock()
	if len(si.memDeleted) == 0 {
		return nil
	}
	fd := &frozenDeleted{m: si.memDeleted}
	si.memDeleted = make(map[string]int64)
	si.pendingDeleted = append(si.pendingDeleted, fd)
	return fd
}

// releasePendingDeleted drops a parked accumulator once its deleted-key
// B+-tree is installed (or its batch abandoned by a crash).
func (si *SecondaryIndex) releasePendingDeleted(fd *frozenDeleted) {
	if fd == nil {
		return
	}
	si.mu.Lock()
	for i, p := range si.pendingDeleted {
		if p == fd {
			si.pendingDeleted = append(si.pendingDeleted[:i:i], si.pendingDeleted[i+1:]...)
			break
		}
	}
	si.mu.Unlock()
}

// sortedDeleted converts an accumulator map to entries sorted by primary key
// (the bulk-load order of a deleted-key B+-tree).
func sortedDeleted(m map[string]int64) []kv.Entry {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]kv.Entry, len(keys))
	for i, k := range keys {
		out[i] = kv.Entry{Key: []byte(k), TS: m[k]}
	}
	return out
}

// addMemDeleted records pk in the deleted-key accumulator.
func (si *SecondaryIndex) addMemDeleted(pk []byte, ts int64) {
	si.mu.Lock()
	si.memDeleted[string(pk)] = ts
	si.mu.Unlock()
}

// MemDeletedAfter reports whether the memory component's deleted-key set —
// or an accumulator frozen by an in-flight asynchronous flush — holds pk
// with a deletion timestamp newer than ts (deleted-key strategy query
// validation, Section 4.1).
func (si *SecondaryIndex) MemDeletedAfter(pk []byte, ts int64) bool {
	si.mu.Lock()
	defer si.mu.Unlock()
	if si.memDeleted == nil {
		return false
	}
	if del, ok := si.memDeleted[string(pk)]; ok && del > ts {
		return true
	}
	for _, fd := range si.pendingDeleted {
		if del, ok := fd.m[string(pk)]; ok && del > ts {
			return true
		}
	}
	return false
}
