package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// testRecord is the UserLocation record of the paper's running example
// (Figure 2): (UserID, Location, Time).
func testRecord(location string, year int64) []byte {
	rec := make([]byte, 0, 16+len(location))
	rec = kv.AppendUint64(rec, uint64(year))
	rec = append(rec, location...)
	return rec
}

func recLocation(rec []byte) ([]byte, bool) {
	if len(rec) < 8 {
		return nil, false
	}
	return rec[8:], true
}

func recYear(rec []byte) (int64, bool) {
	if len(rec) < 8 {
		return 0, false
	}
	return int64(kv.DecodeUint64(rec[:8])), true
}

func newTestDataset(t testing.TB, mutate func(*Config)) *Dataset {
	t.Helper()
	env := metrics.NopEnv()
	disk := storage.NewDisk(storage.ScaledHDD(4096), env)
	store := storage.NewStore(disk, 1<<30, env)
	cfg := Config{
		Store:         store,
		Strategy:      Eager,
		Secondaries:   []SecondarySpec{{Name: "location", Extract: recLocation}},
		FilterExtract: recYear,
		MemoryBudget:  1 << 20,
		UsePKIndex:    true,
		BloomFPR:      0.01,
		Seed:          7,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func pkOf(id uint64) []byte { return kv.EncodeUint64(id) }

// seedRunningExample loads Figure 2's initial state: records 101 and 102 in
// one flushed component, record 103 in the memory component.
func seedRunningExample(t *testing.T, d *Dataset) {
	t.Helper()
	mustUpsert(t, d, 101, "CA", 2015)
	mustUpsert(t, d, 102, "CA", 2016)
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mustUpsert(t, d, 103, "MA", 2017)
}

func mustUpsert(t *testing.T, d *Dataset, id uint64, loc string, year int64) {
	t.Helper()
	if err := d.Upsert(pkOf(id), testRecord(loc, year)); err != nil {
		t.Fatal(err)
	}
}

// mustGet reads a key from the primary, failing the test on a device
// error: a dropped read error would let an I/O failure masquerade as a
// clean "not found".
func mustGet(t *testing.T, d *Dataset, id uint64) (kv.Entry, bool) {
	t.Helper()
	e, found, err := d.Primary().Get(pkOf(id))
	if err != nil {
		t.Fatalf("Get(%d): %v", id, err)
	}
	return e, found
}

func scanSecondaryRaw(t *testing.T, si *SecondaryIndex) []string {
	t.Helper()
	it, err := si.Tree.NewMergedIterator(lsm.IterOptions{
		Components:    si.Tree.Components(),
		Mem:           si.Tree.Mem(),
		HideAnti:      true,
		SkipInvisible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for {
		item, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		sk, pk, err := kv.SplitKey(item.Entry.Key)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprintf("(%s,%d)", sk, kv.DecodeUint64(pk)))
	}
}

// TestEagerUpsertExample reproduces Figure 3: upserting (101, NY, 2018)
// under the Eager strategy adds an anti-matter entry (-CA, 101) to the
// secondary index and widens the memory component's range filter to cover
// both 2015 (the old record) and 2018 (the new one).
func TestEagerUpsertExample(t *testing.T) {
	d := newTestDataset(t, nil)
	seedRunningExample(t, d)
	mustUpsert(t, d, 101, "NY", 2018)

	// Q1: Location = CA must return only record 102.
	got := scanSecondaryRaw(t, d.Secondary("location"))
	want := []string{"(CA,102)", "(MA,103)", "(NY,101)"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("secondary contents = %v, want %v", got, want)
	}

	// The memory filter must span [2015, 2018] (old + new).
	min, max, ok := d.Primary().Mem().Filter()
	if !ok || min != 2015 || max != 2018 {
		t.Errorf("memory filter = [%d,%d] ok=%v, want [2015,2018]", min, max, ok)
	}

	// Q2: Time < 2017 must return only (102, CA, 2016): the memory
	// component cannot be pruned because its filter covers 2015.
	e, found, err := d.Primary().Get(pkOf(101))
	if err != nil || !found {
		t.Fatal(err, found)
	}
	if y, _ := recYear(e.Value); y != 2018 {
		t.Errorf("record 101 year = %d, want 2018", y)
	}
}

// TestValidationUpsertExample reproduces Figure 4: upserting (101, NY, 2018)
// under the Validation strategy performs no point lookup; the obsolete
// (CA, 101) entry remains in the secondary index, and the memory filter is
// maintained with the new record only.
func TestValidationUpsertExample(t *testing.T) {
	d := newTestDataset(t, func(c *Config) { c.Strategy = Validation })
	seedRunningExample(t, d)
	if err := d.FlushAll(); err != nil { // push 103 out so mem-cleanup cannot fire
		t.Fatal(err)
	}
	mustUpsert(t, d, 101, "NY", 2018)

	got := scanSecondaryRaw(t, d.Secondary("location"))
	// The obsolete entry (CA,101) is still visible in the raw index.
	want := []string{"(CA,101)", "(CA,102)", "(MA,103)", "(NY,101)"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("secondary contents = %v, want %v", got, want)
	}

	min, max, ok := d.Primary().Mem().Filter()
	if !ok || min != 2018 || max != 2018 {
		t.Errorf("memory filter = [%d,%d] ok=%v, want [2018,2018]", min, max, ok)
	}
}

// TestMutableBitmapUpsertExample reproduces Figure 9: upserting (101, NY,
// 2018) sets the old record's bit in the disk component's bitmap; the
// memory filter covers only 2018.
func TestMutableBitmapUpsertExample(t *testing.T) {
	d := newTestDataset(t, func(c *Config) {
		c.Strategy = MutableBitmap
		c.CorrelatedMerges = true
	})
	seedRunningExample(t, d)
	mustUpsert(t, d, 101, "NY", 2018)

	comps := d.Primary().Components()
	if len(comps) != 1 {
		t.Fatalf("disk components = %d", len(comps))
	}
	c := comps[0]
	if c.Valid == nil {
		t.Fatal("no mutable bitmap")
	}
	if got := c.Valid.Count(); got != 1 {
		t.Fatalf("bitmap marks %d entries, want 1 (old record 101)", got)
	}
	_, ord, found, err := c.BTree.Get(pkOf(101))
	if err != nil || !found {
		t.Fatal("old record missing from component")
	}
	if !c.Valid.IsSet(ord) {
		t.Error("old record 101 not marked deleted")
	}
	// The pk-index component shares the same bitmap.
	pkComps := d.PKIndex().Components()
	if len(pkComps) != 1 || pkComps[0].Valid != c.Valid {
		t.Error("primary and pk-index components must share one bitmap")
	}
	// Figure 9: the memory filter covers [2017, 2018] — 2017 from record
	// 103 (still in memory) and 2018 from the new record; crucially NOT
	// 2015, since the old record is deleted via the bitmap instead.
	min, max, ok := d.Primary().Mem().Filter()
	if !ok || min != 2017 || max != 2018 {
		t.Errorf("memory filter = [%d,%d] ok=%v, want [2017,2018]", min, max, ok)
	}
	// Get still resolves to the new version.
	e, found := mustGet(t, d, 101)
	if !found {
		t.Fatal("record 101 lost")
	}
	if loc, _ := recLocation(e.Value); string(loc) != "NY" {
		t.Errorf("record 101 location = %s", loc)
	}
}

func TestInsertUniqueness(t *testing.T) {
	for _, strat := range []Strategy{Eager, Validation, MutableBitmap, DeletedKey} {
		t.Run(strat.String(), func(t *testing.T) {
			d := newTestDataset(t, func(c *Config) {
				c.Strategy = strat
				if strat == MutableBitmap {
					c.CorrelatedMerges = true
				}
			})
			ok, err := d.Insert(pkOf(1), testRecord("CA", 2015))
			if err != nil || !ok {
				t.Fatal(err, ok)
			}
			ok, err = d.Insert(pkOf(1), testRecord("NY", 2016))
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Error("duplicate insert must be ignored")
			}
			if d.IgnoredCount() != 1 {
				t.Errorf("ignored = %d", d.IgnoredCount())
			}
			// duplicate across a flush boundary too
			if err := d.FlushAll(); err != nil {
				t.Fatal(err)
			}
			ok, err = d.Insert(pkOf(1), testRecord("UT", 2017))
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Error("duplicate insert after flush must be ignored")
			}
		})
	}
}

func TestDeleteSemantics(t *testing.T) {
	for _, strat := range []Strategy{Eager, Validation, MutableBitmap, DeletedKey} {
		t.Run(strat.String(), func(t *testing.T) {
			d := newTestDataset(t, func(c *Config) {
				c.Strategy = strat
				if strat == MutableBitmap {
					c.CorrelatedMerges = true
				}
			})
			mustUpsert(t, d, 10, "CA", 2015)
			if err := d.FlushAll(); err != nil {
				t.Fatal(err)
			}
			ok, err := d.Delete(pkOf(10))
			if err != nil || !ok {
				t.Fatal(err, ok)
			}
			if _, found := mustGet(t, d, 10); found {
				t.Error("deleted record still visible")
			}
			// Deleting a missing key reports false under strategies that
			// perform existence checks (Eager, MutableBitmap).
			if strat == Eager || strat == MutableBitmap {
				ok, err := d.Delete(pkOf(999))
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Error("delete of missing key must be ignored")
				}
			}
			// Re-insert works after delete.
			ok, err = d.Insert(pkOf(10), testRecord("UT", 2019))
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Error("re-insert after delete failed")
			}
		})
	}
}

func TestFlushSharedBudget(t *testing.T) {
	d := newTestDataset(t, func(c *Config) { c.MemoryBudget = 64 << 10 })
	for i := 0; i < 2000; i++ {
		mustUpsert(t, d, uint64(i), "CA", int64(2000+i%20))
	}
	if d.Primary().NumDiskComponents() == 0 {
		t.Fatal("budget never triggered a flush")
	}
	// All indexes flush together: same number of components.
	np := d.Primary().NumDiskComponents()
	nk := d.PKIndex().NumDiskComponents()
	ns := d.Secondary("location").Tree.NumDiskComponents()
	if np != nk || np != ns {
		t.Errorf("component counts diverge: primary=%d pk=%d sec=%d", np, nk, ns)
	}
}

func TestMergePolicyRuns(t *testing.T) {
	d := newTestDataset(t, func(c *Config) {
		c.MemoryBudget = 32 << 10
		c.Policy = lsm.NewTiering(0)
	})
	for i := 0; i < 4000; i++ {
		mustUpsert(t, d, uint64(i%1000), "CA", int64(2000+i%20))
	}
	// Tiering with ratio 1.2 and no cap keeps the component count low.
	if n := d.Primary().NumDiskComponents(); n > 4 {
		t.Errorf("merge policy left %d components", n)
	}
	// Everything still readable.
	for i := 0; i < 1000; i++ {
		if _, found := mustGet(t, d, uint64(i)); !found {
			t.Fatalf("key %d lost after merges", i)
		}
	}
}

func TestCorrelatedMergesAlignComponents(t *testing.T) {
	d := newTestDataset(t, func(c *Config) {
		c.MemoryBudget = 32 << 10
		c.Policy = lsm.NewTiering(0)
		c.CorrelatedMerges = true
	})
	// Vary the secondary key so every flush has secondary entries (Eager
	// skips secondary maintenance when the key is unchanged).
	for i := 0; i < 4000; i++ {
		mustUpsert(t, d, uint64(i%1000), fmt.Sprintf("L%02d", i%17), int64(2000+i%20))
	}
	p := d.Primary().Components()
	k := d.PKIndex().Components()
	s := d.Secondary("location").Tree.Components()
	if len(p) != len(k) || len(p) != len(s) {
		t.Fatalf("correlated merges must align: %d/%d/%d", len(p), len(k), len(s))
	}
	for i := range p {
		if p[i].EpochMin != k[i].EpochMin || p[i].EpochMax != k[i].EpochMax {
			t.Errorf("component %d epochs diverge: %v vs %v", i,
				[2]uint64{p[i].EpochMin, p[i].EpochMax}, [2]uint64{k[i].EpochMin, k[i].EpochMax})
		}
		if p[i].EpochMin != s[i].EpochMin || p[i].EpochMax != s[i].EpochMax {
			t.Errorf("secondary component %d epochs diverge", i)
		}
	}
}

func TestMutableBitmapSurvivesMerge(t *testing.T) {
	d := newTestDataset(t, func(c *Config) {
		c.Strategy = MutableBitmap
		c.MemoryBudget = 32 << 10
		c.Policy = lsm.NewTiering(0)
		c.CorrelatedMerges = true
	})
	for i := 0; i < 3000; i++ {
		mustUpsert(t, d, uint64(i%500), "CA", int64(2000+i%20))
	}
	// After all updates, exactly the newest version of each key is
	// reachable and bitmap-deleted old versions were physically removed
	// or remain marked.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 500; i++ {
		e, found, err := d.Primary().Get(pkOf(i))
		if err != nil || !found {
			t.Fatalf("key %d: found=%v err=%v", i, found, err)
		}
		if seen[i] {
			t.Fatalf("key %d seen twice", i)
		}
		seen[i] = true
		if len(e.Value) == 0 {
			t.Fatalf("key %d empty record", i)
		}
	}
	// pk-index and primary components must pairwise share bitmaps.
	p, k := d.Primary().Components(), d.PKIndex().Components()
	if len(p) != len(k) {
		t.Fatalf("component counts: %d vs %d", len(p), len(k))
	}
	for i := range p {
		if p[i].Valid != k[i].Valid {
			t.Errorf("component %d: bitmaps not shared", i)
		}
		if p[i].NumEntries() != k[i].NumEntries() {
			t.Errorf("component %d: entry counts diverge", i)
		}
	}
}

func TestDeletedKeyStrategyAttachesTrees(t *testing.T) {
	d := newTestDataset(t, func(c *Config) { c.Strategy = DeletedKey })
	// Inserts check uniqueness and record no deleted keys.
	for i := 0; i < 100; i++ {
		if ok, err := d.Insert(pkOf(uint64(i)), testRecord("CA", 2015)); err != nil || !ok {
			t.Fatal(err, ok)
		}
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Upserts of existing keys record deleted keys.
	for i := 0; i < 50; i++ {
		mustUpsert(t, d, uint64(i), "NY", 2016)
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	comps := d.Secondary("location").Tree.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d", len(comps))
	}
	if comps[1].DeletedKeys == nil {
		t.Fatal("newest component missing deleted-key B+-tree")
	}
	if comps[1].DeletedKeys.NumEntries() != 50 {
		t.Errorf("deleted keys = %d, want 50", comps[1].DeletedKeys.NumEntries())
	}
	if comps[0].DeletedKeys != nil {
		t.Error("first component should have no deleted keys (inserts only)")
	}
}

func TestWALRecordsAppendsAndCommits(t *testing.T) {
	d := newTestDataset(t, nil)
	mustUpsert(t, d, 1, "CA", 2015)
	if _, err := d.Delete(pkOf(1)); err != nil {
		t.Fatal(err)
	}
	if d.Log() == nil {
		t.Fatal("WAL disabled by default config?")
	}
	if n := d.Log().Len(); n != 4 { // 2 ops * (record + commit)
		t.Errorf("log records = %d, want 4", n)
	}
	d2 := newTestDataset(t, func(c *Config) { c.DisableWAL = true })
	mustUpsert(t, d2, 1, "CA", 2015)
	if d2.Log() != nil {
		t.Error("WAL should be disabled")
	}
}

func TestEagerSkipsUnchangedSecondaryKey(t *testing.T) {
	d := newTestDataset(t, nil)
	mustUpsert(t, d, 1, "CA", 2015)
	mustUpsert(t, d, 1, "CA", 2016) // same location: secondary untouched
	got := scanSecondaryRaw(t, d.Secondary("location"))
	if len(got) != 1 || got[0] != "(CA,1)" {
		t.Errorf("secondary contents = %v", got)
	}
	// primary still updated
	e, _ := mustGet(t, d, 1)
	if y, _ := recYear(e.Value); y != 2016 {
		t.Errorf("year = %d", y)
	}
}

var _ = bytes.Equal // keep bytes import if assertions above change
