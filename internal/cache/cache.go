// Package cache implements the LRU buffer cache that fronts the simulated
// disk, playing the role of the paper's 2 GB (HDD) / 4 GB (SSD) disk buffer
// cache. Capacity is expressed in pages; hits are charged at in-memory cost
// by the caller, misses fall through to the device.
package cache

import (
	"container/list"
	"sync"
)

// PageKey identifies a cached page: (file, page number).
type PageKey struct {
	File uint64
	Page int
}

type cacheEntry struct {
	key  PageKey
	data []byte
}

// LRU is a fixed-capacity least-recently-used page cache. It is safe for
// concurrent use.
type LRU struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[PageKey]*list.Element

	hits   int64
	misses int64
}

// NewLRU creates a cache holding at most capacity pages. A capacity of 0
// disables caching (every Get misses).
func NewLRU(capacity int) *LRU {
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[PageKey]*list.Element),
	}
}

// Get returns the cached page and true on a hit. The returned slice must not
// be modified.
func (c *LRU) Get(key PageKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).data, true
	}
	c.misses++
	return nil, false
}

// Put inserts a page, evicting the least recently used page if full.
func (c *LRU) Put(key PageKey, data []byte) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).data = data
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, data: data})
	c.items[key] = el
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Contains reports whether key is cached without promoting it in the LRU
// order and without counting a hit or miss. Read-ahead uses it to skip
// already-cached pages of a prefetch window: a prefetch overlap is not a
// use of the page and must not disturb recency or the statistics.
func (c *LRU) Contains(key PageKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// InvalidateFile drops every cached page of the given file (component drop).
func (c *LRU) InvalidateFile(file uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.items {
		if key.File == file {
			c.ll.Remove(el)
			delete(c.items, key)
		}
	}
}

// Len returns the number of cached pages.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Capacity returns the page capacity.
func (c *LRU) Capacity() int { return c.capacity }

// Stats returns cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset clears contents and statistics.
func (c *LRU) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[PageKey]*list.Element)
	c.hits, c.misses = 0, 0
}
