package cache

import (
	"fmt"
	"sync"
	"testing"
)

func key(f uint64, p int) PageKey { return PageKey{File: f, Page: p} }

func TestPutGet(t *testing.T) {
	c := NewLRU(2)
	c.Put(key(1, 0), []byte("a"))
	if v, ok := c.Get(key(1, 0)); !ok || string(v) != "a" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := c.Get(key(1, 1)); ok {
		t.Fatal("missing page found")
	}
}

func TestEvictionOrder(t *testing.T) {
	c := NewLRU(2)
	c.Put(key(1, 0), []byte("a"))
	c.Put(key(1, 1), []byte("b"))
	c.Get(key(1, 0)) // touch a: now b is LRU
	c.Put(key(1, 2), []byte("c"))
	if _, ok := c.Get(key(1, 1)); ok {
		t.Fatal("LRU page b should have been evicted")
	}
	if _, ok := c.Get(key(1, 0)); !ok {
		t.Fatal("recently used page a evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPutReplaces(t *testing.T) {
	c := NewLRU(2)
	c.Put(key(1, 0), []byte("a"))
	c.Put(key(1, 0), []byte("a2"))
	if v, _ := c.Get(key(1, 0)); string(v) != "a2" {
		t.Fatalf("replace failed: %q", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replace", c.Len())
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := NewLRU(0)
	c.Put(key(1, 0), []byte("a"))
	if _, ok := c.Get(key(1, 0)); ok {
		t.Fatal("zero-capacity cache stored a page")
	}
}

func TestInvalidateFile(t *testing.T) {
	c := NewLRU(10)
	for p := 0; p < 3; p++ {
		c.Put(key(1, p), []byte{1})
		c.Put(key(2, p), []byte{2})
	}
	c.InvalidateFile(1)
	for p := 0; p < 3; p++ {
		if _, ok := c.Get(key(1, p)); ok {
			t.Fatalf("file 1 page %d survived invalidation", p)
		}
		if _, ok := c.Get(key(2, p)); !ok {
			t.Fatalf("file 2 page %d wrongly invalidated", p)
		}
	}
}

func TestStatsAndReset(t *testing.T) {
	c := NewLRU(2)
	c.Put(key(1, 0), []byte("a"))
	c.Get(key(1, 0))
	c.Get(key(1, 9))
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
	c.Reset()
	hits, misses = c.Stats()
	if hits != 0 || misses != 0 || c.Len() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewLRU(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key(uint64(g%2), i%100)
				if i%3 == 0 {
					c.Put(k, []byte(fmt.Sprint(i)))
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := NewLRU(5)
	for i := 0; i < 100; i++ {
		c.Put(key(1, i), []byte{byte(i)})
		if c.Len() > 5 {
			t.Fatalf("capacity exceeded at %d: %d", i, c.Len())
		}
	}
	if c.Capacity() != 5 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
}
