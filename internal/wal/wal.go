// Package wal implements write-ahead logging and recovery in the style of
// AsterixDB (Section 2.2): index-level logical log records under a
// no-steal/no-force buffer policy. Rollback applies inverse operations in
// reverse order; crash recovery replays committed transactions past the
// maximum component LSN. Each delete/upsert record carries the update bit
// of Section 5.2, telling recovery whether the operation flipped a mutable
// bitmap bit in a disk component.
package wal

import (
	"errors"
	"sync"

	"repro/internal/metrics"
)

// RecordType enumerates logical log record kinds.
type RecordType byte

// Log record kinds.
const (
	RecInsert RecordType = iota + 1
	RecDelete
	RecUpsert
	RecCommit
	RecAbort
)

// Record is one logical log record.
type Record struct {
	LSN   int64
	TxnID int64
	Type  RecordType
	// Index names the LSM index the operation applies to.
	Index string
	Key   []byte
	Value []byte
	TS    int64
	// UpdateBit marks delete/upsert operations that also flipped a mutable
	// bitmap bit in a disk component (Section 5.2); recovery replays the
	// bitmap mutation only when it is set.
	UpdateBit bool
	// PrevValue is the pre-image needed to undo an upsert logically.
	PrevValue []byte
	HadPrev   bool
}

// Sink receives the binary encoding of every appended record, letting a
// durable device persist the log as it grows. Append with sync set marks a
// group-commit point: the sink must make everything appended so far durable
// before returning (fsync on a file-backed device).
type Sink interface {
	Append(encoded []byte, sync bool) error
}

// Log is an append-only logical log. The paper's configuration dedicates a
// separate device to logging, so appends are charged at a flat group-commit
// cost rather than against the LSM data disk. With a Sink attached, every
// record is additionally streamed to the sink in its binary encoding and
// commit/abort records are synced (real write-ahead durability).
type Log struct {
	env  *metrics.Env
	sink Sink

	mu      sync.Mutex
	records []Record
	nextLSN int64
	// checkpointLSN is the LSN below which bitmap state is known flushed.
	checkpointLSN int64
	// sinkErr is the first sink failure; once set the log is considered
	// wedged for durability purposes and the next logged write surfaces it.
	sinkErr error
}

// New creates an empty log.
func New(env *metrics.Env) *Log {
	return &Log{env: env, nextLSN: 1}
}

// NewWithSink creates an empty log streaming its records to sink.
func NewWithSink(env *metrics.Env, sink Sink) *Log {
	return &Log{env: env, sink: sink, nextLSN: 1}
}

// OpenPersisted rebuilds a log from the binary image a previous session
// left in a device's WAL area, stopping at the first corrupt or truncated
// record (the torn tail of a crash mid-append), and attaches sink for
// future appends — which continue the same byte stream, so LSNs keep
// ascending across sessions. It returns the log and the number of image
// bytes that decoded cleanly.
func OpenPersisted(env *metrics.Env, image []byte, sink Sink) (*Log, int) {
	l := &Log{env: env, sink: sink, nextLSN: 1}
	consumed := 0
	data := image
	for len(data) > 0 {
		r, rest, err := DecodeRecord(data)
		if err != nil {
			break
		}
		l.records = append(l.records, r)
		if r.LSN >= l.nextLSN {
			l.nextLSN = r.LSN + 1
		}
		consumed += len(data) - len(rest)
		data = rest
	}
	return l, consumed
}

// Append adds a record, assigning and returning its LSN. Callers that
// need this call's own durability result use AppendChecked.
func (l *Log) Append(r Record) int64 {
	lsn, _ := l.AppendChecked(r)
	return lsn
}

// AppendChecked adds a record and returns THIS call's sink error — not the
// log-wide sticky one, which may belong to a concurrent writer whose own
// append failed while ours durably committed. On a sink failure the
// in-memory record is removed again, so the log's memory image always
// matches the device's rolled-back state (an in-session Crash/Recover must
// not replay a write whose durable append was reported as failed).
func (l *Log) AppendChecked(r Record) (int64, error) {
	l.mu.Lock()
	r.LSN = l.nextLSN
	l.nextLSN++
	l.records = append(l.records, r)
	sink := l.sink
	l.mu.Unlock()
	var sinkErr error
	if sink != nil {
		sync := r.Type == RecCommit || r.Type == RecAbort
		if sinkErr = sink.Append(AppendRecord(nil, r), sync); sinkErr != nil {
			l.mu.Lock()
			if l.sinkErr == nil {
				l.sinkErr = sinkErr
			}
			for i := len(l.records) - 1; i >= 0; i-- {
				if l.records[i].LSN == r.LSN {
					l.records = append(l.records[:i], l.records[i+1:]...)
					break
				}
			}
			l.mu.Unlock()
		}
	}
	if l.env != nil {
		l.env.ChargeLogAppend()
	}
	return r.LSN, sinkErr
}

// SinkErr returns the first sink (durability) failure, if any.
func (l *Log) SinkErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}

// CompactImage serializes only the records recovery still needs once every
// component with maxTS <= coveredTS is durable: data records of COMMITTED
// transactions with TS > coveredTS, plus those transactions' commit
// records. Rewriting a device's WAL area with this image drops the covered
// prefix, any torn tail, and uncommitted leftovers — compaction only runs
// while the log is quiescent (reopen, clean shutdown), when no writer can
// ever deliver a missing commit, and keeping a dead data record would let
// a future session's commit under a recycled transaction ID resurrect it.
func (l *Log) CompactImage(coveredTS int64) []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	committed := committedMask(l.records)
	keep := make([]bool, len(l.records))
	keepCommit := make(map[int64]bool)
	for i, r := range l.records {
		if committed[i] && r.TS > coveredTS {
			keep[i] = true
			keepCommit[r.TxnID] = true
		}
	}
	var out []byte
	for i, r := range l.records {
		if keep[i] {
			out = AppendRecord(out, r)
			continue
		}
		if r.Type == RecCommit && keepCommit[r.TxnID] {
			out = AppendRecord(out, r)
			// One commit per kept transaction: a (buggy) duplicate ID
			// later in the log must not re-commit the kept records.
			keepCommit[r.TxnID] = false
		}
	}
	return out
}

// MaxTxnID returns the largest transaction ID in the log (0 when empty).
// Reopen seeds the transaction-ID allocator past it: replay matches
// commits to data records by ID, so IDs must never recycle across process
// generations.
func (l *Log) MaxTxnID() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var maxID int64
	for _, r := range l.records {
		if r.TxnID > maxID {
			maxID = r.TxnID
		}
	}
	return maxID
}

// Commit appends a commit record for txn.
func (l *Log) Commit(txnID int64) int64 {
	return l.Append(Record{TxnID: txnID, Type: RecCommit})
}

// CommitChecked appends a commit record for txn, returning this call's
// durability result (the commit fsync on a durable device).
func (l *Log) CommitChecked(txnID int64) (int64, error) {
	return l.AppendChecked(Record{TxnID: txnID, Type: RecCommit})
}

// Abort appends an abort record for txn.
func (l *Log) Abort(txnID int64) int64 {
	return l.Append(Record{TxnID: txnID, Type: RecAbort})
}

// Checkpoint advances the checkpoint LSN (dirty bitmap pages flushed).
func (l *Log) Checkpoint(lsn int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.checkpointLSN {
		l.checkpointLSN = lsn
	}
}

// CheckpointLSN returns the current checkpoint LSN.
func (l *Log) CheckpointLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpointLSN
}

// MaxLSN returns the LSN of the last appended record (0 when empty).
func (l *Log) MaxLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// TxnRecords returns the data records of txn in append order, for rollback.
func (l *Log) TxnRecords(txnID int64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.records {
		if r.TxnID == txnID && r.Type != RecCommit && r.Type != RecAbort {
			out = append(out, r)
		}
	}
	return out
}

// ErrNoRecords reports recovery over an empty log range.
var ErrNoRecords = errors.New("wal: no records")

// Replay invokes apply for every data record of a committed transaction
// with LSN greater than fromLSN, in log order. Records of uncommitted or
// aborted transactions are skipped (no-steal: nothing to undo). A data
// record counts as committed only when its transaction's commit record
// appears LATER in the log — a commit can never cover work that had not
// been logged yet, so positional matching keeps a dead leftover record
// from marrying an unrelated commit under a colliding transaction ID.
func (l *Log) Replay(fromLSN int64, apply func(Record) error) error {
	l.mu.Lock()
	records := append([]Record(nil), l.records...)
	l.mu.Unlock()

	for i, r := range committedMask(records) {
		if !r {
			continue
		}
		rec := records[i]
		if rec.LSN <= fromLSN {
			continue
		}
		if err := apply(rec); err != nil {
			return err
		}
	}
	return nil
}

// committedMask marks, per record, the data records whose transaction has
// a commit record later in the log (reverse scan).
func committedMask(records []Record) []bool {
	ok := make([]bool, len(records))
	commitAhead := make(map[int64]bool)
	for i := len(records) - 1; i >= 0; i-- {
		switch records[i].Type {
		case RecCommit:
			commitAhead[records[i].TxnID] = true
		case RecAbort:
			// An abort closes the transaction: data records before it are
			// rolled back even if the ID is (incorrectly) reused later.
			commitAhead[records[i].TxnID] = false
		default:
			ok[i] = commitAhead[records[i].TxnID]
		}
	}
	return ok
}
