// Package wal implements write-ahead logging and recovery in the style of
// AsterixDB (Section 2.2): index-level logical log records under a
// no-steal/no-force buffer policy. Rollback applies inverse operations in
// reverse order; crash recovery replays committed transactions past the
// maximum component LSN. Each delete/upsert record carries the update bit
// of Section 5.2, telling recovery whether the operation flipped a mutable
// bitmap bit in a disk component.
package wal

import (
	"errors"
	"sync"

	"repro/internal/metrics"
)

// RecordType enumerates logical log record kinds.
type RecordType byte

// Log record kinds.
const (
	RecInsert RecordType = iota + 1
	RecDelete
	RecUpsert
	RecCommit
	RecAbort
)

// Record is one logical log record.
type Record struct {
	LSN   int64
	TxnID int64
	Type  RecordType
	// Index names the LSM index the operation applies to.
	Index string
	Key   []byte
	Value []byte
	TS    int64
	// UpdateBit marks delete/upsert operations that also flipped a mutable
	// bitmap bit in a disk component (Section 5.2); recovery replays the
	// bitmap mutation only when it is set.
	UpdateBit bool
	// PrevValue is the pre-image needed to undo an upsert logically.
	PrevValue []byte
	HadPrev   bool
}

// Log is an append-only logical log. The paper's configuration dedicates a
// separate device to logging, so appends are charged at a flat group-commit
// cost rather than against the LSM data disk.
type Log struct {
	env *metrics.Env

	mu      sync.Mutex
	records []Record
	nextLSN int64
	// checkpointLSN is the LSN below which bitmap state is known flushed.
	checkpointLSN int64
}

// New creates an empty log.
func New(env *metrics.Env) *Log {
	return &Log{env: env, nextLSN: 1}
}

// Append adds a record, assigning and returning its LSN.
func (l *Log) Append(r Record) int64 {
	l.mu.Lock()
	r.LSN = l.nextLSN
	l.nextLSN++
	l.records = append(l.records, r)
	l.mu.Unlock()
	if l.env != nil {
		l.env.ChargeLogAppend()
	}
	return r.LSN
}

// Commit appends a commit record for txn.
func (l *Log) Commit(txnID int64) int64 {
	return l.Append(Record{TxnID: txnID, Type: RecCommit})
}

// Abort appends an abort record for txn.
func (l *Log) Abort(txnID int64) int64 {
	return l.Append(Record{TxnID: txnID, Type: RecAbort})
}

// Checkpoint advances the checkpoint LSN (dirty bitmap pages flushed).
func (l *Log) Checkpoint(lsn int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.checkpointLSN {
		l.checkpointLSN = lsn
	}
}

// CheckpointLSN returns the current checkpoint LSN.
func (l *Log) CheckpointLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpointLSN
}

// MaxLSN returns the LSN of the last appended record (0 when empty).
func (l *Log) MaxLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// TxnRecords returns the data records of txn in append order, for rollback.
func (l *Log) TxnRecords(txnID int64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.records {
		if r.TxnID == txnID && r.Type != RecCommit && r.Type != RecAbort {
			out = append(out, r)
		}
	}
	return out
}

// ErrNoRecords reports recovery over an empty log range.
var ErrNoRecords = errors.New("wal: no records")

// Replay invokes apply for every data record of a committed transaction
// with LSN greater than fromLSN, in log order. Records of uncommitted or
// aborted transactions are skipped (no-steal: nothing to undo).
func (l *Log) Replay(fromLSN int64, apply func(Record) error) error {
	l.mu.Lock()
	records := append([]Record(nil), l.records...)
	l.mu.Unlock()

	committed := make(map[int64]bool)
	for _, r := range records {
		if r.Type == RecCommit {
			committed[r.TxnID] = true
		}
	}
	for _, r := range records {
		if r.LSN <= fromLSN || r.Type == RecCommit || r.Type == RecAbort {
			continue
		}
		if !committed[r.TxnID] {
			continue
		}
		if err := apply(r); err != nil {
			return err
		}
	}
	return nil
}
