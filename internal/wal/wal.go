// Package wal implements write-ahead logging and recovery in the style of
// AsterixDB (Section 2.2): index-level logical log records under a
// no-steal/no-force buffer policy. Rollback applies inverse operations in
// reverse order; crash recovery replays committed transactions past the
// maximum component LSN. Each delete/upsert record carries the update bit
// of Section 5.2, telling recovery whether the operation flipped a mutable
// bitmap bit in a disk component.
//
// # Durability
//
// On a durable device the log streams every record to a Sink. Two commit
// disciplines exist:
//
//   - Per-record: CommitChecked appends the commit record with sync set,
//     and the sink fsyncs before returning. Simple, but every committer
//     pays a full fsync.
//   - Group commit: with a GroupCommitter attached, CommitDurable appends
//     the commit record unsynced and parks on the open commit group; one
//     member issues a single fsync covering everyone parked and wakes the
//     group. Batch/CommitBatched/WaitBatch extend this to engine batches —
//     one fsync per batch, not per mutation.
//
// Either way a write is acknowledged only after the fsync that covers its
// commit record returns, and a failed fsync fails exactly the writers that
// fsync was meant to cover (per-waiter error delivery) while wedging the
// log for everyone after.
package wal

import (
	"errors"
	"sync"

	"repro/internal/metrics"
)

// RecordType enumerates logical log record kinds.
type RecordType byte

// Log record kinds.
const (
	RecInsert RecordType = iota + 1
	RecDelete
	RecUpsert
	RecCommit
	RecAbort
)

// Record is one logical log record.
type Record struct {
	LSN   int64
	TxnID int64
	Type  RecordType
	// Index names the LSM index the operation applies to.
	Index string
	Key   []byte
	Value []byte
	TS    int64
	// UpdateBit marks delete/upsert operations that also flipped a mutable
	// bitmap bit in a disk component (Section 5.2); recovery replays the
	// bitmap mutation only when it is set.
	UpdateBit bool
	// PrevValue is the pre-image needed to undo an upsert logically.
	PrevValue []byte
	HadPrev   bool
}

// Sink receives the binary encoding of every appended record, letting a
// durable device persist the log as it grows. Append with sync set marks a
// commit point: the sink must make everything appended so far durable
// before returning (fsync on a file-backed device). The sink must not
// retain encoded past the call — the log reuses encode buffers.
type Sink interface {
	Append(encoded []byte, sync bool) error
}

// GroupCommitter coalesces commit durability across concurrent writers.
// A committer announces intent, appends its commit record to the sink
// without sync, and then Waits: the waiter joins the open commit group, one
// member becomes the leader and issues a single covering fsync, and every
// member of the group receives that fsync's result. Announce/Retract bound
// the window a leader may hold the group open for stragglers that have
// declared intent but not yet appended (see filedev.GroupSyncer).
type GroupCommitter interface {
	// Announce declares that a commit append is about to happen; every
	// Announce is balanced by exactly one Wait or Retract.
	Announce()
	// Retract withdraws an announced commit whose append failed.
	Retract()
	// Wait joins the open commit group and blocks until a covering fsync
	// completes, returning its result. The caller's commit records must be
	// fully appended to the sink before Wait is called; commits says how
	// many of them this waiter carries (1 for a single write, the batch
	// size for a deferred batch — group-size accounting only).
	Wait(commits int64) error
}

// Log is an append-only logical log. The paper's configuration dedicates a
// separate device to logging, so appends are charged at a flat group-commit
// cost rather than against the LSM data disk. With a Sink attached, every
// record is additionally streamed to the sink in its binary encoding and
// commit/abort records are synced (real write-ahead durability).
type Log struct {
	env   *metrics.Env
	sink  Sink
	group GroupCommitter // non-nil only in group-commit mode

	mu      sync.Mutex
	records []Record
	nextLSN int64
	// checkpointLSN is the LSN below which bitmap state is known flushed.
	checkpointLSN int64
	// sinkErr is the first sink failure; once set the log is considered
	// wedged for durability purposes and the next logged write surfaces it.
	sinkErr error
	// yield is the deterministic-simulation scheduling hook, invoked at the
	// instrumented points in the group-commit path (nil = off).
	yield func(point string)
	// keepCommitOnFailedFsync reintroduces a historical bug for simulation
	// validation; see SetUnsafeKeepCommitOnFailedFsync.
	keepCommitOnFailedFsync bool
}

// New creates an empty log.
func New(env *metrics.Env) *Log {
	return &Log{env: env, nextLSN: 1}
}

// NewWithSink creates an empty log streaming its records to sink.
func NewWithSink(env *metrics.Env, sink Sink) *Log {
	return &Log{env: env, sink: sink, nextLSN: 1}
}

// OpenPersisted rebuilds a log from the binary image a previous session
// left in a device's WAL area, stopping at the first corrupt or truncated
// record (the torn tail of a crash mid-append), and attaches sink for
// future appends — which continue the same byte stream, so LSNs keep
// ascending across sessions. It returns the log and the number of image
// bytes that decoded cleanly.
func OpenPersisted(env *metrics.Env, image []byte, sink Sink) (*Log, int) {
	l := &Log{env: env, sink: sink, nextLSN: 1}
	consumed := 0
	data := image
	for len(data) > 0 {
		r, rest, err := DecodeRecord(data)
		if err != nil {
			break
		}
		l.records = append(l.records, r)
		if r.LSN >= l.nextLSN {
			l.nextLSN = r.LSN + 1
		}
		consumed += len(data) - len(rest)
		data = rest
	}
	return l, consumed
}

// AttachGroupCommitter switches the log into group-commit mode: commit
// records are appended to the sink WITHOUT a per-record fsync, and
// CommitDurable/WaitBatch block on gc until one covering fsync lands.
// Attach before the first append; the log does not synchronize the switch
// against in-flight writers.
func (l *Log) AttachGroupCommitter(gc GroupCommitter) { l.group = gc }

// GroupCommitEnabled reports whether a group committer is attached (and a
// sink exists for it to cover).
func (l *Log) GroupCommitEnabled() bool { return l.group != nil && l.sink != nil }

// encBufPool recycles sink encode buffers: the sink contract forbids
// retaining the slice, so one buffer serves each append and goes back.
// Pointers avoid boxing the slice header on every Put; buffers grown past
// maxPooledEncBuf by an outsized record are dropped instead of pinning
// megabytes in the pool.
const maxPooledEncBuf = 64 << 10

var encBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// Append adds a record, assigning and returning its LSN. Callers that
// need this call's own durability result use AppendChecked.
func (l *Log) Append(r Record) int64 {
	//lsm:allow-discard Append is the documented fire-and-forget form; AppendChecked carries this call's durability result
	lsn, _ := l.AppendChecked(r)
	return lsn
}

// AppendChecked adds a record and returns THIS call's sink error — not the
// log-wide sticky one, which may belong to a concurrent writer whose own
// append failed while ours durably committed. On a sink failure the
// in-memory record is removed again, so the log's memory image always
// matches the device's rolled-back state (an in-session Crash/Recover must
// not replay a write whose durable append was reported as failed).
func (l *Log) AppendChecked(r Record) (int64, error) {
	sync := r.Type == RecCommit || r.Type == RecAbort
	return l.appendChecked(r, sync)
}

func (l *Log) appendChecked(r Record, sync bool) (int64, error) {
	l.mu.Lock()
	r.LSN = l.nextLSN
	l.nextLSN++
	l.records = append(l.records, r)
	sink := l.sink
	l.mu.Unlock()
	var sinkErr error
	if sink != nil {
		bp := encBufPool.Get().(*[]byte)
		enc := AppendRecord((*bp)[:0], r)
		sinkErr = sink.Append(enc, sync)
		if cap(enc) <= maxPooledEncBuf {
			*bp = enc
			encBufPool.Put(bp)
		}
		if sinkErr != nil {
			l.poisonAndDrop(sinkErr, r.LSN)
		}
	}
	if l.env != nil {
		l.env.ChargeLogAppend()
	}
	return r.LSN, sinkErr
}

// dropRecordLocked removes the record with the given LSN from the memory
// image (rollback of an append whose durability failed).
func (l *Log) dropRecordLocked(lsn int64) {
	for i := len(l.records) - 1; i >= 0; i-- {
		if l.records[i].LSN == lsn {
			l.records = append(l.records[:i], l.records[i+1:]...)
			return
		}
	}
}

// poisonAndDrop records a durability failure: the sticky sink error wedges
// the log (the next logged write surfaces it) and every listed commit LSN
// is removed from the memory image, so an in-session Crash/Recover can
// never replay a write whose covering fsync was reported as failed.
func (l *Log) poisonAndDrop(err error, lsns ...int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sinkErr == nil {
		l.sinkErr = err
	}
	for _, lsn := range lsns {
		l.dropRecordLocked(lsn)
	}
}

// SinkErr returns the first sink (durability) failure, if any.
func (l *Log) SinkErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}

// CompactImage serializes only the records recovery still needs once every
// component with maxTS <= coveredTS is durable: data records of COMMITTED
// transactions with TS > coveredTS, plus those transactions' commit
// records. Rewriting a device's WAL area with this image drops the covered
// prefix, any torn tail, and uncommitted leftovers — compaction only runs
// while the log is quiescent (reopen, clean shutdown), when no writer can
// ever deliver a missing commit, and keeping a dead data record would let
// a future session's commit under a recycled transaction ID resurrect it.
func (l *Log) CompactImage(coveredTS int64) []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	committed := committedMask(l.records)
	keep := make([]bool, len(l.records))
	keepCommit := make(map[int64]bool)
	for i, r := range l.records {
		if committed[i] && r.TS > coveredTS {
			keep[i] = true
			keepCommit[r.TxnID] = true
		}
	}
	var out []byte
	for i, r := range l.records {
		if keep[i] {
			out = AppendRecord(out, r)
			continue
		}
		if r.Type == RecCommit && keepCommit[r.TxnID] {
			out = AppendRecord(out, r)
			// One commit per kept transaction: a (buggy) duplicate ID
			// later in the log must not re-commit the kept records.
			keepCommit[r.TxnID] = false
		}
	}
	return out
}

// MaxTxnID returns the largest transaction ID in the log (0 when empty).
// Reopen seeds the transaction-ID allocator past it: replay matches
// commits to data records by ID, so IDs must never recycle across process
// generations.
func (l *Log) MaxTxnID() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var maxID int64
	for _, r := range l.records {
		if r.TxnID > maxID {
			maxID = r.TxnID
		}
	}
	return maxID
}

// SetYield installs a scheduling hook invoked at the instrumented points
// in the group-commit path (after a commit record is appended unsynced,
// before the committer parks on its group). The deterministic simulation
// harness uses it to perturb how committers interleave with group leaders.
// A nil hook disables the points.
func (l *Log) SetYield(fn func(point string)) {
	l.mu.Lock()
	l.yield = fn
	l.mu.Unlock()
}

func (l *Log) yieldHook() func(string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.yield
}

// SetUnsafeKeepCommitOnFailedFsync reintroduces, on purpose, the historical
// bug this package once shipped: a commit whose covering fsync failed was
// left in the memory image instead of being dropped and the log wedged, so
// an in-session Crash/Recover would replay — and a later flush would make
// durable — a write that was never acknowledged. It exists solely so the
// deterministic simulation corpus can prove it still catches that bug
// (internal/dst); nothing else may call it.
func (l *Log) SetUnsafeKeepCommitOnFailedFsync(keep bool) {
	l.mu.Lock()
	l.keepCommitOnFailedFsync = keep
	l.mu.Unlock()
}

func (l *Log) dropCommitOnFailedFsync() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.keepCommitOnFailedFsync
}

// Commit appends a commit record for txn.
func (l *Log) Commit(txnID int64) int64 {
	return l.Append(Record{TxnID: txnID, Type: RecCommit})
}

// CommitChecked appends a commit record for txn, returning this call's
// durability result (the commit fsync on a durable device).
func (l *Log) CommitChecked(txnID int64) (int64, error) {
	return l.AppendChecked(Record{TxnID: txnID, Type: RecCommit})
}

// CommitDurable appends txn's commit record and blocks until it is durable.
// Without a group committer this is CommitChecked (a per-record fsync
// through the sink). With one, the record is appended unsynced and the call
// parks on the open commit group: one leader fsyncs for everyone parked,
// so concurrent committers share a single fsync. The returned error is THIS
// commit's own durability result — a group member only ever fails with the
// error of the fsync that was meant to cover it, never a stranger's. On
// failure the commit record is removed from the memory image and the log
// is wedged (sticky sink error), because the device's log area is no longer
// trustworthy.
func (l *Log) CommitDurable(txnID int64) (int64, error) {
	if !l.GroupCommitEnabled() {
		return l.CommitChecked(txnID)
	}
	gc := l.group
	gc.Announce()
	lsn, err := l.appendChecked(Record{TxnID: txnID, Type: RecCommit}, false)
	if err != nil {
		gc.Retract()
		return lsn, err
	}
	if yield := l.yieldHook(); yield != nil {
		yield("wal.commit.appended")
	}
	if err := gc.Wait(1); err != nil {
		if l.dropCommitOnFailedFsync() {
			l.poisonAndDrop(err, lsn)
		}
		return lsn, err
	}
	return lsn, nil
}

// Batch defers commit durability across a run of writes: each commit
// record is appended unsynced and registered here, and one WaitBatch at
// the end parks on the commit group once, so an engine batch pays a single
// fsync instead of one per mutation. Only meaningful in group-commit mode;
// a Batch is not safe for concurrent use.
type Batch struct {
	lsns []int64
}

// NewBatch returns a deferred-durability handle, or nil when the log is
// not in group-commit mode (callers then fall back to per-commit
// durability, preserving the non-grouped semantics exactly).
func (l *Log) NewBatch() *Batch {
	if l == nil || !l.GroupCommitEnabled() {
		return nil
	}
	return &Batch{}
}

// CommitBatched appends txn's commit record unsynced and registers it with
// b; the commit becomes durable — and may be acknowledged — only after a
// successful WaitBatch.
func (l *Log) CommitBatched(txnID int64, b *Batch) (int64, error) {
	lsn, err := l.appendChecked(Record{TxnID: txnID, Type: RecCommit}, false)
	if err != nil {
		return lsn, err
	}
	b.lsns = append(b.lsns, lsn)
	return lsn, nil
}

// WaitBatch blocks until every commit registered in b is covered by a WAL
// fsync. On failure every registered commit is removed from the memory
// image and the log is wedged — none of the batch's writes may be
// acknowledged, and an in-session Crash/Recover will not replay them.
func (l *Log) WaitBatch(b *Batch) error {
	if b == nil || len(b.lsns) == 0 {
		return nil
	}
	gc := l.group
	gc.Announce()
	if yield := l.yieldHook(); yield != nil {
		yield("wal.batch.announced")
	}
	if err := gc.Wait(int64(len(b.lsns))); err != nil {
		if l.dropCommitOnFailedFsync() {
			l.poisonAndDrop(err, b.lsns...)
		}
		return err
	}
	b.lsns = b.lsns[:0]
	return nil
}

// Abort appends an abort record for txn.
func (l *Log) Abort(txnID int64) int64 {
	return l.Append(Record{TxnID: txnID, Type: RecAbort})
}

// Checkpoint advances the checkpoint LSN (dirty bitmap pages flushed).
func (l *Log) Checkpoint(lsn int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.checkpointLSN {
		l.checkpointLSN = lsn
	}
}

// CheckpointLSN returns the current checkpoint LSN.
func (l *Log) CheckpointLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpointLSN
}

// MaxLSN returns the LSN of the last appended record (0 when empty).
func (l *Log) MaxLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// TxnRecords returns the data records of txn in append order, for rollback.
func (l *Log) TxnRecords(txnID int64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.records {
		if r.TxnID == txnID && r.Type != RecCommit && r.Type != RecAbort {
			out = append(out, r)
		}
	}
	return out
}

// ErrNoRecords reports recovery over an empty log range.
var ErrNoRecords = errors.New("wal: no records")

// Replay invokes apply for every data record of a committed transaction
// with LSN greater than fromLSN, in log order. Records of uncommitted or
// aborted transactions are skipped (no-steal: nothing to undo). A data
// record counts as committed only when its transaction's commit record
// appears LATER in the log — a commit can never cover work that had not
// been logged yet, so positional matching keeps a dead leftover record
// from marrying an unrelated commit under a colliding transaction ID.
func (l *Log) Replay(fromLSN int64, apply func(Record) error) error {
	l.mu.Lock()
	records := append([]Record(nil), l.records...)
	l.mu.Unlock()

	for i, r := range committedMask(records) {
		if !r {
			continue
		}
		rec := records[i]
		if rec.LSN <= fromLSN {
			continue
		}
		if err := apply(rec); err != nil {
			return err
		}
	}
	return nil
}

// committedMask marks, per record, the data records whose transaction has
// a commit record later in the log (reverse scan).
func committedMask(records []Record) []bool {
	ok := make([]bool, len(records))
	commitAhead := make(map[int64]bool)
	for i := len(records) - 1; i >= 0; i-- {
		switch records[i].Type {
		case RecCommit:
			commitAhead[records[i].TxnID] = true
		case RecAbort:
			// An abort closes the transaction: data records before it are
			// rolled back even if the ID is (incorrectly) reused later.
			commitAhead[records[i].TxnID] = false
		default:
			ok[i] = commitAhead[records[i].TxnID]
		}
	}
	return ok
}
