package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary record encoding, used to persist the log onto a device and to
// measure log volume. Layout (all varint/length-prefixed):
//
//	totalLen u32 | lsn varint | txn varint | type u8 | flags u8 |
//	ts varint | indexLen uvarint | index | keyLen uvarint | key |
//	valLen uvarint | value | prevLen uvarint | prev
const (
	flagUpdateBit = 1 << 0
	flagHadPrev   = 1 << 1
)

// ErrCorruptRecord reports a malformed binary record.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// AppendRecord appends the binary encoding of r to dst. The length prefix
// is backfilled after the body is encoded in place, so encoding a record
// costs no allocation beyond growing dst (the commit hot path reuses a
// pooled dst).
func AppendRecord(dst []byte, r Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // total length, backfilled below
	dst = binary.AppendVarint(dst, r.LSN)
	dst = binary.AppendVarint(dst, r.TxnID)
	dst = append(dst, byte(r.Type))
	var flags byte
	if r.UpdateBit {
		flags |= flagUpdateBit
	}
	if r.HadPrev {
		flags |= flagHadPrev
	}
	dst = append(dst, flags)
	dst = binary.AppendVarint(dst, r.TS)
	dst = binary.AppendUvarint(dst, uint64(len(r.Index)))
	dst = append(dst, r.Index...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Value)))
	dst = append(dst, r.Value...)
	dst = binary.AppendUvarint(dst, uint64(len(r.PrevValue)))
	dst = append(dst, r.PrevValue...)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// DecodeRecord decodes one record from buf, returning it and the remaining
// bytes.
func DecodeRecord(buf []byte) (Record, []byte, error) {
	if len(buf) < 4 {
		return Record{}, nil, ErrCorruptRecord
	}
	total := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) < total {
		return Record{}, nil, fmt.Errorf("%w: truncated body", ErrCorruptRecord)
	}
	body, rest := buf[:total], buf[total:]

	var r Record
	var n int
	r.LSN, n = binary.Varint(body)
	if n <= 0 {
		return Record{}, nil, ErrCorruptRecord
	}
	body = body[n:]
	r.TxnID, n = binary.Varint(body)
	if n <= 0 {
		return Record{}, nil, ErrCorruptRecord
	}
	body = body[n:]
	if len(body) < 2 {
		return Record{}, nil, ErrCorruptRecord
	}
	r.Type = RecordType(body[0])
	flags := body[1]
	r.UpdateBit = flags&flagUpdateBit != 0
	r.HadPrev = flags&flagHadPrev != 0
	body = body[2:]
	r.TS, n = binary.Varint(body)
	if n <= 0 {
		return Record{}, nil, ErrCorruptRecord
	}
	body = body[n:]

	readBytes := func() ([]byte, error) {
		l, n := binary.Uvarint(body)
		if n <= 0 || uint64(len(body)-n) < l {
			return nil, ErrCorruptRecord
		}
		out := body[n : n+int(l)]
		body = body[n+int(l):]
		return out, nil
	}
	idx, err := readBytes()
	if err != nil {
		return Record{}, nil, err
	}
	r.Index = string(idx)
	if r.Key, err = readBytes(); err != nil {
		return Record{}, nil, err
	}
	if r.Value, err = readBytes(); err != nil {
		return Record{}, nil, err
	}
	if r.PrevValue, err = readBytes(); err != nil {
		return Record{}, nil, err
	}
	if len(r.Key) == 0 {
		r.Key = nil
	}
	if len(r.Value) == 0 {
		r.Value = nil
	}
	if len(r.PrevValue) == 0 {
		r.PrevValue = nil
	}
	return r, rest, nil
}

// Marshal serializes the whole log.
func (l *Log) Marshal() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []byte
	for _, r := range l.records {
		out = AppendRecord(out, r)
	}
	return out
}

// Unmarshal reconstructs a log from Marshal output. The reconstructed log
// has no metrics environment attached; appends to it are not charged.
func Unmarshal(data []byte) (*Log, error) {
	l := &Log{nextLSN: 1}
	for len(data) > 0 {
		r, rest, err := DecodeRecord(data)
		if err != nil {
			return nil, err
		}
		l.records = append(l.records, r)
		if r.LSN >= l.nextLSN {
			l.nextLSN = r.LSN + 1
		}
		data = rest
	}
	return l, nil
}
