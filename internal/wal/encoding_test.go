package wal

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{LSN: 1, TxnID: 7, Type: RecInsert, Index: "dataset", Key: []byte("k"), Value: []byte("v"), TS: 42},
		{LSN: 2, TxnID: -3, Type: RecDelete, Key: []byte("k2"), TS: -1, UpdateBit: true},
		{LSN: 3, TxnID: 9, Type: RecUpsert, Key: []byte("k3"), Value: bytes.Repeat([]byte{1}, 500),
			PrevValue: []byte("old"), HadPrev: true, TS: 1 << 50},
		{LSN: 4, TxnID: 9, Type: RecCommit},
	}
	var buf []byte
	for _, r := range cases {
		buf = AppendRecord(buf, r)
	}
	for i, want := range cases {
		var got Record
		var err error
		got, buf, err = DecodeRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.LSN != want.LSN || got.TxnID != want.TxnID || got.Type != want.Type ||
			got.TS != want.TS || got.UpdateBit != want.UpdateBit || got.HadPrev != want.HadPrev ||
			got.Index != want.Index || !bytes.Equal(got.Key, want.Key) ||
			!bytes.Equal(got.Value, want.Value) || !bytes.Equal(got.PrevValue, want.PrevValue) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(lsn, txn, ts int64, typ uint8, key, value, prev []byte, ub, hp bool) bool {
		want := Record{
			LSN: lsn, TxnID: txn, TS: ts, Type: RecordType(typ%5 + 1),
			Key: key, Value: value, PrevValue: prev, UpdateBit: ub, HadPrev: hp,
		}
		got, rest, err := DecodeRecord(AppendRecord(nil, want))
		if err != nil || len(rest) != 0 {
			return false
		}
		eq := func(a, b []byte) bool {
			return bytes.Equal(a, b) || (len(a) == 0 && len(b) == 0)
		}
		return got.LSN == want.LSN && got.TxnID == want.TxnID && got.TS == want.TS &&
			got.Type == want.Type && got.UpdateBit == ub && got.HadPrev == hp &&
			eq(got.Key, key) && eq(got.Value, value) && eq(got.PrevValue, prev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRecordCorrupt(t *testing.T) {
	r := Record{LSN: 1, TxnID: 1, Type: RecInsert, Key: []byte("key"), Value: []byte("value")}
	buf := AppendRecord(nil, r)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := DecodeRecord(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := DecodeRecord(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
}

func TestLogMarshalUnmarshal(t *testing.T) {
	l := New(metrics.NopEnv())
	l.Append(Record{TxnID: 1, Type: RecUpsert, Key: []byte("a"), Value: []byte("1"), TS: 10})
	l.Commit(1)
	l.Append(Record{TxnID: 2, Type: RecDelete, Key: []byte("b"), TS: 11, UpdateBit: true})
	l.Commit(2)

	data := l.Marshal()
	l2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != l.Len() || l2.MaxLSN() != l.MaxLSN() {
		t.Fatalf("len=%d/%d maxLSN=%d/%d", l2.Len(), l.Len(), l2.MaxLSN(), l.MaxLSN())
	}
	// Replay equivalence.
	collect := func(lg *Log) []string {
		var out []string
		if err := lg.Replay(0, func(r Record) error {
			out = append(out, string(r.Key))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(l), collect(l2)
	if len(a) != len(b) {
		t.Fatalf("replay diverges: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d", i)
		}
	}
	// Appends continue with fresh LSNs.
	if lsn := l2.Append(Record{TxnID: 3, Type: RecInsert}); lsn != l.MaxLSN()+1 {
		t.Fatalf("post-unmarshal LSN = %d", lsn)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	l := New(metrics.NopEnv())
	l.Append(Record{TxnID: 1, Type: RecInsert, Key: []byte("x")})
	data := l.Marshal()
	if _, err := Unmarshal(data[:len(data)-1]); err == nil {
		t.Fatal("truncated log accepted")
	}
}
