package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeRecord feeds arbitrary bytes to the record decoder: it must
// never panic, and any error it reports must be (or wrap) ErrCorruptRecord
// so recovery can distinguish a torn tail from a programming bug. When a
// record does decode, re-encoding it must round-trip.
func FuzzDecodeRecord(f *testing.F) {
	seed := []Record{
		{},
		{TxnID: 7, Type: RecCommit},
		{LSN: 3, TxnID: 9, Type: RecUpsert, Index: "dataset", Key: []byte("pk-1"),
			Value: []byte("record-bytes"), TS: 42, UpdateBit: true,
			PrevValue: []byte("old"), HadPrev: true},
		{LSN: -1, TxnID: -5, Type: RecDelete, Key: []byte{0, 1, 2}, TS: -9},
	}
	for _, r := range seed {
		f.Add(AppendRecord(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 200, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, rest, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("decode error %v does not wrap ErrCorruptRecord", err)
			}
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("decoder returned more bytes than it was given")
		}
		enc := AppendRecord(nil, r)
		r2, tail, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if len(tail) != 0 {
			t.Fatalf("re-encoded record left %d trailing bytes", len(tail))
		}
		if !recordsEqual(r, r2) {
			t.Fatalf("round trip mismatch:\n  got  %+v\n  want %+v", r2, r)
		}
	})
}

// FuzzRecordRoundTrip builds a record from fuzzed fields, encodes it, and
// checks that (a) it decodes back identically and (b) every strict prefix
// of the encoding — a corrupt-tail truncation — fails with ErrCorruptRecord
// rather than panicking or mis-decoding.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2), byte(RecUpsert), []byte("k"), []byte("v"), []byte("p"), int64(3), true, true)
	f.Add(int64(-1), int64(0), byte(RecCommit), []byte(nil), []byte(nil), []byte(nil), int64(-7), false, false)
	f.Add(int64(1<<62), int64(-1<<62), byte(200), bytes.Repeat([]byte{0xff}, 300), []byte{}, []byte{0}, int64(0), true, false)
	f.Fuzz(func(t *testing.T, lsn, txn int64, typ byte, key, val, prev []byte, ts int64, update, hadPrev bool) {
		r := Record{
			LSN: lsn, TxnID: txn, Type: RecordType(typ), Index: "idx",
			Key: key, Value: val, PrevValue: prev, TS: ts,
			UpdateBit: update, HadPrev: hadPrev,
		}
		enc := AppendRecord(nil, r)
		got, rest, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode left %d trailing bytes", len(rest))
		}
		if !recordsEqual(got, r) {
			t.Fatalf("round trip mismatch:\n  got  %+v\n  want %+v", got, r)
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, _, err := DecodeRecord(enc[:cut]); !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("truncation at %d/%d bytes: err = %v, want ErrCorruptRecord", cut, len(enc), err)
			}
		}
	})
}

// TestCompactImage pins the reopen/shutdown compaction contract: data
// records survive only when their transaction committed AND their
// timestamp is newer than the durable-component watermark; everything else
// — covered records, uncommitted leftovers, aborted transactions and all
// bare markers — is dropped.
func TestCompactImage(t *testing.T) {
	l := New(nil)
	app := func(txn, ts int64, typ RecordType, key string) {
		l.Append(Record{TxnID: txn, Type: typ, Key: []byte(key), TS: ts})
	}
	app(1, 5, RecUpsert, "covered") // covered by components
	l.Commit(1)
	app(2, 15, RecUpsert, "live") // durable commit past the watermark
	l.Commit(2)
	app(3, 20, RecUpsert, "uncommitted") // crash before commit: dead
	app(4, 25, RecDelete, "aborted")
	l.Abort(4)

	img := l.CompactImage(10)
	kept, err := Unmarshal(img)
	if err != nil {
		t.Fatalf("compacted image does not decode: %v", err)
	}
	var keys []string
	types := map[RecordType]int{}
	for _, r := range kept.TxnRecords(2) {
		keys = append(keys, string(r.Key))
	}
	if err := kept.Replay(0, func(r Record) error {
		types[r.Type]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "live" {
		t.Fatalf("txn 2 records = %q, want [live]", keys)
	}
	if kept.Len() != 2 { // the live data record + its commit
		t.Fatalf("compacted image holds %d records, want 2", kept.Len())
	}
	if types[RecUpsert] != 1 {
		t.Fatalf("replay of compacted image applied %d upserts, want 1", types[RecUpsert])
	}
	if got := kept.MaxTxnID(); got != 2 {
		t.Fatalf("MaxTxnID of compacted image = %d, want 2", got)
	}
}

// recordsEqual compares records with the decoder's nil/empty normalization
// (zero-length byte fields decode as nil).
func recordsEqual(a, b Record) bool {
	return a.LSN == b.LSN && a.TxnID == b.TxnID && a.Type == b.Type &&
		a.Index == b.Index && a.TS == b.TS &&
		a.UpdateBit == b.UpdateBit && a.HadPrev == b.HadPrev &&
		bytes.Equal(a.Key, b.Key) && bytes.Equal(a.Value, b.Value) &&
		bytes.Equal(a.PrevValue, b.PrevValue)
}
