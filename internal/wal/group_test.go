package wal

import (
	"errors"
	"testing"
)

// recordingSink captures every append and its sync flag.
type recordingSink struct {
	appends int
	syncs   int
}

func (s *recordingSink) Append(encoded []byte, sync bool) error {
	s.appends++
	if sync {
		s.syncs++
	}
	return nil
}

// scriptedGroup is a GroupCommitter whose Wait results are scripted.
type scriptedGroup struct {
	announced int
	retracted int
	waits     int
	commits   int64
	errs      []error // per-Wait results; nil beyond the list
}

func (g *scriptedGroup) Announce() { g.announced++ }
func (g *scriptedGroup) Retract()  { g.retracted++ }
func (g *scriptedGroup) Wait(commits int64) error {
	n := g.waits
	g.waits++
	g.commits += commits
	if n < len(g.errs) {
		return g.errs[n]
	}
	return nil
}

// TestCommitDurableGroupModeDefersSync: in group mode no append carries a
// per-record sync — durability comes from the group Wait, exactly once per
// commit.
func TestCommitDurableGroupModeDefersSync(t *testing.T) {
	sink := &recordingSink{}
	gc := &scriptedGroup{}
	l := NewWithSink(nil, sink)
	l.AttachGroupCommitter(gc)

	l.Append(Record{TxnID: 1, Type: RecUpsert, Key: []byte("k"), Value: []byte("v"), TS: 1})
	if _, err := l.CommitDurable(1); err != nil {
		t.Fatal(err)
	}
	if sink.syncs != 0 {
		t.Fatalf("sync appends = %d, want 0 (durability is the group's job)", sink.syncs)
	}
	if gc.announced != 1 || gc.waits != 1 || gc.retracted != 0 {
		t.Fatalf("group protocol = announce %d / wait %d / retract %d, want 1/1/0",
			gc.announced, gc.waits, gc.retracted)
	}
	replayed := 0
	if err := l.Replay(0, func(Record) error { replayed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d records, want 1", replayed)
	}
}

// TestCommitDurableGroupFailure: a failed covering fsync fails THIS commit
// — the commit record leaves the memory image (replay must not resurrect
// the write) and the log wedges with the sticky error.
func TestCommitDurableGroupFailure(t *testing.T) {
	boom := errors.New("covering fsync failed")
	sink := &recordingSink{}
	gc := &scriptedGroup{errs: []error{boom}}
	l := NewWithSink(nil, sink)
	l.AttachGroupCommitter(gc)

	l.Append(Record{TxnID: 1, Type: RecUpsert, Key: []byte("k"), Value: []byte("v"), TS: 1})
	if _, err := l.CommitDurable(1); !errors.Is(err, boom) {
		t.Fatalf("CommitDurable error = %v, want the fsync failure", err)
	}
	if err := l.SinkErr(); !errors.Is(err, boom) {
		t.Fatalf("SinkErr = %v, want the sticky fsync failure", err)
	}
	if err := l.Replay(0, func(r Record) error {
		return errors.New("replayed a write whose covering fsync failed")
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWaitBatchFailureDropsEveryDeferredCommit: a deferred batch whose
// covering fsync fails loses ALL its commit records — none of its writes
// may survive an in-session recovery.
func TestWaitBatchFailureDropsEveryDeferredCommit(t *testing.T) {
	boom := errors.New("covering fsync failed")
	sink := &recordingSink{}
	gc := &scriptedGroup{errs: []error{boom}}
	l := NewWithSink(nil, sink)
	l.AttachGroupCommitter(gc)

	b := l.NewBatch()
	if b == nil {
		t.Fatal("NewBatch returned nil in group-commit mode")
	}
	for txn := int64(1); txn <= 3; txn++ {
		l.Append(Record{TxnID: txn, Type: RecUpsert, Key: []byte{byte(txn)}, TS: txn})
		if _, err := l.CommitBatched(txn, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitBatch(b); !errors.Is(err, boom) {
		t.Fatalf("WaitBatch error = %v, want the fsync failure", err)
	}
	if gc.commits != 3 {
		t.Fatalf("group saw %d commits, want 3 (one batch waiter carrying all)", gc.commits)
	}
	if err := l.Replay(0, func(r Record) error {
		return errors.New("replayed a write from the failed batch")
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWaitBatchSuccessIsOneWait: a 3-write batch parks on the group once.
func TestWaitBatchSuccessIsOneWait(t *testing.T) {
	sink := &recordingSink{}
	gc := &scriptedGroup{}
	l := NewWithSink(nil, sink)
	l.AttachGroupCommitter(gc)

	b := l.NewBatch()
	for txn := int64(1); txn <= 3; txn++ {
		l.Append(Record{TxnID: txn, Type: RecUpsert, Key: []byte{byte(txn)}, TS: txn})
		if _, err := l.CommitBatched(txn, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitBatch(b); err != nil {
		t.Fatal(err)
	}
	if gc.waits != 1 || gc.commits != 3 {
		t.Fatalf("waits=%d commits=%d, want one wait carrying 3 commits", gc.waits, gc.commits)
	}
	if sink.syncs != 0 {
		t.Fatalf("sync appends = %d, want 0", sink.syncs)
	}
	replayed := 0
	if err := l.Replay(0, func(Record) error { replayed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if replayed != 3 {
		t.Fatalf("replayed %d records, want 3", replayed)
	}
}

// TestNewBatchNilWithoutGroupMode: without a group committer (or on a nil
// log) NewBatch must return nil so callers keep per-commit durability.
func TestNewBatchNilWithoutGroupMode(t *testing.T) {
	if b := NewWithSink(nil, &recordingSink{}).NewBatch(); b != nil {
		t.Fatal("NewBatch without a group committer returned a batch")
	}
	var l *Log
	if b := l.NewBatch(); b != nil {
		t.Fatal("NewBatch on a nil log returned a batch")
	}
}
