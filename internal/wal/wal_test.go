package wal

import (
	"testing"

	"repro/internal/metrics"
)

func TestAppendAssignsLSNs(t *testing.T) {
	l := New(metrics.NopEnv())
	lsn1 := l.Append(Record{TxnID: 1, Type: RecInsert, Key: []byte("a")})
	lsn2 := l.Append(Record{TxnID: 1, Type: RecUpsert, Key: []byte("b")})
	if lsn1 != 1 || lsn2 != 2 {
		t.Fatalf("LSNs = %d, %d", lsn1, lsn2)
	}
	if l.MaxLSN() != 2 || l.Len() != 2 {
		t.Fatalf("MaxLSN=%d Len=%d", l.MaxLSN(), l.Len())
	}
}

func TestReplayOnlyCommitted(t *testing.T) {
	l := New(metrics.NopEnv())
	l.Append(Record{TxnID: 1, Type: RecInsert, Key: []byte("committed")})
	l.Commit(1)
	l.Append(Record{TxnID: 2, Type: RecInsert, Key: []byte("aborted")})
	l.Abort(2)
	l.Append(Record{TxnID: 3, Type: RecInsert, Key: []byte("in-flight")})

	var replayed []string
	err := l.Replay(0, func(r Record) error {
		replayed = append(replayed, string(r.Key))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 1 || replayed[0] != "committed" {
		t.Fatalf("replayed %v", replayed)
	}
}

func TestReplayFromLSN(t *testing.T) {
	l := New(metrics.NopEnv())
	for i := 0; i < 5; i++ {
		id := int64(i + 1)
		l.Append(Record{TxnID: id, Type: RecUpsert, Key: []byte{byte(i)}})
		l.Commit(id)
	}
	// Records have LSNs 1,3,5,7,9 (commits interleave).
	var n int
	if err := l.Replay(5, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records past LSN 5, want 2", n)
	}
}

func TestTxnRecordsForRollback(t *testing.T) {
	l := New(metrics.NopEnv())
	l.Append(Record{TxnID: 7, Type: RecUpsert, Key: []byte("a"), UpdateBit: true})
	l.Append(Record{TxnID: 8, Type: RecDelete, Key: []byte("b")})
	l.Append(Record{TxnID: 7, Type: RecDelete, Key: []byte("c")})
	recs := l.TxnRecords(7)
	if len(recs) != 2 || string(recs[0].Key) != "a" || string(recs[1].Key) != "c" {
		t.Fatalf("TxnRecords = %+v", recs)
	}
	if !recs[0].UpdateBit {
		t.Fatal("update bit lost")
	}
}

func TestCheckpointMonotone(t *testing.T) {
	l := New(metrics.NopEnv())
	l.Checkpoint(10)
	l.Checkpoint(5) // must not regress
	if l.CheckpointLSN() != 10 {
		t.Fatalf("CheckpointLSN = %d", l.CheckpointLSN())
	}
}

func TestAppendChargesClock(t *testing.T) {
	env := metrics.NewEnv()
	l := New(env)
	l.Append(Record{TxnID: 1, Type: RecInsert})
	if env.Clock.Now() != env.CPU.LogAppend {
		t.Fatalf("log append charged %v", env.Clock.Now())
	}
}
