package kv

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPayloadRoundTrip(t *testing.T) {
	cases := []Entry{
		{Key: []byte("k"), Value: []byte("v"), TS: 42, Anti: false},
		{Key: []byte("k2"), Value: nil, TS: -7, Anti: true},
		{Key: []byte("k3"), Value: []byte{}, TS: 0, Anti: false},
		{Key: []byte("k4"), Value: bytes.Repeat([]byte{0xab}, 1000), TS: 1 << 60, Anti: true},
	}
	for _, e := range cases {
		buf := AppendPayload(nil, e)
		got, err := DecodePayload(buf, e.Key)
		if err != nil {
			t.Fatalf("decode %v: %v", e, err)
		}
		if !bytes.Equal(got.Value, e.Value) || got.TS != e.TS || got.Anti != e.Anti {
			t.Errorf("round trip: got %v want %v", got, e)
		}
	}
}

func TestPayloadRoundTripQuick(t *testing.T) {
	f := func(value []byte, ts int64, anti bool) bool {
		e := Entry{Key: []byte("k"), Value: value, TS: ts, Anti: anti}
		got, err := DecodePayload(AppendPayload(nil, e), e.Key)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Value, value) && got.TS == ts && got.Anti == anti
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodePayloadCorrupt(t *testing.T) {
	if _, err := DecodePayload(nil, nil); err == nil {
		t.Error("empty payload should fail")
	}
	e := Entry{Key: []byte("k"), Value: []byte("hello"), TS: 5}
	buf := AppendPayload(nil, e)
	if _, err := DecodePayload(buf[:len(buf)-2], e.Key); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestEncodeUint64Order(t *testing.T) {
	f := func(a, b uint64) bool {
		ka, kb := EncodeUint64(a), EncodeUint64(b)
		switch {
		case a < b:
			return bytes.Compare(ka, kb) < 0
		case a > b:
			return bytes.Compare(ka, kb) > 0
		default:
			return bytes.Equal(ka, kb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeInt64Order(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := EncodeInt64(a), EncodeInt64(b)
		return (a < b) == (bytes.Compare(ka, kb) < 0) && DecodeInt64(ka) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComposeSplitRoundTrip(t *testing.T) {
	f := func(secondary, primary []byte) bool {
		s, p, err := SplitKey(ComposeKey(secondary, primary))
		if err != nil {
			return false
		}
		return bytes.Equal(s, secondary) && bytes.Equal(p, primary)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComposeKeyOrder(t *testing.T) {
	// Composite ordering must equal (secondary, primary) lexicographic
	// ordering, including tricky zero bytes and prefix relationships.
	f := func(s1, p1, s2, p2 []byte) bool {
		c1, c2 := ComposeKey(s1, p1), ComposeKey(s2, p2)
		want := bytes.Compare(s1, s2)
		if want == 0 {
			want = bytes.Compare(p1, p2)
		}
		return sign(bytes.Compare(c1, c2)) == sign(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestSecondaryScanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randKey := func(n int) []byte {
		b := make([]byte, rng.Intn(n)+1)
		for i := range b {
			b[i] = byte(rng.Intn(4)) // dense alphabet exercises 0x00 paths
		}
		return b
	}
	for trial := 0; trial < 500; trial++ {
		lo, hi := randKey(4), randKey(4)
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		cLo, cHi := SecondaryScanBounds(lo, hi)
		s, p := randKey(4), randKey(4)
		comp := ComposeKey(s, p)
		inRange := bytes.Compare(s, lo) >= 0 && bytes.Compare(s, hi) <= 0
		inBounds := bytes.Compare(comp, cLo) >= 0 && bytes.Compare(comp, cHi) < 0
		if inRange != inBounds {
			t.Fatalf("bounds mismatch: s=%x lo=%x hi=%x inRange=%v inBounds=%v",
				s, lo, hi, inRange, inBounds)
		}
	}
}

func TestEntryClone(t *testing.T) {
	e := Entry{Key: []byte("key"), Value: []byte("value"), TS: 9, Anti: true}
	c := e.Clone()
	c.Key[0] = 'X'
	c.Value[0] = 'Y'
	if e.Key[0] != 'k' || e.Value[0] != 'v' {
		t.Error("Clone must deep-copy key and value")
	}
}

func TestEntrySize(t *testing.T) {
	e := Entry{Key: make([]byte, 10), Value: make([]byte, 20)}
	if e.Size() != 46 {
		t.Errorf("Size = %d, want 46", e.Size())
	}
}
