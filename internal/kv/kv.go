// Package kv defines the entry model shared by every index in the storage
// engine: a key/value pair stamped with an ingestion timestamp and an
// anti-matter flag, plus the canonical byte encodings used inside B+-tree
// pages and write-ahead-log records.
package kv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Entry is a single index entry. Keys order entries inside a component;
// TS is the node-local ingestion timestamp used by the Validation strategy;
// Anti marks an anti-matter (delete) entry.
type Entry struct {
	Key   []byte
	Value []byte
	TS    int64
	Anti  bool
}

// Compare orders keys with bytes.Compare semantics.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// Size returns the approximate in-memory footprint of the entry in bytes,
// used for memory-component budget accounting.
func (e Entry) Size() int { return len(e.Key) + len(e.Value) + 16 }

// Clone deep-copies the entry so callers may retain it past iterator reuse.
func (e Entry) Clone() Entry {
	c := Entry{TS: e.TS, Anti: e.Anti}
	c.Key = append([]byte(nil), e.Key...)
	c.Value = append([]byte(nil), e.Value...)
	return c
}

func (e Entry) String() string {
	anti := ""
	if e.Anti {
		anti = "-"
	}
	return fmt.Sprintf("%s%q@%d=%q", anti, e.Key, e.TS, e.Value)
}

const antiFlag = 0x01

// AppendPayload encodes everything but the key (flags, timestamp, value)
// and appends it to dst. The key is stored separately by the B+-tree.
func AppendPayload(dst []byte, e Entry) []byte {
	var flags byte
	if e.Anti {
		flags |= antiFlag
	}
	dst = append(dst, flags)
	dst = binary.AppendVarint(dst, e.TS)
	dst = binary.AppendUvarint(dst, uint64(len(e.Value)))
	dst = append(dst, e.Value...)
	return dst
}

// ErrCorrupt reports a malformed payload encoding.
var ErrCorrupt = errors.New("kv: corrupt entry payload")

// DecodePayload decodes a payload produced by AppendPayload into e
// (the key must be filled in by the caller). The returned slice aliases buf.
func DecodePayload(buf []byte, key []byte) (Entry, error) {
	if len(buf) < 1 {
		return Entry{}, ErrCorrupt
	}
	flags := buf[0]
	buf = buf[1:]
	ts, n := binary.Varint(buf)
	if n <= 0 {
		return Entry{}, ErrCorrupt
	}
	buf = buf[n:]
	vlen, n := binary.Uvarint(buf)
	if n <= 0 {
		return Entry{}, ErrCorrupt
	}
	buf = buf[n:]
	if uint64(len(buf)) < vlen {
		return Entry{}, ErrCorrupt
	}
	return Entry{
		Key:   key,
		Value: buf[:vlen],
		TS:    ts,
		Anti:  flags&antiFlag != 0,
	}, nil
}

// EncodeUint64 encodes v as an 8-byte big-endian key so that byte order
// matches numeric order. All integer primary keys in the engine use this.
func EncodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// AppendUint64 appends the big-endian encoding of v to dst.
func AppendUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// DecodeUint64 decodes a key produced by EncodeUint64.
func DecodeUint64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// EncodeInt64 encodes v order-preservingly (sign bit flipped).
func EncodeInt64(v int64) []byte { return EncodeUint64(uint64(v) ^ (1 << 63)) }

// DecodeInt64 reverses EncodeInt64.
func DecodeInt64(b []byte) int64 { return int64(DecodeUint64(b) ^ (1 << 63)) }

// Composite-key encoding. Secondary indexes key entries on the composition
// (secondary key, primary key) so duplicate secondary keys remain unique, as
// in Section 3 of the paper. The secondary part is escaped (0x00 becomes
// 0x00 0xFF) and terminated with 0x00 0x01, which keeps byte comparison of
// composites equal to (secondary, primary) lexicographic order even for
// variable-length secondary keys.
const (
	escByte  = 0x00
	escCont  = 0xFF // 0x00 0xFF encodes a literal 0x00 inside the secondary
	escTerm  = 0x01 // 0x00 0x01 terminates the secondary part
	escUpper = 0x02 // 0x00 0x02 sorts above every primary, below extensions
)

// ComposeKey builds a composite (secondary key, primary key) index key.
func ComposeKey(secondary, primary []byte) []byte {
	out := make([]byte, 0, len(secondary)+len(primary)+4)
	out = appendEscaped(out, secondary)
	out = append(out, escByte, escTerm)
	out = append(out, primary...)
	return out
}

func appendEscaped(dst, s []byte) []byte {
	for _, b := range s {
		if b == escByte {
			dst = append(dst, escByte, escCont)
		} else {
			dst = append(dst, b)
		}
	}
	return dst
}

// SplitKey splits a key built by ComposeKey back into its parts.
// The returned secondary is freshly allocated; primary aliases composite.
func SplitKey(composite []byte) (secondary, primary []byte, err error) {
	secondary = make([]byte, 0, len(composite))
	for i := 0; i < len(composite); i++ {
		b := composite[i]
		if b != escByte {
			secondary = append(secondary, b)
			continue
		}
		if i+1 >= len(composite) {
			return nil, nil, ErrCorrupt
		}
		switch composite[i+1] {
		case escCont:
			secondary = append(secondary, escByte)
			i++
		case escTerm:
			return secondary, composite[i+2:], nil
		default:
			return nil, nil, ErrCorrupt
		}
	}
	return nil, nil, ErrCorrupt
}

// SecondaryScanBounds returns the [lo, hi) composite-key bounds covering all
// entries whose secondary part s satisfies loS <= s <= hiS (inclusive).
func SecondaryScanBounds(loS, hiS []byte) (lo, hi []byte) {
	lo = appendEscaped(nil, loS)
	lo = append(lo, escByte, escTerm)
	hi = appendEscaped(nil, hiS)
	hi = append(hi, escByte, escUpper)
	return lo, hi
}
