package repair_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/repair"
	"repro/internal/storage"
)

func mkRecord(userID uint32, pad int) []byte {
	rec := make([]byte, 0, 12+pad)
	rec = kv.AppendUint64(rec, 0)
	rec = append(rec, byte(userID>>24), byte(userID>>16), byte(userID>>8), byte(userID))
	rec = append(rec, make([]byte, pad)...)
	return rec
}

func recUserID(rec []byte) ([]byte, bool) {
	if len(rec) < 12 {
		return nil, false
	}
	return rec[8:12], true
}

func newDataset(t testing.TB, mutate func(*core.Config)) *core.Dataset {
	t.Helper()
	env := metrics.NopEnv()
	disk := storage.NewDisk(storage.ScaledHDD(4096), env)
	store := storage.NewStore(disk, 1<<30, env)
	cfg := core.Config{
		Store:        store,
		Strategy:     core.Validation,
		Secondaries:  []core.SecondarySpec{{Name: "user", Extract: recUserID}},
		MemoryBudget: 32 << 10,
		UsePKIndex:   true,
		BloomFPR:     0.01,
		Seed:         17,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// obsoleteCount counts secondary entries that point at stale versions,
// ground-truthed against the model.
func visibleSecondaryEntries(t *testing.T, si *core.SecondaryIndex) []string {
	t.Helper()
	it, err := si.Tree.NewMergedIterator(lsm.IterOptions{
		Components:    si.Tree.Components(),
		Mem:           si.Tree.Mem(),
		HideAnti:      true,
		SkipInvisible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for {
		item, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		sk, pk, _ := kv.SplitKey(item.Entry.Key)
		out = append(out, fmt.Sprintf("%x/%d", sk, kv.DecodeUint64(pk)))
	}
}

func expectedEntries(model map[uint64]uint32) []string {
	var out []string
	for pk, u := range model {
		out = append(out, fmt.Sprintf("%x/%d", []byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)}, pk))
	}
	sort.Strings(out)
	return out
}

func driveUpdates(t *testing.T, d *core.Dataset, seed int64, nOps, keySpace int) map[uint64]uint32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := make(map[uint64]uint32)
	for i := 0; i < nOps; i++ {
		pk := uint64(rng.Intn(keySpace))
		u := uint32(rng.Intn(64))
		if rng.Intn(8) == 0 {
			d.Delete(kv.EncodeUint64(pk))
			delete(model, pk)
			continue
		}
		if err := d.Upsert(kv.EncodeUint64(pk), mkRecord(u, 30)); err != nil {
			t.Fatal(err)
		}
		model[pk] = u
	}
	return model
}

// TestStandaloneRepairCleansObsolete: after repairing every component, the
// visible secondary entries equal exactly the model's live rows.
func TestStandaloneRepairCleansObsolete(t *testing.T) {
	for _, useBloom := range []bool{false, true} {
		t.Run(fmt.Sprintf("bloom=%v", useBloom), func(t *testing.T) {
			d := newDataset(t, nil)
			model := driveUpdates(t, d, 31, 4000, 500)
			si := d.Secondary("user")

			before := visibleSecondaryEntries(t, si)
			if len(before) <= len(model) {
				t.Fatalf("setup: expected obsolete entries, visible=%d model=%d", len(before), len(model))
			}
			if err := repair.RepairAll(si.Tree, d.PKIndex(), repair.Options{UseBloom: useBloom}); err != nil {
				t.Fatal(err)
			}
			after := visibleSecondaryEntries(t, si)
			sort.Strings(after)
			want := expectedEntries(model)
			if fmt.Sprint(after) != fmt.Sprint(want) {
				t.Fatalf("after repair: %d entries, want %d", len(after), len(want))
			}
		})
	}
}

// TestRepairedTSAdvancesAndPrunes: a second repair right after the first
// must prune every pk-index component and do almost no validation work.
func TestRepairedTSAdvances(t *testing.T) {
	d := newDataset(t, nil)
	driveUpdates(t, d, 32, 3000, 400)
	si := d.Secondary("user")
	if err := repair.RepairAll(si.Tree, d.PKIndex(), repair.Options{}); err != nil {
		t.Fatal(err)
	}
	maxPK := int64(0)
	for _, c := range d.PKIndex().Components() {
		if c.ID.MaxTS > maxPK {
			maxPK = c.ID.MaxTS
		}
	}
	for i, c := range si.Tree.Components() {
		if c.RepairedTS < maxPK {
			t.Errorf("component %d repairedTS=%d < pk max %d", i, c.RepairedTS, maxPK)
		}
	}
	// Second repair: all disk components pruned -> few point lookups.
	env := d.Env()
	env.Counters.Reset()
	if err := repair.RepairAll(si.Tree, d.PKIndex(), repair.Options{}); err != nil {
		t.Fatal(err)
	}
	if lookups := env.Counters.PointLookups.Load(); lookups > int64(d.PKIndex().Mem().Len())*4 {
		t.Errorf("second repair did %d lookups; pruning should leave only memory checks", lookups)
	}
}

// TestMergeRepairEquivalentToStandalone: merge repair and standalone repair
// must converge to the same visible entries.
func TestMergeRepairCleansObsolete(t *testing.T) {
	d := newDataset(t, nil)
	model := driveUpdates(t, d, 33, 4000, 500)
	si := d.Secondary("user")
	n := si.Tree.NumDiskComponents()
	if n < 2 {
		t.Skip("need >=2 components")
	}
	if err := repair.MergeRepair(si.Tree, d.PKIndex(), 0, n, repair.Options{}); err != nil {
		t.Fatal(err)
	}
	if si.Tree.NumDiskComponents() != 1 {
		t.Fatalf("components after merge repair = %d", si.Tree.NumDiskComponents())
	}
	after := visibleSecondaryEntries(t, si)
	sort.Strings(after)
	want := expectedEntries(model)
	if fmt.Sprint(after) != fmt.Sprint(want) {
		t.Fatalf("after merge repair: %d entries, want %d", len(after), len(want))
	}
	// The new component's bitmap marks obsolete entries; a further merge
	// physically removes them.
	comp := si.Tree.Components()[0]
	if comp.Obsolete == nil {
		t.Fatal("merge repair must attach a bitmap")
	}
}

// TestPrimaryRepairCleansObsolete: the DELI baseline produces anti-matter
// that hides obsolete entries.
func TestPrimaryRepairCleansObsolete(t *testing.T) {
	for _, withMerge := range []bool{false, true} {
		t.Run(fmt.Sprintf("merge=%v", withMerge), func(t *testing.T) {
			d := newDataset(t, nil)
			model := driveUpdates(t, d, 34, 4000, 500)
			// Primary repair scans disk components only (DELI repairs
			// during merges); flush so every version is on disk, as in
			// the paper's stop-ingestion-then-repair protocol.
			if err := d.FlushAll(); err != nil {
				t.Fatal(err)
			}
			si := d.Secondary("user")
			targets := []repair.SecondaryTarget{{
				Tree:    si.Tree,
				Extract: recUserID,
				PutAnti: func(sk, pk []byte, ts int64) {
					si.Tree.Put(kv.Entry{Key: kv.ComposeKey(sk, pk), TS: ts, Anti: true})
				},
			}}
			if err := repair.PrimaryRepair(d.Primary(), targets, withMerge, d.NextTS()); err != nil {
				t.Fatal(err)
			}
			after := visibleSecondaryEntries(t, si)
			sort.Strings(after)
			want := expectedEntries(model)
			if fmt.Sprint(after) != fmt.Sprint(want) {
				t.Fatalf("after primary repair: %d entries, want %d\nafter=%v\nwant=%v",
					len(after), len(want), after, want)
			}
			if withMerge && d.Primary().NumDiskComponents() != 1 {
				t.Errorf("primary components = %d, want 1 after merge", d.Primary().NumDiskComponents())
			}
		})
	}
}

// TestSecondaryRepairCheaperThanPrimary reproduces the paper's core claim
// (Figure 20): secondary repair reads only the primary key index, so its
// I/O is far below primary repair, which reads full records.
func TestSecondaryRepairCheaperThanPrimary(t *testing.T) {
	setup := func() (*core.Dataset, *metrics.Env) {
		env := metrics.NopEnv()
		disk := storage.NewDisk(storage.ScaledHDD(4096), env)
		store := storage.NewStore(disk, 1<<20, env) // small cache
		d, err := core.Open(core.Config{
			Store:        store,
			Strategy:     core.Validation,
			Secondaries:  []core.SecondarySpec{{Name: "user", Extract: recUserID}},
			MemoryBudget: 64 << 10,
			UsePKIndex:   true,
			BloomFPR:     0.01,
			Seed:         17,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(55))
		for i := 0; i < 8000; i++ {
			pk := uint64(rng.Intn(2000))
			d.Upsert(kv.EncodeUint64(pk), mkRecord(uint32(rng.Intn(64)), 200))
		}
		return d, env
	}

	d1, env1 := setup()
	env1.Counters.Reset()
	if err := repair.RepairAll(d1.Secondary("user").Tree, d1.PKIndex(), repair.Options{}); err != nil {
		t.Fatal(err)
	}
	secReads := env1.Counters.RandomReads.Load() + env1.Counters.SequentialReads.Load()

	d2, env2 := setup()
	env2.Counters.Reset()
	si := d2.Secondary("user")
	targets := []repair.SecondaryTarget{{
		Tree:    si.Tree,
		Extract: recUserID,
		PutAnti: func(sk, pk []byte, ts int64) {
			si.Tree.Put(kv.Entry{Key: kv.ComposeKey(sk, pk), TS: ts, Anti: true})
		},
	}}
	if err := repair.PrimaryRepair(d2.Primary(), targets, false, d2.NextTS()); err != nil {
		t.Fatal(err)
	}
	primReads := env2.Counters.RandomReads.Load() + env2.Counters.SequentialReads.Load()

	if secReads >= primReads {
		t.Errorf("secondary repair reads=%d, primary repair reads=%d; secondary should be cheaper",
			secReads, primReads)
	}
	t.Logf("page reads: secondary repair=%d, primary repair=%d", secReads, primReads)
}
