// Package repair implements background index repair for the Validation
// strategy (Section 4.4) plus the DELI-style "primary repair" baseline the
// paper compares against (Section 6.5).
//
// Merge repair follows Figure 7: while a merge streams a secondary index's
// entries into the new component, each entry's (primary key, timestamp,
// position) is fed to a sorter; the sorted keys are then validated against
// the primary key index, and invalid positions are recorded in an immutable
// bitmap attached to the new component. Standalone repair validates a
// single component in place, producing only a new bitmap. Both prune
// primary-key-index components with maxTS <= the component's repairedTS.
package repair

import (
	"repro/internal/bitmap"
	"repro/internal/btree"
	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/memtable"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// Options tunes a repair operation.
type Options struct {
	// UseBloom enables the Section 4.4 Bloom filter optimization: keys
	// whose Bloom tests are negative in every unpruned primary-key-index
	// component are excluded from sorting and validation. Only effective
	// under a correlated merge policy, which guarantees the unpruned
	// components are strictly newer than the repairing component.
	UseBloom bool
	// Store, when set, charges MergeRepair's merge I/O (input scans and
	// the new component's build) to this store view — the background
	// maintenance lane. Validation lookups against the primary key index
	// keep their readers' own accounting.
	Store *storage.Store
}

// tuple is one (primary key, timestamp, position) record fed to the sorter
// (Fig 7 line 6).
type tuple struct {
	pk  []byte
	ts  int64
	pos int64
}

// validator answers "does the primary key index hold this key with a larger
// timestamp?" against a pruned snapshot of the primary key index.
type validator struct {
	env *metrics.Env
	mem *memtable.Table
	// flushing holds the memory components frozen by in-flight flushes
	// (oldest to newest); they rank between mem and the disk components.
	flushing []*memtable.Table
	comps    []*lsm.Component // unpruned, oldest to newest
	cursors  []*btree.LookupCursor
	// newRepairedTS is the repair watermark after this operation: the
	// maximum timestamp covered by the examined components and memory.
	newRepairedTS int64
}

// newValidator snapshots the primary key index, pruning disk components
// with maxTS <= repairedTS (Fig 6).
func newValidator(pkIndex *lsm.Tree, repairedTS int64) *validator {
	mem, flushing, comps := pkIndex.ReadView()
	v := &validator{env: pkIndex.Env(), mem: mem, flushing: flushing, newRepairedTS: repairedTS}
	for _, c := range comps {
		if c.ID.MaxTS <= repairedTS {
			continue // pruned
		}
		v.comps = append(v.comps, c)
		v.cursors = append(v.cursors, c.BTree.NewLookupCursor(true))
		if c.ID.MaxTS > v.newRepairedTS {
			v.newRepairedTS = c.ID.MaxTS
		}
	}
	if _, maxTS := v.mem.ID(); maxTS > v.newRepairedTS {
		v.newRepairedTS = maxTS
	}
	for _, m := range v.flushing {
		if _, maxTS := m.ID(); maxTS > v.newRepairedTS {
			v.newRepairedTS = maxTS
		}
	}
	return v
}

// numRecentKeys returns the total entry count of the unpruned components,
// used to decide between point lookups and a merge scan.
func (v *validator) numRecentKeys() int64 {
	var n int64
	for _, c := range v.comps {
		n += c.NumEntries()
	}
	n += int64(v.mem.Len())
	for _, m := range v.flushing {
		n += int64(m.Len())
	}
	return n
}

// mayContainAny reports whether any unpruned component's Bloom filter (or
// the memory component) may contain pk.
func (v *validator) mayContainAny(pk []byte) bool {
	if _, ok := v.mem.Get(pk); ok {
		return true
	}
	for i := len(v.flushing) - 1; i >= 0; i-- {
		if _, ok := v.flushing[i].Get(pk); ok {
			return true
		}
	}
	for _, c := range v.comps {
		if c.MayContain(v.env, pk) {
			return true
		}
	}
	return false
}

// newestTS returns the timestamp of the newest entry for pk in the
// snapshot, anti-matter included (a newer anti-matter also invalidates).
func (v *validator) newestTS(pk []byte) (int64, bool) {
	if e, ok := v.mem.Get(pk); ok {
		return e.TS, true
	}
	for i := len(v.flushing) - 1; i >= 0; i-- {
		if e, ok := v.flushing[i].Get(pk); ok {
			return e.TS, true
		}
	}
	for i := len(v.comps) - 1; i >= 0; i-- {
		if !v.comps[i].MayContain(v.env, pk) {
			continue
		}
		e, _, found, err := v.cursors[i].Lookup(pk)
		if err == nil && found {
			return e.TS, true
		}
	}
	return 0, false
}

// validate marks in bm the positions of tuples whose primary key exists in
// the snapshot with a larger timestamp. Tuples must be sorted by pk.
// When the number of keys to validate exceeds the number of recently
// ingested keys, a merge scan replaces the per-key lookups (Section 4.4).
func (v *validator) validate(tuples []tuple, bm *bitmap.Immutable) error {
	if len(tuples) == 0 {
		return nil
	}
	if int64(len(tuples)) > v.numRecentKeys() {
		return v.validateByMergeScan(tuples, bm)
	}
	var lastPK []byte
	var lastTS int64
	var lastFound bool
	for i := range tuples {
		t := &tuples[i]
		if lastPK == nil || kv.Compare(t.pk, lastPK) != 0 {
			lastPK = t.pk
			lastTS, lastFound = v.newestTS(t.pk)
		}
		if lastFound && lastTS > t.ts {
			bm.Set(t.pos)
		}
	}
	return nil
}

// validateByMergeScan walks the sorted tuples alongside one reconciled scan
// of the snapshot.
func (v *validator) validateByMergeScan(tuples []tuple, bm *bitmap.Immutable) error {
	it, err := newSnapshotIterator(v)
	if err != nil {
		return err
	}
	cur, curOK, err := it()
	if err != nil {
		return err
	}
	for i := 0; i < len(tuples); {
		if !curOK {
			break
		}
		c := kv.Compare(cur.Key, tuples[i].pk)
		switch {
		case c < 0:
			cur, curOK, err = it()
			if err != nil {
				return err
			}
		case c > 0:
			i++
		default:
			if cur.TS > tuples[i].ts {
				bm.Set(tuples[i].pos)
			}
			i++
		}
	}
	return nil
}

// newSnapshotIterator returns a pull function over the validator's snapshot,
// reconciled so the newest version (anti-matter included) wins.
func newSnapshotIterator(v *validator) (func() (kv.Entry, bool, error), error) {
	// Build a private merged iterator: the lsm iterator needs a *Tree, so
	// we re-implement the small amount of heap logic via lsm.MergedItem by
	// scanning each component and the memtable.
	type src struct {
		next func() (kv.Entry, bool, error)
		cur  kv.Entry
		ok   bool
		rank int
	}
	var srcs []*src
	for rank, c := range v.comps {
		scan, err := c.BTree.NewScan(nil, nil)
		if err != nil {
			return nil, err
		}
		s := &src{rank: rank}
		s.next = func() (kv.Entry, bool, error) {
			e, _, ok, err := scan.Next()
			return e, ok, err
		}
		srcs = append(srcs, s)
	}
	memRank := len(v.comps)
	for _, m := range append(append([]*memtable.Table(nil), v.flushing...), v.mem) {
		if m == nil {
			continue
		}
		memIt := m.NewIterator(nil, nil)
		ms := &src{rank: memRank}
		ms.next = func() (kv.Entry, bool, error) {
			e, ok := memIt.Next()
			return e, ok, nil
		}
		srcs = append(srcs, ms)
		memRank++
	}
	for _, s := range srcs {
		e, ok, err := s.next()
		if err != nil {
			return nil, err
		}
		s.cur, s.ok = e, ok
	}
	return func() (kv.Entry, bool, error) {
		// pick smallest key, newest rank
		var best *src
		for _, s := range srcs {
			if !s.ok {
				continue
			}
			if best == nil {
				best = s
				continue
			}
			c := kv.Compare(s.cur.Key, best.cur.Key)
			if c < 0 || (c == 0 && s.rank > best.rank) {
				best = s
			}
		}
		if best == nil {
			return kv.Entry{}, false, nil
		}
		out := best.cur
		// advance every source holding the same key
		for _, s := range srcs {
			for s.ok && kv.Compare(s.cur.Key, out.Key) == 0 {
				e, ok, err := s.next()
				if err != nil {
					return kv.Entry{}, false, err
				}
				s.cur, s.ok = e, ok
			}
		}
		return out, true, nil
	}, nil
}
