package repair

import (
	"sort"

	"repro/internal/bitmap"
	"repro/internal/kv"
	"repro/internal/lsm"
)

// MergeRepair merges the secondary-index component range [lo, hi) while
// repairing the result (Fig 7): entries stream into the new component, their
// (pkey, ts, position) tuples are sorted and validated against the primary
// key index, and invalid positions are recorded in the new component's
// immutable bitmap. The merged component's repairedTS advances to the
// maximum timestamp of the unpruned primary-key-index components.
func MergeRepair(sec, pkIndex *lsm.Tree, lo, hi int, opts Options) error {
	comps := sec.Components()
	if lo < 0 || hi > len(comps) || lo >= hi {
		return lsm.ErrBadMergeRange
	}
	// The merged component's starting watermark is the weakest (minimum)
	// of the inputs': entries from any input may be stale past it.
	repairedTS := comps[lo].RepairedTS
	for _, c := range comps[lo:hi] {
		if c.RepairedTS < repairedTS {
			repairedTS = c.RepairedTS
		}
	}
	v := newValidator(pkIndex, repairedTS)
	env := pkIndex.Env()

	var tuples []tuple
	var skipped int64
	res, err := sec.Merge(lsm.MergeSpec{
		Lo: lo, Hi: hi,
		DropAnti:      lo == 0,
		SkipInvisible: true,
		Store:         opts.Store,
		OnEntry: func(e kv.Entry, ordinal int64) {
			if e.Anti {
				return
			}
			_, pk, err := kv.SplitKey(e.Key)
			if err != nil {
				return
			}
			if opts.UseBloom && !v.mayContainAny(pk) {
				// Bloom optimization (Section 4.4): the key was never
				// updated after this component's watermark; exclude it
				// from sorting and validation entirely.
				skipped++
				return
			}
			tuples = append(tuples, tuple{pk: append([]byte(nil), pk...), ts: e.TS, pos: ordinal})
		},
	})
	if err != nil {
		return err
	}
	env.ChargeSort(len(tuples))
	sort.Slice(tuples, func(i, j int) bool { return kv.Compare(tuples[i].pk, tuples[j].pk) < 0 })

	bm := bitmap.NewImmutable(res.Component.NumEntries())
	if err := v.validate(tuples, bm); err != nil {
		return err
	}
	res.Component.Obsolete = bm
	res.Component.RepairedTS = v.newRepairedTS
	return sec.Install(res)
}

// StandaloneRepair validates one secondary-index component in place,
// producing only a fresh immutable bitmap (Section 4.4): no merge output is
// written. Scheduled independently of merges (e.g. during off-peak hours).
func StandaloneRepair(sec, pkIndex *lsm.Tree, comp *lsm.Component, opts Options) error {
	v := newValidator(pkIndex, comp.RepairedTS)
	env := pkIndex.Env()

	scan, err := comp.BTree.NewScan(nil, nil)
	if err != nil {
		return err
	}
	var tuples []tuple
	for {
		e, ordinal, ok, err := scan.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if e.Anti || comp.Obsolete.IsSet(ordinal) {
			continue
		}
		_, pk, err := kv.SplitKey(e.Key)
		if err != nil {
			continue
		}
		if opts.UseBloom && !v.mayContainAny(pk) {
			continue
		}
		tuples = append(tuples, tuple{pk: append([]byte(nil), pk...), ts: e.TS, pos: ordinal})
	}
	env.ChargeSort(len(tuples))
	sort.Slice(tuples, func(i, j int) bool { return kv.Compare(tuples[i].pk, tuples[j].pk) < 0 })

	bm := bitmap.NewImmutable(comp.NumEntries())
	// Carry forward existing marks so earlier repairs are not forgotten.
	if comp.Obsolete != nil {
		for i := int64(0); i < comp.Obsolete.Len(); i++ {
			if comp.Obsolete.IsSet(i) {
				bm.Set(i)
			}
		}
	}
	if err := v.validate(tuples, bm); err != nil {
		return err
	}
	sec.SetObsolete(comp, bm, v.newRepairedTS)
	return nil
}

// RepairAll standalone-repairs every disk component of a secondary index.
func RepairAll(sec, pkIndex *lsm.Tree, opts Options) error {
	for _, comp := range sec.Components() {
		if err := StandaloneRepair(sec, pkIndex, comp, opts); err != nil {
			return err
		}
	}
	return nil
}

// SecondaryTarget names one secondary index for primary repair, together
// with the key extractor needed to synthesize anti-matter from old records.
type SecondaryTarget struct {
	Tree *lsm.Tree
	// Extract returns the secondary key of a record.
	Extract func(record []byte) ([]byte, bool)
	// PutAnti inserts a cleanup anti-matter entry (routed through the
	// dataset so memory accounting stays correct).
	PutAnti func(sk, pk []byte, ts int64)
}

// PrimaryRepair is the DELI baseline (Section 6.5, "primary repair"): scan
// the primary index's disk components; whenever multiple records share a
// primary key, produce anti-matter entries for the obsolete versions to
// clean up every secondary index. With withMerge set, the scanned
// components are also merged into one as a by-product; otherwise they are
// left as-is and only the anti-matter is produced.
//
// Unlike secondary repair, this reads full records (the paper's point: the
// I/O volume scales with record size, Figure 21).
func PrimaryRepair(primary *lsm.Tree, targets []SecondaryTarget, withMerge bool, repairTS int64) error {
	comps := primary.Components()
	if len(comps) == 0 {
		return nil
	}
	// Iterate all versions (no reconciliation) so older duplicates are
	// observed next to the newest version of each key.
	it, err := primary.NewMergedIterator(lsm.IterOptions{
		Components:    comps,
		NoReconcile:   true,
		SkipInvisible: true,
	})
	if err != nil {
		return err
	}
	var (
		curKey  []byte
		newest  kv.Entry
		haveCur bool
	)
	emitObsolete := func(old kv.Entry) {
		if old.Anti {
			return
		}
		// The newest version may have a different secondary key (or be a
		// delete); clean up the old version's secondary entries.
		for _, tgt := range targets {
			oldSK, ok := tgt.Extract(old.Value)
			if !ok {
				continue
			}
			if !newest.Anti {
				if newSK, ok2 := tgt.Extract(newest.Value); ok2 && kv.Compare(oldSK, newSK) == 0 {
					continue
				}
			}
			tgt.PutAnti(oldSK, old.Key, repairTS)
		}
	}
	for {
		item, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		e := item.Entry
		if !haveCur || kv.Compare(e.Key, curKey) != 0 {
			curKey = append(curKey[:0], e.Key...)
			newest = e
			haveCur = true
			continue
		}
		// Same key, older version (NoReconcile emits newest first).
		emitObsolete(e)
	}
	if withMerge {
		res, err := primary.Merge(lsm.MergeSpec{
			Lo: 0, Hi: len(comps),
			DropAnti:      true,
			SkipInvisible: true,
		})
		if err != nil {
			return err
		}
		return primary.Install(res)
	}
	return nil
}
