package repair_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/repair"
)

// TestValidationByMergeScanPath forces the Section 4.4 optimization where
// the number of keys to validate exceeds the number of recently ingested
// keys: validation then merge-scans the primary key index instead of doing
// per-key point lookups. The repaired index must be exactly as clean as
// with the lookup path.
func TestValidationByMergeScanPath(t *testing.T) {
	d := newDataset(t, func(c *core.Config) {
		c.MemoryBudget = 1 << 30 // manual flushes
	})
	// One big component with 2000 entries.
	for pk := uint64(0); pk < 2000; pk++ {
		if err := d.Upsert(kv.EncodeUint64(pk), mkRecord(uint32(pk%64), 30)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// A handful of updates: the "recently ingested keys" (one small pk
	// component + memory) are far fewer than the 2000 entries to
	// validate, forcing the merge-scan branch.
	for pk := uint64(0); pk < 50; pk++ {
		if err := d.Upsert(kv.EncodeUint64(pk), mkRecord(uint32(63), 30)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	si := d.Secondary("user")
	if err := repair.RepairAll(si.Tree, d.PKIndex(), repair.Options{}); err != nil {
		t.Fatal(err)
	}
	// Exactly 2000 live entries: the 50 stale ones are bitmapped out.
	after := visibleSecondaryEntries(t, si)
	if len(after) != 2000 {
		t.Fatalf("visible entries = %d, want 2000", len(after))
	}
	var marked int64
	for _, c := range si.Tree.Components() {
		marked += c.Obsolete.Count()
	}
	if marked != 50 {
		t.Fatalf("obsolete marks = %d, want 50", marked)
	}
	// Spot-check correctness: every updated key appears exactly once, for
	// user 63.
	counts := map[string]int{}
	for _, e := range after {
		counts[e]++
	}
	for pk := uint64(0); pk < 50; pk++ {
		want := fmt.Sprintf("%x/%d", []byte{0, 0, 0, 63}, pk)
		if counts[want] != 1 {
			t.Fatalf("key %d: %d entries for user 63", pk, counts[want])
		}
	}
	sort.Strings(after)
}
