package metrics

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	if c.Now() != 8*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Advance(-time.Second) // ignored
	if c.Now() != 8*time.Millisecond {
		t.Fatalf("negative advance changed clock: %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8*time.Millisecond {
		t.Fatalf("concurrent advances lost: %v", c.Now())
	}
}

func TestCountersSnapshotSub(t *testing.T) {
	var c Counters
	c.RandomReads.Add(5)
	c.CacheHits.Add(2)
	before := c.Snapshot()
	c.RandomReads.Add(3)
	c.BloomTests.Add(7)
	delta := c.Snapshot().Sub(before)
	if delta.RandomReads != 3 || delta.BloomTests != 7 || delta.CacheHits != 0 {
		t.Fatalf("delta = %+v", delta)
	}
	c.Reset()
	if s := c.Snapshot(); s.RandomReads != 0 || s.BloomTests != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestEnvCharges(t *testing.T) {
	env := NewEnv()
	env.ChargeCompare(10)
	if env.Counters.KeyComparisons.Load() != 10 {
		t.Fatal("comparisons not counted")
	}
	want := 10 * env.CPU.KeyCompare
	if env.Clock.Now() != want {
		t.Fatalf("clock = %v, want %v", env.Clock.Now(), want)
	}
	before := env.Clock.Now()
	env.ChargeSort(100)
	if env.Clock.Now()-before != 100*env.CPU.SortPerEntry {
		t.Fatal("sort charge wrong")
	}
	env.ChargeMemtable()
	env.ChargeLogAppend()
	env.ChargeDecode(3)
}

func TestNopEnvChargesNothing(t *testing.T) {
	env := NopEnv()
	env.ChargeCompare(1000)
	env.ChargeSort(1000)
	if env.Clock.Now() != 0 {
		t.Fatalf("NopEnv advanced the clock: %v", env.Clock.Now())
	}
	// but counting still works
	if env.Counters.KeyComparisons.Load() != 1000 {
		t.Fatal("NopEnv must still count")
	}
}

func TestDefaultCostsSane(t *testing.T) {
	c := DefaultCPUCosts()
	if c.KeyCompare <= 0 || c.CacheLineMiss <= c.ProbeInBlock {
		t.Fatal("cost calibration out of order")
	}
	if c.CacheHit <= c.CacheLineMiss {
		t.Fatal("a buffer-cache page access must cost more than one cache-line miss")
	}
}

func TestServerSnapshotAddSub(t *testing.T) {
	// Exercise every field via reflection so a newly added counter cannot
	// silently escape Add/Sub coverage.
	var a, b ServerSnapshot
	va, vb := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	for i := 0; i < va.NumField(); i++ {
		va.Field(i).SetInt(int64(10 * (i + 1)))
		vb.Field(i).SetInt(int64(i + 1))
	}
	sum, diff := a.Add(b), a.Sub(b)
	vs, vd := reflect.ValueOf(sum), reflect.ValueOf(diff)
	for i := 0; i < vs.NumField(); i++ {
		name := vs.Type().Field(i).Name
		if got, want := vs.Field(i).Int(), int64(11*(i+1)); got != want {
			t.Errorf("Add %s = %d, want %d", name, got, want)
		}
		if got, want := vd.Field(i).Int(), int64(9*(i+1)); got != want {
			t.Errorf("Sub %s = %d, want %d", name, got, want)
		}
	}
	// Round trip: (a - b) + b == a.
	if diff.Add(b) != a {
		t.Fatalf("Sub/Add round trip failed: %+v", diff.Add(b))
	}
}

func TestServerCountersSnapshot(t *testing.T) {
	var c ServerCounters
	c.Requests.Add(4)
	c.SlowRequests.Add(2)
	s := c.Snapshot()
	if s.Requests != 4 || s.SlowRequests != 2 || s.Errors != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}
