package metrics

import (
	"time"
)

// Sleeper supplies the two real-time primitives the engine is allowed to
// use for latency-bounded waits: a monotonic reading (for measuring how
// long a stall lasted and for polling deadlines) and a one-shot callback
// timer (for bounding how long a group-commit leader holds its window
// open). Everything else in the engine runs on the virtual Clock; the
// Sleeper is the single seam where "real elapsed time" enters, so that
// deterministic simulation (internal/dst) can replace it with a virtual
// source and make timer firings part of the seeded schedule.
//
// Implementations must be safe for concurrent use. Monotonic readings are
// only ever compared to each other, never to wall-clock time.
type Sleeper interface {
	// Monotonic returns a monotonic reading. Differences between two
	// readings measure elapsed time; the absolute value is meaningless.
	Monotonic() time.Duration
	// AfterFunc runs fn once, on its own goroutine, after at least d has
	// elapsed. The returned stop function cancels the timer; it reports
	// false when fn already ran or was concurrently running.
	AfterFunc(d time.Duration, fn func()) (stop func() bool)
}

// wallSleeper is the default Sleeper: real time via the runtime's
// monotonic clock and time.AfterFunc.
type wallSleeper struct{ base time.Time }

//lsm:clocksource-ok wallSleeper is the real-time Sleeper implementation itself
var wallBase = time.Now()

// WallSleeper returns the process-wide real-time Sleeper.
func WallSleeper() Sleeper { return wallSleeper{base: wallBase} }

func (w wallSleeper) Monotonic() time.Duration {
	//lsm:clocksource-ok the wall Sleeper is the one sanctioned real-time source
	return time.Since(w.base)
}

func (w wallSleeper) AfterFunc(d time.Duration, fn func()) func() bool {
	//lsm:clocksource-ok the wall Sleeper is the one sanctioned real-time source
	t := time.AfterFunc(d, fn)
	return t.Stop
}

// sleeperCell boxes a Sleeper so Clock can swap it atomically.
type sleeperCell struct{ s Sleeper }

// sleeper is the Clock's attached Sleeper (nil means wall time). It lives
// on Clock so every component holding an Env reaches the same time source
// without extra plumbing.
func (c *Clock) Sleeper() Sleeper {
	if cell := c.sleeper.Load(); cell != nil {
		return cell.s
	}
	return WallSleeper()
}

// SetSleeper attaches a Sleeper to the clock. A nil Sleeper restores the
// real-time default. Safe for concurrent use, but intended to be called
// once at construction time, before timers are armed.
func (c *Clock) SetSleeper(s Sleeper) {
	if s == nil {
		c.sleeper.Store(nil)
		return
	}
	c.sleeper.Store(&sleeperCell{s: s})
}
