// Package metrics provides the virtual clock and calibrated cost model that
// stand in for the paper's wall-clock measurements. Every storage and CPU
// event of interest (page reads, Bloom probes, key comparisons, ...) advances
// a shared virtual clock by a calibrated amount, so experiments report
// "seconds" whose ratios track the paper's testbed without 6-hour runs.
//
// See DESIGN.md ("Substitutions") for why this preserves the paper's shapes:
// the results are driven by random-vs-sequential I/O ratios, cache residency,
// and in-memory search costs, all of which the model reproduces explicitly.
package metrics

import (
	"sync/atomic"
	"time"
)

// Clock is a virtual clock. It is safe for concurrent use.
//
// A Clock also carries the Sleeper used for real-time-bounded waits (see
// sleeper.go); the default is wall time, and deterministic simulation
// swaps in a virtual source with SetSleeper.
type Clock struct {
	ns      atomic.Int64
	sleeper atomic.Pointer[sleeperCell]
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.ns.Add(int64(d))
	}
}

// AdvanceTo moves the clock forward to at least t (a lane synchronization
// point: a writer that waited for background maintenance observes the
// maintenance lane's time). Earlier times are ignored.
func (c *Clock) AdvanceTo(t time.Duration) {
	for {
		cur := c.ns.Load()
		if int64(t) <= cur || c.ns.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Now returns the current virtual time since the clock was created or reset.
func (c *Clock) Now() time.Duration { return time.Duration(c.ns.Load()) }

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.ns.Store(0) }

// CPUCosts calibrates in-memory work. Values approximate a ~2 GHz core with
// ~100 ns main-memory latency, matching the paper's 2.0 GHz Opteron node.
type CPUCosts struct {
	// KeyCompare is one key comparison during a B+-tree page search.
	KeyCompare time.Duration
	// CacheLineMiss is one main-memory access (a Bloom filter bit probe
	// landing outside the CPU cache). A standard Bloom filter pays up to k
	// of these per test; a blocked Bloom filter pays exactly one plus
	// ProbeInBlock for the remaining hashes (Section 3.2).
	CacheLineMiss time.Duration
	// ProbeInBlock is one additional probe within an already-resident block.
	ProbeInBlock time.Duration
	// Hash is one hash computation over a key.
	Hash time.Duration
	// EntryDecode is decoding one entry out of a page.
	EntryDecode time.Duration
	// CacheHit is a buffer-cache page access (latch + locate).
	CacheHit time.Duration
	// SortPerEntry is the per-entry cost of an in-memory sort pass.
	SortPerEntry time.Duration
	// MemtableOp is one skiplist insert/lookup in a memory component.
	MemtableOp time.Duration
	// LogAppend is one WAL record append (buffered group commit amortized).
	LogAppend time.Duration
}

// DefaultCPUCosts returns the calibration used by all experiments.
func DefaultCPUCosts() CPUCosts {
	return CPUCosts{
		KeyCompare:    20 * time.Nanosecond,
		CacheLineMiss: 100 * time.Nanosecond,
		ProbeInBlock:  6 * time.Nanosecond,
		Hash:          30 * time.Nanosecond,
		EntryDecode:   40 * time.Nanosecond,
		CacheHit:      1200 * time.Nanosecond,
		SortPerEntry:  150 * time.Nanosecond,
		MemtableOp:    400 * time.Nanosecond,
		LogAppend:     900 * time.Nanosecond,
	}
}

// Counters aggregates event counts for reporting and assertions in tests.
// All methods are safe for concurrent use.
type Counters struct {
	RandomReads     atomic.Int64 // disk pages read at random positions
	SequentialReads atomic.Int64 // disk pages read sequentially
	PagesWritten    atomic.Int64 // disk pages written (always sequential)
	CacheHits       atomic.Int64 // buffer-cache hits
	CacheMisses     atomic.Int64 // buffer-cache misses
	BloomTests      atomic.Int64 // Bloom filter membership tests
	BloomNegatives  atomic.Int64 // tests that returned "definitely absent"
	KeyComparisons  atomic.Int64 // B+-tree search comparisons
	PointLookups    atomic.Int64 // primary/pk-index point lookups issued
	EntriesScanned  atomic.Int64 // entries pulled through iterators
	WriteStalls     atomic.Int64 // writes stalled by maintenance backpressure
	WriteStallNanos atomic.Int64 // total wall-clock time writes spent stalled

	// Stall attribution: what the write path was waiting on when a stall
	// began (frozen-memtable ceiling vs. on-disk component count).
	WriteStallsFrozen     atomic.Int64
	WriteStallsComponents atomic.Int64

	// Group-commit durability path (file backend; zero on the simulated
	// device, whose log appends carry no fsync).
	WALFsyncs          atomic.Int64 // fsyncs issued against the WAL area
	GroupCommitBatches atomic.Int64 // commit groups closed by one covering fsync
	GroupCommitWaiters atomic.Int64 // committed writes covered by those groups (mean group size = waiters/batches)

	// Read cache (internal/readcache; zero when Options.ReadCache is off).
	ReadCacheHits          atomic.Int64 // GETs answered from a cached record
	ReadCacheMisses        atomic.Int64 // GETs that fell through to the engine
	ReadCacheNegHits       atomic.Int64 // GETs answered by a cached known-absent entry
	ReadCacheInvalidations atomic.Int64 // write-path invalidations (per mutated key)
}

// Snapshot is an immutable copy of the counter values.
type Snapshot struct {
	RandomReads     int64
	SequentialReads int64
	PagesWritten    int64
	CacheHits       int64
	CacheMisses     int64
	BloomTests      int64
	BloomNegatives  int64
	KeyComparisons  int64
	PointLookups    int64
	EntriesScanned  int64
	WriteStalls     int64
	WriteStallNanos int64

	WriteStallsFrozen     int64
	WriteStallsComponents int64

	WALFsyncs          int64
	GroupCommitBatches int64
	GroupCommitWaiters int64

	ReadCacheHits          int64
	ReadCacheMisses        int64
	ReadCacheNegHits       int64
	ReadCacheInvalidations int64
}

// Snapshot captures the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		RandomReads:     c.RandomReads.Load(),
		SequentialReads: c.SequentialReads.Load(),
		PagesWritten:    c.PagesWritten.Load(),
		CacheHits:       c.CacheHits.Load(),
		CacheMisses:     c.CacheMisses.Load(),
		BloomTests:      c.BloomTests.Load(),
		BloomNegatives:  c.BloomNegatives.Load(),
		KeyComparisons:  c.KeyComparisons.Load(),
		PointLookups:    c.PointLookups.Load(),
		EntriesScanned:  c.EntriesScanned.Load(),
		WriteStalls:     c.WriteStalls.Load(),
		WriteStallNanos: c.WriteStallNanos.Load(),

		WriteStallsFrozen:     c.WriteStallsFrozen.Load(),
		WriteStallsComponents: c.WriteStallsComponents.Load(),

		WALFsyncs:          c.WALFsyncs.Load(),
		GroupCommitBatches: c.GroupCommitBatches.Load(),
		GroupCommitWaiters: c.GroupCommitWaiters.Load(),

		ReadCacheHits:          c.ReadCacheHits.Load(),
		ReadCacheMisses:        c.ReadCacheMisses.Load(),
		ReadCacheNegHits:       c.ReadCacheNegHits.Load(),
		ReadCacheInvalidations: c.ReadCacheInvalidations.Load(),
	}
}

// Add returns s plus o, for aggregating counters across shards or runs.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		RandomReads:     s.RandomReads + o.RandomReads,
		SequentialReads: s.SequentialReads + o.SequentialReads,
		PagesWritten:    s.PagesWritten + o.PagesWritten,
		CacheHits:       s.CacheHits + o.CacheHits,
		CacheMisses:     s.CacheMisses + o.CacheMisses,
		BloomTests:      s.BloomTests + o.BloomTests,
		BloomNegatives:  s.BloomNegatives + o.BloomNegatives,
		KeyComparisons:  s.KeyComparisons + o.KeyComparisons,
		PointLookups:    s.PointLookups + o.PointLookups,
		EntriesScanned:  s.EntriesScanned + o.EntriesScanned,
		WriteStalls:     s.WriteStalls + o.WriteStalls,
		WriteStallNanos: s.WriteStallNanos + o.WriteStallNanos,

		WriteStallsFrozen:     s.WriteStallsFrozen + o.WriteStallsFrozen,
		WriteStallsComponents: s.WriteStallsComponents + o.WriteStallsComponents,

		WALFsyncs:          s.WALFsyncs + o.WALFsyncs,
		GroupCommitBatches: s.GroupCommitBatches + o.GroupCommitBatches,
		GroupCommitWaiters: s.GroupCommitWaiters + o.GroupCommitWaiters,

		ReadCacheHits:          s.ReadCacheHits + o.ReadCacheHits,
		ReadCacheMisses:        s.ReadCacheMisses + o.ReadCacheMisses,
		ReadCacheNegHits:       s.ReadCacheNegHits + o.ReadCacheNegHits,
		ReadCacheInvalidations: s.ReadCacheInvalidations + o.ReadCacheInvalidations,
	}
}

// Sub returns s minus o, for measuring a bounded region of work.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		RandomReads:     s.RandomReads - o.RandomReads,
		SequentialReads: s.SequentialReads - o.SequentialReads,
		PagesWritten:    s.PagesWritten - o.PagesWritten,
		CacheHits:       s.CacheHits - o.CacheHits,
		CacheMisses:     s.CacheMisses - o.CacheMisses,
		BloomTests:      s.BloomTests - o.BloomTests,
		BloomNegatives:  s.BloomNegatives - o.BloomNegatives,
		KeyComparisons:  s.KeyComparisons - o.KeyComparisons,
		PointLookups:    s.PointLookups - o.PointLookups,
		EntriesScanned:  s.EntriesScanned - o.EntriesScanned,
		WriteStalls:     s.WriteStalls - o.WriteStalls,
		WriteStallNanos: s.WriteStallNanos - o.WriteStallNanos,

		WriteStallsFrozen:     s.WriteStallsFrozen - o.WriteStallsFrozen,
		WriteStallsComponents: s.WriteStallsComponents - o.WriteStallsComponents,

		WALFsyncs:          s.WALFsyncs - o.WALFsyncs,
		GroupCommitBatches: s.GroupCommitBatches - o.GroupCommitBatches,
		GroupCommitWaiters: s.GroupCommitWaiters - o.GroupCommitWaiters,

		ReadCacheHits:          s.ReadCacheHits - o.ReadCacheHits,
		ReadCacheMisses:        s.ReadCacheMisses - o.ReadCacheMisses,
		ReadCacheNegHits:       s.ReadCacheNegHits - o.ReadCacheNegHits,
		ReadCacheInvalidations: s.ReadCacheInvalidations - o.ReadCacheInvalidations,
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.RandomReads.Store(0)
	c.SequentialReads.Store(0)
	c.PagesWritten.Store(0)
	c.CacheHits.Store(0)
	c.CacheMisses.Store(0)
	c.BloomTests.Store(0)
	c.BloomNegatives.Store(0)
	c.KeyComparisons.Store(0)
	c.PointLookups.Store(0)
	c.EntriesScanned.Store(0)
	c.WriteStalls.Store(0)
	c.WriteStallNanos.Store(0)
	c.WriteStallsFrozen.Store(0)
	c.WriteStallsComponents.Store(0)
	c.WALFsyncs.Store(0)
	c.GroupCommitBatches.Store(0)
	c.GroupCommitWaiters.Store(0)
	c.ReadCacheHits.Store(0)
	c.ReadCacheMisses.Store(0)
	c.ReadCacheNegHits.Store(0)
	c.ReadCacheInvalidations.Store(0)
}

// ServerCounters aggregates network-service events for the lsmserver
// front-end: connections, requests, failures, and write-coalescer
// efficiency. All fields are safe for concurrent use.
type ServerCounters struct {
	Connections      atomic.Int64 // connections accepted since start
	ActiveConns      atomic.Int64 // connections currently open
	Requests         atomic.Int64 // requests decoded and dispatched
	Errors           atomic.Int64 // requests answered with an error frame
	CoalescedBatches atomic.Int64 // ApplyBatch calls issued by the write coalescer
	CoalescedWrites  atomic.Int64 // single writes absorbed into those batches
	SlowRequests     atomic.Int64 // requests over the slow-request threshold
}

// ServerSnapshot is an immutable copy of the server counter values.
type ServerSnapshot struct {
	Connections      int64
	ActiveConns      int64
	Requests         int64
	Errors           int64
	CoalescedBatches int64
	CoalescedWrites  int64
	SlowRequests     int64
}

// Snapshot captures the current server counter values.
func (c *ServerCounters) Snapshot() ServerSnapshot {
	return ServerSnapshot{
		Connections:      c.Connections.Load(),
		ActiveConns:      c.ActiveConns.Load(),
		Requests:         c.Requests.Load(),
		Errors:           c.Errors.Load(),
		CoalescedBatches: c.CoalescedBatches.Load(),
		CoalescedWrites:  c.CoalescedWrites.Load(),
		SlowRequests:     c.SlowRequests.Load(),
	}
}

// Add returns s plus o, mirroring Snapshot.Add for the server counters.
func (s ServerSnapshot) Add(o ServerSnapshot) ServerSnapshot {
	return ServerSnapshot{
		Connections:      s.Connections + o.Connections,
		ActiveConns:      s.ActiveConns + o.ActiveConns,
		Requests:         s.Requests + o.Requests,
		Errors:           s.Errors + o.Errors,
		CoalescedBatches: s.CoalescedBatches + o.CoalescedBatches,
		CoalescedWrites:  s.CoalescedWrites + o.CoalescedWrites,
		SlowRequests:     s.SlowRequests + o.SlowRequests,
	}
}

// Sub returns s minus o, for interval deltas across two /stats fetches.
func (s ServerSnapshot) Sub(o ServerSnapshot) ServerSnapshot {
	return ServerSnapshot{
		Connections:      s.Connections - o.Connections,
		ActiveConns:      s.ActiveConns - o.ActiveConns,
		Requests:         s.Requests - o.Requests,
		Errors:           s.Errors - o.Errors,
		CoalescedBatches: s.CoalescedBatches - o.CoalescedBatches,
		CoalescedWrites:  s.CoalescedWrites - o.CoalescedWrites,
		SlowRequests:     s.SlowRequests - o.SlowRequests,
	}
}

// Env bundles the clock, cost model and counters that thread through the
// whole engine. A zero-cost Env (NopEnv) disables accounting for tests that
// only care about functional behaviour.
type Env struct {
	Clock    *Clock
	CPU      CPUCosts
	Counters *Counters
}

// NewEnv returns an Env with a fresh clock, default CPU costs, and counters.
func NewEnv() *Env {
	return &Env{Clock: NewClock(), CPU: DefaultCPUCosts(), Counters: &Counters{}}
}

// NopEnv returns an Env whose costs are all zero (accounting still counts).
func NopEnv() *Env {
	return &Env{Clock: NewClock(), CPU: CPUCosts{}, Counters: &Counters{}}
}

// BackgroundLane derives an Env for background maintenance I/O: it shares
// the cost model and counters (event totals stay global) but advances its
// own clock, modelling a maintenance channel that overlaps the ingest path.
// The two lanes couple at synchronization points — backpressure stalls and
// drains — via Clock.AdvanceTo.
func (e *Env) BackgroundLane() *Env {
	lane := &Env{Clock: NewClock(), CPU: e.CPU, Counters: e.Counters}
	// The lane keeps its own virtual time but shares the parent's real-time
	// source, so a simulated Sleeper governs both lanes.
	if cell := e.Clock.sleeper.Load(); cell != nil {
		lane.Clock.SetSleeper(cell.s)
	}
	return lane
}

// ChargeCompare records n key comparisons.
func (e *Env) ChargeCompare(n int) {
	e.Counters.KeyComparisons.Add(int64(n))
	e.Clock.Advance(time.Duration(n) * e.CPU.KeyCompare)
}

// ChargeDecode records n entry decodes.
func (e *Env) ChargeDecode(n int) {
	e.Clock.Advance(time.Duration(n) * e.CPU.EntryDecode)
}

// ChargeSort records an in-memory sort of n entries (n log n comparisons
// folded into a calibrated per-entry constant).
func (e *Env) ChargeSort(n int) {
	e.Clock.Advance(time.Duration(n) * e.CPU.SortPerEntry)
}

// ChargeMemtable records one memory-component operation.
func (e *Env) ChargeMemtable() { e.Clock.Advance(e.CPU.MemtableOp) }

// ChargeLogAppend records one WAL append.
func (e *Env) ChargeLogAppend() { e.Clock.Advance(e.CPU.LogAppend) }
