package query

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/lsm"
)

// ValidationMethod selects the Figure 5 validation variant.
type ValidationMethod int

// Validation methods.
const (
	// NoValidation trusts the secondary index (Eager strategy: indexes are
	// always up to date).
	NoValidation ValidationMethod = iota
	// Direct fetches candidate records and re-checks the search condition
	// (Figure 5a). It cannot serve index-only queries.
	Direct
	// Timestamp probes the primary key index: a key is invalid when the
	// same key exists there with a larger timestamp (Figure 5b).
	Timestamp
	// DeletedKeyCheck validates against the deleted-key B+-trees attached
	// to secondary components (the AsterixDB baseline of Section 4.1):
	// a key is invalid when a same-or-newer component's deleted-key tree
	// holds it with a larger timestamp. Supports index-only queries
	// without the primary key index, at the cost of per-component trees.
	DeletedKeyCheck
)

// Valid reports whether v names a defined validation method. Boundary
// layers (the network server) use it so the accepted range cannot drift
// from this enum.
func (v ValidationMethod) Valid() bool {
	return v >= NoValidation && v <= DeletedKeyCheck
}

// String implements fmt.Stringer.
func (v ValidationMethod) String() string {
	switch v {
	case NoValidation:
		return "none"
	case Direct:
		return "direct"
	case Timestamp:
		return "ts"
	case DeletedKeyCheck:
		return "deleted-key"
	}
	return "validation(?)"
}

// SecondaryQueryOptions configures a secondary-index range query.
type SecondaryQueryOptions struct {
	// Validation selects the validation method (Figure 5). Use
	// NoValidation only with the Eager strategy.
	Validation ValidationMethod
	// IndexOnly answers from the secondary index alone (plus validation);
	// no records are fetched. Incompatible with Direct validation.
	IndexOnly bool
	// Lookup configures the record-fetch point lookups.
	Lookup LookupConfig
	// CrackOnValidate lets Timestamp validation drive index maintenance
	// (the paper's Section 7 future-work direction): entries it proves
	// obsolete are marked in the source component's cracked bitmap, so
	// subsequent queries skip them and the next merge removes them.
	CrackOnValidate bool
}

// SecondaryResult is the answer to a secondary-index range query.
type SecondaryResult struct {
	// Records holds the fetched records (non-index-only queries).
	Records []kv.Entry
	// Keys holds the matching primary keys (index-only queries).
	Keys [][]byte
}

// candidate is one (pk, ts) pair returned by the secondary index search.
type candidate struct {
	pk  []byte
	ts  int64
	src lsm.ID
	// srcRepairedTS is the repairedTS of the component the entry came
	// from, which prunes primary-key-index components during Timestamp
	// validation (footnote 2 of the paper).
	srcRepairedTS int64
	// srcRank is the index of the source component in the scanned list
	// (len = memory component), for deleted-key validation recency.
	srcRank int
	// srcComp and srcOrdinal locate the entry for query-driven cracking.
	srcComp    *lsm.Component
	srcOrdinal int64
}

// SecondaryRange runs a range query loSK <= secondary key <= hiSK against
// the given secondary index of the dataset.
func SecondaryRange(ds *core.Dataset, si *core.SecondaryIndex, loSK, hiSK []byte, opts SecondaryQueryOptions) (*SecondaryResult, error) {
	env := ds.Env()
	lo, hi := kv.SecondaryScanBounds(loSK, hiSK)

	// One atomic view of the index: entries of an in-flight flush stay
	// visible through the frozen memtable until their component lands.
	mem, flushing, comps := si.Tree.ReadView()
	it, err := si.Tree.NewMergedIterator(lsm.IterOptions{
		Lo: lo, Hi: hi,
		Components:    comps,
		Flushing:      flushing,
		Mem:           mem,
		HideAnti:      true,
		SkipInvisible: true,
	})
	if err != nil {
		return nil, err
	}
	var cands []candidate
	for {
		item, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		_, pk, err := kv.SplitKey(item.Entry.Key)
		if err != nil {
			return nil, err
		}
		c := candidate{
			pk: append([]byte(nil), pk...),
			ts: item.Entry.TS,
		}
		if item.Comp != nil {
			c.src = item.Comp.ID
			c.srcRepairedTS = item.Comp.RepairedTS
			c.srcComp = item.Comp
			c.srcOrdinal = item.Ordinal
			for rank := range comps {
				if comps[rank] == item.Comp {
					c.srcRank = rank
					break
				}
			}
		} else {
			// Memory-component entries are as fresh as it gets: only the
			// memory component itself can invalidate them.
			c.srcRepairedTS = 0
			c.src = lsm.ID{MinTS: item.Entry.TS, MaxTS: item.Entry.TS}
			c.srcRank = len(comps)
		}
		cands = append(cands, c)
	}

	res := &SecondaryResult{}
	switch opts.Validation {
	case NoValidation:
		if opts.IndexOnly {
			for i := range cands {
				res.Keys = append(res.Keys, cands[i].pk)
			}
			return res, nil
		}
		keys := make([]Key, len(cands))
		for i, c := range cands {
			keys[i] = Key{PK: c.pk, Src: c.src}
		}
		err = FetchRecords(ds.Primary(), keys, opts.Lookup, func(e kv.Entry) {
			res.Records = append(res.Records, e.Clone())
		})
		return res, err

	case Direct:
		// Sort-distinct then fetch; the search condition is re-checked on
		// each record (Figure 5a).
		env.ChargeSort(len(cands))
		sort.Slice(cands, func(i, j int) bool { return kv.Compare(cands[i].pk, cands[j].pk) < 0 })
		keys := make([]Key, 0, len(cands))
		for i, c := range cands {
			if i > 0 && kv.Compare(c.pk, cands[i-1].pk) == 0 {
				continue // distinct
			}
			keys = append(keys, Key{PK: c.pk, Src: c.src})
		}
		err = FetchRecords(ds.Primary(), keys, opts.Lookup, func(e kv.Entry) {
			if sk, ok := si.Spec.Extract(e.Value); ok &&
				kv.Compare(sk, loSK) >= 0 && kv.Compare(sk, hiSK) <= 0 {
				res.Records = append(res.Records, e.Clone())
			}
		})
		return res, err

	case DeletedKeyCheck:
		valid, err := deletedKeyValidate(ds, si, comps, cands)
		if err != nil {
			return nil, err
		}
		if opts.IndexOnly {
			for _, c := range valid {
				res.Keys = append(res.Keys, c.pk)
			}
			return res, nil
		}
		keys := make([]Key, len(valid))
		for i, c := range valid {
			keys[i] = Key{PK: c.pk, Src: c.src}
		}
		err = FetchRecords(ds.Primary(), keys, opts.Lookup, func(e kv.Entry) {
			res.Records = append(res.Records, e.Clone())
		})
		return res, err

	case Timestamp:
		valid, err := timestampValidate(ds, cands, opts.CrackOnValidate)
		if err != nil {
			return nil, err
		}
		if opts.IndexOnly {
			for _, c := range valid {
				res.Keys = append(res.Keys, c.pk)
			}
			return res, nil
		}
		keys := make([]Key, len(valid))
		for i, c := range valid {
			keys[i] = Key{PK: c.pk, Src: c.src}
		}
		err = FetchRecords(ds.Primary(), keys, opts.Lookup, func(e kv.Entry) {
			res.Records = append(res.Records, e.Clone())
		})
		return res, err
	}
	return res, nil
}

// deletedKeyValidate implements the deleted-key B+-tree strategy's query
// validation (Section 4.1): a candidate is invalid when a same-or-newer
// component's deleted-key B+-tree — or the memory component's accumulator —
// holds its primary key with a newer timestamp. Each probe first consults
// the deleted-key tree's Bloom filter.
func deletedKeyValidate(ds *core.Dataset, si *core.SecondaryIndex, comps []*lsm.Component, cands []candidate) ([]candidate, error) {
	env := ds.Env()
	var valid []candidate
	for _, c := range cands {
		invalid := si.MemDeletedAfter(c.pk, c.ts)
		for rank := c.srcRank; !invalid && rank < len(comps); rank++ {
			comp := comps[rank]
			if comp.DeletedKeys == nil {
				continue
			}
			if comp.DeletedKeysBloom != nil {
				env.Counters.BloomTests.Add(1)
				env.Clock.Advance(env.CPU.Hash)
				ok, lines := comp.DeletedKeysBloom.MayContain(c.pk)
				env.Clock.Advance(time.Duration(lines) * env.CPU.CacheLineMiss)
				if !ok {
					env.Counters.BloomNegatives.Add(1)
					continue
				}
			}
			e, _, found, err := comp.DeletedKeys.Get(c.pk)
			if err != nil {
				return nil, err
			}
			if found && e.TS > c.ts {
				invalid = true
			}
		}
		if !invalid {
			valid = append(valid, c)
		}
	}
	return valid, nil
}

// timestampValidate implements Figure 5b: candidates are sorted by primary
// key, then validated with point lookups against the primary key index; a
// candidate is invalid when the same key exists with a larger timestamp.
// Primary-key-index components with maxTS <= the candidate's source
// repairedTS are pruned. With crack set, proven-invalid entries are marked
// in their source component's cracked bitmap (query-driven maintenance).
func timestampValidate(ds *core.Dataset, cands []candidate, crack bool) ([]candidate, error) {
	pkIndex := ds.PKIndex()
	if pkIndex == nil {
		return nil, core.ErrNoPKIndex
	}
	env := ds.Env()
	env.ChargeSort(len(cands))
	sort.Slice(cands, func(i, j int) bool { return kv.Compare(cands[i].pk, cands[j].pk) < 0 })

	mem, flushing, comps := pkIndex.ReadView()
	cursors := make([]interface {
		Lookup([]byte) (kv.Entry, int64, bool, error)
	}, len(comps))
	for i, c := range comps {
		cursors[i] = c.BTree.NewLookupCursor(true)
	}

	var valid []candidate
	for _, c := range cands {
		newestTS := int64(-1)
		if e, ok := memGet(env, mem, flushing, c.pk); ok {
			newestTS = e.TS
		} else {
			for ci := len(comps) - 1; ci >= 0; ci-- {
				comp := comps[ci]
				if comp.ID.MaxTS <= c.srcRepairedTS {
					continue // pruned: already validated up to here
				}
				if !comp.MayContain(env, c.pk) {
					continue
				}
				e, _, found, err := cursors[ci].Lookup(c.pk)
				if err != nil {
					return nil, err
				}
				if found {
					newestTS = e.TS
					break
				}
			}
		}
		if newestTS > c.ts {
			// A newer version (or delete) supersedes this entry.
			if crack && c.srcComp != nil {
				c.srcComp.Crack(c.srcOrdinal)
			}
			continue
		}
		valid = append(valid, c)
	}
	return valid, nil
}
