package query

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/kv"
)

func TestFetchRecordsEmpty(t *testing.T) {
	d := newDataset(t, core.Eager, nil)
	err := FetchRecords(d.Primary(), nil, DefaultLookupConfig(), func(kv.Entry) {
		t.Fatal("emit on empty key list")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFetchRecordsSingleKeyBatches(t *testing.T) {
	d := newDataset(t, core.Eager, nil)
	for i := uint64(0); i < 500; i++ {
		d.Upsert(kv.EncodeUint64(i), mkRecord(uint32(i%10), 1, 40))
	}
	d.FlushAll()
	// BatchMemory below one record forces single-key batches; answers
	// must still be complete.
	cfg := LookupConfig{Batched: true, BatchMemory: 1, EstRecordSize: 512, Stateful: true}
	var keys []Key
	for i := uint64(0); i < 500; i += 7 {
		keys = append(keys, Key{PK: kv.EncodeUint64(i)})
	}
	got := 0
	if err := FetchRecords(d.Primary(), keys, cfg, func(kv.Entry) { got++ }); err != nil {
		t.Fatal(err)
	}
	if got != len(keys) {
		t.Fatalf("fetched %d of %d", got, len(keys))
	}
}

func TestFetchRecordsMissingKeysSilent(t *testing.T) {
	d := newDataset(t, core.Eager, nil)
	for i := uint64(0); i < 100; i++ {
		d.Upsert(kv.EncodeUint64(i), mkRecord(1, 1, 10))
	}
	d.FlushAll()
	keys := []Key{
		{PK: kv.EncodeUint64(5)},
		{PK: kv.EncodeUint64(100000)}, // absent
		{PK: kv.EncodeUint64(7)},
	}
	for _, batched := range []bool{false, true} {
		got := 0
		cfg := LookupConfig{Batched: batched, BatchMemory: 1 << 20, EstRecordSize: 64}
		if err := FetchRecords(d.Primary(), keys, cfg, func(kv.Entry) { got++ }); err != nil {
			t.Fatal(err)
		}
		if got != 2 {
			t.Fatalf("batched=%v: fetched %d, want 2", batched, got)
		}
	}
}

// TestPIDPruningSafeUnderUpdates guards the pruning direction: propagating
// component IDs may skip components strictly OLDER than the source entry,
// but never newer ones — a key updated without a secondary-key change has
// its newest version in a newer component than the surviving secondary
// entry, and pruning must not miss it.
func TestPIDPruningSafeUnderUpdates(t *testing.T) {
	d := newDataset(t, core.Eager, nil)
	// Insert with user 5, then upsert the SAME user but a new creation
	// time: Eager skips secondary maintenance (key unchanged), so the
	// secondary entry stays in the old component while the record moves
	// to a newer one.
	pk := kv.EncodeUint64(77)
	if _, err := d.Insert(pk, mkRecord(5, 100, 40)); err != nil {
		t.Fatal(err)
	}
	d.FlushAll()
	if err := d.Upsert(pk, mkRecord(5, 999, 40)); err != nil {
		t.Fatal(err)
	}
	d.FlushAll()

	si := d.Secondary("user")
	res, err := SecondaryRange(d, si, userKey(5), userKey(5), SecondaryQueryOptions{
		Validation: NoValidation,
		Lookup:     LookupConfig{Batched: true, BatchMemory: 1 << 20, EstRecordSize: 64, PropagateIDs: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("got %d records", len(res.Records))
	}
	if cr, _ := recCreation(res.Records[0].Value); cr != 999 {
		t.Fatalf("pID pruning returned the stale version (creation %d)", cr)
	}
}

func TestSortRecordsByPK(t *testing.T) {
	d := newDataset(t, core.Eager, nil)
	records := []kv.Entry{
		{Key: kv.EncodeUint64(3)},
		{Key: kv.EncodeUint64(1)},
		{Key: kv.EncodeUint64(2)},
	}
	SortRecordsByPK(d.Env(), records)
	for i, want := range []uint64{1, 2, 3} {
		if kv.DecodeUint64(records[i].Key) != want {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestSecondaryRangeOnEmptyDataset(t *testing.T) {
	d := newDataset(t, core.Validation, nil)
	si := d.Secondary("user")
	for _, m := range []ValidationMethod{NoValidation, Direct, Timestamp} {
		res, err := SecondaryRange(d, si, userKey(0), userKey(10), SecondaryQueryOptions{
			Validation: m, Lookup: DefaultLookupConfig(),
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(res.Records)+len(res.Keys) != 0 {
			t.Fatalf("%v: non-empty result on empty dataset", m)
		}
	}
}

func TestFilterScanEmptyAndDisjoint(t *testing.T) {
	for _, strategy := range []core.Strategy{core.Eager, core.Validation, core.MutableBitmap} {
		d := newDataset(t, strategy, nil)
		// empty dataset
		if err := FilterScan(d, 0, 100, func(kv.Entry) { t.Fatal("emit on empty") }); err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 200; i++ {
			d.Upsert(kv.EncodeUint64(i), mkRecord(1, int64(1000+i), 20))
		}
		d.FlushAll()
		// disjoint window: filters prune everything
		count := 0
		if err := FilterScan(d, 5000, 6000, func(kv.Entry) { count++ }); err != nil {
			t.Fatal(err)
		}
		if count != 0 {
			t.Fatalf("%v: disjoint scan returned %d", strategy, count)
		}
	}
}

// TestValidationQueryNeverMissesNewUpdates is the Section 4.2 correctness
// rule under randomized flush timing: a filter scan right after updates of
// OLD records must reflect them even though the memory filter was only
// maintained with new values.
func TestValidationQueryNeverMissesNewUpdates(t *testing.T) {
	d := newDataset(t, core.Validation, nil)
	rng := rand.New(rand.NewSource(6))
	type row struct{ creation int64 }
	model := map[uint64]row{}
	for i := 0; i < 3000; i++ {
		pk := uint64(rng.Intn(400))
		cr := int64(1000 + i)
		d.Upsert(kv.EncodeUint64(pk), mkRecord(uint32(pk%10), cr, 30))
		model[pk] = row{cr}
		if i%500 == 499 {
			d.FlushAll()
		}
		if i%300 == 0 {
			lo := int64(1000 + rng.Intn(i+1))
			hi := lo + int64(rng.Intn(500))
			want := 0
			for _, r := range model {
				if r.creation >= lo && r.creation <= hi {
					want++
				}
			}
			got := 0
			if err := FilterScan(d, lo, hi, func(kv.Entry) { got++ }); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("op %d window [%d,%d]: got %d want %d", i, lo, hi, got, want)
			}
		}
	}
}
