package query

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// The test record mirrors the paper's tweets: an 8-byte creation time, a
// 4-byte user id (the secondary key), and padding.
func mkRecord(userID uint32, creation int64, pad int) []byte {
	rec := make([]byte, 0, 12+pad)
	rec = kv.AppendUint64(rec, uint64(creation))
	rec = append(rec, byte(userID>>24), byte(userID>>16), byte(userID>>8), byte(userID))
	rec = append(rec, make([]byte, pad)...)
	return rec
}

func recUserID(rec []byte) ([]byte, bool) {
	if len(rec) < 12 {
		return nil, false
	}
	return rec[8:12], true
}

func recCreation(rec []byte) (int64, bool) {
	if len(rec) < 8 {
		return 0, false
	}
	return int64(kv.DecodeUint64(rec[:8])), true
}

func userKey(u uint32) []byte {
	return []byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)}
}

func newDataset(t testing.TB, strategy core.Strategy, mutate func(*core.Config)) *core.Dataset {
	t.Helper()
	env := metrics.NopEnv()
	disk := storage.NewDisk(storage.ScaledHDD(4096), env)
	store := storage.NewStore(disk, 1<<30, env)
	cfg := core.Config{
		Store:         store,
		Strategy:      strategy,
		Secondaries:   []core.SecondarySpec{{Name: "user", Extract: recUserID}},
		FilterExtract: recCreation,
		MemoryBudget:  48 << 10,
		UsePKIndex:    true,
		BloomFPR:      0.01,
		Policy:        lsm.NewTiering(0),
		Seed:          3,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// modelRow is the ground truth for one live record.
type modelRow struct {
	user     uint32
	creation int64
}

// applyWorkload drives an identical randomized insert/upsert/delete stream
// into the dataset and a model map.
func applyWorkload(t testing.TB, d *core.Dataset, seed int64, nOps, keySpace int) map[uint64]modelRow {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := make(map[uint64]modelRow)
	for i := 0; i < nOps; i++ {
		pk := uint64(rng.Intn(keySpace))
		user := uint32(rng.Intn(50))
		creation := int64(10000 + i)
		switch rng.Intn(10) {
		case 0: // delete
			if _, err := d.Delete(kv.EncodeUint64(pk)); err != nil {
				t.Fatal(err)
			}
			delete(model, pk)
		case 1, 2: // insert (ignored when present)
			ok, err := d.Insert(kv.EncodeUint64(pk), mkRecord(user, creation, 40))
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				model[pk] = modelRow{user: user, creation: creation}
			}
		default: // upsert
			if err := d.Upsert(kv.EncodeUint64(pk), mkRecord(user, creation, 40)); err != nil {
				t.Fatal(err)
			}
			model[pk] = modelRow{user: user, creation: creation}
		}
	}
	return model
}

// modelAnswer computes the expected primary keys for user in [lo, hi].
func modelAnswer(model map[uint64]modelRow, lo, hi uint32) []uint64 {
	var out []uint64
	for pk, row := range model {
		if row.user >= lo && row.user <= hi {
			out = append(out, pk)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func pksOfRecords(records []kv.Entry) []uint64 {
	out := make([]uint64, len(records))
	for i, e := range records {
		out[i] = kv.DecodeUint64(e.Key)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func pksOfKeys(keys [][]byte) []uint64 {
	out := make([]uint64, len(keys))
	for i, k := range keys {
		out[i] = kv.DecodeUint64(k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestStrategiesAnswerIdentically is the repo's strongest equivalence
// check: every maintenance strategy, queried with its applicable validation
// method(s), must return exactly the model's answer for random secondary
// range queries — regardless of flush/merge/repair timing.
func TestStrategiesAnswerIdentically(t *testing.T) {
	type variant struct {
		name     string
		strategy core.Strategy
		mutate   func(*core.Config)
		methods  []ValidationMethod
	}
	variants := []variant{
		{"eager", core.Eager, nil, []ValidationMethod{NoValidation}},
		{"validation-norepair", core.Validation, nil, []ValidationMethod{Direct, Timestamp}},
		{"validation-repair", core.Validation,
			func(c *core.Config) { c.MergeRepair = true }, []ValidationMethod{Direct, Timestamp}},
		{"validation-repair-bf", core.Validation,
			func(c *core.Config) {
				c.MergeRepair = true
				c.CorrelatedMerges = true
				c.RepairBloomOpt = true
			}, []ValidationMethod{Direct, Timestamp}},
		{"mutable-bitmap", core.MutableBitmap, nil, []ValidationMethod{Direct, Timestamp}},
		{"deleted-key", core.DeletedKey, nil, []ValidationMethod{Direct, DeletedKeyCheck}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			d := newDataset(t, v.strategy, v.mutate)
			model := applyWorkload(t, d, 99, 6000, 800)
			rng := rand.New(rand.NewSource(5))
			si := d.Secondary("user")
			for trial := 0; trial < 25; trial++ {
				lo := uint32(rng.Intn(45))
				hi := lo + uint32(rng.Intn(5))
				want := modelAnswer(model, lo, hi)
				for _, m := range v.methods {
					res, err := SecondaryRange(d, si, userKey(lo), userKey(hi), SecondaryQueryOptions{
						Validation: m,
						Lookup:     DefaultLookupConfig(),
					})
					if err != nil {
						t.Fatalf("method %v: %v", m, err)
					}
					got := pksOfRecords(res.Records)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("trial %d method %v user[%d,%d]: got %v want %v",
							trial, m, lo, hi, got, want)
					}
					// Every returned record must actually match.
					for _, e := range res.Records {
						u, _ := recUserID(e.Value)
						if len(u) != 4 {
							t.Fatal("bad record")
						}
					}
				}
			}
			// Index-only queries: Timestamp validation for pk-index
			// strategies, deleted-key trees for the deleted-key baseline.
			{
				method := Timestamp
				switch v.strategy {
				case core.Eager:
					method = NoValidation
				case core.DeletedKey:
					method = DeletedKeyCheck
				}
				for trial := 0; trial < 10; trial++ {
					lo := uint32(rng.Intn(45))
					hi := lo + uint32(rng.Intn(5))
					want := modelAnswer(model, lo, hi)
					res, err := SecondaryRange(d, si, userKey(lo), userKey(hi), SecondaryQueryOptions{
						Validation: method,
						IndexOnly:  true,
						Lookup:     DefaultLookupConfig(),
					})
					if err != nil {
						t.Fatal(err)
					}
					got := dedupe(pksOfKeys(res.Keys))
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("index-only trial %d user[%d,%d]: got %v want %v",
							trial, lo, hi, got, want)
					}
				}
			}
		})
	}
}

func dedupe(in []uint64) []uint64 {
	var out []uint64
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// TestFilterScanMatchesModel verifies range-filter scans return exactly the
// model's records under every strategy, for both recent and old predicates.
func TestFilterScanMatchesModel(t *testing.T) {
	for _, strategy := range []core.Strategy{core.Eager, core.Validation, core.MutableBitmap} {
		t.Run(strategy.String(), func(t *testing.T) {
			d := newDataset(t, strategy, nil)
			model := applyWorkload(t, d, 44, 5000, 700)
			rng := rand.New(rand.NewSource(9))
			for trial := 0; trial < 20; trial++ {
				lo := int64(10000 + rng.Intn(5000))
				hi := lo + int64(rng.Intn(2000))
				var want []uint64
				for pk, row := range model {
					if row.creation >= lo && row.creation <= hi {
						want = append(want, pk)
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				var got []uint64
				err := FilterScan(d, lo, hi, func(e kv.Entry) {
					got = append(got, kv.DecodeUint64(e.Key))
				})
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("trial %d [%d,%d]: got %d keys want %d keys\n got=%v\nwant=%v",
						trial, lo, hi, len(got), len(want), got, want)
				}
			}
		})
	}
}

// TestLookupConfigsAgree verifies every point-lookup configuration (naive,
// batched, stateful, pID, batch sizes) fetches the same records.
func TestLookupConfigsAgree(t *testing.T) {
	d := newDataset(t, core.Eager, nil)
	model := applyWorkload(t, d, 77, 5000, 900)
	si := d.Secondary("user")

	configs := map[string]LookupConfig{
		"naive":       {},
		"batch":       {Batched: true, BatchMemory: 16 << 20, EstRecordSize: 64},
		"batch-small": {Batched: true, BatchMemory: 1 << 10, EstRecordSize: 64},
		"batch-slk":   {Batched: true, BatchMemory: 16 << 20, EstRecordSize: 64, Stateful: true},
		"batch-pid":   {Batched: true, BatchMemory: 16 << 20, EstRecordSize: 64, Stateful: true, PropagateIDs: true},
		"naive-pid":   {PropagateIDs: true},
		"naive-slk":   {Stateful: true},
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		lo := uint32(rng.Intn(40))
		hi := lo + uint32(rng.Intn(8))
		want := modelAnswer(model, lo, hi)
		for name, cfg := range configs {
			res, err := SecondaryRange(d, si, userKey(lo), userKey(hi), SecondaryQueryOptions{
				Validation: NoValidation,
				Lookup:     cfg,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got := pksOfRecords(res.Records)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("config %s trial %d: got %v want %v", name, trial, got, want)
			}
		}
	}
}

// TestBatchedReducesRandomReads checks the core claim of Section 3.2: with
// a cold cache, batched lookups issue fewer random reads than naive ones.
func TestBatchedReducesRandomReads(t *testing.T) {
	env := metrics.NopEnv()
	disk := storage.NewDisk(storage.ScaledHDD(4096), env)
	store := storage.NewStore(disk, 1<<20, env) // tiny cache: misses dominate
	cfg := core.Config{
		Store:        store,
		Strategy:     core.Eager,
		Secondaries:  []core.SecondarySpec{{Name: "user", Extract: recUserID}},
		MemoryBudget: 64 << 10,
		UsePKIndex:   true,
		BloomFPR:     0.01,
		Seed:         3,
	}
	d, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		pk := uint64(rng.Int63())
		d.Insert(kv.EncodeUint64(pk), mkRecord(uint32(rng.Intn(100)), int64(i), 80))
	}
	if d.Primary().NumDiskComponents() < 3 {
		t.Skip("need several components for the effect")
	}
	si := d.Secondary("user")

	run := func(cfg LookupConfig) int64 {
		store.Cache().Reset()
		env.Counters.Reset()
		_, err := SecondaryRange(d, si, userKey(0), userKey(60), SecondaryQueryOptions{
			Validation: NoValidation,
			Lookup:     cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return env.Counters.RandomReads.Load()
	}
	naive := run(LookupConfig{})
	batched := run(LookupConfig{Batched: true, BatchMemory: 16 << 20, EstRecordSize: 128})
	if batched >= naive {
		t.Errorf("batched random reads = %d, naive = %d; batching should reduce them", batched, naive)
	}
	t.Logf("random reads: naive=%d batched=%d", naive, batched)
}
