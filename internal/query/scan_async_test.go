package query

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/maint"
)

// TestFilterScanSupersededFrozenVersion is the regression test for the
// Mutable-bitmap scan path under asynchronous flushes: a record whose
// version sits in a frozen (not yet built) memtable and is then superseded
// by an upsert — or removed by a delete — must not leak the stale frozen
// version out of FilterScan, even though memtables carry no validity
// bitmaps. The pool's only worker is wedged so the frozen window stays open
// deterministically.
func TestFilterScanSupersededFrozenVersion(t *testing.T) {
	pool := maint.NewPool(1)
	defer pool.Close()
	release := make(chan struct{})
	pool.Submit(func() { <-release }) // wedge the worker: freezes queue, builds wait

	d := newDataset(t, core.MutableBitmap, func(c *core.Config) {
		c.Maintenance = pool
		c.MemoryBudget = 4 << 10
		c.MaxFrozenMemtables = 1 << 20 // no backpressure: the test wants lag
	})

	// First version of the probe key plus enough filler to cross the
	// budget, so the write path freezes the memtable with v1 inside.
	probe := kv.EncodeUint64(7)
	if err := d.Upsert(probe, mkRecord(1, 100, 64)); err != nil {
		t.Fatal(err)
	}
	for i := uint64(100); i < 160; i++ {
		if err := d.Upsert(kv.EncodeUint64(i), mkRecord(2, 100, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Primary().NumFrozen(); got == 0 {
		t.Fatal("setup: no frozen memtable; raise the filler count")
	}

	// Supersede v1 while it is frozen; also delete one filler key whose
	// version is frozen.
	if err := d.Upsert(probe, mkRecord(3, 200, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Delete(kv.EncodeUint64(100)); err != nil {
		t.Fatal(err)
	}

	countVersions := func() (probeSeen int, deletedSeen int, userOfProbe uint32) {
		probeSeen, deletedSeen = 0, 0
		if err := FilterScan(d, 0, 1<<60, func(e kv.Entry) {
			if string(e.Key) == string(probe) {
				probeSeen++
				u, _ := recUserID(e.Value)
				userOfProbe = uint32(u[0])<<24 | uint32(u[1])<<16 | uint32(u[2])<<8 | uint32(u[3])
			}
			if string(e.Key) == string(kv.EncodeUint64(100)) {
				deletedSeen++
			}
		}); err != nil {
			t.Fatal(err)
		}
		return
	}

	// With the frozen window still open: exactly one (new) version of the
	// probe key, and the deleted key absent.
	probeSeen, deletedSeen, user := countVersions()
	if probeSeen != 1 || user != 3 {
		t.Fatalf("frozen window: probe key seen %d times, user %d (want once, user 3)", probeSeen, user)
	}
	if deletedSeen != 0 {
		t.Fatalf("frozen window: deleted key still visible (%d)", deletedSeen)
	}

	// After the batches build and merges drain, the answer is unchanged.
	close(release)
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	probeSeen, deletedSeen, user = countVersions()
	if probeSeen != 1 || user != 3 {
		t.Fatalf("after drain: probe key seen %d times, user %d (want once, user 3)", probeSeen, user)
	}
	if deletedSeen != 0 {
		t.Fatalf("after drain: deleted key visible (%d)", deletedSeen)
	}

	// Sanity: the probe key reads as v2 through the point-lookup path too.
	e, found, err := d.Primary().Get(probe)
	if err != nil || !found {
		t.Fatalf("probe key lost: found=%v err=%v", found, err)
	}
	if c, _ := recCreation(e.Value); c != 200 {
		t.Fatalf("probe key resolves to creation %d, want 200", c)
	}
}
