package query

import (
	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/memtable"
)

// FilterScan scans the primary index for records whose filter key lies in
// [lo, hi], using the component-level range filters for pruning. The set of
// components that must be read depends on the maintenance strategy
// (Sections 3.1, 4.2, 5; evaluated in Figure 19):
//
//   - Eager: filters are widened with old records on every update, so only
//     components whose filter overlaps the predicate are scanned,
//     reconciled together.
//   - Validation: filters only reflect new records; a query touching an
//     older component must also read every newer component (and memory) so
//     no overriding update is missed.
//   - Mutable-bitmap: deletes are reflected in-place through bitmaps, so
//     only overlapping components are read — and they can be scanned one by
//     one without reconciliation.
//
// emit is called once per matching record.
func FilterScan(ds *core.Dataset, lo, hi int64, emit func(kv.Entry)) error {
	extract := ds.Config().FilterExtract
	primary := ds.Primary()
	// One atomic view: a concurrent flush's frozen memtable stays visible
	// as a source newer than every disk component (see Tree.ReadView).
	mem, flushing, comps := primary.ReadView()

	check := func(e kv.Entry) {
		if extract != nil {
			if v, ok := extract(e.Value); !ok || v < lo || v > hi {
				return
			}
		}
		emit(e)
	}

	overlaps := func(m *memtable.Table) bool {
		if m == nil {
			return false
		}
		if fmin, fmax, ok := m.Filter(); ok {
			return !(fmax < lo || fmin > hi)
		}
		return m.Len() > 0
	}
	memOverlaps := overlaps(mem)
	flushingOverlaps := false
	for _, m := range flushing {
		if overlaps(m) {
			flushingOverlaps = true
			break
		}
	}

	switch ds.Config().Strategy {
	case core.MutableBitmap:
		// Scan each overlapping component independently; bitmaps already
		// reflect deletes, so no cross-component reconciliation is needed.
		for _, c := range comps {
			if c.FilterDisjoint(lo, hi) {
				continue
			}
			scan, err := c.BTree.NewScan(nil, nil)
			if err != nil {
				return err
			}
			for {
				e, ord, ok, err := scan.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if e.Anti || c.Valid.IsSet(ord) || c.Obsolete.IsSet(ord) {
					continue
				}
				check(e)
			}
		}
		if len(flushing) > 0 {
			// Memory-side sources must reconcile among themselves: a
			// version frozen by an in-flight asynchronous flush may be
			// superseded by a newer version or anti-matter in a later
			// frozen memtable or the live one, and memtables carry no
			// validity bitmaps to reflect that. (Deletes of keys living in
			// frozen memtables reach the built component's bitmap through
			// the flush batch; until the install, the anti-matter in the
			// newer memory source is the only evidence.)
			if flushingOverlaps || memOverlaps {
				return reconciledScan(primary, nil, flushing, mem, check)
			}
			return nil
		}
		if memOverlaps {
			it := mem.NewIterator(nil, nil)
			for {
				e, ok := it.Next()
				if !ok {
					break
				}
				if !e.Anti {
					check(e)
				}
			}
		}
		return nil

	case core.Validation, core.DeletedKey:
		// Correctness rule of Section 4.2: accessing an older component
		// requires accessing all newer components too, because their
		// filters were not widened by updates.
		firstIdx := -1
		for i, c := range comps {
			if !c.FilterDisjoint(lo, hi) {
				firstIdx = i
				break
			}
		}
		if firstIdx < 0 {
			if flushingOverlaps {
				// Reading the flushing table requires reading the (newer)
				// memory component too.
				return reconciledScan(primary, nil, flushing, mem, check)
			}
			if !memOverlaps {
				return nil
			}
			return reconciledScan(primary, nil, nil, mem, check)
		}
		return reconciledScan(primary, comps[firstIdx:], flushing, mem, check)

	default: // Eager
		var cands []*lsm.Component
		for _, c := range comps {
			if !c.FilterDisjoint(lo, hi) {
				cands = append(cands, c)
			}
		}
		flushArg := flushing
		if !flushingOverlaps {
			flushArg = nil
		}
		memArg := mem
		if !memOverlaps {
			memArg = nil
		}
		if len(cands) == 0 && flushArg == nil && memArg == nil {
			return nil
		}
		return reconciledScan(primary, cands, flushArg, memArg, check)
	}
}

// reconciledScan runs a full reconciled scan over the given components, the
// flushing memtables, and the live memory component (either may be empty),
// hiding anti-matter.
func reconciledScan(primary *lsm.Tree, comps []*lsm.Component, flushing []*memtable.Table, mem *memtable.Table, emit func(kv.Entry)) error {
	it, err := primary.NewMergedIterator(lsm.IterOptions{
		Components:    comps,
		Flushing:      flushing,
		Mem:           mem,
		HideAnti:      true,
		SkipInvisible: true,
	})
	if err != nil {
		return err
	}
	for {
		item, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		emit(item.Entry)
	}
}
