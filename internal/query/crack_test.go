package query

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/lsm"
)

// TestCrackOnValidateKeepsAnswersCorrect drives the query-driven
// maintenance extension: cracking must never change query answers, across
// interleaved queries, writes, flushes and merges.
func TestCrackOnValidateKeepsAnswersCorrect(t *testing.T) {
	d := newDataset(t, core.Validation, nil)
	model := applyWorkload(t, d, 55, 5000, 700)
	si := d.Secondary("user")
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 10; round++ {
		// Interleave writes so every round sees fresh obsolescence.
		for i := 0; i < 200; i++ {
			pk := uint64(rng.Intn(700))
			u := uint32(rng.Intn(50))
			if err := d.Upsert(kv.EncodeUint64(pk), mkRecord(u, int64(1000+round), 40)); err != nil {
				t.Fatal(err)
			}
			model[pk] = modelRow{user: u, creation: int64(1000 + round)}
		}
		lo := uint32(rng.Intn(45))
		hi := lo + uint32(rng.Intn(5))
		want := modelAnswer(model, lo, hi)
		for _, crack := range []bool{true, false, true} {
			res, err := SecondaryRange(d, si, userKey(lo), userKey(hi), SecondaryQueryOptions{
				Validation:      Timestamp,
				Lookup:          DefaultLookupConfig(),
				CrackOnValidate: crack,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := pksOfRecords(res.Records)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("round %d crack=%v: got %v want %v", round, crack, got, want)
			}
		}
	}
}

// TestCrackingReducesRevalidation verifies the intended effect: after a
// cracking query, a repeat of the same query finds the cracked entries
// already filtered at the scan and therefore issues fewer validation
// lookups against the primary key index.
func TestCrackingReducesRevalidation(t *testing.T) {
	d := newDataset(t, core.Validation, nil)
	// Phase 1: 3000 records for users 0-9, flushed to disk.
	for pk := uint64(0); pk < 3000; pk++ {
		if err := d.Upsert(kv.EncodeUint64(pk), mkRecord(uint32(pk%10), int64(pk), 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Phase 2: move every record to users 10-19; the old entries on disk
	// are now obsolete and only validation can tell.
	for pk := uint64(0); pk < 3000; pk++ {
		if err := d.Upsert(kv.EncodeUint64(pk), mkRecord(uint32(10+pk%10), int64(10000+pk), 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	si := d.Secondary("user")
	env := d.Env()

	run := func(crack bool) (int64, []uint64) {
		env.Counters.Reset()
		res, err := SecondaryRange(d, si, userKey(0), userKey(9), SecondaryQueryOptions{
			Validation:      Timestamp,
			Lookup:          DefaultLookupConfig(),
			CrackOnValidate: crack,
		})
		if err != nil {
			t.Fatal(err)
		}
		return env.Counters.PointLookups.Load(), pksOfRecords(res.Records)
	}
	lookups1, ans1 := run(true)
	lookups2, ans2 := run(false)
	if len(ans1) != 0 {
		t.Fatalf("query for users 0-9 should be empty, got %d", len(ans1))
	}
	if fmt.Sprint(ans1) != fmt.Sprint(ans2) {
		t.Fatal("cracking changed the answer")
	}
	if lookups2 >= lookups1 {
		t.Fatalf("second query issued %d validation lookups, first %d; cracking should shrink them",
			lookups2, lookups1)
	}
	var cracked int64
	for _, c := range si.Tree.Components() {
		cracked += c.CrackedCount()
	}
	if cracked == 0 {
		t.Fatal("no entries were cracked")
	}
	// Cracked entries are physically removed by the next merge, and the
	// answer is unchanged.
	n := si.Tree.NumDiskComponents()
	if n >= 2 {
		res, err := si.Tree.Merge(lsm.MergeSpec{Lo: 0, Hi: n, DropAnti: true, SkipInvisible: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := si.Tree.Install(res); err != nil {
			t.Fatal(err)
		}
		lookups3, ans3 := run(false)
		if fmt.Sprint(ans3) != fmt.Sprint(ans2) {
			t.Fatal("merge after cracking changed the answer")
		}
		if lookups3 > lookups2 {
			t.Fatalf("post-merge validation lookups grew: %d > %d", lookups3, lookups2)
		}
	}
}
