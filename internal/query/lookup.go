// Package query implements the paper's query-processing machinery:
//
//   - Index-to-index navigation (Section 3.2): fetching primary-index
//     records for a list of primary keys with the naive sorted algorithm or
//     the batched point lookup, optionally with stateful B+-tree cursors and
//     component-ID propagation (pID).
//   - Query validation for the Validation strategy (Section 4.3, Figure 5):
//     Direct validation (fetch + re-check) and Timestamp validation (probe
//     the primary key index).
//   - Primary-index scans with range-filter pruning (Sections 3, 5), whose
//     candidate-component rules differ per maintenance strategy.
package query

import (
	"sort"

	"repro/internal/btree"
	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/memtable"
	"repro/internal/metrics"
)

// LookupConfig selects the point-lookup optimizations of Section 3.2.
// The blocked-Bloom-filter optimization (bBF) is a property of how the
// dataset's components were built (core.Config.BlockedBloom); the remaining
// optimizations are per-query.
type LookupConfig struct {
	// Batched enables the batched point lookup: sorted keys are divided
	// into batches and, per batch, the LSM components are accessed one by
	// one from newest to oldest, so each component's pages are read in
	// monotone order.
	Batched bool
	// BatchMemory bounds the memory holding one batch's fetched records
	// (16 MB in the paper's default configuration).
	BatchMemory int
	// EstRecordSize estimates fetched-record size for batch sizing
	// (tweets are ~500 bytes).
	EstRecordSize int
	// Stateful uses stateful B+-tree lookup cursors with exponential
	// search instead of a root-to-leaf descent per key.
	Stateful bool
	// PropagateIDs prunes primary components that are strictly older than
	// the secondary component a key was found in (Jia's pID optimization).
	PropagateIDs bool
}

// DefaultLookupConfig returns the paper's fully optimized configuration.
func DefaultLookupConfig() LookupConfig {
	return LookupConfig{
		Batched:       true,
		BatchMemory:   16 << 20,
		EstRecordSize: 512,
		Stateful:      true,
	}
}

// Key is one primary key to fetch, tagged with the component ID of the
// secondary-index component it was found in (for pID pruning).
type Key struct {
	PK  []byte
	Src lsm.ID
}

// FetchRecords retrieves the newest visible record for each key from the
// primary index, invoking emit for each record found. Keys need not be
// sorted; they are sorted here (the classic fetch-list optimization), and
// with cfg.Batched the batched algorithm of Section 3.2 runs. The order of
// emitted records follows the algorithm (primary-key order without
// batching; batch-internal component order with it).
func FetchRecords(primary *lsm.Tree, keys []Key, cfg LookupConfig, emit func(kv.Entry)) error {
	if len(keys) == 0 {
		return nil
	}
	env := primary.Env()
	env.ChargeSort(len(keys))
	sort.Slice(keys, func(i, j int) bool { return kv.Compare(keys[i].PK, keys[j].PK) < 0 })

	if !cfg.Batched {
		return fetchNaive(primary, keys, cfg, emit)
	}
	return fetchBatched(primary, keys, cfg, emit)
}

// fetchNaive performs one independent point lookup per sorted key: memory
// component, then components newest to oldest, each guarded by its Bloom
// filter. Pages of different components interleave, which is exactly the
// random-I/O pattern batching avoids.
func fetchNaive(primary *lsm.Tree, keys []Key, cfg LookupConfig, emit func(kv.Entry)) error {
	env := primary.Env()
	mem, flushing, comps := primary.ReadView()
	cursors := make([]*lsmLookup, len(comps))
	for i, c := range comps {
		cursors[i] = newLSMLookup(c, cfg.Stateful)
	}
	for i := range keys {
		k := keys[i]
		env.Counters.PointLookups.Add(1)
		if e, ok := memGet(env, mem, flushing, k.PK); ok {
			if !e.Anti {
				emit(e)
			}
			continue
		}
		for ci := len(comps) - 1; ci >= 0; ci-- {
			c := comps[ci]
			if cfg.PropagateIDs && c.ID.MaxTS < k.Src.MinTS {
				continue // component too old to hold this version
			}
			if !c.MayContain(env, k.PK) {
				continue
			}
			e, ord, found, err := cursors[ci].lookup(k.PK)
			if err != nil {
				return err
			}
			if !found {
				continue
			}
			if c.Valid.IsSet(ord) {
				break // deleted via mutable bitmap
			}
			if !e.Anti {
				emit(e)
			}
			break
		}
	}
	return nil
}

// fetchBatched implements the batched point lookup (Section 3.2): sorted
// keys are split into batches sized by BatchMemory; within a batch the
// memory component and then each disk component (newest to oldest) are
// probed for every not-yet-found key, so each component's leaf pages are
// accessed in monotone order. A batch terminates early once every key is
// found.
func fetchBatched(primary *lsm.Tree, keys []Key, cfg LookupConfig, emit func(kv.Entry)) error {
	env := primary.Env()
	mem, flushing, comps := primary.ReadView()

	est := cfg.EstRecordSize
	if est <= 0 {
		est = 512
	}
	batchKeys := 1
	if cfg.BatchMemory > 0 {
		batchKeys = cfg.BatchMemory / est
	}
	if batchKeys < 1 {
		batchKeys = 1
	}

	found := make([]bool, len(keys))
	for start := 0; start < len(keys); start += batchKeys {
		end := start + batchKeys
		if end > len(keys) {
			end = len(keys)
		}
		batch := keys[start:end]
		bfound := found[start:end]
		remaining := len(batch)

		// Memory components first (newest), then the frozen ones being
		// flushed, newest to oldest.
		for i := range batch {
			env.Counters.PointLookups.Add(1)
			if e, ok := memGet(env, mem, flushing, batch[i].PK); ok {
				bfound[i] = true
				remaining--
				if !e.Anti {
					emit(e)
				}
			}
		}
		// Disk components newest to oldest; a fresh stateful cursor per
		// component per batch keeps page access monotone.
		for ci := len(comps) - 1; ci >= 0 && remaining > 0; ci-- {
			c := comps[ci]
			cur := newLSMLookup(c, cfg.Stateful)
			for i := range batch {
				if bfound[i] {
					continue
				}
				if cfg.PropagateIDs && c.ID.MaxTS < batch[i].Src.MinTS {
					continue
				}
				if !c.MayContain(env, batch[i].PK) {
					continue
				}
				e, ord, ok, err := cur.lookup(batch[i].PK)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				bfound[i] = true
				remaining--
				if c.Valid.IsSet(ord) {
					continue // deleted via mutable bitmap
				}
				if !e.Anti {
					emit(e)
				}
			}
		}
	}
	return nil
}

// memGet probes the live memory component and then the frozen flushing
// memtables newest-first, charging one memtable operation per table probed.
func memGet(env *metrics.Env, mem *memtable.Table, flushing []*memtable.Table, pk []byte) (kv.Entry, bool) {
	env.ChargeMemtable()
	if e, ok := mem.Get(pk); ok {
		return e, true
	}
	for i := len(flushing) - 1; i >= 0; i-- {
		env.ChargeMemtable()
		if e, ok := flushing[i].Get(pk); ok {
			return e, true
		}
	}
	return kv.Entry{}, false
}

// lsmLookup wraps a component's B+-tree point lookups, optionally stateful.
type lsmLookup struct {
	cur *btree.LookupCursor
}

func newLSMLookup(c *lsm.Component, stateful bool) *lsmLookup {
	return &lsmLookup{cur: c.BTree.NewLookupCursor(stateful)}
}

func (l *lsmLookup) lookup(pk []byte) (kv.Entry, int64, bool, error) {
	return l.cur.Lookup(pk)
}

// SortRecordsByPK sorts fetched records back into primary-key order
// (Figure 12d's "batching plus sorting" plan) and charges the sort.
func SortRecordsByPK(env *metrics.Env, records []kv.Entry) {
	env.ChargeSort(len(records))
	sort.Slice(records, func(i, j int) bool {
		return kv.Compare(records[i].Key, records[j].Key) < 0
	})
}
