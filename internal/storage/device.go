package storage

import "repro/internal/metrics"

// Device is the page-device abstraction beneath Store: append-only,
// page-granular component files plus the lifecycle hooks a persistent
// backend needs (sync, listing, shutdown). Two implementations exist:
//
//   - *Disk (this package): the paper's simulated device. Every access is
//     charged to the virtual clock per the device Profile; nothing survives
//     the process.
//   - filedev.Device (internal/storage/filedev): real files under a data
//     directory with batched appends and explicit fsync. Accesses update
//     the event counters but not the virtual clock — wall time is the
//     measurement there.
//
// All methods must be safe for concurrent use.
type Device interface {
	// Profile returns the device cost profile (page size, seek/transfer
	// costs, read-ahead window). File-backed devices still carry a profile:
	// the page size defines the on-disk layout and the read-ahead window
	// drives Store prefetching.
	Profile() Profile
	// PageSize returns the device page size in bytes.
	PageSize() int
	// Create allocates a new empty component file and returns its ID.
	// File IDs are never reused within one device lifetime.
	Create() FileID
	// Delete removes a component file (component drop after a merge).
	Delete(id FileID)
	// AppendPageEnv appends one page (at most PageSize bytes) to the file,
	// charging the given metrics environment, and returns its page number.
	AppendPageEnv(env *metrics.Env, id FileID, data []byte) (int, error)
	// ReadPageEnv reads one page, charging env; seqHint marks scan
	// accesses. The returned slice must not be modified.
	ReadPageEnv(env *metrics.Env, id FileID, page int, seqHint bool) ([]byte, error)
	// PrefetchPageEnv reads one page as part of a device read-ahead window:
	// the access is part of an already-positioned sequential stream, so it
	// is charged at streaming (transfer-only) cost and never pays a seek,
	// even when cached pages inside the window were skipped over.
	PrefetchPageEnv(env *metrics.Env, id FileID, page int) ([]byte, error)
	// NumPages returns the current length of the file in pages.
	NumPages(id FileID) (int, error)
	// List returns the IDs of all live component files, in ascending order
	// (reopen-time garbage collection diffs this against the manifest).
	List() []FileID
	// BytesWritten reports the total bytes ever appended (write
	// amplification accounting).
	BytesWritten() int64
	// Sync makes all completed appends durable. A no-op on the simulated
	// device.
	Sync() error
	// Close syncs and releases the device. A no-op on the simulated device.
	Close() error
}

// ManifestDevice is implemented by devices that can durably persist a small
// manifest blob (component metadata, file IDs, epochs) next to their data
// files. SaveManifest must act as the durability point of a component
// install: the device is synced first, then the manifest replaces the
// previous one atomically, so a crash leaves either the old or the new
// manifest — never a mix — and every file the surviving manifest references
// is durable.
type ManifestDevice interface {
	Device
	// SaveManifest syncs the device, then atomically replaces the manifest.
	SaveManifest(data []byte) error
	// LoadManifest returns the manifest written by a previous session, or
	// (nil, nil) when none exists.
	LoadManifest() ([]byte, error)
}

// WALSyncDevice is implemented by WAL devices that can make the log area
// durable independently of an append — the primitive group commit is built
// on: committers append their records unsynced and a leader issues one
// SyncWAL covering all of them.
type WALSyncDevice interface {
	WALDevice
	// SyncWAL fsyncs the WAL area, covering every append that completed
	// before the call. A failure poisons the log area (the durable suffix
	// is indeterminate) and is returned to the caller.
	SyncWAL() error
}

// WALDevice is implemented by devices with a durable write-ahead-log area.
// The log is a raw byte stream owned by the wal package; the device only
// appends and reads it.
type WALDevice interface {
	// AppendWAL appends encoded log records; with sync set the append is
	// fsynced before returning (group commit durability).
	AppendWAL(data []byte, sync bool) error
	// LoadWAL returns the whole log image written by previous sessions
	// (nil when none). A torn tail from a crash mid-append is expected;
	// the decoder stops at the first corrupt record.
	LoadWAL() ([]byte, error)
	// ResetWAL atomically replaces the log area with data (WAL
	// compaction: records covered by durable components are dropped, and
	// so is any torn tail — later appends must never land behind garbage).
	// Only call while the log is quiescent (reopen, clean shutdown).
	ResetWAL(data []byte) error
}

var _ Device = (*Disk)(nil)
