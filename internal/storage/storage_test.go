package storage

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/metrics"
)

func newHDDDisk() (*Disk, *metrics.Env) {
	env := metrics.NewEnv()
	return NewDisk(HDD(), env), env
}

// pageDev is the device surface the must-helpers drive; both Disk and
// Store satisfy it. The helpers keep accounting-focused tests honest: a
// dropped device error would let a failing append or read pass as a
// counter mismatch (or worse, not at all).
type pageDev interface {
	AppendPage(FileID, []byte) (int, error)
	ReadPage(FileID, int, bool) ([]byte, error)
}

func mustAppendPage(t *testing.T, d pageDev, f FileID, data []byte) {
	t.Helper()
	if _, err := d.AppendPage(f, data); err != nil {
		t.Fatal(err)
	}
}

func mustReadPage(t *testing.T, d pageDev, f FileID, page int, seq bool) []byte {
	t.Helper()
	data, err := d.ReadPage(f, page, seq)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCreateAppendRead(t *testing.T) {
	d, _ := newHDDDisk()
	f := d.Create()
	page := bytes.Repeat([]byte{0xaa}, 1000)
	n, err := d.AppendPage(f, page)
	if err != nil || n != 0 {
		t.Fatalf("AppendPage = %d, %v", n, err)
	}
	got, err := d.ReadPage(f, 0, false)
	if err != nil || !bytes.Equal(got, page) {
		t.Fatalf("ReadPage mismatch: %v", err)
	}
	if _, err := d.ReadPage(f, 1, false); err != ErrNoSuchPage {
		t.Fatalf("out-of-range read error = %v", err)
	}
	if np, err := d.NumPages(f); err != nil || np != 1 {
		t.Fatalf("NumPages = %d, %v", np, err)
	}
}

func TestDeleteFile(t *testing.T) {
	d, _ := newHDDDisk()
	f := d.Create()
	mustAppendPage(t, d, f, []byte{1})
	d.Delete(f)
	if _, err := d.ReadPage(f, 0, false); err != ErrNoSuchFile {
		t.Fatalf("read after delete = %v", err)
	}
	if _, err := d.AppendPage(f, []byte{1}); err != ErrNoSuchFile {
		t.Fatalf("append after delete = %v", err)
	}
}

func TestPageOverflowRejected(t *testing.T) {
	d, _ := newHDDDisk()
	f := d.Create()
	if _, err := d.AppendPage(f, make([]byte, d.PageSize()+1)); err == nil {
		t.Fatal("oversized page accepted")
	}
}

func TestSequentialVsRandomAccounting(t *testing.T) {
	d, env := newHDDDisk()
	f := d.Create()
	for i := 0; i < 10; i++ {
		mustAppendPage(t, d, f, []byte{byte(i)})
	}
	env.Counters.Reset()
	// First read: random (head parked elsewhere).
	mustReadPage(t, d, f, 0, true)
	// Next reads in order: sequential.
	for i := 1; i < 5; i++ {
		mustReadPage(t, d, f, i, true)
	}
	// Jump: random again.
	mustReadPage(t, d, f, 9, true)
	s := env.Counters.Snapshot()
	if s.RandomReads != 2 || s.SequentialReads != 4 {
		t.Fatalf("random=%d sequential=%d, want 2/4", s.RandomReads, s.SequentialReads)
	}
}

func TestCrossFileInterleavingBreaksSequentiality(t *testing.T) {
	// The single-head model: alternating between two files makes every
	// access random even if each file is read in order. This is the
	// mechanism that makes batched point lookups win (Section 3.2).
	d, env := newHDDDisk()
	f1, f2 := d.Create(), d.Create()
	for i := 0; i < 5; i++ {
		mustAppendPage(t, d, f1, []byte{1})
		mustAppendPage(t, d, f2, []byte{2})
	}
	env.Counters.Reset()
	for i := 0; i < 5; i++ {
		mustReadPage(t, d, f1, i, true)
		mustReadPage(t, d, f2, i, true)
	}
	s := env.Counters.Snapshot()
	if s.SequentialReads != 0 || s.RandomReads != 10 {
		t.Fatalf("random=%d sequential=%d, want 10/0", s.RandomReads, s.SequentialReads)
	}
}

func TestClockChargesSeekAndTransfer(t *testing.T) {
	d, env := newHDDDisk()
	f := d.Create()
	mustAppendPage(t, d, f, []byte{1})
	mustAppendPage(t, d, f, []byte{2})
	before := env.Clock.Now()
	mustReadPage(t, d, f, 0, false) // random: seek + transfer
	afterRandom := env.Clock.Now()
	mustReadPage(t, d, f, 1, false) // adjacent: transfer only
	afterSeq := env.Clock.Now()

	p := d.Profile()
	if afterRandom-before != p.Seek+p.TransferPerPage {
		t.Errorf("random read charged %v, want %v", afterRandom-before, p.Seek+p.TransferPerPage)
	}
	if afterSeq-afterRandom != p.TransferPerPage {
		t.Errorf("sequential read charged %v, want %v", afterSeq-afterRandom, p.TransferPerPage)
	}
}

func TestWritesChargedSequentially(t *testing.T) {
	d, env := newHDDDisk()
	f := d.Create()
	before := env.Clock.Now()
	mustAppendPage(t, d, f, make([]byte, 100))
	if got := env.Clock.Now() - before; got != d.Profile().TransferPerPage {
		t.Errorf("write charged %v, want transfer %v", got, d.Profile().TransferPerPage)
	}
	if d.BytesWritten() != 100 {
		t.Errorf("BytesWritten = %d", d.BytesWritten())
	}
}

func TestProfiles(t *testing.T) {
	h, s := HDD(), SSD()
	if h.PageSize != 128<<10 || s.PageSize != 32<<10 {
		t.Error("profile page sizes diverge from the paper's setup")
	}
	if h.Seek <= s.Seek {
		t.Error("HDD seek must dwarf SSD access latency")
	}
	sc := ScaledHDD(4096)
	if sc.PageSize != 4096 || sc.TransferPerPage <= 0 || sc.TransferPerPage >= h.TransferPerPage {
		t.Errorf("ScaledHDD transfer = %v", sc.TransferPerPage)
	}
}

func TestStoreCachingAndReadAhead(t *testing.T) {
	env := metrics.NewEnv()
	prof := ScaledHDD(512)
	prof.ReadAheadPages = 4
	d := NewDisk(prof, env)
	store := NewStore(d, 1<<20, env)
	f := store.Create()
	for i := 0; i < 16; i++ {
		mustAppendPage(t, store, f, []byte{byte(i)})
	}
	// Scan access with read-ahead: first miss prefetches the window.
	env.Counters.Reset()
	mustReadPage(t, store, f, 0, true)
	s := env.Counters.Snapshot()
	if s.RandomReads+s.SequentialReads != 4 {
		t.Fatalf("read-ahead fetched %d pages, want 4", s.RandomReads+s.SequentialReads)
	}
	// The next 3 pages are cache hits.
	env.Counters.Reset()
	for i := 1; i < 4; i++ {
		mustReadPage(t, store, f, i, true)
	}
	s = env.Counters.Snapshot()
	if s.CacheHits != 3 || s.RandomReads+s.SequentialReads != 0 {
		t.Fatalf("hits=%d diskReads=%d, want 3/0", s.CacheHits, s.RandomReads+s.SequentialReads)
	}
	// Point reads (no hint) do not prefetch.
	env.Counters.Reset()
	mustReadPage(t, store, f, 10, false)
	s = env.Counters.Snapshot()
	if s.RandomReads != 1 || s.CacheMisses != 1 {
		t.Fatalf("point read: random=%d misses=%d", s.RandomReads, s.CacheMisses)
	}
}

func TestStoreDeleteInvalidatesCache(t *testing.T) {
	env := metrics.NewEnv()
	d := NewDisk(ScaledHDD(512), env)
	store := NewStore(d, 1<<20, env)
	f := store.Create()
	mustAppendPage(t, store, f, []byte{1})
	mustReadPage(t, store, f, 0, false) // cached
	store.Delete(f)
	if _, err := store.ReadPage(f, 0, false); err == nil {
		t.Fatal("read of deleted file served from cache")
	}
}

func TestCacheHitCostCheaperThanDisk(t *testing.T) {
	env := metrics.NewEnv()
	d := NewDisk(HDD(), env)
	store := NewStore(d, 1<<30, env)
	f := store.Create()
	mustAppendPage(t, store, f, []byte{1})
	mustReadPage(t, store, f, 0, false)
	before := env.Clock.Now()
	mustReadPage(t, store, f, 0, false) // hit
	hitCost := env.Clock.Now() - before
	if hitCost <= 0 || hitCost >= time.Millisecond {
		t.Errorf("cache hit cost = %v, want small positive", hitCost)
	}
}
