package storage

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/metrics"
)

func newHDDDisk() (*Disk, *metrics.Env) {
	env := metrics.NewEnv()
	return NewDisk(HDD(), env), env
}

func TestCreateAppendRead(t *testing.T) {
	d, _ := newHDDDisk()
	f := d.Create()
	page := bytes.Repeat([]byte{0xaa}, 1000)
	n, err := d.AppendPage(f, page)
	if err != nil || n != 0 {
		t.Fatalf("AppendPage = %d, %v", n, err)
	}
	got, err := d.ReadPage(f, 0, false)
	if err != nil || !bytes.Equal(got, page) {
		t.Fatalf("ReadPage mismatch: %v", err)
	}
	if _, err := d.ReadPage(f, 1, false); err != ErrNoSuchPage {
		t.Fatalf("out-of-range read error = %v", err)
	}
	if np, _ := d.NumPages(f); np != 1 {
		t.Fatalf("NumPages = %d", np)
	}
}

func TestDeleteFile(t *testing.T) {
	d, _ := newHDDDisk()
	f := d.Create()
	d.AppendPage(f, []byte{1})
	d.Delete(f)
	if _, err := d.ReadPage(f, 0, false); err != ErrNoSuchFile {
		t.Fatalf("read after delete = %v", err)
	}
	if _, err := d.AppendPage(f, []byte{1}); err != ErrNoSuchFile {
		t.Fatalf("append after delete = %v", err)
	}
}

func TestPageOverflowRejected(t *testing.T) {
	d, _ := newHDDDisk()
	f := d.Create()
	if _, err := d.AppendPage(f, make([]byte, d.PageSize()+1)); err == nil {
		t.Fatal("oversized page accepted")
	}
}

func TestSequentialVsRandomAccounting(t *testing.T) {
	d, env := newHDDDisk()
	f := d.Create()
	for i := 0; i < 10; i++ {
		d.AppendPage(f, []byte{byte(i)})
	}
	env.Counters.Reset()
	// First read: random (head parked elsewhere).
	d.ReadPage(f, 0, true)
	// Next reads in order: sequential.
	for i := 1; i < 5; i++ {
		d.ReadPage(f, i, true)
	}
	// Jump: random again.
	d.ReadPage(f, 9, true)
	s := env.Counters.Snapshot()
	if s.RandomReads != 2 || s.SequentialReads != 4 {
		t.Fatalf("random=%d sequential=%d, want 2/4", s.RandomReads, s.SequentialReads)
	}
}

func TestCrossFileInterleavingBreaksSequentiality(t *testing.T) {
	// The single-head model: alternating between two files makes every
	// access random even if each file is read in order. This is the
	// mechanism that makes batched point lookups win (Section 3.2).
	d, env := newHDDDisk()
	f1, f2 := d.Create(), d.Create()
	for i := 0; i < 5; i++ {
		d.AppendPage(f1, []byte{1})
		d.AppendPage(f2, []byte{2})
	}
	env.Counters.Reset()
	for i := 0; i < 5; i++ {
		d.ReadPage(f1, i, true)
		d.ReadPage(f2, i, true)
	}
	s := env.Counters.Snapshot()
	if s.SequentialReads != 0 || s.RandomReads != 10 {
		t.Fatalf("random=%d sequential=%d, want 10/0", s.RandomReads, s.SequentialReads)
	}
}

func TestClockChargesSeekAndTransfer(t *testing.T) {
	d, env := newHDDDisk()
	f := d.Create()
	d.AppendPage(f, []byte{1})
	d.AppendPage(f, []byte{2})
	before := env.Clock.Now()
	d.ReadPage(f, 0, false) // random: seek + transfer
	afterRandom := env.Clock.Now()
	d.ReadPage(f, 1, false) // adjacent: transfer only
	afterSeq := env.Clock.Now()

	p := d.Profile()
	if afterRandom-before != p.Seek+p.TransferPerPage {
		t.Errorf("random read charged %v, want %v", afterRandom-before, p.Seek+p.TransferPerPage)
	}
	if afterSeq-afterRandom != p.TransferPerPage {
		t.Errorf("sequential read charged %v, want %v", afterSeq-afterRandom, p.TransferPerPage)
	}
}

func TestWritesChargedSequentially(t *testing.T) {
	d, env := newHDDDisk()
	f := d.Create()
	before := env.Clock.Now()
	d.AppendPage(f, make([]byte, 100))
	if got := env.Clock.Now() - before; got != d.Profile().TransferPerPage {
		t.Errorf("write charged %v, want transfer %v", got, d.Profile().TransferPerPage)
	}
	if d.BytesWritten() != 100 {
		t.Errorf("BytesWritten = %d", d.BytesWritten())
	}
}

func TestProfiles(t *testing.T) {
	h, s := HDD(), SSD()
	if h.PageSize != 128<<10 || s.PageSize != 32<<10 {
		t.Error("profile page sizes diverge from the paper's setup")
	}
	if h.Seek <= s.Seek {
		t.Error("HDD seek must dwarf SSD access latency")
	}
	sc := ScaledHDD(4096)
	if sc.PageSize != 4096 || sc.TransferPerPage <= 0 || sc.TransferPerPage >= h.TransferPerPage {
		t.Errorf("ScaledHDD transfer = %v", sc.TransferPerPage)
	}
}

func TestStoreCachingAndReadAhead(t *testing.T) {
	env := metrics.NewEnv()
	prof := ScaledHDD(512)
	prof.ReadAheadPages = 4
	d := NewDisk(prof, env)
	store := NewStore(d, 1<<20, env)
	f := store.Create()
	for i := 0; i < 16; i++ {
		store.AppendPage(f, []byte{byte(i)})
	}
	// Scan access with read-ahead: first miss prefetches the window.
	env.Counters.Reset()
	store.ReadPage(f, 0, true)
	s := env.Counters.Snapshot()
	if s.RandomReads+s.SequentialReads != 4 {
		t.Fatalf("read-ahead fetched %d pages, want 4", s.RandomReads+s.SequentialReads)
	}
	// The next 3 pages are cache hits.
	env.Counters.Reset()
	for i := 1; i < 4; i++ {
		store.ReadPage(f, i, true)
	}
	s = env.Counters.Snapshot()
	if s.CacheHits != 3 || s.RandomReads+s.SequentialReads != 0 {
		t.Fatalf("hits=%d diskReads=%d, want 3/0", s.CacheHits, s.RandomReads+s.SequentialReads)
	}
	// Point reads (no hint) do not prefetch.
	env.Counters.Reset()
	store.ReadPage(f, 10, false)
	s = env.Counters.Snapshot()
	if s.RandomReads != 1 || s.CacheMisses != 1 {
		t.Fatalf("point read: random=%d misses=%d", s.RandomReads, s.CacheMisses)
	}
}

func TestStoreDeleteInvalidatesCache(t *testing.T) {
	env := metrics.NewEnv()
	d := NewDisk(ScaledHDD(512), env)
	store := NewStore(d, 1<<20, env)
	f := store.Create()
	store.AppendPage(f, []byte{1})
	store.ReadPage(f, 0, false) // cached
	store.Delete(f)
	if _, err := store.ReadPage(f, 0, false); err == nil {
		t.Fatal("read of deleted file served from cache")
	}
}

func TestCacheHitCostCheaperThanDisk(t *testing.T) {
	env := metrics.NewEnv()
	d := NewDisk(HDD(), env)
	store := NewStore(d, 1<<30, env)
	f := store.Create()
	store.AppendPage(f, []byte{1})
	store.ReadPage(f, 0, false)
	before := env.Clock.Now()
	store.ReadPage(f, 0, false) // hit
	hitCost := env.Clock.Now() - before
	if hitCost <= 0 || hitCost >= time.Millisecond {
		t.Errorf("cache hit cost = %v, want small positive", hitCost)
	}
}
