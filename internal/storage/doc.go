// Package storage provides the page-device layer underneath every LSM
// component, behind the Device interface: page-granular, append-only
// component files created by flush/merge bulk loads and read by point
// lookups and scans.
//
// # Backends
//
// Two Device implementations exist:
//
//   - The simulated device (*Disk, this package) stands in for the paper's
//     7200 rpm SATA hard disks and SSD (Section 6.1). Pages live in memory;
//     every read is classified as sequential or random against a single
//     head position and charged to the virtual clock per the device
//     Profile (seek + transfer for random reads, transfer only for
//     sequential ones; LSM writes are always sequential bulk loads).
//     Nothing survives process exit — crash/recovery is simulated by
//     discarding memory components.
//
//   - The file-backed device (internal/storage/filedev) maps each
//     component file to a real file under a data directory, batches
//     appends, fsyncs on WAL commit and component install, and persists a
//     manifest so a store can be reopened after a clean shutdown or a
//     crash. See that package's documentation for the layout.
//
// # WAL durability and group commit
//
// Devices with a durable log area implement WALDevice (append, load,
// atomic reset). WALSyncDevice adds SyncWAL — an fsync of the log area
// decoupled from any append — which is the primitive group commit builds
// on: concurrent committers append their commit records unsynced, park on
// a shared commit window (filedev.GroupSyncer), and a leader issues one
// SyncWAL covering all of them. One fsync then acknowledges a whole group
// of writes instead of one, which is the difference between
// fsync-rate-bound and device-bound ingest on the file backend. A failed
// SyncWAL poisons the log area: the durable suffix is indeterminate, so
// the device refuses further log appends rather than risk silently
// committing a write whose failure was already reported.
//
// # What the cost model does (and doesn't) measure on real disks
//
// The virtual clock and its Profile describe the *simulated* device only.
// On the file backend, reads and writes still update the event counters
// (pages written, sequential/random reads, cache hits), so the access
// pattern remains observable, but the virtual clock is NOT advanced for
// I/O: seek charges would be fiction on a kernel page cache and modern
// media, and the honest figure for a real device is wall-clock time. CPU
// charges (comparisons, memtable operations) still tick the clock, so
// simulated time on the file backend reflects compute only and must not be
// compared against simulated-device numbers.
//
// Store combines a Device with the shared LRU buffer cache and implements
// the paper's 4 MB scan read-ahead: a missing page read with the scan hint
// prefetches the rest of the device read-ahead window at streaming cost.
package storage
