package storage

import (
	"repro/internal/cache"
	"repro/internal/metrics"
)

// PageReader is the read interface consumed by B+-tree readers and scans.
type PageReader interface {
	// ReadPage fetches a page; seqHint marks scan accesses.
	ReadPage(id FileID, page int, seqHint bool) ([]byte, error)
	// PageSize returns the device page size.
	PageSize() int
}

// Store combines a page device with the LRU buffer cache and charges the
// virtual clock for each access. It is the single storage handle shared by
// every index of a dataset (as the buffer cache is shared in AsterixDB).
type Store struct {
	dev   Device
	cache *cache.LRU
	env   *metrics.Env
}

// NewStore wraps dev with a buffer cache of cacheBytes capacity.
func NewStore(dev Device, cacheBytes int64, env *metrics.Env) *Store {
	pages := int(cacheBytes / int64(dev.PageSize()))
	return &Store{dev: dev, cache: cache.NewLRU(pages), env: env}
}

// WithEnv returns a Store view sharing this store's device and buffer cache
// but charging the given metrics environment. Background maintenance uses
// it to account its I/O on a separate lane (clock) while keeping the event
// counters and cache state global.
func (s *Store) WithEnv(env *metrics.Env) *Store {
	return &Store{dev: s.dev, cache: s.cache, env: env}
}

// Device returns the underlying page device (for file create/append/delete
// and, on durable backends, sync/manifest access).
func (s *Store) Device() Device { return s.dev }

// Cache returns the buffer cache.
func (s *Store) Cache() *cache.LRU { return s.cache }

// Env returns the metrics environment.
func (s *Store) Env() *metrics.Env { return s.env }

// PageSize returns the device page size.
func (s *Store) PageSize() int { return s.dev.PageSize() }

// ReadPage serves a page from the buffer cache, falling through to the
// device on a miss and installing the page afterwards.
//
// When seqHint is set (scans), a miss triggers device read-ahead: the
// following ReadAheadPages-1 pages are prefetched into the cache at
// sequential transfer cost, modelling the paper's 4 MB scan read-ahead.
// Pages of the window that are already cached are skipped without touching
// the device, without promoting them in the LRU order (a prefetch is not a
// use), and without breaking the streaming cost of the pages behind them —
// the window was opened by one seek and never pays another.
func (s *Store) ReadPage(id FileID, page int, seqHint bool) ([]byte, error) {
	key := cache.PageKey{File: uint64(id), Page: page}
	if data, ok := s.cache.Get(key); ok {
		s.env.Counters.CacheHits.Add(1)
		s.env.Clock.Advance(s.env.CPU.CacheHit)
		return data, nil
	}
	s.env.Counters.CacheMisses.Add(1)
	data, err := s.dev.ReadPageEnv(s.env, id, page, seqHint)
	if err != nil {
		return nil, err
	}
	s.cache.Put(key, data)
	if seqHint {
		if n, err := s.dev.NumPages(id); err == nil {
			end := page + s.dev.Profile().ReadAheadPages
			if end > n {
				end = n
			}
			for p := page + 1; p < end; p++ {
				pk := cache.PageKey{File: uint64(id), Page: p}
				if s.cache.Contains(pk) {
					continue
				}
				d, err := s.dev.PrefetchPageEnv(s.env, id, p)
				if err != nil {
					break
				}
				s.cache.Put(pk, d)
			}
		}
	}
	return data, nil
}

// Create allocates a new component file.
func (s *Store) Create() FileID { return s.dev.Create() }

// AppendPage appends a page to a component file being bulk-loaded.
func (s *Store) AppendPage(id FileID, data []byte) (int, error) {
	return s.dev.AppendPageEnv(s.env, id, data)
}

// Delete drops a component file and invalidates its cached pages.
func (s *Store) Delete(id FileID) {
	s.cache.InvalidateFile(uint64(id))
	s.dev.Delete(id)
}

// NumPages returns the length of a file in pages.
func (s *Store) NumPages(id FileID) (int, error) { return s.dev.NumPages(id) }

var _ PageReader = (*Store)(nil)
