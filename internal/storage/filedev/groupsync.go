package filedev

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// GroupSyncer coalesces concurrent WAL commit fsyncs into group commits.
// Committers follow the wal.GroupCommitter protocol: Announce intent,
// append the commit record to the WAL area (unsynced), then Wait. Wait
// joins the open commit group; the group's first member is its leader and
// issues one SyncWAL covering every member, then wakes them all with the
// result. While that fsync is in flight the NEXT group accumulates — on a
// loaded system the group size grows exactly as fast as commits arrive,
// and the fsync rate is bounded by the device, not the commit rate.
//
// The stranded-writer hazard is fixed by construction rather than by
// tuning: a leader only ever waits for committers that have ANNOUNCED
// intent but not yet joined (they are mid-append and will arrive in
// microseconds), bounded by maxDelay. A lone committer sees zero announced
// peers and fsyncs immediately — no maxDelay is ever paid waiting for
// followers that were never coming.
//
// Error delivery is per group: a failed covering fsync is returned to
// exactly the members of that group, and to no one else. (The device
// additionally poisons its WAL area, so later commits fail with their own
// poisoned-log error instead of inheriting this group's.)
type GroupSyncer struct {
	syncFn   func() error
	maxDelay time.Duration
	counters *metrics.Counters
	sleeper  metrics.Sleeper

	mu        sync.Mutex
	cond      *sync.Cond
	announced int          // committers announced but not yet joined/retracted
	cur       *commitGroup // open group accepting joiners (nil when none)
	syncing   bool         // a leader's fsync is in flight
}

// commitGroup is one commit window: everyone parked on done shares the
// covering fsync's result.
type commitGroup struct {
	done    chan struct{}
	err     error
	commits int64 // committed writes this group's fsync covers
}

// NewGroupSyncer builds a group syncer over the device's WAL area.
// maxDelay bounds how long a leader holds the group open for announced
// stragglers (0 means never wait — announced committers join the next
// group instead). counters, when non-nil, accumulate GroupCommitBatches
// and GroupCommitWaiters.
func NewGroupSyncer(dev *Device, maxDelay time.Duration, counters *metrics.Counters) *GroupSyncer {
	return newGroupSyncer(dev.SyncWAL, maxDelay, counters)
}

// walSyncer is the slice of the device surface a group syncer needs. It
// matches storage.WALSyncDevice's SyncWAL without importing it, so any
// wrapper that preserves WAL sync semantics (the deterministic-simulation
// fault injector wraps the file device this way) can stand in for *Device.
type walSyncer interface{ SyncWAL() error }

// NewGroupSyncerOver is NewGroupSyncer over any WAL-syncing device,
// wrapped or raw.
func NewGroupSyncerOver(dev walSyncer, maxDelay time.Duration, counters *metrics.Counters) *GroupSyncer {
	return newGroupSyncer(dev.SyncWAL, maxDelay, counters)
}

// newGroupSyncer is the testable constructor over an arbitrary sync
// function.
func newGroupSyncer(syncFn func() error, maxDelay time.Duration, counters *metrics.Counters) *GroupSyncer {
	g := &GroupSyncer{syncFn: syncFn, maxDelay: maxDelay, counters: counters, sleeper: metrics.WallSleeper()}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// SetSleeper replaces the time source behind the hold-open window (real
// time by default). Deterministic simulation calls this before the syncer
// sees traffic; a nil Sleeper restores the default.
func (g *GroupSyncer) SetSleeper(s metrics.Sleeper) {
	if s == nil {
		s = metrics.WallSleeper()
	}
	g.mu.Lock()
	g.sleeper = s
	g.mu.Unlock()
}

// Announce declares an imminent commit append. Every Announce must be
// balanced by exactly one Wait or Retract.
func (g *GroupSyncer) Announce() {
	g.mu.Lock()
	g.announced++
	g.mu.Unlock()
}

// Retract withdraws an announced commit whose append failed, releasing any
// leader holding its group open for it.
func (g *GroupSyncer) Retract() {
	g.mu.Lock()
	g.announced--
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Wait joins the open commit group and blocks until a covering fsync
// completes, returning its result. The caller's commit records must be
// fully appended before the call: the covering fsync is only issued after
// the group stops accepting joiners, so every member's bytes are under it.
// commits is the number of committed writes this waiter carries (a
// deferred batch parks once for its whole batch).
func (g *GroupSyncer) Wait(commits int64) error {
	g.mu.Lock()
	g.announced--
	g.cond.Broadcast() // a leader may be holding its group open for us
	if g.cur != nil {
		// Follower: park on the open group; its leader fsyncs for us.
		grp := g.cur
		grp.commits += commits
		g.mu.Unlock()
		<-grp.done
		return grp.err
	}
	// Leader: open a group, let followers accumulate while any in-flight
	// fsync finishes, then close the group and fsync for everyone in it.
	grp := &commitGroup{done: make(chan struct{}), commits: commits}
	g.cur = grp
	for g.syncing {
		g.cond.Wait()
	}
	if g.maxDelay > 0 && g.announced > 0 {
		// Announced committers are mid-append and about to join: holding
		// the window open for them trades a bounded sliver of latency for
		// a fatter group. With no announced peers (the lone-writer case)
		// this branch never runs and the fsync is immediate.
		sl := g.sleeper
		deadline := sl.Monotonic() + g.maxDelay
		stop := sl.AfterFunc(g.maxDelay, func() {
			g.mu.Lock()
			g.cond.Broadcast()
			g.mu.Unlock()
		})
		for g.announced > 0 && sl.Monotonic() < deadline {
			g.cond.Wait()
		}
		stop()
	}
	g.cur = nil // joiners from here on open the next group
	g.syncing = true
	g.mu.Unlock()

	err := g.syncFn()

	g.mu.Lock()
	g.syncing = false
	g.cond.Broadcast() // wake the next group's leader
	if g.counters != nil && err == nil {
		// Only groups that actually committed count — a failed covering
		// fsync must not inflate the mean-group-size the A/B reports use.
		g.counters.GroupCommitBatches.Add(1)
		g.counters.GroupCommitWaiters.Add(grp.commits)
	}
	g.mu.Unlock()
	grp.err = err
	close(grp.done)
	return err
}
