//go:build !unix

package filedev

import "os"

// acquireDirLock without flock support: the lock file is created but no
// kernel exclusion is available — concurrent opens of one directory are
// the operator's responsibility on these platforms.
func acquireDirLock(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
}
