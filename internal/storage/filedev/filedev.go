// Package filedev implements storage.Device on real files: the persistence
// backend behind lsmstore's Options.Backend = FileBackend.
//
// Layout, under one data directory per partition:
//
//	c00000001.lsm ...  component files: fixed-size page slots, each a
//	                   4-byte big-endian length header followed by the page
//	                   bytes, zero-padded to PageSize+4, so page p lives at
//	                   offset p*(PageSize+4) and the page count of a file is
//	                   size/(PageSize+4) — reopen needs no per-page index.
//	wal.log            write-ahead log: raw record stream appended by the
//	                   wal package, fsynced on commit — per record, or one
//	                   covering fsync per commit group when group commit is
//	                   on (see GroupSyncer). A torn tail from a crash
//	                   mid-append is expected and tolerated.
//	MANIFEST           component metadata blob written by the dataset layer.
//	                   Replaced atomically (write temp + fsync + rename +
//	                   dir fsync) after the data files are synced, so it is
//	                   the durability point of a component install.
//
// Appends are batched: pages accumulate in memory and are written to the
// OS in appendBatchPages-sized runs; Sync flushes everything outstanding
// and fsyncs the dirty files (and the directory after creates/deletes).
// Reads served from a not-yet-written tail come straight from the batch
// buffer. The virtual clock is never advanced for I/O — wall time is the
// honest measure on real hardware — but event counters (pages written,
// sequential/random reads) are maintained exactly like the simulated
// device's, using the same single-head positional classification.
package filedev

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/storage"
)

const (
	slotHeader = 4
	// appendBatchPages is the number of buffered appended pages per file
	// before the batch is written through to the OS (without fsync).
	appendBatchPages = 16

	compPrefix   = "c"
	compSuffix   = ".lsm"
	walName      = "wal.log"
	manifestName = "MANIFEST"
	lockName     = "LOCK"
)

// ErrClosed reports use of a closed device.
var ErrClosed = errors.New("filedev: device is closed")

type file struct {
	f       *os.File
	flushed int      // page slots written to the OS
	pending [][]byte // appended pages not yet written through
	dirty   bool     // needs fsync before the next durability point
}

// Device is a storage.Device backed by real files under a data directory.
// All methods are safe for concurrent use.
type Device struct {
	dir     string
	profile storage.Profile
	slot    int64

	// counters, when attached, feed the WAL-durability event counts
	// (WALFsyncs); read-only after AttachCounters, which must precede
	// traffic.
	counters *metrics.Counters

	// walSyncMu serializes standalone WAL fsyncs (SyncWAL) without holding
	// the device mutex across the fsync, so appends for the NEXT commit
	// group proceed while the current group's fsync is in flight.
	walSyncMu sync.Mutex

	mu           sync.Mutex
	files        map[storage.FileID]*file
	nextID       storage.FileID
	lastFile     storage.FileID
	lastPage     int
	bytesWritten int64
	dirDirty     bool
	wal          *os.File
	walSize      int64
	walDirty     bool
	walBroken    bool
	lock         *os.File
	closed       bool
	stage        []byte // reusable append write-through buffer
	zero         []byte // slot-sized zero padding source
}

// AttachCounters wires the device's WAL-durability events (fsync counts)
// into the partition's counters. Call before serving traffic.
func (d *Device) AttachCounters(c *metrics.Counters) { d.counters = c }

func (d *Device) countWALFsync() {
	if d.counters != nil {
		d.counters.WALFsyncs.Add(1)
	}
}

// Open opens (creating if needed) the data directory and scans it for
// component files left by a previous session. The profile's page size
// defines the slot layout and must match across sessions; the dataset
// manifest carries the authoritative check.
func Open(dir string, profile storage.Profile) (*Device, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// One live device per directory: a second opener would rename-replace
	// the WAL out from under the first one's append handle and clobber
	// manifest saves. The lock dies with the process, so a crashed owner
	// never wedges the directory.
	lock, err := acquireDirLock(filepath.Join(dir, lockName))
	if err != nil {
		return nil, err
	}
	d := &Device{
		lock:     lock,
		dir:      dir,
		profile:  profile,
		slot:     int64(profile.PageSize + slotHeader),
		files:    make(map[storage.FileID]*file),
		nextID:   1,
		lastPage: -2,
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, compPrefix) || !strings.HasSuffix(name, compSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, compPrefix), compSuffix), 10, 64)
		if err != nil {
			continue
		}
		id := storage.FileID(n)
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR, 0o644)
		if err != nil {
			return nil, errors.Join(err, d.closeAllLocked())
		}
		st, err := f.Stat()
		if err != nil {
			return nil, errors.Join(err, f.Close(), d.closeAllLocked())
		}
		// A torn tail slot (crash mid-write-through) is dropped: the slot
		// was never part of a synced install, so nothing durable refers to
		// it.
		pages := int(st.Size() / d.slot)
		d.files[id] = &file{f: f, flushed: pages}
		if id >= d.nextID {
			d.nextID = id + 1
		}
	}
	d.wal, err = os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, errors.Join(err, d.closeAllLocked())
	}
	st, err := d.wal.Stat()
	if err != nil {
		return nil, errors.Join(err, d.closeAllLocked())
	}
	d.walSize = st.Size()
	return d, nil
}

// Dir returns the device's data directory.
func (d *Device) Dir() string { return d.dir }

// Profile returns the device profile (layout + read-ahead window).
func (d *Device) Profile() storage.Profile { return d.profile }

// PageSize returns the page size in bytes.
func (d *Device) PageSize() int { return d.profile.PageSize }

func (d *Device) compPath(id storage.FileID) string {
	return filepath.Join(d.dir, fmt.Sprintf("%s%08d%s", compPrefix, uint64(id), compSuffix))
}

// Create allocates a new empty component file.
func (d *Device) Create() storage.FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0
	}
	id := d.nextID
	d.nextID++
	f, err := os.OpenFile(d.compPath(id), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		// Create has no error return in the Device contract; the first
		// append to the ID fails immediately instead.
		d.files[id] = &file{f: nil}
		return id
	}
	d.files[id] = &file{f: f, dirty: true}
	d.dirDirty = true
	return id
}

// Delete removes a component file.
func (d *Device) Delete(id storage.FileID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[id]
	if !ok {
		return
	}
	delete(d.files, id)
	if f.f != nil {
		//lsm:allow-discard Delete is infallible by the storage.Device contract; a close failure here leaks nothing the process exit won't reclaim
		f.f.Close()
	}
	//lsm:allow-discard a component file that survives a failed remove is garbage-collected on the next Open; Delete stays infallible
	os.Remove(d.compPath(id))
	d.dirDirty = true
}

// writeThroughLocked writes the file's pending pages to the OS. The
// staging buffer is owned by the device and reused across batches (the
// caller holds the device mutex), so a steady append stream stages without
// allocating.
func (d *Device) writeThroughLocked(id storage.FileID, f *file) error {
	if len(f.pending) == 0 {
		return nil
	}
	if f.f == nil {
		return fmt.Errorf("filedev: file %d was not created on disk", id)
	}
	if need := int(int64(len(f.pending)) * d.slot); cap(d.stage) < need {
		d.stage = make([]byte, 0, need)
	}
	if d.zero == nil {
		d.zero = make([]byte, d.slot)
	}
	buf := d.stage[:0]
	for _, p := range f.pending {
		var hdr [slotHeader]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
		buf = append(buf, d.zero[:int(d.slot)-slotHeader-len(p)]...)
	}
	if _, err := f.f.WriteAt(buf, int64(f.flushed)*d.slot); err != nil {
		return err
	}
	// Same retention discipline as the pooled WAL/frame buffers: the batch
	// is bounded at appendBatchPages slots by construction, so anything
	// larger came from an outsized caller and must not stay pinned for the
	// device's lifetime.
	if int64(cap(buf)) > appendBatchPages*d.slot {
		d.stage = nil
	}
	f.flushed += len(f.pending)
	f.pending = nil
	f.dirty = true
	return nil
}

// AppendPageEnv appends one page, buffering it in the file's batch. The
// page is visible to reads immediately; it becomes durable at the next
// Sync (component install) — the same no-force posture as the simulation.
func (d *Device) AppendPageEnv(env *metrics.Env, id storage.FileID, data []byte) (int, error) {
	if len(data) > d.profile.PageSize {
		return 0, fmt.Errorf("filedev: page overflow: %d > %d", len(data), d.profile.PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	f, ok := d.files[id]
	if !ok {
		return 0, storage.ErrNoSuchFile
	}
	if f.f == nil {
		return 0, fmt.Errorf("filedev: file %d was never created on disk", id)
	}
	f.pending = append(f.pending, append([]byte(nil), data...))
	n := f.flushed + len(f.pending) - 1
	d.bytesWritten += int64(len(data))
	if len(f.pending) >= appendBatchPages {
		if err := d.writeThroughLocked(id, f); err != nil {
			return 0, err
		}
	}
	env.Counters.PagesWritten.Add(1)
	return n, nil
}

// planRead resolves a page read under the device mutex without performing
// any I/O: a page still in the append batch is returned directly (the
// buffered slices are never mutated after append), a written-through page
// returns the file handle to pread outside the lock — os.File.ReadAt is
// safe for concurrent use, and holding the device mutex across real disk
// reads (or the multi-fsync Sync path) would serialize the partition.
func (d *Device) planRead(id storage.FileID, page int) (buffered []byte, h *os.File, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[id]
	if !ok {
		return nil, nil, storage.ErrNoSuchFile
	}
	if page < 0 || page >= f.flushed+len(f.pending) {
		return nil, nil, storage.ErrNoSuchPage
	}
	if page >= f.flushed {
		return f.pending[page-f.flushed], nil, nil
	}
	return nil, f.f, nil
}

// readSlot preads one written-through page slot.
func (d *Device) readSlot(h *os.File, page int) ([]byte, error) {
	buf := make([]byte, d.slot)
	if _, err := h.ReadAt(buf, int64(page)*d.slot); err != nil && err != io.EOF {
		return nil, err
	}
	n := binary.BigEndian.Uint32(buf)
	if int(n) > d.profile.PageSize {
		return nil, fmt.Errorf("filedev: corrupt page header (len %d) at page %d", n, page)
	}
	return buf[slotHeader : slotHeader+int(n)], nil
}

// advanceHead updates the positional head and reports whether the access
// was sequential (counter classification only; no clock charge).
func (d *Device) advanceHead(id storage.FileID, page int) bool {
	d.mu.Lock()
	sequential := id == d.lastFile && page == d.lastPage+1
	d.lastFile, d.lastPage = id, page
	d.mu.Unlock()
	return sequential
}

// ReadPageEnv reads one page. Counters classify the access sequential or
// random exactly like the simulated device (single head position); the
// virtual clock is not advanced.
func (d *Device) ReadPageEnv(env *metrics.Env, id storage.FileID, page int, seqHint bool) ([]byte, error) {
	buffered, h, err := d.planRead(id, page)
	if err != nil {
		return nil, err
	}
	data := buffered
	if h != nil {
		if data, err = d.readSlot(h, page); err != nil {
			return nil, err
		}
	}
	_ = seqHint // classification is positional, as on the simulated device
	if d.advanceHead(id, page) {
		env.Counters.SequentialReads.Add(1)
	} else {
		env.Counters.RandomReads.Add(1)
	}
	return data, nil
}

// PrefetchPageEnv reads one page of a read-ahead window (streaming access).
func (d *Device) PrefetchPageEnv(env *metrics.Env, id storage.FileID, page int) ([]byte, error) {
	buffered, h, err := d.planRead(id, page)
	if err != nil {
		return nil, err
	}
	data := buffered
	if h != nil {
		if data, err = d.readSlot(h, page); err != nil {
			return nil, err
		}
	}
	d.advanceHead(id, page)
	env.Counters.SequentialReads.Add(1)
	return data, nil
}

// NumPages returns the length of a file in pages (including buffered ones).
func (d *Device) NumPages(id storage.FileID) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[id]
	if !ok {
		return 0, storage.ErrNoSuchFile
	}
	return f.flushed + len(f.pending), nil
}

// List returns the IDs of all live component files in ascending order.
func (d *Device) List() []storage.FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]storage.FileID, 0, len(d.files))
	for id := range d.files {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// BytesWritten reports the total page bytes ever appended.
func (d *Device) BytesWritten() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytesWritten
}

// syncLocked flushes every pending append, fsyncs dirty component files and
// the WAL, and fsyncs the directory after creates/deletes.
func (d *Device) syncLocked() error {
	var errs []error
	for id, f := range d.files {
		if err := d.writeThroughLocked(id, f); err != nil {
			errs = append(errs, err)
			continue
		}
		if f.dirty && f.f != nil {
			if err := f.f.Sync(); err != nil {
				errs = append(errs, err)
				continue
			}
			f.dirty = false
		}
	}
	if d.walBroken {
		errs = append(errs, errWALBroken)
	} else if d.walDirty && d.wal != nil {
		if err := d.wal.Sync(); err != nil {
			errs = append(errs, err)
		} else {
			d.walDirty = false
			d.countWALFsync()
		}
	}
	if d.dirDirty {
		if err := syncDir(d.dir); err != nil {
			errs = append(errs, err)
		} else {
			d.dirDirty = false
		}
	}
	return errors.Join(errs...)
}

// Sync makes all completed appends durable.
func (d *Device) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	//lsm:lockio-ok Sync's contract is a barrier: mu must exclude appends from reordering around the durability point; commit-latency-critical callers use SyncWAL, which fsyncs outside the lock
	return d.syncLocked()
}

// Close syncs and releases the device. The device is unusable afterwards.
func (d *Device) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	//lsm:lockio-ok final teardown; mu stays held so no append races the closing handles
	err := errors.Join(d.syncLocked(), d.closeAllLocked())
	d.closed = true
	return err
}

func (d *Device) closeAllLocked() error {
	var errs []error
	for _, f := range d.files {
		if f.f != nil {
			if err := f.f.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if d.wal != nil {
		if err := d.wal.Close(); err != nil {
			errs = append(errs, err)
		}
		d.wal = nil
	}
	if d.lock != nil {
		// Releases the directory lock.
		if err := d.lock.Close(); err != nil {
			errs = append(errs, err)
		}
		d.lock = nil
	}
	return errors.Join(errs...)
}

// errWALBroken poisons the log area after a failed append could not be
// rolled back: the on-disk suffix is indeterminate, so neither appends nor
// background syncs may touch it again (a later sync would silently make a
// failed commit durable).
var errWALBroken = errors.New("filedev: WAL is poisoned by an earlier failed append")

// AppendWAL appends encoded log records to wal.log, fsyncing when sync is
// set (commit durability). A failed write or fsync means the operation was
// reported as failed to the caller, so the appended bytes are truncated
// away; if even the rollback fails, the WAL is poisoned rather than left
// where a later background sync could durably commit the failed write.
func (d *Device) AppendWAL(data []byte, sync bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.walBroken {
		return errWALBroken
	}
	pre := d.walSize
	rollback := func(cause error) error {
		if terr := d.wal.Truncate(pre); terr != nil {
			d.walBroken = true
		} else {
			d.walSize = pre
		}
		return cause
	}
	n, err := d.wal.Write(data)
	d.walSize += int64(n)
	if err != nil {
		return rollback(err)
	}
	d.walDirty = true
	if sync {
		//lsm:lockio-ok the per-record commit fsync must sit inside mu for rollback atomicity (truncate-on-failure); group commit (SyncWAL) is the hot path and fsyncs outside the lock
		if err := d.wal.Sync(); err != nil {
			return rollback(err)
		}
		d.walDirty = false
		d.countWALFsync()
	}
	return nil
}

// SyncWAL fsyncs the WAL area alone, covering every append that completed
// before the call — the durability point of a commit group. The device
// mutex is NOT held across the fsync, so appends for the next group
// proceed while this group's fsync is in flight; walSyncMu serializes the
// fsyncs themselves. A failed fsync poisons the log area: unlike a failed
// synchronous append there is nothing to truncate back to — records from
// several writers (and possibly a next group) sit above the last known
// durable offset, so the suffix is indeterminate and neither appends nor
// background syncs may touch it again.
func (d *Device) SyncWAL() error {
	d.walSyncMu.Lock()
	defer d.walSyncMu.Unlock()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if d.walBroken {
		d.mu.Unlock()
		return errWALBroken
	}
	if !d.walDirty || d.wal == nil {
		d.mu.Unlock()
		return nil
	}
	w := d.wal
	// Cleared before the fsync: an append landing DURING the fsync may or
	// may not be covered, so it must re-mark the area dirty for the next
	// sync (conservative; AppendWAL sets walDirty on every write).
	d.walDirty = false
	d.mu.Unlock()
	if err := w.Sync(); err != nil {
		d.mu.Lock()
		d.walBroken = true
		d.mu.Unlock()
		return err
	}
	d.countWALFsync()
	return nil
}

// ResetWAL atomically replaces wal.log with data: temp file + fsync +
// rename + directory fsync, so a crash mid-reset leaves either the old or
// the new log, never a mix. The append handle is reopened on the new file.
func (d *Device) ResetWAL(data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	//lsm:lockio-ok WAL replacement must be atomic against concurrent appends; this is the checkpoint/maintenance path, not the commit hot path
	if err := AtomicWriteFile(d.dir, walName, data); err != nil {
		return err
	}
	//lsm:allow-discard the old append handle points at a file the rename just orphaned; closing it is best-effort
	d.wal.Close()
	var err error
	if d.wal, err = os.OpenFile(filepath.Join(d.dir, walName), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644); err != nil {
		return err
	}
	d.walSize = int64(len(data))
	// The area was rebuilt from known-good content; any earlier poisoning
	// is gone with the old file.
	d.walDirty, d.walBroken = false, false
	return nil
}

// LoadWAL returns the whole log image (nil when empty).
func (d *Device) LoadWAL() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	st, err := d.wal.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return nil, nil
	}
	buf := make([]byte, st.Size())
	if _, err := d.wal.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// SaveManifest syncs the device, then atomically replaces the manifest:
// temp file + fsync + rename + directory fsync. This is the durability
// point of a component install — a crash leaves either the old manifest or
// the new one, and everything the surviving one references is on disk.
func (d *Device) SaveManifest(data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	//lsm:lockio-ok component install: data pages must be durable before the manifest that references them, with no appends interleaving; maintenance path, not the commit path
	if err := d.syncLocked(); err != nil {
		return err
	}
	//lsm:lockio-ok see above: the manifest write is the second half of the same install barrier
	return AtomicWriteFile(d.dir, manifestName, data)
}

// LoadManifest returns the manifest of a previous session, or (nil, nil).
func (d *Device) LoadManifest() ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(d.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return data, err
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	return errors.Join(f.Sync(), f.Close())
}

// AtomicWriteFile durably replaces dir/name: temp file + fsync + rename +
// directory fsync, so a crash leaves either the previous content or the
// new one, never a mix. It is the one crash-safe replace protocol shared
// by the manifest, the WAL reset, and the store layout file.
func AtomicWriteFile(dir, name string, data []byte) error {
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

var (
	_ storage.Device         = (*Device)(nil)
	_ storage.ManifestDevice = (*Device)(nil)
	_ storage.WALDevice      = (*Device)(nil)
	_ storage.WALSyncDevice  = (*Device)(nil)
)
