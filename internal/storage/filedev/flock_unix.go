//go:build unix

package filedev

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// acquireDirLock takes the per-directory owner lock: a kernel flock the OS
// releases when the owning process dies, so a crashed owner never wedges
// the directory, while a live second opener — same process or another —
// is refused before it can rename the WAL out from under the first.
func acquireDirLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return nil, errors.Join(fmt.Errorf("filedev: %s is held by another live store: %w", path, err), f.Close())
	}
	return f, nil
}
