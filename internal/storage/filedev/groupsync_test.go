package filedev

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// gatedSync is a controllable stand-in for Device.SyncWAL: each call
// reports itself on entered and blocks until released once.
type gatedSync struct {
	mu      sync.Mutex
	calls   int
	entered chan struct{}
	gate    chan struct{}
	errs    []error // per-call results; nil beyond the list
}

func (s *gatedSync) sync() error {
	s.mu.Lock()
	n := s.calls
	s.calls++
	s.mu.Unlock()
	if s.entered != nil {
		s.entered <- struct{}{}
	}
	if s.gate != nil {
		<-s.gate
	}
	if n < len(s.errs) {
		return s.errs[n]
	}
	return nil
}

func (s *gatedSync) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// TestGroupSyncerLoneCommitterNeverWaits is the stranded-writer guarantee,
// by construction: a single committer with no announced peers must become
// durable immediately even with an enormous MaxSyncDelay configured.
func TestGroupSyncerLoneCommitterNeverWaits(t *testing.T) {
	s := &gatedSync{}
	g := newGroupSyncer(s.sync, time.Hour, nil)
	g.Announce()
	start := time.Now()
	if err := g.Wait(1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lone committer waited %s with no followers coming", elapsed)
	}
	if s.count() != 1 {
		t.Fatalf("sync calls = %d, want 1", s.count())
	}
}

// TestGroupSyncerCoalescesAnnouncedCommitters: two committers that have
// both announced before either waits must share ONE covering fsync — the
// leader holds the window open for the announced straggler.
func TestGroupSyncerCoalescesAnnouncedCommitters(t *testing.T) {
	s := &gatedSync{}
	counters := &metrics.Counters{}
	g := newGroupSyncer(s.sync, 10*time.Second, counters)
	g.Announce()
	g.Announce()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Wait(1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if s.count() != 1 {
		t.Fatalf("sync calls = %d, want 1 (both committers announced before waiting)", s.count())
	}
	if got := counters.GroupCommitBatches.Load(); got != 1 {
		t.Fatalf("GroupCommitBatches = %d, want 1", got)
	}
	if got := counters.GroupCommitWaiters.Load(); got != 2 {
		t.Fatalf("GroupCommitWaiters = %d, want 2", got)
	}
}

// TestGroupSyncerRetractReleasesLeader: a straggler whose append fails
// retracts; the leader must stop holding the window for it rather than
// burn the whole MaxSyncDelay.
func TestGroupSyncerRetractReleasesLeader(t *testing.T) {
	s := &gatedSync{}
	g := newGroupSyncer(s.sync, time.Hour, nil)
	g.Announce() // the eventual leader
	g.Announce() // the straggler that will fail its append
	done := make(chan error, 1)
	go func() { done <- g.Wait(1) }()
	time.Sleep(10 * time.Millisecond) // let the leader reach the window
	g.Retract()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("leader still holding the window after the straggler retracted")
	}
}

// TestGroupSyncerAccumulatesDuringInFlightSync: while one group's fsync is
// in flight, later committers pile into the NEXT group and share its
// single fsync — the pipelining that makes the fsync rate independent of
// the commit rate.
func TestGroupSyncerAccumulatesDuringInFlightSync(t *testing.T) {
	// The window (10s, never fully paid) keeps the test deterministic:
	// group 2's leader holds the group open until every announced follower
	// has joined, so all three land in ONE group regardless of scheduling.
	s := &gatedSync{entered: make(chan struct{}), gate: make(chan struct{})}
	g := newGroupSyncer(s.sync, 10*time.Second, nil)

	first := make(chan error, 1)
	g.Announce()
	go func() { first <- g.Wait(1) }()
	<-s.entered // group 1's fsync is now in flight

	const followers = 3
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		g.Announce()
		go func() {
			defer wg.Done()
			if err := g.Wait(1); err != nil {
				t.Error(err)
			}
		}()
	}
	// Release group 1; group 2 (all three followers) then syncs once.
	s.gate <- struct{}{}
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	<-s.entered
	s.gate <- struct{}{}
	wg.Wait()
	if s.count() != 2 {
		t.Fatalf("sync calls = %d, want 2 (one per group)", s.count())
	}
}

// TestGroupSyncerFailurePoisonsOnlyItsGroup: a failed covering fsync is
// delivered to every member of that group — and to no one after it.
func TestGroupSyncerFailurePoisonsOnlyItsGroup(t *testing.T) {
	boom := errors.New("fsync: device on fire")
	s := &gatedSync{entered: make(chan struct{}), gate: make(chan struct{}), errs: []error{boom}}
	// Both committers announce up front, so the window guarantees they
	// share the failing group.
	g := newGroupSyncer(s.sync, 10*time.Second, nil)
	g.Announce()
	g.Announce()
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- g.Wait(1)
		}()
	}
	go func() { <-s.entered; s.gate <- struct{}{} }()
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, boom) {
			t.Fatalf("group member error = %v, want the fsync failure", err)
		}
	}
	// A later committer gets the NEXT fsync's (clean) result, not the dead
	// group's error.
	g.Announce()
	go func() { <-s.entered; s.gate <- struct{}{} }()
	if err := g.Wait(1); err != nil {
		t.Fatalf("post-failure committer inherited a stranger's error: %v", err)
	}
}

// TestDeviceSyncWALCountsFsyncs: SyncWAL fsyncs only when the WAL area is
// dirty and counts each real fsync.
func TestDeviceSyncWALCountsFsyncs(t *testing.T) {
	d, err := Open(t.TempDir(), storage.ScaledHDD(512))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, d)
	c := &metrics.Counters{}
	d.AttachCounters(c)
	if err := d.SyncWAL(); err != nil { // clean area: no fsync
		t.Fatal(err)
	}
	if got := c.WALFsyncs.Load(); got != 0 {
		t.Fatalf("WALFsyncs after clean SyncWAL = %d, want 0", got)
	}
	if err := d.AppendWAL([]byte("record"), false); err != nil {
		t.Fatal(err)
	}
	if err := d.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if got := c.WALFsyncs.Load(); got != 1 {
		t.Fatalf("WALFsyncs = %d, want 1", got)
	}
	if err := d.SyncWAL(); err != nil { // already durable: no second fsync
		t.Fatal(err)
	}
	if got := c.WALFsyncs.Load(); got != 1 {
		t.Fatalf("WALFsyncs after redundant SyncWAL = %d, want 1", got)
	}
}
