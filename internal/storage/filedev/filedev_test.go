package filedev

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// mustClose fails the test on a Close error: Close runs the final sync,
// so a dropped error here can hide a failed durability point.
func mustClose(t *testing.T, d *Device) {
	t.Helper()
	if err := d.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func mustReadPageEnv(t *testing.T, d *Device, env *metrics.Env, id storage.FileID, page int, seq bool) {
	t.Helper()
	if _, err := d.ReadPageEnv(env, id, page, seq); err != nil {
		t.Fatal(err)
	}
}

func openTestDev(t *testing.T, dir string) *Device {
	t.Helper()
	d, err := Open(dir, storage.ScaledHDD(512))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

func TestAppendReadReopen(t *testing.T) {
	dir := t.TempDir()
	env := metrics.NewEnv()
	d := openTestDev(t, dir)
	id := d.Create()
	var pages [][]byte
	// More pages than one append batch, with varying sizes, so both the
	// write-through and the buffered-tail read paths are exercised.
	for i := 0; i < appendBatchPages*2+3; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 1+i*7%500)
		pages = append(pages, p)
		n, err := d.AppendPageEnv(env, id, p)
		if err != nil || n != i {
			t.Fatalf("AppendPageEnv(%d) = %d, %v", i, n, err)
		}
	}
	for i, want := range pages {
		got, err := d.ReadPageEnv(env, id, i, false)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("ReadPage(%d) mismatch: %v", i, err)
		}
	}
	if np, err := d.NumPages(id); err != nil || np != len(pages) {
		t.Fatalf("NumPages = %d, %v, want %d", np, err, len(pages))
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: every page must read back identically.
	d2 := openTestDev(t, dir)
	defer mustClose(t, d2)
	if np, err := d2.NumPages(id); err != nil || np != len(pages) {
		t.Fatalf("reopened NumPages = %d, %v", np, err)
	}
	for i, want := range pages {
		got, err := d2.ReadPageEnv(env, id, i, false)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("reopened ReadPage(%d) mismatch: %v", i, err)
		}
	}
	// New files must not reuse the old ID space.
	if next := d2.Create(); next <= id {
		t.Fatalf("Create after reopen = %d, want > %d", next, id)
	}
}

func TestUnsyncedTailDroppedAtReopen(t *testing.T) {
	dir := t.TempDir()
	env := metrics.NewEnv()
	d := openTestDev(t, dir)
	id := d.Create()
	if _, err := d.AppendPageEnv(env, id, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// Buffered appends that were never synced may or may not survive a real
	// crash; simulate the lost-tail case by abandoning the device without
	// Close (the batch buffer dies with the process).
	if _, err := d.AppendPageEnv(env, id, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	//lsm:allow-discard simulated crash: the device is abandoned mid-flight, close errors are part of the scenario
	_ = d.closeAllLocked()
	d.closed = true
	d.mu.Unlock()

	d2 := openTestDev(t, dir)
	defer mustClose(t, d2)
	np, err := d2.NumPages(id)
	if err != nil || np != 1 {
		t.Fatalf("NumPages after crash = %d, %v, want 1", np, err)
	}
	got, err := d2.ReadPageEnv(env, id, 0, false)
	if err != nil || string(got) != "durable" {
		t.Fatalf("page 0 after crash = %q, %v", got, err)
	}
}

func TestDeleteAndList(t *testing.T) {
	dir := t.TempDir()
	env := metrics.NewEnv()
	d := openTestDev(t, dir)
	defer mustClose(t, d)
	a, b := d.Create(), d.Create()
	if _, err := d.AppendPageEnv(env, a, []byte{1}); err != nil {
		t.Fatal(err)
	}
	d.Delete(a)
	if _, err := d.ReadPageEnv(env, a, 0, false); err != storage.ErrNoSuchFile {
		t.Fatalf("read after delete = %v", err)
	}
	ids := d.List()
	if len(ids) != 1 || ids[0] != b {
		t.Fatalf("List = %v, want [%d]", ids, b)
	}
	if _, err := os.Stat(filepath.Join(dir, "c00000001.lsm")); !os.IsNotExist(err) {
		t.Fatalf("deleted component file still on disk: %v", err)
	}
}

func TestManifestAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	d := openTestDev(t, dir)
	if m, err := d.LoadManifest(); err != nil || m != nil {
		t.Fatalf("LoadManifest on fresh dir = %q, %v", m, err)
	}
	if err := d.SaveManifest([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveManifest([]byte("v2")); err != nil {
		t.Fatal(err)
	}
	if m, err := d.LoadManifest(); err != nil || string(m) != "v2" {
		t.Fatalf("LoadManifest = %q, %v, want v2", m, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openTestDev(t, dir)
	defer mustClose(t, d2)
	if m, err := d2.LoadManifest(); err != nil || string(m) != "v2" {
		t.Fatalf("reopened LoadManifest = %q, %v, want v2", m, err)
	}
}

func TestWALAppendLoad(t *testing.T) {
	dir := t.TempDir()
	d := openTestDev(t, dir)
	if w, err := d.LoadWAL(); err != nil || w != nil {
		t.Fatalf("LoadWAL on fresh dir = %q, %v", w, err)
	}
	if err := d.AppendWAL([]byte("rec1"), false); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendWAL([]byte("rec2"), true); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openTestDev(t, dir)
	defer mustClose(t, d2)
	w, err := d2.LoadWAL()
	if err != nil || string(w) != "rec1rec2" {
		t.Fatalf("LoadWAL = %q, %v", w, err)
	}
	if err := d2.AppendWAL([]byte("rec3"), true); err != nil {
		t.Fatal(err)
	}
	if w, err := d2.LoadWAL(); err != nil || string(w) != "rec1rec2rec3" {
		t.Fatalf("LoadWAL after reopen-append = %q, %v", w, err)
	}
}

func TestPageOverflowRejected(t *testing.T) {
	d := openTestDev(t, t.TempDir())
	defer mustClose(t, d)
	id := d.Create()
	if _, err := d.AppendPageEnv(metrics.NewEnv(), id, make([]byte, d.PageSize()+1)); err == nil {
		t.Fatal("oversized page accepted")
	}
}

func TestCountersClassifyLikeSim(t *testing.T) {
	env := metrics.NewEnv()
	d := openTestDev(t, t.TempDir())
	defer mustClose(t, d)
	id := d.Create()
	for i := 0; i < 10; i++ {
		if _, err := d.AppendPageEnv(env, id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	env.Counters.Reset()
	mustReadPageEnv(t, d, env, id, 0, true)
	for i := 1; i < 5; i++ {
		mustReadPageEnv(t, d, env, id, i, true)
	}
	mustReadPageEnv(t, d, env, id, 9, true)
	s := env.Counters.Snapshot()
	if s.RandomReads != 2 || s.SequentialReads != 4 {
		t.Fatalf("random=%d sequential=%d, want 2/4", s.RandomReads, s.SequentialReads)
	}
}
