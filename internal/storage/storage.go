package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// FileID names one component file on the simulated disk.
type FileID uint64

// Profile is a device cost model.
type Profile struct {
	Name string
	// PageSize is the data page size in bytes (128 KB on the paper's HDD
	// configuration, 32 KB on its SSD configuration).
	PageSize int
	// Seek is the positioning cost paid by a random page access.
	Seek time.Duration
	// TransferPerPage is the sequential transfer time for one page.
	TransferPerPage time.Duration
	// ReadAheadPages is the device read-ahead window used by scans
	// (4 MB in the paper): after a seek, this many pages stream at
	// sequential cost.
	ReadAheadPages int
}

// HDD returns the paper's hard-disk profile: 128 KB pages, ~8.5 ms seek,
// ~100 MB/s transfer, 4 MB read-ahead.
func HDD() Profile {
	return Profile{
		Name:            "hdd",
		PageSize:        128 << 10,
		Seek:            8500 * time.Microsecond,
		TransferPerPage: 1280 * time.Microsecond, // 128 KB at 100 MB/s
		ReadAheadPages:  32,                      // 4 MB
	}
}

// SSD returns the paper's SSD profile: 32 KB pages, ~80 µs access latency,
// ~500 MB/s transfer.
func SSD() Profile {
	return Profile{
		Name:            "ssd",
		PageSize:        32 << 10,
		Seek:            80 * time.Microsecond,
		TransferPerPage: 64 * time.Microsecond, // 32 KB at 500 MB/s
		ReadAheadPages:  32,
	}
}

// ScaledHDD returns the HDD profile with a smaller page size, for unit tests
// that want many pages from small datasets.
func ScaledHDD(pageSize int) Profile {
	p := HDD()
	p.PageSize = pageSize
	p.TransferPerPage = time.Duration(float64(p.TransferPerPage) * float64(pageSize) / float64(128<<10))
	if p.TransferPerPage <= 0 {
		p.TransferPerPage = time.Microsecond
	}
	return p
}

// ErrNoSuchFile reports access to a deleted or never-created file.
var ErrNoSuchFile = errors.New("storage: no such file")

// ErrNoSuchPage reports an out-of-range page read.
var ErrNoSuchPage = errors.New("storage: no such page")

type file struct {
	pages [][]byte
}

// Disk is a simulated page device holding append-only files. All methods are
// safe for concurrent use.
//
// Sequential-versus-random classification uses a single global head position
// (lastFile, lastPage), modelling one spindle: a read is sequential only when
// it targets the page immediately after the previous read on the same file.
// Interleaving reads across files therefore breaks sequentiality, which is
// exactly the effect the paper's batched point lookup avoids (Section 3.2).
type Disk struct {
	profile Profile
	env     *metrics.Env

	mu       sync.Mutex
	files    map[FileID]*file
	nextID   FileID
	lastFile FileID
	lastPage int

	bytesWritten int64
}

// NewDisk creates an empty simulated disk with the given device profile.
func NewDisk(profile Profile, env *metrics.Env) *Disk {
	return &Disk{profile: profile, env: env, files: make(map[FileID]*file), nextID: 1, lastPage: -2}
}

// Profile returns the device profile.
func (d *Disk) Profile() Profile { return d.profile }

// PageSize returns the device page size in bytes.
func (d *Disk) PageSize() int { return d.profile.PageSize }

// Create allocates a new empty file and returns its ID.
func (d *Disk) Create() FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.files[id] = &file{}
	return id
}

// Delete removes a file (component drop after a merge).
func (d *Disk) Delete(id FileID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, id)
}

// AppendPage appends one page to the file and returns its page number.
// Writes are sequential by construction (flush and merge bulk loads), so they
// are charged at transfer cost only.
func (d *Disk) AppendPage(id FileID, data []byte) (int, error) {
	return d.AppendPageEnv(d.env, id, data)
}

// AppendPageEnv is AppendPage charging the given metrics environment (the
// caller's I/O lane: background maintenance charges its own clock).
func (d *Disk) AppendPageEnv(env *metrics.Env, id FileID, data []byte) (int, error) {
	if len(data) > d.profile.PageSize {
		return 0, fmt.Errorf("storage: page overflow: %d > %d", len(data), d.profile.PageSize)
	}
	cp := append([]byte(nil), data...)
	d.mu.Lock()
	f, ok := d.files[id]
	if !ok {
		d.mu.Unlock()
		return 0, ErrNoSuchFile
	}
	f.pages = append(f.pages, cp)
	n := len(f.pages) - 1
	d.bytesWritten += int64(len(cp))
	d.mu.Unlock()

	env.Counters.PagesWritten.Add(1)
	env.Clock.Advance(d.profile.TransferPerPage)
	return n, nil
}

// ReadPage reads one page. seqHint tells the device the caller is scanning;
// combined with the position of the previous read on the same file it
// decides whether to charge a seek. The returned slice must not be modified.
func (d *Disk) ReadPage(id FileID, page int, seqHint bool) ([]byte, error) {
	return d.ReadPageEnv(d.env, id, page, seqHint)
}

// ReadPageEnv is ReadPage charging the given metrics environment.
func (d *Disk) ReadPageEnv(env *metrics.Env, id FileID, page int, seqHint bool) ([]byte, error) {
	d.mu.Lock()
	f, ok := d.files[id]
	if !ok {
		d.mu.Unlock()
		return nil, ErrNoSuchFile
	}
	if page < 0 || page >= len(f.pages) {
		d.mu.Unlock()
		return nil, ErrNoSuchPage
	}
	data := f.pages[page]
	sequential := id == d.lastFile && page == d.lastPage+1
	_ = seqHint // classification is positional; the hint drives read-ahead upstream
	d.lastFile, d.lastPage = id, page
	d.mu.Unlock()

	if sequential {
		env.Counters.SequentialReads.Add(1)
		env.Clock.Advance(d.profile.TransferPerPage)
	} else {
		env.Counters.RandomReads.Add(1)
		env.Clock.Advance(d.profile.Seek + d.profile.TransferPerPage)
	}
	return data, nil
}

// PrefetchPageEnv reads one page of a device read-ahead window at streaming
// cost: after the seek that opened the window the device transfers pages
// back to back, so a prefetched page never pays a seek — even when cached
// pages inside the window were skipped over and the head-position chain
// would otherwise look broken. The head still advances, so a subsequent
// read of the next page stays sequential.
func (d *Disk) PrefetchPageEnv(env *metrics.Env, id FileID, page int) ([]byte, error) {
	d.mu.Lock()
	f, ok := d.files[id]
	if !ok {
		d.mu.Unlock()
		return nil, ErrNoSuchFile
	}
	if page < 0 || page >= len(f.pages) {
		d.mu.Unlock()
		return nil, ErrNoSuchPage
	}
	data := f.pages[page]
	d.lastFile, d.lastPage = id, page
	d.mu.Unlock()

	env.Counters.SequentialReads.Add(1)
	env.Clock.Advance(d.profile.TransferPerPage)
	return data, nil
}

// NumPages returns the current length of the file in pages.
func (d *Disk) NumPages(id FileID) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[id]
	if !ok {
		return 0, ErrNoSuchFile
	}
	return len(f.pages), nil
}

// BytesWritten reports the total bytes ever appended (write amplification
// accounting).
func (d *Disk) BytesWritten() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytesWritten
}

// List returns the IDs of all live files in ascending order.
func (d *Disk) List() []FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]FileID, 0, len(d.files))
	for id := range d.files {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Sync is a no-op: the simulated disk is always "durable" for the lifetime
// of the process, which is exactly the no-steal/no-force boundary the
// simulated crash battery exercises.
func (d *Disk) Sync() error { return nil }

// Close is a no-op on the simulated disk.
func (d *Disk) Close() error { return nil }

// Env exposes the metrics environment the disk charges against.
func (d *Disk) Env() *metrics.Env { return d.env }
