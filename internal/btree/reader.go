package btree

import (
	"bytes"
	"encoding/binary"
	"errors"

	"repro/internal/kv"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// ErrCorrupt reports a malformed page.
var ErrCorrupt = errors.New("btree: corrupt page")

// Reader provides searches and scans over a bulk-loaded tree.
type Reader struct {
	store     *storage.Store
	env       *metrics.Env
	file      storage.FileID
	root      uint32
	height    int
	numLeaves int
	count     int64
	numPages  int
}

// Open reads the meta page of a completed tree.
func Open(store *storage.Store, file storage.FileID) (*Reader, error) {
	n, err := store.NumPages(file)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, ErrCorrupt
	}
	meta, err := store.ReadPage(file, n-1, false)
	if err != nil {
		return nil, err
	}
	if len(meta) < 19 || meta[0] != pageMeta {
		return nil, ErrCorrupt
	}
	return &Reader{
		store:     store,
		env:       store.Env(),
		file:      file,
		count:     int64(binary.BigEndian.Uint64(meta[1:])),
		root:      binary.BigEndian.Uint32(meta[9:]),
		height:    int(binary.BigEndian.Uint16(meta[13:])),
		numLeaves: int(binary.BigEndian.Uint32(meta[15:])),
		numPages:  n,
	}, nil
}

// Rebind switches the reader onto another store view of the same disk
// (typically from a background-lane store back to the foreground store
// before a freshly built component is installed). Call it before the
// reader is shared; it is not synchronized with concurrent searches.
func (r *Reader) Rebind(store *storage.Store) {
	r.store = store
	r.env = store.Env()
}

// CloneFor returns a shallow reader over the same tree charging the given
// store view (background merges scan inputs on their own I/O lane without
// disturbing concurrent foreground readers).
func (r *Reader) CloneFor(store *storage.Store) *Reader {
	cp := *r
	cp.store = store
	cp.env = store.Env()
	return &cp
}

// NumEntries returns the number of entries in the tree.
func (r *Reader) NumEntries() int64 { return r.count }

// NumLeaves returns the number of leaf pages.
func (r *Reader) NumLeaves() int { return r.numLeaves }

// SizeBytes approximates the on-disk size of the tree.
func (r *Reader) SizeBytes() int64 { return int64(r.numPages) * int64(r.store.PageSize()) }

// FileID returns the backing file.
func (r *Reader) FileID() storage.FileID { return r.file }

// Drop deletes the backing file (after a merge retires the component).
func (r *Reader) Drop() { r.store.Delete(r.file) }

// compareCharged compares keys, charging one comparison when env is non-nil.
func compareCharged(env *metrics.Env, a, b []byte) int {
	if env != nil {
		env.ChargeCompare(1)
	}
	return bytes.Compare(a, b)
}

// decodedPage is a parsed page (leaf or internal).
type decodedPage struct {
	pageNo   int
	typ      byte
	n        int
	ordinal  int64    // leaves: ordinal of first entry
	keys     [][]byte // n keys (aliasing page data)
	payloads [][]byte // leaves: n payloads
	children []uint32 // internals: n child page numbers
}

func (r *Reader) readDecoded(pageNo int, seqHint bool) (*decodedPage, error) {
	raw, err := r.store.ReadPage(r.file, pageNo, seqHint)
	if err != nil {
		return nil, err
	}
	return decodePage(raw, pageNo)
}

func decodePage(raw []byte, pageNo int) (*decodedPage, error) {
	if len(raw) < 1 {
		return nil, ErrCorrupt
	}
	dp := &decodedPage{pageNo: pageNo, typ: raw[0]}
	switch dp.typ {
	case pageLeaf:
		if len(raw) < leafHeaderSize {
			return nil, ErrCorrupt
		}
		dp.n = int(binary.BigEndian.Uint32(raw[1:]))
		dp.ordinal = int64(binary.BigEndian.Uint64(raw[5:]))
		slotBase := leafHeaderSize
		dp.keys = make([][]byte, dp.n)
		dp.payloads = make([][]byte, dp.n)
		for i := 0; i < dp.n; i++ {
			off := int(binary.BigEndian.Uint32(raw[slotBase+4*i:]))
			end := len(raw)
			if i+1 < dp.n {
				end = int(binary.BigEndian.Uint32(raw[slotBase+4*(i+1):]))
			}
			if off >= len(raw) || end > len(raw) || off > end {
				return nil, ErrCorrupt
			}
			klen, m := binary.Uvarint(raw[off:end])
			if m <= 0 || off+m+int(klen) > end {
				return nil, ErrCorrupt
			}
			dp.keys[i] = raw[off+m : off+m+int(klen)]
			dp.payloads[i] = raw[off+m+int(klen) : end]
		}
	case pageInternal:
		if len(raw) < internalHeaderSize {
			return nil, ErrCorrupt
		}
		dp.n = int(binary.BigEndian.Uint32(raw[1:]))
		slotBase := internalHeaderSize
		dp.keys = make([][]byte, dp.n)
		dp.children = make([]uint32, dp.n)
		for i := 0; i < dp.n; i++ {
			off := int(binary.BigEndian.Uint32(raw[slotBase+4*i:]))
			if off >= len(raw) {
				return nil, ErrCorrupt
			}
			klen, m := binary.Uvarint(raw[off:])
			if m <= 0 || off+m+int(klen)+4 > len(raw) {
				return nil, ErrCorrupt
			}
			dp.keys[i] = raw[off+m : off+m+int(klen)]
			dp.children[i] = binary.BigEndian.Uint32(raw[off+m+int(klen):])
		}
	default:
		return nil, ErrCorrupt
	}
	return dp, nil
}

// searchPage binary-searches for key, returning the index of the first entry
// >= key (possibly n), charging comparisons against the environment.
func (dp *decodedPage) searchPage(env *metrics.Env, key []byte) int {
	lo, hi := 0, dp.n
	for lo < hi {
		mid := (lo + hi) / 2
		if compareCharged(env, dp.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// descendToLeaf walks root-to-leaf and returns the decoded leaf that may
// contain key.
func (r *Reader) descendToLeaf(key []byte) (*decodedPage, error) {
	if r.count == 0 {
		return nil, nil
	}
	pageNo := int(r.root)
	for {
		dp, err := r.readDecoded(pageNo, false)
		if err != nil {
			return nil, err
		}
		if dp.typ == pageLeaf {
			return dp, nil
		}
		// route to the last child whose first key <= key
		idx := dp.searchPage(r.env, key)
		if idx == dp.n || !bytes.Equal(dp.keys[idx], key) {
			if idx > 0 {
				idx--
			}
		}
		pageNo = int(dp.children[idx])
	}
}

// Get performs a point lookup, returning the entry, its ordinal position in
// the tree, and whether the key was found.
func (r *Reader) Get(key []byte) (kv.Entry, int64, bool, error) {
	leaf, err := r.descendToLeaf(key)
	if err != nil || leaf == nil {
		return kv.Entry{}, 0, false, err
	}
	idx := leaf.searchPage(r.env, key)
	if idx >= leaf.n || !bytes.Equal(leaf.keys[idx], key) {
		return kv.Entry{}, 0, false, nil
	}
	r.env.ChargeDecode(1)
	e, err := kv.DecodePayload(leaf.payloads[idx], leaf.keys[idx])
	if err != nil {
		return kv.Entry{}, 0, false, err
	}
	return e, leaf.ordinal + int64(idx), true, nil
}
