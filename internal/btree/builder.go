// Package btree implements the immutable on-disk B+-tree used inside every
// LSM disk component (primary index, primary key index, and secondary
// indexes all organize component data as B+-trees, Section 3). Trees are
// bulk-loaded once at flush/merge time and never modified afterwards.
//
// Layout: leaf pages first (file pages 0..L-1, so a full scan is a pure
// sequential read), then internal levels bottom-up, then one meta page.
// Every leaf knows the ordinal (rank) of its first entry, giving each entry
// a stable position used by the immutable and mutable bitmaps of Sections 4
// and 5.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/storage"
)

// Page types.
const (
	pageLeaf     = 1
	pageInternal = 2
	pageMeta     = 3
)

// leaf header: type(1) count(4) startOrdinal(8) = 13 bytes, then count
// uint32 offsets, then entry data (keyLen uvarint, key, payload).
const leafHeaderSize = 13

// internal header: type(1) count(4) = 5 bytes, then count uint32 offsets,
// then routing entries (keyLen uvarint, key, child uint32).
const internalHeaderSize = 5

// ErrKeyOrder reports out-of-order or duplicate keys during bulk load.
var ErrKeyOrder = errors.New("btree: keys must be added in strictly increasing order")

// ErrEntryTooLarge reports an entry that cannot fit in one page.
var ErrEntryTooLarge = errors.New("btree: entry exceeds page size")

// Builder bulk-loads a B+-tree into a fresh component file.
type Builder struct {
	store    *storage.Store
	file     storage.FileID
	pageSize int

	// current leaf under construction
	leafKeys     [][]byte
	leafPayloads [][]byte
	leafBytes    int

	// one pending routing entry per written page, per level
	levels [][]routeEntry

	lastKey []byte
	count   int64
	done    bool
}

type routeEntry struct {
	firstKey []byte
	page     uint32
}

// NewBuilder starts a bulk load into a new file on store.
func NewBuilder(store *storage.Store) *Builder {
	return &Builder{
		store:    store,
		file:     store.Create(),
		pageSize: store.PageSize(),
	}
}

// Add appends an entry. Keys must arrive in strictly increasing order.
// payload is the opaque value bytes stored next to the key (the LSM layer
// encodes flags/timestamp/value in it).
func (b *Builder) Add(key, payload []byte) error {
	if b.done {
		return errors.New("btree: builder already finished")
	}
	if b.lastKey != nil && compareCharged(nil, key, b.lastKey) <= 0 {
		return fmt.Errorf("%w: %q after %q", ErrKeyOrder, key, b.lastKey)
	}
	need := entrySize(key, payload)
	if leafHeaderSize+4+need > b.pageSize {
		return ErrEntryTooLarge
	}
	if leafHeaderSize+4*(len(b.leafKeys)+1)+b.leafBytes+need > b.pageSize {
		if err := b.flushLeaf(); err != nil {
			return err
		}
	}
	b.leafKeys = append(b.leafKeys, append([]byte(nil), key...))
	b.leafPayloads = append(b.leafPayloads, append([]byte(nil), payload...))
	b.leafBytes += need
	b.lastKey = b.leafKeys[len(b.leafKeys)-1]
	b.count++
	return nil
}

func entrySize(key, payload []byte) int {
	return uvarintLen(uint64(len(key))) + len(key) + len(payload)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (b *Builder) flushLeaf() error {
	if len(b.leafKeys) == 0 {
		return nil
	}
	startOrdinal := b.count - int64(len(b.leafKeys))
	page := make([]byte, 0, b.pageSize)
	page = append(page, pageLeaf)
	page = binary.BigEndian.AppendUint32(page, uint32(len(b.leafKeys)))
	page = binary.BigEndian.AppendUint64(page, uint64(startOrdinal))
	// reserve slot array
	slotBase := len(page)
	page = append(page, make([]byte, 4*len(b.leafKeys))...)
	for i := range b.leafKeys {
		binary.BigEndian.PutUint32(page[slotBase+4*i:], uint32(len(page)))
		page = binary.AppendUvarint(page, uint64(len(b.leafKeys[i])))
		page = append(page, b.leafKeys[i]...)
		page = append(page, b.leafPayloads[i]...)
	}
	pageNo, err := b.store.AppendPage(b.file, page)
	if err != nil {
		return err
	}
	b.pushRoute(0, routeEntry{firstKey: b.leafKeys[0], page: uint32(pageNo)})
	b.leafKeys = b.leafKeys[:0]
	b.leafPayloads = b.leafPayloads[:0]
	b.leafBytes = 0
	return nil
}

func (b *Builder) pushRoute(level int, r routeEntry) {
	for len(b.levels) <= level {
		b.levels = append(b.levels, nil)
	}
	b.levels[level] = append(b.levels[level], r)
}

func (b *Builder) writeInternal(level int, routes []routeEntry) (uint32, error) {
	page := make([]byte, 0, b.pageSize)
	page = append(page, pageInternal)
	page = binary.BigEndian.AppendUint32(page, uint32(len(routes)))
	slotBase := len(page)
	page = append(page, make([]byte, 4*len(routes))...)
	for i, r := range routes {
		binary.BigEndian.PutUint32(page[slotBase+4*i:], uint32(len(page)))
		page = binary.AppendUvarint(page, uint64(len(r.firstKey)))
		page = append(page, r.firstKey...)
		page = binary.BigEndian.AppendUint32(page, r.page)
	}
	pageNo, err := b.store.AppendPage(b.file, page)
	if err != nil {
		return 0, err
	}
	return uint32(pageNo), nil
}

// internalCapacity returns how many routing entries fit on one page given
// the accumulated byte size of the candidate entries.
func (b *Builder) internalFits(routes []routeEntry) int {
	bytes := internalHeaderSize
	for i, r := range routes {
		bytes += 4 + uvarintLen(uint64(len(r.firstKey))) + len(r.firstKey) + 4
		if bytes > b.pageSize {
			return i
		}
	}
	return len(routes)
}

// Finish flushes remaining data, writes internal levels and the meta page,
// and opens a Reader over the completed tree.
func (b *Builder) Finish() (*Reader, error) {
	if b.done {
		return nil, errors.New("btree: builder already finished")
	}
	b.done = true
	if err := b.flushLeaf(); err != nil {
		return nil, err
	}
	numLeaves := 0
	if len(b.levels) > 0 {
		numLeaves = len(b.levels[0])
	}
	// Build internal levels bottom-up until a level has a single page.
	rootPage := uint32(0)
	height := 0
	if numLeaves > 0 {
		level := 0
		for {
			routes := b.levels[level]
			if len(routes) == 1 && level > 0 {
				rootPage = routes[0].page
				height = level
				break
			}
			if len(routes) <= 1 && level == 0 {
				// single leaf: it is the root
				if len(routes) == 1 {
					rootPage = routes[0].page
					height = 0
				}
				break
			}
			// pack routes into internal pages
			rest := routes
			for len(rest) > 0 {
				n := b.internalFits(rest)
				if n == 0 {
					return nil, ErrEntryTooLarge
				}
				pg, err := b.writeInternal(level+1, rest[:n])
				if err != nil {
					return nil, err
				}
				b.pushRoute(level+1, routeEntry{firstKey: rest[0].firstKey, page: pg})
				rest = rest[n:]
			}
			level++
			height = level
		}
	}
	// meta page: type(1) count(8) root(4) height(2) numLeaves(4)
	meta := make([]byte, 0, 32)
	meta = append(meta, pageMeta)
	meta = binary.BigEndian.AppendUint64(meta, uint64(b.count))
	meta = binary.BigEndian.AppendUint32(meta, rootPage)
	meta = binary.BigEndian.AppendUint16(meta, uint16(height))
	meta = binary.BigEndian.AppendUint32(meta, uint32(numLeaves))
	if _, err := b.store.AppendPage(b.file, meta); err != nil {
		return nil, err
	}
	return Open(b.store, b.file)
}

// Abort discards a partially built tree.
func (b *Builder) Abort() {
	if !b.done {
		b.done = true
		b.store.Delete(b.file)
	}
}

// FileID returns the file being built.
func (b *Builder) FileID() storage.FileID { return b.file }
