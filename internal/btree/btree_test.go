package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/kv"
	"repro/internal/metrics"
	"repro/internal/storage"
)

func newTestStore(t testing.TB, pageSize int) *storage.Store {
	t.Helper()
	env := metrics.NopEnv()
	disk := storage.NewDisk(storage.ScaledHDD(pageSize), env)
	return storage.NewStore(disk, 1<<30, env)
}

func buildTree(t testing.TB, store *storage.Store, entries []kv.Entry) *Reader {
	t.Helper()
	b := NewBuilder(store)
	for _, e := range entries {
		if err := b.Add(e.Key, kv.AppendPayload(nil, e)); err != nil {
			t.Fatalf("Add(%q): %v", e.Key, err)
		}
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return r
}

func seqEntries(n int) []kv.Entry {
	entries := make([]kv.Entry, n)
	for i := range entries {
		entries[i] = kv.Entry{
			Key:   kv.EncodeUint64(uint64(i) * 3),
			Value: []byte(fmt.Sprintf("value-%06d", i)),
			TS:    int64(i),
		}
	}
	return entries
}

func TestGetAllKeys(t *testing.T) {
	store := newTestStore(t, 1024)
	entries := seqEntries(5000)
	r := buildTree(t, store, entries)
	if r.NumEntries() != 5000 {
		t.Fatalf("NumEntries = %d, want 5000", r.NumEntries())
	}
	for i, want := range entries {
		e, ord, found, err := r.Get(want.Key)
		if err != nil || !found {
			t.Fatalf("Get key %d: found=%v err=%v", i, found, err)
		}
		if !bytes.Equal(e.Value, want.Value) || e.TS != want.TS {
			t.Fatalf("key %d: got %v want %v", i, e, want)
		}
		if ord != int64(i) {
			t.Fatalf("key %d: ordinal %d", i, ord)
		}
	}
}

func TestGetAbsentKeys(t *testing.T) {
	store := newTestStore(t, 1024)
	r := buildTree(t, store, seqEntries(1000))
	for i := 0; i < 1000; i++ {
		// keys are multiples of 3; probe the gaps
		if _, _, found, _ := r.Get(kv.EncodeUint64(uint64(i)*3 + 1)); found {
			t.Fatalf("found absent key %d", i)
		}
	}
	if _, _, found, _ := r.Get(kv.EncodeUint64(1 << 62)); found {
		t.Fatal("found key beyond the last entry")
	}
}

func TestEmptyTree(t *testing.T) {
	store := newTestStore(t, 1024)
	r := buildTree(t, store, nil)
	if r.NumEntries() != 0 {
		t.Fatalf("NumEntries = %d", r.NumEntries())
	}
	if _, _, found, err := r.Get([]byte("x")); found || err != nil {
		t.Fatalf("Get on empty: found=%v err=%v", found, err)
	}
	s, err := r.NewScan(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := s.Next(); ok {
		t.Fatal("scan of empty tree returned an entry")
	}
}

func TestBuilderRejectsOutOfOrder(t *testing.T) {
	store := newTestStore(t, 1024)
	b := NewBuilder(store)
	if err := b.Add([]byte("b"), []byte{0}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]byte("a"), []byte{0}); err == nil {
		t.Error("out-of-order Add should fail")
	}
	if err := b.Add([]byte("b"), []byte{0}); err == nil {
		t.Error("duplicate Add should fail")
	}
	b.Abort()
}

func TestBuilderRejectsHugeEntry(t *testing.T) {
	store := newTestStore(t, 512)
	b := NewBuilder(store)
	if err := b.Add([]byte("k"), make([]byte, 4096)); err == nil {
		t.Error("oversized entry should fail")
	}
	b.Abort()
}

func TestScanFullAndRanges(t *testing.T) {
	store := newTestStore(t, 1024)
	entries := seqEntries(3000)
	r := buildTree(t, store, entries)

	// full scan
	s, err := r.NewScan(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		e, ord, ok, err := s.Next()
		if err != nil || !ok {
			t.Fatalf("scan stopped at %d: %v", i, err)
		}
		if !bytes.Equal(e.Key, entries[i].Key) || ord != int64(i) {
			t.Fatalf("scan entry %d mismatch", i)
		}
	}
	if _, _, ok, _ := s.Next(); ok {
		t.Fatal("scan overran")
	}

	// bounded scan: [lo, hi)
	lo, hi := kv.EncodeUint64(300), kv.EncodeUint64(600)
	s2, err := r.NewScan(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		e, _, ok, err := s2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		v := kv.DecodeUint64(e.Key)
		if v < 300 || v >= 600 {
			t.Fatalf("scan leaked key %d", v)
		}
		count++
	}
	want := 0
	for i := 0; i < 3000; i++ {
		if u := uint64(i) * 3; u >= 300 && u < 600 {
			want++
		}
	}
	if count != want {
		t.Fatalf("bounded scan returned %d entries, want %d", count, want)
	}

	// lo between keys
	s3, _ := r.NewScan(kv.EncodeUint64(301), nil)
	e, _, ok, _ := s3.Next()
	if !ok || kv.DecodeUint64(e.Key) != 303 {
		t.Fatalf("scan from gap: got %v", e)
	}
}

func TestLookupCursorStatefulMatchesStateless(t *testing.T) {
	store := newTestStore(t, 1024)
	entries := seqEntries(4000)
	r := buildTree(t, store, entries)

	rng := rand.New(rand.NewSource(42))
	var probes []uint64
	for i := 0; i < 2000; i++ {
		probes = append(probes, uint64(rng.Intn(13000)))
	}
	sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })

	stateful := r.NewLookupCursor(true)
	stateless := r.NewLookupCursor(false)
	for _, p := range probes {
		key := kv.EncodeUint64(p)
		e1, o1, f1, err1 := stateful.Lookup(key)
		e2, o2, f2, err2 := stateless.Lookup(key)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if f1 != f2 || o1 != o2 || !bytes.Equal(e1.Value, e2.Value) {
			t.Fatalf("probe %d: stateful (%v,%d,%v) != stateless (%v,%d,%v)",
				p, e1, o1, f1, e2, o2, f2)
		}
		if f1 != (p%3 == 0 && p < 12000) {
			t.Fatalf("probe %d: found=%v", p, f1)
		}
	}
}

func TestLookupCursorUnsortedProbes(t *testing.T) {
	// The stateful cursor must stay correct even when keys arrive out of
	// order (it only optimizes, never assumes, monotonicity).
	store := newTestStore(t, 1024)
	r := buildTree(t, store, seqEntries(2000))
	c := r.NewLookupCursor(true)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		p := uint64(rng.Intn(6500))
		_, _, found, err := c.Lookup(kv.EncodeUint64(p))
		if err != nil {
			t.Fatal(err)
		}
		if found != (p%3 == 0 && p < 6000) {
			t.Fatalf("probe %d: found=%v", p, found)
		}
	}
}

func TestStatefulCursorSavesComparisons(t *testing.T) {
	env := metrics.NopEnv()
	disk := storage.NewDisk(storage.ScaledHDD(4096), env)
	store := storage.NewStore(disk, 1<<30, env)
	r := buildTree(t, store, seqEntries(20000))

	run := func(stateful bool) int64 {
		env.Counters.Reset()
		c := r.NewLookupCursor(stateful)
		for i := 0; i < 20000; i++ {
			c.Lookup(kv.EncodeUint64(uint64(i) * 3))
		}
		return env.Counters.KeyComparisons.Load()
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Errorf("stateful lookups used %d comparisons, stateless %d; expected savings", with, without)
	}
}

func TestVariableKeySizes(t *testing.T) {
	store := newTestStore(t, 2048)
	var entries []kv.Entry
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("%04d-%s", i, bytes.Repeat([]byte{'k'}, i%50)))
		entries = append(entries, kv.Entry{Key: key, Value: bytes.Repeat([]byte{'v'}, i%100), TS: int64(i)})
	}
	r := buildTree(t, store, entries)
	for i, want := range entries {
		e, _, found, err := r.Get(want.Key)
		if err != nil || !found || !bytes.Equal(e.Value, want.Value) {
			t.Fatalf("entry %d: found=%v err=%v", i, found, err)
		}
	}
}

func TestOrdinalsAreStableRanks(t *testing.T) {
	store := newTestStore(t, 1024)
	entries := seqEntries(2500)
	r := buildTree(t, store, entries)
	s, _ := r.NewScan(nil, nil)
	var i int64
	for {
		_, ord, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if ord != i {
			t.Fatalf("scan ordinal %d at rank %d", ord, i)
		}
		i++
	}
}

func TestAbortDeletesFile(t *testing.T) {
	store := newTestStore(t, 1024)
	b := NewBuilder(store)
	b.Add([]byte("a"), []byte{1})
	id := b.FileID()
	b.Abort()
	if _, err := store.NumPages(id); err == nil {
		t.Error("aborted builder's file should be deleted")
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		store := newTestStore(t, 512+rng.Intn(4)*512)
		n := rng.Intn(3000)
		model := make(map[string][]byte, n)
		var keys []string
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key-%08d", rng.Intn(100000))
			if _, dup := model[k]; dup {
				continue
			}
			v := []byte(fmt.Sprintf("val-%d", rng.Int63()))
			model[k] = v
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var entries []kv.Entry
		for _, k := range keys {
			entries = append(entries, kv.Entry{Key: []byte(k), Value: model[k]})
		}
		r := buildTree(t, store, entries)
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("key-%08d", rng.Intn(100000))
			e, _, found, err := r.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			want, ok := model[k]
			if found != ok {
				t.Fatalf("trial %d key %s: found=%v want %v", trial, k, found, ok)
			}
			if found && !bytes.Equal(e.Value, want) {
				t.Fatalf("trial %d key %s: wrong value", trial, k)
			}
		}
	}
}
