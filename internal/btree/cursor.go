package btree

import (
	"bytes"

	"repro/internal/kv"
)

// Scan iterates entries in key order over [lo, hi). Nil bounds are
// unbounded. Leaf pages are fetched with the sequential hint so device
// read-ahead applies.
type Scan struct {
	r    *Reader
	hi   []byte
	leaf *decodedPage
	idx  int
	err  error
	done bool
}

// NewScan positions a scan at the first entry >= lo.
func (r *Reader) NewScan(lo, hi []byte) (*Scan, error) {
	s := &Scan{r: r, hi: hi}
	if r.count == 0 {
		s.done = true
		return s, nil
	}
	if lo == nil {
		leaf, err := r.readDecoded(0, true)
		if err != nil {
			return nil, err
		}
		s.leaf, s.idx = leaf, 0
	} else {
		leaf, err := r.descendToLeaf(lo)
		if err != nil {
			return nil, err
		}
		s.leaf = leaf
		s.idx = leaf.searchPage(r.env, lo)
	}
	return s, nil
}

// Next returns the next entry. ok is false at the end of the range.
func (s *Scan) Next() (e kv.Entry, ordinal int64, ok bool, err error) {
	if s.done || s.err != nil {
		return kv.Entry{}, 0, false, s.err
	}
	for s.idx >= s.leaf.n {
		next := s.leaf.pageNo + 1
		if next >= s.r.numLeaves {
			s.done = true
			return kv.Entry{}, 0, false, nil
		}
		leaf, err := s.r.readDecoded(next, true)
		if err != nil {
			s.err = err
			return kv.Entry{}, 0, false, err
		}
		s.leaf, s.idx = leaf, 0
	}
	key := s.leaf.keys[s.idx]
	if s.hi != nil && bytes.Compare(key, s.hi) >= 0 {
		s.done = true
		return kv.Entry{}, 0, false, nil
	}
	s.r.env.ChargeDecode(1)
	s.r.env.Counters.EntriesScanned.Add(1)
	e, err = kv.DecodePayload(s.leaf.payloads[s.idx], key)
	if err != nil {
		s.err = err
		return kv.Entry{}, 0, false, err
	}
	ordinal = s.leaf.ordinal + int64(s.idx)
	s.idx++
	return e, ordinal, true, nil
}

// LookupCursor performs repeated point lookups over ascending keys. In
// stateful mode (Section 3.2, "Stateful B+-tree Lookup") it remembers the
// last leaf page and position: when the next key falls inside the same leaf
// it locates the key with exponential search from the previous position
// instead of a fresh root-to-leaf descent.
type LookupCursor struct {
	r        *Reader
	stateful bool
	leaf     *decodedPage
	lastPos  int
}

// NewLookupCursor creates a cursor. stateful toggles the sLookup
// optimization; when false every Lookup descends from the root.
func (r *Reader) NewLookupCursor(stateful bool) *LookupCursor {
	return &LookupCursor{r: r, stateful: stateful}
}

// Lookup finds key, returning the entry, its ordinal and whether it exists.
func (c *LookupCursor) Lookup(key []byte) (kv.Entry, int64, bool, error) {
	c.r.env.Counters.PointLookups.Add(1)
	if c.r.count == 0 {
		return kv.Entry{}, 0, false, nil
	}
	var idx int
	if c.stateful && c.leaf != nil && c.covers(key) {
		idx = c.exponentialSearch(key)
	} else {
		leaf, err := c.r.descendToLeaf(key)
		if err != nil {
			return kv.Entry{}, 0, false, err
		}
		c.leaf = leaf
		idx = leaf.searchPage(c.r.env, key)
	}
	c.lastPos = idx
	if idx >= c.leaf.n || !bytes.Equal(c.leaf.keys[idx], key) {
		return kv.Entry{}, 0, false, nil
	}
	c.r.env.ChargeDecode(1)
	e, err := kv.DecodePayload(c.leaf.payloads[idx], c.leaf.keys[idx])
	if err != nil {
		return kv.Entry{}, 0, false, err
	}
	return e, c.leaf.ordinal + int64(idx), true, nil
}

// covers reports whether key falls inside the current leaf's key range.
// The last leaf of the tree also covers keys beyond its final entry.
func (c *LookupCursor) covers(key []byte) bool {
	if compareCharged(c.r.env, key, c.leaf.keys[0]) < 0 {
		return false
	}
	if c.leaf.pageNo == c.r.numLeaves-1 {
		return true
	}
	return compareCharged(c.r.env, key, c.leaf.keys[c.leaf.n-1]) <= 0
}

// exponentialSearch locates the first index >= key starting from the last
// position, using exponentially growing steps followed by binary search
// (Bentley & Yao), charging each comparison.
func (c *LookupCursor) exponentialSearch(key []byte) int {
	n := c.leaf.n
	pos := c.lastPos
	if pos >= n {
		pos = n - 1
	}
	if pos < 0 {
		pos = 0
	}
	env := c.r.env
	if compareCharged(env, c.leaf.keys[pos], key) >= 0 {
		// search backwards
		step := 1
		lo, hi := 0, pos
		for pos-step >= 0 {
			if compareCharged(env, c.leaf.keys[pos-step], key) < 0 {
				lo = pos - step + 1
				break
			}
			hi = pos - step
			step *= 2
		}
		return binarySearchRange(env, c.leaf.keys, lo, hi, key)
	}
	// search forwards
	step := 1
	lo, hi := pos+1, n
	for pos+step < n {
		if compareCharged(env, c.leaf.keys[pos+step], key) >= 0 {
			hi = pos + step
			break
		}
		lo = pos + step + 1
		step *= 2
	}
	return binarySearchRange(env, c.leaf.keys, lo, hi, key)
}

func binarySearchRange(env interface{ ChargeCompare(int) }, keys [][]byte, lo, hi int, key []byte) int {
	for lo < hi {
		mid := (lo + hi) / 2
		env.ChargeCompare(1)
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
