package btree

import (
	"testing"

	"repro/internal/kv"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// TestOpenRejectsGarbage verifies Open fails cleanly on files that are not
// B+-trees rather than panicking or misreading.
func TestOpenRejectsGarbage(t *testing.T) {
	env := metrics.NopEnv()
	disk := storage.NewDisk(storage.ScaledHDD(1024), env)
	store := storage.NewStore(disk, 1<<20, env)

	// Empty file.
	f0 := store.Create()
	if _, err := Open(store, f0); err == nil {
		t.Error("empty file accepted")
	}

	// File whose last page is not a meta page.
	f1 := store.Create()
	store.AppendPage(f1, []byte{0xde, 0xad, 0xbe, 0xef})
	if _, err := Open(store, f1); err == nil {
		t.Error("garbage meta page accepted")
	}

	// Truncated meta page.
	f2 := store.Create()
	store.AppendPage(f2, []byte{pageMeta, 0x01})
	if _, err := Open(store, f2); err == nil {
		t.Error("truncated meta page accepted")
	}

	// Missing file.
	if _, err := Open(store, storage.FileID(9999)); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDecodePageRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x7f},            // unknown page type
		{pageLeaf},        // truncated leaf header
		{pageInternal, 0}, // truncated internal header
	}
	for i, raw := range cases {
		if _, err := decodePage(raw, 0); err == nil {
			t.Errorf("case %d: corrupt page decoded", i)
		}
	}
	// Leaf with slot offset out of range.
	bad := make([]byte, leafHeaderSize+4)
	bad[0] = pageLeaf
	bad[4] = 1                 // count = 1 (big endian at [1:5])
	bad[leafHeaderSize] = 0xff // offset way past the page
	bad[leafHeaderSize+1] = 0xff
	bad[leafHeaderSize+2] = 0xff
	bad[leafHeaderSize+3] = 0xff
	if _, err := decodePage(bad, 0); err == nil {
		t.Error("out-of-range slot accepted")
	}
}

// TestPageBoundaryFill packs entries that exactly straddle page capacity,
// guarding the builder's fits-in-page arithmetic.
func TestPageBoundaryFill(t *testing.T) {
	for _, pageSize := range []int{256, 512, 1024} {
		env := metrics.NopEnv()
		disk := storage.NewDisk(storage.ScaledHDD(pageSize), env)
		store := storage.NewStore(disk, 1<<20, env)
		b := NewBuilder(store)
		n := 500
		for i := 0; i < n; i++ {
			e := kv.Entry{Key: kv.EncodeUint64(uint64(i)), Value: make([]byte, i%60), TS: int64(i)}
			if err := b.Add(e.Key, kv.AppendPayload(nil, e)); err != nil {
				t.Fatalf("page %d entry %d: %v", pageSize, i, err)
			}
		}
		r, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if r.NumEntries() != int64(n) {
			t.Fatalf("page %d: %d entries", pageSize, r.NumEntries())
		}
		for i := 0; i < n; i++ {
			e, ord, found, err := r.Get(kv.EncodeUint64(uint64(i)))
			if err != nil || !found || ord != int64(i) {
				t.Fatalf("page %d key %d: found=%v ord=%d err=%v", pageSize, i, found, ord, err)
			}
			if len(e.Value) != i%60 {
				t.Fatalf("page %d key %d: value len %d", pageSize, i, len(e.Value))
			}
		}
	}
}

// TestDeepTree forces several internal levels with a tiny page size.
func TestDeepTree(t *testing.T) {
	env := metrics.NopEnv()
	disk := storage.NewDisk(storage.ScaledHDD(256), env)
	store := storage.NewStore(disk, 1<<30, env)
	b := NewBuilder(store)
	const n = 20000
	for i := 0; i < n; i++ {
		e := kv.Entry{Key: kv.EncodeUint64(uint64(i)), TS: int64(i)}
		if err := b.Add(e.Key, kv.AppendPayload(nil, e)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []uint64{0, 1, n / 2, n - 2, n - 1} {
		if _, ord, found, err := r.Get(kv.EncodeUint64(probe)); err != nil || !found || ord != int64(probe) {
			t.Fatalf("probe %d: found=%v ord=%d err=%v", probe, found, ord, err)
		}
	}
	if _, _, found, _ := r.Get(kv.EncodeUint64(n)); found {
		t.Fatal("key past the end found")
	}
}
