package btree

import (
	"testing"

	"repro/internal/kv"
)

func benchTree(b *testing.B, n int) *Reader {
	b.Helper()
	store := newTestStore(b, 32<<10)
	builder := NewBuilder(store)
	payload := kv.AppendPayload(nil, kv.Entry{Value: make([]byte, 100), TS: 1})
	for i := 0; i < n; i++ {
		if err := builder.Add(kv.EncodeUint64(uint64(i)), payload); err != nil {
			b.Fatal(err)
		}
	}
	r, err := builder.Finish()
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func BenchmarkBulkLoad(b *testing.B) {
	payload := kv.AppendPayload(nil, kv.Entry{Value: make([]byte, 100), TS: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		store := newTestStore(b, 32<<10)
		builder := NewBuilder(store)
		for j := 0; j < 10000; j++ {
			builder.Add(kv.EncodeUint64(uint64(j)), payload)
		}
		if _, err := builder.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	r := benchTree(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, found, err := r.Get(kv.EncodeUint64(uint64(i*7919) % 100000))
		if err != nil || !found {
			b.Fatal(err, found)
		}
	}
}

func BenchmarkStatefulCursorSequential(b *testing.B) {
	r := benchTree(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	cur := r.NewLookupCursor(true)
	for i := 0; i < b.N; i++ {
		if _, _, found, err := cur.Lookup(kv.EncodeUint64(uint64(i % 100000))); err != nil || !found {
			b.Fatal(err, found)
		}
	}
}

func BenchmarkStatelessCursorSequential(b *testing.B) {
	r := benchTree(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	cur := r.NewLookupCursor(false)
	for i := 0; i < b.N; i++ {
		if _, _, found, err := cur.Lookup(kv.EncodeUint64(uint64(i % 100000))); err != nil || !found {
			b.Fatal(err, found)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	r := benchTree(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := r.NewScan(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, _, ok, err := s.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
}
