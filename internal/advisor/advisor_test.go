package advisor

import (
	"testing"

	"repro/internal/core"
)

func TestRecommendCoversAllStrategies(t *testing.T) {
	_, report, err := Recommend(DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Estimates) != 4 {
		t.Fatalf("probed %d strategies", len(report.Estimates))
	}
	seen := map[core.Strategy]bool{}
	for i, e := range report.Estimates {
		if e.Total() <= 0 {
			t.Errorf("estimate %d has non-positive total", i)
		}
		seen[e.Strategy] = true
	}
	if len(seen) != 4 {
		t.Error("duplicate strategies in report")
	}
	for i := 1; i < len(report.Estimates); i++ {
		if report.Estimates[i].Total() < report.Estimates[i-1].Total() {
			t.Error("report not sorted by total cost")
		}
	}
	if report.String() == "" {
		t.Error("empty report rendering")
	}
}

// TestWriteHeavyPrefersLazy: an update-heavy, write-mostly workload is the
// Validation strategy's home turf (Figure 14) — Eager must never win it.
func TestWriteHeavyPrefersLazy(t *testing.T) {
	p := Profile{
		UpdateRatio:          0.5,
		QueriesPerKiloWrites: 0.5,
		QuerySelectivity:     0.001,
		NumSecondaries:       2,
		RecordBytes:          500,
	}
	best, report, err := Recommend(p)
	if err != nil {
		t.Fatal(err)
	}
	if best == core.Eager {
		t.Fatalf("Eager recommended for a write-heavy workload:\n%s", report)
	}
	// Eager must rank last or next-to-last on ingest time.
	var eager, validation Estimate
	for _, e := range report.Estimates {
		switch e.Strategy {
		case core.Eager:
			eager = e
		case core.Validation:
			validation = e
		}
	}
	if eager.IngestTime <= validation.IngestTime {
		t.Errorf("eager ingest %v <= validation %v", eager.IngestTime, validation.IngestTime)
	}
}

// TestQueryHeavyRewardsEagerQueries: with many selective non-index-only
// queries and few updates, Eager's always-clean indexes must show the
// lowest query time even if its ingestion is slowest.
func TestQueryHeavyRewardsEagerQueries(t *testing.T) {
	p := Profile{
		UpdateRatio:          0.3,
		QueriesPerKiloWrites: 40,
		QuerySelectivity:     0.001,
		NumSecondaries:       1,
		RecordBytes:          500,
	}
	_, report, err := Recommend(p)
	if err != nil {
		t.Fatal(err)
	}
	var eager core.Strategy = core.Eager
	var eagerQ, worstQ int64
	for _, e := range report.Estimates {
		if e.Strategy == eager {
			eagerQ = int64(e.QueryTime)
		}
		if int64(e.QueryTime) > worstQ {
			worstQ = int64(e.QueryTime)
		}
	}
	if eagerQ == worstQ && worstQ > 0 {
		t.Errorf("eager has the worst query time:\n%s", report)
	}
}

// TestOldScanHeavyFavorsMutableBitmap: old-data filter scans are where the
// Mutable-bitmap strategy dominates (Figure 19); with updates present its
// scan time must beat Validation's.
func TestOldScanHeavyFavorsMutableBitmap(t *testing.T) {
	p := Profile{
		UpdateRatio:              0.5,
		FilterScansPerKiloWrites: 10,
		NumSecondaries:           1,
		RecordBytes:              500,
	}
	_, report, err := Recommend(p)
	if err != nil {
		t.Fatal(err)
	}
	var mb, val Estimate
	for _, e := range report.Estimates {
		switch e.Strategy {
		case core.MutableBitmap:
			mb = e
		case core.Validation:
			val = e
		}
	}
	if mb.ScanTime >= val.ScanTime {
		t.Errorf("mutable-bitmap scans %v >= validation %v:\n%s", mb.ScanTime, val.ScanTime, report)
	}
}
