// Package advisor implements the paper's third future-work direction
// (Section 7): "since no strategy was found to work best for all workloads,
// we plan to develop auto-tuning techniques so that the system could
// dynamically adopt the optimal maintenance strategies for a given
// workload."
//
// The advisor is measurement-driven: given a workload profile, it replays a
// scaled probe of that workload under each candidate strategy on the
// simulated engine, charges everything to the virtual clock, and recommends
// the strategy with the lowest combined cost. This mirrors how the paper
// itself compares strategies (Section 6), just automated and miniaturized.
package advisor

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Profile describes the workload to tune for.
type Profile struct {
	// UpdateRatio is the fraction of writes hitting existing keys.
	UpdateRatio float64
	// QueriesPerKiloWrites is how many secondary-index queries arrive per
	// 1000 writes.
	QueriesPerKiloWrites float64
	// IndexOnlyFraction is the fraction of those queries that are
	// index-only.
	IndexOnlyFraction float64
	// FilterScansPerKiloWrites is how many range-filter scans (half of
	// them over old data) arrive per 1000 writes.
	FilterScansPerKiloWrites float64
	// QuerySelectivity is the secondary queries' selectivity (fraction).
	QuerySelectivity float64
	// NumSecondaries is the number of secondary indexes.
	NumSecondaries int
	// RecordBytes is the typical record size.
	RecordBytes int
}

// DefaultProfile is a balanced starting point.
func DefaultProfile() Profile {
	return Profile{
		UpdateRatio:              0.1,
		QueriesPerKiloWrites:     5,
		IndexOnlyFraction:        0.2,
		FilterScansPerKiloWrites: 1,
		QuerySelectivity:         0.001,
		NumSecondaries:           1,
		RecordBytes:              500,
	}
}

// Estimate is one strategy's probe measurement.
type Estimate struct {
	Strategy core.Strategy
	// IngestTime, QueryTime, ScanTime are virtual costs of the probe's
	// write, secondary-query and filter-scan phases.
	IngestTime time.Duration
	QueryTime  time.Duration
	ScanTime   time.Duration
}

// Total is the combined probe cost.
func (e Estimate) Total() time.Duration { return e.IngestTime + e.QueryTime + e.ScanTime }

// Report holds all probe measurements, best first.
type Report struct {
	Estimates []Estimate
}

// String renders the report.
func (r Report) String() string {
	out := ""
	for _, e := range r.Estimates {
		out += fmt.Sprintf("%-16s total=%-12v ingest=%-12v query=%-12v scan=%v\n",
			e.Strategy, e.Total(), e.IngestTime, e.QueryTime, e.ScanTime)
	}
	return out
}

// probe scale: large enough that datasets outgrow the probe cache, small
// enough that a recommendation takes well under a second of real time.
const (
	probeWrites   = 8000
	probePageSize = 8 << 10
	probeCache    = 1 << 20
	probeBudget   = 96 << 10
)

// Recommend replays the profile under every applicable strategy and
// returns the cheapest, with the full report.
func Recommend(p Profile) (core.Strategy, Report, error) {
	if p.NumSecondaries < 1 {
		p.NumSecondaries = 1
	}
	candidates := []core.Strategy{core.Eager, core.Validation, core.MutableBitmap, core.DeletedKey}
	var report Report
	for _, s := range candidates {
		est, err := probeStrategy(s, p)
		if err != nil {
			return 0, Report{}, err
		}
		report.Estimates = append(report.Estimates, est)
	}
	sort.Slice(report.Estimates, func(i, j int) bool {
		return report.Estimates[i].Total() < report.Estimates[j].Total()
	})
	return report.Estimates[0].Strategy, report, nil
}

func probeStrategy(s core.Strategy, p Profile) (Estimate, error) {
	env := metrics.NewEnv()
	profile := storage.ScaledHDD(probePageSize)
	profile.ReadAheadPages = 8
	store := storage.NewStore(storage.NewDisk(profile, env), probeCache, env)
	cfg := core.Config{
		Store:         store,
		Strategy:      s,
		FilterExtract: workload.CreationOf,
		MemoryBudget:  probeBudget,
		UsePKIndex:    true,
		BloomFPR:      0.01,
		Policy:        lsm.NewTiering(0),
		MergeRepair:   s == core.Validation,
		DisableWAL:    true,
		Seed:          99,
	}
	for i := 0; i < p.NumSecondaries; i++ {
		cfg.Secondaries = append(cfg.Secondaries, core.SecondarySpec{
			Name:    fmt.Sprintf("user%d", i),
			Extract: workload.UserIDOf,
		})
	}
	ds, err := core.Open(cfg)
	if err != nil {
		return Estimate{}, err
	}

	msg := p.RecordBytes - 14
	if msg < 1 {
		msg = 1
	}
	wcfg := workload.DefaultConfig(7)
	wcfg.MessageMin, wcfg.MessageMax = msg, msg
	wcfg.UpdateRatio = p.UpdateRatio
	gen := workload.NewGenerator(wcfg)

	est := Estimate{Strategy: s}
	start := env.Clock.Now()
	for i := 0; i < probeWrites; i++ {
		op := gen.Next()
		if err := ds.Upsert(op.Tweet.PK(), op.Tweet.Encode()); err != nil {
			return Estimate{}, err
		}
	}
	est.IngestTime = env.Clock.Now() - start

	// Secondary queries with the strategy's natural validation method.
	method := query.Timestamp
	switch s {
	case core.Eager:
		method = query.NoValidation
	case core.DeletedKey:
		method = query.DeletedKeyCheck
	}
	nQueries := int(p.QueriesPerKiloWrites * probeWrites / 1000)
	width := int(p.QuerySelectivity * float64(wcfg.UserIDRange))
	if width < 1 {
		width = 1
	}
	si := ds.Secondaries()[0]
	start = env.Clock.Now()
	for q := 0; q < nQueries; q++ {
		lo := uint32((q * 17029) % (int(wcfg.UserIDRange) - width))
		indexOnly := float64(q%10)/10 < p.IndexOnlyFraction
		_, err := query.SecondaryRange(ds, si, workload.UserKey(lo), workload.UserKey(lo+uint32(width)-1),
			query.SecondaryQueryOptions{
				Validation: method,
				IndexOnly:  indexOnly && method != query.Direct,
				Lookup:     query.DefaultLookupConfig(),
			})
		if err != nil {
			return Estimate{}, err
		}
	}
	est.QueryTime = env.Clock.Now() - start

	// Filter scans, alternating recent and old windows.
	nScans := int(p.FilterScansPerKiloWrites * probeWrites / 1000)
	span := ds.CurrentTS()
	start = env.Clock.Now()
	for q := 0; q < nScans; q++ {
		w := span / 20
		var lo, hi int64
		if q%2 == 0 {
			lo, hi = span-w, span // recent
		} else {
			lo, hi = 0, w // old
		}
		if err := query.FilterScan(ds, lo, hi, func(kv.Entry) {}); err != nil {
			return Estimate{}, err
		}
	}
	est.ScanTime = env.Clock.Now() - start
	return est, nil
}
