package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sampleLine matches one exposition sample against the 0.0.4 text-format
// grammar: metric name, optional label set, and a float value.
var sampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

func TestPromExpositionGrammar(t *testing.T) {
	var h Hist
	h.Record(50 * time.Microsecond)
	h.Record(3 * time.Millisecond)
	h.Record(40 * time.Millisecond)
	h.Record(2 * time.Second)

	var w PromWriter
	w.Counter("lsm_requests_total", "Requests.", 42)
	w.Gauge("lsm_active", "Active.", 3)
	w.Histogram("lsm_latency_seconds", "Latency.", h.Snapshot(), "op", "get")
	w.Histogram("lsm_latency_seconds", "Latency.", h.Snapshot(), "op", `we"ird\`)
	body := string(w.Bytes())

	helpSeen := map[string]int{}
	typeSeen := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			helpSeen[strings.Fields(line)[2]]++
		case strings.HasPrefix(line, "# TYPE "):
			typeSeen[strings.Fields(line)[2]]++
		default:
			if !sampleLine.MatchString(line) {
				t.Errorf("line fails exposition grammar: %q", line)
			}
		}
	}
	for _, name := range []string{"lsm_requests_total", "lsm_active", "lsm_latency_seconds"} {
		if helpSeen[name] != 1 || typeSeen[name] != 1 {
			t.Errorf("%s: HELP×%d TYPE×%d, want exactly one each", name, helpSeen[name], typeSeen[name])
		}
	}
}

func TestPromHistogramCumulativity(t *testing.T) {
	var h Hist
	durations := []time.Duration{
		30 * time.Microsecond, // ≤ 0.0001
		200 * time.Microsecond,
		700 * time.Microsecond,
		2 * time.Millisecond,
		2 * time.Millisecond,
		30 * time.Millisecond,
		400 * time.Millisecond,
		3 * time.Second,
		30 * time.Second, // beyond the ladder → only +Inf
	}
	for _, d := range durations {
		h.Record(d)
	}
	var w PromWriter
	w.Histogram("lat", "L.", h.Snapshot())
	body := string(w.Bytes())

	bucketRe := regexp.MustCompile(`^lat_bucket\{le="([^"]+)"\} (\d+)$`)
	var prevCum int64 = -1
	var prevLe float64
	var infCum, count, bucketLines int64
	for _, line := range strings.Split(body, "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			bucketLines++
			cum, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket count %q: %v", m[2], err)
			}
			if cum < prevCum {
				t.Fatalf("cumulative count decreased at le=%s: %d < %d", m[1], cum, prevCum)
			}
			if m[1] == "+Inf" {
				infCum = cum
			} else {
				le, err := strconv.ParseFloat(m[1], 64)
				if err != nil || le <= prevLe {
					t.Fatalf("le ladder not increasing: %q after %v", m[1], prevLe)
				}
				prevLe = le
				// The cumulative count must equal the number of recorded
				// durations ≤ le (every recorded value sits far from bucket
				// edges, so histogram bucketing cannot blur the comparison).
				var want int64
				for _, d := range durations {
					if d.Seconds() <= le {
						want++
					}
				}
				if cum != want {
					t.Errorf("le=%s: cum = %d, want %d", m[1], cum, want)
				}
			}
			prevCum = cum
		}
		if strings.HasPrefix(line, "lat_count ") {
			var err error
			if count, err = strconv.ParseInt(strings.Fields(line)[1], 10, 64); err != nil {
				t.Fatalf("bad _count line %q: %v", line, err)
			}
		}
	}
	if bucketLines != int64(len(promLadder))+1 {
		t.Fatalf("bucket lines = %d, want %d", bucketLines, len(promLadder)+1)
	}
	if infCum != int64(len(durations)) || count != int64(len(durations)) {
		t.Fatalf("+Inf = %d, _count = %d, want both %d", infCum, count, len(durations))
	}
}
