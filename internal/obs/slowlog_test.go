package obs

import (
	"errors"
	"testing"
)

func TestSlowLogRingOverflow(t *testing.T) {
	l := NewSlowLog(4, 0)
	for i := 1; i <= 10; i++ {
		l.Add(SlowEntry{Op: "get", TotalMicros: int64(i)})
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	es := l.Entries()
	if len(es) != 4 {
		t.Fatalf("Entries = %d, want 4", len(es))
	}
	// Oldest-first, holding the 4 most recent adds with their global seqs.
	for i, e := range es {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq || e.TotalMicros != int64(7+i) {
			t.Fatalf("entry %d = seq %d total %d, want seq %d total %d",
				i, e.Seq, e.TotalMicros, wantSeq, 7+i)
		}
		if e.AgoMillis < 0 {
			t.Fatalf("entry %d AgoMillis = %d, want ≥ 0", i, e.AgoMillis)
		}
	}
}

func TestSlowLogBelowCapacity(t *testing.T) {
	l := NewSlowLog(0, 0) // default capacity
	l.Add(SlowEntry{Op: "upsert"})
	l.Add(SlowEntry{Op: "get"})
	es := l.Entries()
	if len(es) != 2 || es[0].Op != "upsert" || es[1].Op != "get" || es[0].Seq != 1 || es[1].Seq != 2 {
		t.Fatalf("Entries = %+v", es)
	}
}

func TestJournalRingAndSummary(t *testing.T) {
	j := NewJournal(3)
	sj := ShardJournal{J: j, Shard: 2}

	op := sj.Begin(JFlush, "batch")
	if got := j.Summary(); got.ActiveFlushes != 1 {
		t.Fatalf("ActiveFlushes = %d, want 1", got.ActiveFlushes)
	}
	op.End(1000, 0, 3, nil)

	boom := errors.New("disk on fire")
	for i := 0; i < 4; i++ {
		mop := sj.Begin(JMerge, "primary")
		var err error
		if i == 3 {
			err = boom
		}
		mop.End(int64(100*(i+1)), 2, 1, err)
	}

	s := j.Summary()
	if s.Flushes != 1 || s.FlushErrors != 0 || s.FlushBytes != 1000 || s.FlushOutputComponents != 3 {
		t.Fatalf("flush totals = %+v", s)
	}
	if s.Merges != 4 || s.MergeErrors != 1 || s.MergeBytes != 100+200+300+400 || s.MergeInputComponents != 8 {
		t.Fatalf("merge totals = %+v", s)
	}
	if s.ActiveFlushes != 0 || s.ActiveMerges != 0 {
		t.Fatalf("actives = %d/%d, want 0/0", s.ActiveFlushes, s.ActiveMerges)
	}

	// Ring keeps the 3 newest of 5 events, oldest-first, seq preserved.
	es := j.Events()
	if len(es) != 3 {
		t.Fatalf("Events = %d, want 3", len(es))
	}
	if es[0].Seq != 3 || es[2].Seq != 5 {
		t.Fatalf("event seqs = %d..%d, want 3..5", es[0].Seq, es[2].Seq)
	}
	last := es[2]
	if last.Kind != "merge" || last.Shard != 2 || last.Tree != "primary" || last.Err != boom.Error() {
		t.Fatalf("last event = %+v", last)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	op := j.Begin(JFlush, 0, "x")
	op.End(1, 2, 3, nil) // must not panic
	if s := j.Summary(); s != (JournalSummary{}) {
		t.Fatalf("nil Summary = %+v", s)
	}
	if es := j.Events(); es != nil {
		t.Fatalf("nil Events = %v", es)
	}
	var sj ShardJournal // zero value disables recording
	sj.Begin(JMerge, "y").End(0, 0, 0, nil)
}
