package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// promLadder is the bucket ladder (seconds) the exposition format
// reports. The internal histogram is much finer; exposition buckets are
// computed by summing every internal bucket whose upper bound fits, so
// the cumulative counts are monotone by construction and +Inf always
// equals the observation count.
var promLadder = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// PromWriter accumulates Prometheus text-format (version 0.0.4)
// exposition output. Metrics of the same name must be written
// consecutively; the writer emits # HELP/# TYPE headers once per name.
type PromWriter struct {
	buf  bytes.Buffer
	seen map[string]bool
}

func (w *PromWriter) header(name, help, typ string) {
	if w.seen == nil {
		w.seen = make(map[string]bool)
	}
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	fmt.Fprintf(&w.buf, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// labelString renders alternating key,value pairs as {k="v",...}.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Counter writes one counter sample. labels are alternating key,value.
func (w *PromWriter) Counter(name, help string, value int64, labels ...string) {
	w.header(name, help, "counter")
	fmt.Fprintf(&w.buf, "%s%s %d\n", name, labelString(labels), value)
}

// Gauge writes one gauge sample.
func (w *PromWriter) Gauge(name, help string, value float64, labels ...string) {
	w.header(name, help, "gauge")
	fmt.Fprintf(&w.buf, "%s%s %s\n", name, labelString(labels), formatFloat(value))
}

// Histogram writes one histogram in exposition format: cumulative
// `_bucket{le=...}` samples over promLadder, then `_sum` and `_count`.
// The snapshot's nanosecond values are reported in seconds.
func (w *PromWriter) Histogram(name, help string, s HistSnapshot, labels ...string) {
	w.header(name, help, "histogram")
	idxs := s.sortedBuckets()
	var cum int64
	k := 0
	for _, le := range promLadder {
		leNanos := int64(le * 1e9)
		for k < len(idxs) {
			_, hi := bucketBounds(idxs[k])
			if hi > leNanos {
				break
			}
			cum += int64(s.Buckets[idxs[k]])
			k++
		}
		fmt.Fprintf(&w.buf, "%s_bucket%s %d\n",
			name, labelString(append(append([]string(nil), labels...), "le", formatFloat(le))), cum)
	}
	fmt.Fprintf(&w.buf, "%s_bucket%s %d\n",
		name, labelString(append(append([]string(nil), labels...), "le", "+Inf")), s.Count)
	fmt.Fprintf(&w.buf, "%s_sum%s %s\n", name, labelString(labels), formatFloat(float64(s.SumNanos)/1e9))
	fmt.Fprintf(&w.buf, "%s_count%s %d\n", name, labelString(labels), s.Count)
}

// HistogramMap writes one histogram per map entry, with the map key as
// the given label, in sorted key order (the exposition format requires
// same-name metrics to be consecutive).
func (w *PromWriter) HistogramMap(name, help, label string, m map[string]HistSnapshot) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.Histogram(name, help, m[k], label, k)
	}
}

// Bytes returns the accumulated exposition body.
func (w *PromWriter) Bytes() []byte { return w.buf.Bytes() }
