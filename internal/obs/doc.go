// Package obs is the observability layer: latency histograms, a per-op
// registry, a slow-request ring, a maintenance journal, and a Prometheus
// text-format writer. Everything in it is stdlib-only and designed so
// that turning observability on never changes what the engine computes —
// it only measures.
//
// # Histogram design
//
// Hist is a log-bucketed histogram over non-negative int64 nanosecond
// values. Values below 64ns get exact width-1 buckets; above that each
// power-of-two octave is split into 32 sub-buckets, so a bucket's width
// is at most 1/32 of its lower bound and the midpoint a quantile reports
// is within ~1.6% of any value in the bucket (comfortably inside the
// ~5% budget the tests enforce). 1920 buckets cover the full int64 range
// in 15KB of atomic counters per histogram.
//
// # Allocation and blocking invariants
//
//   - Hist.Record / Hist.RecordNanos and Registry.RecordOp /
//     Registry.RecordStage are lock-free and allocation-free: an atomic
//     add on one bucket, an atomic add on the sum, and a CAS loop on the
//     max. They never block and are safe from any goroutine, including
//     the request hot path.
//   - Hist.Snapshot, Registry.*Snapshots, Journal.Events/Summary,
//     SlowLog.Entries and the PromWriter allocate freely — they are dump
//     paths, called by HTTP handlers and tests, never per-request.
//   - SlowLog.Add and Journal begin/end take a mutex but only touch
//     preallocated ring memory under it — no I/O, no channel sends, no
//     allocation while locked (the lockio analyzer audits this).
//   - The journal and slow log are bounded rings: a stalled or absent
//     reader can never make them grow.
//
// # Time
//
// obs never reads the engine's virtual clock. Durations are measured by
// callers (the server uses the wall clock; core uses its Sleeper's
// monotonic reading) and handed in; ring entries are stamped with a
// process-monotonic offset used only to report event age. None of it
// feeds back into engine decisions, which is what keeps deterministic
// simulation runs bit-identical with observability on or off.
package obs
