package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"
)

// lcg is a tiny deterministic PRNG so the error-bound test needs no seed
// plumbing and never flakes.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

func TestBucketOfBoundsRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose [lo, hi] range contains it,
	// and for values ≥ 64 the bucket must be narrow enough for the ~5%
	// relative-error budget (width ≤ lo/32 → midpoint error ≤ ~1.6%).
	var r lcg
	values := []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, math.MaxInt64}
	for i := 0; i < 10000; i++ {
		values = append(values, int64(r.next()>>1))
	}
	for _, v := range values {
		idx := bucketOf(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d]", v, idx, lo, hi)
		}
		if v >= 64 && hi != math.MaxInt64 {
			if width := hi - lo; width > lo/histSub {
				t.Fatalf("bucket %d too wide: [%d, %d] width %d > lo/%d", idx, lo, hi, width, histSub)
			}
		}
	}
	// Adjacent buckets must tile the value space with no gaps or overlaps.
	prevHi := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi+1 && prevHi != math.MaxInt64 {
			t.Fatalf("bucket %d starts at %d, want %d", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d inverted: [%d, %d]", i, lo, hi)
		}
		prevHi = hi
	}
}

func TestQuantileErrorVsExactSamples(t *testing.T) {
	// Record a skewed synthetic latency distribution and compare the
	// histogram's quantiles against the exact values from the sorted
	// sample set: every quantile must be within 5% relative error.
	var r lcg
	const n = 50000
	var h Hist
	exact := make([]int64, n)
	for i := range exact {
		// Log-uniform over ~[1µs, 1s]: u in [0,60) bits of magnitude.
		shift := r.next() % 20
		v := int64(1000 + (r.next() % 1000 << shift))
		exact[i] = v
		h.RecordNanos(v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("Count = %d, want %d", s.Count, n)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(n))) - 1
		want := exact[rank]
		got := s.Quantile(q)
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		if relErr > 0.05 {
			t.Errorf("q=%v: got %d, exact %d, rel err %.4f > 0.05", q, got, want, relErr)
		}
	}
	if s.MaxNanos != exact[n-1] {
		t.Errorf("MaxNanos = %d, want %d", s.MaxNanos, exact[n-1])
	}
	var sum int64
	for _, v := range exact {
		sum += v
	}
	if s.SumNanos != sum {
		t.Errorf("SumNanos = %d, want %d", s.SumNanos, sum)
	}
}

func TestHistConcurrentRecord(t *testing.T) {
	// Concurrent recorders must neither race (run under -race) nor lose
	// observations.
	var h Hist
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := lcg(w + 1)
			for i := 0; i < per; i++ {
				h.RecordNanos(int64(r.next() % 1e9))
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
}

func TestSnapshotAddSub(t *testing.T) {
	var ha, hb Hist
	r := lcg(7)
	for i := 0; i < 3000; i++ {
		ha.RecordNanos(int64(r.next() % 1e8))
	}
	a := ha.Snapshot()
	for i := 0; i < 2000; i++ {
		v := int64(r.next() % 1e8)
		ha.RecordNanos(v)
		hb.RecordNanos(v)
	}
	after := ha.Snapshot()
	b := hb.Snapshot()

	// The interval delta must equal a histogram that saw only the interval.
	delta := after.Sub(a)
	if delta.Count != b.Count || delta.SumNanos != b.SumNanos {
		t.Fatalf("Sub: count/sum = %d/%d, want %d/%d", delta.Count, delta.SumNanos, b.Count, b.SumNanos)
	}
	for i, n := range b.Buckets {
		if delta.Buckets[i] != n {
			t.Fatalf("Sub: bucket %d = %d, want %d", i, delta.Buckets[i], n)
		}
	}
	if len(delta.Buckets) != len(b.Buckets) {
		t.Fatalf("Sub: %d buckets, want %d", len(delta.Buckets), len(b.Buckets))
	}

	// Add must invert Sub: a + (after - a) == after, bucket for bucket.
	sum := a.Add(delta)
	if sum.Count != after.Count || sum.SumNanos != after.SumNanos {
		t.Fatalf("Add: count/sum = %d/%d, want %d/%d", sum.Count, sum.SumNanos, after.Count, after.SumNanos)
	}
	for i, n := range after.Buckets {
		if sum.Buckets[i] != n {
			t.Fatalf("Add: bucket %d = %d, want %d", i, sum.Buckets[i], n)
		}
	}

	// Neither operand may be mutated.
	if a.Count != 3000 {
		t.Fatalf("Add/Sub mutated an operand: a.Count = %d", a.Count)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	var h Hist
	h.Record(5 * time.Millisecond)
	s := h.Snapshot()
	got := s.Quantile(0.5)
	want := int64(5 * time.Millisecond)
	if rel := math.Abs(float64(got-want)) / float64(want); rel > 0.05 {
		t.Fatalf("single-sample p50 = %d, want ~%d", got, want)
	}
	sum := s.Summary()
	if sum.Count != 1 || sum.MaxMicros != want/1000 {
		t.Fatalf("Summary = %+v", sum)
	}
}

func TestRegistryClassesAndStages(t *testing.T) {
	r := NewRegistry()
	r.RecordOp(OpGet, time.Millisecond)
	r.RecordOp(OpUpsert, 2*time.Millisecond)
	r.RecordOp(Op(200), time.Millisecond) // out of range → other
	r.RecordStage(StageEngine, time.Millisecond)
	r.RecordStage(Stage(200), time.Millisecond) // out of range → dropped

	ops := r.OpSnapshots()
	if len(ops) != 3 {
		t.Fatalf("op snapshots = %v, want get/upsert/other", ops)
	}
	for _, k := range []string{"get", "upsert", "other"} {
		if ops[k].Count != 1 {
			t.Fatalf("class %q count = %d, want 1", k, ops[k].Count)
		}
	}
	st := r.StageSnapshots()
	if len(st) != 1 || st["engine"].Count != 1 {
		t.Fatalf("stage snapshots = %v, want engine only", st)
	}
	sums := Summaries(ops)
	if sums["get"].Count != 1 {
		t.Fatalf("Summaries = %v", sums)
	}
}
