package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Bucket layout: values in [0,64) map to width-1 buckets (index ==
// value); larger values split each power-of-two octave into 2^histSubBits
// sub-buckets. See doc.go for the error analysis.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range: the top index
	// is (63-4)<<5 | 31 = 1919, from bucketOf(math.MaxInt64).
	histBuckets = (63-4)*histSub + histSub
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	if u < 64 {
		return int(u)
	}
	e := uint(bits.Len64(u)) - 1 // ≥ 6
	sub := (u >> (e - histSubBits)) & (histSub - 1)
	return int(uint64(e-4)<<histSubBits | sub)
}

// bucketBounds returns the inclusive [lo, hi] value range of a bucket.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < 64 {
		return int64(idx), int64(idx)
	}
	g := uint(idx) >> histSubBits
	e := g + 4
	sub := uint64(idx) & (histSub - 1)
	if e >= 63 {
		// The top octave's upper halves exceed MaxInt64; clamp.
		l := uint64(1)<<63 | sub<<(63-histSubBits)
		if l > math.MaxInt64 {
			return math.MaxInt64, math.MaxInt64
		}
		return int64(l), math.MaxInt64
	}
	l := uint64(1)<<e | sub<<(e-histSubBits)
	w := uint64(1) << (e - histSubBits)
	return int64(l), int64(l + w - 1)
}

// bucketMid is the representative value a quantile reports for a bucket.
func bucketMid(idx int) int64 {
	lo, hi := bucketBounds(idx)
	return lo + (hi-lo)/2
}

// Hist is a lock-free log-bucketed histogram of nanosecond durations.
// Record is allocation-free and safe for concurrent use; the zero value
// is ready to use. A Hist is large (~15KB) — embed, don't copy.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) { h.RecordNanos(int64(d)) }

// RecordNanos adds one observation in nanoseconds. Negative values clamp
// to zero.
func (h *Hist) RecordNanos(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot captures the histogram as a sparse, JSON-friendly value.
// It allocates; call it from dump paths, not per-request.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{MaxNanos: h.max.Load(), SumNanos: h.sum.Load()}
	for i := range h.counts {
		if n := h.counts[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]uint64)
			}
			s.Buckets[i] = n
			s.Count += int64(n)
		}
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Hist: sparse bucket counts
// keyed by bucket index, plus exact sum and max. Snapshots marshal to
// JSON and support Add/Sub for aggregation and interval deltas.
type HistSnapshot struct {
	Count    int64          `json:"count"`
	SumNanos int64          `json:"sum_ns"`
	MaxNanos int64          `json:"max_ns"`
	Buckets  map[int]uint64 `json:"buckets,omitempty"`
}

// Add returns the element-wise sum of two snapshots (max is the larger
// of the two). Neither input is mutated.
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count:    s.Count + o.Count,
		SumNanos: s.SumNanos + o.SumNanos,
		MaxNanos: max(s.MaxNanos, o.MaxNanos),
	}
	if len(s.Buckets)+len(o.Buckets) > 0 {
		out.Buckets = make(map[int]uint64, len(s.Buckets)+len(o.Buckets))
		for i, n := range s.Buckets {
			out.Buckets[i] += n
		}
		for i, n := range o.Buckets {
			out.Buckets[i] += n
		}
	}
	return out
}

// Sub returns s minus o, for before/after interval deltas of the same
// histogram (bucket counts are monotone, so the difference is exact).
// MaxNanos keeps s's value — a conservative upper bound, since the max
// within the interval is not recoverable from cumulative counters.
// Neither input is mutated.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count:    s.Count - o.Count,
		SumNanos: s.SumNanos - o.SumNanos,
		MaxNanos: s.MaxNanos,
	}
	for i, n := range s.Buckets {
		d := n - o.Buckets[i]
		if d != 0 {
			if out.Buckets == nil {
				out.Buckets = make(map[int]uint64, len(s.Buckets))
			}
			out.Buckets[i] = d
		}
	}
	return out
}

// sortedBuckets returns the non-empty bucket indices in ascending order.
func (s HistSnapshot) sortedBuckets() []int {
	idxs := make([]int, 0, len(s.Buckets))
	for i := range s.Buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return idxs
}

// Quantile returns the q-quantile (0 < q ≤ 1) in nanoseconds using the
// nearest-rank rule, or 0 for an empty snapshot. The result is a bucket
// midpoint, within the histogram's relative error of the true value.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, i := range s.sortedBuckets() {
		cum += int64(s.Buckets[i])
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return s.MaxNanos
}

// estMax returns the best max estimate for this snapshot: the exact
// tracked max when it falls inside the top non-empty bucket, otherwise
// that bucket's midpoint (an interval delta keeps only the lifetime max,
// which may predate the interval).
func (s HistSnapshot) estMax() int64 {
	top := -1
	for i := range s.Buckets {
		if i > top {
			top = i
		}
	}
	if top < 0 {
		return 0
	}
	lo, hi := bucketBounds(top)
	if s.MaxNanos >= lo && s.MaxNanos <= hi {
		return s.MaxNanos
	}
	return bucketMid(top)
}

// Summary condenses a snapshot into the percentile digest served by
// /stats and printed by lsmload. Values are microseconds.
type Summary struct {
	Count      int64 `json:"count"`
	P50Micros  int64 `json:"p50_us"`
	P90Micros  int64 `json:"p90_us"`
	P99Micros  int64 `json:"p99_us"`
	MaxMicros  int64 `json:"max_us"`
	MeanMicros int64 `json:"mean_us"`
}

// Summary computes the percentile digest of the snapshot.
func (s HistSnapshot) Summary() Summary {
	out := Summary{Count: s.Count}
	if s.Count <= 0 {
		return out
	}
	out.P50Micros = s.Quantile(0.50) / 1000
	out.P90Micros = s.Quantile(0.90) / 1000
	out.P99Micros = s.Quantile(0.99) / 1000
	out.MaxMicros = s.estMax() / 1000
	out.MeanMicros = s.SumNanos / s.Count / 1000
	return out
}
