package obs

import "time"

// Op classifies a request for the per-op-class latency histograms.
type Op uint8

const (
	OpGet Op = iota
	OpUpsert
	OpInsert
	OpDelete
	OpApplyBatch
	OpSecondaryQuery
	OpFilterScan
	// OpOther covers the control-plane ops (PING, STATS, FLUSH) whose
	// latency is not interesting enough for a class of its own.
	OpOther
	NumOps
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpUpsert:
		return "upsert"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpApplyBatch:
		return "apply_batch"
	case OpSecondaryQuery:
		return "secondary_query"
	case OpFilterScan:
		return "filter_scan"
	default:
		return "other"
	}
}

// Stage names one segment of a request's server-side lifetime.
type Stage uint8

const (
	// StageDecode is frame decoding, after the frame's bytes arrived.
	StageDecode Stage = iota
	// StageCoalesce is the wait between submitting a single write to the
	// coalescer and a drainer picking it up.
	StageCoalesce
	// StageEngine is the engine call (Get/ApplyBatch/query/scan).
	StageEngine
	// StageEncode is response frame encoding.
	StageEncode
	// StageWrite is the wait from response enqueue until its frame has
	// been written to the socket buffer.
	StageWrite
	NumStages
)

func (s Stage) String() string {
	switch s {
	case StageDecode:
		return "decode"
	case StageCoalesce:
		return "coalesce_wait"
	case StageEngine:
		return "engine"
	case StageEncode:
		return "encode"
	case StageWrite:
		return "write"
	default:
		return "unknown"
	}
}

// Registry holds one latency histogram per op class (total server-side
// latency) and one per request stage. Record paths are lock-free and
// allocation-free; snapshot paths allocate. A Registry is large
// (~200KB of bucket counters) — share one per server.
type Registry struct {
	ops    [NumOps]Hist
	stages [NumStages]Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// RecordOp records one request's total server-side latency.
func (r *Registry) RecordOp(op Op, d time.Duration) {
	if op >= NumOps {
		op = OpOther
	}
	r.ops[op].Record(d)
}

// RecordStage records time spent in one request stage.
func (r *Registry) RecordStage(st Stage, d time.Duration) {
	if st >= NumStages {
		return
	}
	r.stages[st].Record(d)
}

// OpHist exposes one op-class histogram (for tests and direct recording).
func (r *Registry) OpHist(op Op) *Hist { return &r.ops[op] }

// OpSnapshots captures every op-class histogram with at least one
// observation, keyed by class name.
func (r *Registry) OpSnapshots() map[string]HistSnapshot {
	out := make(map[string]HistSnapshot, NumOps)
	for op := Op(0); op < NumOps; op++ {
		if s := r.ops[op].Snapshot(); s.Count > 0 {
			out[op.String()] = s
		}
	}
	return out
}

// StageSnapshots captures every stage histogram with at least one
// observation, keyed by stage name.
func (r *Registry) StageSnapshots() map[string]HistSnapshot {
	out := make(map[string]HistSnapshot, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		if s := r.stages[st].Snapshot(); s.Count > 0 {
			out[st.String()] = s
		}
	}
	return out
}

// Summaries condenses a snapshot map into percentile digests.
func Summaries(m map[string]HistSnapshot) map[string]Summary {
	out := make(map[string]Summary, len(m))
	for k, s := range m {
		out[k] = s.Summary()
	}
	return out
}
