package obs

import (
	"sync"
	"time"
)

// procStart anchors the process-monotonic offsets stamped on ring
// entries; only ages derived from it are ever reported.
var procStart = time.Now()

func monotonic() time.Duration { return time.Since(procStart) }

// SlowEntry is one over-threshold request with its per-stage breakdown.
type SlowEntry struct {
	Seq            uint64 `json:"seq"`
	Op             string `json:"op"`
	ReqID          uint64 `json:"req_id"`
	TotalMicros    int64  `json:"total_us"`
	DecodeMicros   int64  `json:"decode_us"`
	CoalesceMicros int64  `json:"coalesce_wait_us"`
	EngineMicros   int64  `json:"engine_us"`
	EncodeMicros   int64  `json:"encode_us"`
	WriteMicros    int64  `json:"write_us"`
	// AgoMillis is how long before the dump the request completed;
	// filled by Entries.
	AgoMillis int64 `json:"ago_ms"`

	at time.Duration // process-monotonic completion offset
}

// SlowLog is a bounded ring of the most recent slow requests. Add is
// mutex-guarded but touches only preallocated ring memory; overflow
// evicts the oldest entry.
type SlowLog struct {
	threshold time.Duration

	mu   sync.Mutex
	ring []SlowEntry
	seq  uint64
}

// NewSlowLog builds a ring of the given capacity (≤0 means 128) and
// threshold.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowLog{ring: make([]SlowEntry, capacity), threshold: threshold}
}

// Threshold returns the slow-request cutoff.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Add appends one entry, evicting the oldest at capacity. Seq and the
// completion timestamp are assigned here.
func (l *SlowLog) Add(e SlowEntry) {
	at := monotonic()
	l.mu.Lock()
	e.Seq = l.seq + 1
	e.at = at
	l.ring[l.seq%uint64(len(l.ring))] = e
	l.seq++
	l.mu.Unlock()
}

// Len reports how many entries are currently retained.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seq < uint64(len(l.ring)) {
		return int(l.seq)
	}
	return len(l.ring)
}

// Total reports how many entries were ever added (Seq of the newest).
func (l *SlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Entries returns the retained entries oldest-first with AgoMillis
// filled in.
func (l *SlowLog) Entries() []SlowEntry {
	now := monotonic()
	l.mu.Lock()
	defer l.mu.Unlock()
	n := uint64(len(l.ring))
	start := uint64(0)
	if l.seq > n {
		start = l.seq - n
	}
	out := make([]SlowEntry, 0, l.seq-start)
	for s := start; s < l.seq; s++ {
		e := l.ring[s%n]
		e.AgoMillis = (now - e.at).Milliseconds()
		out = append(out, e)
	}
	return out
}
