package obs

import (
	"sync"
	"time"
)

// JournalKind distinguishes maintenance event types.
type JournalKind uint8

const (
	JFlush JournalKind = iota
	JMerge
)

func (k JournalKind) String() string {
	if k == JFlush {
		return "flush"
	}
	return "merge"
}

// JournalEvent is one completed flush or merge.
type JournalEvent struct {
	Seq              uint64 `json:"seq"`
	Kind             string `json:"kind"`
	Shard            int    `json:"shard"`
	Tree             string `json:"tree,omitempty"`
	DurationMicros   int64  `json:"duration_us"`
	Bytes            int64  `json:"bytes"`
	InputComponents  int    `json:"input_components"`
	OutputComponents int    `json:"output_components"`
	Err              string `json:"err,omitempty"`
	// AgoMillis is how long before the dump the event ended; filled by
	// Events.
	AgoMillis int64 `json:"ago_ms"`

	end time.Duration
}

// JournalSummary aggregates the journal's lifetime totals plus the
// in-progress gauges.
type JournalSummary struct {
	Flushes               int64 `json:"flushes"`
	FlushErrors           int64 `json:"flush_errors"`
	FlushNanos            int64 `json:"flush_ns"`
	FlushBytes            int64 `json:"flush_bytes"`
	FlushOutputComponents int64 `json:"flush_output_components"`
	Merges                int64 `json:"merges"`
	MergeErrors           int64 `json:"merge_errors"`
	MergeNanos            int64 `json:"merge_ns"`
	MergeBytes            int64 `json:"merge_bytes"`
	MergeInputComponents  int64 `json:"merge_input_components"`
	ActiveFlushes         int64 `json:"active_flushes"`
	ActiveMerges          int64 `json:"active_merges"`
}

// Journal is a bounded ring of maintenance events plus running totals.
// Events are recorded with Begin/End pairs; a nil *Journal is a valid
// disabled journal (Begin returns a nil op whose End is a no-op), so
// callers never branch on enablement.
type Journal struct {
	mu      sync.Mutex
	ring    []JournalEvent
	seq     uint64
	totals  JournalSummary
	actives [2]int64 // in-flight ops by kind
}

// NewJournal builds a ring of the given capacity (≤0 means 256).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 256
	}
	return &Journal{ring: make([]JournalEvent, capacity)}
}

// JournalOp is one maintenance operation in flight, created by Begin and
// finished by End.
type JournalOp struct {
	j     *Journal
	kind  JournalKind
	shard int
	tree  string
	start time.Duration
}

// Begin opens an event. Safe on a nil journal (returns nil).
func (j *Journal) Begin(kind JournalKind, shard int, tree string) *JournalOp {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	j.actives[kind]++
	j.mu.Unlock()
	return &JournalOp{j: j, kind: kind, shard: shard, tree: tree, start: monotonic()}
}

// End closes the event with its outcome and appends it to the ring.
// Safe on a nil op.
func (op *JournalOp) End(bytes int64, inputComponents, outputComponents int, err error) {
	if op == nil {
		return
	}
	end := monotonic()
	ev := JournalEvent{
		Kind:             op.kind.String(),
		Shard:            op.shard,
		Tree:             op.tree,
		DurationMicros:   (end - op.start).Microseconds(),
		Bytes:            bytes,
		InputComponents:  inputComponents,
		OutputComponents: outputComponents,
		end:              end,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	j := op.j
	j.mu.Lock()
	j.actives[op.kind]--
	ev.Seq = j.seq + 1
	j.ring[j.seq%uint64(len(j.ring))] = ev
	j.seq++
	durNs := int64(end - op.start)
	switch op.kind {
	case JFlush:
		j.totals.Flushes++
		j.totals.FlushNanos += durNs
		j.totals.FlushBytes += bytes
		j.totals.FlushOutputComponents += int64(outputComponents)
		if err != nil {
			j.totals.FlushErrors++
		}
	case JMerge:
		j.totals.Merges++
		j.totals.MergeNanos += durNs
		j.totals.MergeBytes += bytes
		j.totals.MergeInputComponents += int64(inputComponents)
		if err != nil {
			j.totals.MergeErrors++
		}
	}
	j.mu.Unlock()
}

// Summary returns the lifetime totals and current gauges. Safe on a nil
// journal (returns zeros).
func (j *Journal) Summary() JournalSummary {
	if j == nil {
		return JournalSummary{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.totals
	s.ActiveFlushes = j.actives[JFlush]
	s.ActiveMerges = j.actives[JMerge]
	return s
}

// Events returns the retained events oldest-first with AgoMillis filled
// in. Safe on a nil journal (returns nil).
func (j *Journal) Events() []JournalEvent {
	if j == nil {
		return nil
	}
	now := monotonic()
	j.mu.Lock()
	defer j.mu.Unlock()
	n := uint64(len(j.ring))
	start := uint64(0)
	if j.seq > n {
		start = j.seq - n
	}
	out := make([]JournalEvent, 0, j.seq-start)
	for s := start; s < j.seq; s++ {
		ev := j.ring[s%n]
		ev.AgoMillis = (now - ev.end).Milliseconds()
		out = append(out, ev)
	}
	return out
}

// ShardJournal binds a journal to one shard so core code records events
// without knowing its own position in the sharding layout. The zero
// value is a disabled journal.
type ShardJournal struct {
	J     *Journal
	Shard int
}

// Begin opens an event against the bound shard; nil-safe.
func (s ShardJournal) Begin(kind JournalKind, tree string) *JournalOp {
	return s.J.Begin(kind, s.Shard, tree)
}
