package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpGet, Key: []byte("pk-7")},
		{ID: 3, Op: OpUpsert, Key: []byte("pk"), Value: []byte("record")},
		{ID: 4, Op: OpInsert, Key: []byte{0, 1, 2}, Value: []byte{0xff}},
		{ID: 5, Op: OpDelete, Key: []byte("gone")},
		{ID: 6, Op: OpApplyBatch, Muts: []Mutation{
			{Op: MutUpsert, PK: []byte("a"), Record: []byte("ra")},
			{Op: MutInsert, PK: []byte("b"), Record: []byte("rb")},
			{Op: MutDelete, PK: []byte("c")},
		}},
		{ID: 7, Op: OpSecondaryQuery, Index: "user", Lo: []byte("l"), Hi: []byte("h"),
			Validation: 2, IndexOnly: true, Limit: 100},
		{ID: 8, Op: OpFilterScan, FilterLo: -5, FilterHi: 1 << 60, Limit: 7},
		{ID: 9, Op: OpStats},
		{ID: 10, Op: OpFlush},
		{ID: 11, Op: OpGet, Key: []byte("pk"), Tenant: "tenant-a"},
		{ID: 12, Op: OpApplyBatch, Tenant: "t/2", Muts: []Mutation{
			{Op: MutDelete, PK: []byte("c")},
		}},
	}
	for _, want := range reqs {
		enc := AppendRequest(nil, want)
		got, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip:\n got  %+v\n want %+v", want.Op, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{ID: 1, Kind: KindOK},
		{ID: 2, Kind: KindValue, Found: true, Value: []byte("rec")},
		{ID: 3, Kind: KindValue, Found: false},
		{ID: 4, Kind: KindApplied, Applied: true},
		{ID: 5, Kind: KindBatch, AppliedBatch: []bool{true, false, true}},
		{ID: 6, Kind: KindQuery, Records: []Record{{PK: []byte("p"), Value: []byte("v")}}},
		{ID: 7, Kind: KindQuery, Keys: [][]byte{[]byte("k1"), []byte("k2")}},
		{ID: 8, Kind: KindScan, Records: []Record{{PK: []byte("p")}}},
		{ID: 9, Kind: KindStats, Stats: []byte(`{"Shards":1}`)},
		ErrorResponse(10, CodeUnknownIndex, `unknown secondary index "nope"`),
	}
	for _, want := range resps {
		enc := AppendResponse(nil, want)
		got, err := DecodeResponse(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip:\n got  %+v\n want %+v", want.Kind, got, want)
		}
	}
}

// TestAppendValueResponseIdentity pins the GET fast path's hand-rolled
// encoder to the generic one: any drift between them would let the two
// paths disagree on the bytes a client sees for the same response.
func TestAppendValueResponseIdentity(t *testing.T) {
	cases := []struct {
		id    uint64
		found bool
		value []byte
	}{
		{0, false, nil},
		{1, true, nil},
		{2, true, []byte{}},
		{3, true, []byte("rec")},
		{1 << 63, true, bytes.Repeat([]byte{0xAB}, 4096)},
		{9, false, []byte("present but not found")},
	}
	for _, c := range cases {
		want := AppendResponse(nil, Response{ID: c.id, Kind: KindValue, Found: c.found, Value: c.value})
		got := AppendValueResponse(nil, c.id, c.found, c.value)
		if !bytes.Equal(got, want) {
			t.Fatalf("id=%d found=%v len(value)=%d:\n got  %x\n want %x", c.id, c.found, len(c.value), got, want)
		}
		// And it must append, not overwrite.
		prefix := []byte("prefix")
		if got := AppendValueResponse(append([]byte(nil), prefix...), c.id, c.found, c.value); !bytes.Equal(got, append(prefix, want...)) {
			t.Fatalf("append semantics broken for id=%d", c.id)
		}
	}
}

// TestDecodeRequestInPlace checks the zero-copy decoder agrees with the
// copying one and that its fields really alias the input frame.
func TestDecodeRequestInPlace(t *testing.T) {
	reqs := []Request{
		{ID: 2, Op: OpGet, Key: []byte("pk-7")},
		{ID: 3, Op: OpUpsert, Key: []byte("pk"), Value: []byte("record")},
		{ID: 6, Op: OpApplyBatch, Muts: []Mutation{
			{Op: MutUpsert, PK: []byte("a"), Record: []byte("ra")},
			{Op: MutDelete, PK: []byte("c")},
		}},
		{ID: 7, Op: OpSecondaryQuery, Index: "user", Lo: []byte("l"), Hi: []byte("h")},
	}
	for _, want := range reqs {
		enc := AppendRequest(nil, want)
		got, err := DecodeRequestInPlace(enc)
		if err != nil {
			t.Fatalf("%s: decode in place: %v", want.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s in-place decode:\n got  %+v\n want %+v", want.Op, got, want)
		}
	}

	// Aliasing: scribbling on the frame must show through the decoded Key,
	// and a copying decode of the same frame must not be affected.
	enc := AppendRequest(nil, Request{ID: 1, Op: OpGet, Key: []byte("abc")})
	copied, err := DecodeRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequestInPlace(enc)
	if err != nil {
		t.Fatal(err)
	}
	off := bytes.Index(enc, []byte("abc"))
	if off < 0 {
		t.Fatal("key bytes not found in encoding")
	}
	enc[off] ^= 0xFF
	if string(got.Key) == "abc" {
		t.Fatal("in-place decode did not alias the frame")
	}
	if string(copied.Key) != "abc" {
		t.Fatal("copying decode aliased the frame")
	}

	// Corrupt input errors identically.
	if _, err := DecodeRequestInPlace(enc[:3]); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("truncated in-place decode: err = %v, want ErrCorruptFrame", err)
	}
}

// TestOldFormatFramesStillDecode pins the pre-tenant-extension encoding
// byte for byte: an old client's frame (no trailing tenant field) must
// decode with Tenant == "", and an untagged request must encode to
// exactly those bytes — the extension may not shift the base format.
func TestOldFormatFramesStillDecode(t *testing.T) {
	// Request{ID: 7, Op: OpGet, Key: "pk"} as encoded before the tenant
	// extension existed: uvarint ID, op byte, length-prefixed key, then
	// eleven zero bytes for the unused value/index/bounds/filter/
	// validation/index-only/limit/mutation-count fields.
	oldFrame := []byte{
		0x07,             // ID = 7
		0x02,             // Op = OpGet
		0x02, 0x70, 0x6b, // Key = "pk"
		0x00, 0x00, 0x00, 0x00, // Value, Index, Lo, Hi (empty)
		0x00, 0x00, // FilterLo, FilterHi
		0x00, 0x00, 0x00, // Validation, IndexOnly, Limit
		0x00, // no mutations
	}
	want := Request{ID: 7, Op: OpGet, Key: []byte("pk")}
	got, err := DecodeRequest(oldFrame)
	if err != nil {
		t.Fatalf("old-format frame rejected: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("old-format decode:\n got  %+v\n want %+v", got, want)
	}
	if enc := AppendRequest(nil, want); !bytes.Equal(enc, oldFrame) {
		t.Fatalf("untagged encoding drifted from the old format:\n got  %x\n want %x", enc, oldFrame)
	}
	// A tagged request is the old frame plus the trailing tenant field.
	tagged := want
	tagged.Tenant = "t1"
	wantTagged := append(append([]byte(nil), oldFrame...), 0x02, 't', '1')
	if enc := AppendRequest(nil, tagged); !bytes.Equal(enc, wantTagged) {
		t.Fatalf("tagged encoding:\n got  %x\n want %x", enc, wantTagged)
	}
	// An explicitly encoded empty tenant (a single zero byte) is accepted
	// and normalizes to the untagged request.
	explicitEmpty := append(append([]byte(nil), oldFrame...), 0x00)
	got, err = DecodeRequest(explicitEmpty)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("explicit empty tenant: err=%v got %+v", err, got)
	}
}

func TestNewErrorCodesRoundTrip(t *testing.T) {
	for _, code := range []ErrCode{CodeOverloaded, CodeRetryLater} {
		want := ErrorResponse(42, code, "busy")
		enc := AppendResponse(nil, want)
		got, err := DecodeResponse(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", code, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip:\n got  %+v\n want %+v", code, got, want)
		}
	}
	if CodeOverloaded.String() != "overloaded" || CodeRetryLater.String() != "retry-later" {
		t.Fatalf("code strings: %q, %q", CodeOverloaded.String(), CodeRetryLater.String())
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	enc := AppendRequest(nil, Request{ID: 1, Op: OpPing})
	if _, err := DecodeRequest(append(enc, 0xAB)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("trailing byte: err = %v, want ErrCorruptFrame", err)
	}
	encR := AppendResponse(nil, Response{ID: 1, Kind: KindOK})
	if _, err := DecodeResponse(append(encR, 0)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("trailing byte: err = %v, want ErrCorruptFrame", err)
	}
}

func TestDecodeRejectsBadEnums(t *testing.T) {
	enc := AppendRequest(nil, Request{ID: 1, Op: OpPing})
	bad := append([]byte(nil), enc...)
	bad[1] = byte(opMax) // the op byte follows the single-byte ID uvarint
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("bad op: err = %v, want ErrCorruptFrame", err)
	}
	if _, err := DecodeRequest(nil); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("empty payload: err = %v, want ErrCorruptFrame", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{7}, 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range payloads {
		got, err := ReadFrame(&buf, scratch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame = %q, want %q", got, want)
		}
	}
	if _, err := ReadFrame(&buf, nil, 0); err != io.EOF {
		t.Fatalf("exhausted stream: err = %v, want io.EOF", err)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, nil, 10); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}
	if !errors.Is(ErrFrameTooLarge, ErrCorruptFrame) {
		t.Fatal("ErrFrameTooLarge must wrap ErrCorruptFrame")
	}
	// A frame truncated mid-payload is an unexpected EOF, not a clean end.
	buf.Reset()
	if err := WriteFrame(&buf, []byte("full payload")); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if _, err := ReadFrame(trunc, nil, 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: err = %v, want io.ErrUnexpectedEOF", err)
	}
}
