package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpGet, Key: []byte("pk-7")},
		{ID: 3, Op: OpUpsert, Key: []byte("pk"), Value: []byte("record")},
		{ID: 4, Op: OpInsert, Key: []byte{0, 1, 2}, Value: []byte{0xff}},
		{ID: 5, Op: OpDelete, Key: []byte("gone")},
		{ID: 6, Op: OpApplyBatch, Muts: []Mutation{
			{Op: MutUpsert, PK: []byte("a"), Record: []byte("ra")},
			{Op: MutInsert, PK: []byte("b"), Record: []byte("rb")},
			{Op: MutDelete, PK: []byte("c")},
		}},
		{ID: 7, Op: OpSecondaryQuery, Index: "user", Lo: []byte("l"), Hi: []byte("h"),
			Validation: 2, IndexOnly: true, Limit: 100},
		{ID: 8, Op: OpFilterScan, FilterLo: -5, FilterHi: 1 << 60, Limit: 7},
		{ID: 9, Op: OpStats},
		{ID: 10, Op: OpFlush},
	}
	for _, want := range reqs {
		enc := AppendRequest(nil, want)
		got, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip:\n got  %+v\n want %+v", want.Op, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{ID: 1, Kind: KindOK},
		{ID: 2, Kind: KindValue, Found: true, Value: []byte("rec")},
		{ID: 3, Kind: KindValue, Found: false},
		{ID: 4, Kind: KindApplied, Applied: true},
		{ID: 5, Kind: KindBatch, AppliedBatch: []bool{true, false, true}},
		{ID: 6, Kind: KindQuery, Records: []Record{{PK: []byte("p"), Value: []byte("v")}}},
		{ID: 7, Kind: KindQuery, Keys: [][]byte{[]byte("k1"), []byte("k2")}},
		{ID: 8, Kind: KindScan, Records: []Record{{PK: []byte("p")}}},
		{ID: 9, Kind: KindStats, Stats: []byte(`{"Shards":1}`)},
		ErrorResponse(10, CodeUnknownIndex, `unknown secondary index "nope"`),
	}
	for _, want := range resps {
		enc := AppendResponse(nil, want)
		got, err := DecodeResponse(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip:\n got  %+v\n want %+v", want.Kind, got, want)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	enc := AppendRequest(nil, Request{ID: 1, Op: OpPing})
	if _, err := DecodeRequest(append(enc, 0xAB)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("trailing byte: err = %v, want ErrCorruptFrame", err)
	}
	encR := AppendResponse(nil, Response{ID: 1, Kind: KindOK})
	if _, err := DecodeResponse(append(encR, 0)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("trailing byte: err = %v, want ErrCorruptFrame", err)
	}
}

func TestDecodeRejectsBadEnums(t *testing.T) {
	enc := AppendRequest(nil, Request{ID: 1, Op: OpPing})
	bad := append([]byte(nil), enc...)
	bad[1] = byte(opMax) // the op byte follows the single-byte ID uvarint
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("bad op: err = %v, want ErrCorruptFrame", err)
	}
	if _, err := DecodeRequest(nil); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("empty payload: err = %v, want ErrCorruptFrame", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{7}, 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range payloads {
		got, err := ReadFrame(&buf, scratch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame = %q, want %q", got, want)
		}
	}
	if _, err := ReadFrame(&buf, nil, 0); err != io.EOF {
		t.Fatalf("exhausted stream: err = %v, want io.EOF", err)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, nil, 10); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}
	if !errors.Is(ErrFrameTooLarge, ErrCorruptFrame) {
		t.Fatal("ErrFrameTooLarge must wrap ErrCorruptFrame")
	}
	// A frame truncated mid-payload is an unexpected EOF, not a clean end.
	buf.Reset()
	if err := WriteFrame(&buf, []byte("full payload")); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if _, err := ReadFrame(trunc, nil, 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: err = %v, want io.ErrUnexpectedEOF", err)
	}
}
