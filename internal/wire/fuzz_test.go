package wire

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary bytes to the request decoder: it must
// never panic, and any error must wrap ErrCorruptFrame so the server can
// tell a broken client from an internal bug. When a payload does decode,
// re-encoding and re-decoding it must reproduce the same request (varints
// accept non-minimal spellings, so the comparison is semantic, not
// byte-exact — the same contract as the WAL fuzzers).
func FuzzDecodeRequest(f *testing.F) {
	seed := []Request{
		{ID: 1, Op: OpPing},
		{ID: 1 << 60, Op: OpGet, Key: []byte("pk")},
		{ID: 3, Op: OpApplyBatch, Muts: []Mutation{
			{Op: MutUpsert, PK: []byte("a"), Record: []byte("r")},
			{Op: MutDelete, PK: []byte{0}},
		}},
		{ID: 4, Op: OpSecondaryQuery, Index: "user", Lo: []byte{1}, Hi: []byte{2},
			Validation: 3, IndexOnly: true, Limit: -1},
		{ID: 5, Op: OpFilterScan, FilterLo: -1 << 62, FilterHi: 1 << 62},
		{ID: 6, Op: OpGet, Key: []byte("pk"), Tenant: "tenant-a"},
	}
	for _, r := range seed {
		f.Add(AppendRequest(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		inPlace, inPlaceErr := DecodeRequestInPlace(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("decode error %v does not wrap ErrCorruptFrame", err)
			}
			if inPlaceErr == nil {
				t.Fatal("in-place decode accepted a frame the copying decode rejected")
			}
			return
		}
		if inPlaceErr != nil {
			t.Fatalf("in-place decode rejected a frame the copying decode accepted: %v", inPlaceErr)
		}
		if !reflect.DeepEqual(inPlace, req) {
			t.Fatalf("in-place decode disagrees:\n got  %+v\n want %+v", inPlace, req)
		}
		enc := AppendRequest(nil, req)
		again, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded request failed: %v", err)
		}
		if !reflect.DeepEqual(again, req) {
			t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", again, req)
		}
	})
}

// FuzzDecodeResponse is FuzzDecodeRequest for the response decoder.
func FuzzDecodeResponse(f *testing.F) {
	seed := []Response{
		{ID: 1, Kind: KindOK},
		{ID: 2, Kind: KindValue, Found: true, Value: []byte("rec")},
		{ID: 3, Kind: KindBatch, AppliedBatch: []bool{true, false}},
		{ID: 4, Kind: KindQuery, Records: []Record{{PK: []byte("p"), Value: []byte("v")}},
			Keys: [][]byte{[]byte("k")}},
		{ID: 5, Kind: KindStats, Stats: []byte(`{"Ingested":9}`)},
		ErrorResponse(6, CodeShuttingDown, "drain"),
	}
	for _, r := range seed {
		f.Add(AppendResponse(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{1, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("decode error %v does not wrap ErrCorruptFrame", err)
			}
			return
		}
		enc := AppendResponse(nil, resp)
		again, err := DecodeResponse(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded response failed: %v", err)
		}
		if !reflect.DeepEqual(again, resp) {
			t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", again, resp)
		}
	})
}

// FuzzRequestRoundTrip builds a request from fuzzed fields, encodes it,
// and checks that it decodes back identically and that every strict prefix
// of the encoding — a truncated frame — fails with ErrCorruptFrame rather
// than panicking or mis-decoding. One prefix is legal by design: cutting
// exactly the trailing tenant extension yields a valid old-format frame
// that must decode as the same request untagged (the backward-compat
// contract for the extension).
func FuzzRequestRoundTrip(f *testing.F) {
	f.Add(uint64(1), byte(OpUpsert), []byte("k"), []byte("v"), "idx", []byte("lo"), []byte("hi"),
		int64(-3), int64(9), byte(1), true, int64(10), []byte("mpk"), "tenant-a")
	f.Add(uint64(0), byte(OpPing), []byte(nil), []byte(nil), "", []byte(nil), []byte(nil),
		int64(0), int64(0), byte(0), false, int64(0), []byte(nil), "")
	f.Fuzz(func(t *testing.T, id uint64, op byte, key, value []byte, index string, lo, hi []byte,
		flo, fhi int64, validation byte, indexOnly bool, limit int64, mutPK []byte, tenant string) {
		r := Request{
			ID: id, Op: Op(op%byte(opMax-1)) + 1, // always a valid op
			Key: key, Value: value, Index: index, Lo: lo, Hi: hi,
			FilterLo: flo, FilterHi: fhi,
			Validation: validation, IndexOnly: indexOnly, Limit: limit,
			Muts:   []Mutation{{Op: MutOp(op % byte(mutMax)), PK: mutPK, Record: value}},
			Tenant: tenant,
		}
		enc := AppendRequest(nil, r)
		got, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		// The decoder normalizes zero-length byte fields to nil.
		want := r
		norm := func(b []byte) []byte {
			if len(b) == 0 {
				return nil
			}
			return b
		}
		want.Key, want.Value = norm(want.Key), norm(want.Value)
		want.Lo, want.Hi = norm(want.Lo), norm(want.Hi)
		want.Muts[0].PK, want.Muts[0].Record = norm(want.Muts[0].PK), norm(want.Muts[0].Record)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, want)
		}
		// The old-format cut point: the encoding without the tenant
		// extension (== len(enc) when the request is untagged).
		untagged := r
		untagged.Tenant = ""
		oldFormat := len(AppendRequest(nil, untagged))
		for cut := 0; cut < len(enc); cut++ {
			dec, err := DecodeRequest(enc[:cut])
			if cut == oldFormat {
				wantOld := want
				wantOld.Tenant = ""
				if err != nil || !reflect.DeepEqual(dec, wantOld) {
					t.Fatalf("old-format prefix must decode untagged: err=%v\n got  %+v\n want %+v", err, dec, wantOld)
				}
				continue
			}
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("truncation at %d/%d bytes: err = %v, want ErrCorruptFrame", cut, len(enc), err)
			}
		}
	})
}
