// Package wire defines the binary protocol between lsmserver and its
// clients: length-prefixed frames carrying request/response messages with
// explicit request IDs, so a single TCP connection can pipeline many
// requests and receive their responses out of order.
//
// # Framing
//
// Every message travels in a frame: a 4-byte big-endian payload length
// followed by the payload. WriteFrame and ReadFrame implement the frame
// layer; ReadFrame caps the accepted payload (MaxFrame by default) so a
// corrupt or hostile peer cannot force an unbounded allocation.
//
// # Messages
//
// A Request is an operation (Op) plus its arguments; a Response is a
// result shape (Kind) plus its payload. Both carry the request ID that
// correlates them. Field values use uvarint/varint integers and
// uvarint-length-prefixed byte strings; every field is encoded
// unconditionally, so any message round-trips bit-exactly regardless of
// which union fields its op actually reads.
//
// Failures are typed: a KindError response carries an ErrCode (unknown
// index, store closed, shutting down, bad request, internal) and a
// message, letting clients map server-side failures back onto the
// lsmstore sentinel errors.
//
// # Robustness
//
// DecodeRequest and DecodeResponse never panic on corrupt input. Every
// decoding failure — truncation, bad varint, out-of-range enum, trailing
// garbage, list counts exceeding the frame — wraps ErrCorruptFrame, which
// the fuzzers in this package enforce.
package wire
