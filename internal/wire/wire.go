package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame is the default cap on a frame payload, shared by server and
// client. It bounds the allocation a single peer message can force.
const MaxFrame = 64 << 20

// frameHeaderLen is the byte length of the frame length prefix.
const frameHeaderLen = 4

// ErrCorruptFrame reports a frame payload that does not decode as a valid
// message. Every decoding error wraps it, so transports can distinguish a
// broken peer from an I/O failure.
var ErrCorruptFrame = errors.New("wire: corrupt frame")

// ErrFrameTooLarge reports a frame whose declared length exceeds the
// reader's cap. It wraps ErrCorruptFrame: an oversized declaration is
// indistinguishable from garbage in the length prefix.
var ErrFrameTooLarge = fmt.Errorf("%w: frame too large", ErrCorruptFrame)

// Op identifies a request operation.
type Op uint8

// Request operations.
const (
	OpPing Op = 1 + iota
	OpGet
	OpUpsert
	OpInsert
	OpDelete
	OpApplyBatch
	OpSecondaryQuery
	OpFilterScan
	OpStats
	OpFlush
	opMax // sentinel: first invalid op
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpGet:
		return "get"
	case OpUpsert:
		return "upsert"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpApplyBatch:
		return "apply-batch"
	case OpSecondaryQuery:
		return "secondary-query"
	case OpFilterScan:
		return "filter-scan"
	case OpStats:
		return "stats"
	case OpFlush:
		return "flush"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Kind identifies a response shape.
type Kind uint8

// Response kinds.
const (
	// KindOK acknowledges an operation with no payload (ping, upsert,
	// flush).
	KindOK Kind = 1 + iota
	// KindValue answers a Get: Found and, when found, Value.
	KindValue
	// KindApplied answers an Insert or Delete: Applied tells whether the
	// mutation took effect.
	KindApplied
	// KindBatch answers an ApplyBatch: AppliedBatch holds one flag per
	// mutation, in request order.
	KindBatch
	// KindQuery answers a SecondaryQuery: Records, or Keys when the
	// request was index-only.
	KindQuery
	// KindScan answers a FilterScan: Records in primary-key order.
	KindScan
	// KindStats answers a Stats request: Stats holds the JSON-encoded
	// lsmstore.Stats snapshot.
	KindStats
	// KindError reports a typed failure: Code and Msg.
	KindError
	kindMax // sentinel: first invalid kind
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindOK:
		return "ok"
	case KindValue:
		return "value"
	case KindApplied:
		return "applied"
	case KindBatch:
		return "batch"
	case KindQuery:
		return "query"
	case KindScan:
		return "scan"
	case KindStats:
		return "stats"
	case KindError:
		return "error"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrCode classifies a KindError response.
type ErrCode uint16

// Error codes.
const (
	// CodeInternal is an unclassified server-side failure.
	CodeInternal ErrCode = iota
	// CodeBadRequest reports a request the server refused to execute
	// (unknown op, out-of-range validation method).
	CodeBadRequest
	// CodeUnknownIndex reports a query against an undeclared secondary
	// index.
	CodeUnknownIndex
	// CodeClosed reports an operation on a store that has been closed.
	CodeClosed
	// CodeShuttingDown reports a request received while the server drains.
	CodeShuttingDown
	// CodeOverloaded reports a request shed by admission control: the
	// server is over capacity and the request never reached the engine.
	// Clients should back off (capped exponential, full jitter) and retry.
	CodeOverloaded
	// CodeRetryLater reports a request rejected by its tenant's rate
	// limit. Unlike CodeOverloaded it says nothing about server load; the
	// client should pace itself, not back off harder.
	CodeRetryLater
)

// String implements fmt.Stringer.
func (c ErrCode) String() string {
	switch c {
	case CodeInternal:
		return "internal"
	case CodeBadRequest:
		return "bad-request"
	case CodeUnknownIndex:
		return "unknown-index"
	case CodeClosed:
		return "closed"
	case CodeShuttingDown:
		return "shutting-down"
	case CodeOverloaded:
		return "overloaded"
	case CodeRetryLater:
		return "retry-later"
	}
	return fmt.Sprintf("code(%d)", uint16(c))
}

// MutOp is a batched mutation's operation, mirroring the engine's batch
// ops (shard.OpUpsert and friends) without importing them.
type MutOp uint8

// Batched operations.
const (
	MutUpsert MutOp = iota
	MutInsert
	MutDelete
	mutMax // sentinel: first invalid mutation op
)

// Mutation is one write inside an ApplyBatch request.
type Mutation struct {
	Op     MutOp
	PK     []byte
	Record []byte // unused by MutDelete
}

// Record is one (primary key, record) pair in a query or scan response.
type Record struct {
	PK    []byte
	Value []byte
}

// Request is one client request. ID correlates the response on a
// pipelined connection: responses may return in any order. The value
// fields form a union — each op reads only its own — but every field is
// encoded unconditionally so any Request round-trips bit-exactly.
type Request struct {
	ID uint64
	Op Op

	Key   []byte // Get, Upsert, Insert, Delete: the primary key
	Value []byte // Upsert, Insert: the record

	Index  string // SecondaryQuery: index name
	Lo, Hi []byte // SecondaryQuery: inclusive secondary-key bounds

	FilterLo, FilterHi int64 // FilterScan: inclusive filter-key bounds

	Validation uint8 // SecondaryQuery: lsmstore validation method ordinal
	IndexOnly  bool  // SecondaryQuery: keys only, no record fetch
	Limit      int64 // SecondaryQuery, FilterScan: result cap (0 = all)

	Muts []Mutation // ApplyBatch

	// Tenant is the optional QoS tenant tag, encoded as a trailing
	// extension field only when non-empty. Old-format frames (without the
	// field) decode with Tenant == "", so the extension is wire-compatible
	// in both directions for untagged traffic.
	Tenant string
}

// Response is one server response. Like Request, the payload fields are a
// union keyed by Kind but all encode unconditionally.
type Response struct {
	ID   uint64
	Kind Kind

	Found   bool   // KindValue
	Value   []byte // KindValue
	Applied bool   // KindApplied

	Records      []Record // KindQuery, KindScan
	Keys         [][]byte // KindQuery (index-only)
	AppliedBatch []bool   // KindBatch

	Stats []byte // KindStats: JSON-encoded lsmstore.Stats

	Code ErrCode // KindError
	Msg  string  // KindError
}

// ErrorResponse builds a KindError response for a request ID.
func ErrorResponse(id uint64, code ErrCode, msg string) Response {
	return Response{ID: id, Kind: KindError, Code: code, Msg: msg}
}

// Err converts a KindError response into an error (nil for other kinds).
func (r *Response) Err() error {
	if r.Kind != KindError {
		return nil
	}
	return fmt.Errorf("wire: server error %s: %s", r.Code, r.Msg)
}

// WriteFrame writes one frame: a 4-byte big-endian payload length followed
// by the payload. It refuses payloads beyond MaxFrame so a server bug
// cannot emit a frame no client will accept.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame payload, reusing buf when it is large enough.
// max caps the accepted payload length (<= 0 means MaxFrame). A clean EOF
// on the length prefix returns io.EOF; EOF mid-frame returns
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	if max <= 0 {
		max = MaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > max {
		return nil, ErrFrameTooLarge
	}
	if n > cap(buf) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// --- field encoding primitives -----------------------------------------
//
// Fields use uvarint/varint integers and uvarint-length-prefixed byte
// strings. Zero-length byte fields decode as nil (the same normalization
// as the WAL encoding), so encode(decode(x)) is byte-stable.

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorruptFrame)
	}
	return v, b[n:], nil
}

func takeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrCorruptFrame)
	}
	return v, b[n:], nil
}

func takeBool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, fmt.Errorf("%w: missing bool", ErrCorruptFrame)
	}
	switch b[0] {
	case 0:
		return false, b[1:], nil
	case 1:
		return true, b[1:], nil
	}
	return false, nil, fmt.Errorf("%w: bool byte %d", ErrCorruptFrame, b[0])
}

func takeByte(b []byte) (byte, []byte, error) {
	if len(b) < 1 {
		return 0, nil, fmt.Errorf("%w: missing byte", ErrCorruptFrame)
	}
	return b[0], b[1:], nil
}

func takeBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: byte string of %d bytes with %d remaining", ErrCorruptFrame, n, len(rest))
	}
	if n == 0 {
		return nil, rest, nil
	}
	out := make([]byte, n)
	copy(out, rest[:n])
	return out, rest[n:], nil
}

// takeBytesRef is takeBytes without the copy: the returned slice aliases b
// (capped so appends cannot scribble over the following fields).
func takeBytesRef(b []byte) ([]byte, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: byte string of %d bytes with %d remaining", ErrCorruptFrame, n, len(rest))
	}
	if n == 0 {
		return nil, rest, nil
	}
	return rest[:n:n], rest[n:], nil
}

func takeString(b []byte) (string, []byte, error) {
	v, rest, err := takeBytes(b)
	return string(v), rest, err
}

// takeCount reads a list length and sanity-checks it against the bytes
// remaining: every element of any list costs at least one byte, so a count
// above the remainder is corruption, not a huge allocation.
func takeCount(b []byte) (int, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("%w: list of %d elements with %d bytes remaining", ErrCorruptFrame, n, len(rest))
	}
	return int(n), rest, nil
}

// --- request encoding ---------------------------------------------------

// AppendRequest appends the encoding of r to buf and returns the result.
// The encoding is a frame payload: pair it with WriteFrame.
func AppendRequest(buf []byte, r Request) []byte {
	buf = appendUvarint(buf, r.ID)
	buf = append(buf, byte(r.Op))
	buf = appendBytes(buf, r.Key)
	buf = appendBytes(buf, r.Value)
	buf = appendString(buf, r.Index)
	buf = appendBytes(buf, r.Lo)
	buf = appendBytes(buf, r.Hi)
	buf = appendVarint(buf, r.FilterLo)
	buf = appendVarint(buf, r.FilterHi)
	buf = append(buf, r.Validation)
	buf = appendBool(buf, r.IndexOnly)
	buf = appendVarint(buf, r.Limit)
	buf = appendUvarint(buf, uint64(len(r.Muts)))
	for _, m := range r.Muts {
		buf = append(buf, byte(m.Op))
		buf = appendBytes(buf, m.PK)
		buf = appendBytes(buf, m.Record)
	}
	// Trailing extension: the tenant tag is emitted only when set, so
	// untagged requests stay byte-identical to the pre-extension format.
	if r.Tenant != "" {
		buf = appendString(buf, r.Tenant)
	}
	return buf
}

// DecodeRequest decodes a frame payload produced by AppendRequest. It
// never panics on corrupt input: every failure wraps ErrCorruptFrame,
// including trailing garbage after a well-formed request. Every byte field
// is copied out of frame, so the caller may reuse frame immediately.
func DecodeRequest(frame []byte) (Request, error) {
	return decodeRequest(frame, takeBytes)
}

// DecodeRequestInPlace is DecodeRequest without the copies: every byte
// field of the result (Key, Value, Lo, Hi, mutation PKs and Records)
// aliases frame. The caller must keep frame alive and unmodified for as
// long as those fields are in use, and must copy any field it hands to
// code that retains it — the server's read path does this for write
// operations, whose keys and records outlive the request in the engine.
func DecodeRequestInPlace(frame []byte) (Request, error) {
	return decodeRequest(frame, takeBytesRef)
}

func decodeRequest(frame []byte, takeB func([]byte) ([]byte, []byte, error)) (Request, error) {
	var (
		r   Request
		err error
		b   = frame
		op  byte
	)
	if r.ID, b, err = takeUvarint(b); err != nil {
		return Request{}, err
	}
	if op, b, err = takeByte(b); err != nil {
		return Request{}, err
	}
	r.Op = Op(op)
	if r.Op == 0 || r.Op >= opMax {
		return Request{}, fmt.Errorf("%w: unknown op %d", ErrCorruptFrame, op)
	}
	if r.Key, b, err = takeB(b); err != nil {
		return Request{}, err
	}
	if r.Value, b, err = takeB(b); err != nil {
		return Request{}, err
	}
	if r.Index, b, err = takeString(b); err != nil {
		return Request{}, err
	}
	if r.Lo, b, err = takeB(b); err != nil {
		return Request{}, err
	}
	if r.Hi, b, err = takeB(b); err != nil {
		return Request{}, err
	}
	if r.FilterLo, b, err = takeVarint(b); err != nil {
		return Request{}, err
	}
	if r.FilterHi, b, err = takeVarint(b); err != nil {
		return Request{}, err
	}
	if r.Validation, b, err = takeByte(b); err != nil {
		return Request{}, err
	}
	if r.IndexOnly, b, err = takeBool(b); err != nil {
		return Request{}, err
	}
	if r.Limit, b, err = takeVarint(b); err != nil {
		return Request{}, err
	}
	var n int
	if n, b, err = takeCount(b); err != nil {
		return Request{}, err
	}
	if n > 0 {
		r.Muts = make([]Mutation, n)
		for i := range r.Muts {
			var mo byte
			if mo, b, err = takeByte(b); err != nil {
				return Request{}, err
			}
			if MutOp(mo) >= mutMax {
				return Request{}, fmt.Errorf("%w: unknown mutation op %d", ErrCorruptFrame, mo)
			}
			r.Muts[i].Op = MutOp(mo)
			if r.Muts[i].PK, b, err = takeB(b); err != nil {
				return Request{}, err
			}
			if r.Muts[i].Record, b, err = takeB(b); err != nil {
				return Request{}, err
			}
		}
	}
	// Optional trailing extension: the tenant tag. Absent in old-format
	// frames — their decode ends here with Tenant == "".
	if len(b) > 0 {
		if r.Tenant, b, err = takeString(b); err != nil {
			return Request{}, err
		}
	}
	if len(b) != 0 {
		return Request{}, fmt.Errorf("%w: %d trailing bytes", ErrCorruptFrame, len(b))
	}
	return r, nil
}

// --- response encoding --------------------------------------------------

// AppendResponse appends the encoding of r to buf and returns the result.
func AppendResponse(buf []byte, r Response) []byte {
	buf = appendUvarint(buf, r.ID)
	buf = append(buf, byte(r.Kind))
	buf = appendBool(buf, r.Found)
	buf = appendBytes(buf, r.Value)
	buf = appendBool(buf, r.Applied)
	buf = appendUvarint(buf, uint64(len(r.Records)))
	for _, rec := range r.Records {
		buf = appendBytes(buf, rec.PK)
		buf = appendBytes(buf, rec.Value)
	}
	buf = appendUvarint(buf, uint64(len(r.Keys)))
	for _, k := range r.Keys {
		buf = appendBytes(buf, k)
	}
	buf = appendUvarint(buf, uint64(len(r.AppliedBatch)))
	for _, ok := range r.AppliedBatch {
		buf = appendBool(buf, ok)
	}
	buf = appendBytes(buf, r.Stats)
	buf = appendUvarint(buf, uint64(r.Code))
	buf = appendString(buf, r.Msg)
	return buf
}

// AppendValueResponse appends a KindValue response, encoding byte-for-byte
// what AppendResponse(buf, Response{ID: id, Kind: KindValue, Found: found,
// Value: value}) would — pinned by TestAppendValueResponseIdentity. The
// server's GET fast path uses it to encode straight from an engine-owned
// value reference into a pooled frame, with no intermediate Response.
func AppendValueResponse(buf []byte, id uint64, found bool, value []byte) []byte {
	buf = appendUvarint(buf, id)
	buf = append(buf, byte(KindValue))
	buf = appendBool(buf, found)
	buf = appendBytes(buf, value)
	buf = appendBool(buf, false) // Applied
	buf = appendUvarint(buf, 0)  // Records
	buf = appendUvarint(buf, 0)  // Keys
	buf = appendUvarint(buf, 0)  // AppliedBatch
	buf = appendBytes(buf, nil)  // Stats
	buf = appendUvarint(buf, 0)  // Code
	buf = appendString(buf, "")  // Msg
	return buf
}

// DecodeResponse decodes a frame payload produced by AppendResponse. Like
// DecodeRequest it never panics and wraps every failure in
// ErrCorruptFrame.
func DecodeResponse(frame []byte) (Response, error) {
	var (
		r    Response
		err  error
		b    = frame
		kind byte
	)
	if r.ID, b, err = takeUvarint(b); err != nil {
		return Response{}, err
	}
	if kind, b, err = takeByte(b); err != nil {
		return Response{}, err
	}
	r.Kind = Kind(kind)
	if r.Kind == 0 || r.Kind >= kindMax {
		return Response{}, fmt.Errorf("%w: unknown kind %d", ErrCorruptFrame, kind)
	}
	if r.Found, b, err = takeBool(b); err != nil {
		return Response{}, err
	}
	if r.Value, b, err = takeBytes(b); err != nil {
		return Response{}, err
	}
	if r.Applied, b, err = takeBool(b); err != nil {
		return Response{}, err
	}
	var n int
	if n, b, err = takeCount(b); err != nil {
		return Response{}, err
	}
	if n > 0 {
		r.Records = make([]Record, n)
		for i := range r.Records {
			if r.Records[i].PK, b, err = takeBytes(b); err != nil {
				return Response{}, err
			}
			if r.Records[i].Value, b, err = takeBytes(b); err != nil {
				return Response{}, err
			}
		}
	}
	if n, b, err = takeCount(b); err != nil {
		return Response{}, err
	}
	if n > 0 {
		r.Keys = make([][]byte, n)
		for i := range r.Keys {
			if r.Keys[i], b, err = takeBytes(b); err != nil {
				return Response{}, err
			}
		}
	}
	if n, b, err = takeCount(b); err != nil {
		return Response{}, err
	}
	if n > 0 {
		r.AppliedBatch = make([]bool, n)
		for i := range r.AppliedBatch {
			if r.AppliedBatch[i], b, err = takeBool(b); err != nil {
				return Response{}, err
			}
		}
	}
	if r.Stats, b, err = takeBytes(b); err != nil {
		return Response{}, err
	}
	var code uint64
	if code, b, err = takeUvarint(b); err != nil {
		return Response{}, err
	}
	if code > 0xffff {
		return Response{}, fmt.Errorf("%w: error code %d out of range", ErrCorruptFrame, code)
	}
	r.Code = ErrCode(code)
	if r.Msg, b, err = takeString(b); err != nil {
		return Response{}, err
	}
	if len(b) != 0 {
		return Response{}, fmt.Errorf("%w: %d trailing bytes", ErrCorruptFrame, len(b))
	}
	return r, nil
}
