package server_test

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/server"
	"repro/lsmclient"
)

// overloadedServer starts a server whose admission budget is deliberately
// tiny, so concurrent clients collide and shed immediately (queue disabled).
func overloadedServer(t testing.TB, mod func(*server.Config)) *server.Server {
	t.Helper()
	srv, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
		cfg.AdmissionBudget = 1
		cfg.AdmissionQueue = -1
		if mod != nil {
			mod(cfg)
		}
	})
	return srv
}

// TestOverloadShedThenRecover is the live wire-level exercise of the whole
// overload path: a one-slot budget with no queue makes the server shed
// nearly every concurrent request, and the client's jittered retries must
// still land every operation. Success here means (a) sheds really
// happened, and (b) no caller ever saw one.
func TestOverloadShedThenRecover(t *testing.T) {
	srv := overloadedServer(t, nil)
	c, err := lsmclient.DialOptions(lsmclient.Options{
		Addr:           srv.Addr().String(),
		Conns:          4,
		RequestTimeout: 30 * time.Second,
		RetryLimit:     100,
		BackoffBase:    100 * time.Microsecond,
		BackoffCap:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One storm can, rarely, serialize through the one-slot budget without
	// a single collision (a single-CPU scheduler can run each handler to
	// completion); storm again until sheds materialize.
	const workers, opsPer = 8, 25
	issued := 0
	var snap admission.Snapshot
	for deadline := time.Now().Add(30 * time.Second); ; {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPer; i++ {
					pk, rec := tweet(uint64(w*opsPer + i))
					if err := c.Upsert(pk, rec); err != nil {
						t.Errorf("worker %d op %d: %v", w, i, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		issued += workers * opsPer
		snap = srv.Admission().Snapshot()
		if snap.Shed() > 0 || t.Failed() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no requests were shed; the overload condition never materialized")
		}
	}

	if snap.Admitted < int64(issued) {
		t.Fatalf("admitted %d < %d issued ops", snap.Admitted, issued)
	}
	if snap.InFlight != 0 {
		t.Fatalf("in-flight weight %d after quiesce, want 0", snap.InFlight)
	}
}

// TestTenantRateLimitOverWire drives the per-tenant token bucket through
// the wire header: the tagged client's second burst-exhausting GET comes
// back CodeRetryLater and maps to ErrRetryLater, while an untagged client
// remains exempt.
func TestTenantRateLimitOverWire(t *testing.T) {
	srv, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
		cfg.AdmissionBudget = 8
		cfg.TenantRate = 0.5 // refill far slower than the test runs
		cfg.TenantBurst = 1
	})
	tagged, err := lsmclient.DialOptions(lsmclient.Options{
		Addr:       srv.Addr().String(),
		Tenant:     "t1",
		RetryLimit: -1, // surface the first rate-limit error
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tagged.Close()

	pk, rec := tweet(1)
	if err := tagged.Upsert(pk, rec); err != nil {
		t.Fatalf("first tagged op (within burst): %v", err)
	}
	if _, _, err := tagged.Get(pk); !errors.Is(err, lsmclient.ErrRetryLater) {
		t.Fatalf("second tagged op: err = %v, want ErrRetryLater", err)
	}

	plain := dial(t, srv, 1)
	for i := 0; i < 4; i++ {
		if _, _, err := plain.Get(pk); err != nil {
			t.Fatalf("untagged op %d hit a limit: %v", i, err)
		}
	}

	snap := srv.Admission().Snapshot()
	if snap.ShedRateLimited == 0 {
		t.Fatal("ShedRateLimited = 0 after a rate-limit rejection")
	}
	ten, ok := snap.Tenants["t1"]
	if !ok || ten.RateLimited == 0 || ten.Admitted == 0 {
		t.Fatalf("tenant t1 accounting missing or incomplete: %+v", snap.Tenants)
	}
}

// TestAdmissionSurfacedOnStats asserts the observability contract: /stats
// carries the admission snapshot, shed histogram, governor state, and the
// sticky GovernorLastError field; /metrics carries the lsm_admission_* and
// lsm_governor_* families.
func TestAdmissionSurfacedOnStats(t *testing.T) {
	srv := overloadedServer(t, func(cfg *server.Config) {
		cfg.HTTPAddr = "127.0.0.1:0"
		cfg.LatencyTarget = 50 * time.Millisecond
	})
	c := dial(t, srv, 1)
	pk, rec := tweet(2)
	if err := c.Upsert(pk, rec); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload server.StatsPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Admission == nil {
		t.Fatal("/stats Admission is null with admission enabled")
	}
	if payload.Admission.Budget != 1 {
		t.Fatalf("/stats Admission.Budget = %d, want 1", payload.Admission.Budget)
	}
	if payload.ShedLatencyHist == nil {
		t.Fatal("/stats ShedLatencyHist is null with admission enabled")
	}
	if payload.Governor == nil {
		t.Fatal("/stats Governor is null with a latency target set")
	}
	if payload.GovernorLastError != "" {
		t.Fatalf("healthy governor reported sticky error %q", payload.GovernorLastError)
	}

	resp2, err := http.Get("http://" + srv.HTTPAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"lsm_admission_budget 1",
		`lsm_admission_shed_total{cause="queue_full"}`,
		"lsm_admission_shed_duration_seconds_bucket",
		"lsm_governor_merge_rate",
		"lsm_governor_throttling",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /debug/maintenance carries the governor block too.
	resp3, err := http.Get("http://" + srv.HTTPAddr().String() + "/debug/maintenance")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var maint struct {
		Governor *json.RawMessage `json:"governor"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&maint); err != nil {
		t.Fatal(err)
	}
	if maint.Governor == nil {
		t.Fatal("/debug/maintenance governor block missing with a latency target set")
	}
}

// TestAdmissionBypassesControlOps: Ping and Flush are not admission
// classes; they must work even when the budget is fully consumed.
func TestAdmissionBypassesControlOps(t *testing.T) {
	srv := overloadedServer(t, nil)
	adm := srv.Admission()
	release, err := adm.Acquire(admission.ClassRead, "")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	c := dial(t, srv, 1)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping with exhausted budget: %v", err)
	}

	// A data op, by contrast, is shed immediately (queue disabled).
	if _, _, err := c.Get([]byte("pk")); !errors.Is(err, lsmclient.ErrOverloaded) {
		t.Fatalf("get with exhausted budget: err = %v, want ErrOverloaded", err)
	}
}

// TestOverloadGoodputSmoke is the CI overload gate: a tiny-budget server
// hammered by concurrent no-retry clients must keep serving (goodput), shed
// the excess fast (fail-fast under 5ms p99), and hold its weighted
// in-flight invariant. Gated behind LSMSTORE_BENCH_SMOKE=1 like the obs
// overhead smoke — it measures behavior under contention, not correctness.
func TestOverloadGoodputSmoke(t *testing.T) {
	if os.Getenv("LSMSTORE_BENCH_SMOKE") == "" {
		t.Skip("set LSMSTORE_BENCH_SMOKE=1 to run the overload goodput smoke test")
	}
	// Queue disabled: every shed takes the immediate fail-fast path, which
	// is what the p99 bound below is about. Queue-deadline timing is
	// covered by the admission unit tests.
	srv, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
		cfg.AdmissionBudget = 1
		cfg.AdmissionQueue = -1
	})

	const workers = 16
	var ok, shed, other atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := lsmclient.DialOptions(lsmclient.Options{
				Addr:           srv.Addr().String(),
				RequestTimeout: 30 * time.Second,
				RetryLimit:     -1, // no retries: every shed is counted
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pk, rec := tweet(uint64(w)<<32 | uint64(i))
				switch err := c.Upsert(pk, rec); {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, lsmclient.ErrOverloaded), errors.Is(err, lsmclient.ErrRetryLater):
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()

	okN, shedN, otherN := ok.Load(), shed.Load(), other.Load()
	t.Logf("goodput=%d ops shed=%d other=%d", okN, shedN, otherN)
	if otherN != 0 {
		t.Fatalf("%d non-overload errors under load", otherN)
	}
	if okN == 0 {
		t.Fatal("zero goodput under overload: admission starved everyone")
	}
	if shedN == 0 {
		t.Fatal("zero sheds at 4x the budget in workers: overload never engaged")
	}
	snap := srv.Admission().Snapshot()
	if snap.InFlight != 0 {
		t.Fatalf("in-flight weight %d after quiesce, want 0", snap.InFlight)
	}
	hist := srv.Admission().ShedHist()
	if p99 := hist.Quantile(0.99); p99 > int64(5*time.Millisecond) {
		t.Fatalf("shed fail-fast p99 = %v, want under 5ms", time.Duration(p99))
	}
}
