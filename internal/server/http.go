package server

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/admission"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/lsmstore"
)

// StatsPayload is the GET /stats response body: the engine snapshot from
// lsmstore.Stats, the network service's own counters, and — when
// observability is on — the server-side latency histograms, both as
// percentile summaries and as raw bucket snapshots (the raw form is what
// lsmload diffs across a run to print interval percentiles).
type StatsPayload struct {
	Engine lsmstore.Stats
	Server metrics.ServerSnapshot
	// SidecarLastError is the most recent HTTP accept-loop failure, so a
	// dead sidecar is diagnosable from the endpoint that still answers.
	SidecarLastError string `json:",omitempty"`
	// Latency and Stages are percentile digests per op class and per
	// request stage (microseconds).
	Latency map[string]obs.Summary `json:",omitempty"`
	Stages  map[string]obs.Summary `json:",omitempty"`
	// LatencyHist and StageHist are the same histograms with raw sparse
	// buckets, supporting Add/Sub deltas client-side.
	LatencyHist map[string]obs.HistSnapshot `json:",omitempty"`
	StageHist   map[string]obs.HistSnapshot `json:",omitempty"`
	// Admission is the admission controller's counters and per-tenant
	// accounting; ShedLatencyHist is the shed fail-fast latency. Present
	// only when admission control is enabled.
	Admission       *admission.Snapshot `json:",omitempty"`
	ShedLatencyHist *obs.HistSnapshot   `json:",omitempty"`
	// Governor is the maintenance governor's state. GovernorLastError is
	// the sticky record of a governor panic — a dead governor must be
	// diagnosable from /stats, like SidecarLastError.
	Governor          *admission.GovernorSnapshot `json:",omitempty"`
	GovernorLastError string                      `json:",omitempty"`
}

// statsPayload assembles the /stats body.
func (s *Server) statsPayload() StatsPayload {
	p := StatsPayload{
		Engine:           s.db.Stats(),
		Server:           s.counters.Snapshot(),
		SidecarLastError: s.http.lastError(),
	}
	if s.obs != nil {
		p.LatencyHist = s.obs.OpSnapshots()
		p.StageHist = s.obs.StageSnapshots()
		p.Latency = obs.Summaries(p.LatencyHist)
		p.Stages = obs.Summaries(p.StageHist)
	}
	if s.adm != nil {
		snap := s.adm.Snapshot()
		p.Admission = &snap
		shed := s.adm.ShedHist()
		p.ShedLatencyHist = &shed
	}
	if s.gov != nil {
		gsnap := s.gov.Snapshot()
		p.Governor = &gsnap
		p.GovernorLastError = s.gov.LastError()
	}
	return p
}

// slowPayload is the GET /debug/slow response body.
type slowPayload struct {
	ThresholdMillis int64           `json:"threshold_ms"`
	Total           uint64          `json:"total"`
	Entries         []obs.SlowEntry `json:"entries"`
}

// maintenancePayload is the GET /debug/maintenance response body.
type maintenancePayload struct {
	Summary  obs.JournalSummary          `json:"summary"`
	Pool     maintPoolStats              `json:"pool"`
	Governor *admission.GovernorSnapshot `json:"governor,omitempty"`
	Shards   []maintShardGauges          `json:"shards"`
	Events   []obs.JournalEvent          `json:"events"`
}

type maintPoolStats struct {
	Queued  int `json:"queued"`
	Active  int `json:"active"`
	Workers int `json:"workers"`
}

type maintShardGauges struct {
	Shard               int `json:"shard"`
	PendingFlushBatches int `json:"pending_flush_batches"`
	FrozenMemtables     int `json:"frozen_memtables"`
}

// httpSidecar is the observability endpoint riding alongside the wire
// listener: GET /healthz for liveness probes, GET /stats for dashboards,
// GET /metrics for Prometheus scrapes, GET /debug/slow and
// GET /debug/maintenance for humans mid-incident, and (opt-in)
// /debug/pprof for profiles.
type httpSidecar struct {
	mu      sync.Mutex
	ln      net.Listener
	srv     *http.Server
	lastErr error
}

func (h *httpSidecar) start(addrStr string, s *Server) error {
	ln, err := net.Listen("tcp", addrStr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//lsm:allow-discard a failed healthz write means the probe client hung up; there is no one left to report to
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.statsPayload())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lsm:allow-discard a failed scrape write is the scraper hanging up; nothing to do about it
		w.Write(s.promExposition())
	})
	mux.HandleFunc("GET /debug/slow", func(w http.ResponseWriter, r *http.Request) {
		p := slowPayload{Entries: []obs.SlowEntry{}}
		if s.slow != nil {
			p.ThresholdMillis = s.slow.Threshold().Milliseconds()
			p.Total = s.slow.Total()
			p.Entries = s.slow.Entries()
		}
		writeJSON(w, p)
	})
	mux.HandleFunc("GET /debug/maintenance", func(w http.ResponseWriter, r *http.Request) {
		j := s.db.MaintJournal()
		p := maintenancePayload{Summary: j.Summary(), Events: j.Events()}
		if p.Events == nil {
			p.Events = []obs.JournalEvent{}
		}
		queued, active, workers := s.db.MaintPoolStats()
		p.Pool = maintPoolStats{Queued: queued, Active: active, Workers: workers}
		if s.gov != nil {
			gsnap := s.gov.Snapshot()
			p.Governor = &gsnap
		}
		st := s.db.Stats()
		per := st.PerShard
		if len(per) == 0 {
			per = []lsmstore.Stats{st}
		}
		for i, sh := range per {
			p.Shards = append(p.Shards, maintShardGauges{
				Shard:               i,
				PendingFlushBatches: sh.PendingFlushBatches,
				FrozenMemtables:     sh.FrozenMemtables,
			})
		}
		writeJSON(w, p)
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	h.mu.Lock()
	h.ln, h.srv = ln, srv
	h.mu.Unlock()
	go func() {
		// Serve returns ErrServerClosed on every clean stop; anything else
		// is a real accept-loop failure worth surfacing on /stats.
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.counters.Errors.Add(1)
			h.mu.Lock()
			h.lastErr = err
			h.mu.Unlock()
		}
	}()
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lsm:allow-discard an Encode failure here is the client hanging up mid-response; nothing to do about it
	enc.Encode(v)
}

// lastError reports the most recent sidecar accept-loop failure ("" when
// healthy).
func (h *httpSidecar) lastError() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lastErr == nil {
		return ""
	}
	return h.lastErr.Error()
}

func (h *httpSidecar) addr() net.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ln == nil {
		return nil
	}
	return h.ln.Addr()
}

func (h *httpSidecar) stop() {
	h.mu.Lock()
	srv := h.srv
	h.mu.Unlock()
	if srv != nil {
		//lsm:allow-discard best-effort teardown; Close errors from an already-dead listener are not actionable
		srv.Close()
	}
}
