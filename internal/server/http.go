package server

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"

	"repro/internal/metrics"
	"repro/lsmstore"
)

// StatsPayload is the GET /stats response body: the engine snapshot from
// lsmstore.Stats plus the network service's own counters.
type StatsPayload struct {
	Engine lsmstore.Stats
	Server metrics.ServerSnapshot
}

// httpSidecar is the observability endpoint riding alongside the wire
// listener: GET /healthz for liveness probes, GET /stats for dashboards.
type httpSidecar struct {
	mu  sync.Mutex
	ln  net.Listener
	srv *http.Server
}

func (h *httpSidecar) start(addrStr string, s *Server) error {
	ln, err := net.Listen("tcp", addrStr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//lsm:allow-discard a failed healthz write means the probe client hung up; there is no one left to report to
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		payload := StatsPayload{
			Engine: s.db.Stats(),
			Server: s.counters.Snapshot(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//lsm:allow-discard an Encode failure here is the stats client hanging up mid-response; nothing to do about it
		enc.Encode(payload)
	})
	srv := &http.Server{Handler: mux}
	h.mu.Lock()
	h.ln, h.srv = ln, srv
	h.mu.Unlock()
	go func() {
		// Serve returns ErrServerClosed on every clean stop; anything else
		// is a real accept-loop failure worth surfacing on /stats.
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.counters.Errors.Add(1)
		}
	}()
	return nil
}

func (h *httpSidecar) addr() net.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ln == nil {
		return nil
	}
	return h.ln.Addr()
}

func (h *httpSidecar) stop() {
	h.mu.Lock()
	srv := h.srv
	h.mu.Unlock()
	if srv != nil {
		//lsm:allow-discard best-effort teardown; Close errors from an already-dead listener are not actionable
		srv.Close()
	}
}
