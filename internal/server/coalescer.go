package server

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/lsmstore"
)

// batchApplier is the slice of the DB the coalescer needs; tests substitute
// a controllable fake.
type batchApplier interface {
	ApplyBatchResults(muts []lsmstore.Mutation) ([]bool, error)
}

// coalescer folds concurrent single writes into ApplyBatch calls. Drain
// goroutines pull from a shared queue: each takes whatever writes
// accumulated while it was applying the previous batch — from any
// connection — and applies them as one batch, which the engine then groups
// per shard and applies with per-shard concurrency. Under light load
// batches are size 1 (no added latency beyond a channel hop); under
// concurrency the batch size grows exactly as fast as writes arrive.
//
// Several drainers run so that a batch parked on its commit-group fsync
// (group-commit WAL on the disk backend) does not stall the whole write
// path: while one batch's covering fsync is in flight, the others keep
// applying, and the WAL layer folds their commits into the next group.
// Concurrent batches introduce no new ordering hazards — each request is
// already handled on its own goroutine, so concurrent single writes never
// had cross-request ordering guarantees.
type coalescer struct {
	db       batchApplier
	counters *metrics.ServerCounters
	maxBatch int
	workers  int
	ch       chan coalReq
	wg       sync.WaitGroup
}

type coalReq struct {
	mut lsmstore.Mutation
	res chan coalRes
	enq time.Time // submit time when the caller is tracing; zero otherwise
}

type coalRes struct {
	applied bool
	wait    time.Duration // queue time until a drainer picked the write up
	err     error
}

func newCoalescer(db batchApplier, counters *metrics.ServerCounters, maxBatch, workers int) *coalescer {
	queue := 4 * maxBatch // deeper than a batch, so the queue absorbs bursts
	if queue < 64 {
		queue = 64
	}
	if workers < 1 {
		workers = 1
	}
	c := &coalescer{
		db:       db,
		counters: counters,
		maxBatch: maxBatch,
		workers:  workers,
		ch:       make(chan coalReq, queue),
	}
	return c
}

// start launches the apply goroutines. The server calls it from Start, not
// New, so an unstarted or failed-to-start server leaks nothing.
func (c *coalescer) start() {
	c.wg.Add(c.workers)
	for i := 0; i < c.workers; i++ {
		go c.run()
	}
}

// apply submits one mutation and blocks until its batch lands, reporting
// whether the mutation took effect. With traced set it also reports how
// long the write sat queued before a drainer picked it up.
func (c *coalescer) apply(m lsmstore.Mutation, traced bool) (bool, time.Duration, error) {
	res := make(chan coalRes, 1)
	req := coalReq{mut: m, res: res}
	if traced {
		req.enq = time.Now()
	}
	c.ch <- req
	r := <-res
	return r.applied, r.wait, r.err
}

// stop closes the queue and waits for the final batches. The caller must
// guarantee no apply is in flight (the server stops it only after every
// connection handler has exited).
func (c *coalescer) stop() {
	close(c.ch)
	c.wg.Wait()
}

func (c *coalescer) run() {
	defer c.wg.Done()
	reqs := make([]coalReq, 0, c.maxBatch)
	muts := make([]lsmstore.Mutation, 0, c.maxBatch)
	for first := range c.ch {
		reqs = append(reqs[:0], first)
		for len(reqs) < c.maxBatch {
			select {
			case r, ok := <-c.ch:
				if !ok {
					break
				}
				reqs = append(reqs, r)
				continue
			default:
			}
			break
		}
		muts = muts[:0]
		traced := false
		for _, r := range reqs {
			muts = append(muts, r.mut)
			traced = traced || !r.enq.IsZero()
		}
		var pickup time.Time
		if traced {
			pickup = time.Now()
		}
		applied, err := c.db.ApplyBatchResults(muts)
		if c.counters != nil {
			c.counters.CoalescedBatches.Add(1)
			c.counters.CoalescedWrites.Add(int64(len(reqs)))
		}
		for i, r := range reqs {
			ok := i < len(applied) && applied[i]
			res := coalRes{applied: ok, err: err}
			if !r.enq.IsZero() {
				res.wait = pickup.Sub(r.enq)
			}
			// A batch error is per shard, and shards are independent: a
			// mutation the engine reports applied landed durably even
			// though another shard's mutation failed, so its writer gets
			// success, not a stranger's error. (An applied=false entry in
			// an errored batch stays conservative: it may have failed, been
			// skipped, or merely been an ignored duplicate — the error is
			// returned and the client may retry safely.)
			if ok {
				res.err = nil
			}
			r.res <- res
		}
	}
}
