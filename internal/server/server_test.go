package server_test

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
	"repro/lsmclient"
	"repro/lsmstore"
)

// storeOptions is the small test store: validation strategy, a "user"
// secondary index and a creation-time filter (the tweet-workload schema).
func storeOptions() lsmstore.Options {
	return lsmstore.Options{
		Strategy: lsmstore.Validation,
		Secondaries: []lsmstore.SecondaryIndex{
			{Name: "user", Extract: workload.UserIDOf},
		},
		FilterExtract: workload.CreationOf,
		MemoryBudget:  64 << 10,
		CacheBytes:    2 << 20,
		PageSize:      4 << 10,
		Seed:          5,
	}
}

// startServer opens a store, serves it on an ephemeral port, and returns
// the pieces. Cleanup shuts the server down and closes the DB.
func startServer(t testing.TB, opts lsmstore.Options, mod func(*server.Config)) (*server.Server, *lsmstore.DB) {
	t.Helper()
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{DB: db, Addr: "127.0.0.1:0"}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		db.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		db.Close()
	})
	return srv, db
}

func dial(t testing.TB, srv *server.Server, conns int) *lsmclient.Client {
	t.Helper()
	c, err := lsmclient.DialOptions(lsmclient.Options{
		Addr:           srv.Addr().String(),
		Conns:          conns,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// tweet builds a deterministic record: PK from id, user id%32, creation=id.
func tweet(id uint64) (pk, rec []byte) {
	tw := workload.Tweet{ID: id, UserID: uint32(id % 32), Creation: int64(id), Message: []byte("m")}
	return tw.PK(), tw.Encode()
}

func TestServeBasicOps(t *testing.T) {
	srv, _ := startServer(t, storeOptions(), nil)
	c := dial(t, srv, 1)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	pk, rec := tweet(7)
	if err := c.Upsert(pk, rec); err != nil {
		t.Fatal(err)
	}
	got, found, err := c.Get(pk)
	if err != nil || !found {
		t.Fatalf("get: found=%v err=%v", found, err)
	}
	if string(got) != string(rec) {
		t.Fatalf("get = %x, want %x", got, rec)
	}
	if _, found, _ := c.Get([]byte("absent-key")); found {
		t.Fatal("absent key reported found")
	}

	if applied, err := c.Insert(pk, rec); err != nil || applied {
		t.Fatalf("duplicate insert: applied=%v err=%v", applied, err)
	}
	pk2, rec2 := tweet(8)
	if applied, err := c.Insert(pk2, rec2); err != nil || !applied {
		t.Fatalf("fresh insert: applied=%v err=%v", applied, err)
	}
	if applied, err := c.Delete(pk2); err != nil || !applied {
		t.Fatalf("delete: applied=%v err=%v", applied, err)
	}
	if _, found, err := c.Get(pk2); err != nil || found {
		t.Fatalf("deleted key still served (found=%v err=%v)", found, err)
	}

	b := c.NewBatch()
	for id := uint64(100); id < 110; id++ {
		pk, rec := tweet(id)
		b.Upsert(pk, rec)
	}
	b.Insert(pk, rec) // duplicate: must come back applied=false
	applied, err := b.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 11 || !applied[0] || applied[10] {
		t.Fatalf("batch applied = %v", applied)
	}

	res, err := c.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(31),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 11 { // ids 7, 100..109
		t.Fatalf("secondary query returned %d records, want 11", len(res.Records))
	}
	if _, err := c.SecondaryQuery("nope", nil, nil, lsmstore.QueryOptions{}); !errors.Is(err, lsmstore.ErrUnknownIndex) {
		t.Fatalf("unknown index: err = %v, want ErrUnknownIndex", err)
	}

	recs, err := c.FilterScan(100, 104, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("filter scan returned %d records, want 5", len(recs))
	}
	if recs, _ := c.FilterScan(0, 1<<40, 3); len(recs) != 3 {
		t.Fatalf("limited scan returned %d records, want 3", len(recs))
	}

	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested == 0 || st.Shards != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPipelinedConcurrentClients(t *testing.T) {
	opts := storeOptions()
	opts.Shards = 2
	srv, db := startServer(t, opts, nil)
	c := dial(t, srv, 4)

	const workers, perWorker = 8, 150
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := uint64(w*perWorker + i)
				pk, rec := tweet(id)
				if err := c.Upsert(pk, rec); err != nil {
					errs[w] = err
					return
				}
				if i%10 == 0 {
					if _, _, err := c.Get(pk); err != nil {
						errs[w] = err
						return
					}
				}
				if i%50 == 0 {
					if _, err := c.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(31),
						lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation, Limit: 10}); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	// Every write must be visible both through the client and the DB.
	for id := uint64(0); id < workers*perWorker; id += 97 {
		pk, rec := tweet(id)
		got, found, err := c.Get(pk)
		if err != nil || !found || string(got) != string(rec) {
			t.Fatalf("id %d: found=%v err=%v", id, found, err)
		}
	}
	if got := db.Stats().Ingested; got != workers*perWorker {
		t.Fatalf("ingested = %d, want %d", got, workers*perWorker)
	}
	if b := srv.Counters().CoalescedBatches.Load(); b == 0 {
		t.Fatal("no coalescer batches recorded")
	}
}

func TestBackpressureBoundsInFlight(t *testing.T) {
	srv, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
		cfg.MaxInFlight = 2
	})
	c := dial(t, srv, 1)
	var wg sync.WaitGroup
	var fails atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pk, rec := tweet(uint64(i))
			if err := c.Upsert(pk, rec); err != nil {
				fails.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if n := fails.Load(); n != 0 {
		t.Fatalf("%d writes failed under backpressure", n)
	}
	for i := 0; i < 64; i++ {
		pk, _ := tweet(uint64(i))
		if _, found, err := c.Get(pk); err != nil || !found {
			t.Fatalf("key %d missing after backpressured writes (err=%v)", i, err)
		}
	}
}

func TestHTTPSidecar(t *testing.T) {
	srv, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
		cfg.HTTPAddr = "127.0.0.1:0"
	})
	c := dial(t, srv, 1)
	pk, rec := tweet(1)
	if err := c.Upsert(pk, rec); err != nil {
		t.Fatal(err)
	}

	base := "http://" + srv.HTTPAddr().String()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload server.StatsPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Engine.Ingested != 1 {
		t.Fatalf("/stats engine ingested = %d, want 1", payload.Engine.Ingested)
	}
	if payload.Server.Requests == 0 || payload.Server.Connections == 0 {
		t.Fatalf("/stats server counters empty: %+v", payload.Server)
	}
}

func TestClosedStoreSurfacesTypedError(t *testing.T) {
	srv, db := startServer(t, storeOptions(), nil)
	c := dial(t, srv, 1)
	pk, rec := tweet(1)
	if err := c.Upsert(pk, rec); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Upsert(pk, rec); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("write on closed store: err = %v, want ErrClosed", err)
	}
	if _, _, err := c.Get(pk); !errors.Is(err, lsmstore.ErrClosed) {
		t.Fatalf("read on closed store: err = %v, want ErrClosed", err)
	}
	// The server itself must survive: ping has no DB dependency.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulShutdownUnderLoad drains the server while writers hammer it:
// every write must either succeed or fail with a connection/shutdown
// error, and every acknowledged write must be in the store afterwards.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	db, err := lsmstore.Open(storeOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := server.New(server.Config{DB: db, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := lsmclient.DialOptions(lsmclient.Options{
		Addr: srv.Addr().String(), Conns: 4, RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 8
	var (
		wg    sync.WaitGroup
		ackMu sync.Mutex
		acked []uint64
		stop  atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				id := uint64(w)<<32 | uint64(i)
				pk, rec := tweet(id)
				if err := c.Upsert(pk, rec); err != nil {
					return // the drain cut us off; acknowledged writes stand
				}
				ackMu.Lock()
				acked = append(acked, id)
				ackMu.Unlock()
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond) // let load build
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	stop.Store(true)
	wg.Wait()

	if len(acked) == 0 {
		t.Fatal("no writes were acknowledged before the drain")
	}
	for _, id := range acked {
		pk, rec := tweet(id)
		got, found, err := db.Get(pk)
		if err != nil || !found || string(got) != string(rec) {
			t.Fatalf("acknowledged write %d lost (found=%v err=%v)", id, found, err)
		}
	}
	// Shutdown is idempotent and Kill after Shutdown is a no-op.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Kill()
}

// TestServerKillAndReopen is the end-to-end acceptance test: a server on
// the file backend, four pipelined client connections driving upserts,
// secondary queries and filter scans; the server is killed mid-load; the
// directory is reopened (via a crash-image snapshot, since the abandoned
// store still holds the flock) and every acknowledged write must be
// served.
func TestServerKillAndReopen(t *testing.T) {
	dir := t.TempDir()
	opts := storeOptions()
	opts.Backend = lsmstore.FileBackend
	opts.Dir = dir
	db, err := lsmstore.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Never Close: the kill must leave a crash image. The flock dies with
	// the test process.
	srv, err := server.New(server.Config{DB: db, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	const conns = 4
	clients := make([]*lsmclient.Client, conns)
	for i := range clients {
		cl, err := lsmclient.DialOptions(lsmclient.Options{
			Addr: srv.Addr().String(), Conns: 1, RequestTimeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}

	var (
		wg    sync.WaitGroup
		ackMu sync.Mutex
		acked []uint64
		stop  atomic.Bool
	)
	// Two pipelined workers per connection: writers mixing single upserts
	// and batches with periodic secondary queries and filter scans.
	for ci, cl := range clients {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(ci, g int, cl *lsmclient.Client) {
				defer wg.Done()
				worker := ci*2 + g
				for i := 0; !stop.Load(); i++ {
					id := uint64(worker)<<32 | uint64(i)
					pk, rec := tweet(id)
					if i%20 == 19 { // a batch write
						b := cl.NewBatch()
						b.Upsert(pk, rec)
						pk2, rec2 := tweet(id | 1<<31)
						b.Upsert(pk2, rec2)
						if _, err := b.Apply(); err != nil {
							return
						}
						ackMu.Lock()
						acked = append(acked, id, id|1<<31)
						ackMu.Unlock()
					} else {
						if err := cl.Upsert(pk, rec); err != nil {
							return
						}
						ackMu.Lock()
						acked = append(acked, id)
						ackMu.Unlock()
					}
					if i%25 == 7 {
						if _, err := cl.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(31),
							lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation, Limit: 20}); err != nil {
							return
						}
					}
					if i%25 == 13 {
						if _, err := cl.FilterScan(0, 1<<40, 20); err != nil {
							return
						}
					}
				}
			}(ci, g, cl)
		}
	}

	// Let the load run until real work has been acknowledged, then kill.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ackMu.Lock()
		n := len(acked)
		ackMu.Unlock()
		if n >= 500 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv.Kill()
	stop.Store(true)
	wg.Wait()
	ackMu.Lock()
	ackedFinal := append([]uint64(nil), acked...)
	ackMu.Unlock()
	if len(ackedFinal) == 0 {
		t.Fatal("no writes acknowledged before the kill")
	}

	// The abandoned DB still holds the directory flock; reopen a crash
	// image, exactly like a restarted machine would see the disk.
	snap := t.TempDir()
	if err := snapshotStoreDir(dir, snap); err != nil {
		t.Fatal(err)
	}
	reopened, err := lsmstore.Open(func() lsmstore.Options {
		o := storeOptions()
		o.Backend = lsmstore.FileBackend
		o.Dir = snap
		return o
	}())
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer reopened.Close()

	users := map[uint32][]uint64{}
	for _, id := range ackedFinal {
		pk, rec := tweet(id)
		got, found, err := reopened.Get(pk)
		if err != nil || !found || string(got) != string(rec) {
			t.Fatalf("acknowledged write %d lost after kill+reopen (found=%v err=%v)", id, found, err)
		}
		users[uint32(id%32)] = append(users[uint32(id%32)], id)
	}
	// The secondary index must serve the recovered writes too.
	res, err := reopened.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(31),
		lsmstore.QueryOptions{Validation: lsmstore.TimestampValidation})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, r := range res.Records {
		seen[binary.BigEndian.Uint64(r.PK)] = true
	}
	for _, id := range ackedFinal {
		if !seen[id] {
			t.Fatalf("acknowledged write %d missing from the secondary index after reopen", id)
		}
	}
}

// snapshotStoreDir copies a store directory as a crash would freeze it:
// per shard, manifest and WAL first, then the immutable component files
// (the same order lsmstore's own durability battery uses).
func snapshotStoreDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if !e.IsDir() {
			if err := copyFile(sp, dp); err != nil {
				return err
			}
			continue
		}
		if err := os.MkdirAll(dp, 0o755); err != nil {
			return err
		}
		shardFiles, err := os.ReadDir(sp)
		if err != nil {
			return err
		}
		for _, name := range []string{"MANIFEST", "wal.log"} {
			if err := copyFile(filepath.Join(sp, name), filepath.Join(dp, name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		for _, f := range shardFiles {
			if f.IsDir() || f.Name() == "MANIFEST" || f.Name() == "wal.log" {
				continue
			}
			if err := copyFile(filepath.Join(sp, f.Name()), filepath.Join(dp, f.Name())); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func TestServerRejectsBadConfig(t *testing.T) {
	if _, err := server.New(server.Config{Addr: "x"}); err == nil {
		t.Fatal("nil DB accepted")
	}
	db, err := lsmstore.Open(storeOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := server.New(server.Config{DB: db}); err == nil {
		t.Fatal("empty addr accepted")
	}
}
