package server

import (
	"repro/internal/obs"
)

// promExposition renders the full Prometheus text-format body served at
// GET /metrics: server counters, engine counters, maintenance journal
// totals and gauges, and — when observability is on — the per-op-class
// and per-stage latency histograms.
func (s *Server) promExposition() []byte {
	var w obs.PromWriter

	sv := s.counters.Snapshot()
	w.Counter("lsm_connections_total", "Connections accepted since start.", sv.Connections)
	w.Gauge("lsm_active_connections", "Connections currently open.", float64(sv.ActiveConns))
	w.Counter("lsm_requests_total", "Requests decoded and dispatched.", sv.Requests)
	w.Counter("lsm_request_errors_total", "Requests answered with an error frame.", sv.Errors)
	w.Counter("lsm_coalesced_batches_total", "ApplyBatch calls issued by the write coalescer.", sv.CoalescedBatches)
	w.Counter("lsm_coalesced_writes_total", "Single writes absorbed into coalesced batches.", sv.CoalescedWrites)
	w.Counter("lsm_slow_requests_total", "Requests at or over the slow-request threshold.", sv.SlowRequests)

	st := s.db.Stats()
	w.Counter("lsm_engine_ingested_total", "Records ingested.", st.Ingested)
	w.Counter("lsm_engine_ignored_total", "Duplicate inserts ignored.", st.Ignored)
	w.Gauge("lsm_engine_primary_components", "On-disk primary components across shards.", float64(st.PrimaryComponents))
	w.Counter("lsm_engine_disk_bytes_written_total", "Bytes written to the storage device.", st.DiskBytesWritten)
	w.Gauge("lsm_engine_pending_flush_batches", "Frozen batches queued for flush across shards.", float64(st.PendingFlushBatches))
	w.Gauge("lsm_engine_frozen_memtables", "Frozen memtables not yet installed across shards.", float64(st.FrozenMemtables))

	c := st.Counters
	w.Counter("lsm_engine_random_reads_total", "Pages read at random positions.", c.RandomReads)
	w.Counter("lsm_engine_sequential_reads_total", "Pages read sequentially.", c.SequentialReads)
	w.Counter("lsm_engine_pages_written_total", "Pages written.", c.PagesWritten)
	w.Counter("lsm_engine_cache_hits_total", "Buffer-cache hits.", c.CacheHits)
	w.Counter("lsm_engine_cache_misses_total", "Buffer-cache misses.", c.CacheMisses)
	w.Counter("lsm_engine_bloom_tests_total", "Bloom filter membership tests.", c.BloomTests)
	w.Counter("lsm_engine_bloom_negatives_total", "Bloom tests answered definitely-absent.", c.BloomNegatives)
	w.Counter("lsm_engine_key_comparisons_total", "B+-tree search comparisons.", c.KeyComparisons)
	w.Counter("lsm_engine_point_lookups_total", "Point lookups issued.", c.PointLookups)
	w.Counter("lsm_engine_entries_scanned_total", "Entries pulled through iterators.", c.EntriesScanned)
	w.Counter("lsm_engine_write_stalls_total", "Writes stalled by maintenance backpressure.", c.WriteStalls)
	w.Counter("lsm_engine_write_stall_seconds_total", "Total time writes spent stalled.", c.WriteStallNanos/1e9)
	w.Counter("lsm_engine_write_stalls_frozen_total", "Stalls attributed to the frozen-memtable ceiling.", c.WriteStallsFrozen)
	w.Counter("lsm_engine_write_stalls_components_total", "Stalls attributed to the on-disk component count.", c.WriteStallsComponents)
	w.Counter("lsm_engine_wal_fsyncs_total", "Fsyncs issued against the WAL area.", c.WALFsyncs)
	w.Counter("lsm_engine_group_commit_batches_total", "Commit groups closed by one covering fsync.", c.GroupCommitBatches)
	w.Counter("lsm_engine_group_commit_waiters_total", "Committed writes covered by commit groups.", c.GroupCommitWaiters)
	w.Counter("lsm_engine_read_cache_hits_total", "GETs answered from the read cache.", c.ReadCacheHits)
	w.Counter("lsm_engine_read_cache_misses_total", "GETs that fell through the read cache.", c.ReadCacheMisses)
	w.Counter("lsm_engine_read_cache_neg_hits_total", "GETs answered by a cached known-absent entry.", c.ReadCacheNegHits)
	w.Counter("lsm_engine_read_cache_invalidations_total", "Write-path read-cache invalidations.", c.ReadCacheInvalidations)

	j := s.db.MaintJournal().Summary()
	w.Counter("lsm_maintenance_flushes_total", "Completed flush operations.", j.Flushes)
	w.Counter("lsm_maintenance_flush_errors_total", "Flush operations that failed.", j.FlushErrors)
	w.Counter("lsm_maintenance_flush_seconds_total", "Total time spent flushing.", j.FlushNanos/1e9)
	w.Counter("lsm_maintenance_flush_bytes_total", "Bytes written by flushes.", j.FlushBytes)
	w.Counter("lsm_maintenance_flush_output_components_total", "Components produced by flushes.", j.FlushOutputComponents)
	w.Counter("lsm_maintenance_merges_total", "Completed merge operations.", j.Merges)
	w.Counter("lsm_maintenance_merge_errors_total", "Merge operations that failed.", j.MergeErrors)
	w.Counter("lsm_maintenance_merge_seconds_total", "Total time spent merging.", j.MergeNanos/1e9)
	w.Counter("lsm_maintenance_merge_bytes_total", "Bytes written by merges.", j.MergeBytes)
	w.Counter("lsm_maintenance_merge_input_components_total", "Components consumed by merges.", j.MergeInputComponents)
	w.Gauge("lsm_maintenance_active_flushes", "Flush operations in progress.", float64(j.ActiveFlushes))
	w.Gauge("lsm_maintenance_active_merges", "Merge operations in progress.", float64(j.ActiveMerges))

	if s.adm != nil {
		a := s.adm.Snapshot()
		w.Gauge("lsm_admission_budget", "Weighted in-flight admission budget.", float64(a.Budget))
		w.Gauge("lsm_admission_in_flight", "Weighted in-flight admitted work.", float64(a.InFlight))
		w.Gauge("lsm_admission_queued", "Requests waiting in the admission queue.", float64(a.Queued))
		w.Counter("lsm_admission_admitted_total", "Requests admitted.", a.Admitted)
		w.Counter("lsm_admission_admitted_after_wait_total", "Requests admitted after queueing.", a.AdmittedAfterWait)
		w.Counter("lsm_admission_shed_total", "Requests shed, by cause.", a.ShedQueueFull, "cause", "queue_full")
		w.Counter("lsm_admission_shed_total", "", a.ShedDeadline, "cause", "deadline")
		w.Counter("lsm_admission_shed_total", "", a.ShedFairShare, "cause", "fair_share")
		w.Counter("lsm_admission_shed_total", "", a.ShedRateLimited, "cause", "rate_limited")
		w.Histogram("lsm_admission_shed_duration_seconds",
			"Fail-fast latency of shed requests.", s.adm.ShedHist())
	}
	if s.gov != nil {
		g := s.gov.Snapshot()
		w.Gauge("lsm_governor_merge_rate", "Current merge-dispatch rate (jobs/s).", g.Rate)
		w.Gauge("lsm_governor_throttling", "1 while merge dispatch is throttled below the ceiling.", boolGauge(g.Throttling))
		w.Gauge("lsm_governor_last_p99_micros", "Foreground interval p99 at the last governor tick.", float64(g.LastP99Micros))
		w.Counter("lsm_governor_throttle_steps_total", "Governor rate-decrease steps.", g.ThrottleSteps)
		w.Counter("lsm_governor_recover_steps_total", "Governor rate-increase steps.", g.RecoverSteps)
	}

	if s.obs != nil {
		w.HistogramMap("lsm_request_duration_seconds",
			"Server-side request latency by op class.", "op", s.obs.OpSnapshots())
		w.HistogramMap("lsm_request_stage_duration_seconds",
			"Server-side time per request stage.", "stage", s.obs.StageSnapshots())
	}
	return w.Bytes()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
