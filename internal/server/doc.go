// Package server turns an embedded lsmstore.DB into a served system: a
// TCP listener speaking the internal/wire protocol, built for pipelining.
//
// # Connection model
//
// Each connection gets a reader goroutine and a writer goroutine. The
// reader decodes frames and dispatches every request to its own handler
// goroutine, so requests on one connection execute concurrently and
// responses return in completion order, correlated by request ID — a
// client that pipelines N requests pays one round trip, not N. In-flight
// requests per connection are bounded (Config.MaxInFlight): past the
// bound the reader stops reading, and TCP flow control pushes back on the
// client.
//
// # Write coalescing
//
// Single writes (upsert, insert, delete) from all connections funnel
// through a coalescer: whatever writes arrive while the previous batch is
// applying are folded into one DB.ApplyBatchResults call, which the
// engine groups per shard and applies with per-shard concurrency. Under
// light load batches are size 1; under concurrency, batch size grows with
// the arrival rate, converting many small write calls into the engine's
// efficient batched path while still answering each client individually
// (including per-mutation Insert/Delete applied results).
//
// # Lifecycle
//
// Shutdown drains gracefully: accepting stops, readers stop, in-flight
// requests finish and their responses flush, then connections close. Kill
// stops abruptly — connections drop, in-flight responses are lost — and
// leaves the DB untouched, so a killed server's data directory is exactly
// a crashed process image for recovery testing. Neither closes the DB;
// the caller owns its lifecycle, and post-Close requests surface as typed
// CodeClosed error frames.
//
// # Observability
//
// An optional HTTP sidecar (Config.HTTPAddr) serves GET /healthz for
// liveness and GET /stats: the lsmstore.Stats engine snapshot plus the
// server's own counters (connections, requests, errors, coalescer
// efficiency).
package server
